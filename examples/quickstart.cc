// Quickstart: every query type of the library on a small mixed scenario.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/expected_nn.h"
#include "core/monte_carlo_pnn.h"
#include "core/nn_nonzero_index.h"
#include "core/nonzero_voronoi.h"
#include "core/pnn_queries.h"
#include "core/spiral_search.h"
#include "core/vpr_diagram.h"
#include "engine/engine.h"

using namespace unn;
using core::UncertainPoint;
using geom::Vec2;

int main() {
  // --- Continuous model: three sensors with disk-shaped position noise. ---
  std::vector<UncertainPoint> sensors = {
      UncertainPoint::Disk({0, 0}, 1.0),
      UncertainPoint::Disk({6, 1}, 2.0),
      UncertainPoint::Disk({3, 6}, 0.5),
  };
  Vec2 q{3, 2};

  // Nonzero Voronoi diagram (Theorem 2.5 / 2.11): who can be the NN?
  core::NonzeroVoronoi diagram(sensors);
  printf("NN!=0(q) via V!=0 diagram:");
  for (int id : diagram.Query(q)) printf(" P%d", id);
  printf("   (diagram: %lld vertices, %d faces)\n",
         static_cast<long long>(diagram.stats().arrangement_vertices),
         diagram.stats().bounded_faces);

  // The near-linear index (Theorem 3.1) answers the same query in O(n) space.
  core::NnNonzeroIndex index(sensors);
  printf("NN!=0(q) via near-linear index:");
  for (int id : index.Query(q)) printf(" P%d", id);
  printf("   (Delta(q) = %.3f)\n", index.Delta(q));

  // Monte-Carlo quantification probabilities (Theorem 4.5).
  core::MonteCarloPnnOptions mc_opts;
  mc_opts.eps = 0.02;
  core::MonteCarloPnn mc(sensors, mc_opts);
  printf("pi_i(q) by Monte Carlo (eps=0.02, s=%d):", mc.num_instantiations());
  for (auto [id, p] : mc.Query(q)) printf("  P%d: %.3f", id, p);
  printf("\n");

  // Expected-distance NN (the paper-I variant) can disagree with the
  // most-probable NN.
  core::ExpectedNn enn(sensors);
  printf("argmin E[d^2] = P%d, argmin E[d] = P%d\n", enn.QuerySquared(q),
         enn.QueryExpected(q));

  // --- Discrete model: check-in locations with probabilities. ---
  std::vector<UncertainPoint> users = {
      UncertainPoint::Discrete({{1, 1}, {2, 3}}, {0.7, 0.3}),
      UncertainPoint::Discrete({{5, 0}, {4, 2}, {6, 1}}, {0.5, 0.25, 0.25}),
      UncertainPoint::Discrete({{0, 5}, {2, 6}}, {0.5, 0.5}),
  };

  // Exact probabilities via the (tiny) exact VPr diagram (Theorem 4.2).
  core::VprDiagram vpr(users);
  printf("exact pi_i(q) via VPr:");
  for (auto [id, p] : vpr.Query(q)) printf("  U%d: %.4f", id, p);
  printf("   (VPr: %d faces)\n", vpr.stats().bounded_faces);

  // Spiral search (Theorem 4.7): deterministic eps-approximation.
  core::SpiralSearch spiral(users);
  printf("pi_i(q) by spiral search (eps=0.01):");
  for (auto [id, p] : spiral.Query(q, 0.01)) printf("  U%d: %.4f", id, p);
  printf("   (retrieved %d of %d sites)\n", spiral.SitesRetrieved(0.01), 7);

  // Threshold and top-k queries on top of the estimator.
  auto over = core::ThresholdQuery(spiral, q, 0.25);
  printf("users with pi >= 0.25 (no false negatives):");
  for (auto [id, p] : over) printf("  U%d(%.3f)", id, p);
  printf("\n");
  auto top = core::TopKQuery(spiral, q, 2);
  printf("top-2 probable NN: U%d then U%d\n", top[0].first,
         top.size() > 1 ? top[1].first : -1);

  // --- The Engine facade: every query type behind one API. ---
  Engine::Config cfg;
  cfg.eps = 0.01;
  Engine engine(users, cfg);
  printf("\nEngine facade (backend=auto): most-probable NN = U%d, "
         "expected-distance NN = U%d\n",
         engine.MostProbableNn(q), engine.ExpectedDistanceNn(q));
  std::vector<Vec2> batch = {{3, 2}, {0, 0}, {5, 5}};
  auto answers =
      engine.QueryMany(batch, {Engine::QueryType::kMostProbableNn});
  printf("batched most-probable NN over %zu queries:", batch.size());
  for (const auto& r : answers) printf(" U%d", r.nn);
  printf("\n");
  return 0;
}
