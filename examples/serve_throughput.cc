// Serving-layer demo: a QueryServer fans a batch across its worker pool,
// answers async single queries, and swaps the dataset atomically while
// old-snapshot holders keep serving.
//
//   cmake -B build && cmake --build build --target serve_throughput
//   ./build/serve_throughput

#include <cstdio>
#include <vector>

#include "engine/engine.h"
#include "serve/query_server.h"
#include "workload/generators.h"

using namespace unn;
using geom::Vec2;

int main() {
  // A server over 2000 uncertain points, warmed for most-probable-NN
  // traffic so no query pays the spiral-search build.
  auto day_one = workload::RandomDiscrete(2000, 3, /*seed=*/1, /*spread=*/3.0);
  serve::QueryServer server(
      day_one, Engine::Config{},
      {.num_threads = 4, .warm = {Engine::QueryType::kMostProbableNn}});
  printf("serving %d points on %d worker threads (+ caller)\n",
         server.snapshot()->size(), server.pool().num_threads());

  // Blocking batched API: results[i] answers queries[i], sharded across
  // the pool.
  std::vector<Vec2> batch;
  for (int i = 0; i < 8; ++i) batch.push_back({i * 2.0 - 7.0, 1.0});
  auto results =
      server.QueryBatch(batch, {Engine::QueryType::kMostProbableNn});
  printf("batch of %zu: most probable NN =", batch.size());
  for (const auto& r : results) printf(" P%d", r.nn);
  printf("\n");

  // Async API: Submit returns a future; the query runs on a worker.
  auto fut = server.Submit({0.5, 0.5}, {Engine::QueryType::kTopK, 0.5, 3});
  printf("top-3 at (0.5, 0.5):");
  for (auto [id, pi] : fut.get().ranked) printf("  P%d (%.3f)", id, pi);
  printf("\n");

  // Atomic dataset replacement: a pinned snapshot keeps answering for the
  // old dataset; new requests see the new one immediately.
  auto pinned = server.snapshot();
  auto day_two = workload::RandomDiscrete(3000, 3, /*seed=*/2, /*spread=*/3.0);
  server.ReplaceDataset(day_two);
  printf("swapped datasets: pinned snapshot still has %d points, server now "
         "serves %d\n",
         pinned->size(), server.snapshot()->size());

  auto stats = server.stats();
  printf("stats: %llu queries, %llu batches, %llu swaps\n",
         static_cast<unsigned long long>(stats.queries),
         static_cast<unsigned long long>(stats.batches),
         static_cast<unsigned long long>(stats.swaps));
  return 0;
}
