// Observability tour: stands up a QueryServer over a random uncertain
// dataset, drives a mixed query stream at it (batch + single submits,
// repeats for cache hits, traversal profiling on), then prints
//   1. the full Prometheus text exposition from DumpMetrics() — the
//      exact bytes a /metrics endpoint would serve;
//   2. the same snapshot as JSON;
//   3. the slow-query log, each entry rendered as an ASCII span tree.
//
//   ./build/examples/metrics_dump

#include <chrono>
#include <cstdio>
#include <vector>

#include "engine/engine.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "serve/query_server.h"
#include "workload/generators.h"

using namespace unn;
using geom::Vec2;

int main() {
  auto pts = workload::RandomDiscrete(2000, 3, /*seed=*/41, /*spread=*/8.0);

  serve::QueryServer::Options options;
  options.num_threads = 4;
  options.warm = {Engine::QueryType::kMostProbableNn};
  options.cache.max_bytes = 8u << 20;
  // Every request at or above 50us lands in the slow-query ring, with its
  // span tree captured.
  options.slow_query_threshold = std::chrono::microseconds(50);
  options.slow_query_log_size = 8;
  serve::QueryServer server(pts, {}, options);

  obs::EnableTraversalProfiling(true);

  // A batch, then repeats of its prefix (cache hits), then single submits
  // of a second query type so the per-type counters diverge.
  std::vector<Vec2> queries;
  for (int i = 0; i < 64; ++i) {
    queries.push_back({-8.0 + 16.0 * i / 64, 6.0 - 12.0 * i / 64});
  }
  server.QueryBatch(queries, {Engine::QueryType::kMostProbableNn});
  server.QueryBatch(queries, {Engine::QueryType::kMostProbableNn});
  for (int i = 0; i < 16; ++i) {
    server.Submit(queries[i], {Engine::QueryType::kNonzeroNn}).get();
  }
  obs::EnableTraversalProfiling(false);

  std::printf("=== Prometheus exposition (DumpMetrics) ===\n\n%s\n",
              server.DumpMetrics().c_str());
  std::printf("=== JSON snapshot ===\n\n%s\n",
              server.DumpMetrics(obs::MetricsFormat::kJson).c_str());

  auto slow = server.SlowQueries();
  std::printf("=== Slow-query log (threshold %lld us, %zu entries) ===\n\n",
              static_cast<long long>(options.slow_query_threshold.count()),
              slow.size());
  for (const auto& sq : slow) {
    std::printf("q=(%.2f, %.2f) latency=%lld us batch_size=%d\n%s\n", sq.q.x,
                sq.q.y, static_cast<long long>(sq.latency.count()),
                sq.batch_size, obs::RenderSpanTree(sq.spans).c_str());
  }
  if (slow.empty()) {
    std::printf("(no query crossed the threshold — rerun on a slower "
                "machine or lower slow_query_threshold)\n");
  }
  return 0;
}
