// Sharding demo: one dataset partitioned across four Engines behind a
// QueryServer, queries fanned out to every shard and merged — then the
// whole shard set is atomically swapped for a re-partitioned one
// (different shard count) while a pinned snapshot keeps serving.
//
//   cmake -B build && cmake --build build --target sharded_server
//   ./build/sharded_server

#include <cstdio>
#include <vector>

#include "engine/engine.h"
#include "serve/query_server.h"
#include "serve/sharding.h"
#include "workload/generators.h"

using namespace unn;
using geom::Vec2;

int main() {
  // 4000 uncertain points, partitioned spatially into 4 shards; each
  // shard is an independent Engine built in parallel on the pool.
  auto pts = workload::RandomDiscrete(4000, 3, /*seed=*/11, /*spread=*/3.0);
  serve::QueryServer server(
      pts, Engine::Config{},
      {.num_threads = 4,
       .warm = {Engine::QueryType::kMostProbableNn},
       .sharding = {4, serve::Partitioning::kSpatial}});
  auto snap = server.sharded_snapshot();
  printf("serving %d points as %d shards:", snap->size(), snap->num_shards());
  for (int s = 0; s < snap->num_shards(); ++s) {
    printf(" %d", snap->shard(s).size());
  }
  printf(" points\n");

  // The query surface is the same as a single Engine's — answers carry
  // global ids and match the unsharded semantics (exactly, for the
  // NN!=0 / expected-distance merges and exact-backend probability
  // merges; see docs/QUERY_SEMANTICS.md).
  std::vector<Vec2> batch;
  for (int i = 0; i < 8; ++i) batch.push_back({i * 2.0 - 7.0, 1.0});
  auto results =
      server.QueryBatch(batch, {Engine::QueryType::kMostProbableNn});
  printf("batch of %zu: most probable NN =", batch.size());
  for (const auto& r : results) printf(" P%d", r.nn);
  printf("\n");

  auto fut = server.Submit({0.5, 0.5}, {Engine::QueryType::kNonzeroNn});
  auto ids = fut.get().ids;
  printf("NN!=0 at (0.5, 0.5): %zu candidates (exact cross-shard merge)\n",
         ids.size());

  // Direct ShardedEngine use, fanning one query across a caller pool:
  auto top = snap->TopK({0.5, 0.5}, 3, &server.pool());
  printf("top-3 at (0.5, 0.5):");
  for (auto [id, pi] : top) printf("  P%d (%.3f)", id, pi);
  printf("\n");

  // Reshard mid-flight: swap in the same dataset as 8 round-robin shards.
  // A pinned snapshot keeps answering on the old partitioning.
  auto pinned = server.sharded_snapshot();
  server.ReplaceDataset(pts, {8, serve::Partitioning::kRoundRobin});
  printf("resharded: pinned snapshot has %d shards, server now %d\n",
         pinned->num_shards(), server.sharded_snapshot()->num_shards());

  auto stats = server.stats();
  printf("stats: %llu queries, %llu batches, %llu swaps\n",
         static_cast<unsigned long long>(stats.queries),
         static_cast<unsigned long long>(stats.batches),
         static_cast<unsigned long long>(stats.swaps));
  return 0;
}
