// Scenario: location-based service with discrete check-in distributions
// (the classic motivating application of probabilistic NN queries; cf.
// [CXY+10, LS07] in the paper). Each user has k recent check-in spots with
// empirical frequencies; a venue at q asks: who is probably nearest?
//
//   ./build/examples/poi_checkins [n] [k]

#include <cstdio>
#include <cstdlib>

#include "baselines/brute_force.h"
#include "core/monte_carlo_pnn.h"
#include "core/nn_nonzero_discrete_index.h"
#include "core/pnn_queries.h"
#include "core/spiral_search.h"
#include "engine/engine.h"
#include "workload/generators.h"

using namespace unn;
using geom::Vec2;

int main(int argc, char** argv) {
  int n = argc > 1 ? std::atoi(argv[1]) : 40;
  int k = argc > 2 ? std::atoi(argv[2]) : 4;
  auto users = workload::RandomDiscrete(n, k, /*seed=*/77, 0.0, 2.0,
                                        /*uniform_weights=*/false);
  Vec2 venue{0.0, 0.0};

  // Candidate set: who has any chance at all (Theorem 3.2 index).
  core::NnNonzeroDiscreteIndex index(users);
  auto candidates = index.Query(venue);
  printf("venue at (0,0): %zu of %d users have nonzero probability of being "
         "nearest\n",
         candidates.size(), n);

  // Probabilities three ways: exact (Eq. 2), spiral (Thm 4.7), MC (Thm 4.3).
  auto exact = baselines::QuantificationProbabilities(users, venue);
  core::SpiralSearch spiral(users);
  std::vector<double> sp(users.size(), 0.0);
  for (auto [id, p] : spiral.Query(venue, 0.01)) sp[id] = p;
  core::MonteCarloPnnOptions opts;
  opts.s_override = 20000;
  core::MonteCarloPnn mc(users, opts);
  std::vector<double> mcp(users.size(), 0.0);
  for (auto [id, p] : mc.Query(venue)) mcp[id] = p;

  printf("%6s %10s %10s %10s\n", "user", "exact", "spiral", "monte-carlo");
  for (int id : candidates) {
    if (exact[id] < 5e-4) continue;
    printf("%6d %10.4f %10.4f %10.4f\n", id, exact[id], sp[id], mcp[id]);
  }
  printf("(spiral retrieved %d of %d sites; rho = %.2f)\n",
         spiral.SitesRetrieved(0.01), n * k, spiral.rho());

  // Service decisions on top of the estimates.
  auto vip = core::ThresholdQuery(spiral, venue, 0.2);
  printf("users with pi >= 0.2:");
  for (auto [id, p] : vip) printf("  %d (%.3f)", id, p);
  printf("\n");
  auto top = core::TopKQuery(spiral, venue, 3);
  printf("push notification order:");
  for (auto [id, p] : top) printf("  %d", id);
  printf("\n");

  // The same decisions through the Engine facade (backend auto-selects the
  // spiral search for all-discrete inputs).
  Engine::Config cfg;
  cfg.eps = 0.01;
  Engine engine(users, cfg);
  printf("engine: most-probable NN = %d, top-3 =", engine.MostProbableNn(venue));
  for (auto [id, p] : engine.TopK(venue, 3)) printf("  %d", id);
  printf("\n");
  return 0;
}
