// Regenerates the paper's figures from the library:
//   fig1_distance_pdf.svg     — Figure 1(b): g_{q,i} for a uniform disk,
//                               q=(6,8), R=5 (plus the setup of 1(a));
//   fig2_gamma_envelope.svg   — Figures 2-4: gamma curves, their envelope
//                               and the resulting V!=0 cells;
//   fig5_cubic.svg            — Theorem 2.7 construction (zoomed channel);
//   fig6_equal_radius.svg     — Theorem 2.8 construction;
//   fig8_quadratic.svg        — Theorem 2.10 construction;
//   fig9_vpr.svg              — Lemma 4.1 bisector arrangement inside the
//                               unit disk.
//
//   ./build/examples/figure_gallery [output_dir]

#include <cstdio>
#include <string>

#include "core/nonzero_voronoi.h"
#include "core/vpr_diagram.h"
#include "prob/distance_cdf.h"
#include "workload/generators.h"
#include "workload/svg.h"

using namespace unn;
using core::UncertainPoint;
using geom::Box;
using geom::Vec2;

int main(int argc, char** argv) {
  std::string dir = argc > 1 ? argv[1] : ".";

  {  // Figure 1: distance pdf of a uniform disk.
    UncertainPoint p = UncertainPoint::Disk({0, 0}, 5.0);
    Vec2 q{6, 8};
    workload::SvgWriter svg(Box{{4, -0.02}, {16, 0.20}}, 700);
    std::vector<Vec2> curve;
    for (int i = 0; i <= 400; ++i) {
      double r = 4.0 + 12.0 * i / 400.0;
      curve.push_back({r, prob::DistancePdf(p, q, r)});
    }
    svg.AddPolyline(curve, "#1f77b4", 2.0);
    svg.AddSegment({4, 0}, {16, 0}, "#888888", 1.0);
    svg.AddText({5.0, 0.18}, "g_{q,i}(r), disk R=5 at O, q=(6,8)");
    svg.AddText({4.7, -0.01}, "r=5");
    svg.AddText({14.7, -0.01}, "r=15");
    printf("fig1: %s\n",
           svg.WriteFile(dir + "/fig1_distance_pdf.svg") ? "ok" : "FAILED");
  }

  {  // Figures 2-4: gamma curves and V!=0 of a small instance.
    auto pts = workload::RandomDisks(5, /*seed=*/12, 5.0, 0.8, 1.6);
    core::NonzeroVoronoi vd(pts);
    workload::SvgWriter svg(vd.window(), 900);
    svg.AddSubdivision(vd.subdivision());
    for (const auto& p : pts) {
      svg.AddCircle(p.center(), p.radius(), "#d62728");
      svg.AddDot(p.center(), 2, "#d62728");
    }
    printf("fig2-4: %s\n",
           svg.WriteFile(dir + "/fig2_gamma_envelope.svg") ? "ok" : "FAILED");
  }

  {  // Figure 5: Theorem 2.7 channel (the huge flanking disks are far
     // off-screen; their gamma curves thread the channel).
    auto pts = workload::LowerBoundCubic(16, 1);
    core::NonzeroVoronoiOptions opts;
    opts.window = Box{{-40, -30}, {40, 30}};
    core::NonzeroVoronoi vd(pts, opts);
    workload::SvgWriter svg(opts.window, 900);
    svg.AddSubdivision(vd.subdivision());
    for (const auto& p : pts) {
      if (p.radius() < 2) svg.AddCircle(p.center(), p.radius(), "#d62728");
    }
    printf("fig5: %s\n",
           svg.WriteFile(dir + "/fig5_cubic.svg") ? "ok" : "FAILED");
  }

  {  // Figure 6: Theorem 2.8, equal radii.
    auto pts = workload::LowerBoundCubicEqualRadius(12, 1);
    core::NonzeroVoronoi vd(pts);
    workload::SvgWriter svg(Box{{-8, -4}, {9, 8}}, 900);
    svg.AddSubdivision(vd.subdivision());
    for (const auto& p : pts) {
      svg.AddCircle(p.center(), p.radius(), "#d62728");
    }
    printf("fig6: %s\n",
           svg.WriteFile(dir + "/fig6_equal_radius.svg") ? "ok" : "FAILED");
  }

  {  // Figure 8: Theorem 2.10, collinear unit disks.
    auto pts = workload::LowerBoundQuadratic(12, 1);
    core::NonzeroVoronoi vd(pts);
    workload::SvgWriter svg(Box{{-30, -22}, {30, 22}}, 900);
    svg.AddSubdivision(vd.subdivision());
    for (const auto& p : pts) {
      svg.AddCircle(p.center(), p.radius(), "#d62728");
    }
    printf("fig8: %s\n",
           svg.WriteFile(dir + "/fig8_quadratic.svg") ? "ok" : "FAILED");
  }

  {  // Figure 9: Lemma 4.1 bisector arrangement.
    auto pts = workload::LowerBoundVprQuartic(6, 3);
    core::VprDiagramOptions opts;
    opts.window = Box{{-1.5, -1.5}, {1.5, 1.5}};
    core::VprDiagram vpr(pts, opts);
    workload::SvgWriter svg(opts.window, 700);
    svg.AddSubdivision(vpr.subdivision(), "#2ca02c");
    svg.AddCircle({0, 0}, 1.0, "#d62728", "none", 1.5);
    for (const auto& p : pts) svg.AddDot(p.sites()[0], 3, "#d62728");
    printf("fig9: %s (%d faces inside the window)\n",
           svg.WriteFile(dir + "/fig9_vpr.svg") ? "ok" : "FAILED",
           vpr.stats().bounded_faces);
  }
  return 0;
}
