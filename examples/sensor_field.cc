// Scenario: a field of location-uncertain sensors (disk noise regions).
// Builds the nonzero Voronoi diagram V!=0, compares it against the
// near-linear index on a query workload, and renders the diagram to SVG —
// the kind of "which sensors could possibly be closest to an event?"
// dispatch question that motivates NN!=0 queries.
//
//   ./build/examples/sensor_field [n] [out.svg]

#include <cstdio>
#include <cstdlib>
#include <random>

#include "core/nn_nonzero_index.h"
#include "core/nonzero_voronoi.h"
#include "engine/engine.h"
#include "workload/generators.h"
#include "workload/svg.h"

using namespace unn;
using geom::Vec2;

int main(int argc, char** argv) {
  int n = argc > 1 ? std::atoi(argv[1]) : 24;
  const char* out = argc > 2 ? argv[2] : "sensor_field.svg";

  auto sensors = workload::RandomDisks(n, /*seed=*/2024, 0.0, 0.4, 1.6);
  core::NonzeroVoronoi diagram(sensors);
  core::NnNonzeroIndex index(sensors);

  printf("sensor field: n=%d, V!=0 has %lld vertices, %d faces, %d edges\n",
         n, static_cast<long long>(diagram.stats().arrangement_vertices),
         diagram.stats().bounded_faces, diagram.stats().dcel_edges);

  // Dispatch workload: events arrive, ask which sensors may be closest.
  std::mt19937_64 rng(7);
  double extent = diagram.window().Diagonal() / 4;
  std::uniform_real_distribution<double> u(-extent, extent);
  int total_candidates = 0, agree = 0;
  const int kQueries = 500;
  for (int t = 0; t < kQueries; ++t) {
    Vec2 q{u(rng), u(rng)};
    auto a = diagram.Query(q);
    auto b = index.Query(q);
    total_candidates += static_cast<int>(a.size());
    agree += (a == b);
  }
  printf("%d events: avg %.2f candidate sensors per event; diagram and "
         "index agree on %d/%d\n",
         kQueries, total_candidates / static_cast<double>(kQueries), agree,
         kQueries);

  // The same dispatch question through the Engine facade, batched.
  Engine engine(sensors, {});
  std::vector<Vec2> events;
  for (int t = 0; t < 8; ++t) events.push_back({u(rng), u(rng)});
  auto batched = engine.QueryMany(events, {Engine::QueryType::kNonzeroNn});
  printf("engine batch of %zu events, candidate counts:", events.size());
  for (const auto& r : batched) printf(" %zu", r.ids.size());
  printf("\n");

  // Render: sensor disks + the diagram's curves.
  workload::SvgWriter svg(diagram.window(), 900);
  svg.AddSubdivision(diagram.subdivision());
  for (const auto& s : sensors) {
    svg.AddCircle(s.center(), s.radius(), "#d62728", "none", 1.0);
    svg.AddDot(s.center(), 2.0, "#d62728");
  }
  if (svg.WriteFile(out)) {
    printf("wrote %s\n", out);
  } else {
    printf("could not write %s\n", out);
  }
  return 0;
}
