#include "geom/seb.h"

#include <cmath>
#include <random>

namespace unn {
namespace geom {
namespace {

Circle FromTwo(Vec2 a, Vec2 b) {
  Vec2 c = (a + b) * 0.5;
  return {c, Dist(a, b) * 0.5};
}

Circle FromThree(Vec2 a, Vec2 b, Vec2 c) {
  // Circumcircle via the perpendicular-bisector linear system.
  double bx = b.x - a.x, by = b.y - a.y;
  double cx = c.x - a.x, cy = c.y - a.y;
  double d = 2.0 * (bx * cy - by * cx);
  if (d == 0.0) {
    // Collinear: return the smallest circle through the two extremes.
    Circle r = FromTwo(a, b);
    Circle s = FromTwo(a, c);
    Circle t = FromTwo(b, c);
    Circle best = r;
    if (s.radius > best.radius) best = s;
    if (t.radius > best.radius) best = t;
    return best;
  }
  double b2 = bx * bx + by * by;
  double c2 = cx * cx + cy * cy;
  Vec2 center{a.x + (cy * b2 - by * c2) / d, a.y + (bx * c2 - cx * b2) / d};
  return {center, Dist(center, a)};
}

bool InCircle(const Circle& c, Vec2 p) {
  return Dist(c.center, p) <= c.radius * (1.0 + 1e-12) + 1e-12;
}

}  // namespace

Circle SmallestEnclosingCircle(std::vector<Vec2> pts, uint64_t seed) {
  if (pts.empty()) return {Vec2{0, 0}, 0.0};
  std::mt19937_64 rng(seed);
  std::shuffle(pts.begin(), pts.end(), rng);

  // Welzl's move-to-front scheme, iterative formulation.
  Circle c{pts[0], 0.0};
  int n = static_cast<int>(pts.size());
  for (int i = 1; i < n; ++i) {
    if (InCircle(c, pts[i])) continue;
    c = {pts[i], 0.0};
    for (int j = 0; j < i; ++j) {
      if (InCircle(c, pts[j])) continue;
      c = FromTwo(pts[i], pts[j]);
      for (int k = 0; k < j; ++k) {
        if (InCircle(c, pts[k])) continue;
        c = FromThree(pts[i], pts[j], pts[k]);
      }
    }
  }
  return c;
}

}  // namespace geom
}  // namespace unn
