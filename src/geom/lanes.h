#ifndef UNN_GEOM_LANES_H_
#define UNN_GEOM_LANES_H_

#include <cmath>
#include <cstddef>

#include "geom/vec2.h"

#if defined(__AVX2__)
#include <immintrin.h>
#define UNN_LANES_ISA_AVX2 1
#elif defined(__SSE2__) || defined(_M_X64) || defined(_M_AMD64)
#include <emmintrin.h>
#define UNN_LANES_ISA_SSE2 1
#endif

/// \file lanes.h
/// The portable fixed-width lane abstraction behind the batched traversal
/// kernels (spatial/batch.h): arithmetic on kLaneWidth doubles at a time,
/// dispatched at build time to AVX2 (two 4-lane registers), SSE2 (four
/// 2-lane registers), or a plain scalar loop. Every operation here is a
/// composition of IEEE-754 basic operations (+, -, *, min, max) applied
/// per lane in the same order as the scalar code it replaces, and no
/// fused multiply-add is ever emitted (the repo builds with
/// -ffp-contract=off), so each lane's result is bit-identical to the
/// scalar computation — the property the batch engines' exactness
/// contract rests on.

namespace unn {
namespace geom {

/// Queries per pack. Fixed across ISAs so pack formation, masks, and the
/// differential tests are ISA-independent.
inline constexpr int kLaneWidth = 8;

/// Which instruction set the lane ops compile to (bench/CI provenance).
inline const char* LaneIsaName() {
#if defined(UNN_LANES_ISA_AVX2)
  return "avx2";
#elif defined(UNN_LANES_ISA_SSE2)
  return "sse2";
#else
  return "scalar";
#endif
}

/// out[l] = (qx[l] - p.x)^2 + (qy[l] - p.y)^2 — DistSq of one point
/// against kLaneWidth query lanes, each lane rounding exactly like the
/// scalar geom::DistSq (two subtractions, two squarings, one add).
inline void DistSqLanes(const double* qx, const double* qy, Vec2 p,
                        double* out) {
#if defined(UNN_LANES_ISA_AVX2)
  __m256d px = _mm256_set1_pd(p.x);
  __m256d py = _mm256_set1_pd(p.y);
  for (int h = 0; h < 2; ++h) {
    __m256d dx = _mm256_sub_pd(_mm256_loadu_pd(qx + 4 * h), px);
    __m256d dy = _mm256_sub_pd(_mm256_loadu_pd(qy + 4 * h), py);
    _mm256_storeu_pd(out + 4 * h, _mm256_add_pd(_mm256_mul_pd(dx, dx),
                                                _mm256_mul_pd(dy, dy)));
  }
#elif defined(UNN_LANES_ISA_SSE2)
  __m128d px = _mm_set1_pd(p.x);
  __m128d py = _mm_set1_pd(p.y);
  for (int h = 0; h < 4; ++h) {
    __m128d dx = _mm_sub_pd(_mm_loadu_pd(qx + 2 * h), px);
    __m128d dy = _mm_sub_pd(_mm_loadu_pd(qy + 2 * h), py);
    _mm_storeu_pd(out + 2 * h,
                  _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy)));
  }
#else
  for (int l = 0; l < kLaneWidth; ++l) {
    double dx = qx[l] - p.x;
    double dy = qy[l] - p.y;
    out[l] = dx * dx + dy * dy;
  }
#endif
}

/// out[l] = box.DistSqTo({qx[l], qy[l]}) — the squared point-to-box
/// distance of vec2.h, per lane: dx = max(lo.x - q.x, 0, q.x - hi.x)
/// (exact, max never rounds), then dx^2 + dy^2 with the scalar's
/// rounding order.
inline void BoxDistSqLanes(const double* qx, const double* qy, const Box& b,
                           double* out) {
#if defined(UNN_LANES_ISA_AVX2)
  __m256d lox = _mm256_set1_pd(b.lo.x);
  __m256d loy = _mm256_set1_pd(b.lo.y);
  __m256d hix = _mm256_set1_pd(b.hi.x);
  __m256d hiy = _mm256_set1_pd(b.hi.y);
  __m256d zero = _mm256_setzero_pd();
  for (int h = 0; h < 2; ++h) {
    __m256d x = _mm256_loadu_pd(qx + 4 * h);
    __m256d y = _mm256_loadu_pd(qy + 4 * h);
    __m256d dx = _mm256_max_pd(
        _mm256_max_pd(_mm256_sub_pd(lox, x), zero), _mm256_sub_pd(x, hix));
    __m256d dy = _mm256_max_pd(
        _mm256_max_pd(_mm256_sub_pd(loy, y), zero), _mm256_sub_pd(y, hiy));
    _mm256_storeu_pd(out + 4 * h, _mm256_add_pd(_mm256_mul_pd(dx, dx),
                                                _mm256_mul_pd(dy, dy)));
  }
#elif defined(UNN_LANES_ISA_SSE2)
  __m128d lox = _mm_set1_pd(b.lo.x);
  __m128d loy = _mm_set1_pd(b.lo.y);
  __m128d hix = _mm_set1_pd(b.hi.x);
  __m128d hiy = _mm_set1_pd(b.hi.y);
  __m128d zero = _mm_setzero_pd();
  for (int h = 0; h < 4; ++h) {
    __m128d x = _mm_loadu_pd(qx + 2 * h);
    __m128d y = _mm_loadu_pd(qy + 2 * h);
    __m128d dx = _mm_max_pd(_mm_max_pd(_mm_sub_pd(lox, x), zero),
                            _mm_sub_pd(x, hix));
    __m128d dy = _mm_max_pd(_mm_max_pd(_mm_sub_pd(loy, y), zero),
                            _mm_sub_pd(y, hiy));
    _mm_storeu_pd(out + 2 * h,
                  _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy)));
  }
#else
  for (int l = 0; l < kLaneWidth; ++l) {
    out[l] = b.DistSqTo({qx[l], qy[l]});
  }
#endif
}

/// out[l] = sqrt(a[l]). IEEE-754 square root is correctly rounded on
/// every path (VSQRTPD / SQRTPD / std::sqrt), so each lane is
/// bit-identical to the scalar std::sqrt of the same input — sqrt joins
/// +, -, *, min, max in the set of operations the exactness contract
/// allows inside a batched bound.
inline void SqrtLanes(const double* a, double* out) {
#if defined(UNN_LANES_ISA_AVX2)
  _mm256_storeu_pd(out, _mm256_sqrt_pd(_mm256_loadu_pd(a)));
  _mm256_storeu_pd(out + 4, _mm256_sqrt_pd(_mm256_loadu_pd(a + 4)));
#elif defined(UNN_LANES_ISA_SSE2)
  for (int h = 0; h < 4; ++h) {
    _mm_storeu_pd(out + 2 * h, _mm_sqrt_pd(_mm_loadu_pd(a + 2 * h)));
  }
#else
  for (int l = 0; l < kLaneWidth; ++l) out[l] = std::sqrt(a[l]);
#endif
}

/// out[l] = a[l] + s — broadcast add (e.g. squared box distance plus a
/// subtree-minimum variance), rounding exactly like the scalar sum.
inline void AddScalarLanes(const double* a, double s, double* out) {
#if defined(UNN_LANES_ISA_AVX2)
  __m256d sv = _mm256_set1_pd(s);
  _mm256_storeu_pd(out, _mm256_add_pd(_mm256_loadu_pd(a), sv));
  _mm256_storeu_pd(out + 4, _mm256_add_pd(_mm256_loadu_pd(a + 4), sv));
#elif defined(UNN_LANES_ISA_SSE2)
  __m128d sv = _mm_set1_pd(s);
  for (int h = 0; h < 4; ++h) {
    _mm_storeu_pd(out + 2 * h, _mm_add_pd(_mm_loadu_pd(a + 2 * h), sv));
  }
#else
  for (int l = 0; l < kLaneWidth; ++l) out[l] = a[l] + s;
#endif
}

}  // namespace geom
}  // namespace unn

#endif  // UNN_GEOM_LANES_H_
