#ifndef UNN_GEOM_CONIC_H_
#define UNN_GEOM_CONIC_H_

#include <optional>

#include "geom/vec2.h"

/// \file conic.h
/// Focal conics: single hyperbola branches expressed in polar form about one
/// focus. Every curve appearing in the nonzero Voronoi machinery of the
/// paper is such a branch (DESIGN.md section 2):
///
///   gamma_ij = { x : delta_i(x) = Delta_j(x) }   (distance difference r_i+r_j)
///   bisector { delta_i = delta_j }               (distance difference r_i-r_j)
///   AW-Voronoi bisector { d(x,c_i)+r_i = d(x,c_j)+r_j }
///
/// all have the form { x : d(x, origin) - d(x, other) = s } with |s| < D,
/// D = |origin - other|, which in polar coordinates (r, theta) about
/// `origin` is the function graph
///
///   r(theta) = (D^2 - s^2) / (2 (D cos(theta - phi) - s)),
///
/// valid on the open angular window |theta - phi| < alpha = arccos(s/D),
/// where phi is the direction from `origin` to `other`. Each ray from the
/// origin focus meets the branch at most once, which is what makes
/// polar-envelope computation (Lemma 2.2) possible.

namespace unn {
namespace geom {

/// One hyperbola branch { x : d(x, origin) - d(x, other) = s }, |s| < D,
/// as a polar function graph about `origin`. Immutable value type.
class FocalConic {
 public:
  /// Builds the branch, or nullopt when it is empty (|s| >= D, including the
  /// degenerate |s| == D ray, which we treat as empty per the general-position
  /// policy).
  static std::optional<FocalConic> DistanceDifference(Vec2 origin, Vec2 other,
                                                      double s);

  /// Polar radius at angle `theta` (caller must ensure InDomain(theta);
  /// values blow up toward the domain boundary).
  double RadiusAt(double theta) const;

  /// Point on the branch at angle `theta` about the origin focus.
  Vec2 PointAt(double theta) const;

  /// True if `theta` lies strictly inside the angular domain, shrunk by
  /// `slack` radians on both sides (slack may be negative to widen).
  bool InDomain(double theta, double slack = 0.0) const;

  /// Direction from origin focus to the other focus, in [0, 2*pi).
  double phi() const { return phi_; }
  /// Half-width of the angular domain, in (0, pi).
  double alpha() const { return alpha_; }
  /// Domain endpoints (not normalized; lo may be negative, hi may exceed
  /// 2*pi; the domain is (lo, hi) on the circle).
  double DomainLo() const { return phi_ - alpha_; }
  double DomainHi() const { return phi_ + alpha_; }

  Vec2 origin() const { return origin_; }
  Vec2 other() const { return other_; }
  double D() const { return dist_; }
  double s() const { return s_; }

  /// Implicit function F(x) = d(x, origin) - d(x, other) - s whose zero set
  /// is this branch. Sign tells which side of the branch `x` lies on:
  /// negative on the side containing the origin focus.
  double Implicit(Vec2 x) const;

  /// Intersections of two branches that share the same origin focus.
  /// Writes up to two angles (normalized to [0, 2*pi)) at which the two
  /// polar graphs coincide and are both in-domain; returns the count.
  static int Intersect(const FocalConic& c1, const FocalConic& c2,
                       double out_thetas[2]);

  /// An intersection between this branch and a parametric segment.
  struct SegmentHit {
    double t;       ///< Parameter along [p, q], in [0, 1].
    double theta;   ///< Polar angle about the origin focus, in [0, 2*pi).
    Vec2 point;     ///< The intersection point.
  };

  /// Intersections with the closed segment [p, q]; at most two.
  int IntersectSegment(Vec2 p, Vec2 q, SegmentHit out[2]) const;

 private:
  FocalConic(Vec2 origin, Vec2 other, double s, double dist, double phi,
             double alpha)
      : origin_(origin),
        other_(other),
        s_(s),
        dist_(dist),
        phi_(phi),
        alpha_(alpha) {}

  Vec2 origin_;
  Vec2 other_;
  double s_;
  double dist_;
  double phi_;
  double alpha_;
};

}  // namespace geom
}  // namespace unn

#endif  // UNN_GEOM_CONIC_H_
