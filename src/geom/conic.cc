#include "geom/conic.h"

#include <cmath>

#include "geom/trig.h"
#include "util/check.h"

namespace unn {
namespace geom {

std::optional<FocalConic> FocalConic::DistanceDifference(Vec2 origin,
                                                         Vec2 other,
                                                         double s) {
  double dist = Dist(origin, other);
  // |d(x, origin) - d(x, other)| < D strictly for points off the focal line,
  // so |s| >= D yields an empty or degenerate (ray) locus. The library's
  // general-position policy treats both as empty.
  if (!(std::abs(s) < dist) || dist == 0.0) return std::nullopt;
  double phi = NormalizeAngle(Angle(other - origin));
  double alpha = std::acos(s / dist);
  return FocalConic(origin, other, s, dist, phi, alpha);
}

double FocalConic::RadiusAt(double theta) const {
  double denom = 2.0 * (dist_ * std::cos(theta - phi_) - s_);
  return (dist_ * dist_ - s_ * s_) / denom;
}

Vec2 FocalConic::PointAt(double theta) const {
  return origin_ + UnitVec(theta) * RadiusAt(theta);
}

bool FocalConic::InDomain(double theta, double slack) const {
  double d = std::abs(AngleDiff(theta, phi_));
  return d < alpha_ - slack;
}

double FocalConic::Implicit(Vec2 x) const {
  return Dist(x, origin_) - Dist(x, other_) - s_;
}

int FocalConic::Intersect(const FocalConic& c1, const FocalConic& c2,
                          double out_thetas[2]) {
  UNN_DCHECK(DistSq(c1.origin_, c2.origin_) == 0.0);
  // r1(theta) = N1 / (2 (D1 cos(theta - phi1) - s1)), N1 = D1^2 - s1^2 > 0.
  // Setting r1 = r2 and clearing denominators gives a linear equation in
  // (cos theta, sin theta). Roots where a denominator is negative are
  // artifacts of the clearing and are rejected by the InDomain filter.
  double n1 = c1.dist_ * c1.dist_ - c1.s_ * c1.s_;
  double n2 = c2.dist_ * c2.dist_ - c2.s_ * c2.s_;
  double a = n1 * c2.dist_ * std::cos(c2.phi_) - n2 * c1.dist_ * std::cos(c1.phi_);
  double b = n1 * c2.dist_ * std::sin(c2.phi_) - n2 * c1.dist_ * std::sin(c1.phi_);
  double c = n1 * c2.s_ - n2 * c1.s_;
  double roots[2];
  int nroots = SolveCosSin(a, b, c, roots);
  int count = 0;
  for (int i = 0; i < nroots; ++i) {
    if (c1.InDomain(roots[i]) && c2.InDomain(roots[i])) {
      out_thetas[count++] = roots[i];
    }
  }
  return count;
}

int FocalConic::IntersectSegment(Vec2 p, Vec2 q, SegmentHit out[2]) const {
  // Cartesian form: L(x) = |x-o|^2 - |x-b|^2 - s^2 is linear in x, and the
  // branch satisfies L(x) = 2 s d(x, b) with d(x, b) >= 0. Squaring yields
  // the quadratic L(x)^2 = 4 s^2 |x-b|^2; on the parametric segment
  // x(t) = p + t u this is a quadratic in t. For s == 0 the branch is the
  // perpendicular bisector line L(x) = 0.
  Vec2 u = q - p;
  Vec2 po = p - origin_;
  Vec2 pb = p - other_;
  // L(t) = l0 + l1 t.
  double l0 = NormSq(po) - NormSq(pb) - s_ * s_;
  double l1 = 2.0 * (Dot(po, u) - Dot(pb, u));
  // |x(t)-b|^2 = q0 + q1 t + q2 t^2.
  double q0 = NormSq(pb);
  double q1 = 2.0 * Dot(pb, u);
  double q2 = NormSq(u);

  double ts[2];
  int nts = 0;
  double scale = std::max({std::abs(l0), std::abs(l1), q2, 1e-300});
  if (s_ == 0.0) {
    if (std::abs(l1) > 1e-15 * scale) {
      ts[nts++] = -l0 / l1;
    }
  } else {
    double s2 = 4.0 * s_ * s_;
    double a = l1 * l1 - s2 * q2;
    double b = 2.0 * l0 * l1 - s2 * q1;
    double c = l0 * l0 - s2 * q0;
    double mag = std::max({std::abs(a), std::abs(b), std::abs(c), 1e-300});
    if (std::abs(a) <= 1e-14 * mag) {
      if (std::abs(b) > 1e-14 * mag) ts[nts++] = -c / b;
    } else {
      double disc = b * b - 4.0 * a * c;
      if (disc >= 0.0) {
        double sq = std::sqrt(disc);
        // Numerically stable quadratic roots.
        double qq = -0.5 * (b + (b >= 0 ? sq : -sq));
        ts[nts++] = qq / a;
        if (qq != 0.0) ts[nts++] = c / qq;
      }
    }
  }

  int count = 0;
  double seg_len = std::sqrt(q2);
  for (int i = 0; i < nts && count < 2; ++i) {
    double t = ts[i];
    if (t < -1e-12 || t > 1.0 + 1e-12) continue;
    t = std::clamp(t, 0.0, 1.0);
    Vec2 x = p + u * t;
    // Reject the spurious branch introduced by squaring: require that the
    // signed constraint d(x,o) - d(x,b) = s actually holds.
    double residual = Implicit(x);
    double tol = 1e-7 * std::max(1.0, dist_ + seg_len);
    if (std::abs(residual) > tol) continue;
    // Deduplicate near-coincident roots (tangency).
    if (count == 1 && std::abs(out[0].t - t) * seg_len < 1e-9) continue;
    out[count].t = t;
    out[count].theta = NormalizeAngle(Angle(x - origin_));
    out[count].point = x;
    ++count;
  }
  if (count == 2 && out[0].t > out[1].t) std::swap(out[0], out[1]);
  return count;
}

}  // namespace geom
}  // namespace unn
