#include "geom/convex.h"

#include <algorithm>
#include <cmath>

#include "geom/predicates.h"

namespace unn {
namespace geom {

std::vector<Vec2> ConvexHull(std::vector<Vec2> pts) {
  std::sort(pts.begin(), pts.end(), [](Vec2 a, Vec2 b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  int n = static_cast<int>(pts.size());
  if (n < 3) return pts;

  std::vector<Vec2> hull(2 * n);
  int k = 0;
  for (int i = 0; i < n; ++i) {  // Lower hull.
    while (k >= 2 && Orient2dSign(hull[k - 2], hull[k - 1], pts[i]) <= 0) --k;
    hull[k++] = pts[i];
  }
  int lower = k + 1;
  for (int i = n - 2; i >= 0; --i) {  // Upper hull.
    while (k >= lower && Orient2dSign(hull[k - 2], hull[k - 1], pts[i]) <= 0) --k;
    hull[k++] = pts[i];
  }
  hull.resize(k - 1);  // Last point equals the first.
  return hull;
}

std::vector<Vec2> ClipConvexByHalfplane(const std::vector<Vec2>& poly,
                                        const Halfplane& hp) {
  std::vector<Vec2> out;
  int n = static_cast<int>(poly.size());
  if (n == 0) return out;
  out.reserve(n + 1);
  for (int i = 0; i < n; ++i) {
    Vec2 a = poly[i];
    Vec2 b = poly[(i + 1) % n];
    double va = hp.Violation(a);
    double vb = hp.Violation(b);
    if (va <= 0) out.push_back(a);
    if ((va < 0 && vb > 0) || (va > 0 && vb < 0)) {
      double t = va / (va - vb);
      out.push_back(Lerp(a, b, t));
    }
  }
  return out;
}

std::vector<Vec2> HalfplaneIntersection(const std::vector<Halfplane>& hps,
                                        const Box& bound) {
  std::vector<Vec2> poly = {bound.lo,
                            {bound.hi.x, bound.lo.y},
                            bound.hi,
                            {bound.lo.x, bound.hi.y}};
  for (const Halfplane& hp : hps) {
    poly = ClipConvexByHalfplane(poly, hp);
    if (poly.empty()) break;
  }
  return poly;
}

bool PointInConvex(const std::vector<Vec2>& poly, Vec2 p, double eps) {
  int n = static_cast<int>(poly.size());
  if (n == 0) return false;
  if (n == 1) return Dist(poly[0], p) <= eps;
  for (int i = 0; i < n; ++i) {
    Vec2 a = poly[i];
    Vec2 b = poly[(i + 1) % n];
    Vec2 e = b - a;
    double len = Norm(e);
    if (len == 0) continue;
    // Signed distance of p left of edge a->b; negative means outside (CCW).
    double sd = Cross(e, p - a) / len;
    if (sd < -eps) return false;
  }
  return true;
}

double PolygonArea(const std::vector<Vec2>& poly) {
  double a = 0.0;
  int n = static_cast<int>(poly.size());
  for (int i = 0; i < n; ++i) a += Cross(poly[i], poly[(i + 1) % n]);
  return 0.5 * a;
}

}  // namespace geom
}  // namespace unn
