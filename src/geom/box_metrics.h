#ifndef UNN_GEOM_BOX_METRICS_H_
#define UNN_GEOM_BOX_METRICS_H_

#include <algorithm>
#include <cmath>
#include <span>

#include "geom/vec2.h"

/// \file box_metrics.h
/// Point-to-box and point-to-point distance helpers shared by the spatial
/// core (src/spatial/) and the remaining ad-hoc geometry callers, so every
/// tree prunes against one definition. The Euclidean point-to-box
/// min/max distances live on geom::Box itself (Box::DistSqTo /
/// Box::MaxDistTo); this header adds the square-root form, the Chebyshev
/// (L_inf) variants, and box-of-range computation.

namespace unn {
namespace geom {

/// Euclidean distance from `q` to the box (0 if inside). The sqrt form of
/// Box::DistSqTo, the lower bound every L2 tree prunes with.
inline double MinDistToBox(Vec2 q, const Box& b) {
  return std::sqrt(b.DistSqTo(q));
}

/// Chebyshev (L_inf) distance between points.
inline double ChebyshevDist(Vec2 a, Vec2 b) {
  return std::max(std::abs(a.x - b.x), std::abs(a.y - b.y));
}

/// Chebyshev distance from `q` to the box (0 if inside).
inline double ChebyshevDistToBox(Vec2 q, const Box& b) {
  double dx = std::max({b.lo.x - q.x, 0.0, q.x - b.hi.x});
  double dy = std::max({b.lo.y - q.y, 0.0, q.y - b.hi.y});
  return std::max(dx, dy);
}

/// Bounding box of a point set.
inline Box BoxOf(std::span<const Vec2> pts) {
  Box b;
  for (Vec2 p : pts) b.Expand(p);
  return b;
}

}  // namespace geom
}  // namespace unn

#endif  // UNN_GEOM_BOX_METRICS_H_
