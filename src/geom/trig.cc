#include "geom/trig.h"

#include <algorithm>
#include <cmath>

namespace unn {
namespace geom {

double NormalizeAngle(double a) {
  double r = std::fmod(a, kTwoPi);
  if (r < 0) r += kTwoPi;
  // fmod can return exactly kTwoPi after the correction when `a` is a tiny
  // negative number; fold that back to 0.
  if (r >= kTwoPi) r -= kTwoPi;
  return r;
}

double AngleDiff(double a, double b) {
  double d = std::fmod(a - b, kTwoPi);
  if (d > kTwoPi / 2) d -= kTwoPi;
  if (d <= -kTwoPi / 2) d += kTwoPi;
  return d;
}

int SolveCosSin(double a, double b, double c, double roots[2]) {
  double r = std::hypot(a, b);
  if (r == 0.0) return 0;  // Degenerate: either no solution or all angles.
  double u = c / r;
  if (u > 1.0 || u < -1.0) {
    // Allow a hair of rounding slack at the tangency boundary.
    if (std::abs(u) > 1.0 + 1e-12) return 0;
    u = std::clamp(u, -1.0, 1.0);
  }
  double phase = std::atan2(b, a);
  double d = std::acos(u);
  double t0 = NormalizeAngle(phase + d);
  double t1 = NormalizeAngle(phase - d);
  roots[0] = t0;
  if (d < 1e-12 || kTwoPi / 2 - d < 1e-12) return 1;  // Double root.
  roots[1] = t1;
  return 2;
}

bool AngleInCcwInterval(double t, double lo, double hi) {
  t = NormalizeAngle(t);
  lo = NormalizeAngle(lo);
  hi = NormalizeAngle(hi);
  if (lo <= hi) return t >= lo && t <= hi;
  return t >= lo || t <= hi;  // Interval wraps through 0.
}

}  // namespace geom
}  // namespace unn
