#ifndef UNN_GEOM_PREDICATES_H_
#define UNN_GEOM_PREDICATES_H_

#include "geom/vec2.h"

/// \file predicates.h
/// Robust geometric predicates. Orient2d follows Shewchuk's adaptive-precision
/// scheme: a cheap floating-point filter answers almost all calls, and the
/// rare near-degenerate ones fall through to exact expansion arithmetic, so
/// the returned sign is always correct. All segment-based constructions
/// (discrete-case arrangements, polygon clipping) rely on this.

namespace unn {
namespace geom {

/// Sign of twice the signed area of triangle (a, b, c).
/// Positive if a->b->c is counter-clockwise, negative if clockwise, exactly
/// zero iff the three points are collinear.
double Orient2d(Vec2 a, Vec2 b, Vec2 c);

/// Convenience: -1, 0, +1 from Orient2d.
int Orient2dSign(Vec2 a, Vec2 b, Vec2 c);

/// True if segments [a,b] and [c,d] share at least one point (exact, closed
/// segments, handles all collinear/touching cases).
bool SegmentsIntersect(Vec2 a, Vec2 b, Vec2 c, Vec2 d);

/// True if point p lies on the closed segment [a,b] (exact).
bool PointOnSegment(Vec2 p, Vec2 a, Vec2 b);

/// Intersection point of the *lines* through (a,b) and (c,d), if the lines
/// are not parallel. Computed in double precision (not exact); `ok` is set
/// false for (near-)parallel lines.
Vec2 LineIntersection(Vec2 a, Vec2 b, Vec2 c, Vec2 d, bool* ok);

}  // namespace geom
}  // namespace unn

#endif  // UNN_GEOM_PREDICATES_H_
