#ifndef UNN_GEOM_SEB_H_
#define UNN_GEOM_SEB_H_

#include <cstdint>
#include <vector>

#include "geom/vec2.h"

/// \file seb.h
/// Smallest enclosing ball (circle) of a planar point set, Welzl's
/// randomized algorithm. Used by the discrete-case query structures: for a
/// group P_i with enclosing circle (c, R), the farthest-point distance
/// satisfies  max_p d(q,p) >= sqrt(d(q,c)^2 + R^2)  (some defining point is
/// on the far side of c), which gives the branch-and-bound lower bound used
/// to compute Phi(q) (DESIGN.md section 3).

namespace unn {
namespace geom {

/// A circle given by center and radius.
struct Circle {
  Vec2 center;
  double radius = 0.0;

  bool Contains(Vec2 p, double slack = 1e-9) const {
    return Dist(center, p) <= radius * (1.0 + slack) + slack;
  }
};

/// Smallest circle enclosing `pts` (empty input yields radius 0 at origin).
/// Expected linear time; `seed` controls the internal shuffle.
Circle SmallestEnclosingCircle(std::vector<Vec2> pts, uint64_t seed = 0x9e3779b9);

}  // namespace geom
}  // namespace unn

#endif  // UNN_GEOM_SEB_H_
