#ifndef UNN_GEOM_CONVEX_H_
#define UNN_GEOM_CONVEX_H_

#include <vector>

#include "geom/vec2.h"

/// \file convex.h
/// Convex-geometry utilities: hulls, halfplane intersection (used to build
/// the convex polygons K_ij = {Phi_j <= phi_i} of the discrete case, Section
/// 2.2 of the paper), and polygon helpers.

namespace unn {
namespace geom {

/// Convex hull (counter-clockwise, no repeated first vertex, strictly convex
/// corners only — collinear interior points are dropped). Returns all
/// distinct points if fewer than 3 remain.
std::vector<Vec2> ConvexHull(std::vector<Vec2> pts);

/// The closed halfplane { x : Dot(n, x) <= c }.
struct Halfplane {
  Vec2 n;
  double c = 0.0;

  /// Halfplane of points x with f(x) <= f(y)-style linear comparisons:
  /// built from the inequality Dot(n, x) <= c directly.
  static Halfplane FromInequality(Vec2 n, double c) { return {n, c}; }

  /// Signed violation: positive outside, negative inside.
  double Violation(Vec2 x) const { return Dot(n, x) - c; }
};

/// Clips a convex polygon (CCW) against one halfplane (Sutherland–Hodgman
/// step). Result may be empty.
std::vector<Vec2> ClipConvexByHalfplane(const std::vector<Vec2>& poly,
                                        const Halfplane& hp);

/// Intersection of halfplanes, bounded by `bound` (the bound keeps unbounded
/// intersections finite; choose it generously). Result is a CCW convex
/// polygon, possibly empty.
std::vector<Vec2> HalfplaneIntersection(const std::vector<Halfplane>& hps,
                                        const Box& bound);

/// True if `p` is inside or within distance `eps` of the CCW convex polygon.
bool PointInConvex(const std::vector<Vec2>& poly, Vec2 p, double eps = 0.0);

/// Signed area (positive for CCW).
double PolygonArea(const std::vector<Vec2>& poly);

}  // namespace geom
}  // namespace unn

#endif  // UNN_GEOM_CONVEX_H_
