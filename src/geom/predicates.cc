#include "geom/predicates.h"

#include <cmath>

namespace unn {
namespace geom {
namespace {

// ---------------------------------------------------------------------------
// Expansion arithmetic (Shewchuk, "Adaptive Precision Floating-Point
// Arithmetic and Fast Robust Geometric Predicates", 1997). An expansion is a
// sum of non-overlapping doubles stored least-significant first; the
// routines below are error-free transformations on such expansions.
// ---------------------------------------------------------------------------

constexpr double kEpsilon = 1.1102230246251565e-16;  // 2^-53
constexpr double kSplitter = 134217729.0;            // 2^27 + 1
constexpr double kResultErrBound = (3.0 + 8.0 * kEpsilon) * kEpsilon;
constexpr double kCcwErrBoundA = (3.0 + 16.0 * kEpsilon) * kEpsilon;
constexpr double kCcwErrBoundB = (2.0 + 12.0 * kEpsilon) * kEpsilon;
constexpr double kCcwErrBoundC = (9.0 + 64.0 * kEpsilon) * kEpsilon * kEpsilon;

inline void FastTwoSum(double a, double b, double& x, double& y) {
  x = a + b;
  double bvirt = x - a;
  y = b - bvirt;
}

inline void TwoSum(double a, double b, double& x, double& y) {
  x = a + b;
  double bvirt = x - a;
  double avirt = x - bvirt;
  double bround = b - bvirt;
  double around = a - avirt;
  y = around + bround;
}

inline void TwoDiff(double a, double b, double& x, double& y) {
  x = a - b;
  double bvirt = a - x;
  double avirt = x + bvirt;
  double bround = bvirt - b;
  double around = a - avirt;
  y = around + bround;
}

inline void Split(double a, double& hi, double& lo) {
  double c = kSplitter * a;
  double abig = c - a;
  hi = c - abig;
  lo = a - hi;
}

inline void TwoProduct(double a, double b, double& x, double& y) {
  x = a * b;
  double ahi, alo, bhi, blo;
  Split(a, ahi, alo);
  Split(b, bhi, blo);
  double err1 = x - (ahi * bhi);
  double err2 = err1 - (alo * bhi);
  double err3 = err2 - (ahi * blo);
  y = (alo * blo) - err3;
}

inline void TwoOneDiff(double a1, double a0, double b, double& x2, double& x1,
                       double& x0) {
  double i;
  TwoDiff(a0, b, i, x0);
  TwoSum(a1, i, x2, x1);
}

inline void TwoTwoDiff(double a1, double a0, double b1, double b0, double& x3,
                       double& x2, double& x1, double& x0) {
  double j, m;
  TwoOneDiff(a1, a0, b0, j, m, x0);
  TwoOneDiff(j, m, b1, x3, x2, x1);
}

// h = e + f, eliminating zero components; returns the length of h.
int FastExpansionSumZeroElim(int elen, const double* e, int flen,
                             const double* f, double* h) {
  double q, qnew, hh;
  int eindex = 0, findex = 0, hindex = 0;
  double enow = e[0], fnow = f[0];
  if ((fnow > enow) == (fnow > -enow)) {
    q = enow;
    ++eindex;
  } else {
    q = fnow;
    ++findex;
  }
  if (eindex < elen && findex < flen) {
    enow = e[eindex];
    fnow = f[findex];
    if ((fnow > enow) == (fnow > -enow)) {
      FastTwoSum(enow, q, qnew, hh);
      ++eindex;
    } else {
      FastTwoSum(fnow, q, qnew, hh);
      ++findex;
    }
    q = qnew;
    if (hh != 0.0) h[hindex++] = hh;
    while (eindex < elen && findex < flen) {
      enow = e[eindex];
      fnow = f[findex];
      if ((fnow > enow) == (fnow > -enow)) {
        TwoSum(q, enow, qnew, hh);
        ++eindex;
      } else {
        TwoSum(q, fnow, qnew, hh);
        ++findex;
      }
      q = qnew;
      if (hh != 0.0) h[hindex++] = hh;
    }
  }
  while (eindex < elen) {
    TwoSum(q, e[eindex], qnew, hh);
    ++eindex;
    q = qnew;
    if (hh != 0.0) h[hindex++] = hh;
  }
  while (findex < flen) {
    TwoSum(q, f[findex], qnew, hh);
    ++findex;
    q = qnew;
    if (hh != 0.0) h[hindex++] = hh;
  }
  if (q != 0.0 || hindex == 0) h[hindex++] = q;
  return hindex;
}

double Estimate(int elen, const double* e) {
  double q = e[0];
  for (int i = 1; i < elen; ++i) q += e[i];
  return q;
}

double Orient2dAdapt(Vec2 a, Vec2 b, Vec2 c, double detsum) {
  double acx = a.x - c.x;
  double bcx = b.x - c.x;
  double acy = a.y - c.y;
  double bcy = b.y - c.y;

  double detleft, detlefttail, detright, detrighttail;
  TwoProduct(acx, bcy, detleft, detlefttail);
  TwoProduct(acy, bcx, detright, detrighttail);

  double B[4];
  TwoTwoDiff(detleft, detlefttail, detright, detrighttail, B[3], B[2], B[1],
             B[0]);

  double det = Estimate(4, B);
  double errbound = kCcwErrBoundB * detsum;
  if (det >= errbound || -det >= errbound) return det;

  double acxtail, bcxtail, acytail, bcytail;
  {
    double t;
    TwoDiff(a.x, c.x, t, acxtail);
    TwoDiff(b.x, c.x, t, bcxtail);
    TwoDiff(a.y, c.y, t, acytail);
    TwoDiff(b.y, c.y, t, bcytail);
  }
  if (acxtail == 0.0 && acytail == 0.0 && bcxtail == 0.0 && bcytail == 0.0) {
    return det;
  }

  errbound = kCcwErrBoundC * detsum + kResultErrBound * std::abs(det);
  det += (acx * bcytail + bcy * acxtail) - (acy * bcxtail + bcx * acytail);
  if (det >= errbound || -det >= errbound) return det;

  double s1, s0, t1, t0, u[4];
  double C1[8], C2[12], D[16];

  TwoProduct(acxtail, bcy, s1, s0);
  TwoProduct(acytail, bcx, t1, t0);
  TwoTwoDiff(s1, s0, t1, t0, u[3], u[2], u[1], u[0]);
  int c1length = FastExpansionSumZeroElim(4, B, 4, u, C1);

  TwoProduct(acx, bcytail, s1, s0);
  TwoProduct(acy, bcxtail, t1, t0);
  TwoTwoDiff(s1, s0, t1, t0, u[3], u[2], u[1], u[0]);
  int c2length = FastExpansionSumZeroElim(c1length, C1, 4, u, C2);

  TwoProduct(acxtail, bcytail, s1, s0);
  TwoProduct(acytail, bcxtail, t1, t0);
  TwoTwoDiff(s1, s0, t1, t0, u[3], u[2], u[1], u[0]);
  int dlength = FastExpansionSumZeroElim(c2length, C2, 4, u, D);

  return D[dlength - 1];
}

}  // namespace

double Orient2d(Vec2 a, Vec2 b, Vec2 c) {
  double detleft = (a.x - c.x) * (b.y - c.y);
  double detright = (a.y - c.y) * (b.x - c.x);
  double det = detleft - detright;
  double detsum;

  if (detleft > 0.0) {
    if (detright <= 0.0) return det;
    detsum = detleft + detright;
  } else if (detleft < 0.0) {
    if (detright >= 0.0) return det;
    detsum = -detleft - detright;
  } else {
    return det;
  }

  double errbound = kCcwErrBoundA * detsum;
  if (det >= errbound || -det >= errbound) return det;
  return Orient2dAdapt(a, b, c, detsum);
}

int Orient2dSign(Vec2 a, Vec2 b, Vec2 c) {
  double d = Orient2d(a, b, c);
  if (d > 0) return 1;
  if (d < 0) return -1;
  return 0;
}

bool PointOnSegment(Vec2 p, Vec2 a, Vec2 b) {
  if (Orient2dSign(a, b, p) != 0) return false;
  return p.x >= std::min(a.x, b.x) && p.x <= std::max(a.x, b.x) &&
         p.y >= std::min(a.y, b.y) && p.y <= std::max(a.y, b.y);
}

bool SegmentsIntersect(Vec2 a, Vec2 b, Vec2 c, Vec2 d) {
  int d1 = Orient2dSign(c, d, a);
  int d2 = Orient2dSign(c, d, b);
  int d3 = Orient2dSign(a, b, c);
  int d4 = Orient2dSign(a, b, d);
  if (((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
      ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))) {
    return true;
  }
  if (d1 == 0 && PointOnSegment(a, c, d)) return true;
  if (d2 == 0 && PointOnSegment(b, c, d)) return true;
  if (d3 == 0 && PointOnSegment(c, a, b)) return true;
  if (d4 == 0 && PointOnSegment(d, a, b)) return true;
  return false;
}

Vec2 LineIntersection(Vec2 a, Vec2 b, Vec2 c, Vec2 d, bool* ok) {
  Vec2 u = b - a;
  Vec2 v = d - c;
  double denom = Cross(u, v);
  double scale = Norm(u) * Norm(v);
  if (std::abs(denom) <= 1e-14 * scale) {
    if (ok != nullptr) *ok = false;
    return Vec2{};
  }
  double t = Cross(c - a, v) / denom;
  if (ok != nullptr) *ok = true;
  return a + u * t;
}

}  // namespace geom
}  // namespace unn
