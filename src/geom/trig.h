#ifndef UNN_GEOM_TRIG_H_
#define UNN_GEOM_TRIG_H_

/// \file trig.h
/// Closed-form trigonometric solvers. Every vertex computation in the
/// nonzero Voronoi machinery reduces to the linear trigonometric equation
///   A cos(t) + B sin(t) = C
/// (see DESIGN.md section 2, observation 3), solved here exactly up to
/// floating-point rounding.

namespace unn {
namespace geom {

/// Two pi.
inline constexpr double kTwoPi = 6.283185307179586476925286766559;

/// Maps an angle to the canonical range [0, 2*pi).
double NormalizeAngle(double a);

/// Signed circular difference `a - b` mapped to (-pi, pi].
double AngleDiff(double a, double b);

/// Solves `a*cos(t) + b*sin(t) = c` on [0, 2*pi).
///
/// Writes up to two distinct roots into `roots` and returns their count.
/// Tangential (double) roots are reported once. Returns 0 when the equation
/// has no solution or is degenerate (a = b = 0).
int SolveCosSin(double a, double b, double c, double roots[2]);

/// True if angle `t` lies in the circular closed interval from `lo` to `hi`
/// traversed counter-clockwise (all normalized internally). The interval may
/// wrap through 0; if lo == hi the interval is the single point.
bool AngleInCcwInterval(double t, double lo, double hi);

}  // namespace geom
}  // namespace unn

#endif  // UNN_GEOM_TRIG_H_
