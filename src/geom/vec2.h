#ifndef UNN_GEOM_VEC2_H_
#define UNN_GEOM_VEC2_H_

#include <algorithm>
#include <cmath>
#include <limits>

/// \file vec2.h
/// Plane vectors/points and axis-aligned boxes. These are deliberately
/// passive value types (Google-style structs): all state is public and all
/// operations are free functions or tiny inline members.

namespace unn {
namespace geom {

/// A point or vector in the plane.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double xx, double yy) : x(xx), y(yy) {}

  constexpr Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double t) const { return {x * t, y * t}; }
  constexpr Vec2 operator/(double t) const { return {x / t, y / t}; }
  constexpr Vec2 operator-() const { return {-x, -y}; }
  constexpr bool operator==(Vec2 o) const { return x == o.x && y == o.y; }
  constexpr bool operator!=(Vec2 o) const { return !(*this == o); }
};

constexpr Vec2 operator*(double t, Vec2 v) { return v * t; }

/// Dot product.
constexpr double Dot(Vec2 a, Vec2 b) { return a.x * b.x + a.y * b.y; }

/// 2D cross product (z-component of the 3D cross product).
constexpr double Cross(Vec2 a, Vec2 b) { return a.x * b.y - a.y * b.x; }

/// Squared Euclidean norm.
constexpr double NormSq(Vec2 v) { return Dot(v, v); }

/// Euclidean norm.
inline double Norm(Vec2 v) { return std::hypot(v.x, v.y); }

/// Squared Euclidean distance.
constexpr double DistSq(Vec2 a, Vec2 b) { return NormSq(a - b); }

/// Euclidean distance.
inline double Dist(Vec2 a, Vec2 b) { return Norm(a - b); }

/// Counter-clockwise perpendicular.
constexpr Vec2 Perp(Vec2 v) { return {-v.y, v.x}; }

/// Unit vector in direction `theta` (radians).
inline Vec2 UnitVec(double theta) { return {std::cos(theta), std::sin(theta)}; }

/// Angle of `v` in [-pi, pi].
inline double Angle(Vec2 v) { return std::atan2(v.y, v.x); }

/// Normalized copy of `v`; returns (0,0) for the zero vector.
inline Vec2 Normalized(Vec2 v) {
  double n = Norm(v);
  return n > 0 ? v / n : Vec2{0, 0};
}

/// Linear interpolation `a + t (b - a)`.
constexpr Vec2 Lerp(Vec2 a, Vec2 b, double t) { return a + (b - a) * t; }

/// An axis-aligned bounding box. Default-constructed boxes are empty and
/// absorb points via Expand().
struct Box {
  Vec2 lo{std::numeric_limits<double>::infinity(),
          std::numeric_limits<double>::infinity()};
  Vec2 hi{-std::numeric_limits<double>::infinity(),
          -std::numeric_limits<double>::infinity()};

  constexpr Box() = default;
  constexpr Box(Vec2 l, Vec2 h) : lo(l), hi(h) {}

  bool Empty() const { return lo.x > hi.x || lo.y > hi.y; }

  /// Grows the box to contain `p`.
  void Expand(Vec2 p) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }

  /// Grows the box to contain `b`.
  void Expand(const Box& b) {
    Expand(b.lo);
    Expand(b.hi);
  }

  bool Contains(Vec2 p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }

  Vec2 Center() const { return (lo + hi) * 0.5; }
  double Width() const { return hi.x - lo.x; }
  double Height() const { return hi.y - lo.y; }
  double Diagonal() const { return Dist(lo, hi); }

  /// Box grown by `margin` on every side.
  Box Inflated(double margin) const {
    return Box{{lo.x - margin, lo.y - margin}, {hi.x + margin, hi.y + margin}};
  }

  /// Squared distance from `p` to the box (0 if inside).
  double DistSqTo(Vec2 p) const {
    double dx = std::max({lo.x - p.x, 0.0, p.x - hi.x});
    double dy = std::max({lo.y - p.y, 0.0, p.y - hi.y});
    return dx * dx + dy * dy;
  }

  /// Largest distance from `p` to any point of the box.
  double MaxDistTo(Vec2 p) const {
    double dx = std::max(std::abs(p.x - lo.x), std::abs(p.x - hi.x));
    double dy = std::max(std::abs(p.y - lo.y), std::abs(p.y - hi.y));
    return std::hypot(dx, dy);
  }
};

}  // namespace geom
}  // namespace unn

#endif  // UNN_GEOM_VEC2_H_
