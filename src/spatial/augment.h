#ifndef UNN_SPATIAL_AUGMENT_H_
#define UNN_SPATIAL_AUGMENT_H_

#include <algorithm>
#include <limits>
#include <vector>

/// \file augment.h
/// Node-augmentation policies for spatial::FlatKdTree. An augmentation
/// owns one flat array per per-node statistic (structure-of-arrays, same
/// layout as the tree's own node arrays) and folds items into them during
/// the build:
///
///   void Reserve(int nodes);   // capacity hint, before the build
///   void AddNode();            // append identity stats for node i
///   void AbsorbRange(int node, const int* ids, int count);
///                              // fold `count` item ids into node's stats
///   void Seal();               // build done: drop build-only state
///
/// AddNode/AbsorbRange are only ever called during the build (each node
/// sees its item range exactly once, parents before children); Seal()
/// must leave the augmentation free of pointers into caller state so the
/// finished tree can be copied and moved safely. Range-based absorption
/// lets policies accumulate in locals and store once per node — the
/// build-hot path. Policies compose with PairAugment when a tree needs
/// several statistics.

namespace unn {
namespace spatial {

/// No per-node statistics (a plain point tree).
struct NullAugment {
  void Reserve(int) {}
  void AddNode() {}
  void AbsorbRange(int, const int*, int) {}
  void Seal() {}
};

/// Per-node minimum of a per-item scalar (e.g. minimum variance for the
/// power-weighted expected-distance tree, minimum enclosing-circle radius
/// for the discrete NN!=0 group tree).
class MinAugment {
 public:
  MinAugment() = default;
  explicit MinAugment(const std::vector<double>* values) : values_(values) {}

  void Reserve(int nodes) { min_.reserve(nodes); }
  void AddNode() { min_.push_back(std::numeric_limits<double>::infinity()); }
  void AbsorbRange(int node, const int* ids, int count) {
    double mn = min_[node];
    for (int i = 0; i < count; ++i) mn = std::min(mn, (*values_)[ids[i]]);
    min_[node] = mn;
  }
  void Seal() { values_ = nullptr; }

  double min(int node) const { return min_[node]; }

 private:
  const std::vector<double>* values_ = nullptr;  ///< Build-only.
  std::vector<double> min_;
};

/// Per-node minimum and maximum of a per-item scalar (e.g. the support
/// radius of a disk tree: min bounds Delta from below, max bounds delta).
class MinMaxAugment {
 public:
  MinMaxAugment() = default;
  explicit MinMaxAugment(const std::vector<double>* values)
      : values_(values) {}

  void Reserve(int nodes) {
    min_.reserve(nodes);
    max_.reserve(nodes);
  }
  void AddNode() {
    min_.push_back(std::numeric_limits<double>::infinity());
    max_.push_back(0.0);
  }
  void AbsorbRange(int node, const int* ids, int count) {
    double mn = min_[node];
    double mx = max_[node];
    for (int i = 0; i < count; ++i) {
      double v = (*values_)[ids[i]];
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
    min_[node] = mn;
    max_[node] = mx;
  }
  void Seal() { values_ = nullptr; }

  double min(int node) const { return min_[node]; }
  double max(int node) const { return max_[node]; }

 private:
  const std::vector<double>* values_ = nullptr;  ///< Build-only.
  std::vector<double> min_;
  std::vector<double> max_;
};

/// Composes two augmentations into one (each keeps its own arrays).
template <typename A, typename B>
struct PairAugment {
  A first;
  B second;

  void Reserve(int nodes) {
    first.Reserve(nodes);
    second.Reserve(nodes);
  }
  void AddNode() {
    first.AddNode();
    second.AddNode();
  }
  void AbsorbRange(int node, const int* ids, int count) {
    first.AbsorbRange(node, ids, count);
    second.AbsorbRange(node, ids, count);
  }
  void Seal() {
    first.Seal();
    second.Seal();
  }
};

}  // namespace spatial
}  // namespace unn

#endif  // UNN_SPATIAL_AUGMENT_H_
