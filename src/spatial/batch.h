#ifndef UNN_SPATIAL_BATCH_H_
#define UNN_SPATIAL_BATCH_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <queue>
#include <span>
#include <utility>
#include <vector>

#include "geom/lanes.h"
#include "spatial/traverse.h"

/// \file batch.h
/// Batched counterparts of the traverse.h engines: up to geom::kLaneWidth
/// queries ("lanes") share one traversal of a FlatKdTree, so the node
/// arrays are touched once per pack instead of once per query, box bounds
/// are evaluated with the SIMD lane ops of geom/lanes.h, and the SoA
/// child arrays are software-prefetched a node ahead of the descent.
///
///   * BatchPrunedVisit — shared left-first DFS with a per-entry active
///     lane mask. For every lane the visited nodes, the prune tests, and
///     the leaf scans are exactly the scalar PrunedVisit sequence of that
///     lane alone (other lanes only interleave extra nodes the lane
///     ignores), so a per-lane computation over it is bit-identical to
///     the scalar engine by construction.
///   * BatchPrunedVisitNearFirst — shared pruned DFS descending the child
///     with the smaller shared bound first, the batch analogue of the
///     scalar PrunedVisitOrdered descent: evolving per-lane bounds
///     tighten almost as fast as in the scalar engine, so the shared
///     walk visits scalar-like node counts instead of the left-first
///     union. Per-lane visit ORDER is not the scalar sequence — use it
///     only for order-robust accumulation (strict prunes plus the
///     replay-band idiom below), never for order-sensitive sums.
///   * BatchBestFirstScan — shared best-first frontier ordered by the
///     minimum lower bound over each entry's active lanes. Per lane it
///     visits a superset of the scalar BestFirstScan's surviving nodes,
///     in an order that may differ from the lane's own key order; use it
///     for exact-min accumulation, never for first-hit semantics.
///
/// Bit-identity idiom (used by core::ExpectedNn and range::KdTree): the
/// scalar nearest descents are PrunedVisitOrdered with a per-query child
/// order, which a shared traversal cannot replicate lane by lane. The
/// batch entry points instead run a pass-1 BatchPrunedVisit with a
/// *strict* prune (`bound > best`, keeping every item whose value ties
/// the minimum), which computes each lane's exact minimum value, and
/// raise a per-lane `replay` flag whenever the argmin could be
/// order-dependent (a tie on the minimum, or values within a guard band
/// of the evolving bound where floating-point pruning could diverge).
/// Flagged lanes re-run the scalar query verbatim — bit-identical by
/// definition — while unflagged lanes have a unique minimizer that every
/// sound traversal, scalar or batched, must return. tests/batch_fuzz_test
/// differentially verifies the whole scheme on adversarial inputs.

namespace unn {
namespace spatial {

/// Bit l set = query lane l active. Lane count is geom::kLaneWidth = 8.
using LaneMask = std::uint8_t;

/// Mask with the low `count` lanes active (a ragged final pack).
inline LaneMask FullMask(int count) {
  return static_cast<LaneMask>((1u << count) - 1u);
}

/// Per-pack traversal counters, aggregated by the batch entry points.
/// `lane_nodes_visited / (nodes_visited * kLaneWidth)` is the lane
/// utilization: 1.0 means every shared node visit served all lanes.
struct BatchStats {
  std::int64_t packs = 0;
  std::int64_t nodes_visited = 0;       ///< Shared node visits.
  std::int64_t lane_nodes_visited = 0;  ///< Sum of active lanes per visit.
  std::int64_t leaves_scanned = 0;
  std::int64_t lane_points_evaluated = 0;
  std::int64_t prunes = 0;          ///< Entries dropped with no lane active.
  std::int64_t scalar_replays = 0;  ///< Lanes re-run through the scalar path.

  double LaneUtilization() const {
    return nodes_visited == 0 ? 0.0
                              : static_cast<double>(lane_nodes_visited) /
                                    (static_cast<double>(nodes_visited) *
                                     geom::kLaneWidth);
  }

  void Add(const BatchStats& o) {
    packs += o.packs;
    nodes_visited += o.nodes_visited;
    lane_nodes_visited += o.lane_nodes_visited;
    leaves_scanned += o.leaves_scanned;
    lane_points_evaluated += o.lane_points_evaluated;
    prunes += o.prunes;
    scalar_replays += o.scalar_replays;
  }
};

namespace internal {

/// Prefetches the SoA node records the descent is about to touch. The
/// box array is the hot one (every surviving node evaluates bounds
/// against it before the children are known).
template <typename Tree>
inline void PrefetchChildren(const Tree& tree, int node) {
#if defined(__GNUC__) || defined(__clang__)
  if (!tree.is_leaf(node)) {
    __builtin_prefetch(&tree.box(tree.left(node)));
    __builtin_prefetch(&tree.box(tree.right(node)));
  }
#else
  (void)tree;
  (void)node;
#endif
}

inline int PopCount(LaneMask m) {
  int c = 0;
  for (LaneMask b = m; b != 0; b &= static_cast<LaneMask>(b - 1)) ++c;
  return c;
}

}  // namespace internal

/// Memoizes one pack's per-lane lower bounds per node, so a
/// BatchBestFirstScan whose bound is a SIMD evaluation over all lanes
/// (geom/lanes.h) computes it once per node instead of once at push and
/// once per lane at the pop re-test. The caller's `compute(node, out)`
/// fills all kLaneWidth slots; `key_lb` then reads the cached lane.
/// Bounds are a pure function of (node, query), so caching cannot change
/// any per-lane decision — only how often the arithmetic runs.
template <typename Compute>
class LaneKeyCache {
 public:
  explicit LaneKeyCache(Compute compute) : compute_(std::move(compute)) {}

  /// The per-lane bound for `node`, computing the node's lane vector on
  /// first touch.
  double operator()(int lane, int node) {
    if (node != node_) {
      compute_(node, keys_);
      node_ = node;
    }
    return keys_[lane];
  }

 private:
  Compute compute_;
  int node_ = -1;
  double keys_[geom::kLaneWidth] = {};
};

template <typename Compute>
LaneKeyCache<Compute> MakeLaneKeyCache(Compute compute) {
  return LaneKeyCache<Compute>(std::move(compute));
}

/// Shared pruned DFS, left child first (the batch PrunedVisit).
/// `filter(node, mask)` returns the sub-mask of lanes that do NOT prune
/// the node — it is called exactly once per lane per node the lane
/// reaches, like the scalar engine's `prune`; `leaf(node, mask)` scans a
/// leaf for every active lane. Unlike scalar PrunedVisit there is no
/// abort: the batch consumers are argmin/report accumulators.
template <typename Tree, typename Filter, typename Leaf>
void BatchPrunedVisit(const Tree& tree, LaneMask lanes, Filter&& filter,
                      Leaf&& leaf, BatchStats* stats = nullptr) {
  if (tree.root() < 0 || lanes == 0) return;
  struct Frame {
    int node;
    LaneMask mask;
  };
  std::vector<Frame> stack;
  stack.reserve(64);
  stack.push_back({tree.root(), lanes});
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    LaneMask m = filter(f.node, f.mask);
    if (m == 0) {
      if (stats != nullptr) ++stats->prunes;
      continue;
    }
    internal::PrefetchChildren(tree, f.node);
    if (stats != nullptr) {
      ++stats->nodes_visited;
      stats->lane_nodes_visited += internal::PopCount(m);
    }
    if (tree.is_leaf(f.node)) {
      if (stats != nullptr) ++stats->leaves_scanned;
      leaf(f.node, m);
    } else {
      // Right below left so the left child pops first: per lane this is
      // the scalar left-first DFS order.
      stack.push_back({tree.right(f.node), m});
      stack.push_back({tree.left(f.node), m});
    }
  }
}

/// Shared pruned DFS descending the nearer child first (the batch
/// PrunedVisitOrdered). `bound(node, lb)` fills all geom::kLaneWidth
/// per-lane lower bounds for `node` (one SIMD evaluation);
/// `prunable(lane, lb)` tests a lane's bound against its evolving state
/// and must be monotone in lb. At every internal node both children's
/// bounds are evaluated and the child with the smaller shared bound
/// (min over its surviving lanes) is visited first, so per-lane bests
/// tighten at scalar-descent speed; each frame's per-lane bounds are
/// stored and re-tested at pop against the tightened state without
/// recomputation. Per-lane visit order is NOT the scalar sequence: use
/// only with order-robust accumulators (strict prune + replay band).
template <typename Tree, typename Bound, typename Prunable, typename Leaf>
void BatchPrunedVisitNearFirst(const Tree& tree, LaneMask lanes, Bound&& bound,
                               Prunable&& prunable, Leaf&& leaf,
                               BatchStats* stats = nullptr) {
  if (tree.root() < 0 || lanes == 0) return;
  constexpr int kW = geom::kLaneWidth;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  struct Frame {
    double lb[kW];
    double key;  ///< min over surviving lanes of lb (the descent order).
    int node;
    LaneMask mask;
  };
  // Evaluates `node` for the lanes in `m`; false when every lane prunes.
  auto make = [&](int node, LaneMask m, Frame* f) {
    bound(node, f->lb);
    LaneMask keep = 0;
    double key = kInf;
    for (int l = 0; l < kW; ++l) {
      if ((m >> l & 1u) == 0 || prunable(l, f->lb[l])) continue;
      keep |= static_cast<LaneMask>(1u << l);
      key = std::min(key, f->lb[l]);
    }
    if (keep == 0) {
      if (stats != nullptr) ++stats->prunes;
      return false;
    }
    f->node = node;
    f->mask = keep;
    f->key = key;
    return true;
  };
  std::vector<Frame> stack;
  stack.reserve(64);
  {
    Frame root;
    if (!make(tree.root(), lanes, &root)) return;
    stack.push_back(root);
  }
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    // Re-test the stored bounds against state tightened since the push.
    LaneMask m = 0;
    for (int l = 0; l < kW; ++l) {
      if ((f.mask >> l & 1u) != 0 && !prunable(l, f.lb[l])) {
        m |= static_cast<LaneMask>(1u << l);
      }
    }
    if (m == 0) {
      if (stats != nullptr) ++stats->prunes;
      continue;
    }
    internal::PrefetchChildren(tree, f.node);
    if (stats != nullptr) {
      ++stats->nodes_visited;
      stats->lane_nodes_visited += internal::PopCount(m);
    }
    if (tree.is_leaf(f.node)) {
      if (stats != nullptr) ++stats->leaves_scanned;
      leaf(f.node, m);
      continue;
    }
    Frame lf, rf;
    bool lok = make(tree.left(f.node), m, &lf);
    bool rok = make(tree.right(f.node), m, &rf);
    if (lok && rok) {
      // Far child below near child, so the near child pops first.
      if (lf.key <= rf.key) {
        stack.push_back(rf);
        stack.push_back(lf);
      } else {
        stack.push_back(lf);
        stack.push_back(rf);
      }
    } else if (lok) {
      stack.push_back(lf);
    } else if (rok) {
      stack.push_back(rf);
    }
  }
}

/// Pack-coherence ordering: indices of `queries` sorted along a Morton
/// (Z-order) curve of the batch's own bounding box, so consecutive
/// kLaneWidth-sized packs hold spatially adjacent queries and a shared
/// traversal prunes the same subtrees for every lane. Reordering is
/// free: a lane's result never depends on which queries share its pack
/// (the per-lane bit-identity contract every batch kernel carries), so
/// callers may process in this order and scatter results back by index.
/// Deterministic; stable for equal codes.
inline std::vector<int> PackCoherentOrder(std::span<const geom::Vec2> queries) {
  const size_t m = queries.size();
  std::vector<int> order(m);
  std::iota(order.begin(), order.end(), 0);
  if (m <= static_cast<size_t>(geom::kLaneWidth)) return order;  // One pack.
  double lox = queries[0].x, hix = queries[0].x;
  double loy = queries[0].y, hiy = queries[0].y;
  for (const geom::Vec2& q : queries) {
    lox = std::min(lox, q.x);
    hix = std::max(hix, q.x);
    loy = std::min(loy, q.y);
    hiy = std::max(hiy, q.y);
  }
  const double sx = hix > lox ? 65535.0 / (hix - lox) : 0.0;
  const double sy = hiy > loy ? 65535.0 / (hiy - loy) : 0.0;
  std::vector<std::uint32_t> code(m);
  for (size_t i = 0; i < m; ++i) {
    auto xi = static_cast<std::uint32_t>((queries[i].x - lox) * sx);
    auto yi = static_cast<std::uint32_t>((queries[i].y - loy) * sy);
    std::uint32_t z = 0;
    for (int b = 0; b < 16; ++b) {
      z |= ((xi >> b) & 1u) << (2 * b);
      z |= ((yi >> b) & 1u) << (2 * b + 1);
    }
    code[i] = z;
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return code[a] < code[b]; });
  return order;
}

/// Shared best-first scan (the batch BestFirstScan). The frontier is
/// ordered by the minimum of `key_lb(lane, node)` over the entry's
/// active lanes; `prunable(lane, key)` must be monotone in key per lane.
/// `visit(node, mask)` runs for the lanes that survive their own bound.
/// Per lane the visited set is a superset of the scalar engine's, so
/// exact-min accumulation matches the scalar result; first-hit order per
/// lane is NOT preserved. Lane bounds are evaluated once at push and
/// once at pop (the pop re-test sees bounds tightened since the push).
template <typename Tree, typename KeyLb, typename Prunable, typename Visit>
void BatchBestFirstScan(const Tree& tree, LaneMask lanes, KeyLb&& key_lb,
                        Prunable&& prunable, Visit&& visit,
                        BatchStats* stats = nullptr) {
  if (tree.root() < 0 || lanes == 0) return;
  struct Entry {
    double key;  ///< min over active lanes of key_lb(lane, node).
    int node;
    LaneMask mask;
    bool operator<(const Entry& o) const { return key > o.key; }
  };
  std::priority_queue<Entry> heap;
  auto push = [&](int node, LaneMask m) {
    double key = 0.0;
    bool first = true;
    LaneMask keep = 0;
    for (int l = 0; l < geom::kLaneWidth; ++l) {
      if ((m & (1u << l)) == 0) continue;
      double k = key_lb(l, node);
      if (prunable(l, k)) continue;
      keep |= static_cast<LaneMask>(1u << l);
      if (first || k < key) key = k;
      first = false;
    }
    if (keep != 0) heap.push({key, node, keep});
  };
  push(tree.root(), lanes);
  while (!heap.empty()) {
    Entry e = heap.top();
    heap.pop();
    // Re-test each lane against its own (possibly tightened) bound.
    LaneMask m = 0;
    for (int l = 0; l < geom::kLaneWidth; ++l) {
      if ((e.mask & (1u << l)) == 0) continue;
      if (!prunable(l, key_lb(l, e.node))) {
        m |= static_cast<LaneMask>(1u << l);
      }
    }
    // Early exit must consider every lane of the PACK, not just this
    // entry's mask: remaining heap entries can carry lanes absent here,
    // and a lane's own entries are the only ones that can finish its
    // accumulation. Only when all pack lanes prune at e.key is every
    // remaining entry (shared key >= e.key, per-lane keys >= the shared
    // key) dead for every lane by monotonicity.
    bool all_dead_at_shared_key = true;
    for (int l = 0; l < geom::kLaneWidth; ++l) {
      if ((lanes & (1u << l)) == 0) continue;
      if (!prunable(l, e.key)) {
        all_dead_at_shared_key = false;
        break;
      }
    }
    if (all_dead_at_shared_key) {
      if (stats != nullptr) ++stats->prunes;
      break;
    }
    if (m == 0) {
      if (stats != nullptr) ++stats->prunes;
      continue;
    }
    internal::PrefetchChildren(tree, e.node);
    if (stats != nullptr) {
      ++stats->nodes_visited;
      stats->lane_nodes_visited += internal::PopCount(m);
      if (tree.is_leaf(e.node)) ++stats->leaves_scanned;
    }
    visit(e.node, m);
    if (!tree.is_leaf(e.node)) {
      push(tree.left(e.node), m);
      push(tree.right(e.node), m);
    }
  }
}

}  // namespace spatial
}  // namespace unn

#endif  // UNN_SPATIAL_BATCH_H_
