#ifndef UNN_SPATIAL_TRAVERSE_H_
#define UNN_SPATIAL_TRAVERSE_H_

#include <cstdint>
#include <queue>
#include <utility>

/// \file traverse.h
/// The two traversal engines shared by every tree built on
/// spatial::FlatKdTree, replacing the per-structure copies of the same
/// best-first heap and pruned recursion:
///
///   * BestFirstScan / BestFirstEnumerator — priority-queue
///     branch-and-bound in increasing lower-bound order (the engine
///     behind KdTree::KNearest/Enumerator and the quantification index's
///     two-smallest envelope and pointwise-argmin searches);
///   * PrunedVisit / PrunedVisitOrdered — pruned DFS (the engine behind
///     RangeCircle, ReportMinDistLess, the L_inf index, the discrete
///     group tree, LogSurvival's ball-intersection walk, and the
///     nearest/min-max descents, which visit the nearer child first).
///
/// Visit order is part of each consumer's contract: argmin ties resolve
/// to the first strict minimum encountered, so the engines guarantee
/// deterministic, insertion-stable orders — DFS descends left-first (or
/// by the caller's ordering key), and the best-first heap breaks key
/// ties by heap order alone, exactly as the hand-rolled versions did.
/// All engines are allocation-free except the best-first heap and are
/// safe for concurrent use on a const tree.
///
/// Batched counterparts — BatchPrunedVisit / BatchBestFirstScan, which
/// run up to geom::kLaneWidth queries through one shared traversal with
/// SIMD bound evaluation — live in spatial/batch.h alongside the
/// bit-identity idiom their consumers use.

namespace unn {
namespace spatial {

/// Per-traversal search-effort counters, filled by the engines when the
/// caller passes a non-null pointer (the default null pointer keeps the
/// engines counter-free — the checks compile down to a dead branch).
/// Caller-owned so traversals stay const and thread-safe; obs/profile.h
/// aggregates these into the process-wide metrics surface.
///
/// Semantics (identical across engines so consumers can compare):
///   * nodes_visited   — nodes entered and not pruned (internal + leaf);
///   * leaves_scanned  — the subset of visited nodes that were leaves;
///   * points_evaluated — item-level evaluations; the best-first
///     enumerator counts item-key pushes, the node engines leave this to
///     the consumer's leaf callback (which may skip items, e.g.
///     LogSurvival's per-point ball test);
///   * prunes          — subtrees discarded by a prune / prunable test;
///   * heap_pushes     — best-first frontier insertions (0 for DFS).
struct TraversalStats {
  std::int64_t nodes_visited = 0;
  std::int64_t leaves_scanned = 0;
  std::int64_t points_evaluated = 0;
  std::int64_t prunes = 0;
  std::int64_t heap_pushes = 0;

  void Add(const TraversalStats& o) {
    nodes_visited += o.nodes_visited;
    leaves_scanned += o.leaves_scanned;
    points_evaluated += o.points_evaluated;
    prunes += o.prunes;
    heap_pushes += o.heap_pushes;
  }
};

/// Min-heap entry for the best-first engines: a frontier node with a
/// lower bound, or (in the enumerator) a resolved item with its exact
/// key. The single definition of the heap ordering every consumer
/// previously duplicated.
struct HeapEntry {
  double key = 0.0;
  int node = -1;  ///< Node id, or -1 when `item` is a resolved item.
  int item = -1;
  /// Inverted: std::priority_queue is a max-heap, we pop smallest keys.
  bool operator<(const HeapEntry& o) const { return key > o.key; }
};

/// Best-first branch-and-bound over nodes. Pops frontier nodes in
/// increasing `key_lb` order; `prunable(key)` must be monotone in key so
/// the first prunable entry ends the search. `visit(node)` runs for
/// every surviving node (internal and leaf — leaf item evaluation
/// happens inside it) and returns false to abort. Children of surviving
/// internal nodes re-enter the frontier unless already prunable.
template <typename Tree, typename KeyLb, typename Prunable, typename Visit>
void BestFirstScan(const Tree& tree, KeyLb&& key_lb, Prunable&& prunable,
                   Visit&& visit, TraversalStats* stats = nullptr) {
  if (tree.root() < 0) return;
  std::priority_queue<HeapEntry> heap;
  heap.push({key_lb(tree.root()), tree.root(), -1});
  if (stats != nullptr) ++stats->heap_pushes;
  while (!heap.empty()) {
    HeapEntry e = heap.top();
    heap.pop();
    if (prunable(e.key)) {
      if (stats != nullptr) ++stats->prunes;
      break;
    }
    if (stats != nullptr) {
      ++stats->nodes_visited;
      if (tree.is_leaf(e.node)) ++stats->leaves_scanned;
    }
    if (!visit(e.node)) return;
    if (!tree.is_leaf(e.node)) {
      for (int child : {tree.left(e.node), tree.right(e.node)}) {
        double k = key_lb(child);
        if (!prunable(k)) {
          heap.push({k, child, -1});
          if (stats != nullptr) ++stats->heap_pushes;
        } else if (stats != nullptr) {
          ++stats->prunes;
        }
      }
    }
  }
}

/// Incremental best-first enumeration: Next() yields item ids in
/// nondecreasing key order, -1 once exhausted (and forever after,
/// including on an empty tree). `Keys` provides
/// `double NodeKey(int node)` (a lower bound on every item key in the
/// subtree) and `double ItemKey(int item)` (the exact key).
template <typename Tree, typename Keys>
class BestFirstEnumerator {
 public:
  BestFirstEnumerator(const Tree& tree, Keys keys,
                      TraversalStats* stats = nullptr)
      : tree_(tree), keys_(std::move(keys)), stats_(stats) {
    if (tree_.root() >= 0) {
      Push({keys_.NodeKey(tree_.root()), tree_.root(), -1});
    }
  }

  /// Next item id, or -1 when exhausted. `key` optional out.
  int Next(double* key = nullptr) {
    while (!heap_.empty()) {
      HeapEntry e = heap_.top();
      heap_.pop();
      if (e.node < 0) {
        if (key != nullptr) *key = e.key;
        return e.item;
      }
      if (stats_ != nullptr) ++stats_->nodes_visited;
      if (tree_.is_leaf(e.node)) {
        if (stats_ != nullptr) ++stats_->leaves_scanned;
        for (int s = tree_.begin(e.node); s < tree_.end(e.node); ++s) {
          int id = tree_.item(s);
          if (stats_ != nullptr) ++stats_->points_evaluated;
          Push({keys_.ItemKey(id), -1, id});
        }
      } else {
        int l = tree_.left(e.node);
        int r = tree_.right(e.node);
        Push({keys_.NodeKey(l), l, -1});
        Push({keys_.NodeKey(r), r, -1});
      }
    }
    return -1;
  }

 private:
  void Push(HeapEntry e) {
    heap_.push(e);
    if (stats_ != nullptr) ++stats_->heap_pushes;
  }

  const Tree& tree_;
  Keys keys_;
  TraversalStats* stats_ = nullptr;
  std::priority_queue<HeapEntry> heap_;
};

/// Pruned DFS, left child first. `prune(node)` is checked on entry (it
/// may consult mutable caller state, e.g. a tightening envelope);
/// `leaf(node)` returns false to abort the whole walk. Returns false iff
/// aborted.
template <typename Tree, typename Prune, typename Leaf>
bool PrunedVisit(const Tree& tree, int node, Prune&& prune, Leaf&& leaf,
                 TraversalStats* stats = nullptr) {
  if (prune(node)) {
    if (stats != nullptr) ++stats->prunes;
    return true;
  }
  if (stats != nullptr) ++stats->nodes_visited;
  if (tree.is_leaf(node)) {
    if (stats != nullptr) ++stats->leaves_scanned;
    return leaf(node);
  }
  return PrunedVisit(tree, tree.left(node), prune, leaf, stats) &&
         PrunedVisit(tree, tree.right(node), prune, leaf, stats);
}

/// PrunedVisit from the root; no-op on an empty tree.
template <typename Tree, typename Prune, typename Leaf>
bool PrunedVisit(const Tree& tree, Prune&& prune, Leaf&& leaf,
                 TraversalStats* stats = nullptr) {
  if (tree.root() < 0) return true;
  return PrunedVisit(tree, tree.root(), prune, leaf, stats);
}

/// Pruned DFS that descends the child with the smaller `order_key`
/// first — the classic nearest-neighbor descent, where following the
/// more promising subtree first tightens the bound before the sibling is
/// re-tested by its own entry prune.
template <typename Tree, typename OrderKey, typename Prune, typename Leaf>
void PrunedVisitOrdered(const Tree& tree, int node, OrderKey&& order_key,
                        Prune&& prune, Leaf&& leaf,
                        TraversalStats* stats = nullptr) {
  if (prune(node)) {
    if (stats != nullptr) ++stats->prunes;
    return;
  }
  if (stats != nullptr) ++stats->nodes_visited;
  if (tree.is_leaf(node)) {
    if (stats != nullptr) ++stats->leaves_scanned;
    leaf(node);
    return;
  }
  int l = tree.left(node);
  int r = tree.right(node);
  if (order_key(l) > order_key(r)) std::swap(l, r);
  PrunedVisitOrdered(tree, l, order_key, prune, leaf, stats);
  PrunedVisitOrdered(tree, r, order_key, prune, leaf, stats);
}

/// PrunedVisitOrdered from the root; no-op on an empty tree.
template <typename Tree, typename OrderKey, typename Prune, typename Leaf>
void PrunedVisitOrdered(const Tree& tree, OrderKey&& order_key, Prune&& prune,
                        Leaf&& leaf, TraversalStats* stats = nullptr) {
  if (tree.root() < 0) return;
  PrunedVisitOrdered(tree, tree.root(), order_key, prune, leaf, stats);
}

}  // namespace spatial
}  // namespace unn

#endif  // UNN_SPATIAL_TRAVERSE_H_
