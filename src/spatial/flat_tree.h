#ifndef UNN_SPATIAL_FLAT_TREE_H_
#define UNN_SPATIAL_FLAT_TREE_H_

#include <algorithm>
#include <numeric>
#include <span>
#include <vector>

#include "geom/vec2.h"
#include "spatial/augment.h"

/// \file flat_tree.h
/// The shared static spatial-tree core: one median-split kd build
/// (spatial::FlatKdTree<Augment>) producing a flat structure-of-arrays
/// node layout, parameterized by a split rule and a node-augmentation
/// policy (augment.h). Every sublinear structure in the repo — the
/// Section 4.3 Remark (ii) point kd-tree, the Theorem 3.1 disk tree, the
/// [AESZ12] power-weighted expected-distance tree, the L_inf square
/// index, the discrete NN!=0 group tree, and the quantification index —
/// is this build plus a thin augmentation and domain-specific bound
/// functions fed to the traversal engines in traverse.h.
///
/// The build is deterministic: the same anchors and options always
/// produce the same node layout and the same `order` permutation
/// (std::nth_element is deterministic for a fixed input), which the
/// argmin tie semantics of the consumers — and the sharded merge layer
/// above them — rely on. Construction is O(n log n); the tree is
/// immutable afterwards and safe to query concurrently.

namespace unn {
namespace spatial {

/// How an internal node picks its split axis.
enum class SplitRule {
  /// Alternate x/y by depth (x at even depths) — the classic kd rule.
  kAlternate,
  /// kAlternate, but overridden to the wider axis when the default axis
  /// is degenerate (all anchors collinear up to 1e-12 relative).
  kAlternateWideGuard,
  /// Always the wider axis of the node's anchor box; balanced even with
  /// duplicate anchors since the median split is positional.
  kWidest,
};

struct BuildOptions {
  int leaf_size = 8;
  SplitRule split = SplitRule::kAlternate;
};

/// A static kd-tree in flat structure-of-arrays layout: per-node parallel
/// arrays (box, children, leaf range) plus the permutation `order` that
/// makes each leaf's items contiguous. Item ids are indices into the
/// anchor span passed to the constructor; the anchors themselves are NOT
/// stored — leaf evaluation happens in the consumer against its own data.
template <typename Augment = NullAugment>
class FlatKdTree {
 public:
  /// An empty tree (root() < 0, zero items).
  FlatKdTree() = default;

  /// Builds over `anchors` in O(n log n). The augmentation's AbsorbRange
  /// sees every node's item range exactly once, parents before children.
  FlatKdTree(std::span<const geom::Vec2> anchors, const BuildOptions& options,
             Augment augment = Augment{})
      : aug_(std::move(augment)) {
    int n = static_cast<int>(anchors.size());
    order_.resize(n);
    std::iota(order_.begin(), order_.end(), 0);
    if (n > 0) {
      int cap = 2 * (n / std::max(options.leaf_size, 1) + 1);
      box_.reserve(cap);
      left_.reserve(cap);
      right_.reserve(cap);
      begin_.reserve(cap);
      end_.reserve(cap);
      aug_.Reserve(cap);
      root_ = BuildRange(anchors, options, 0, n, 0);
    }
    aug_.Seal();
  }

  int size() const { return static_cast<int>(order_.size()); }
  int root() const { return root_; }
  int num_nodes() const { return static_cast<int>(box_.size()); }

  bool is_leaf(int node) const { return left_[node] < 0; }
  int left(int node) const { return left_[node]; }
  int right(int node) const { return right_[node]; }
  /// Leaf item range [begin, end) into the order permutation.
  int begin(int node) const { return begin_[node]; }
  int end(int node) const { return end_[node]; }
  const geom::Box& box(int node) const { return box_[node]; }

  /// The item id stored in permutation slot `slot`.
  int item(int slot) const { return order_[slot]; }
  /// Item ids, permuted so each leaf's items are contiguous.
  const std::vector<int>& order() const { return order_; }

  const Augment& aug() const { return aug_; }

 private:
  int BuildRange(std::span<const geom::Vec2> anchors,
                 const BuildOptions& options, int begin, int end, int depth) {
    int id = num_nodes();
    geom::Box box;
    for (int i = begin; i < end; ++i) box.Expand(anchors[order_[i]]);
    box_.push_back(box);
    left_.push_back(-1);
    right_.push_back(-1);
    begin_.push_back(begin);
    end_.push_back(end);
    aug_.AddNode();
    aug_.AbsorbRange(id, order_.data() + begin, end - begin);
    if (end - begin <= options.leaf_size) return id;

    bool by_x = true;
    switch (options.split) {
      case SplitRule::kAlternate:
        by_x = (depth % 2 == 0);
        break;
      case SplitRule::kAlternateWideGuard:
        by_x = (depth % 2 == 0);
        if (box_[id].Width() < 1e-12 * box_[id].Height()) by_x = false;
        if (box_[id].Height() < 1e-12 * box_[id].Width()) by_x = true;
        break;
      case SplitRule::kWidest:
        by_x = box_[id].Width() >= box_[id].Height();
        break;
    }
    int mid = (begin + end) / 2;
    std::nth_element(order_.begin() + begin, order_.begin() + mid,
                     order_.begin() + end, [&](int a, int b) {
                       return by_x ? anchors[a].x < anchors[b].x
                                   : anchors[a].y < anchors[b].y;
                     });
    int l = BuildRange(anchors, options, begin, mid, depth + 1);
    int r = BuildRange(anchors, options, mid, end, depth + 1);
    left_[id] = l;
    right_[id] = r;
    return id;
  }

  // Flat SoA node arrays, indexed by node id (root first, preorder).
  std::vector<geom::Box> box_;
  std::vector<int> left_;   ///< Internal children; -1 for leaves.
  std::vector<int> right_;
  std::vector<int> begin_;  ///< Leaf item range [begin, end) into order_.
  std::vector<int> end_;
  std::vector<int> order_;
  Augment aug_;
  int root_ = -1;
};

}  // namespace spatial
}  // namespace unn

#endif  // UNN_SPATIAL_FLAT_TREE_H_
