#ifndef UNN_BASELINES_BRUTE_FORCE_H_
#define UNN_BASELINES_BRUTE_FORCE_H_

#include <vector>

#include "core/uncertain_point.h"
#include "geom/vec2.h"

/// \file brute_force.h
/// Definition-level baselines. These are the ground truth every data
/// structure in the library is validated against, and the O(n)-per-query
/// comparison lines in the benchmark harness.

namespace unn {
namespace baselines {

/// NN!=0(q) straight from Lemma 2.1: all i with
/// delta_i(q) < min_j Delta_j(q). O(n) per query. Sorted ids.
std::vector<int> NonzeroNn(const std::vector<core::UncertainPoint>& pts,
                           geom::Vec2 q);

/// Exact quantification probabilities pi_i(q) for discrete uncertain points
/// via Eq. (2): sort all N sites by distance, single accumulating pass.
/// Returns a dense vector of size n. O(N log N) per query.
std::vector<double> QuantificationProbabilities(
    const std::vector<core::UncertainPoint>& pts, geom::Vec2 q);

}  // namespace baselines
}  // namespace unn

#endif  // UNN_BASELINES_BRUTE_FORCE_H_
