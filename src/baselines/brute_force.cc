#include "baselines/brute_force.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/pnn_common.h"

namespace unn {
namespace baselines {

using core::UncertainPoint;
using geom::Vec2;

std::vector<int> NonzeroNn(const std::vector<UncertainPoint>& pts, Vec2 q) {
  // Lemma 2.1 verbatim: delta_i(q) < Delta_j(q) for all j != i. A single
  // uncertain point is trivially always a candidate.
  core::DeltaEnvelope env = core::TwoSmallestMaxDist(pts, q);
  std::vector<int> out;
  for (size_t i = 0; i < pts.size(); ++i) {
    double threshold = env.ThresholdFor(static_cast<int>(i));
    if (!std::isfinite(threshold) || pts[i].MinDist(q) < threshold) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

std::vector<double> QuantificationProbabilities(
    const std::vector<UncertainPoint>& pts, Vec2 q) {
  std::vector<core::WeightedSite> sites;
  for (size_t i = 0; i < pts.size(); ++i) {
    const auto& p = pts[i];
    for (size_t s = 0; s < p.sites().size(); ++s) {
      sites.push_back(
          {Dist(q, p.sites()[s]), static_cast<int>(i), p.weights()[s]});
    }
  }
  std::sort(sites.begin(), sites.end(),
            [](const core::WeightedSite& a, const core::WeightedSite& b) {
              return a.dist < b.dist;
            });
  std::vector<double> pi;
  core::AccumulateQuantification(sites, static_cast<int>(pts.size()), &pi);
  return pi;
}

}  // namespace baselines
}  // namespace unn
