#include "workload/svg.h"

#include <cstdarg>
#include <cstdio>
#include <fstream>

namespace unn {
namespace workload {

using geom::Box;
using geom::Vec2;

namespace {
std::string Fmt(const char* format, ...) {
  char buf[512];
  va_list args;
  va_start(args, format);
  vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return buf;
}
}  // namespace

SvgWriter::SvgWriter(const Box& viewport, int width_px)
    : view_(viewport), width_px_(width_px) {
  double aspect = viewport.Height() / (viewport.Width() + 1e-300);
  height_px_ = static_cast<int>(width_px * aspect) + 1;
}

Vec2 SvgWriter::Map(Vec2 p) const {
  double sx = (p.x - view_.lo.x) / view_.Width() * width_px_;
  double sy = (view_.hi.y - p.y) / view_.Height() * height_px_;
  return {sx, sy};
}

double SvgWriter::Scale(double w) const {
  return w / view_.Width() * width_px_;
}

void SvgWriter::AddCircle(Vec2 center, double radius, const std::string& stroke,
                          const std::string& fill, double stroke_width) {
  Vec2 c = Map(center);
  body_ += Fmt(
      "<circle cx=\"%.2f\" cy=\"%.2f\" r=\"%.2f\" stroke=\"%s\" fill=\"%s\" "
      "stroke-width=\"%.2f\"/>\n",
      c.x, c.y, Scale(radius), stroke.c_str(), fill.c_str(), stroke_width);
}

void SvgWriter::AddSegment(Vec2 a, Vec2 b, const std::string& stroke,
                           double stroke_width) {
  Vec2 ma = Map(a), mb = Map(b);
  body_ += Fmt(
      "<line x1=\"%.2f\" y1=\"%.2f\" x2=\"%.2f\" y2=\"%.2f\" stroke=\"%s\" "
      "stroke-width=\"%.2f\"/>\n",
      ma.x, ma.y, mb.x, mb.y, stroke.c_str(), stroke_width);
}

void SvgWriter::AddPolyline(const std::vector<Vec2>& pts,
                            const std::string& stroke, double stroke_width) {
  if (pts.size() < 2) return;
  body_ += "<polyline fill=\"none\" stroke=\"" + stroke + "\" stroke-width=\"" +
           Fmt("%.2f", stroke_width) + "\" points=\"";
  for (Vec2 p : pts) {
    Vec2 m = Map(p);
    body_ += Fmt("%.2f,%.2f ", m.x, m.y);
  }
  body_ += "\"/>\n";
}

void SvgWriter::AddDot(Vec2 p, double px_radius, const std::string& fill) {
  Vec2 m = Map(p);
  body_ += Fmt("<circle cx=\"%.2f\" cy=\"%.2f\" r=\"%.2f\" fill=\"%s\"/>\n",
               m.x, m.y, px_radius, fill.c_str());
}

void SvgWriter::AddText(Vec2 p, const std::string& text,
                        const std::string& fill, int px_size) {
  Vec2 m = Map(p);
  body_ += Fmt("<text x=\"%.2f\" y=\"%.2f\" fill=\"%s\" font-size=\"%d\">",
               m.x, m.y, fill.c_str(), px_size) +
           text + "</text>\n";
}

void SvgWriter::AddSubdivision(const dcel::PlanarSubdivision& sub,
                               const std::string& curve_stroke,
                               const std::string& frame_stroke) {
  for (int e = 0; e < sub.NumEdges(); ++e) {
    const auto& ed = sub.edge(e);
    bool frame = ed.curve_id == dcel::kFrameCurve;
    AddPolyline(ed.shape.Sample(frame ? 2 : 33),
                frame ? frame_stroke : curve_stroke, frame ? 0.7 : 1.2);
  }
}

bool SvgWriter::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << Fmt(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" "
      "viewBox=\"0 0 %d %d\">\n<rect width=\"100%%\" height=\"100%%\" "
      "fill=\"white\"/>\n",
      width_px_, height_px_, width_px_, height_px_);
  out << body_;
  out << "</svg>\n";
  return static_cast<bool>(out);
}

}  // namespace workload
}  // namespace unn
