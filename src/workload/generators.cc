#include "workload/generators.h"

#include <algorithm>
#include <cmath>
#include <random>

#include "geom/trig.h"
#include "util/check.h"

namespace unn {
namespace workload {

using core::UncertainPoint;
using geom::Vec2;

std::vector<UncertainPoint> RandomDisks(int n, uint64_t seed, double spread,
                                        double rmin, double rmax) {
  if (spread <= 0) spread = std::sqrt(static_cast<double>(n)) * 2.5;
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> pos(-spread, spread);
  std::uniform_real_distribution<double> rad(rmin, rmax);
  std::vector<UncertainPoint> pts;
  pts.reserve(n);
  for (int i = 0; i < n; ++i) {
    double x = pos(rng), y = pos(rng), r = rad(rng);
    pts.push_back(UncertainPoint::Disk({x, y}, r));
  }
  return pts;
}

std::vector<UncertainPoint> RandomDiscrete(int n, int k, uint64_t seed,
                                           double spread, double cluster,
                                           bool uniform_weights) {
  if (spread <= 0) spread = std::sqrt(static_cast<double>(n)) * 2.5;
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> pos(-spread, spread);
  std::uniform_real_distribution<double> off(-cluster, cluster);
  std::uniform_real_distribution<double> wu(0.2, 1.0);
  std::vector<UncertainPoint> pts;
  pts.reserve(n);
  for (int i = 0; i < n; ++i) {
    double cx = pos(rng), cy = pos(rng);
    std::vector<Vec2> sites;
    std::vector<double> w;
    double total = 0;
    for (int s = 0; s < k; ++s) {
      double ox = off(rng), oy = off(rng);
      sites.push_back({cx + ox, cy + oy});
      double ws = uniform_weights ? 1.0 : wu(rng);
      w.push_back(ws);
      total += ws;
    }
    for (auto& x : w) x /= total;
    pts.push_back(UncertainPoint::Discrete(std::move(sites), std::move(w)));
  }
  return pts;
}

std::vector<UncertainPoint> LowerBoundCubic(int n, uint64_t seed) {
  int m = std::max(n / 4, 1);
  n = 4 * m;
  double big_r = 8.0 * n * n;
  double omega = 1.0 / (n * n);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> jit(-omega * 1e-3, omega * 1e-3);
  std::vector<UncertainPoint> pts;
  pts.reserve(n);
  // D-: m disks of radius R on the negative x-axis.
  for (int i = 1; i <= m; ++i) {
    Vec2 c{-big_r - 1.5 - (i - 1) * omega + jit(rng), jit(rng)};
    pts.push_back(UncertainPoint::Disk(c, big_r));
  }
  // D+: m disks of radius R on the positive x-axis.
  for (int j = 1; j <= m; ++j) {
    Vec2 c{big_r + 1.5 + (j - 1) * omega + jit(rng), jit(rng)};
    pts.push_back(UncertainPoint::Disk(c, big_r));
  }
  // D0: 2m unit disks along the y-axis at spacing 4.
  for (int k = 1; k <= 2 * m; ++k) {
    Vec2 c{jit(rng), 4.0 * (k - m) - 2.0 + jit(rng)};
    pts.push_back(UncertainPoint::Disk(c, 1.0));
  }
  return pts;
}

std::vector<UncertainPoint> LowerBoundCubicEqualRadius(int n, uint64_t seed) {
  int m = std::max(n / 3, 1);
  n = 3 * m;
  double theta = (geom::kTwoPi / 4.0) / (m + 1);
  double omega = 1e-4 / m;
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> jit(-omega * 1e-3, omega * 1e-3);
  std::vector<UncertainPoint> pts;
  pts.reserve(n);
  for (int i = 1; i <= m; ++i) {
    pts.push_back(UncertainPoint::Disk(
        {-2.0 - (i - 1) * omega + jit(rng), jit(rng)}, 1.0));
  }
  for (int j = 1; j <= m; ++j) {
    pts.push_back(UncertainPoint::Disk(
        {2.0 + (j - 1) * omega + jit(rng), jit(rng)}, 1.0));
  }
  for (int k = 1; k <= m; ++k) {
    pts.push_back(UncertainPoint::Disk({2.0 - 2.0 * std::cos(k * theta) + jit(rng),
                                        2.0 * std::sin(k * theta) + jit(rng)},
                                       1.0));
  }
  return pts;
}

std::vector<UncertainPoint> LowerBoundQuadratic(int n, uint64_t seed) {
  int m = std::max(n / 2, 1);
  n = 2 * m;
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> jit(-1e-7, 1e-7);
  std::vector<UncertainPoint> pts;
  pts.reserve(n);
  for (int i = 1; i <= n; ++i) {
    pts.push_back(UncertainPoint::Disk(
        {4.0 * (i - m) - 2.0 + jit(rng), jit(rng)}, 1.0));
  }
  return pts;
}

std::vector<UncertainPoint> DisjointDisks(int n, double lambda, uint64_t seed) {
  UNN_CHECK(lambda >= 1.0);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> rad(1.0, lambda);
  int cols = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n))));
  double pitch = 2.0 * lambda + 0.5;  // Guarantees disjointness on the grid.
  std::uniform_real_distribution<double> jit(-0.2, 0.2);
  std::vector<UncertainPoint> pts;
  pts.reserve(n);
  for (int i = 0; i < n; ++i) {
    int cx = i % cols, cy = i / cols;
    Vec2 c{cx * pitch + jit(rng), cy * pitch + jit(rng)};
    pts.push_back(UncertainPoint::Disk(c, rad(rng)));
  }
  return pts;
}

std::vector<UncertainPoint> LowerBoundVprQuartic(int n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(-0.9, 0.9);
  std::vector<UncertainPoint> pts;
  pts.reserve(n);
  for (int i = 0; i < n; ++i) {
    // One location in the unit disk (generic => all bisector pairs cross),
    // one far away (slightly spread to stay in general position).
    Vec2 near{u(rng), u(rng)};
    Vec2 far{100.0 + 1e-4 * i, 1e-4 * (i % 7)};
    pts.push_back(UncertainPoint::Discrete({near, far}, {0.5, 0.5}));
  }
  return pts;
}

std::vector<int> ZipfIndices(int count, int universe, double alpha,
                             uint64_t seed) {
  UNN_CHECK(universe > 0);
  UNN_CHECK(alpha >= 0);
  std::mt19937_64 rng(seed);
  // Inverse-CDF sampling over the explicit rank weights (universe is a
  // query-set size, not the web): cdf[r] = sum_{s<=r} 1/(s+1)^alpha.
  std::vector<double> cdf(universe);
  double total = 0;
  for (int r = 0; r < universe; ++r) {
    total += std::pow(static_cast<double>(r + 1), -alpha);
    cdf[r] = total;
  }
  // Scatter popularity across the universe: without this, "popular" would
  // always mean "first", and index locality would masquerade as skew.
  std::vector<int> rank_to_index(universe);
  for (int r = 0; r < universe; ++r) rank_to_index[r] = r;
  std::shuffle(rank_to_index.begin(), rank_to_index.end(), rng);

  std::uniform_real_distribution<double> u(0.0, total);
  std::vector<int> out;
  out.reserve(count);
  for (int i = 0; i < count; ++i) {
    int r = static_cast<int>(
        std::lower_bound(cdf.begin(), cdf.end(), u(rng)) - cdf.begin());
    if (r >= universe) r = universe - 1;
    out.push_back(rank_to_index[r]);
  }
  return out;
}

}  // namespace workload
}  // namespace unn
