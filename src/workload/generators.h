#ifndef UNN_WORKLOAD_GENERATORS_H_
#define UNN_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "core/uncertain_point.h"

/// \file generators.h
/// Workload generators for the benchmark harness: random inputs plus the
/// paper's worst-case constructions (Theorems 2.7, 2.8, 2.10 and Lemma 4.1,
/// Figures 5, 6, 8, 9). The constructions follow the proofs verbatim, with
/// the deterministic jitter the proofs themselves invoke ("omega a
/// sufficiently small positive number", perturbation arguments in Theorem
/// 2.5) so that the inputs are in general position.

namespace unn {
namespace workload {

/// n random disks, radii in [rmin, rmax], centers in a square of the given
/// half-extent. Density is controlled by `spread` relative to n.
std::vector<core::UncertainPoint> RandomDisks(int n, uint64_t seed,
                                              double spread = 0.0,
                                              double rmin = 0.1,
                                              double rmax = 1.5);

/// n discrete uncertain points with k sites each, clustered with the given
/// radius; uniform or random location probabilities.
std::vector<core::UncertainPoint> RandomDiscrete(int n, int k, uint64_t seed,
                                                 double spread = 0.0,
                                                 double cluster = 1.0,
                                                 bool uniform_weights = true);

/// Theorem 2.7 / Figure 5: Omega(n^3) vertices with two families of huge
/// disks flanking a column of unit disks. n is rounded down to a multiple
/// of 4; expected vertex count ~ 2 * (n/4)^2 * (n/2) = n^3 / 16.
std::vector<core::UncertainPoint> LowerBoundCubic(int n, uint64_t seed);

/// Theorem 2.8 / Figure 6: Omega(n^3) with equal-radius disks. n rounded
/// down to a multiple of 3; at least (n/3)^3 vertices.
std::vector<core::UncertainPoint> LowerBoundCubicEqualRadius(int n,
                                                             uint64_t seed);

/// Theorem 2.10 / Figure 8: Omega(n^2) with disjoint equal disks on a line.
std::vector<core::UncertainPoint> LowerBoundQuadratic(int n, uint64_t seed);

/// Pairwise-disjoint disks with radius ratio at most lambda (for the
/// O(lambda n^2) upper-bound sweep of Theorem 2.10): jittered grid layout.
std::vector<core::UncertainPoint> DisjointDisks(int n, double lambda,
                                                uint64_t seed);

/// Lemma 4.1 / Figure 9: k = 2 discrete points whose VPr diagram has
/// Omega(n^4) faces: one location in the unit disk, one far away.
std::vector<core::UncertainPoint> LowerBoundVprQuartic(int n, uint64_t seed);

/// `count` indices into [0, universe) drawn Zipf-style: index rank r is
/// drawn with probability proportional to 1 / (r + 1)^alpha under a random
/// rank permutation (so the popular indices are scattered, not the low
/// ones). alpha = 0 is uniform; alpha ~ 1 is the classic web-workload
/// skew. The serving benchmarks use this to model repeated-query traffic
/// against the result cache. Deterministic for a fixed seed.
std::vector<int> ZipfIndices(int count, int universe, double alpha,
                             uint64_t seed);

}  // namespace workload
}  // namespace unn

#endif  // UNN_WORKLOAD_GENERATORS_H_
