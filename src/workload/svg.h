#ifndef UNN_WORKLOAD_SVG_H_
#define UNN_WORKLOAD_SVG_H_

#include <string>
#include <vector>

#include "dcel/planar_subdivision.h"
#include "geom/vec2.h"

/// \file svg.h
/// Minimal SVG output for the example programs and the figure gallery
/// (regenerating the paper's illustrative figures as vector images).

namespace unn {
namespace workload {

class SvgWriter {
 public:
  /// World-space viewport mapped onto an image `width_px` wide (height by
  /// aspect ratio, y-axis flipped so +y is up).
  SvgWriter(const geom::Box& viewport, int width_px = 800);

  void AddCircle(geom::Vec2 center, double radius, const std::string& stroke,
                 const std::string& fill = "none", double stroke_width = 1.0);
  void AddSegment(geom::Vec2 a, geom::Vec2 b, const std::string& stroke,
                  double stroke_width = 1.0);
  void AddPolyline(const std::vector<geom::Vec2>& pts,
                   const std::string& stroke, double stroke_width = 1.0);
  void AddDot(geom::Vec2 p, double px_radius, const std::string& fill);
  void AddText(geom::Vec2 p, const std::string& text,
               const std::string& fill = "#333", int px_size = 12);

  /// Renders every edge of a subdivision (curve edges sampled; frame edges
  /// in a light style).
  void AddSubdivision(const dcel::PlanarSubdivision& sub,
                      const std::string& curve_stroke = "#1f77b4",
                      const std::string& frame_stroke = "#cccccc");

  /// Writes the file; returns false on I/O failure.
  bool WriteFile(const std::string& path) const;

 private:
  geom::Vec2 Map(geom::Vec2 p) const;
  double Scale(double w) const;

  geom::Box view_;
  int width_px_;
  int height_px_;
  std::string body_;
};

}  // namespace workload
}  // namespace unn

#endif  // UNN_WORKLOAD_SVG_H_
