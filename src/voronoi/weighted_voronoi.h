#ifndef UNN_VORONOI_WEIGHTED_VORONOI_H_
#define UNN_VORONOI_WEIGHTED_VORONOI_H_

#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dcel/planar_subdivision.h"
#include "envelope/polar_envelope.h"
#include "geom/vec2.h"
#include "pointloc/ray_shooter.h"

/// \file weighted_voronoi.h
/// The additively weighted Voronoi diagram M of sites c_1..c_n with weights
/// w_1..w_n: the minimization diagram of d(x, c_i) + w_i ([AB86]; the
/// projection of the paper's lower envelope Delta). Each cell is star-shaped
/// about its site and its boundary is the polar lower envelope of the
/// hyperbolic bisectors {d(x,c_i) - d(x,c_j) = w_j - w_i} — the same
/// machinery as the gamma_i curves of Section 2, so M falls out of the
/// PolarEnvelope + DCEL substrates. With zero weights this is the standard
/// Voronoi diagram.
///
/// M has linear complexity; its point-location structure answers
/// Delta(q) = min_i d(q,c_i)+w_i queries in O(log n)-expected time
/// (stage one of Theorem 3.1).

namespace unn {
namespace voronoi {

struct WeightedVoronoiOptions {
  geom::Box window;            ///< Empty selects an automatic window.
  double auto_window_margin = 1.0;
};

class WeightedVoronoi {
 public:
  WeightedVoronoi(std::vector<geom::Vec2> sites, std::vector<double> weights,
                  const WeightedVoronoiOptions& opts = {});

  /// Id of the site whose cell contains q (ties broken arbitrarily).
  /// Exact: falls back to a linear scan outside the window.
  int Query(geom::Vec2 q) const;

  /// min_i d(q, c_i) + w_i.
  double WeightedDistance(geom::Vec2 q) const;

  int NumSites() const { return static_cast<int>(sites_.size()); }
  /// True if the site's cell is empty (dominated by another site).
  bool IsDominated(int i) const { return dominated_[i]; }

  const dcel::PlanarSubdivision& subdivision() const { return sub_; }
  const geom::Box& window() const { return window_; }

  struct Stats {
    int64_t envelope_arcs = 0;
    int64_t vertices = 0;  ///< Voronoi vertices (envelope breakpoints).
    int dcel_edges = 0;
    int nonempty_cells = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  int SnapVertex(geom::Vec2 p);
  int BruteQuery(geom::Vec2 q) const;
  void LabelLoops();

  std::vector<geom::Vec2> sites_;
  std::vector<double> weights_;
  std::vector<char> dominated_;
  geom::Box window_;
  double scale_ = 1.0;

  dcel::PlanarSubdivision sub_;
  std::vector<std::pair<int, int>> edge_sites_;  ///< Bisector pair per edge.
  std::vector<int> loop_site_;                   ///< Cell owner per loop.
  std::unique_ptr<pointloc::RayShooter> shooter_;
  std::unordered_map<uint64_t, std::vector<int>> snap_grid_;
  double snap_tol_ = 1e-9;
  Stats stats_;
};

}  // namespace voronoi
}  // namespace unn

#endif  // UNN_VORONOI_WEIGHTED_VORONOI_H_
