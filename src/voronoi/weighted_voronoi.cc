#include "voronoi/weighted_voronoi.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geom/trig.h"
#include "util/check.h"

namespace unn {
namespace voronoi {

using dcel::EdgeShape;
using envelope::kNoCurve;
using envelope::PolarEnvelope;
using geom::Box;
using geom::FocalConic;
using geom::Vec2;

WeightedVoronoi::WeightedVoronoi(std::vector<Vec2> sites,
                                 std::vector<double> weights,
                                 const WeightedVoronoiOptions& opts)
    : sites_(std::move(sites)), weights_(std::move(weights)) {
  UNN_CHECK(!sites_.empty());
  UNN_CHECK(sites_.size() == weights_.size());
  int n = static_cast<int>(sites_.size());
  dominated_.assign(n, 0);

  if (!opts.window.Empty()) {
    window_ = opts.window;
  } else {
    Box b;
    for (int i = 0; i < n; ++i) {
      b.Expand(sites_[i]);
    }
    double wspread = 0;
    for (double w : weights_) wspread = std::max(wspread, std::abs(w));
    window_ = b.Inflated(opts.auto_window_margin * (b.Diagonal() + wspread + 1.0));
  }
  scale_ = window_.Diagonal();
  snap_tol_ = 1e-9 * scale_;

  // A site is dominated when some other site is closer+cheaper everywhere:
  // w_i - w_j >= |c_i c_j|.
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n && !dominated_[i]; ++j) {
      if (j == i) continue;
      double d = Dist(sites_[i], sites_[j]);
      if (weights_[i] - weights_[j] >= d && (d > 0 || weights_[i] > weights_[j])) {
        dominated_[i] = 1;
      }
    }
  }

  // Cell boundary of each live site: polar lower envelope of its bisectors.
  std::vector<PolarEnvelope> envs(n);
  for (int i = 0; i < n; ++i) {
    if (dominated_[i]) continue;
    std::vector<std::optional<FocalConic>> curves(n);
    for (int j = 0; j < n; ++j) {
      if (j == i || dominated_[j]) continue;
      curves[j] = FocalConic::DistanceDifference(sites_[i], sites_[j],
                                                 weights_[j] - weights_[i]);
    }
    envs[i] = PolarEnvelope::Compute(curves);
    stats_.envelope_arcs += envs[i].NumCurveArcs();
    stats_.vertices += envs[i].NumBreakpoints();
  }
  // Each vertex is a breakpoint of (generically) three envelopes.
  stats_.vertices /= 3;

  // Emit each bisector piece once (from the smaller site id), split at
  // breakpoints and window crossings; collect frame hits.
  std::vector<std::vector<std::pair<double, int>>> frame_hits(4);
  Vec2 corners[4] = {window_.lo,
                     {window_.hi.x, window_.lo.y},
                     window_.hi,
                     {window_.lo.x, window_.hi.y}};
  Box accept = window_.Inflated(1e-6 * scale_);
  for (int i = 0; i < n; ++i) {
    if (dominated_[i]) continue;
    const auto& arcs = envs[i].arcs();
    for (const auto& arc : arcs) {
      if (arc.curve == kNoCurve || arc.curve < i) continue;  // Emit once.
      const FocalConic& conic = *envs[i].curves()[arc.curve];
      std::vector<double> ev = {arc.lo, arc.hi};
      for (int s = 0; s < 4; ++s) {
        FocalConic::SegmentHit hits[2];
        int nh = conic.IntersectSegment(corners[s], corners[(s + 1) % 4], hits);
        for (int h = 0; h < nh; ++h) {
          if (hits[h].theta < arc.lo - 1e-12 || hits[h].theta > arc.hi + 1e-12) {
            continue;
          }
          ev.push_back(std::clamp(hits[h].theta, arc.lo, arc.hi));
          frame_hits[s].push_back({hits[h].t, SnapVertex(hits[h].point)});
        }
      }
      std::sort(ev.begin(), ev.end());
      ev.erase(std::unique(ev.begin(), ev.end(),
                           [](double a, double b) { return b - a < 1e-11; }),
               ev.end());
      for (size_t t = 0; t + 1 < ev.size(); ++t) {
        double t0 = ev[t], t1 = ev[t + 1];
        if (t1 - t0 < 1e-11) continue;
        double tm = 0.5 * (t0 + t1);
        if (!conic.InDomain(tm) || !window_.Contains(conic.PointAt(tm))) continue;
        Vec2 pa = conic.PointAt(t0);
        Vec2 pb = conic.PointAt(t1);
        if (!accept.Contains(pa) || !accept.Contains(pb)) continue;
        int va = SnapVertex(pa);
        int vb = SnapVertex(pb);
        if (va == vb && Dist(pa, pb) < snap_tol_) continue;
        int e = sub_.AddEdge(va, vb, EdgeShape::Arc(conic, t0, t1), i);
        edge_sites_.resize(e + 1, {-1, -1});
        edge_sites_[e] = {i, arc.curve};
      }
    }
  }
  // Frame.
  int corner_vid[4];
  for (int s = 0; s < 4; ++s) corner_vid[s] = SnapVertex(corners[s]);
  for (int s = 0; s < 4; ++s) {
    auto& hits = frame_hits[s];
    hits.push_back({0.0, corner_vid[s]});
    hits.push_back({1.0, corner_vid[(s + 1) % 4]});
    std::sort(hits.begin(), hits.end());
    for (size_t h = 0; h + 1 < hits.size(); ++h) {
      if (hits[h].second == hits[h + 1].second) continue;
      Vec2 pa = sub_.vertex(hits[h].second).pos;
      Vec2 pb = sub_.vertex(hits[h + 1].second).pos;
      int e = sub_.AddEdge(hits[h].second, hits[h + 1].second,
                           EdgeShape::Segment(pa, pb), dcel::kFrameCurve);
      edge_sites_.resize(e + 1, {-1, -1});
    }
  }
  sub_.Build();
  stats_.dcel_edges = sub_.NumEdges();
  shooter_ = std::make_unique<pointloc::RayShooter>(sub_);
  LabelLoops();
  std::vector<char> seen(n, 0);
  for (int s : loop_site_) {
    if (s >= 0 && !seen[s]) {
      seen[s] = 1;
      ++stats_.nonempty_cells;
    }
  }
}

int WeightedVoronoi::SnapVertex(Vec2 p) {
  double cell = 4.0 * snap_tol_;
  auto cx = static_cast<int64_t>(std::floor(p.x / cell));
  auto cy = static_cast<int64_t>(std::floor(p.y / cell));
  for (int64_t dx = -1; dx <= 1; ++dx) {
    for (int64_t dy = -1; dy <= 1; ++dy) {
      uint64_t key = static_cast<uint64_t>((cx + dx) * 0x9E3779B97F4A7C15ULL) ^
                     static_cast<uint64_t>(cy + dy);
      auto it = snap_grid_.find(key);
      if (it == snap_grid_.end()) continue;
      for (int vid : it->second) {
        if (Dist(sub_.vertex(vid).pos, p) <= snap_tol_) return vid;
      }
    }
  }
  int vid = sub_.AddVertex(p);
  uint64_t key = static_cast<uint64_t>(cx * 0x9E3779B97F4A7C15ULL) ^
                 static_cast<uint64_t>(cy);
  snap_grid_[key].push_back(vid);
  return vid;
}

int WeightedVoronoi::BruteQuery(Vec2 q) const {
  int best = -1;
  double best_d = std::numeric_limits<double>::infinity();
  for (int i = 0; i < NumSites(); ++i) {
    double d = Dist(q, sites_[i]) + weights_[i];
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

void WeightedVoronoi::LabelLoops() {
  loop_site_.assign(sub_.NumLoops(), -1);
  for (int l = 0; l < sub_.NumLoops(); ++l) {
    // Find a bisector half-edge on this loop and test which side we are on.
    int h0 = sub_.loop(l).first_half_edge;
    int h = h0;
    do {
      const auto& he = sub_.half_edge(h);
      auto [si, sj] = edge_sites_[he.edge];
      if (si >= 0) {
        const EdgeShape& shape = sub_.edge(he.edge).shape;
        Vec2 mid = shape.Midpoint();
        Vec2 dir = shape.TravelDirAt(0.5);
        if (!he.forward) dir = -dir;
        Vec2 p = mid + geom::Perp(dir) * (1e-7 * scale_);
        double di = Dist(p, sites_[si]) + weights_[si];
        double dj = Dist(p, sites_[sj]) + weights_[sj];
        loop_site_[l] = di <= dj ? si : sj;
        break;
      }
      h = he.next;
    } while (h != h0);
    if (loop_site_[l] < 0) {
      // Frame-only loop: a single cell covers this part of the window (or
      // we are outside). Sample any point of the loop's left side.
      const auto& he = sub_.half_edge(h0);
      const EdgeShape& shape = sub_.edge(he.edge).shape;
      Vec2 mid = shape.Midpoint();
      Vec2 dir = shape.TravelDirAt(0.5);
      if (!he.forward) dir = -dir;
      Vec2 p = mid + geom::Perp(dir) * (1e-7 * scale_);
      if (window_.Contains(p)) loop_site_[l] = BruteQuery(p);
    }
  }
}

int WeightedVoronoi::Query(Vec2 q) const {
  if (!window_.Contains(q)) return BruteQuery(q);
  int h = shooter_->LocateHalfEdgeAbove(q);
  if (h < 0) return BruteQuery(q);
  int site = loop_site_[sub_.half_edge(h).loop];
  return site >= 0 ? site : BruteQuery(q);
}

double WeightedVoronoi::WeightedDistance(Vec2 q) const {
  int i = Query(q);
  return Dist(q, sites_[i]) + weights_[i];
}

}  // namespace voronoi
}  // namespace unn
