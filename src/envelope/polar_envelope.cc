#include "envelope/polar_envelope.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geom/trig.h"
#include "util/check.h"

namespace unn {
namespace envelope {
namespace {

using geom::FocalConic;
using geom::kTwoPi;

constexpr double kInf = std::numeric_limits<double>::infinity();
// Angular tolerance for deduplicating crossing angles and degenerate arcs.
constexpr double kThetaEps = 1e-12;

using Profile = std::vector<EnvelopeArc>;

/// Radius of curve `idx` at `theta`; +infinity outside its domain or for
/// kNoCurve.
double EvalCurve(const std::vector<std::optional<FocalConic>>& curves, int idx,
                 double theta) {
  if (idx == kNoCurve) return kInf;
  const FocalConic& c = *curves[idx];
  if (!c.InDomain(theta)) return kInf;
  return c.RadiusAt(theta);
}

/// Profile of a single curve: its angular domain mapped into [0, 2*pi],
/// possibly split in two when it wraps through 0.
Profile SingleCurveProfile(const std::vector<std::optional<FocalConic>>& curves,
                           int idx) {
  Profile p;
  if (idx == kNoCurve || !curves[idx].has_value()) {
    p.push_back({0.0, kTwoPi, kNoCurve});
    return p;
  }
  const FocalConic& c = *curves[idx];
  double lo = geom::NormalizeAngle(c.DomainLo());
  double width = 2.0 * c.alpha();
  UNN_DCHECK(width < kTwoPi);
  double hi = lo + width;
  if (hi <= kTwoPi) {
    if (lo > 0) p.push_back({0.0, lo, kNoCurve});
    p.push_back({lo, hi, idx});
    if (hi < kTwoPi) p.push_back({hi, kTwoPi, kNoCurve});
  } else {
    double wrapped = hi - kTwoPi;
    p.push_back({0.0, wrapped, idx});
    p.push_back({wrapped, lo, kNoCurve});
    p.push_back({lo, kTwoPi, idx});
  }
  return p;
}

/// Coalesces zero-length arcs and merges consecutive arcs with one curve.
void Canonicalize(Profile* p) {
  Profile out;
  for (const EnvelopeArc& a : *p) {
    if (a.hi - a.lo <= kThetaEps) continue;
    if (!out.empty() && out.back().curve == a.curve &&
        std::abs(out.back().hi - a.lo) <= kThetaEps) {
      out.back().hi = a.hi;
    } else {
      out.push_back(a);
    }
  }
  if (!out.empty()) {
    out.front().lo = 0.0;
    out.back().hi = kTwoPi;
  } else {
    out.push_back({0.0, kTwoPi, kNoCurve});
  }
  *p = std::move(out);
}

/// Merges two envelope profiles into the pointwise minimum.
Profile MergeProfiles(const std::vector<std::optional<FocalConic>>& curves,
                      const Profile& a, const Profile& b) {
  Profile out;
  size_t ia = 0, ib = 0;
  double cursor = 0.0;
  while (cursor < kTwoPi - kThetaEps && ia < a.size() && ib < b.size()) {
    double hi = std::min(a[ia].hi, b[ib].hi);
    int ca = a[ia].curve;
    int cb = b[ib].curve;
    double lo = cursor;
    if (hi - lo > kThetaEps) {
      if (ca == kNoCurve || cb == kNoCurve || ca == cb) {
        int winner = (ca == kNoCurve) ? cb : (cb == kNoCurve ? ca : ca);
        out.push_back({lo, hi, winner});
      } else {
        // Two live curves: split the window at their crossings.
        double thetas[2];
        int n = FocalConic::Intersect(*curves[ca], *curves[cb], thetas);
        double cuts[4];
        int ncuts = 0;
        cuts[ncuts++] = lo;
        // Collect crossings interior to the window, sorted.
        double interior[2];
        int ni = 0;
        for (int i = 0; i < n; ++i) {
          double t = thetas[i];
          if (t > lo + kThetaEps && t < hi - kThetaEps) interior[ni++] = t;
        }
        if (ni == 2 && interior[0] > interior[1]) {
          std::swap(interior[0], interior[1]);
        }
        for (int i = 0; i < ni; ++i) cuts[ncuts++] = interior[i];
        cuts[ncuts++] = hi;
        for (int i = 0; i + 1 < ncuts; ++i) {
          double mid = 0.5 * (cuts[i] + cuts[i + 1]);
          double ra = EvalCurve(curves, ca, mid);
          double rb = EvalCurve(curves, cb, mid);
          out.push_back({cuts[i], cuts[i + 1], ra <= rb ? ca : cb});
        }
      }
    }
    cursor = hi;
    if (a[ia].hi <= hi + kThetaEps) ++ia;
    if (b[ib].hi <= hi + kThetaEps) ++ib;
  }
  Canonicalize(&out);
  return out;
}

Profile ComputeRange(const std::vector<std::optional<FocalConic>>& curves,
                     const std::vector<int>& ids, int lo, int hi) {
  if (hi - lo == 1) return SingleCurveProfile(curves, ids[lo]);
  int mid = (lo + hi) / 2;
  Profile left = ComputeRange(curves, ids, lo, mid);
  Profile right = ComputeRange(curves, ids, mid, hi);
  return MergeProfiles(curves, left, right);
}

}  // namespace

PolarEnvelope PolarEnvelope::Compute(
    const std::vector<std::optional<FocalConic>>& curves) {
  PolarEnvelope env;
  env.curves_ = curves;
  std::vector<int> ids;
  for (size_t i = 0; i < curves.size(); ++i) {
    if (curves[i].has_value()) ids.push_back(static_cast<int>(i));
  }
  if (ids.empty()) {
    env.arcs_.push_back({0.0, kTwoPi, kNoCurve});
    return env;
  }
#ifndef NDEBUG
  for (size_t i = 1; i < ids.size(); ++i) {
    UNN_DCHECK(geom::DistSq(curves[ids[0]]->origin(),
                            curves[ids[i]]->origin()) == 0.0);
  }
#endif
  env.arcs_ =
      ComputeRange(curves, ids, 0, static_cast<int>(ids.size()));
  return env;
}

int PolarEnvelope::ArcIndexAt(double theta) const {
  theta = geom::NormalizeAngle(theta);
  // Binary search over the arc partition.
  size_t lo = 0, hi = arcs_.size();
  while (hi - lo > 1) {
    size_t mid = (lo + hi) / 2;
    if (arcs_[mid].lo <= theta) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return static_cast<int>(lo);
}

std::pair<double, int> PolarEnvelope::Eval(double theta) const {
  int idx = arcs_[ArcIndexAt(theta)].curve;
  return {EvalCurve(curves_, idx, geom::NormalizeAngle(theta)), idx};
}

int PolarEnvelope::NumCurveArcs() const {
  int n = 0;
  for (const EnvelopeArc& a : arcs_) n += (a.curve != kNoCurve);
  return n;
}

int PolarEnvelope::NumBreakpoints() const {
  int n = 0;
  for (size_t i = 0; i < arcs_.size(); ++i) {
    const EnvelopeArc& cur = arcs_[i];
    const EnvelopeArc& next = arcs_[(i + 1) % arcs_.size()];
    if (cur.curve != kNoCurve && next.curve != kNoCurve &&
        cur.curve != next.curve) {
      ++n;
    }
  }
  return n;
}

bool PolarEnvelope::FullyCovered() const {
  for (const EnvelopeArc& a : arcs_) {
    if (a.curve == kNoCurve) return false;
  }
  return true;
}

}  // namespace envelope
}  // namespace unn
