#ifndef UNN_ENVELOPE_POLAR_ENVELOPE_H_
#define UNN_ENVELOPE_POLAR_ENVELOPE_H_

#include <utility>
#include <vector>

#include "geom/conic.h"

/// \file polar_envelope.h
/// Lower envelopes of polar function graphs about a common center.
///
/// This is the computational heart of Lemma 2.2: the curve gamma_i is the
/// lower envelope, in polar coordinates about c_i, of the hyperbola branches
/// gamma_ij (each a FocalConic with origin focus c_i). Any two branches
/// cross at most twice, so the envelope is a Davenport-Schinzel sequence of
/// order 2 with at most 2n-1 arcs; we compute it by divide-and-conquer
/// merging in O(n log n). The same routine builds the cells of the
/// additively-weighted Voronoi diagram M (whose bisectors are also focal
/// conics about the cell's site).

namespace unn {
namespace envelope {

/// Sentinel curve index for angular stretches where no input curve is
/// defined (the envelope is +infinity there).
inline constexpr int kNoCurve = -1;

/// One maximal arc of the envelope: on [lo, hi] (a subinterval of [0, 2*pi])
/// the envelope coincides with input curve `curve`, or is +infinity when
/// `curve == kNoCurve`.
struct EnvelopeArc {
  double lo = 0.0;
  double hi = 0.0;
  int curve = kNoCurve;
};

/// Lower envelope of focal-conic polar graphs sharing one origin focus.
class PolarEnvelope {
 public:
  /// Computes the envelope of `curves` (all must share the same origin
  /// focus; empty optional entries are allowed and ignored — they keep the
  /// index space of the caller intact).
  static PolarEnvelope Compute(
      const std::vector<std::optional<geom::FocalConic>>& curves);

  /// The arcs, sorted by angle, partitioning [0, 2*pi] exactly.
  const std::vector<EnvelopeArc>& arcs() const { return arcs_; }

  /// Envelope value at `theta`: (radius, curve index); radius is +infinity
  /// and index kNoCurve where no curve is defined.
  std::pair<double, int> Eval(double theta) const;

  /// Index into arcs() of the arc containing `theta` (normalized).
  int ArcIndexAt(double theta) const;

  /// Number of arcs carrying an actual curve (kNoCurve stretches excluded).
  int NumCurveArcs() const;

  /// Number of interior breakpoints: shared endpoints of two consecutive
  /// curve-carrying arcs (this matches Lemma 2.2's breakpoint count).
  int NumBreakpoints() const;

  /// True if every angle has a defining curve (the envelope is a closed
  /// star-shaped curve about the center).
  bool FullyCovered() const;

  /// The input curves (copied), aligned with arc curve indices.
  const std::vector<std::optional<geom::FocalConic>>& curves() const {
    return curves_;
  }

 private:
  std::vector<EnvelopeArc> arcs_;
  std::vector<std::optional<geom::FocalConic>> curves_;
};

}  // namespace envelope
}  // namespace unn

#endif  // UNN_ENVELOPE_POLAR_ENVELOPE_H_
