#include "obs/profile.h"

namespace unn {
namespace obs {

namespace internal {
std::atomic<bool> g_traversal_profiling{false};
}  // namespace internal

namespace {

constexpr int kShards = Counter::kShards;

/// Per-(op, shard) accumulator row, padded so shards never false-share.
struct alignas(64) StatCell {
  std::atomic<std::int64_t> traversals{0};
  std::atomic<std::int64_t> nodes_visited{0};
  std::atomic<std::int64_t> leaves_scanned{0};
  std::atomic<std::int64_t> points_evaluated{0};
  std::atomic<std::int64_t> prunes{0};
  std::atomic<std::int64_t> heap_pushes{0};
};

StatCell g_cells[kNumTraversalOps][kShards];

}  // namespace

const char* TraversalOpName(TraversalOp op) {
  switch (op) {
    case TraversalOp::kQuantEnvelope:
      return "quant_envelope";
    case TraversalOp::kQuantSurvival:
      return "quant_survival";
    case TraversalOp::kQuantArgmin:
      return "quant_argmin";
    case TraversalOp::kKdNearest:
      return "kd_nearest";
  }
  return "unknown";
}

const char* TraversalOpStructure(TraversalOp op) {
  switch (op) {
    case TraversalOp::kQuantEnvelope:
    case TraversalOp::kQuantSurvival:
    case TraversalOp::kQuantArgmin:
      return "quant_tree";
    case TraversalOp::kKdNearest:
      return "flat_kd_tree";
  }
  return "unknown";
}

void EnableTraversalProfiling(bool on) {
  // relaxed: see TraversalProfilingEnabled — the flag orders nothing.
  internal::g_traversal_profiling.store(on, std::memory_order_relaxed);
}

void RecordTraversal(TraversalOp op, const spatial::TraversalStats& st) {
  StatCell& c = g_cells[static_cast<int>(op)]
                       [internal::ThreadShard() & (kShards - 1)];
  // relaxed: profiling counters race only with other counters, never
  // with the traversals they describe (obs/metrics.h contract).
  c.traversals.fetch_add(1, std::memory_order_relaxed);
  c.nodes_visited.fetch_add(st.nodes_visited, std::memory_order_relaxed);
  c.leaves_scanned.fetch_add(st.leaves_scanned, std::memory_order_relaxed);
  c.points_evaluated.fetch_add(st.points_evaluated, std::memory_order_relaxed);
  c.prunes.fetch_add(st.prunes, std::memory_order_relaxed);
  c.heap_pushes.fetch_add(st.heap_pushes, std::memory_order_relaxed);
}

spatial::TraversalStats TraversalTotals(TraversalOp op) {
  spatial::TraversalStats out;
  for (int s = 0; s < kShards; ++s) {
    const StatCell& c = g_cells[static_cast<int>(op)][s];
    // relaxed: snapshot sums, exact once writers quiesce.
    out.nodes_visited += c.nodes_visited.load(std::memory_order_relaxed);
    out.leaves_scanned += c.leaves_scanned.load(std::memory_order_relaxed);
    out.points_evaluated += c.points_evaluated.load(std::memory_order_relaxed);
    out.prunes += c.prunes.load(std::memory_order_relaxed);
    out.heap_pushes += c.heap_pushes.load(std::memory_order_relaxed);
  }
  return out;
}

std::int64_t TraversalCount(TraversalOp op) {
  std::int64_t total = 0;
  for (int s = 0; s < kShards; ++s) {
    // relaxed: snapshot sum, exact once writers quiesce.
    total += g_cells[static_cast<int>(op)][s].traversals.load(
        std::memory_order_relaxed);
  }
  return total;
}

void ResetTraversalProfile() {
  for (auto& row : g_cells) {
    for (StatCell& c : row) {
      // relaxed: a reset racing a recording loses or keeps individual
      // increments, which a test-only reset hook tolerates by contract.
      c.traversals.store(0, std::memory_order_relaxed);
      c.nodes_visited.store(0, std::memory_order_relaxed);
      c.leaves_scanned.store(0, std::memory_order_relaxed);
      c.points_evaluated.store(0, std::memory_order_relaxed);
      c.prunes.store(0, std::memory_order_relaxed);
      c.heap_pushes.store(0, std::memory_order_relaxed);
    }
  }
}

void AppendTraversalMetrics(std::vector<MetricSnapshot>* out) {
  for (int i = 0; i < kNumTraversalOps; ++i) {
    TraversalOp op = static_cast<TraversalOp>(i);
    std::int64_t n = TraversalCount(op);
    if (n == 0) continue;
    spatial::TraversalStats t = TraversalTotals(op);
    Labels labels = {{"structure", TraversalOpStructure(op)},
                     {"op", TraversalOpName(op)}};
    auto add = [&](const char* name, const char* help, std::int64_t v) {
      MetricSnapshot m;
      m.name = name;
      m.help = help;
      m.labels = labels;
      m.kind = MetricKind::kCounter;
      m.value = static_cast<double>(v);
      out->push_back(std::move(m));
    };
    add("unn_traversal_queries_total", "Profiled traversals executed.", n);
    add("unn_traversal_nodes_visited_total",
        "Tree nodes entered and not pruned.", t.nodes_visited);
    add("unn_traversal_leaves_scanned_total", "Leaf nodes scanned.",
        t.leaves_scanned);
    add("unn_traversal_points_evaluated_total",
        "Item-level evaluations at leaves.", t.points_evaluated);
    add("unn_traversal_prunes_total", "Subtrees discarded by a bound test.",
        t.prunes);
    add("unn_traversal_heap_pushes_total",
        "Best-first frontier insertions (0 for DFS traversals).",
        t.heap_pushes);
  }
}

}  // namespace obs
}  // namespace unn
