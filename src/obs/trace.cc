#include "obs/trace.h"

#include <cstdio>

namespace unn {
namespace obs {

std::int32_t TraceContext::StartSpan(const char* name, std::int32_t parent,
                                     std::int64_t tag) {
  std::int64_t now = NowNs();
  MutexLock lock(&mu_);
  Span s;
  s.id = static_cast<std::int32_t>(spans_.size());
  s.parent = parent;
  s.name = name;
  s.tag = tag;
  s.start_ns = now;
  spans_.push_back(s);
  return s.id;
}

void TraceContext::EndSpan(std::int32_t id) {
  std::int64_t now = NowNs();
  MutexLock lock(&mu_);
  if (id >= 0 && id < static_cast<std::int32_t>(spans_.size())) {
    spans_[id].end_ns = now;
  }
}

std::vector<Span> TraceContext::spans() const {
  MutexLock lock(&mu_);
  return spans_;
}

namespace {

void RenderSpan(const std::vector<Span>& spans,
                const std::vector<std::vector<int>>& children, int id,
                int depth, std::string* out) {
  const Span& s = spans[id];
  char buf[256];
  std::string label(static_cast<size_t>(depth) * 2, ' ');
  label += s.name;
  if (s.tag >= 0) {
    std::snprintf(buf, sizeof(buf), " [tag=%lld]",
                  static_cast<long long>(s.tag));
    label += buf;
  }
  double start_us = static_cast<double>(s.start_ns) / 1e3;
  if (s.end_ns >= 0) {
    double end_us = static_cast<double>(s.end_ns) / 1e3;
    std::snprintf(buf, sizeof(buf), "%-32s %9.1fus .. %9.1fus  (%9.1fus)\n",
                  label.c_str(), start_us, end_us, end_us - start_us);
  } else {
    std::snprintf(buf, sizeof(buf), "%-32s %9.1fus .. (open)\n", label.c_str(),
                  start_us);
  }
  *out += buf;
  for (int c : children[id]) RenderSpan(spans, children, c, depth + 1, out);
}

}  // namespace

std::string RenderSpanTree(const std::vector<Span>& spans) {
  std::string out;
  int n = static_cast<int>(spans.size());
  std::vector<std::vector<int>> children(n);
  for (int i = 0; i < n; ++i) {
    int p = spans[i].parent;
    if (p >= 0 && p < n) children[p].push_back(i);
  }
  for (int i = 0; i < n; ++i) {
    if (spans[i].parent < 0 || spans[i].parent >= n) {
      RenderSpan(spans, children, i, 0, &out);
    }
  }
  return out;
}

}  // namespace obs
}  // namespace unn
