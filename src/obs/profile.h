#ifndef UNN_OBS_PROFILE_H_
#define UNN_OBS_PROFILE_H_

#include <atomic>
#include <vector>

#include "obs/metrics.h"
#include "spatial/traverse.h"

/// \file profile.h
/// Opt-in traversal profiling: a process-wide sink aggregating
/// spatial::TraversalStats per traversal operation, so benches and tests
/// can assert pruning efficiency (nodes visited, leaves scanned, prunes
/// taken, heap pushes) without threading a sink through every query API.
///
/// Cost model: profiling is off by default. Instrumented call sites do
/// one relaxed atomic load (TraversalProfilingEnabled()) and, when off,
/// pass a null stats pointer into the traversal engines — the counters
/// compile to dead branches. When on, each traversal accumulates into a
/// stack-local TraversalStats and RecordTraversal() folds it into
/// per-thread-sharded atomic cells (same sharding as obs::Counter).
///
/// The sink is process-global (engines are shared across servers and have
/// no registry of their own); QueryServer::DumpMetrics() appends its
/// totals to the per-server registry snapshot via AppendTraversalMetrics.

namespace unn {
namespace obs {

/// The instrumented traversal operations.
enum class TraversalOp {
  kQuantEnvelope = 0,  ///< QuantTree::MaxDistEnvelope (best-first).
  kQuantSurvival,      ///< QuantTree::LogSurvival (pruned DFS).
  kQuantArgmin,        ///< QuantTree::ArgminPointwise (best-first).
  kKdNearest,          ///< range::KdTree nearest/k-nearest descents.
};
inline constexpr int kNumTraversalOps = 4;

/// Metric label value for an op ("quant_envelope", ...).
const char* TraversalOpName(TraversalOp op);
/// Metric label value for the structure behind an op ("quant_tree" /
/// "flat_kd_tree").
const char* TraversalOpStructure(TraversalOp op);

namespace internal {
extern std::atomic<bool> g_traversal_profiling;
}  // namespace internal

/// Turns the process-wide sink on/off. Off is the default; flipping it
/// does not reset accumulated totals (see ResetTraversalProfile).
void EnableTraversalProfiling(bool on);

/// One relaxed load — the instrumented hot paths' only disabled-mode cost.
inline bool TraversalProfilingEnabled() {
  // relaxed: a stale enable/disable flag only delays when profiling
  // starts or stops counting; it orders nothing.
  return internal::g_traversal_profiling.load(std::memory_order_relaxed);
}

/// Folds one traversal's counters into the global sink.
void RecordTraversal(TraversalOp op, const spatial::TraversalStats& st);

/// Accumulated totals for one op (sums across threads; exact once
/// writers quiesce, relaxed-consistent under load).
spatial::TraversalStats TraversalTotals(TraversalOp op);

/// Number of traversals recorded for `op`.
std::int64_t TraversalCount(TraversalOp op);

/// Zeroes the sink (tests / bench phases).
void ResetTraversalProfile();

/// Appends the sink's totals as counter snapshots
/// (unn_traversal_<field>_total{structure=...,op=...} plus
/// unn_traversal_queries_total) for ops with at least one recorded
/// traversal.
void AppendTraversalMetrics(std::vector<MetricSnapshot>* out);

}  // namespace obs
}  // namespace unn

#endif  // UNN_OBS_PROFILE_H_
