#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <map>

namespace unn {
namespace obs {

namespace {

const char* KindName(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

std::string FormatNumber(double v) {
  char buf[64];
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  // Exact-integer values (counter totals, bucket counts) print without a
  // fractional part; everything else keeps full round-trip precision.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.10g", v);
  }
  return buf;
}

std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// `{k="v",...}` with optional extra (le) pair appended; empty labels and
/// no extra render as nothing.
std::string RenderLabels(const Labels& labels, const char* extra_key = nullptr,
                         const std::string& extra_value = "") {
  if (labels.empty() && extra_key == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += EscapeLabelValue(v);
    out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += extra_value;
    out += '"';
  }
  out += '}';
  return out;
}

std::string FormatBoundary(double upper) {
  if (std::isinf(upper)) return "+Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", upper);
  return buf;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double v) {
  if (std::isinf(v) || std::isnan(v)) {
    std::string out = "\"";  // JSON has no Inf/NaN literals; quote them.
    out += FormatNumber(v);
    out += '"';
    return out;
  }
  return FormatNumber(v);
}

}  // namespace

std::string ToPrometheusText(const std::vector<MetricSnapshot>& metrics) {
  // Group snapshots sharing a name (one per label set) under a single
  // HELP/TYPE header, preserving first-appearance order.
  std::vector<std::string> names;
  std::map<std::string, std::vector<const MetricSnapshot*>> by_name;
  for (const MetricSnapshot& m : metrics) {
    auto [it, inserted] = by_name.try_emplace(m.name);
    if (inserted) names.push_back(m.name);
    it->second.push_back(&m);
  }
  std::string out;
  for (const std::string& name : names) {
    const auto& group = by_name[name];
    const MetricSnapshot& head = *group.front();
    if (!head.help.empty()) {
      out += "# HELP " + name + " " + head.help + "\n";
    }
    out += "# TYPE " + name + " ";
    out += KindName(head.kind);
    out += '\n';
    for (const MetricSnapshot* mp : group) {
      const MetricSnapshot& m = *mp;
      if (m.kind != MetricKind::kHistogram) {
        out += name + RenderLabels(m.labels) + " " + FormatNumber(m.value) +
               "\n";
        continue;
      }
      // Cumulative buckets; empty buckets are elided (the cumulative
      // value is unchanged) except the required +Inf bucket.
      std::uint64_t cum = 0;
      for (int i = 0; i < static_cast<int>(m.buckets.size()); ++i) {
        bool last = i + 1 == static_cast<int>(m.buckets.size());
        if (m.buckets[i] == 0 && !last) continue;
        cum += m.buckets[i];
        out += name + "_bucket" +
               RenderLabels(m.labels, "le",
                            FormatBoundary(Histogram::BucketUpper(i))) +
               " " + FormatNumber(static_cast<double>(cum)) + "\n";
      }
      out += name + "_sum" + RenderLabels(m.labels) + " " +
             FormatNumber(m.sum) + "\n";
      out += name + "_count" + RenderLabels(m.labels) + " " +
             FormatNumber(static_cast<double>(m.count)) + "\n";
    }
  }
  return out;
}

std::string ToJson(const std::vector<MetricSnapshot>& metrics) {
  std::string out = "[\n";
  for (size_t i = 0; i < metrics.size(); ++i) {
    const MetricSnapshot& m = metrics[i];
    out += "  {\"name\": \"";
    out += EscapeJson(m.name);
    out += "\", \"kind\": \"";
    out += KindName(m.kind);
    out += '"';
    if (!m.labels.empty()) {
      out += ", \"labels\": {";
      for (size_t j = 0; j < m.labels.size(); ++j) {
        if (j > 0) out += ", ";
        out += '"';
        out += EscapeJson(m.labels[j].first);
        out += "\": \"";
        out += EscapeJson(m.labels[j].second);
        out += '"';
      }
      out += '}';
    }
    auto field = [&out](const char* key, const std::string& value) {
      out += ", \"";
      out += key;
      out += "\": ";
      out += value;
    };
    if (m.kind == MetricKind::kHistogram) {
      field("count", JsonNumber(static_cast<double>(m.count)));
      field("sum", JsonNumber(m.sum));
      field("max", JsonNumber(m.max));
      field("p50", JsonNumber(m.summary.p50));
      field("p95", JsonNumber(m.summary.p95));
      field("p99", JsonNumber(m.summary.p99));
    } else {
      field("value", JsonNumber(m.value));
    }
    out += i + 1 < metrics.size() ? "},\n" : "}\n";
  }
  out += "]\n";
  return out;
}

std::string Export(const std::vector<MetricSnapshot>& metrics,
                   MetricsFormat format) {
  return format == MetricsFormat::kPrometheus ? ToPrometheusText(metrics)
                                              : ToJson(metrics);
}

}  // namespace obs
}  // namespace unn
