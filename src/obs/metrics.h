#ifndef UNN_OBS_METRICS_H_
#define UNN_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/thread_annotations.h"

/// \file metrics.h
/// Lock-light metrics primitives and the registry that names them — the
/// single metrics surface behind serve::ServerStats, the result cache and
/// the traversal profiler (see docs/OBSERVABILITY.md for the catalog).
///
///   * Counter   — monotone u64 over per-thread-sharded, cache-line-padded
///                 atomic cells: Inc() is one relaxed fetch_add on the
///                 calling thread's cell, Value() sums the cells.
///   * Gauge     — a single atomic double (set-dominated, rarely raced).
///   * Histogram — 128 geometric buckets spanning [1, 1e8] (microseconds
///                 by convention), an atomic sum and max; percentiles are
///                 upper bounds clamped to the observed max, so a
///                 single-sample histogram reports that sample exactly and
///                 p50 <= p95 <= p99 always holds. Values above the top
///                 boundary land in a dedicated overflow bucket whose
///                 percentile estimate is the observed max (not a clamped
///                 boundary), fixing the old LatencyHistogram's top-bucket
///                 understatement.
///
/// Threading contract (matches the old ServerStats): all mutation uses
/// relaxed atomics — counts race only with other counts, never with data
/// they describe, so totals are exact while cross-metric snapshots are
/// only eventually consistent. Registration takes a mutex; handles are
/// pointer-stable for the registry's lifetime, so hot paths hold a raw
/// `Counter*` and never touch the lock again.

namespace unn {
namespace obs {

namespace internal {
/// The calling thread's slab shard, assigned round-robin on first use.
int ThreadShard();
}  // namespace internal

/// Monotone counter over kShards cache-line-padded atomic cells. Inc() is
/// wait-free (one relaxed fetch_add, no false sharing between threads on
/// different shards); Value() is a relaxed sum, exact once writers quiesce.
class Counter {
 public:
  static constexpr int kShards = 8;

  void Inc(std::uint64_t n = 1) {
    // relaxed: counts race only with other counts, never with the data
    // they describe (file-level threading contract above).
    cells_[internal::ThreadShard() & (kShards - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  std::uint64_t Value() const {
    std::uint64_t total = 0;
    // relaxed: per-cell sums are exact once writers quiesce; concurrent
    // readers accept an eventually-consistent total.
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  static_assert((kShards & (kShards - 1)) == 0, "kShards must be a power of 2");
  std::array<Cell, kShards> cells_{};
};

/// Point-in-time value; Set/Add are relaxed atomics on one double.
class Gauge {
 public:
  // relaxed: a gauge is a free-standing point-in-time value; it never
  // publishes other data (file-level threading contract above).
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  void Add(double d) {
    // relaxed: fetch_add on atomic<double> is C++20; same contract as Set.
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  // relaxed: observability read; staleness is acceptable by contract.
  double Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Percentile summary of a Histogram. All values are upper bounds except
/// that every percentile is clamped to the observed max (and the overflow
/// bucket reports the max itself), so p50 <= p95 <= p99 <= max holds and
/// an empty histogram summarizes to all zeros.
struct HistogramSummary {
  std::uint64_t count = 0;
  double sum = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Fixed-layout geometric histogram: buckets 0..126 have finite upper
/// boundaries 10^(8i/126) covering [1, 1e8]; bucket 127 is the overflow
/// (+Inf) bucket. Record() is two relaxed atomic RMWs plus a CAS loop for
/// the max; values <= 0 count into bucket 0.
class Histogram {
 public:
  static constexpr int kBuckets = 128;
  static constexpr int kOverflowBucket = kBuckets - 1;

  void Record(double v);

  /// Upper boundary of bucket `i`; +infinity for the overflow bucket.
  static double BucketUpper(int i);

  HistogramSummary Summarize() const;

  std::uint64_t bucket_count(int i) const {
    // relaxed: snapshot read of one bucket; cross-bucket consistency is
    // only eventual (file-level threading contract above).
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const;
  // relaxed: same snapshot-read contract as bucket_count.
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Label set, ordered as registered (rendered verbatim by the exporters).
using Labels = std::vector<std::pair<std::string, std::string>>;

/// One metric's point-in-time state, decoupled from the live handles so
/// exporters and tests work on plain data.
struct MetricSnapshot {
  std::string name;
  std::string help;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;  ///< Counter / gauge value.
  /// Histogram-only: per-bucket counts (size Histogram::kBuckets), total
  /// sum/count and observed max.
  std::vector<std::uint64_t> buckets;
  double sum = 0.0;
  double max = 0.0;
  std::uint64_t count = 0;
  HistogramSummary summary;  ///< Histogram-only.
};

/// Names and owns metric instances. Get*() registers on first use and is
/// idempotent on (name, labels) — callers resolve handles once at setup
/// and keep the raw pointer, which stays valid for the registry's
/// lifetime. Registration locks a mutex; Snapshot() locks it only to walk
/// the (stable) entry list, racing benignly with relaxed writers.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(const std::string& name, const std::string& help,
                      Labels labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  Labels labels = {});
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          Labels labels = {});

  /// Point-in-time state of every registered metric, in registration
  /// order (counters, gauges, histograms interleaved as registered).
  std::vector<MetricSnapshot> Snapshot() const;

 private:
  template <typename M>
  struct Entry {
    std::string name;
    std::string help;
    Labels labels;
    int order = 0;  ///< Global registration sequence for Snapshot order.
    M metric;
  };

  /// Registration slow path. Locked variant: the public Get*() methods
  /// take mu_ first, so the guarded deques are never passed by reference
  /// without the capability held.
  template <typename M>
  M* GetOrCreateLocked(std::deque<Entry<M>>& entries, MetricKind kind,
                       const std::string& name, const std::string& help,
                       Labels labels) UNN_REQUIRES(mu_);

  mutable Mutex mu_;
  int next_order_ UNN_GUARDED_BY(mu_) = 0;
  // std::deque: pointer-stable under push_back, so handles survive later
  // registrations. The deques (entry list + metric storage) are guarded;
  // the handed-out metric handles are themselves atomic and lock-free.
  std::deque<Entry<Counter>> counters_ UNN_GUARDED_BY(mu_);
  std::deque<Entry<Gauge>> gauges_ UNN_GUARDED_BY(mu_);
  std::deque<Entry<Histogram>> histograms_ UNN_GUARDED_BY(mu_);
  std::map<std::pair<std::string, std::string>, std::pair<MetricKind, void*>>
      index_ UNN_GUARDED_BY(mu_);  ///< (name, labels) -> existing handle.
};

}  // namespace obs
}  // namespace unn

#endif  // UNN_OBS_METRICS_H_
