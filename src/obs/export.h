#ifndef UNN_OBS_EXPORT_H_
#define UNN_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "obs/metrics.h"

/// \file export.h
/// Snapshot serializers: Prometheus text exposition format (version
/// 0.0.4 — HELP/TYPE headers, cumulative `_bucket{le=...}` histograms
/// with `_sum`/`_count`) and a JSON document (one object per metric,
/// histograms carry count/sum/max plus p50/p95/p99 instead of raw
/// buckets). Pure functions over MetricSnapshot, so anything that can
/// produce snapshots (Registry::Snapshot, AppendTraversalMetrics) can be
/// exported. Snapshots sharing a name (e.g. a counter per label set) are
/// grouped under one HELP/TYPE header as Prometheus requires.

namespace unn {
namespace obs {

enum class MetricsFormat { kPrometheus, kJson };

std::string ToPrometheusText(const std::vector<MetricSnapshot>& metrics);
std::string ToJson(const std::vector<MetricSnapshot>& metrics);

/// Dispatches on `format`.
std::string Export(const std::vector<MetricSnapshot>& metrics,
                   MetricsFormat format);

}  // namespace obs
}  // namespace unn

#endif  // UNN_OBS_EXPORT_H_
