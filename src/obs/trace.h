#ifndef UNN_OBS_TRACE_H_
#define UNN_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "util/thread_annotations.h"

/// \file trace.h
/// Request tracing: a TraceContext records a span tree (admission -> cache
/// lookup -> shard fan-out -> per-shard engine query -> merge) with
/// monotonic-clock timings relative to the context's epoch.
///
/// The disabled mode is the design center: every tracing call site takes a
/// TraceNode — a {context, parent-span} pair — and when the context
/// pointer is null, ScopedSpan construction/destruction is a pointer test
/// and nothing else: no allocation, no clock read, no lock. Code threads
/// TraceNode values down the call chain (QueryServer -> ShardedEngine ->
/// per-shard tasks) instead of using thread-local "current span" state, so
/// spans parent correctly across thread-pool hops.
///
/// Thread safety: TraceContext serializes span starts/ends with an
/// internal mutex (a traced request fans out across pool workers that
/// record concurrently); distinct contexts never contend. Span names must
/// be string literals (or otherwise outlive the context) — they are
/// stored as const char* so tracing never copies strings on the hot path.

namespace unn {
namespace obs {

/// One recorded span. Timings are nanoseconds since the owning context's
/// epoch (steady clock); `end_ns < 0` means the span was never ended.
/// `tag` carries a small integer payload (shard index, batch size, ...);
/// -1 means none.
struct Span {
  std::int32_t id = -1;
  std::int32_t parent = -1;  ///< Parent span id, -1 for a root span.
  const char* name = "";
  std::int64_t tag = -1;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = -1;
};

/// Records the span tree for one request. Create one per traced request;
/// cheap enough to keep off the hot path entirely when tracing is off
/// (see TraceNode).
class TraceContext {
 public:
  TraceContext() : epoch_(std::chrono::steady_clock::now()) {}
  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  /// Opens a span; returns its id for EndSpan / child parenting.
  std::int32_t StartSpan(const char* name, std::int32_t parent = -1,
                         std::int64_t tag = -1);
  void EndSpan(std::int32_t id);

  /// Snapshot of all spans recorded so far (ids are indices).
  std::vector<Span> spans() const;

  /// Nanoseconds since this context's epoch (monotonic).
  std::int64_t NowNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable Mutex mu_;
  std::vector<Span> spans_ UNN_GUARDED_BY(mu_);
};

/// An attachment point for child spans: which context (null = tracing
/// disabled) and which span to parent under. Passed by value down call
/// chains; the default-constructed node is the universal "not tracing"
/// value, so instrumented APIs take `TraceNode trace = {}` and callers
/// that do not trace pay one null test per span site.
struct TraceNode {
  TraceContext* ctx = nullptr;
  std::int32_t parent = -1;
};

/// RAII span: opens on construction (no-op when `at.ctx` is null), ends on
/// destruction or explicit End(). Use node() to parent children.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(TraceNode at, const char* name, std::int64_t tag = -1)
      : ctx_(at.ctx) {
    if (ctx_ != nullptr) id_ = ctx_->StartSpan(name, at.parent, tag);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() { End(); }

  /// Attachment point for children of this span.
  TraceNode node() const { return TraceNode{ctx_, id_}; }

  void End() {
    if (ctx_ != nullptr && id_ >= 0) {
      ctx_->EndSpan(id_);
      id_ = -1;
    }
  }

 private:
  TraceContext* ctx_ = nullptr;
  std::int32_t id_ = -1;
};

/// ASCII rendering of a span tree (children indented under parents, in
/// recording order) for logs and the slow-query dump:
///
///     request                          0.0us ..  2340.1us  ( 2340.1us)
///       admission                      0.4us ..    12.0us  (   11.6us)
///       engine_query [tag=0]          13.1us ..  2101.9us  ( 2088.8us)
std::string RenderSpanTree(const std::vector<Span>& spans);

}  // namespace obs
}  // namespace unn

#endif  // UNN_OBS_TRACE_H_
