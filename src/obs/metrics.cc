#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace unn {
namespace obs {

namespace internal {

int ThreadShard() {
  static std::atomic<int> next{0};
  // relaxed: shard ids only need to be distinct-ish across threads; no
  // data is published through the round-robin counter.
  // lint:allow(trace-thread-local) counter-slab shard id, the one
  // sanctioned thread_local (trace contexts are value-threaded, PR 7).
  thread_local const int shard = next.fetch_add(1, std::memory_order_relaxed);
  return shard;
}

}  // namespace internal

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Finite bucket boundaries: 10^(8i/126) for i = 0..126, so bucket 0 ends
/// at 1 and bucket 126 at 1e8 (microsecond convention: 1us .. 100s).
const std::array<double, Histogram::kBuckets - 1>& FiniteUppers() {
  static const std::array<double, Histogram::kBuckets - 1> uppers = [] {
    std::array<double, Histogram::kBuckets - 1> u{};
    for (int i = 0; i < Histogram::kBuckets - 1; ++i) {
      u[i] = std::pow(10.0, 8.0 * i / (Histogram::kBuckets - 2));
    }
    return u;
  }();
  return uppers;
}

int BucketIndex(double v) {
  const auto& uppers = FiniteUppers();
  // First bucket whose upper boundary is >= v; overflow past the last.
  auto it = std::lower_bound(uppers.begin(), uppers.end(), v);
  if (it == uppers.end()) return Histogram::kOverflowBucket;
  return static_cast<int>(it - uppers.begin());
}

}  // namespace

double Histogram::BucketUpper(int i) {
  UNN_CHECK(i >= 0 && i < kBuckets);
  if (i == kOverflowBucket) return kInf;
  return FiniteUppers()[i];
}

void Histogram::Record(double v) {
  if (!(v >= 0.0)) v = 0.0;  // Negative or NaN: clamp into bucket 0.
  // relaxed: bucket/sum/max race only with other recordings; readers
  // accept eventually-consistent cross-field snapshots (metrics.h).
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  double prev = max_.load(std::memory_order_relaxed);
  while (v > prev &&
         !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  // relaxed: snapshot sum, exact once writers quiesce.
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

HistogramSummary Histogram::Summarize() const {
  HistogramSummary s;
  std::array<std::uint64_t, kBuckets> counts;
  // relaxed: a summary is a point-in-time snapshot; buckets recorded
  // concurrently may or may not be included (metrics.h contract).
  for (int i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    s.count += counts[i];
  }
  if (s.count == 0) return s;  // Empty histogram: all zeros, no percentiles.
  // relaxed: same snapshot contract as the bucket reads above.
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  auto percentile = [&](double p) {
    // Rank-th smallest sample, rank in [1, count]. The estimate is the
    // bucket's upper boundary clamped to the observed max — exact for a
    // single sample and for the overflow bucket, an upper bound otherwise.
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(p * static_cast<double>(s.count)));
    rank = std::max<std::uint64_t>(rank, 1);
    std::uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += counts[i];
      if (seen >= rank) {
        if (i == kOverflowBucket) return s.max;
        return std::min(BucketUpper(i), s.max);
      }
    }
    return s.max;
  };
  s.p50 = percentile(0.50);
  s.p95 = percentile(0.95);
  s.p99 = percentile(0.99);
  return s;
}

namespace {

std::string SerializeLabels(const Labels& labels) {
  std::string out;
  for (const auto& [k, v] : labels) {
    out += k;
    out += '\x1f';
    out += v;
    out += '\x1e';
  }
  return out;
}

}  // namespace

template <typename M>
M* Registry::GetOrCreateLocked(std::deque<Entry<M>>& entries, MetricKind kind,
                               const std::string& name,
                               const std::string& help, Labels labels) {
  auto key = std::make_pair(name, SerializeLabels(labels));
  auto it = index_.find(key);
  if (it != index_.end()) {
    UNN_CHECK(it->second.first == kind);  // Same name+labels, one kind.
    return static_cast<M*>(it->second.second);
  }
  // emplace + assign: the metric types hold atomics, which are neither
  // copyable nor movable.
  entries.emplace_back();
  Entry<M>& e = entries.back();
  e.name = name;
  e.help = help;
  e.labels = std::move(labels);
  e.order = next_order_++;
  M* handle = &e.metric;
  index_.emplace(std::move(key), std::make_pair(kind, handle));
  return handle;
}

Counter* Registry::GetCounter(const std::string& name, const std::string& help,
                              Labels labels) {
  MutexLock lock(&mu_);
  return GetOrCreateLocked(counters_, MetricKind::kCounter, name, help,
                           std::move(labels));
}

Gauge* Registry::GetGauge(const std::string& name, const std::string& help,
                          Labels labels) {
  MutexLock lock(&mu_);
  return GetOrCreateLocked(gauges_, MetricKind::kGauge, name, help,
                           std::move(labels));
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const std::string& help, Labels labels) {
  MutexLock lock(&mu_);
  return GetOrCreateLocked(histograms_, MetricKind::kHistogram, name, help,
                           std::move(labels));
}

std::vector<MetricSnapshot> Registry::Snapshot() const {
  MutexLock lock(&mu_);
  std::vector<std::pair<int, MetricSnapshot>> ordered;
  ordered.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& e : counters_) {
    MetricSnapshot m;
    m.name = e.name;
    m.help = e.help;
    m.labels = e.labels;
    m.kind = MetricKind::kCounter;
    m.value = static_cast<double>(e.metric.Value());
    ordered.emplace_back(e.order, std::move(m));
  }
  for (const auto& e : gauges_) {
    MetricSnapshot m;
    m.name = e.name;
    m.help = e.help;
    m.labels = e.labels;
    m.kind = MetricKind::kGauge;
    m.value = e.metric.Value();
    ordered.emplace_back(e.order, std::move(m));
  }
  for (const auto& e : histograms_) {
    MetricSnapshot m;
    m.name = e.name;
    m.help = e.help;
    m.labels = e.labels;
    m.kind = MetricKind::kHistogram;
    m.buckets.resize(Histogram::kBuckets);
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      m.buckets[i] = e.metric.bucket_count(i);
    }
    m.summary = e.metric.Summarize();
    m.sum = m.summary.sum;
    m.max = m.summary.max;
    m.count = m.summary.count;
    ordered.emplace_back(e.order, std::move(m));
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<MetricSnapshot> out;
  out.reserve(ordered.size());
  for (auto& [order, m] : ordered) out.push_back(std::move(m));
  return out;
}

}  // namespace obs
}  // namespace unn
