#include "engine/engine.h"

#include <algorithm>
#include <cmath>

#include "baselines/brute_force.h"
#include "core/exact_pnn.h"
#include "engine/query_contract.h"
#include "obs/profile.h"
#include "util/check.h"

namespace unn {

namespace {

using query_contract::SortByEstimate;

/// The shared shape of every fixed-structure getter: build exactly once
/// under the flag, count the build (StructuresBuilt observability), return
/// the structure.
template <class T, class Make>
const T& BuildOnce(std::once_flag& once, std::unique_ptr<T>& slot,
                   std::atomic<int>& builds, Make make) {
  std::call_once(once, [&] {
    slot = make();
    // relaxed: observability counter; the structure itself is published
    // by call_once's synchronization, not by builds.
    builds.fetch_add(1, std::memory_order_relaxed);
  });
  return *slot;
}

}  // namespace

Engine::Engine(std::vector<core::UncertainPoint> points)
    : Engine(std::move(points), Config()) {}

Engine::Engine(std::vector<core::UncertainPoint> points, const Config& config)
    : points_(std::move(points)), config_(config) {
  UNN_CHECK(!points_.empty());
  UNN_CHECK(config_.eps > 0 && config_.eps < 1);
  UNN_CHECK(config_.delta > 0 && config_.delta < 1);
  UNN_CHECK(config_.tol > 0);
  for (const auto& p : points_) {
    all_discrete_ = all_discrete_ && !p.is_disk();
    all_disk_ = all_disk_ && p.is_disk();
  }
}

// ---------------------------------------------------------------------------
// Lazy structure cache. Fixed structures build exactly once under their
// once_flag (concurrent first queries block until the single build
// finishes); the accuracy-keyed estimators use a shared mutex with
// double-checked rebuilds and hand out shared_ptr snapshots so a rebuild
// never pulls a structure out from under a running query.
// ---------------------------------------------------------------------------

const core::ExpectedNn& Engine::GetExpectedNn() const {
  return BuildOnce(expected_nn_once_, expected_nn_, builds_, [this] {
    return std::make_unique<core::ExpectedNn>(points_);
  });
}

const core::SpiralSearch& Engine::GetSpiralSearch() const {
  UNN_DCHECK(all_discrete_);
  return BuildOnce(spiral_once_, spiral_, builds_, [this] {
    return std::make_unique<core::SpiralSearch>(points_);
  });
}

const core::NonzeroVoronoi& Engine::GetVoronoi() const {
  return BuildOnce(voronoi_once_, voronoi_, builds_, [this] {
    return std::make_unique<core::NonzeroVoronoi>(points_);
  });
}

const core::NonzeroVoronoiDiscrete& Engine::GetVoronoiDiscrete() const {
  return BuildOnce(voronoi_discrete_once_, voronoi_discrete_, builds_, [this] {
    return std::make_unique<core::NonzeroVoronoiDiscrete>(points_);
  });
}

const core::NnNonzeroIndex& Engine::GetNonzeroIndex() const {
  return BuildOnce(nonzero_index_once_, nonzero_index_, builds_, [this] {
    return std::make_unique<core::NnNonzeroIndex>(points_);
  });
}

const core::NnNonzeroDiscreteIndex& Engine::GetNonzeroDiscrete() const {
  return BuildOnce(nonzero_discrete_once_, nonzero_discrete_, builds_, [this] {
    return std::make_unique<core::NnNonzeroDiscreteIndex>(points_);
  });
}

std::shared_ptr<const core::ContinuousSpiralSearch> Engine::GetContinuousSpiral(
    double eps) const {
  // The cached structure is keyed by its discretization accuracy; a request
  // for a tighter accuracy rebuilds it.
  {
    ReaderMutexLock lock(&estimator_mu_);
    if (cont_spiral_ && cont_spiral_eps_ <= eps) return cont_spiral_;
  }
  WriterMutexLock lock(&estimator_mu_);
  if (!cont_spiral_ || cont_spiral_eps_ > eps) {
    cont_spiral_ = std::make_shared<const core::ContinuousSpiralSearch>(
        points_, eps, config_.seed);
    cont_spiral_eps_ = eps;
    // relaxed: observability counter (see BuildOnce).
    builds_.fetch_add(1, std::memory_order_relaxed);
  }
  return cont_spiral_;
}

std::shared_ptr<const core::MonteCarloPnn> Engine::GetMonteCarlo(
    double eps) const {
  {
    ReaderMutexLock lock(&estimator_mu_);
    if (monte_carlo_ && monte_carlo_eps_ <= eps) return monte_carlo_;
  }
  WriterMutexLock lock(&estimator_mu_);
  if (!monte_carlo_ || monte_carlo_eps_ > eps) {
    core::MonteCarloPnnOptions opts;
    opts.eps = eps;
    opts.delta = config_.delta;
    opts.seed = config_.seed;
    opts.s_override = config_.mc_samples_override;
    monte_carlo_ = std::make_shared<const core::MonteCarloPnn>(points_, opts);
    monte_carlo_eps_ = eps;
    // relaxed: observability counter (see BuildOnce).
    builds_.fetch_add(1, std::memory_order_relaxed);
  }
  return monte_carlo_;
}

const std::vector<core::SquareRegion>& Engine::DerivedSquares() const {
  std::call_once(squares_once_, [this] {
    squares_.reserve(points_.size());
    for (const auto& p : points_) {
      core::SquareRegion s;
      if (p.is_disk()) {
        s.center = p.center();
        s.half_side = p.radius();
      } else {
        geom::Box b = p.Bounds();
        s.center = b.Center();
        s.half_side = std::max(b.Width(), b.Height()) / 2;
      }
      squares_.push_back(s);
    }
  });
  return squares_;
}

const core::LinfNonzeroIndex& Engine::GetLinfIndex() const {
  return BuildOnce(linf_index_once_, linf_index_, builds_, [this] {
    return std::make_unique<core::LinfNonzeroIndex>(DerivedSquares());
  });
}

const core::QuantTree& Engine::GetQuantTree() const {
  // points_ is immutable for the Engine's lifetime, so handing the tree a
  // pointer is safe.
  return BuildOnce(quant_tree_once_, quant_tree_, builds_, [this] {
    return std::make_unique<core::QuantTree>(&points_);
  });
}

// ---------------------------------------------------------------------------
// Quantification probabilities (the shared substrate of MostProbableNn,
// Threshold and TopK)
// ---------------------------------------------------------------------------

Backend Engine::EffectiveProbBackend() const {
  switch (config_.backend) {
    case Backend::kBruteForce:
    case Backend::kSpiralSearch:
    case Backend::kMonteCarlo:
      return config_.backend;
    case Backend::kAuto:
      // The strongest estimator the model admits: Theorem 4.7 prefix
      // evaluation for purely discrete inputs, Monte Carlo otherwise
      // (it alone handles mixed models natively).
      return all_discrete_ ? Backend::kSpiralSearch : Backend::kMonteCarlo;
    default:
      // Index families without probability machinery answer through the
      // exact definition-level oracle.
      return Backend::kBruteForce;
  }
}

std::vector<std::pair<int, double>> Engine::ExactProbabilities(
    geom::Vec2 q) const {
  UNN_CHECK_MSG(all_discrete_ || all_disk_,
                "exact quantification requires a homogeneous model; use an "
                "estimator backend for mixed inputs");
  if (all_discrete_) return core::DiscreteQuantification(points_, q);
  return core::IntegrateAllQuantifications(points_, q, config_.tol);
}

std::vector<std::pair<int, double>> Engine::Probabilities(
    geom::Vec2 q, double eps_needed) const {
  double eps = eps_needed > 0 ? std::min(eps_needed, config_.eps)
                              : config_.eps;
  switch (EffectiveProbBackend()) {
    case Backend::kSpiralSearch:
      if (all_discrete_) return GetSpiralSearch().Query(q, eps);
      // Theorem 4.5 discretization + discrete spiral search; the error
      // budget is split evenly between the two stages.
      return GetContinuousSpiral(eps / 2)->Query(q, eps / 2);
    case Backend::kMonteCarlo:
      return GetMonteCarlo(eps)->Query(q);
    default:
      return ExactProbabilities(q);
  }
}

std::vector<std::vector<std::pair<int, double>>> Engine::ProbabilitiesMany(
    std::span<const geom::Vec2> queries, double eps_needed,
    spatial::BatchStats* stats) const {
  double eps = eps_needed > 0 ? std::min(eps_needed, config_.eps)
                              : config_.eps;
  switch (EffectiveProbBackend()) {
    case Backend::kSpiralSearch:
      if (all_discrete_) return GetSpiralSearch().QueryBatch(queries, eps, stats);
      return GetContinuousSpiral(eps / 2)->QueryBatch(queries, eps / 2, stats);
    case Backend::kMonteCarlo:
      return GetMonteCarlo(eps)->QueryBatch(queries, stats);
    default: {
      // The exact oracle has no traversal to share; the batch is the
      // scalar definition per query.
      std::vector<std::vector<std::pair<int, double>>> out(queries.size());
      for (size_t i = 0; i < queries.size(); ++i) {
        out[i] = ExactProbabilities(queries[i]);
      }
      return out;
    }
  }
}

namespace {

/// The argmax rule of MostProbableNn over one estimate list: largest
/// estimate, first-in-id-order (the list is id-sorted, so `>` keeps the
/// smaller id on ties) — shared by the scalar and batched arms.
int PickMostProbable(const std::vector<std::pair<int, double>>& est) {
  int best = -1;
  double best_pi = -1.0;
  for (auto [id, pi] : est) {
    if (pi > best_pi) {
      best = id;
      best_pi = pi;
    }
  }
  return best;
}

}  // namespace

int Engine::MostProbableNn(geom::Vec2 q) const {
  return PickMostProbable(Probabilities(q));
}

std::vector<std::pair<int, double>> Engine::Threshold(geom::Vec2 q,
                                                      double tau) const {
  UNN_CHECK(tau > 0 && tau <= 1);
  bool exact = EffectiveProbBackend() == Backend::kBruteForce;
  // [DYM+05] semantics with no false negatives: estimate at accuracy
  // tau/2 and report everyone whose estimate may still reach tau.
  double eps = exact ? 0.0 : std::min(config_.eps, tau / 2);
  auto est = Probabilities(q, tau / 2);
  std::vector<std::pair<int, double>> out;
  for (auto [id, pi] : est) {
    if (pi + eps >= tau) out.push_back({id, pi});
  }
  SortByEstimate(&out);
  return out;
}

std::vector<std::pair<int, double>> Engine::TopK(geom::Vec2 q, int k) const {
  UNN_CHECK(k >= 1);
  auto est = Probabilities(q);
  SortByEstimate(&est);
  if (static_cast<int>(est.size()) > k) est.resize(k);
  return est;
}

// ---------------------------------------------------------------------------
// Expected-distance NN
// ---------------------------------------------------------------------------

int Engine::ExpectedDistanceNn(geom::Vec2 q) const {
  const core::ExpectedNn& index = GetExpectedNn();
  if (config_.backend != Backend::kBruteForce) {
    return index.QueryExpected(q, config_.tol);
  }
  // Definition-level argmin of E[d(q, P_i)], pruned by the quantification
  // index's min-distance bounds (E[d] >= delta_i). The pruning never
  // skips a potential minimizer, so the answer matches the unpruned scan
  // up to the documented near-tie caveat: quadrature-approximated values
  // within Config::tol of each other may tie-break either way
  // (docs/QUERY_SEMANTICS.md says the same of the unpruned path).
  auto value = [&](int i) { return index.ExpectedDistance(i, q, config_.tol); };
  if (obs::TraversalProfilingEnabled()) {
    core::QuantTree::QueryStats st;
    int nn = GetQuantTree().ArgminPointwise(q, value, &st);
    obs::RecordTraversal(obs::TraversalOp::kQuantArgmin, st);
    return nn;
  }
  return GetQuantTree().ArgminPointwise(q, value);
}

// ---------------------------------------------------------------------------
// Per-point quantification hooks (cross-shard merging)
// ---------------------------------------------------------------------------

double Engine::ExpectedDistance(int i, geom::Vec2 q) const {
  UNN_CHECK(i >= 0 && i < size());
  return GetExpectedNn().ExpectedDistance(i, q, config_.tol);
}

core::DeltaEnvelope Engine::MaxDistEnvelope(geom::Vec2 q) const {
  if (obs::TraversalProfilingEnabled()) {
    core::QuantTree::QueryStats st;
    core::DeltaEnvelope env = GetQuantTree().MaxDistEnvelope(q, &st);
    obs::RecordTraversal(obs::TraversalOp::kQuantEnvelope, st);
    return env;
  }
  return GetQuantTree().MaxDistEnvelope(q);
}

void Engine::MaxDistEnvelopeMany(std::span<const geom::Vec2> queries,
                                 std::span<core::DeltaEnvelope> out,
                                 spatial::BatchStats* stats) const {
  GetQuantTree().MaxDistEnvelopeBatch(queries, out, stats);
}

double Engine::SurvivalProbability(geom::Vec2 q, double r) const {
  return std::exp(LogSurvivalProbability(q, r));
}

double Engine::LogSurvivalProbability(geom::Vec2 q, double r) const {
  if (obs::TraversalProfilingEnabled()) {
    core::QuantTree::QueryStats st;
    double v = GetQuantTree().LogSurvival(q, r, &st);
    obs::RecordTraversal(obs::TraversalOp::kQuantSurvival, st);
    return v;
  }
  return GetQuantTree().LogSurvival(q, r);
}

// ---------------------------------------------------------------------------
// NN!=0
// ---------------------------------------------------------------------------

Backend Engine::EffectiveNonzeroBackend() const {
  Backend b = config_.backend;
  if (b == Backend::kAuto) {
    b = (all_disk_ || all_discrete_) ? Backend::kNonzeroIndex
                                     : Backend::kBruteForce;
  }
  switch (b) {
    case Backend::kNonzeroVoronoi:
    case Backend::kNonzeroIndex:
      // Mixed model: no diagram/index — exact oracle.
      if (!all_disk_ && !all_discrete_) return Backend::kBruteForce;
      return b;
    case Backend::kLinfIndex:
      return b;
    default:
      return Backend::kBruteForce;
  }
}

std::vector<int> Engine::NonzeroNn(geom::Vec2 q) const {
  switch (EffectiveNonzeroBackend()) {
    case Backend::kNonzeroVoronoi:
      return all_disk_ ? GetVoronoi().Query(q) : GetVoronoiDiscrete().Query(q);
    case Backend::kNonzeroIndex:
      return all_disk_ ? GetNonzeroIndex().Query(q)
                       : GetNonzeroDiscrete().Query(q);
    case Backend::kLinfIndex:
      return GetLinfIndex().Query(q);
    default:
      return baselines::NonzeroNn(points_, q);
  }
}

// ---------------------------------------------------------------------------
// Warmup: build everything a query type needs before serving traffic
// ---------------------------------------------------------------------------

void Engine::Warmup(QueryType type) const { Warmup(QuerySpec{type, 0.5, 1}); }

void Engine::Warmup(const QuerySpec& spec) const {
  // Warming is answering one representative query through QueryMany: which
  // structures get built depends on the spec and config but never on the
  // query point, so one probe builds exactly what later queries of this
  // spec need — including the degenerate-parameter paths that build
  // nothing — and cannot drift from the real dispatch.
  geom::Vec2 probe{0, 0};
  QueryMany(std::span<const geom::Vec2>(&probe, 1), spec);
}

// ---------------------------------------------------------------------------
// Batched entry point
// ---------------------------------------------------------------------------

std::vector<Engine::QueryResult> Engine::QueryMany(
    std::span<const geom::Vec2> queries, const QuerySpec& spec) const {
  // Degenerate parameters (see header) get definition-level answers from
  // the shared contract; only the tau <= 0 case consults a backend.
  std::vector<QueryResult> results;
  if (query_contract::AnswerDegenerate(
          queries, spec, size(),
          [this](geom::Vec2 q) { return Probabilities(q); }, &results)) {
    return results;
  }
  // Config::batch_traversal gates one uniform dispatch: false is the
  // escape hatch to the scalar per-query loop; true routes every type
  // through its shared-traversal kernel (spatial/batch.h), bit-identical
  // to the scalar loop (docs/ARCHITECTURE.md "Batch traversal" has the
  // coverage matrix and per-kernel exactness argument). Backends a type
  // has no kernel for — the definition-level NN!=0 oracles, the Voronoi
  // and L_inf families, the all-disk nonzero index — keep the scalar
  // loop inside their case arm.
  if (!config_.batch_traversal) {
    for (size_t i = 0; i < queries.size(); ++i) {
      geom::Vec2 q = queries[i];
      QueryResult& r = results[i];
      switch (spec.type) {
        case QueryType::kMostProbableNn:
          r.nn = MostProbableNn(q);
          break;
        case QueryType::kExpectedDistanceNn:
          r.nn = ExpectedDistanceNn(q);
          break;
        case QueryType::kThreshold:
          r.ranked = Threshold(q, spec.tau);
          break;
        case QueryType::kTopK:
          r.ranked = TopK(q, spec.k);
          break;
        case QueryType::kNonzeroNn:
          r.ids = NonzeroNn(q);
          break;
      }
    }
    return results;
  }
  switch (spec.type) {
    case QueryType::kMostProbableNn: {
      auto est = ProbabilitiesMany(queries);
      for (size_t i = 0; i < queries.size(); ++i) {
        results[i].nn = PickMostProbable(est[i]);
      }
      break;
    }
    case QueryType::kExpectedDistanceNn: {
      std::vector<int> ids(queries.size());
      if (config_.backend != Backend::kBruteForce) {
        GetExpectedNn().QueryExpectedBatch(queries, config_.tol, ids);
      } else {
        // The pruned definition-level scan, batched: same value function
        // and same QuantTree bounds as the scalar path; the quadrature
        // tolerance is the value slack the kernel's guard band covers.
        const core::ExpectedNn& index = GetExpectedNn();
        GetQuantTree().ArgminPointwiseBatch(
            queries,
            [&](int id, int qi) {
              return index.ExpectedDistance(id, queries[qi], config_.tol);
            },
            /*slack=*/config_.tol, ids);
      }
      for (size_t i = 0; i < queries.size(); ++i) results[i].nn = ids[i];
      break;
    }
    case QueryType::kThreshold: {
      bool exact = EffectiveProbBackend() == Backend::kBruteForce;
      double eps = exact ? 0.0 : std::min(config_.eps, spec.tau / 2);
      auto est = ProbabilitiesMany(queries, spec.tau / 2);
      for (size_t i = 0; i < queries.size(); ++i) {
        for (auto [id, pi] : est[i]) {
          if (pi + eps >= spec.tau) results[i].ranked.push_back({id, pi});
        }
        SortByEstimate(&results[i].ranked);
      }
      break;
    }
    case QueryType::kTopK: {
      auto est = ProbabilitiesMany(queries);
      for (size_t i = 0; i < queries.size(); ++i) {
        SortByEstimate(&est[i]);
        if (static_cast<int>(est[i].size()) > spec.k) est[i].resize(spec.k);
        results[i].ranked = std::move(est[i]);
      }
      break;
    }
    case QueryType::kNonzeroNn: {
      if (EffectiveNonzeroBackend() == Backend::kNonzeroIndex && !all_disk_) {
        auto ids = GetNonzeroDiscrete().QueryBatch(queries);
        for (size_t i = 0; i < queries.size(); ++i) {
          results[i].ids = std::move(ids[i]);
        }
      } else {
        for (size_t i = 0; i < queries.size(); ++i) {
          results[i].ids = NonzeroNn(queries[i]);
        }
      }
      break;
    }
  }
  return results;
}

}  // namespace unn
