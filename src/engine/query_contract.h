#ifndef UNN_ENGINE_QUERY_CONTRACT_H_
#define UNN_ENGINE_QUERY_CONTRACT_H_

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "geom/vec2.h"

/// \file query_contract.h
/// The batched-query contract shared by every QueryMany implementation
/// (Engine, ShardedEngine): one definition of the presentation order for
/// ranking queries, one classification of degenerate spec parameters, and
/// one definition of the degenerate-parameter answers, so the sharded
/// path, the unsharded path, the serving layer's result-cache keying and
/// its admission control cannot drift. See docs/QUERY_SEMANTICS.md for
/// the contract in prose.

namespace unn {
namespace query_contract {

/// What a QuerySpec's parameters mean for dispatch. Exactly one
/// definition of "degenerate" exists in the library; Engine::QueryMany,
/// ShardedEngine::QueryMany, the serving result cache (degenerate specs
/// are never cached) and QueryServer admission control (definition-level
/// answers are never shed or degraded) all consult it.
enum class SpecClass {
  /// Regular parameters: dispatch to a backend.
  kRegular,
  /// The answer is empty by definition, touching no backend: `kTopK` with
  /// `k <= 0`, `kThreshold` with `tau > 1` or NaN tau (no pi exceeds 1),
  /// or a QueryType value outside the defined set.
  kTrivialEmpty,
  /// `kThreshold` with `tau <= 0`: every id qualifies (every pi_i >= 0),
  /// answered from one Probabilities pass per query.
  kTrivialAll,
};

inline SpecClass Classify(const Engine::QuerySpec& spec) {
  switch (spec.type) {
    case Engine::QueryType::kMostProbableNn:
    case Engine::QueryType::kExpectedDistanceNn:
    case Engine::QueryType::kNonzeroNn:
      return SpecClass::kRegular;
    case Engine::QueryType::kTopK:
      return spec.k <= 0 ? SpecClass::kTrivialEmpty : SpecClass::kRegular;
    case Engine::QueryType::kThreshold:
      // `!(tau <= 1)` rather than `tau > 1` so a NaN tau lands in the
      // empty class instead of falling through to Threshold's CHECK.
      if (!(spec.tau <= 1)) return SpecClass::kTrivialEmpty;
      if (spec.tau <= 0) return SpecClass::kTrivialAll;
      return SpecClass::kRegular;
  }
  // A QueryType cast from an out-of-range integer: defined empty answer
  // instead of undefined dispatch.
  return SpecClass::kTrivialEmpty;
}

/// Presentation order of every ranking query: by decreasing estimate,
/// ties toward the smaller id.
inline void SortByEstimate(std::vector<std::pair<int, double>>* v) {
  std::sort(v->begin(), v->end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
}

/// Answers the degenerate-parameter cases of QueryMany definition-level,
/// per Classify above: empty span and `kTrivialEmpty` specs are answered
/// with default results touching no backend; `kTrivialAll` reports every
/// id of the `n`-point dataset with its estimate (`probabilities(q)`
/// supplies the positive (id, estimate) pairs). Returns true when the
/// whole batch was answered into `results`; false when the spec is
/// kRegular and `results` holds default-initialized slots for the caller
/// to fill.
template <class ProbFn>
bool AnswerDegenerate(std::span<const geom::Vec2> queries,
                      const Engine::QuerySpec& spec, int n,
                      const ProbFn& probabilities,
                      std::vector<Engine::QueryResult>* results) {
  results->assign(queries.size(), Engine::QueryResult{});
  if (queries.empty()) return true;
  SpecClass cls = Classify(spec);
  if (cls == SpecClass::kTrivialEmpty) return true;
  if (cls == SpecClass::kTrivialAll) {
    // Every pi_i(q) >= 0 >= tau: report all ids with their estimates. The
    // id skeleton is built once for the whole batch; each query copies it
    // (ids and zero estimates in one memcpy-able stroke) instead of
    // re-deriving the O(n) id list, and then overwrites estimates in
    // place — the per-query content and ordering are bit-identical to
    // building the list from scratch.
    std::vector<std::pair<int, double>> skeleton(n);
    for (int id = 0; id < n; ++id) skeleton[id] = {id, 0.0};
    for (size_t i = 0; i < queries.size(); ++i) {
      std::vector<std::pair<int, double>> full = skeleton;
      for (auto [id, pi] : probabilities(queries[i])) full[id].second = pi;
      SortByEstimate(&full);
      (*results)[i].ranked = std::move(full);
    }
    return true;
  }
  return false;
}

}  // namespace query_contract
}  // namespace unn

#endif  // UNN_ENGINE_QUERY_CONTRACT_H_
