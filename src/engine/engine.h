#ifndef UNN_ENGINE_ENGINE_H_
#define UNN_ENGINE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>  // std::once_flag; locks come from util/thread_annotations.h
#include <span>
#include <utility>
#include <vector>

#include "core/expected_nn.h"
#include "core/linf_nonzero_index.h"
#include "core/monte_carlo_pnn.h"
#include "core/nn_nonzero_discrete_index.h"
#include "core/nn_nonzero_index.h"
#include "core/nonzero_voronoi.h"
#include "core/nonzero_voronoi_discrete.h"
#include "core/quant_tree.h"
#include "core/spiral_search.h"
#include "core/uncertain_point.h"
#include "geom/vec2.h"
#include "spatial/batch.h"
#include "util/thread_annotations.h"

/// \file engine.h
/// The unified query facade over every index family in the library. An
/// Engine owns one uncertain point set and answers all the query types of
/// the paper (and its companions) behind a single API:
///
///   * MostProbableNn   — argmax_i pi_i(q) (quantification probabilities,
///                        Section 4);
///   * ExpectedDistanceNn — argmin_i E[d(q, P_i)] ([AESZ12] Section 1.2);
///   * Threshold        — all i whose pi_i(q) may reach tau ([DYM+05]);
///   * TopK             — the k most probable NNs ([BSI08]);
///   * NonzeroNn        — NN!=0(q), the support of the quantification
///                        distribution (Sections 2/3).
///
/// `Engine::Config` selects a backend (index family) and an accuracy; the
/// default `Backend::kAuto` picks the strongest structure the input model
/// admits per query. Structures are built lazily on first use and cached,
/// so an Engine that only ever answers NonzeroNn never pays for
/// Monte-Carlo preprocessing.
///
/// Thread safety: every `const` query method may be called from any number
/// of threads concurrently. The lazy structure cache is synchronized
/// (`std::call_once` for the fixed structures, a shared-mutex-guarded
/// snapshot for the accuracy-keyed estimators), so concurrent first
/// queries build each structure exactly once. `Warmup` builds the
/// structures a query type needs eagerly, which serving layers call before
/// fanning a batch across workers so no query pays the build; see
/// `src/serve/` for the thread pool, batch-parallel QueryMany, data
/// sharding (ShardedEngine merges per-shard answers via the hooks below),
/// and QueryServer built on top of this guarantee.

namespace unn {

/// Which index family serves the queries. Families that do not natively
/// implement a requested query type fall back as documented on each query
/// method; the fallback is always exact (the definition-level oracle).
enum class Backend {
  kAuto,           ///< Strongest structure for the input model (default).
  kBruteForce,     ///< Definition-level O(n)-per-query oracle; exact.
  kExpectedNn,     ///< core::ExpectedNn branch-and-bound tree.
  kSpiralSearch,   ///< Theorem 4.7 prefix evaluation (+ Theorem 4.5
                   ///< discretization for continuous/mixed inputs).
  kMonteCarlo,     ///< Theorem 4.3/4.5 instantiation sampling.
  kNonzeroVoronoi, ///< V!=0 diagram + point location (Theorems 2.5/2.14).
  kNonzeroIndex,   ///< Two-stage near-linear index (Theorems 3.1/3.2).
  kLinfIndex,      ///< L_inf variant of Theorem 3.1 (Remark ii); queries
                   ///< use the Chebyshev metric over derived squares.
};

class Engine {
 public:
  struct Config {
    Backend backend = Backend::kAuto;
    /// Accuracy of probabilistic estimates (spiral search / Monte Carlo):
    /// every reported hat-pi is within eps of the true pi.
    double eps = 0.05;
    /// Monte-Carlo failure probability (Theorem 4.3).
    double delta = 0.05;
    /// Quadrature tolerance for exact disk-model integrals.
    double tol = 1e-8;
    /// Seed for every randomized structure.
    uint64_t seed = 0xC0FFEE;
    /// Overrides the Theorem 4.3 Monte-Carlo sample count when > 0.
    int mc_samples_override = 0;
    /// QueryMany serves batchable query types through the shared-traversal
    /// kernels of spatial/batch.h (bit-identical to the scalar path —
    /// docs/ARCHITECTURE.md "Batch traversal"). The flag is the escape
    /// hatch: false forces the scalar per-query loop.
    bool batch_traversal = true;
  };

  /// The query types QueryMany can batch.
  enum class QueryType {
    kMostProbableNn,
    kExpectedDistanceNn,
    kThreshold,
    kTopK,
    kNonzeroNn,
  };

  /// One batched request: the type plus its parameter (tau for threshold,
  /// k for top-k; the others take none).
  struct QuerySpec {
    QueryType type = QueryType::kMostProbableNn;
    double tau = 0.5;
    int k = 1;
  };

  /// Result of one batched query. Which field is populated depends on the
  /// QueryType: `nn` for the two NN types, `ranked` for threshold/top-k,
  /// `ids` for NonzeroNn.
  struct QueryResult {
    int nn = -1;
    std::vector<std::pair<int, double>> ranked;
    std::vector<int> ids;
  };

  explicit Engine(std::vector<core::UncertainPoint> points);
  Engine(std::vector<core::UncertainPoint> points, const Config& config);

  /// argmax_i pi_i(q), ties broken toward the smaller id. Exact for
  /// kBruteForce on homogeneous inputs; within Config::eps for the
  /// estimator backends. Backends without probability machinery
  /// (kNonzeroVoronoi, kNonzeroIndex, kLinfIndex, kExpectedNn) fall back
  /// to the exact oracle. Thread-safe; cost is one quantification query
  /// of the effective backend (near-linear worst case for the
  /// estimators, O(N log N) for the oracle).
  int MostProbableNn(geom::Vec2 q) const;

  /// argmin_i E[d(q, P_i)]. Served by core::ExpectedNn for every backend
  /// except kBruteForce, which scans the definition. Thread-safe;
  /// O(log n) expected via branch-and-bound, O(n) for the scan.
  int ExpectedDistanceNn(geom::Vec2 q) const;

  /// All i whose true pi_i(q) may reach tau, (id, estimate) sorted by
  /// decreasing estimate: no false negatives (estimator accuracy is
  /// raised to tau/2 when Config::eps is looser). Fallback as in
  /// MostProbableNn. Thread-safe; one quantification query plus an
  /// O(k log k) sort of the k reported pairs.
  std::vector<std::pair<int, double>> Threshold(geom::Vec2 q,
                                                double tau) const;

  /// The k ids with the largest pi_i(q), (id, estimate) sorted by
  /// decreasing estimate; near-ties within 2 eps may permute. Fallback as
  /// in MostProbableNn. Thread-safe; one quantification query plus a
  /// sort of the positive-probability candidates.
  std::vector<std::pair<int, double>> TopK(geom::Vec2 q, int k) const;

  /// NN!=0(q), sorted ids; exact. kLinfIndex answers under the Chebyshev
  /// metric over DerivedSquares(); estimator backends (kSpiralSearch,
  /// kMonteCarlo, kExpectedNn) fall back to the exact oracle.
  /// Thread-safe; polylogarithmic + output-sensitive for the index
  /// families, O(n) for the oracle.
  std::vector<int> NonzeroNn(geom::Vec2 q) const;

  /// Batched entry point: answers `spec` for every query point;
  /// `results[i]` always answers `queries[i]`. Degenerate parameters get
  /// definition-level answers instead of tripping backend preconditions:
  /// an empty span returns an empty vector without building any structure,
  /// `kTopK` with `k <= 0` returns empty rankings (likewise build-free),
  /// `kThreshold` with `tau > 1` or NaN returns empty rankings (no pi
  /// exceeds 1),
  /// and `kThreshold` with `tau <= 0` returns every id with its estimate
  /// (every pi reaches a non-positive threshold). `serve::QueryMany`
  /// splits this loop across a thread pool. Thread-safe; cost is one
  /// single-query dispatch per element.
  std::vector<QueryResult> QueryMany(std::span<const geom::Vec2> queries,
                                     const QuerySpec& spec) const;

  /// Eagerly builds every structure the given query type needs at the
  /// config accuracy, so later queries of that type never build (and a
  /// serving layer can fan them across threads without any worker paying
  /// the preprocessing). Idempotent and itself thread-safe: concurrent
  /// warmups build each structure once. The QuerySpec overload accounts
  /// for the threshold parameter (`tau < 2 * Config::eps` needs a tighter
  /// estimator than the plain-QueryType default of tau = 0.5).
  void Warmup(QueryType type) const;
  void Warmup(const QuerySpec& spec) const;

  /// Number of heavy structures built so far — observability for tests
  /// and serving metrics (a warmed engine must not build under query
  /// traffic).
  int StructuresBuilt() const {
    // relaxed: observability counter; build publication itself happens
    // through call_once / estimator_mu_, never through builds_.
    return builds_.load(std::memory_order_relaxed);
  }

  /// Quantification estimates (id, hat-pi) with positive estimate, sorted
  /// by id, at accuracy `eps_needed` (<= 0 means Config::eps). Exposed so
  /// callers can post-process distributions themselves — the sharded
  /// serving layer treats this as the per-shard candidate generator.
  /// Thread-safe; cost is one backend quantification query.
  std::vector<std::pair<int, double>> Probabilities(
      geom::Vec2 q, double eps_needed = 0.0) const;

  /// Batched Probabilities: `out[i]` is bit-identical to
  /// `Probabilities(queries[i], eps_needed)`. The effective estimator
  /// answers the whole batch through its shared-traversal kernel
  /// (spiral prefix retrieval via KNearestBatch, Monte-Carlo
  /// instantiation NNs via NearestBatch, or the discretized spiral);
  /// the exact-oracle fallback loops the scalar query. This is the
  /// substrate QueryMany's batched MostProbableNn/Threshold/TopK arms
  /// and the sharded pack fan-out share. Thread-safe.
  std::vector<std::vector<std::pair<int, double>>> ProbabilitiesMany(
      std::span<const geom::Vec2> queries, double eps_needed = 0.0,
      spatial::BatchStats* stats = nullptr) const;

  // --- Per-point quantification hooks for cross-shard merging ----------
  // A sharded deployment partitions one logical point set across several
  // Engines and recombines per-shard answers (src/serve/sharding.h). The
  // three hooks below are the per-point quantities that make that
  // recombination exact under independent points; they are also useful on
  // their own. All three are thread-safe const queries.

  /// E[d(q, P_i)] at Config::tol — the per-point quantity the sharded
  /// layer min-merges: each shard reports its local argmin with this
  /// value, and the global expected-distance NN is the min over shards.
  /// Closed form for discrete points, adaptive quadrature for disks.
  /// Builds the ExpectedNn structure on first use (once, synchronized).
  double ExpectedDistance(int i, geom::Vec2 q) const;

  /// The two smallest Delta_j(q) = max-distance values over this engine's
  /// points, plus the argmin (Lemma 2.1's pruning envelope). Per-shard
  /// envelopes merge into the global envelope by taking the two smallest
  /// values overall, which is what lets a merger filter the union of
  /// per-shard NN!=0 answers down to the exact global NN!=0 set.
  /// Answered by the quantification index (core::QuantTree, built once on
  /// first use, synchronized, StructuresBuilt-visible) in O(log n) on
  /// bounded-density inputs, bit-identical to the linear
  /// core::TwoSmallestMaxDist scan including tie-breaking.
  core::DeltaEnvelope MaxDistEnvelope(geom::Vec2 q) const;

  /// Batched MaxDistEnvelope: `out[i]` is bit-identical to
  /// `MaxDistEnvelope(queries[i])`, geom::kLaneWidth queries per shared
  /// best-first walk (core::QuantTree::MaxDistEnvelopeBatch; the
  /// envelope is traversal-order-independent, so no scalar replay
  /// exists on this path). The sharded layer calls this once per shard
  /// per pack when recombining batched answers. Thread-safe.
  void MaxDistEnvelopeMany(std::span<const geom::Vec2> queries,
                           std::span<core::DeltaEnvelope> out,
                           spatial::BatchStats* stats = nullptr) const;

  /// Pr[every point of this engine is farther than r from q]
  ///   = prod_i (1 - G_{q,i}(r)),
  /// the shard survival probability of the paper-II factorization: for
  /// independent points the survival of a union of shards is the product
  /// of the per-shard survivals, which is why candidate-union
  /// re-quantification recombines probabilistic answers without error.
  /// The in-process merge computes these products implicitly (it
  /// re-accumulates/re-integrates over the candidate union); this hook
  /// is the explicit form — used by the factorization tests and the
  /// surface an out-of-process merger would consume. Equal to
  /// exp(LogSurvivalProbability(q, r)); prefer the log form when
  /// multiplying across shards — the product of n factors below 1
  /// underflows to 0 near n ~ 10^5 while the log sum stays exact.
  /// Answered by the quantification index: only points whose support
  /// intersects ball(q, r) are evaluated (a disjoint support contributes
  /// factor 1), O(log n + k) for k intersecting supports.
  double SurvivalProbability(geom::Vec2 q, double r) const;

  /// log Pr[every point farther than r] = sum_i log1p(-G_{q,i}(r)),
  /// accumulated in log space (never underflows; -infinity when some
  /// point is certainly within r). Per-shard survival products become
  /// sums of this quantity, which is how sharded probability merges stay
  /// exact at any n. Same index-backed cost as SurvivalProbability.
  double LogSurvivalProbability(geom::Vec2 q, double r) const;

  /// The axis-aligned squares the kLinfIndex backend indexes: an L_inf
  /// ball per point (disk -> same center/radius; discrete -> bounding-box
  /// center with half the larger side). Thread-safe; built once (O(N))
  /// under a once_flag, O(1) afterwards.
  const std::vector<core::SquareRegion>& DerivedSquares() const;

  /// The owned point set, in id order. Immutable after construction, so
  /// reading it is thread-safe and O(1).
  const std::vector<core::UncertainPoint>& points() const { return points_; }
  /// The construction-time configuration. Immutable; O(1).
  const Config& config() const { return config_; }
  /// Number of uncertain points. O(1).
  int size() const { return static_cast<int>(points_.size()); }
  /// True when every point is a discrete distribution. O(1).
  bool all_discrete() const { return all_discrete_; }
  /// True when every point is a disk (continuous) model. O(1).
  bool all_disk() const { return all_disk_; }

 private:
  Backend EffectiveProbBackend() const;
  Backend EffectiveNonzeroBackend() const;
  std::vector<std::pair<int, double>> ExactProbabilities(geom::Vec2 q) const;

  const core::ExpectedNn& GetExpectedNn() const;
  const core::SpiralSearch& GetSpiralSearch() const;
  const core::NonzeroVoronoi& GetVoronoi() const;
  const core::NonzeroVoronoiDiscrete& GetVoronoiDiscrete() const;
  const core::NnNonzeroIndex& GetNonzeroIndex() const;
  const core::NnNonzeroDiscreteIndex& GetNonzeroDiscrete() const;
  const core::LinfNonzeroIndex& GetLinfIndex() const;
  const core::QuantTree& GetQuantTree() const;
  /// The accuracy-keyed estimators return an owning snapshot: a request
  /// for a tighter accuracy replaces the cached structure, and the
  /// returned shared_ptr keeps the one a concurrent query is using alive
  /// until that query finishes.
  std::shared_ptr<const core::ContinuousSpiralSearch> GetContinuousSpiral(
      double eps) const;
  std::shared_ptr<const core::MonteCarloPnn> GetMonteCarlo(double eps) const;

  std::vector<core::UncertainPoint> points_;
  Config config_;
  bool all_discrete_ = true;
  bool all_disk_ = true;

  // Lazily built structures. Fixed structures are built exactly once
  // under their once_flag; the accuracy-keyed estimators live behind
  // estimator_mu_ (shared-locked reads, unique-locked rebuilds). The
  // once_flag slots are deliberately NOT capability-annotated:
  // std::call_once is outside clang's capability model, and its
  // build-exactly-once publication guarantee is what synchronizes them
  // (each slot is written once inside the call_once callback and only
  // read after the corresponding call_once returns).
  mutable std::once_flag expected_nn_once_;
  mutable std::unique_ptr<core::ExpectedNn> expected_nn_;
  mutable std::once_flag spiral_once_;
  mutable std::unique_ptr<core::SpiralSearch> spiral_;
  mutable std::once_flag voronoi_once_;
  mutable std::unique_ptr<core::NonzeroVoronoi> voronoi_;
  mutable std::once_flag voronoi_discrete_once_;
  mutable std::unique_ptr<core::NonzeroVoronoiDiscrete> voronoi_discrete_;
  mutable std::once_flag nonzero_index_once_;
  mutable std::unique_ptr<core::NnNonzeroIndex> nonzero_index_;
  mutable std::once_flag nonzero_discrete_once_;
  mutable std::unique_ptr<core::NnNonzeroDiscreteIndex> nonzero_discrete_;
  mutable std::once_flag linf_index_once_;
  mutable std::unique_ptr<core::LinfNonzeroIndex> linf_index_;
  mutable std::once_flag quant_tree_once_;
  mutable std::unique_ptr<core::QuantTree> quant_tree_;
  mutable std::once_flag squares_once_;
  mutable std::vector<core::SquareRegion> squares_;

  mutable SharedMutex estimator_mu_;
  mutable std::shared_ptr<const core::ContinuousSpiralSearch> cont_spiral_
      UNN_GUARDED_BY(estimator_mu_);
  mutable double cont_spiral_eps_ UNN_GUARDED_BY(estimator_mu_) = 0.0;
  mutable std::shared_ptr<const core::MonteCarloPnn> monte_carlo_
      UNN_GUARDED_BY(estimator_mu_);
  mutable double monte_carlo_eps_ UNN_GUARDED_BY(estimator_mu_) = 0.0;

  mutable std::atomic<int> builds_{0};
};

}  // namespace unn

#endif  // UNN_ENGINE_ENGINE_H_
