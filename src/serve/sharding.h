#ifndef UNN_SERVE_SHARDING_H_
#define UNN_SERVE_SHARDING_H_

#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/uncertain_point.h"
#include "engine/engine.h"
#include "obs/trace.h"
#include "serve/shard_merge.h"
#include "serve/thread_pool.h"

/// \file sharding.h
/// Data partitioning for the serving layer: a ShardedEngine splits one
/// uncertain point set across K independent Engines (shards), answers
/// every Engine query type by fanning the query out to all shards (in
/// parallel when given a pool) and recombining the per-shard answers with
/// the merge semantics of shard_merge.h. This is the first cross-structure
/// answer-recombination seam — the same decomposition a multi-node
/// deployment would use, exercised here inside one process.
///
/// Ids are GLOBAL throughout the public API: a ShardedEngine over
/// `points` answers with the same ids as an Engine over `points`.
///
/// Exactness (details in docs/QUERY_SEMANTICS.md): NonzeroNn and
/// ExpectedDistanceNn merges are always exact. The probability queries
/// (MostProbableNn / Threshold / TopK) are exact whenever the shard
/// backend reports complete candidate sets (kBruteForce and the index
/// families that fall back to it) and the candidate union is
/// model-homogeneous; with estimator shard backends the union may omit
/// points of probability below Config::eps (candidate-merge
/// approximation), and mixed-model unions are re-quantified by Monte
/// Carlo within eps.
///
/// Thread safety: a ShardedEngine is immutable after construction and
/// every const query method may be called from any number of threads
/// concurrently (the shards are thread-safe Engines and the merge layer
/// is stateless). Passing the same ThreadPool to concurrent calls is
/// also safe. Warmup warms every shard so serving traffic builds
/// nothing.

namespace unn {
namespace serve {

/// How points are assigned to shards.
enum class Partitioning {
  /// Point i goes to shard i mod K: balanced sizes, no locality — every
  /// shard sees a thinned copy of the whole distribution, so per-shard
  /// candidate sets stay small everywhere.
  kRoundRobin,
  /// Kd-style splits: recursively split the points by the median of
  /// their region centers along the wider axis, in proportion to the
  /// shard counts of each side. Spatially local shards — distant shards
  /// prune to near-empty candidate sets for most queries.
  kSpatial,
  /// Not a strategy PartitionPoints accepts: reported by
  /// ShardedEngine::options() for shard sets assembled from prebuilt
  /// engines, where the partitioner is the caller's and unknown here.
  kExternal,
};

struct ShardingOptions {
  /// Requested shard count; clamped to [1, n]. Shards are never empty —
  /// requesting more shards than points yields n singleton shards.
  int num_shards = 1;
  Partitioning partitioning = Partitioning::kRoundRobin;
  /// Off by default. When true, shard s is assigned to NUMA node
  /// s % num_nodes (util::DetectNumaTopology), the building thread pins
  /// itself to that node's CPUs for the duration of shard s's Engine
  /// build so first-touch allocation lands on the node, and shard_node /
  /// shard_cpus report the assignment so callers can co-locate each
  /// shard's workers (ThreadPool::Options::pin_cpus) next to its data.
  /// On a single-node machine (or without topology information) this is
  /// a complete no-op: nothing is pinned, shard_cpus is empty, and every
  /// answer is bit-identical either way — placement only moves memory,
  /// never arithmetic.
  bool numa_aware = false;
};

/// Assigns every point index in [0, points.size()) to exactly one shard;
/// returns per-shard sorted global-id lists, empty lists dropped. Pure
/// function, deterministic for fixed input. O(n) for round-robin,
/// O(n log n) for spatial.
std::vector<std::vector<int>> PartitionPoints(
    const std::vector<core::UncertainPoint>& points,
    const ShardingOptions& options);

class ShardedEngine {
 public:
  /// Partitions `points` per `options` and builds one Engine per shard,
  /// every shard with the same `config`. When `build_pool` is given the
  /// shard builds run on the pool in parallel (plus the calling thread).
  ShardedEngine(std::vector<core::UncertainPoint> points,
                const Engine::Config& config, const ShardingOptions& options,
                ThreadPool* build_pool = nullptr);

  /// Assembles a shard set from prebuilt engines: `shard_global_ids[s][j]`
  /// is the global id of shard s's local point j. The id lists must
  /// partition [0, total); engines must be non-null and non-empty. Used
  /// to wrap caller-built engines and by benchmarks that time shard
  /// builds individually.
  ShardedEngine(std::vector<std::shared_ptr<const Engine>> shard_engines,
                std::vector<std::vector<int>> shard_global_ids);

  /// Wraps one prebuilt engine as a single-shard set (ids are identity).
  /// Queries delegate directly to the engine — zero merge overhead.
  explicit ShardedEngine(std::shared_ptr<const Engine> engine);

  // Not copyable/movable: the internal shard views point into this
  // object. Share a ShardedEngine via shared_ptr (as QueryServer does).
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  // --- Query surface (mirrors Engine, global ids) ----------------------
  // Every method fans out to all shards — in parallel across the given
  // pool's workers plus the calling thread when `pool` is non-null,
  // serially otherwise — then merges. All are const and thread-safe.
  //
  // The trailing `trace` node opts one call into request tracing: when
  // its context is non-null the fan-out records "shard_fanout" /
  // "shard_query" (tagged with the shard index) / "merge" spans under it.
  // The default (null) node costs one pointer test per span site.

  /// argmax_i pi_i(q) over the whole dataset via candidate-union
  /// re-quantification; ties toward the smaller global id.
  int MostProbableNn(geom::Vec2 q, ThreadPool* pool = nullptr,
                     obs::TraceNode trace = {}) const;

  /// argmin_i E[d(q, P_i)] via min-merge of the per-shard winners; exact
  /// up to quadrature tolerance.
  int ExpectedDistanceNn(geom::Vec2 q, ThreadPool* pool = nullptr,
                         obs::TraceNode trace = {}) const;

  /// All i whose pi_i(q) may reach tau, (id, estimate) sorted by
  /// decreasing estimate. No false negatives: a point with global
  /// probability >= tau has local probability >= tau on its shard (fewer
  /// competitors can only increase pi), so it survives candidate
  /// generation at accuracy tau/2 and the re-quantified estimate keeps it.
  std::vector<std::pair<int, double>> Threshold(
      geom::Vec2 q, double tau, ThreadPool* pool = nullptr,
      obs::TraceNode trace = {}) const;

  /// The k ids with the largest merged pi_i(q), sorted by decreasing
  /// estimate; near-ties within the backend accuracy may permute.
  std::vector<std::pair<int, double>> TopK(geom::Vec2 q, int k,
                                           ThreadPool* pool = nullptr,
                                           obs::TraceNode trace = {}) const;

  /// NN!=0(q), sorted global ids; exact for every shard backend (union
  /// filtered by the merged Delta envelope).
  std::vector<int> NonzeroNn(geom::Vec2 q, ThreadPool* pool = nullptr,
                             obs::TraceNode trace = {}) const;

  /// Merged quantification estimates (global id, pi) with positive
  /// estimate, sorted by id, at accuracy `eps_needed` (<= 0 means
  /// Config::eps).
  std::vector<std::pair<int, double>> Probabilities(
      geom::Vec2 q, double eps_needed = 0.0, ThreadPool* pool = nullptr,
      obs::TraceNode trace = {}) const;

  /// Batched entry point with Engine::QueryMany's degenerate-parameter
  /// contract (empty span / k <= 0 / tau outside (0, 1] answered
  /// definition-level without touching any shard backend). With
  /// Config::batch_traversal on, every query type fans the whole pack
  /// to each shard once — one shard visit per shard per batch, each
  /// running the shard Engine's batched kernels — and merges per query,
  /// bit-identical to the per-query fan-out; with it off, the queries
  /// run serially and each query's shard fan-out uses `pool` when
  /// given. `serve::QueryMany` additionally spreads the pack itself
  /// across a pool, which is the better fit for large batches.
  std::vector<Engine::QueryResult> QueryMany(
      std::span<const geom::Vec2> queries, const Engine::QuerySpec& spec,
      ThreadPool* pool = nullptr, obs::TraceNode trace = {}) const;

  /// Warms every shard for the given query type / spec (in parallel on
  /// `pool` when given) so no serving query pays a structure build —
  /// including the per-shard quantification index behind the merge hooks
  /// (MaxDistEnvelope / SurvivalProbability) when the merge for `spec`
  /// consults them. Idempotent and thread-safe, like Engine::Warmup.
  void Warmup(Engine::QueryType type, ThreadPool* pool = nullptr) const;
  void Warmup(const Engine::QuerySpec& spec, ThreadPool* pool = nullptr) const;

  // --- Introspection (all O(1) unless noted, immutable, thread-safe) ---

  /// Total points across all shards.
  int size() const { return size_; }
  /// Actual shard count (= min(requested, n); empty shards are dropped).
  int num_shards() const { return static_cast<int>(engines_.size()); }
  /// Shard s's engine (local ids). O(1).
  const Engine& shard(int s) const { return *engines_[s]; }
  /// Shard s's engine as an owning pointer (shareable snapshot). O(1).
  std::shared_ptr<const Engine> shard_ptr(int s) const { return engines_[s]; }
  /// Shard s's local-to-global id map: global_ids(s)[j] is the dataset id
  /// of shard s's local point j. O(1).
  const std::vector<int>& global_ids(int s) const { return global_ids_[s]; }
  /// The per-shard Engine config (identical across shards). O(1).
  const Engine::Config& config() const { return config_; }
  /// The partitioning this shard set was built with.
  const ShardingOptions& options() const { return options_; }
  /// NUMA node shard s was placed on; 0 when placement is inactive
  /// (numa_aware off, assembled shard sets, or a single-node machine).
  /// O(1).
  int shard_node(int s) const {
    return shard_nodes_.empty() ? 0 : shard_nodes_[s];
  }
  /// CPUs of shard s's node, for co-locating its workers
  /// (ThreadPool::Options::pin_cpus); empty when placement is inactive.
  /// O(1).
  const std::vector<int>& shard_cpus(int s) const {
    static const std::vector<int> kNone;
    return shard_cpus_.empty() ? kNone : shard_cpus_[s];
  }
  /// Sum of Engine::StructuresBuilt over the shards — observability for
  /// tests and serving metrics. O(K).
  int StructuresBuilt() const;

 private:
  Engine::QueryResult QueryOne(geom::Vec2 q, const Engine::QuerySpec& spec,
                               ThreadPool* pool, obs::TraceNode trace) const;
  /// Runs fn(s) for every shard index s, on `pool` (plus the calling
  /// thread) when given, serially otherwise. When `trace` is live each
  /// call is wrapped in a "shard_query" span tagged with s.
  void ForEachShard(ThreadPool* pool, const std::function<void(int)>& fn,
                    obs::TraceNode trace = {}) const;
  /// Candidate generation + merged re-quantification at `eps_needed`.
  MergedProbabilities MergedProbs(geom::Vec2 q, double eps_needed,
                                  ThreadPool* pool,
                                  obs::TraceNode trace = {}) const;

  std::vector<std::shared_ptr<const Engine>> engines_;
  std::vector<std::vector<int>> global_ids_;
  std::vector<ShardView> views_;  // Parallel to engines_/global_ids_.
  Engine::Config config_;
  ShardingOptions options_;
  /// Active NUMA placement (numa_aware on a multi-node machine): per-shard
  /// node index and that node's CPU list. Both empty when inactive.
  std::vector<int> shard_nodes_;
  std::vector<std::vector<int>> shard_cpus_;
  int size_ = 0;
};

}  // namespace serve
}  // namespace unn

#endif  // UNN_SERVE_SHARDING_H_
