#include "serve/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "util/check.h"
#include "util/numa.h"

namespace unn {
namespace serve {

ThreadPool::ThreadPool(const Options& options) {
  int num_threads = options.num_threads;
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, cpus = options.pin_cpus] {
      // Best-effort placement before the first task; a failed pin (empty
      // set, offline CPU, unsupported platform) just runs unpinned.
      if (!cpus.empty()) util::PinCurrentThreadToCpus(cpus);
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  BeginShutdown();
  for (auto& t : workers_) t.join();
}

void ThreadPool::BeginShutdown() {
  {
    MutexLock lock(&mu_);
    stopping_ = true;
  }
  cv_.NotifyAll();
}

void ThreadPool::Post(std::function<void()> fn, TaskPriority priority) {
  UNN_CHECK_MSG(TryPost(std::move(fn), priority),
                "Post on a stopping ThreadPool");
}

bool ThreadPool::TryPost(std::function<void()>&& fn, TaskPriority priority) {
  {
    MutexLock lock(&mu_);
    if (stopping_) return false;
    queues_[static_cast<int>(priority)].push_back(std::move(fn));
  }
  cv_.NotifyOne();
  return true;
}

int ThreadPool::queue_depth() const {
  MutexLock lock(&mu_);
  size_t depth = 0;
  for (const auto& q : queues_) depth += q.size();
  return static_cast<int>(depth);
}

bool ThreadPool::QueuesEmptyLocked() const {
  for (const auto& q : queues_) {
    if (!q.empty()) return false;
  }
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      // Spelled as an explicit loop (not a predicate wait): a predicate
      // lambda is analyzed as a separate function, which would hide the
      // guarded reads from -Wthread-safety.
      while (!stopping_ && QueuesEmptyLocked()) cv_.Wait(mu_);
      if (QueuesEmptyLocked()) return;  // stopping_ and drained.
      for (auto& q : queues_) {         // Highest class first.
        if (!q.empty()) {
          task = std::move(q.front());
          q.pop_front();
          break;
        }
      }
    }
    task();
  }
}

namespace {

/// Completion state shared between ParallelFor's caller and the tasks it
/// posts. Heap-owned (shared_ptr) because a posted task that lost every
/// block race may still be finishing after the caller has returned.
struct ForLatch {
  std::atomic<size_t> next{0};
  Mutex mu;
  CondVar cv;
  size_t blocks_done UNN_GUARDED_BY(mu) = 0;
};

}  // namespace

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  // ~2 blocks per participant bounds the makespan penalty of an uneven
  // block at half a block without the scheduling overhead of one task per
  // index. Block sizes are rounded up to a multiple of the batch-kernel
  // pack width (geom::kLaneWidth = 8, spatial/batch.h), so a blocked
  // QueryMany produces at most one ragged pack per block instead of
  // guaranteed ragged tails at every block seam.
  constexpr size_t kBlockQuantum = 8;
  size_t participants = static_cast<size_t>(num_threads()) + 1;
  size_t blocks = std::min(n, 2 * participants);
  size_t chunk = (n + blocks - 1) / blocks;
  if (n > kBlockQuantum) {
    chunk = (chunk + kBlockQuantum - 1) / kBlockQuantum * kBlockQuantum;
    blocks = (n + chunk - 1) / chunk;
  }

  // Participants pull the next unclaimed block until none remain. The
  // caller joins the pulling loop itself, so every block completes even if
  // the queue is backed up (e.g. a nested ParallelFor from inside a task):
  // it never blocks waiting for a task that has not started. `fn` is only
  // dereferenced while a block is held, and blocks cannot be claimed after
  // the caller returns, so capturing it by reference is safe.
  auto latch = std::make_shared<ForLatch>();
  auto run_blocks = [n, chunk, blocks, latch, &fn] {
    for (;;) {
      // relaxed: the block counter only hands out distinct indices; the
      // work done in a block is published to the waiter by latch->mu.
      size_t b = latch->next.fetch_add(1, std::memory_order_relaxed);
      if (b >= blocks) return;
      size_t begin = b * chunk;
      size_t end = std::min(n, begin + chunk);
      if (begin < end) fn(begin, end);
      {
        MutexLock lock(&latch->mu);
        ++latch->blocks_done;
      }
      latch->cv.NotifyOne();
    }
  };

  // On a stopping pool (destructor racing a draining task that fans out)
  // no helper can be posted; the calling thread then claims every block.
  size_t helpers = std::min(blocks - 1, static_cast<size_t>(num_threads()));
  for (size_t i = 0; i < helpers; ++i) {
    if (!TryPost(run_blocks)) break;
  }
  run_blocks();
  MutexLock lock(&latch->mu);
  while (latch->blocks_done < blocks) latch->cv.Wait(latch->mu);
}

}  // namespace serve
}  // namespace unn
