#include "serve/query_server.h"

#include <utility>

#include "util/check.h"

namespace unn {
namespace serve {

namespace {

/// Counts a Submit/QueryBatch in and out of the server, so the
/// destructor can drain calls that raced it. The exit notifies the
/// counter only while a drain is in progress, keeping the hot path free
/// of wake syscalls.
class InflightGuard {
 public:
  InflightGuard(std::atomic<int>& counter, const std::atomic<bool>& draining)
      : counter_(counter), draining_(draining) {
    counter_.fetch_add(1);
  }
  ~InflightGuard() {
    counter_.fetch_sub(1);
    if (draining_.load()) counter_.notify_all();
  }
  InflightGuard(const InflightGuard&) = delete;
  InflightGuard& operator=(const InflightGuard&) = delete;

 private:
  std::atomic<int>& counter_;
  const std::atomic<bool>& draining_;
};

/// The sharding a caller-installed shard set implies for future
/// replacements: its own shape, with the assembled-set marker mapped to
/// a strategy PartitionPoints accepts.
ShardingOptions ImpliedSharding(const ShardedEngine& engine) {
  ShardingOptions s = engine.options();
  if (s.partitioning == Partitioning::kExternal) {
    s.partitioning = Partitioning::kRoundRobin;
  }
  return s;
}

}  // namespace

QueryServer::QueryServer(std::shared_ptr<const ShardedEngine> engine,
                         const Options& options)
    : options_(options),
      sharding_(options.sharding),
      pool_(options.num_threads) {
  UNN_CHECK(engine != nullptr);
  // An explicitly sharded Options wins; otherwise future ReplaceDataset
  // calls keep the shape of the engine the server was given (a server
  // seeded with 4 shards must not silently rebuild monolithic).
  if (sharding_.num_shards <= 1) sharding_ = ImpliedSharding(*engine);
  WarmSnapshot(*engine);
  engine_.store(std::move(engine), std::memory_order_release);
}

QueryServer::QueryServer(std::shared_ptr<const Engine> engine,
                         const Options& options)
    : QueryServer(std::make_shared<const ShardedEngine>(std::move(engine)),
                  options) {}

QueryServer::QueryServer(std::shared_ptr<const Engine> engine)
    : QueryServer(std::move(engine), Options{}) {}

QueryServer::QueryServer(std::vector<core::UncertainPoint> points,
                         const Engine::Config& config, const Options& options)
    : options_(options),
      sharding_(options.sharding),
      pool_(options.num_threads) {
  auto engine = std::make_shared<const ShardedEngine>(
      std::move(points), config, sharding_, &pool_);
  WarmSnapshot(*engine);
  engine_.store(std::move(engine), std::memory_order_release);
}

QueryServer::QueryServer(std::vector<core::UncertainPoint> points,
                         const Engine::Config& config)
    : QueryServer(std::move(points), config, Options{}) {}

void QueryServer::WarmSnapshot(const ShardedEngine& engine) {
  for (Engine::QueryType type : options_.warm) engine.Warmup(type, &pool_);
}

QueryServer::~QueryServer() {
  // Stop accepting pool work first, so a Submit that entered before (or
  // during) this line either queued its task already — drained when the
  // pool joins its workers below — or sees TryPost fail and answers
  // inline. Then block (atomic wait, no spinning) until every such call
  // has left the building before member destructors run. Calls entering
  // later are still caught by the pool join — see the shutdown note on
  // Submit.
  pool_.BeginShutdown();
  draining_.store(true);
  for (int n = inflight_.load(); n > 0; n = inflight_.load()) {
    inflight_.wait(n);
  }
}

std::future<Engine::QueryResult> QueryServer::Submit(
    geom::Vec2 q, const Engine::QuerySpec& spec) {
  InflightGuard inflight(inflight_, draining_);
  // Pin the snapshot at submission: the request is answered against the
  // dataset that was current when the server accepted it, even if a swap
  // lands before a worker picks it up.
  std::shared_ptr<const ShardedEngine> snap = sharded_snapshot();
  auto promise = std::make_shared<std::promise<Engine::QueryResult>>();
  std::future<Engine::QueryResult> result = promise->get_future();
  // The worker fans a multi-shard query back out across the pool (nested
  // ParallelFor; on a stopping pool it degrades to the worker alone).
  ThreadPool* fan = snap->num_shards() > 1 ? &pool_ : nullptr;
  std::function<void()> task =
      [snap = std::move(snap), promise = std::move(promise), q, spec, fan] {
        // Route through QueryMany so degenerate spec parameters follow
        // the documented definitions instead of tripping single-query
        // CHECKs.
        std::span<const geom::Vec2> one(&q, 1);
        promise->set_value(std::move(snap->QueryMany(one, spec, fan)[0]));
      };
  if (!pool_.TryPost(std::move(task))) {
    // A submit racing server shutdown: once the pool's destructor has
    // begun no task can be enqueued, so answer inline on the submitting
    // thread against the snapshot pinned above (the nested fan-out
    // degrades the same way inside ParallelFor). TryPost leaves the task
    // intact on failure, so running it here is safe; the future is
    // always satisfied and nothing aborts.
    task();
  }
  queries_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

std::vector<Engine::QueryResult> QueryServer::QueryBatch(
    std::span<const geom::Vec2> queries, const Engine::QuerySpec& spec) {
  InflightGuard inflight(inflight_, draining_);
  std::shared_ptr<const ShardedEngine> snap = sharded_snapshot();
  auto results = QueryMany(*snap, queries, spec, &pool_);
  batches_.fetch_add(1, std::memory_order_relaxed);
  queries_.fetch_add(queries.size(), std::memory_order_relaxed);
  return results;
}

void QueryServer::ReplaceDataset(std::vector<core::UncertainPoint> points) {
  ReplaceImpl(std::move(points), nullptr);
}

void QueryServer::ReplaceDataset(std::vector<core::UncertainPoint> points,
                                 const ShardingOptions& sharding) {
  ReplaceImpl(std::move(points), &sharding);
}

void QueryServer::ReplaceImpl(std::vector<core::UncertainPoint> points,
                              const ShardingOptions* sharding) {
  // Counted in-flight like the query paths: a replacement that entered
  // before destruction must finish (it holds replace_mu_ and writes the
  // snapshot) before member teardown begins.
  InflightGuard inflight(inflight_, draining_);
  std::lock_guard<std::mutex> lock(replace_mu_);
  // Read the config under the lock: a racing ReplaceShardedEngine may
  // have just installed a snapshot with different accuracy settings, and
  // "same config as the current snapshot" must mean the latest one.
  const Engine::Config config = sharded_snapshot()->config();
  if (sharding != nullptr) sharding_ = *sharding;
  InstallLocked(std::make_shared<const ShardedEngine>(std::move(points),
                                                      config, sharding_,
                                                      &pool_));
}

void QueryServer::ReplaceEngine(std::shared_ptr<const Engine> engine) {
  UNN_CHECK(engine != nullptr);
  ReplaceShardedEngine(
      std::make_shared<const ShardedEngine>(std::move(engine)));
}

void QueryServer::ReplaceShardedEngine(
    std::shared_ptr<const ShardedEngine> engine) {
  UNN_CHECK(engine != nullptr);
  InflightGuard inflight(inflight_, draining_);
  std::lock_guard<std::mutex> lock(replace_mu_);
  // A caller-installed shard set is an explicit statement of shape:
  // later ReplaceDataset calls keep it.
  sharding_ = ImpliedSharding(*engine);
  InstallLocked(std::move(engine));
}

void QueryServer::InstallLocked(std::shared_ptr<const ShardedEngine> engine) {
  // Build and warm entirely off to the side; the swap itself is one
  // atomic store. In-flight queries hold the old snapshot's shared_ptr,
  // so it dies only when the last of them finishes.
  WarmSnapshot(*engine);
  engine_.store(std::move(engine), std::memory_order_release);
  swaps_.fetch_add(1, std::memory_order_relaxed);
}

QueryServer::Stats QueryServer::stats() const {
  Stats s;
  s.queries = queries_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.swaps = swaps_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace serve
}  // namespace unn
