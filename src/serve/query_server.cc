#include "serve/query_server.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "engine/query_contract.h"
#include "obs/profile.h"
#include "util/check.h"

namespace unn {
namespace serve {

namespace {

/// Counts a Submit/QueryBatch in and out of the server, so the
/// destructor can drain calls that raced it. The exit notifies the
/// counter only while a drain is in progress, keeping the hot path free
/// of wake syscalls.
class InflightGuard {
 public:
  InflightGuard(std::atomic<int>& counter, const std::atomic<bool>& draining)
      : counter_(counter), draining_(draining) {
    counter_.fetch_add(1);
  }
  ~InflightGuard() {
    counter_.fetch_sub(1);
    if (draining_.load()) counter_.notify_all();
  }
  InflightGuard(const InflightGuard&) = delete;
  InflightGuard& operator=(const InflightGuard&) = delete;

 private:
  std::atomic<int>& counter_;
  const std::atomic<bool>& draining_;
};

/// The sharding a caller-installed shard set implies for future
/// replacements: its own shape, with the assembled-set marker mapped to
/// a strategy PartitionPoints accepts.
ShardingOptions ImpliedSharding(const ShardedEngine& engine) {
  ShardingOptions s = engine.options();
  if (s.partitioning == Partitioning::kExternal) {
    s.partitioning = Partitioning::kRoundRobin;
  }
  return s;
}

/// Reassembles the full dataset of a shard set in global-id order (the
/// degraded engine answers over the whole dataset, not one shard).
std::vector<core::UncertainPoint> CollectPoints(const ShardedEngine& engine) {
  std::vector<std::pair<int, const core::UncertainPoint*>> tagged;
  tagged.reserve(engine.size());
  for (int s = 0; s < engine.num_shards(); ++s) {
    const std::vector<int>& ids = engine.global_ids(s);
    const std::vector<core::UncertainPoint>& local = engine.shard(s).points();
    for (size_t j = 0; j < ids.size(); ++j) {
      tagged.emplace_back(ids[j], &local[j]);
    }
  }
  std::sort(tagged.begin(), tagged.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<core::UncertainPoint> points;
  points.reserve(tagged.size());
  for (const auto& [id, p] : tagged) points.push_back(*p);
  return points;
}

std::chrono::microseconds ElapsedUs(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - t0);
}

TaskPriority ToTaskPriority(Priority p) {
  switch (p) {
    case Priority::kHigh:
      return TaskPriority::kHigh;
    case Priority::kLow:
      return TaskPriority::kLow;
    case Priority::kNormal:
      break;
  }
  return TaskPriority::kNormal;
}

/// Stable label values for the per-type metrics (indexed like
/// Engine::QueryType).
constexpr std::array<const char*, kNumQueryTypes> kQueryTypeNames = {
    "most_probable_nn", "expected_distance_nn", "threshold", "top_k",
    "nonzero_nn"};

bool IsRegular(const Engine::QuerySpec& spec) {
  return query_contract::Classify(spec) ==
         query_contract::SpecClass::kRegular;
}

/// Raw spec equality — good enough for batching decisions (canonical
/// equivalence, e.g. TopK specs differing only in tau, is the cache
/// key's business).
bool SpecEquals(const Engine::QuerySpec& a, const Engine::QuerySpec& b) {
  return a.type == b.type && a.tau == b.tau && a.k == b.k;
}

}  // namespace

QueryServer::QueryServer(std::shared_ptr<const ShardedEngine> engine,
                         const Options& options)
    : options_(options),
      cache_(options.cache, &registry_),
      sharding_(options.sharding),
      pool_(ThreadPool::Options{options.num_threads, options.pin_cpus}) {
  InitMetrics();
  UNN_CHECK(engine != nullptr);
  // An explicitly sharded Options wins; otherwise future ReplaceDataset
  // calls keep the shape of the engine the server was given (a server
  // seeded with 4 shards must not silently rebuild monolithic).
  if (sharding_.num_shards <= 1) sharding_ = ImpliedSharding(*engine);
  std::shared_ptr<const Engine> degraded;
  if (DegradeEnabled()) {
    degraded = BuildDegraded(CollectPoints(*engine), engine->config());
  }
  StoreState(MakeSnapshot(std::move(engine), std::move(degraded), 1));
}

QueryServer::QueryServer(std::shared_ptr<const Engine> engine,
                         const Options& options)
    : QueryServer(std::make_shared<const ShardedEngine>(std::move(engine)),
                  options) {}

QueryServer::QueryServer(std::shared_ptr<const Engine> engine)
    : QueryServer(std::move(engine), Options{}) {}

QueryServer::QueryServer(std::vector<core::UncertainPoint> points,
                         const Engine::Config& config, const Options& options)
    : options_(options),
      cache_(options.cache, &registry_),
      sharding_(options.sharding),
      pool_(ThreadPool::Options{options.num_threads, options.pin_cpus}) {
  InitMetrics();
  std::vector<core::UncertainPoint> degrade_points;
  if (DegradeEnabled()) degrade_points = points;  // Copy before the move.
  auto engine = std::make_shared<const ShardedEngine>(std::move(points),
                                                      config, sharding_,
                                                      &pool_);
  std::shared_ptr<const Engine> degraded;
  if (DegradeEnabled()) {
    degraded = BuildDegraded(std::move(degrade_points), config);
  }
  StoreState(MakeSnapshot(std::move(engine), std::move(degraded), 1));
}

QueryServer::QueryServer(std::vector<core::UncertainPoint> points,
                         const Engine::Config& config)
    : QueryServer(std::move(points), config, Options{}) {}

void QueryServer::WarmSnapshot(const Snapshot& snap) {
  for (Engine::QueryType type : options_.warm) {
    snap.engine->Warmup(type, &pool_);
    if (snap.degraded != nullptr) snap.degraded->Warmup(type);
  }
}

std::shared_ptr<const Engine> QueryServer::BuildDegraded(
    std::vector<core::UncertainPoint> points,
    const Engine::Config& base) const {
  Engine::Config config = base;
  config.backend = Backend::kMonteCarlo;
  // Loosen accuracy to the degrade floor (never tighten; Engine requires
  // eps < 1) and cap the sample count: the point of this engine is a
  // bounded, small per-query cost under overload.
  config.eps = std::min(0.9, std::max(base.eps, options_.degrade_eps));
  config.mc_samples_override = options_.degrade_mc_samples;
  return std::make_shared<const Engine>(std::move(points), config);
}

std::shared_ptr<const QueryServer::Snapshot> QueryServer::MakeSnapshot(
    std::shared_ptr<const ShardedEngine> engine,
    std::shared_ptr<const Engine> degraded, uint64_t generation) {
  auto snap = std::make_shared<Snapshot>();
  snap->engine = std::move(engine);
  snap->degraded = std::move(degraded);
  snap->generation = generation;
  WarmSnapshot(*snap);
  return snap;
}

QueryServer::~QueryServer() {
  // Stop accepting pool work first, so a Submit that entered before (or
  // during) this line either queued its task already — drained when the
  // pool joins its workers below — or sees TryPost fail and answers
  // inline. Then block (atomic wait, no spinning) until every such call
  // has left the building before member destructors run. Calls entering
  // later are still caught by the pool join — see the shutdown note on
  // Submit.
  pool_.BeginShutdown();
  draining_.store(true);
  for (int n = inflight_.load(); n > 0; n = inflight_.load()) {
    inflight_.wait(n);
  }
}

void QueryServer::InitMetrics() {
  queries_ = registry_.GetCounter("unn_server_queries_total",
                                  "Queries accepted (single + batched)");
  batches_ = registry_.GetCounter("unn_server_batches_total",
                                  "QueryBatch calls");
  swaps_ = registry_.GetCounter("unn_server_swaps_total",
                                "Dataset replacements installed");
  shed_ = registry_.GetCounter("unn_server_shed_total",
                               "Requests refused by admission control");
  degraded_ = registry_.GetCounter(
      "unn_server_degraded_total",
      "Requests answered by the degraded (Monte-Carlo) backend");
  deadline_exceeded_ = registry_.GetCounter(
      "unn_server_deadline_exceeded_total",
      "Requests dropped because their deadline passed");
  for (int t = 0; t < kNumQueryTypes; ++t) {
    obs::Labels labels{{"type", kQueryTypeNames[t]}};
    queries_by_type_[t] =
        registry_.GetCounter("unn_server_queries_by_type_total",
                             "Queries accepted, by query type", labels);
    latency_[t] = registry_.GetHistogram(
        "unn_server_latency_us",
        "Serving latency (admission to completion), microseconds", labels);
  }
}

void QueryServer::CountQuery(const Engine::QuerySpec& spec) {
  queries_->Inc();
  const int t = static_cast<int>(spec.type);
  if (t >= 0 && t < kNumQueryTypes) queries_by_type_[t]->Inc();
}

void QueryServer::RecordLatency(Engine::QueryType type,
                                std::chrono::microseconds us) {
  const int t = static_cast<int>(type);
  if (t >= 0 && t < kNumQueryTypes) {
    latency_[t]->Record(static_cast<double>(us.count()));
  }
}

void QueryServer::MaybeLogSlowQuery(geom::Vec2 q,
                                    const Engine::QuerySpec& spec,
                                    ResultSource source,
                                    std::chrono::microseconds latency,
                                    const obs::TraceContext* ctx,
                                    int batch_size) {
  if (options_.slow_query_threshold.count() <= 0) return;
  if (latency < options_.slow_query_threshold) return;
  SlowQuery entry;
  entry.q = q;
  entry.spec = spec;
  entry.source = source;
  entry.latency = latency;
  entry.batch_size = batch_size;
  if (ctx != nullptr) entry.spans = ctx->spans();
  const size_t cap =
      static_cast<size_t>(std::max(1, options_.slow_query_log_size));
  MutexLock lock(&slow_mu_);
  slow_log_.push_back(std::move(entry));
  while (slow_log_.size() > cap) slow_log_.pop_front();
}

std::vector<QueryServer::SlowQuery> QueryServer::SlowQueries() const {
  MutexLock lock(&slow_mu_);
  return {slow_log_.begin(), slow_log_.end()};
}

void QueryServer::SubmitImpl(const Request& request,
                             std::function<void(Response&&)> deliver) {
  const auto t0 = std::chrono::steady_clock::now();
  // Pin the snapshot at submission: the request is answered against the
  // dataset (and cache generation) that was current when the server
  // accepted it, even if a swap lands before a worker picks it up.
  std::shared_ptr<const Snapshot> snap = LoadState();
  CountQuery(request.spec);

  // Tracing: the caller's context when the request carries one, a
  // server-owned context when the slow-query log is on (so slow requests
  // always come with a span tree), null otherwise — and null makes every
  // span site below a pointer test (obs/trace.h).
  obs::TraceContext* ctx = request.trace;
  std::shared_ptr<obs::TraceContext> owned;
  if (ctx == nullptr && options_.slow_query_threshold.count() > 0) {
    owned = std::make_shared<obs::TraceContext>();
    ctx = owned.get();
  }
  const std::int32_t root =
      ctx != nullptr ? ctx->StartSpan("request") : -1;
  const obs::TraceNode root_node{ctx, root};

  // Every path delivers through here: close the root span, feed the
  // slow-query log, hand the response to the caller. `owned` keeps a
  // server-allocated context alive until then.
  auto finish = [this, ctx, owned = std::move(owned), root, request,
                 deliver = std::move(deliver)](Response&& resp) {
    if (ctx != nullptr) ctx->EndSpan(root);
    MaybeLogSlowQuery(request.q, request.spec, resp.source, resp.latency,
                      ctx, 0);
    deliver(std::move(resp));
  };

  // The admission span covers everything up to the dispatch decision.
  obs::ScopedSpan admission(root_node, "admission");

  // Deadline check one: already dead on arrival.
  if (request.deadline != kNoDeadline && t0 >= request.deadline) {
    deadline_exceeded_->Inc();
    admission.End();
    finish(Response{{}, ResultSource::kDeadlineExceeded, ElapsedUs(t0)});
    return;
  }

  const bool regular = IsRegular(request.spec);
  const bool cacheable = regular && !cache_.disabled();

  // Cache probe: a hit answers on the submitting thread, touching no
  // backend and no admission state.
  if (cacheable) {
    obs::ScopedSpan lookup(admission.node(), "cache_lookup");
    Response resp;
    if (cache_.Lookup(cache_.Key(snap->generation, request.spec, request.q),
                      &resp.result)) {
      lookup.End();
      admission.End();
      resp.source = ResultSource::kCache;
      resp.latency = ElapsedUs(t0);
      RecordLatency(request.spec.type, resp.latency);
      finish(std::move(resp));
      return;
    }
  }

  // Admission control. Definition-level answers (degenerate specs) are
  // never refused: they cost no backend work worth protecting.
  // relaxed: active_ is a load-shedding heuristic; admission may read a
  // slightly stale count, which only shifts where the limit bites.
  if (options_.max_inflight > 0 && regular &&
      active_.load(std::memory_order_relaxed) >= options_.max_inflight) {
    admission.End();
    if (options_.overload == OverloadPolicy::kDegrade &&
        snap->degraded != nullptr) {
      // On the submitting thread by design: overload relief must not add
      // pool work, and the caller feels the backpressure.
      obs::ScopedSpan span(root_node, "degraded_query");
      std::span<const geom::Vec2> one(&request.q, 1);
      Response resp;
      resp.result =
          std::move(snap->degraded->QueryMany(one, request.spec)[0]);
      span.End();
      resp.source = ResultSource::kDegraded;
      resp.latency = ElapsedUs(t0);
      degraded_->Inc();
      RecordLatency(request.spec.type, resp.latency);
      finish(std::move(resp));
    } else {
      shed_->Inc();
      finish(Response{{}, ResultSource::kShed, ElapsedUs(t0)});
    }
    return;
  }

  admission.End();
  // relaxed: pure counter traffic; nothing is published through active_.
  active_.fetch_add(1, std::memory_order_relaxed);
  // Queue span: post to worker pickup (ended first thing in the task).
  const std::int32_t queue_span =
      ctx != nullptr ? ctx->StartSpan("queue", root) : -1;
  // The worker fans a multi-shard query back out across the pool (nested
  // ParallelFor; on a stopping pool it degrades to the worker alone).
  ThreadPool* fan = snap->engine->num_shards() > 1 ? &pool_ : nullptr;
  std::function<void()> task =
      [this, snap = std::move(snap), finish = std::move(finish), request,
       cacheable, fan, t0, ctx, root, queue_span] {
        if (ctx != nullptr) ctx->EndSpan(queue_span);
        const obs::TraceNode root_at{ctx, root};
        Response resp;
        if (request.deadline != kNoDeadline &&
            std::chrono::steady_clock::now() >= request.deadline) {
          // Deadline check two: aged out while queued.
          resp.source = ResultSource::kDeadlineExceeded;
          deadline_exceeded_->Inc();
        } else {
          // Route through QueryMany so degenerate spec parameters follow
          // the documented definitions instead of tripping single-query
          // CHECKs.
          obs::ScopedSpan engine_span(root_at, "engine_query");
          std::span<const geom::Vec2> one(&request.q, 1);
          resp.result = std::move(
              snap->engine->QueryMany(one, request.spec, fan,
                                      engine_span.node())[0]);
          engine_span.End();
          if (cacheable) {
            obs::ScopedSpan insert(root_at, "cache_insert");
            cache_.Insert(
                cache_.Key(snap->generation, request.spec, request.q),
                resp.result);
          }
        }
        // relaxed: counter only; the response is delivered via the
        // promise, which provides the ordering the caller observes.
        active_.fetch_sub(1, std::memory_order_relaxed);
        resp.latency = ElapsedUs(t0);
        if (resp.source == ResultSource::kComputed) {
          RecordLatency(request.spec.type, resp.latency);
        }
        finish(std::move(resp));
      };
  if (!pool_.TryPost(std::move(task), ToTaskPriority(request.priority))) {
    // A submit racing server shutdown: once the pool's destructor has
    // begun no task can be enqueued, so answer inline on the submitting
    // thread against the snapshot pinned above (the nested fan-out
    // degrades the same way inside ParallelFor). TryPost leaves the task
    // intact on failure, so running it here is safe; the future is
    // always satisfied and nothing aborts.
    task();
  }
}

std::future<Response> QueryServer::Submit(const Request& request) {
  InflightGuard inflight(inflight_, draining_);
  auto promise = std::make_shared<std::promise<Response>>();
  std::future<Response> result = promise->get_future();
  SubmitImpl(request, [promise = std::move(promise)](Response&& resp) {
    promise->set_value(std::move(resp));
  });
  return result;
}

std::future<Engine::QueryResult> QueryServer::Submit(
    geom::Vec2 q, const Engine::QuerySpec& spec) {
  InflightGuard inflight(inflight_, draining_);
  auto promise = std::make_shared<std::promise<Engine::QueryResult>>();
  std::future<Engine::QueryResult> result = promise->get_future();
  SubmitImpl(Request{q, spec},
             [promise = std::move(promise)](Response&& resp) {
               promise->set_value(std::move(resp.result));
             });
  return result;
}

std::vector<Response> QueryServer::QueryBatch(
    std::span<const Request> requests) {
  InflightGuard inflight(inflight_, draining_);
  const auto t0 = std::chrono::steady_clock::now();
  std::shared_ptr<const Snapshot> snap = LoadState();
  batches_->Inc();
  std::vector<Response> responses(requests.size());
  if (requests.empty()) return responses;

  // Batch tracing rides the slow-query log (Request::trace is a
  // Submit-path feature): one context per batch, its root span tagged
  // with the batch size.
  std::unique_ptr<obs::TraceContext> ctx;
  std::int32_t root = -1;
  if (options_.slow_query_threshold.count() > 0) {
    ctx = std::make_unique<obs::TraceContext>();
    root = ctx->StartSpan("batch", -1,
                          static_cast<std::int64_t>(requests.size()));
  }
  const obs::TraceNode root_node{ctx.get(), root};

  // Pass one, serial: per-request deadline check and cache probe;
  // everything unanswered is a miss headed for a backend.
  std::vector<size_t> compute;   // Misses for the full backend.
  std::vector<size_t> overload;  // Regular misses hit the in-flight limit.
  compute.reserve(requests.size());
  // Batch-level admission: the limit decides the batch's fate once, on
  // the way in (a batch the server accepts is not split).
  const bool at_limit =
      options_.max_inflight > 0 &&
      // relaxed: same load-shedding heuristic as SubmitImpl's admission.
      active_.load(std::memory_order_relaxed) >= options_.max_inflight;
  {
    obs::ScopedSpan admission(root_node, "batch_admission");
    for (size_t i = 0; i < requests.size(); ++i) {
      const Request& r = requests[i];
      CountQuery(r.spec);
      if (r.deadline != kNoDeadline && t0 >= r.deadline) {
        responses[i].source = ResultSource::kDeadlineExceeded;
        deadline_exceeded_->Inc();
        continue;
      }
      const bool regular = IsRegular(r.spec);
      if (regular && !cache_.disabled() &&
          cache_.Lookup(cache_.Key(snap->generation, r.spec, r.q),
                        &responses[i].result)) {
        responses[i].source = ResultSource::kCache;
        responses[i].latency = ElapsedUs(t0);
        RecordLatency(r.spec.type, responses[i].latency);
        continue;
      }
      if (at_limit && regular) {
        overload.push_back(i);
      } else {
        compute.push_back(i);
      }
    }
  }

  // Overload handling for the batch's regular misses, as a unit.
  std::vector<size_t> degrade;
  if (!overload.empty()) {
    if (options_.overload == OverloadPolicy::kDegrade &&
        snap->degraded != nullptr) {
      degrade = std::move(overload);
    } else {
      for (size_t i : overload) responses[i].source = ResultSource::kShed;
      shed_->Inc(overload.size());
    }
  }

  // Answers one index list on one backend, results scattered into
  // `responses`. The misses are partitioned by distinct spec (the dedup
  // scan is quadratic in the handful of distinct specs, cheaper than
  // hashing) and each group runs through serve::QueryMany, so cache
  // misses of the same spec form packs for the batched traversal kernels
  // whether the batch arrived uniform (the common case, and always the
  // legacy wrapper — one group) or mixed, instead of fanning scalar
  // singletons. Per-spec amortizations (warm once, block splitting) are
  // kept either way, and the grouping cannot change any answer: each
  // Response is produced by the same backend QueryMany contract in
  // request order.
  auto run = [&](const std::vector<size_t>& idx, const auto& backend) {
    std::vector<Engine::QuerySpec> distinct;
    std::vector<std::vector<size_t>> groups;
    for (size_t i : idx) {
      size_t g = 0;
      while (g < distinct.size() && !SpecEquals(distinct[g], requests[i].spec))
        ++g;
      if (g == distinct.size()) {
        distinct.push_back(requests[i].spec);
        groups.emplace_back();
      }
      groups[g].push_back(i);
    }
    for (size_t g = 0; g < groups.size(); ++g) {
      std::vector<geom::Vec2> points(groups[g].size());
      for (size_t j = 0; j < groups[g].size(); ++j) {
        points[j] = requests[groups[g][j]].q;
      }
      std::vector<Engine::QueryResult> results =
          QueryMany(backend, points, distinct[g], &pool_);
      for (size_t j = 0; j < groups[g].size(); ++j) {
        responses[groups[g][j]].result = std::move(results[j]);
      }
    }
  };

  if (!compute.empty()) {
    // relaxed: pure counter traffic; nothing is published through active_.
    active_.fetch_add(static_cast<int>(compute.size()),
                      std::memory_order_relaxed);
    {
      obs::ScopedSpan span(root_node, "compute",
                           static_cast<std::int64_t>(compute.size()));
      run(compute, *snap->engine);
    }
    for (size_t i : compute) responses[i].source = ResultSource::kComputed;
    if (!cache_.disabled()) {
      obs::ScopedSpan span(root_node, "cache_insert");
      for (size_t i : compute) {
        const Request& r = requests[i];
        if (IsRegular(r.spec)) {
          cache_.Insert(cache_.Key(snap->generation, r.spec, r.q),
                        responses[i].result);
        }
      }
    }
    // relaxed: pure counter traffic; nothing is published through active_.
    active_.fetch_sub(static_cast<int>(compute.size()),
                      std::memory_order_relaxed);
  }
  if (!degrade.empty()) {
    // Degraded answers are estimates at the relaxed accuracy: they are
    // labeled, and never inserted into the exact-result cache.
    obs::ScopedSpan span(root_node, "degraded_query",
                         static_cast<std::int64_t>(degrade.size()));
    run(degrade, *snap->degraded);
    span.End();
    for (size_t i : degrade) responses[i].source = ResultSource::kDegraded;
    degraded_->Inc(degrade.size());
  }

  // Completion latency for everything decided by this batch (cache hits
  // keep their probe-time latency); histograms get answered requests
  // only.
  const std::chrono::microseconds batch_latency = ElapsedUs(t0);
  for (size_t i = 0; i < requests.size(); ++i) {
    if (responses[i].source == ResultSource::kCache) continue;
    responses[i].latency = batch_latency;
    if (responses[i].source == ResultSource::kComputed ||
        responses[i].source == ResultSource::kDegraded) {
      RecordLatency(requests[i].spec.type, batch_latency);
    }
  }
  if (ctx != nullptr) {
    ctx->EndSpan(root);
    // One representative slow-log entry per slow batch: the first
    // request stands in for the batch, the batch size disambiguates.
    const ResultSource source = compute.empty() && !degrade.empty()
                                    ? ResultSource::kDegraded
                                    : ResultSource::kComputed;
    MaybeLogSlowQuery(requests[0].q, requests[0].spec, source, batch_latency,
                      ctx.get(), static_cast<int>(requests.size()));
  }
  return responses;
}

std::vector<Engine::QueryResult> QueryServer::QueryBatch(
    std::span<const geom::Vec2> queries, const Engine::QuerySpec& spec) {
  std::vector<Request> requests(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    requests[i].q = queries[i];
    requests[i].spec = spec;
  }
  std::vector<Response> batch = QueryBatch(requests);
  std::vector<Engine::QueryResult> results(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    results[i] = std::move(batch[i].result);
  }
  return results;
}

void QueryServer::ReplaceDataset(std::vector<core::UncertainPoint> points) {
  ReplaceImpl(std::move(points), nullptr);
}

void QueryServer::ReplaceDataset(std::vector<core::UncertainPoint> points,
                                 const ShardingOptions& sharding) {
  ReplaceImpl(std::move(points), &sharding);
}

void QueryServer::ReplaceImpl(std::vector<core::UncertainPoint> points,
                              const ShardingOptions* sharding) {
  // Counted in-flight like the query paths: a replacement that entered
  // before destruction must finish (it holds replace_mu_ and writes the
  // snapshot) before member teardown begins.
  InflightGuard inflight(inflight_, draining_);
  MutexLock lock(&replace_mu_);
  // Read the config under the lock: a racing ReplaceShardedEngine may
  // have just installed a snapshot with different accuracy settings, and
  // "same config as the current snapshot" must mean the latest one.
  const Engine::Config config = sharded_snapshot()->config();
  if (sharding != nullptr) sharding_ = *sharding;
  InstallLocked(std::make_shared<const ShardedEngine>(std::move(points),
                                                      config, sharding_,
                                                      &pool_));
}

void QueryServer::ReplaceEngine(std::shared_ptr<const Engine> engine) {
  UNN_CHECK(engine != nullptr);
  ReplaceShardedEngine(
      std::make_shared<const ShardedEngine>(std::move(engine)));
}

void QueryServer::ReplaceShardedEngine(
    std::shared_ptr<const ShardedEngine> engine) {
  UNN_CHECK(engine != nullptr);
  InflightGuard inflight(inflight_, draining_);
  MutexLock lock(&replace_mu_);
  // A caller-installed shard set is an explicit statement of shape:
  // later ReplaceDataset calls keep it.
  sharding_ = ImpliedSharding(*engine);
  InstallLocked(std::move(engine));
}

void QueryServer::InstallLocked(std::shared_ptr<const ShardedEngine> engine) {
  // Build and warm entirely off to the side; the swap itself is one
  // locked pointer swap. In-flight queries hold the old snapshot's shared_ptr,
  // so it dies only when the last of them finishes — and the generation
  // bump retires every cached result of the old snapshot without a
  // sweep.
  std::shared_ptr<const Engine> degraded;
  if (DegradeEnabled()) {
    degraded = BuildDegraded(CollectPoints(*engine), engine->config());
  }
  StoreState(MakeSnapshot(std::move(engine), std::move(degraded),
                          next_generation_++));
  swaps_->Inc();
}

std::shared_ptr<const QueryServer::Snapshot> QueryServer::LoadState() const {
  MutexLock lock(&state_mu_);
  return state_;
}

void QueryServer::StoreState(std::shared_ptr<const Snapshot> next) {
  {
    MutexLock lock(&state_mu_);
    state_.swap(next);
  }
  // `next` now holds the displaced snapshot; it dies here — outside the
  // lock — once no in-flight query still pins it.
}

ServerStats QueryServer::stats() const {
  ServerStats s;
  s.queries = queries_->Value();
  s.batches = batches_->Value();
  s.swaps = swaps_->Value();
  s.shed = shed_->Value();
  s.degraded = degraded_->Value();
  s.deadline_exceeded = deadline_exceeded_->Value();
  for (int t = 0; t < kNumQueryTypes; ++t) {
    s.queries_by_type[t] = queries_by_type_[t]->Value();
    const obs::HistogramSummary h = latency_[t]->Summarize();
    s.latency_by_type[t] = LatencySummary{h.count, h.p50, h.p95, h.p99};
  }
  s.cache = cache_.stats();
  return s;
}

std::string QueryServer::DumpMetrics(obs::MetricsFormat format) {
  // Refresh the point-in-time gauges before snapshotting. GetGauge is
  // idempotent on (name, labels), so resolving here (a dump is never the
  // hot path) keeps the handle plumbing out of the server's members.
  registry_
      .GetGauge("unn_pool_queue_depth",
                "Tasks queued in the worker pool, all priority classes")
      ->Set(pool_.queue_depth());
  registry_.GetGauge("unn_pool_threads", "Worker threads in the serving pool")
      ->Set(pool_.num_threads());
  registry_
      .GetGauge("unn_server_inflight",
                "Backend queries in flight (admission control's signal)")
      // relaxed: point-in-time observability reading; staleness is fine.
      ->Set(active_.load(std::memory_order_relaxed));
  registry_
      .GetGauge("unn_server_generation", "Current snapshot generation")
      ->Set(static_cast<double>(generation()));
  const CacheStats c = cache_.stats();
  const uint64_t lookups = c.hits + c.misses;
  registry_
      .GetGauge("unn_cache_hit_ratio",
                "Result-cache hits over all lookups (0 when none)")
      ->Set(lookups == 0
                ? 0.0
                : static_cast<double>(c.hits) / static_cast<double>(lookups));
  for (int t = 0; t < kNumQueryTypes; ++t) {
    const obs::Labels labels{{"type", kQueryTypeNames[t]}};
    const obs::HistogramSummary h = latency_[t]->Summarize();
    registry_
        .GetGauge("unn_server_latency_p50_us",
                  "p50 serving latency, microseconds", labels)
        ->Set(h.p50);
    registry_
        .GetGauge("unn_server_latency_p95_us",
                  "p95 serving latency, microseconds", labels)
        ->Set(h.p95);
    registry_
        .GetGauge("unn_server_latency_p99_us",
                  "p99 serving latency, microseconds", labels)
        ->Set(h.p99);
  }
  std::vector<obs::MetricSnapshot> metrics = registry_.Snapshot();
  // Traversal profiling totals are process-global (engines are shared
  // across servers); append them so one dump covers the whole stack.
  obs::AppendTraversalMetrics(&metrics);
  return obs::Export(metrics, format);
}

}  // namespace serve
}  // namespace unn
