#include "serve/query_server.h"

#include <utility>

#include "util/check.h"

namespace unn {
namespace serve {

QueryServer::QueryServer(std::shared_ptr<const Engine> engine,
                         const Options& options)
    : options_(options), pool_(options.num_threads) {
  UNN_CHECK(engine != nullptr);
  WarmSnapshot(*engine);
  engine_.store(std::move(engine), std::memory_order_release);
}

QueryServer::QueryServer(std::shared_ptr<const Engine> engine)
    : QueryServer(std::move(engine), Options{}) {}

QueryServer::QueryServer(std::vector<core::UncertainPoint> points,
                         const Engine::Config& config, const Options& options)
    : QueryServer(std::make_shared<const Engine>(std::move(points), config),
                  options) {}

QueryServer::QueryServer(std::vector<core::UncertainPoint> points,
                         const Engine::Config& config)
    : QueryServer(std::move(points), config, Options{}) {}

void QueryServer::WarmSnapshot(const Engine& engine) const {
  for (Engine::QueryType type : options_.warm) engine.Warmup(type);
}

std::future<Engine::QueryResult> QueryServer::Submit(
    geom::Vec2 q, const Engine::QuerySpec& spec) {
  // Pin the snapshot at submission: the request is answered against the
  // dataset that was current when the server accepted it, even if a swap
  // lands before a worker picks it up.
  std::shared_ptr<const Engine> snap = snapshot();
  auto promise = std::make_shared<std::promise<Engine::QueryResult>>();
  std::future<Engine::QueryResult> result = promise->get_future();
  pool_.Post([snap = std::move(snap), promise = std::move(promise), q, spec] {
    // Route through QueryMany so degenerate spec parameters follow the
    // documented definitions instead of tripping single-query CHECKs.
    std::span<const geom::Vec2> one(&q, 1);
    promise->set_value(std::move(snap->QueryMany(one, spec)[0]));
  });
  queries_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

std::vector<Engine::QueryResult> QueryServer::QueryBatch(
    std::span<const geom::Vec2> queries, const Engine::QuerySpec& spec) {
  std::shared_ptr<const Engine> snap = snapshot();
  auto results = QueryMany(*snap, queries, spec, &pool_);
  batches_.fetch_add(1, std::memory_order_relaxed);
  queries_.fetch_add(queries.size(), std::memory_order_relaxed);
  return results;
}

void QueryServer::ReplaceDataset(std::vector<core::UncertainPoint> points) {
  const Engine::Config config = snapshot()->config();
  ReplaceEngine(std::make_shared<const Engine>(std::move(points), config));
}

void QueryServer::ReplaceEngine(std::shared_ptr<const Engine> engine) {
  UNN_CHECK(engine != nullptr);
  // Build and warm entirely off to the side; the swap itself is one
  // atomic store. In-flight queries hold the old snapshot's shared_ptr,
  // so it dies only when the last of them finishes.
  WarmSnapshot(*engine);
  engine_.store(std::move(engine), std::memory_order_release);
  swaps_.fetch_add(1, std::memory_order_relaxed);
}

QueryServer::Stats QueryServer::stats() const {
  Stats s;
  s.queries = queries_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.swaps = swaps_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace serve
}  // namespace unn
