#include "serve/query_server.h"

#include <utility>

#include "util/check.h"

namespace unn {
namespace serve {

namespace {

/// The sharding a caller-installed shard set implies for future
/// replacements: its own shape, with the assembled-set marker mapped to
/// a strategy PartitionPoints accepts.
ShardingOptions ImpliedSharding(const ShardedEngine& engine) {
  ShardingOptions s = engine.options();
  if (s.partitioning == Partitioning::kExternal) {
    s.partitioning = Partitioning::kRoundRobin;
  }
  return s;
}

}  // namespace

QueryServer::QueryServer(std::shared_ptr<const ShardedEngine> engine,
                         const Options& options)
    : options_(options),
      sharding_(options.sharding),
      pool_(options.num_threads) {
  UNN_CHECK(engine != nullptr);
  // An explicitly sharded Options wins; otherwise future ReplaceDataset
  // calls keep the shape of the engine the server was given (a server
  // seeded with 4 shards must not silently rebuild monolithic).
  if (sharding_.num_shards <= 1) sharding_ = ImpliedSharding(*engine);
  WarmSnapshot(*engine);
  engine_.store(std::move(engine), std::memory_order_release);
}

QueryServer::QueryServer(std::shared_ptr<const Engine> engine,
                         const Options& options)
    : QueryServer(std::make_shared<const ShardedEngine>(std::move(engine)),
                  options) {}

QueryServer::QueryServer(std::shared_ptr<const Engine> engine)
    : QueryServer(std::move(engine), Options{}) {}

QueryServer::QueryServer(std::vector<core::UncertainPoint> points,
                         const Engine::Config& config, const Options& options)
    : options_(options),
      sharding_(options.sharding),
      pool_(options.num_threads) {
  auto engine = std::make_shared<const ShardedEngine>(
      std::move(points), config, sharding_, &pool_);
  WarmSnapshot(*engine);
  engine_.store(std::move(engine), std::memory_order_release);
}

QueryServer::QueryServer(std::vector<core::UncertainPoint> points,
                         const Engine::Config& config)
    : QueryServer(std::move(points), config, Options{}) {}

void QueryServer::WarmSnapshot(const ShardedEngine& engine) {
  for (Engine::QueryType type : options_.warm) engine.Warmup(type, &pool_);
}

std::future<Engine::QueryResult> QueryServer::Submit(
    geom::Vec2 q, const Engine::QuerySpec& spec) {
  // Pin the snapshot at submission: the request is answered against the
  // dataset that was current when the server accepted it, even if a swap
  // lands before a worker picks it up.
  std::shared_ptr<const ShardedEngine> snap = sharded_snapshot();
  auto promise = std::make_shared<std::promise<Engine::QueryResult>>();
  std::future<Engine::QueryResult> result = promise->get_future();
  // The worker fans a multi-shard query back out across the pool (nested
  // ParallelFor; on a stopping pool it degrades to the worker alone).
  ThreadPool* fan = snap->num_shards() > 1 ? &pool_ : nullptr;
  pool_.Post(
      [snap = std::move(snap), promise = std::move(promise), q, spec, fan] {
        // Route through QueryMany so degenerate spec parameters follow
        // the documented definitions instead of tripping single-query
        // CHECKs.
        std::span<const geom::Vec2> one(&q, 1);
        promise->set_value(std::move(snap->QueryMany(one, spec, fan)[0]));
      });
  queries_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

std::vector<Engine::QueryResult> QueryServer::QueryBatch(
    std::span<const geom::Vec2> queries, const Engine::QuerySpec& spec) {
  std::shared_ptr<const ShardedEngine> snap = sharded_snapshot();
  auto results = QueryMany(*snap, queries, spec, &pool_);
  batches_.fetch_add(1, std::memory_order_relaxed);
  queries_.fetch_add(queries.size(), std::memory_order_relaxed);
  return results;
}

void QueryServer::ReplaceDataset(std::vector<core::UncertainPoint> points) {
  ReplaceImpl(std::move(points), nullptr);
}

void QueryServer::ReplaceDataset(std::vector<core::UncertainPoint> points,
                                 const ShardingOptions& sharding) {
  ReplaceImpl(std::move(points), &sharding);
}

void QueryServer::ReplaceImpl(std::vector<core::UncertainPoint> points,
                              const ShardingOptions* sharding) {
  std::lock_guard<std::mutex> lock(replace_mu_);
  // Read the config under the lock: a racing ReplaceShardedEngine may
  // have just installed a snapshot with different accuracy settings, and
  // "same config as the current snapshot" must mean the latest one.
  const Engine::Config config = sharded_snapshot()->config();
  if (sharding != nullptr) sharding_ = *sharding;
  InstallLocked(std::make_shared<const ShardedEngine>(std::move(points),
                                                      config, sharding_,
                                                      &pool_));
}

void QueryServer::ReplaceEngine(std::shared_ptr<const Engine> engine) {
  UNN_CHECK(engine != nullptr);
  ReplaceShardedEngine(
      std::make_shared<const ShardedEngine>(std::move(engine)));
}

void QueryServer::ReplaceShardedEngine(
    std::shared_ptr<const ShardedEngine> engine) {
  UNN_CHECK(engine != nullptr);
  std::lock_guard<std::mutex> lock(replace_mu_);
  // A caller-installed shard set is an explicit statement of shape:
  // later ReplaceDataset calls keep it.
  sharding_ = ImpliedSharding(*engine);
  InstallLocked(std::move(engine));
}

void QueryServer::InstallLocked(std::shared_ptr<const ShardedEngine> engine) {
  // Build and warm entirely off to the side; the swap itself is one
  // atomic store. In-flight queries hold the old snapshot's shared_ptr,
  // so it dies only when the last of them finishes.
  WarmSnapshot(*engine);
  engine_.store(std::move(engine), std::memory_order_release);
  swaps_.fetch_add(1, std::memory_order_relaxed);
}

QueryServer::Stats QueryServer::stats() const {
  Stats s;
  s.queries = queries_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.swaps = swaps_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace serve
}  // namespace unn
