#ifndef UNN_SERVE_SHARD_MERGE_H_
#define UNN_SERVE_SHARD_MERGE_H_

#include <span>
#include <utility>
#include <vector>

#include "core/uncertain_point.h"
#include "engine/engine.h"
#include "geom/vec2.h"

/// \file shard_merge.h
/// Pure answer-recombination primitives for sharded serving: given
/// per-shard answers from K independent Engines that together own one
/// logical point set, produce the global answer with per-query-type
/// semantics (docs/QUERY_SEMANTICS.md has the full contract):
///
///   * expected-distance NN    — min-merge of per-shard (argmin, value);
///   * NN!=0                   — union of per-shard candidate sets,
///                               filtered by the merged Delta envelope
///                               (exact);
///   * probability queries     — candidate union + re-quantification:
///                               under independent points the survival
///                               function of the whole set factors into
///                               per-shard survival products, so
///                               re-quantifying over the union of
///                               per-shard candidates reproduces the
///                               exact global probabilities whenever the
///                               shard backends report complete
///                               candidate sets (estimator backends may
///                               omit points of probability < eps — the
///                               documented candidate-merge
///                               approximation).
///
/// Every function here is stateless and reads only const Engine state, so
/// all of them are thread-safe and may run concurrently with each other
/// and with shard queries. None of them builds Engine structures beyond
/// what the per-shard calls already built.

namespace unn {
namespace serve {

/// One shard as the merge layer sees it: a (thread-safe) Engine over a
/// subset of the dataset plus that subset's global ids — global_ids[j] is
/// the dataset id of the shard's local point j. Both pointees must
/// outlive the view.
struct ShardView {
  const Engine* engine = nullptr;
  const std::vector<int>* global_ids = nullptr;
};

/// Merges per-shard Delta envelopes (Engine::MaxDistEnvelope) into the
/// global envelope: the two smallest max-distances over the whole dataset
/// are among the per-shard two smallest. The returned argbest is a GLOBAL
/// id (unlike Engine::MaxDistEnvelope, whose argbest is shard-local), with
/// minimum-value ties broken toward the smaller global id — identical to
/// the single-Engine scan whenever each shard's id list is ascending (as
/// PartitionPoints produces), even for coincident supports split across
/// shards. O(K); thread-safe.
core::DeltaEnvelope MergeEnvelopes(std::span<const core::DeltaEnvelope> local,
                                   std::span<const ShardView> shards);

/// Exact NN!=0 merge: per-shard candidate sets are supersets of their
/// slice of the global answer (a shard's envelope is at least the global
/// one), so filtering the union by the merged envelope's per-id threshold
/// recovers exactly the single-Engine answer. Returns sorted global ids.
/// O(sum of candidate sizes + K); thread-safe.
std::vector<int> MergeNonzero(std::span<const ShardView> shards,
                              std::span<const std::vector<int>> local_nonzero,
                              std::span<const core::DeltaEnvelope> local_env,
                              geom::Vec2 q);

/// One shard's expected-distance winner: its local argmin as a global id
/// plus E[d(q, P_i)] for that point (Engine::ExpectedDistance).
struct ExpectedCandidate {
  int global_id = -1;
  double expected_dist = 0.0;
};

/// Min-merge for the expected-distance NN: the global argmin is the shard
/// winner with the smallest expected distance (ties toward the smaller
/// global id). Exact up to the quadrature tolerance of the per-shard
/// values. O(K); thread-safe.
int MergeExpected(std::span<const ExpectedCandidate> winners);

/// Result of a cross-shard re-quantification: global quantification
/// probabilities plus whether the re-quantification step itself was exact
/// (survival-product integration / accumulation over a model-homogeneous
/// candidate union) or the documented Monte-Carlo fallback for mixed
/// unions. Candidate completeness is a separate dimension: with exact
/// shard backends the union provably contains every point of positive
/// global probability, so `requantified_exactly` then means the merged
/// answer equals the single-Engine exact answer.
struct MergedProbabilities {
  /// (global id, pi) sorted by increasing id.
  std::vector<std::pair<int, double>> probs;
  /// True when the re-quantifier was exact (all-discrete or all-disk
  /// candidate union); false for the Monte-Carlo mixed-model fallback,
  /// whose estimates carry the usual eps guarantee.
  bool requantified_exactly = true;
};

/// Candidate-union + re-quantification. `local_probs[s]` are shard s's
/// (local id, estimate) candidates (Engine::Probabilities); `local_env[s]`
/// its Delta envelope — each shard's envelope argmin joins the union so
/// the union's own envelope equals the global one, which makes the
/// re-quantification self-truncating (omitted points have min-distance at
/// least the global envelope, i.e. survival exactly 1 over every
/// integration range). `eps` is the accuracy for the mixed-model
/// Monte-Carlo fallback. Cost: O(U log U) accumulation for discrete
/// unions of total site count U, adaptive quadrature per candidate for
/// disk unions, one Monte-Carlo build + query for mixed unions.
/// Thread-safe.
MergedProbabilities MergeProbabilities(
    std::span<const ShardView> shards,
    std::span<const std::vector<std::pair<int, double>>> local_probs,
    std::span<const core::DeltaEnvelope> local_env, geom::Vec2 q,
    const Engine::Config& config, double eps);

}  // namespace serve
}  // namespace unn

#endif  // UNN_SERVE_SHARD_MERGE_H_
