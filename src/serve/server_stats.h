#ifndef UNN_SERVE_SERVER_STATS_H_
#define UNN_SERVE_SERVER_STATS_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>

#include "engine/engine.h"

/// \file server_stats.h
/// Serving observability: the structured ServerStats snapshot QueryServer
/// reports, and the lock-free log-bucketed latency histogram behind its
/// percentiles. Everything here follows the relaxed-counter contract the
/// old three-counter Stats had (see ServerStats below); nothing on the
/// serving hot path takes a lock or issues a fence for accounting.

namespace unn {
namespace serve {

/// Number of Engine::QueryType values (the per-type stats arrays are
/// indexed by `static_cast<int>(type)`).
inline constexpr int kNumQueryTypes = 5;

/// Result-cache counters (one consistent-enough snapshot; see the
/// ServerStats ordering contract).
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;  ///< Entries removed to respect the byte budget.
  uint64_t entries = 0;    ///< Currently resident entries.
  uint64_t bytes = 0;      ///< Currently resident bytes (approximate).
};

/// Percentiles of one latency population, in microseconds. Percentile
/// values are upper bounds of log-spaced buckets (~13% resolution), so
/// they are estimates, not exact order statistics.
struct LatencySummary {
  uint64_t count = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
};

/// A fixed log-spaced histogram over [1us, ~100s] with relaxed atomic
/// buckets: Record is wait-free (one relaxed fetch_add), Summarize reads
/// a relaxed snapshot. Concurrent Record/Summarize is safe; a summary
/// taken under traffic may miss in-flight increments.
class LatencyHistogram {
 public:
  static constexpr int kBuckets = 128;

  void Record(std::chrono::microseconds latency) {
    int64_t us = latency.count();
    buckets_[BucketIndex(us)].fetch_add(1, std::memory_order_relaxed);
  }

  /// p50/p95/p99 over everything recorded so far (upper-bound estimates;
  /// zeros when nothing was recorded).
  LatencySummary Summarize() const {
    std::array<uint64_t, kBuckets> snap;
    LatencySummary s;
    for (int i = 0; i < kBuckets; ++i) {
      snap[i] = buckets_[i].load(std::memory_order_relaxed);
      s.count += snap[i];
    }
    if (s.count == 0) return s;
    s.p50_us = Percentile(snap, s.count, 0.50);
    s.p95_us = Percentile(snap, s.count, 0.95);
    s.p99_us = Percentile(snap, s.count, 0.99);
    return s;
  }

  /// The upper edge of bucket `i` in microseconds (exposed for tests).
  static double BucketUpperUs(int i) {
    // Geometric spacing: bucket 0 tops at 1us, the last at ~1e8us
    // (100 s); ratio 1e8^(1/127) ~= 1.156.
    return Boundaries()[i];
  }

 private:
  static const std::array<double, kBuckets>& Boundaries() {
    static const std::array<double, kBuckets> b = [] {
      std::array<double, kBuckets> out;
      double log_ratio = 8.0 / (kBuckets - 1);  // log10(1e8) spread.
      for (int i = 0; i < kBuckets; ++i) {
        out[i] = std::pow(10.0, log_ratio * i);
      }
      return out;
    }();
    return b;
  }

  static int BucketIndex(int64_t us) {
    const auto& b = Boundaries();
    double v = us < 1 ? 1.0 : static_cast<double>(us);
    int idx = static_cast<int>(
        std::lower_bound(b.begin(), b.end(), v) - b.begin());
    return std::min(idx, kBuckets - 1);
  }

  static double Percentile(const std::array<uint64_t, kBuckets>& snap,
                           uint64_t total, double p) {
    uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(total));
    if (rank >= total) rank = total - 1;
    uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += snap[i];
      if (seen > rank) return Boundaries()[i];
    }
    return Boundaries()[kBuckets - 1];
  }

  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
};

/// The structured QueryServer stats snapshot (successor of the historical
/// three-counter Stats struct — `queries` / `batches` / `swaps` keep
/// their names and meanings, so existing readers compile unchanged).
///
/// Ordering contract (inherited from the old counters): every counter is
/// maintained with relaxed atomics. Each is individually monotone and
/// no increment is ever lost, but a concurrent reader may observe them
/// in any relative order — e.g. a swap before the queries that preceded
/// it, or `cache.hits + cache.misses` momentarily behind `queries`. A
/// snapshot taken after the server quiesces is exact.
struct ServerStats {
  // Traffic.
  uint64_t queries = 0;  ///< Single queries + batched queries accepted.
  uint64_t batches = 0;  ///< QueryBatch calls.
  uint64_t swaps = 0;    ///< Dataset replacements.
  std::array<uint64_t, kNumQueryTypes> queries_by_type{};

  // QoS outcomes.
  uint64_t shed = 0;               ///< Refused by admission control.
  uint64_t degraded = 0;           ///< Answered by the degraded backend.
  uint64_t deadline_exceeded = 0;  ///< Dropped past their deadline.

  // Result cache.
  CacheStats cache;

  /// Per-type serving latency (admission to completion) over every
  /// answered request — computed, degraded and cache-hit alike; refused
  /// requests (shed / deadline-exceeded) are excluded.
  std::array<LatencySummary, kNumQueryTypes> latency_by_type{};

  const LatencySummary& latency(Engine::QueryType type) const {
    return latency_by_type[static_cast<int>(type)];
  }
};

}  // namespace serve
}  // namespace unn

#endif  // UNN_SERVE_SERVER_STATS_H_
