#ifndef UNN_SERVE_SERVER_STATS_H_
#define UNN_SERVE_SERVER_STATS_H_

#include <array>
#include <cstdint>

#include "engine/engine.h"

/// \file server_stats.h
/// Serving observability: the structured ServerStats snapshot QueryServer
/// reports. The counters behind it live in the server's obs::Registry
/// (src/obs/metrics.h) — ServerStats is the stable, struct-shaped view
/// reconstructed from those handles. Everything here follows the
/// relaxed-counter contract the old three-counter Stats had (see
/// ServerStats below); nothing on the serving hot path takes a lock or
/// issues a fence for accounting.

namespace unn {
namespace serve {

/// Number of Engine::QueryType values (the per-type stats arrays are
/// indexed by `static_cast<int>(type)`).
inline constexpr int kNumQueryTypes = 5;

/// Result-cache counters (one consistent-enough snapshot; see the
/// ServerStats ordering contract).
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;  ///< Entries removed to respect the byte budget.
  uint64_t entries = 0;    ///< Currently resident entries.
  uint64_t bytes = 0;      ///< Currently resident bytes (approximate).
};

/// Percentiles of one latency population, in microseconds. Values come
/// from the log-bucketed obs::Histogram (src/obs/metrics.h): each is the
/// bucket upper boundary clamped to the observed maximum, so they are
/// upper-bound estimates (~16% resolution), always ordered
/// p50 <= p95 <= p99, exact for a single sample, and zero when empty.
struct LatencySummary {
  uint64_t count = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
};

/// The structured QueryServer stats snapshot (successor of the historical
/// three-counter Stats struct — `queries` / `batches` / `swaps` keep
/// their names and meanings, so existing readers compile unchanged).
///
/// Ordering contract (inherited from the old counters): every counter is
/// maintained with relaxed atomics. Each is individually monotone and
/// no increment is ever lost, but a concurrent reader may observe them
/// in any relative order — e.g. a swap before the queries that preceded
/// it, or `cache.hits + cache.misses` momentarily behind `queries`. A
/// snapshot taken after the server quiesces is exact.
struct ServerStats {
  // Traffic.
  uint64_t queries = 0;  ///< Single queries + batched queries accepted.
  uint64_t batches = 0;  ///< QueryBatch calls.
  uint64_t swaps = 0;    ///< Dataset replacements.
  std::array<uint64_t, kNumQueryTypes> queries_by_type{};

  // QoS outcomes.
  uint64_t shed = 0;               ///< Refused by admission control.
  uint64_t degraded = 0;           ///< Answered by the degraded backend.
  uint64_t deadline_exceeded = 0;  ///< Dropped past their deadline.

  // Result cache.
  CacheStats cache;

  /// Per-type serving latency (admission to completion) over every
  /// answered request — computed, degraded and cache-hit alike; refused
  /// requests (shed / deadline-exceeded) are excluded.
  std::array<LatencySummary, kNumQueryTypes> latency_by_type{};

  const LatencySummary& latency(Engine::QueryType type) const {
    return latency_by_type[static_cast<int>(type)];
  }
};

}  // namespace serve
}  // namespace unn

#endif  // UNN_SERVE_SERVER_STATS_H_
