#include "serve/parallel.h"

#include <utility>

#include "util/check.h"

namespace unn {
namespace serve {

std::vector<Engine::QueryResult> QueryMany(const Engine& engine,
                                           std::span<const geom::Vec2> queries,
                                           const Engine::QuerySpec& spec,
                                           ThreadPool* pool) {
  UNN_CHECK(pool != nullptr);
  std::vector<Engine::QueryResult> results(queries.size());
  if (queries.empty()) return results;
  engine.Warmup(spec);
  pool->ParallelFor(queries.size(), [&](size_t begin, size_t end) {
    auto block = engine.QueryMany(queries.subspan(begin, end - begin), spec);
    for (size_t i = 0; i < block.size(); ++i) {
      results[begin + i] = std::move(block[i]);
    }
  });
  return results;
}

std::vector<Engine::QueryResult> QueryMany(const ShardedEngine& engine,
                                           std::span<const geom::Vec2> queries,
                                           const Engine::QuerySpec& spec,
                                           ThreadPool* pool) {
  UNN_CHECK(pool != nullptr);
  std::vector<Engine::QueryResult> results(queries.size());
  if (queries.empty()) return results;
  engine.Warmup(spec, pool);
  pool->ParallelFor(queries.size(), [&](size_t begin, size_t end) {
    // Queries are the parallel axis; shards are visited serially inside
    // each block (no nested fan-out).
    auto block = engine.QueryMany(queries.subspan(begin, end - begin), spec,
                                  /*pool=*/nullptr);
    for (size_t i = 0; i < block.size(); ++i) {
      results[begin + i] = std::move(block[i]);
    }
  });
  return results;
}

}  // namespace serve
}  // namespace unn
