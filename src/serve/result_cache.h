#ifndef UNN_SERVE_RESULT_CACHE_H_
#define UNN_SERVE_RESULT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "engine/engine.h"
#include "geom/vec2.h"
#include "obs/metrics.h"
#include "serve/server_stats.h"
#include "util/thread_annotations.h"

/// \file result_cache.h
/// The snapshot-keyed query-result cache. Every quantification answer is
/// a pure function of (snapshot, QuerySpec, query point), and QueryServer
/// pins immutable snapshots behind an atomic swap — so a result cache
/// keyed on the *snapshot generation* gets invalidation for free: a
/// ReplaceDataset swap bumps the generation, every old entry stops
/// matching, and the stale entries simply age out of the LRU under the
/// byte budget. No invalidation sweep, no epoch bookkeeping on the read
/// path.
///
/// Keys canonicalize the QuerySpec (parameters a query type ignores are
/// zeroed, so `TopK(k=3)` submitted with any tau hits the same entry) and
/// the query point (-0.0 folds onto +0.0; an optional grid quantum maps
/// nearby points onto one representative entry). Degenerate specs
/// (query_contract::Classify != kRegular) are never cached — their
/// answers are definition-level and their keying is not meaningful.
///
/// With the default `coord_quantum = 0`, a hit returns a stored copy of
/// exactly what the same snapshot computed for exactly that key —
/// bit-identical to recomputation (docs/QUERY_SEMANTICS.md spells out
/// the one estimator-refinement caveat). With a positive quantum, a hit
/// returns the exact answer of the snapped representative point
/// (approximate serving, opt-in).
///
/// Thread safety: the cache is sharded by key hash; each shard is an
/// independent mutex + LRU list + map with 1/num_shards of the byte
/// budget, so concurrent lookups on different shards never contend and
/// critical sections are a few pointer moves. All methods are
/// thread-safe.

namespace unn {
namespace serve {

/// The canonical cache key. Two requests collide exactly when the same
/// snapshot generation must produce the same answer for them.
struct CacheKey {
  uint64_t generation = 0;
  uint32_t type = 0;    ///< static_cast of Engine::QueryType.
  uint64_t param = 0;   ///< Canonicalized tau bits / k; 0 if ignored.
  uint64_t qx = 0;      ///< Canonicalized coordinate (bits or grid index).
  uint64_t qy = 0;

  bool operator==(const CacheKey&) const = default;
};

class ResultCache {
 public:
  struct Options {
    /// Total byte budget across all shards; 0 disables the cache (every
    /// Lookup misses, Insert is a no-op).
    size_t max_bytes = 64u << 20;
    /// Shard count (rounded up to a power of two, clamped to [1, 256]).
    int num_shards = 16;
    /// Query-point quantization step. 0 keys on the exact coordinate
    /// bits (bit-identical hits); > 0 snaps coordinates to a grid of
    /// this pitch, trading exactness for hit rate on near-repeated
    /// queries.
    double coord_quantum = 0.0;
  };

  /// `registry` is where the cache registers its metrics
  /// (`unn_cache_*_total` counters plus the `unn_cache_entries` /
  /// `unn_cache_bytes` gauges); it must outlive the cache. When null the
  /// cache owns a private registry, so standalone use needs no setup —
  /// QueryServer passes its own registry so one DumpMetrics covers both.
  explicit ResultCache(const Options& options,
                       obs::Registry* registry = nullptr);

  /// Builds the canonical key for (generation, spec, q) under `quantum`.
  /// The caller must only key kRegular specs (query_contract::Classify);
  /// parameters the type ignores are zeroed so equivalent specs share an
  /// entry.
  static CacheKey MakeKey(uint64_t generation, const Engine::QuerySpec& spec,
                          geom::Vec2 q, double coord_quantum);
  /// MakeKey with this cache's configured quantum.
  CacheKey Key(uint64_t generation, const Engine::QuerySpec& spec,
               geom::Vec2 q) const {
    return MakeKey(generation, spec, q, options_.coord_quantum);
  }

  /// On hit copies the stored result into `*out`, refreshes the entry's
  /// LRU position and returns true. O(1) expected, one shard mutex.
  bool Lookup(const CacheKey& key, Engine::QueryResult* out);

  /// Stores a copy of `result` under `key`, evicting least-recently-used
  /// entries of the shard (stale generations and live ones alike) until
  /// the shard's byte share is respected. An entry larger than the whole
  /// shard budget is not stored. Re-inserting an existing key refreshes
  /// its value (concurrent computes of the same key race benignly).
  void Insert(const CacheKey& key, const Engine::QueryResult& result);

  /// Drops every entry (test/bench hook; production swaps rely on
  /// generation keying instead). Takes every shard mutex in turn.
  void Clear();

  /// Relaxed-counter snapshot (same ordering contract as ServerStats).
  CacheStats stats() const;

  /// True when the configured budget is 0: callers can skip key building.
  bool disabled() const { return options_.max_bytes == 0; }

  const Options& options() const { return options_; }

 private:
  struct Entry {
    CacheKey key;
    Engine::QueryResult result;
    size_t bytes = 0;
  };
  struct KeyHash {
    size_t operator()(const CacheKey& k) const;
  };
  struct Shard {
    Mutex mu;
    /// Front = most recently used.
    std::list<Entry> lru UNN_GUARDED_BY(mu);
    std::unordered_map<CacheKey, std::list<Entry>::iterator, KeyHash> map
        UNN_GUARDED_BY(mu);
    size_t bytes UNN_GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(const CacheKey& key);
  /// Evicts from `shard`'s tail until its bytes fit `budget`; counts into
  /// evictions_. The capability annotation is parameter-relative: the
  /// caller must hold that shard's mutex.
  void EvictToFit(Shard& shard, size_t budget) UNN_REQUIRES(shard.mu);

  Options options_;
  size_t per_shard_budget_ = 0;
  uint32_t shard_mask_ = 0;
  std::unique_ptr<Shard[]> shards_;

  /// Owned fallback registry when the constructor got none.
  std::unique_ptr<obs::Registry> owned_registry_;
  /// Registry-backed counters (same relaxed ordering contract the old
  /// bare atomics had). Monotone totals are counters; entries/bytes move
  /// both ways, so they are gauges.
  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Counter* insertions_ = nullptr;
  obs::Counter* evictions_ = nullptr;
  obs::Gauge* entries_ = nullptr;
  obs::Gauge* bytes_ = nullptr;
};

}  // namespace serve
}  // namespace unn

#endif  // UNN_SERVE_RESULT_CACHE_H_
