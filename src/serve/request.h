#ifndef UNN_SERVE_REQUEST_H_
#define UNN_SERVE_REQUEST_H_

#include <chrono>

#include "engine/engine.h"
#include "geom/vec2.h"
#include "obs/trace.h"

/// \file request.h
/// The unified serving request/response vocabulary. Every serving
/// entrypoint (QueryServer::Submit, QueryServer::QueryBatch) is defined
/// over these types; the historical (Vec2, QuerySpec) signatures are thin
/// forwarding wrappers. A Request carries the QoS contract — an optional
/// deadline and a scheduling priority — alongside the query itself; a
/// Response says not just what the answer is but how it was produced
/// (computed, served from the result cache, degraded to the cheap
/// backend, or refused) and how long the server held it.

namespace unn {
namespace serve {

/// Scheduling class of a request. The worker pool drains strictly by
/// priority (all queued kHigh tasks before any kNormal before any kLow);
/// within a class, FIFO. Priorities order the queue, they do not preempt
/// a running query.
enum class Priority {
  kHigh = 0,
  kNormal = 1,
  kLow = 2,
};

/// "No deadline": the default for requests that are willing to wait.
inline constexpr std::chrono::steady_clock::time_point kNoDeadline =
    std::chrono::steady_clock::time_point::max();

/// Convenience: a deadline `d` from now on the serving clock.
inline std::chrono::steady_clock::time_point DeadlineAfter(
    std::chrono::steady_clock::duration d) {
  return std::chrono::steady_clock::now() + d;
}

/// One serving request: a query point, what to ask of it, and the QoS
/// contract it rides under. Aggregate — `{q, spec, deadline, priority}`.
struct Request {
  geom::Vec2 q;
  Engine::QuerySpec spec;
  /// Requests whose deadline has passed are answered
  /// `kDeadlineExceeded` without touching a backend — checked at
  /// admission and again when a worker picks the query up, so a request
  /// that aged out while queued is dropped rather than computed.
  std::chrono::steady_clock::time_point deadline = kNoDeadline;
  Priority priority = Priority::kNormal;
  /// Opt-in request tracing: when non-null, the server records a span
  /// tree (admission, cache lookup, queueing, shard fan-out, merge) into
  /// this caller-owned context. The context must outlive the response
  /// future. Null (the default) disables tracing for this request at the
  /// cost of one pointer test per would-be span.
  obs::TraceContext* trace = nullptr;
};

/// How a Response was produced.
enum class ResultSource {
  /// Answered by the snapshot's full backend.
  kComputed,
  /// Served from the snapshot-keyed result cache: bit-identical to
  /// recomputing on the same snapshot (docs/QUERY_SEMANTICS.md).
  kCache,
  /// Overload degraded the request to the cheap (Monte-Carlo) engine:
  /// the answer is an estimate at the degraded accuracy, not the
  /// configured one.
  kDegraded,
  /// Overload shed the request; `result` is empty.
  kShed,
  /// The deadline passed before dispatch; `result` is empty.
  kDeadlineExceeded,
};

/// One serving response. `ok()` distinguishes answered requests from
/// refused ones; refused responses carry a default-initialized result.
struct Response {
  Engine::QueryResult result;
  ResultSource source = ResultSource::kComputed;
  /// Wall-clock the server held the request, admission to completion
  /// (queueing included; ~0 for cache hits and refusals).
  std::chrono::microseconds latency{0};

  bool ok() const {
    return source != ResultSource::kShed &&
           source != ResultSource::kDeadlineExceeded;
  }
};

}  // namespace serve
}  // namespace unn

#endif  // UNN_SERVE_REQUEST_H_
