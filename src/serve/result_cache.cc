#include "serve/result_cache.h"

#include <bit>
#include <cmath>
#include <cstring>
#include <utility>

#include "engine/query_contract.h"
#include "util/check.h"

namespace unn {
namespace serve {

namespace {

/// splitmix64: the standard cheap 64-bit finalizer, good avalanche.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Coordinate canonicalization: with a quantum, the grid index of the
/// nearest lattice point (so every query in a quantum-sized cell shares a
/// key); without one, the exact bit pattern with -0.0 folded onto +0.0
/// (distances cannot tell them apart, so neither may the key).
uint64_t CanonicalCoord(double v, double quantum) {
  if (quantum > 0) {
    return static_cast<uint64_t>(
        static_cast<int64_t>(std::llround(v / quantum)));
  }
  if (v == 0.0) v = 0.0;  // Collapses -0.0.
  return std::bit_cast<uint64_t>(v);
}

/// The bytes an entry charges against the budget: the list node, the map
/// node (approximated) and the heap the result owns.
size_t EntryBytes(const Engine::QueryResult& r) {
  constexpr size_t kNodeOverhead = 128;  // list + map node, amortized.
  return kNodeOverhead +
         r.ranked.capacity() * sizeof(std::pair<int, double>) +
         r.ids.capacity() * sizeof(int);
}

uint32_t RoundUpPow2(uint32_t v) {
  uint32_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

size_t ResultCache::KeyHash::operator()(const CacheKey& k) const {
  uint64_t h = Mix(k.generation);
  h = Mix(h ^ (static_cast<uint64_t>(k.type) << 32) ^ k.param);
  h = Mix(h ^ k.qx);
  h = Mix(h ^ k.qy);
  return static_cast<size_t>(h);
}

ResultCache::ResultCache(const Options& options, obs::Registry* registry)
    : options_(options) {
  int shards = options_.num_shards < 1 ? 1 : options_.num_shards;
  if (shards > 256) shards = 256;
  uint32_t n = RoundUpPow2(static_cast<uint32_t>(shards));
  shard_mask_ = n - 1;
  per_shard_budget_ = options_.max_bytes / n;
  shards_ = std::make_unique<Shard[]>(n);
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<obs::Registry>();
    registry = owned_registry_.get();
  }
  hits_ = registry->GetCounter("unn_cache_hits_total",
                               "Result-cache lookups answered from cache");
  misses_ = registry->GetCounter("unn_cache_misses_total",
                                 "Result-cache lookups that missed");
  insertions_ = registry->GetCounter("unn_cache_insertions_total",
                                     "New entries stored in the cache");
  evictions_ = registry->GetCounter(
      "unn_cache_evictions_total",
      "Entries evicted to respect the byte budget");
  entries_ = registry->GetGauge("unn_cache_entries",
                                "Currently resident cache entries");
  bytes_ = registry->GetGauge("unn_cache_bytes",
                              "Currently resident cache bytes (approx)");
}

CacheKey ResultCache::MakeKey(uint64_t generation,
                              const Engine::QuerySpec& spec, geom::Vec2 q,
                              double coord_quantum) {
  UNN_DCHECK(query_contract::Classify(spec) ==
             query_contract::SpecClass::kRegular);
  CacheKey key;
  key.generation = generation;
  key.type = static_cast<uint32_t>(spec.type);
  // Zero the parameters the type ignores, so equivalent specs collide:
  // only Threshold reads tau, only TopK reads k.
  switch (spec.type) {
    case Engine::QueryType::kThreshold:
      key.param = std::bit_cast<uint64_t>(spec.tau);
      break;
    case Engine::QueryType::kTopK:
      key.param = static_cast<uint64_t>(spec.k);
      break;
    default:
      key.param = 0;
      break;
  }
  key.qx = CanonicalCoord(q.x, coord_quantum);
  key.qy = CanonicalCoord(q.y, coord_quantum);
  return key;
}

ResultCache::Shard& ResultCache::ShardFor(const CacheKey& key) {
  return shards_[KeyHash{}(key) & shard_mask_];
}

bool ResultCache::Lookup(const CacheKey& key, Engine::QueryResult* out) {
  if (disabled()) return false;  // Not a miss: there is no cache.
  Shard& shard = ShardFor(key);
  {
    MutexLock lock(&shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      *out = it->second->result;
      hits_->Inc();
      return true;
    }
  }
  misses_->Inc();
  return false;
}

void ResultCache::EvictToFit(Shard& shard, size_t budget) {
  while (shard.bytes > budget && !shard.lru.empty()) {
    Entry& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    bytes_->Add(-static_cast<double>(victim.bytes));
    entries_->Add(-1);
    evictions_->Inc();
    shard.map.erase(victim.key);
    shard.lru.pop_back();
  }
}

void ResultCache::Insert(const CacheKey& key,
                         const Engine::QueryResult& result) {
  if (disabled()) return;
  size_t bytes = EntryBytes(result);
  if (bytes > per_shard_budget_) return;  // Would evict the whole shard.
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    // Racing computes of the same key: refresh in place.
    Entry& e = *it->second;
    shard.bytes -= e.bytes;
    bytes_->Add(-static_cast<double>(e.bytes));
    e.result = result;
    e.bytes = bytes;
    shard.bytes += bytes;
    bytes_->Add(static_cast<double>(bytes));
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    EvictToFit(shard, per_shard_budget_);
    return;
  }
  shard.lru.push_front(Entry{key, result, bytes});
  shard.map.emplace(key, shard.lru.begin());
  shard.bytes += bytes;
  bytes_->Add(static_cast<double>(bytes));
  entries_->Add(1);
  insertions_->Inc();
  EvictToFit(shard, per_shard_budget_);
}

void ResultCache::Clear() {
  if (disabled()) return;
  for (uint32_t s = 0; s <= shard_mask_; ++s) {
    Shard& shard = shards_[s];
    MutexLock lock(&shard.mu);
    bytes_->Add(-static_cast<double>(shard.bytes));
    entries_->Add(-static_cast<double>(shard.map.size()));
    shard.map.clear();
    shard.lru.clear();
    shard.bytes = 0;
  }
}

CacheStats ResultCache::stats() const {
  CacheStats s;
  s.hits = hits_->Value();
  s.misses = misses_->Value();
  s.insertions = insertions_->Value();
  s.evictions = evictions_->Value();
  // Gauges hold doubles; entry/byte magnitudes stay far below 2^53, so
  // the round trip through double is exact.
  s.entries = static_cast<uint64_t>(entries_->Value());
  s.bytes = static_cast<uint64_t>(bytes_->Value());
  return s;
}

}  // namespace serve
}  // namespace unn
