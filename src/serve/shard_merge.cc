#include "serve/shard_merge.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/exact_pnn.h"
#include "core/monte_carlo_pnn.h"
#include "util/check.h"

namespace unn {
namespace serve {

core::DeltaEnvelope MergeEnvelopes(std::span<const core::DeltaEnvelope> local,
                                   std::span<const ShardView> shards) {
  // DeltaEnvelope::Insert ties toward the smaller global id, so the merge
  // reproduces the single-Engine scan's argbest exactly even when
  // duplicates of the minimum split across shards.
  UNN_CHECK(local.size() == shards.size());
  core::DeltaEnvelope out;
  out.best = std::numeric_limits<double>::infinity();
  out.second = std::numeric_limits<double>::infinity();
  for (size_t s = 0; s < local.size(); ++s) {
    if (local[s].argbest < 0) continue;  // Shard with no envelope sample.
    out.Insert(local[s].best, (*shards[s].global_ids)[local[s].argbest]);
    // The local runner-up has no id (anonymous): it can only tighten
    // `second`, never take the argmin.
    if (std::isfinite(local[s].second)) out.Insert(local[s].second, -1);
  }
  return out;
}

std::vector<int> MergeNonzero(std::span<const ShardView> shards,
                              std::span<const std::vector<int>> local_nonzero,
                              std::span<const core::DeltaEnvelope> local_env,
                              geom::Vec2 q) {
  UNN_CHECK(local_nonzero.size() == shards.size());
  core::DeltaEnvelope env = MergeEnvelopes(local_env, shards);
  std::vector<int> out;
  for (size_t s = 0; s < shards.size(); ++s) {
    const auto& pts = shards[s].engine->points();
    for (int lid : local_nonzero[s]) {
      int gid = (*shards[s].global_ids)[lid];
      double threshold = env.ThresholdFor(gid);
      if (!std::isfinite(threshold) || pts[lid].MinDist(q) < threshold) {
        out.push_back(gid);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

int MergeExpected(std::span<const ExpectedCandidate> winners) {
  int best = -1;
  double best_d = std::numeric_limits<double>::infinity();
  for (const ExpectedCandidate& w : winners) {
    if (w.global_id < 0) continue;
    if (w.expected_dist < best_d ||
        (w.expected_dist == best_d && w.global_id < best)) {
      best_d = w.expected_dist;
      best = w.global_id;
    }
  }
  return best;
}

MergedProbabilities MergeProbabilities(
    std::span<const ShardView> shards,
    std::span<const std::vector<std::pair<int, double>>> local_probs,
    std::span<const core::DeltaEnvelope> local_env, geom::Vec2 q,
    const Engine::Config& config, double eps) {
  UNN_CHECK(local_probs.size() == shards.size());
  UNN_CHECK(local_env.size() == shards.size());

  // Candidate union: every shard's positive-probability candidates plus
  // its envelope argmin (the latter pins the union's Delta envelope to the
  // global one, so points outside the union provably cannot contribute —
  // their survival factor is exactly 1 below the global envelope).
  struct Cand {
    int gid;
    const core::UncertainPoint* pt;
  };
  std::vector<Cand> cands;
  for (size_t s = 0; s < shards.size(); ++s) {
    const auto& pts = shards[s].engine->points();
    const auto& gids = *shards[s].global_ids;
    for (const auto& [lid, pi] : local_probs[s]) {
      cands.push_back({gids[lid], &pts[lid]});
    }
    if (local_env[s].argbest >= 0) {
      cands.push_back({gids[local_env[s].argbest], &pts[local_env[s].argbest]});
    }
  }
  std::sort(cands.begin(), cands.end(),
            [](const Cand& a, const Cand& b) { return a.gid < b.gid; });
  cands.erase(std::unique(cands.begin(), cands.end(),
                          [](const Cand& a, const Cand& b) {
                            return a.gid == b.gid;
                          }),
              cands.end());

  MergedProbabilities out;
  if (cands.empty()) return out;

  bool all_discrete = true;
  bool all_disk = true;
  std::vector<core::UncertainPoint> union_pts;
  union_pts.reserve(cands.size());
  for (const Cand& c : cands) {
    all_discrete = all_discrete && !c.pt->is_disk();
    all_disk = all_disk && c.pt->is_disk();
    union_pts.push_back(*c.pt);
  }

  // Re-quantification over the union. The homogeneous paths are the exact
  // per-shard survival-product recombination (the accumulation/integration
  // below IS the product over every union point's survival function); the
  // mixed fallback estimates within eps via Monte Carlo.
  std::vector<std::pair<int, double>> local;  // (union index, pi)
  if (all_discrete) {
    local = core::DiscreteQuantification(union_pts, q);
  } else if (all_disk) {
    local = core::IntegrateAllQuantifications(union_pts, q, config.tol);
  } else {
    out.requantified_exactly = false;
    core::MonteCarloPnnOptions opts;
    opts.eps = eps;
    opts.delta = config.delta;
    opts.seed = config.seed;
    opts.s_override = config.mc_samples_override;
    core::MonteCarloPnn mc(union_pts, opts);
    local = mc.Query(q);
  }

  out.probs.reserve(local.size());
  for (const auto& [uid, pi] : local) {
    out.probs.push_back({cands[uid].gid, pi});
  }
  // `local` is sorted by union index and union indices are sorted by
  // global id, so out.probs is already sorted by global id.
  return out;
}

}  // namespace serve
}  // namespace unn
