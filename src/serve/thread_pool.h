#ifndef UNN_SERVE_THREAD_POOL_H_
#define UNN_SERVE_THREAD_POOL_H_

#include <array>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <utility>
#include <vector>

#include "util/thread_annotations.h"

/// \file thread_pool.h
/// The fixed-size worker pool underneath the serving layer: a mutex +
/// condition-variable task queue feeding N `std::thread` workers. Two entry
/// points cover the serving layer's needs:
///
///   * Post(fn)            — fire-and-forget task (QueryServer::Submit
///                           wraps it with a promise);
///   * ParallelFor(n, fn)  — run fn(begin, end) over a blocked partition
///                           of [0, n) and wait; the caller thread works
///                           too, so a pool of T threads applies T + 1
///                           workers and a 1-thread pool still overlaps.
///
/// The queue is priority-ordered: three strict classes (kHigh / kNormal /
/// kLow, see TaskPriority), FIFO within a class, workers always draining
/// the highest non-empty class first. QueryServer maps serve::Priority
/// onto this, which is what lets low-priority traffic queue behind
/// interactive traffic under load without any extra scheduler. Priorities
/// order dispatch; they never preempt a running task.
///
/// Tasks must not throw (queries propagate errors through their results);
/// the pool std::terminates on an escaping exception, like a joining
/// thread would.

namespace unn {
namespace serve {

/// Dispatch class of a posted task; strict priority, FIFO within a class.
enum class TaskPriority {
  kHigh = 0,
  kNormal = 1,
  kLow = 2,
};

class ThreadPool {
 public:
  struct Options {
    /// <= 0 picks std::thread::hardware_concurrency().
    int num_threads = 0;
    /// When non-empty, every worker pins itself to this CPU set before
    /// serving tasks (util::PinCurrentThreadToCpus) — how a caller
    /// co-locates a pool's workers on one NUMA node next to the data
    /// they serve (ShardedEngine::shard_cpus). Placement is a hint: a
    /// failed pin leaves that worker on the inherited affinity and is
    /// not an error. Empty (the default) pins nothing, so the default
    /// pool is bit-for-bit the pre-Options pool.
    std::vector<int> pin_cpus;
  };

  explicit ThreadPool(const Options& options);
  /// `num_threads` <= 0 picks std::thread::hardware_concurrency().
  explicit ThreadPool(int num_threads = 0)
      : ThreadPool(Options{num_threads, {}}) {}
  ~ThreadPool();

  /// Flips the pool to stopping without joining: subsequent Post
  /// CHECK-fails and TryPost returns false, while already-queued tasks
  /// still drain and the workers keep running until the destructor joins
  /// them. Idempotent and thread-safe. Lets an owner refuse new work
  /// before its own teardown begins (QueryServer's shutdown drain).
  void BeginShutdown() UNN_EXCLUDES(mu_);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Number of queued-but-not-yet-dispatched tasks across all priority
  /// classes. Takes the queue lock; intended for observability dumps, not
  /// the hot path. The value is a point-in-time reading and may be stale
  /// by the time the caller looks at it.
  int queue_depth() const UNN_EXCLUDES(mu_);

  /// Enqueues one task for any worker at the given priority (dispatched
  /// after every queued task of a higher class, before any of a lower
  /// one). Safe from any thread, including from inside a running task.
  /// O(1); CHECK-fails on a stopping pool.
  void Post(std::function<void()> fn,
            TaskPriority priority = TaskPriority::kNormal) UNN_EXCLUDES(mu_);

  /// Post that reports instead of CHECK-failing on a stopping pool:
  /// returns false when the destructor has already begun, which is how
  /// callers racing shutdown degrade to running the task inline
  /// (QueryServer::Submit) or alone (ParallelFor). `fn` is consumed only
  /// on success — on failure it is left intact, so the caller can still
  /// run it itself. O(1).
  bool TryPost(std::function<void()>&& fn,
               TaskPriority priority = TaskPriority::kNormal) UNN_EXCLUDES(mu_);

  /// Splits [0, n) into contiguous blocks (about 2 per participant, so a
  /// straggler block cannot dominate the makespan), runs `fn(begin, end)`
  /// on the workers plus the calling thread, and returns when every block
  /// is done. `fn` must be safe to call concurrently with itself. Safe on
  /// a stopping pool (a draining task may still fan out, e.g. a sharded
  /// query): no helpers are posted and the calling thread runs every
  /// block itself.
  void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& fn);

 private:
  void WorkerLoop();
  /// True when every priority class is empty; the UNN_REQUIRES makes the
  /// old "mu_ must be held" comment a compile-time contract.
  bool QueuesEmptyLocked() const UNN_REQUIRES(mu_);

  mutable Mutex mu_;
  CondVar cv_;
  /// One FIFO per TaskPriority, drained in class order.
  std::array<std::deque<std::function<void()>>, 3> queues_ UNN_GUARDED_BY(mu_);
  bool stopping_ UNN_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace serve
}  // namespace unn

#endif  // UNN_SERVE_THREAD_POOL_H_
