#include "serve/sharding.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "engine/query_contract.h"
#include "util/check.h"
#include "util/numa.h"

namespace unn {
namespace serve {

namespace {

using query_contract::SortByEstimate;

/// Recursive kd-style splitter: hands `ids` out to `target` shards in
/// proportion, splitting by the median region center along the wider
/// axis. Appends each finished shard's id list to `out`.
void SpatialSplit(const std::vector<core::UncertainPoint>& points,
                  std::vector<int>* ids, size_t begin, size_t end, int target,
                  std::vector<std::vector<int>>* out) {
  if (target <= 1 || end - begin <= 1) {
    out->emplace_back(ids->begin() + begin, ids->begin() + end);
    return;
  }
  geom::Box box;
  for (size_t i = begin; i < end; ++i) {
    box.Expand(points[(*ids)[i]].Bounds().Center());
  }
  bool split_x = box.Width() >= box.Height();
  int left_target = target / 2;
  size_t mid = begin + (end - begin) * static_cast<size_t>(left_target) /
                           static_cast<size_t>(target);
  // lint:allow(kd-builder) data partitioner for shard assignment, not a
  // query index — kd *query* structures belong in src/spatial/ (PR 5).
  std::nth_element(ids->begin() + begin, ids->begin() + mid,
                   ids->begin() + end, [&](int a, int b) {
                     geom::Vec2 ca = points[a].Bounds().Center();
                     geom::Vec2 cb = points[b].Bounds().Center();
                     return split_x ? ca.x < cb.x : ca.y < cb.y;
                   });
  SpatialSplit(points, ids, begin, mid, left_target, out);
  SpatialSplit(points, ids, mid, end, target - left_target, out);
}

}  // namespace

std::vector<std::vector<int>> PartitionPoints(
    const std::vector<core::UncertainPoint>& points,
    const ShardingOptions& options) {
  UNN_CHECK_MSG(options.partitioning != Partitioning::kExternal,
                "kExternal marks assembled shard sets; pick a strategy");
  int n = static_cast<int>(points.size());
  int k = std::clamp(options.num_shards, 1, std::max(n, 1));
  std::vector<std::vector<int>> out;
  if (options.partitioning == Partitioning::kRoundRobin) {
    out.resize(k);
    for (int i = 0; i < n; ++i) out[i % k].push_back(i);
  } else {
    std::vector<int> ids(n);
    std::iota(ids.begin(), ids.end(), 0);
    SpatialSplit(points, &ids, 0, ids.size(), k, &out);
  }
  out.erase(std::remove_if(out.begin(), out.end(),
                           [](const std::vector<int>& s) { return s.empty(); }),
            out.end());
  for (auto& shard : out) std::sort(shard.begin(), shard.end());
  return out;
}

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

ShardedEngine::ShardedEngine(std::vector<core::UncertainPoint> points,
                             const Engine::Config& config,
                             const ShardingOptions& options,
                             ThreadPool* build_pool)
    : config_(config),
      options_(options),
      size_(static_cast<int>(points.size())) {
  UNN_CHECK(!points.empty());
  global_ids_ = PartitionPoints(points, options);
  engines_.resize(global_ids_.size());
  if (options_.numa_aware) {
    // Placement activates only when there is more than one node to place
    // across; a single-node machine (the common CI container) stays on
    // the exact NUMA-oblivious code path.
    util::NumaTopology topo = util::DetectNumaTopology();
    if (topo.num_nodes() > 1) {
      shard_nodes_.resize(global_ids_.size());
      shard_cpus_.resize(global_ids_.size());
      for (size_t s = 0; s < global_ids_.size(); ++s) {
        shard_nodes_[s] = static_cast<int>(s) % topo.num_nodes();
        shard_cpus_[s] = topo.node_cpus[shard_nodes_[s]];
      }
    }
  }
  ForEachShard(build_pool, [&](int s) {
    // With active placement, pin the building thread to the shard's node
    // for the build so first-touch allocation lands there; restore the
    // thread's affinity afterwards (build pools are shared). A failed pin
    // just builds unplaced — placement never affects the result.
    std::vector<int> saved;
    bool pinned = false;
    if (!shard_cpus_.empty()) {
      saved = util::CurrentThreadCpus();
      pinned = util::PinCurrentThreadToCpus(shard_cpus_[s]);
    }
    std::vector<core::UncertainPoint> subset;
    subset.reserve(global_ids_[s].size());
    for (int gid : global_ids_[s]) subset.push_back(points[gid]);
    engines_[s] = std::make_shared<const Engine>(std::move(subset), config_);
    if (pinned && !saved.empty()) util::PinCurrentThreadToCpus(saved);
  });
  views_.reserve(engines_.size());
  for (size_t s = 0; s < engines_.size(); ++s) {
    views_.push_back({engines_[s].get(), &global_ids_[s]});
  }
}

ShardedEngine::ShardedEngine(
    std::vector<std::shared_ptr<const Engine>> shard_engines,
    std::vector<std::vector<int>> shard_global_ids)
    : engines_(std::move(shard_engines)),
      global_ids_(std::move(shard_global_ids)) {
  UNN_CHECK(!engines_.empty());
  UNN_CHECK(engines_.size() == global_ids_.size());
  size_ = 0;
  for (size_t s = 0; s < engines_.size(); ++s) {
    UNN_CHECK(engines_[s] != nullptr);
    UNN_CHECK(engines_[s]->size() ==
              static_cast<int>(global_ids_[s].size()));
    size_ += engines_[s]->size();
  }
  // The id lists must partition [0, size_).
  std::vector<bool> seen(size_, false);
  for (const auto& gids : global_ids_) {
    for (int gid : gids) {
      UNN_CHECK_MSG(gid >= 0 && gid < size_ && !seen[gid],
                    "shard ids must partition [0, total)");
      seen[gid] = true;
    }
  }
  config_ = engines_[0]->config();
  options_.num_shards = static_cast<int>(engines_.size());
  options_.partitioning = Partitioning::kExternal;
  views_.reserve(engines_.size());
  for (size_t s = 0; s < engines_.size(); ++s) {
    views_.push_back({engines_[s].get(), &global_ids_[s]});
  }
}

ShardedEngine::ShardedEngine(std::shared_ptr<const Engine> engine) {
  UNN_CHECK(engine != nullptr);
  size_ = engine->size();
  config_ = engine->config();
  options_.num_shards = 1;
  options_.partitioning = Partitioning::kExternal;
  global_ids_.emplace_back(size_);
  std::iota(global_ids_[0].begin(), global_ids_[0].end(), 0);
  engines_.push_back(std::move(engine));
  views_.push_back({engines_[0].get(), &global_ids_[0]});
}

// ---------------------------------------------------------------------------
// Fan-out plumbing
// ---------------------------------------------------------------------------

void ShardedEngine::ForEachShard(ThreadPool* pool,
                                 const std::function<void(int)>& fn,
                                 obs::TraceNode trace) const {
  size_t shards = engines_.size();
  auto run = [&](int s) {
    // One span per shard visit; a null trace context makes this a
    // pointer test (the disabled-tracing contract of obs/trace.h).
    obs::ScopedSpan span(trace, "shard_query", s);
    fn(s);
  };
  if (pool == nullptr || shards <= 1) {
    for (size_t s = 0; s < shards; ++s) run(static_cast<int>(s));
    return;
  }
  pool->ParallelFor(shards, [&](size_t begin, size_t end) {
    for (size_t s = begin; s < end; ++s) run(static_cast<int>(s));
  });
}

int ShardedEngine::StructuresBuilt() const {
  int total = 0;
  for (const auto& e : engines_) total += e->StructuresBuilt();
  return total;
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

MergedProbabilities ShardedEngine::MergedProbs(geom::Vec2 q, double eps_needed,
                                               ThreadPool* pool,
                                               obs::TraceNode trace) const {
  size_t shards = engines_.size();
  std::vector<std::vector<std::pair<int, double>>> local(shards);
  std::vector<core::DeltaEnvelope> env(shards);
  {
    obs::ScopedSpan fan(trace, "shard_fanout",
                        static_cast<std::int64_t>(shards));
    ForEachShard(
        pool,
        [&](int s) {
          local[s] = engines_[s]->Probabilities(q, eps_needed);
          env[s] = engines_[s]->MaxDistEnvelope(q);
        },
        fan.node());
  }
  obs::ScopedSpan merge(trace, "merge");
  double eps = eps_needed > 0 ? std::min(eps_needed, config_.eps) : config_.eps;
  return MergeProbabilities(views_, local, env, q, config_, eps);
}

std::vector<std::pair<int, double>> ShardedEngine::Probabilities(
    geom::Vec2 q, double eps_needed, ThreadPool* pool,
    obs::TraceNode trace) const {
  if (num_shards() == 1) {
    obs::ScopedSpan span(trace, "shard_query", 0);
    std::vector<std::pair<int, double>> out =
        engines_[0]->Probabilities(q, eps_needed);
    for (auto& [id, pi] : out) id = global_ids_[0][id];
    return out;
  }
  return MergedProbs(q, eps_needed, pool, trace).probs;
}

int ShardedEngine::MostProbableNn(geom::Vec2 q, ThreadPool* pool,
                                  obs::TraceNode trace) const {
  if (num_shards() == 1) {
    obs::ScopedSpan span(trace, "shard_query", 0);
    int lid = engines_[0]->MostProbableNn(q);
    return lid < 0 ? lid : global_ids_[0][lid];
  }
  int best = -1;
  double best_pi = -1.0;
  for (auto [gid, pi] : MergedProbs(q, 0.0, pool, trace).probs) {
    if (pi > best_pi) {
      best = gid;
      best_pi = pi;
    }
  }
  return best;
}

int ShardedEngine::ExpectedDistanceNn(geom::Vec2 q, ThreadPool* pool,
                                      obs::TraceNode trace) const {
  if (num_shards() == 1) {
    obs::ScopedSpan span(trace, "shard_query", 0);
    int lid = engines_[0]->ExpectedDistanceNn(q);
    return lid < 0 ? lid : global_ids_[0][lid];
  }
  std::vector<ExpectedCandidate> winners(engines_.size());
  {
    obs::ScopedSpan fan(trace, "shard_fanout",
                        static_cast<std::int64_t>(engines_.size()));
    ForEachShard(
        pool,
        [&](int s) {
          int lid = engines_[s]->ExpectedDistanceNn(q);
          winners[s] = {global_ids_[s][lid],
                        engines_[s]->ExpectedDistance(lid, q)};
        },
        fan.node());
  }
  obs::ScopedSpan merge(trace, "merge");
  return MergeExpected(winners);
}

std::vector<std::pair<int, double>> ShardedEngine::Threshold(
    geom::Vec2 q, double tau, ThreadPool* pool, obs::TraceNode trace) const {
  UNN_CHECK(tau > 0 && tau <= 1);
  if (num_shards() == 1) {
    obs::ScopedSpan span(trace, "shard_query", 0);
    auto out = engines_[0]->Threshold(q, tau);
    for (auto& [id, pi] : out) id = global_ids_[0][id];
    SortByEstimate(&out);
    return out;
  }
  MergedProbabilities merged = MergedProbs(q, tau / 2, pool, trace);
  // Exact re-quantification reports the exact set {pi >= tau}; the
  // Monte-Carlo fallback keeps the no-false-negative slack, like Engine.
  double eps =
      merged.requantified_exactly ? 0.0 : std::min(config_.eps, tau / 2);
  std::vector<std::pair<int, double>> out;
  for (auto [gid, pi] : merged.probs) {
    if (pi + eps >= tau) out.push_back({gid, pi});
  }
  SortByEstimate(&out);
  return out;
}

std::vector<std::pair<int, double>> ShardedEngine::TopK(
    geom::Vec2 q, int k, ThreadPool* pool, obs::TraceNode trace) const {
  UNN_CHECK(k >= 1);
  if (num_shards() == 1) {
    obs::ScopedSpan span(trace, "shard_query", 0);
    auto out = engines_[0]->TopK(q, k);
    for (auto& [id, pi] : out) id = global_ids_[0][id];
    return out;
  }
  auto est = MergedProbs(q, 0.0, pool, trace).probs;
  SortByEstimate(&est);
  if (static_cast<int>(est.size()) > k) est.resize(k);
  return est;
}

std::vector<int> ShardedEngine::NonzeroNn(geom::Vec2 q, ThreadPool* pool,
                                          obs::TraceNode trace) const {
  if (num_shards() == 1) {
    obs::ScopedSpan span(trace, "shard_query", 0);
    std::vector<int> out = engines_[0]->NonzeroNn(q);
    for (int& id : out) id = global_ids_[0][id];
    std::sort(out.begin(), out.end());
    return out;
  }
  size_t shards = engines_.size();
  std::vector<std::vector<int>> local(shards);
  std::vector<core::DeltaEnvelope> env(shards);
  {
    obs::ScopedSpan fan(trace, "shard_fanout",
                        static_cast<std::int64_t>(shards));
    ForEachShard(
        pool,
        [&](int s) {
          local[s] = engines_[s]->NonzeroNn(q);
          env[s] = engines_[s]->MaxDistEnvelope(q);
        },
        fan.node());
  }
  obs::ScopedSpan merge(trace, "merge");
  return MergeNonzero(views_, local, env, q);
}

// ---------------------------------------------------------------------------
// Batched entry point + warmup (Engine::QueryMany's degenerate contract)
// ---------------------------------------------------------------------------

Engine::QueryResult ShardedEngine::QueryOne(geom::Vec2 q,
                                            const Engine::QuerySpec& spec,
                                            ThreadPool* pool,
                                            obs::TraceNode trace) const {
  Engine::QueryResult r;
  switch (spec.type) {
    case Engine::QueryType::kMostProbableNn:
      r.nn = MostProbableNn(q, pool, trace);
      break;
    case Engine::QueryType::kExpectedDistanceNn:
      r.nn = ExpectedDistanceNn(q, pool, trace);
      break;
    case Engine::QueryType::kThreshold:
      r.ranked = Threshold(q, spec.tau, pool, trace);
      break;
    case Engine::QueryType::kTopK:
      r.ranked = TopK(q, spec.k, pool, trace);
      break;
    case Engine::QueryType::kNonzeroNn:
      r.ids = NonzeroNn(q, pool, trace);
      break;
  }
  return r;
}

std::vector<Engine::QueryResult> ShardedEngine::QueryMany(
    std::span<const geom::Vec2> queries, const Engine::QuerySpec& spec,
    ThreadPool* pool, obs::TraceNode trace) const {
  if (num_shards() == 1) {
    // Single shard: delegate wholesale (ids still need the global map).
    // The shard's own QueryMany runs the batched kernels, and with only
    // one shard to visit a pool buys nothing here — serve::QueryMany is
    // the layer that spreads the pack itself across workers.
    obs::ScopedSpan span(trace, "shard_query", 0);
    auto results = engines_[0]->QueryMany(queries, spec);
    const std::vector<int>& gids = global_ids_[0];
    for (auto& r : results) {
      if (r.nn >= 0) r.nn = gids[r.nn];
      for (auto& [id, pi] : r.ranked) id = gids[id];
      for (int& id : r.ids) id = gids[id];
    }
    return results;
  }
  // Same degenerate-parameter contract as Engine::QueryMany, from the
  // shared definition (only the tau <= 0 case consults the shards).
  std::vector<Engine::QueryResult> results;
  if (query_contract::AnswerDegenerate(
          queries, spec, size_,
          [&](geom::Vec2 q) { return Probabilities(q, 0.0, pool, trace); },
          &results)) {
    return results;
  }
  if (!config_.batch_traversal) {
    for (size_t i = 0; i < queries.size(); ++i) {
      results[i] = QueryOne(queries[i], spec, pool, trace);
    }
    return results;
  }
  // Fan the whole pack to each shard once — one shard visit per shard
  // per batch instead of per query — and merge per query. Each shard
  // answers through its Engine's batched kernels (or the scalar loop for
  // backends without one), bit-identical to QueryOne's per-query
  // fan-out, so the merged answers match the scalar path exactly.
  size_t shards = engines_.size();
  switch (spec.type) {
    case Engine::QueryType::kExpectedDistanceNn: {
      std::vector<std::vector<ExpectedCandidate>> cand(
          queries.size(), std::vector<ExpectedCandidate>(shards));
      {
        obs::ScopedSpan fan(trace, "shard_fanout",
                            static_cast<std::int64_t>(shards));
        ForEachShard(
            pool,
            [&](int s) {
              auto local = engines_[s]->QueryMany(queries, spec);
              for (size_t i = 0; i < queries.size(); ++i) {
                int lid = local[i].nn;
                cand[i][s] = {global_ids_[s][lid],
                              engines_[s]->ExpectedDistance(lid, queries[i])};
              }
            },
            fan.node());
      }
      obs::ScopedSpan merge(trace, "merge");
      for (size_t i = 0; i < queries.size(); ++i) {
        results[i].nn = MergeExpected(cand[i]);
      }
      break;
    }
    case Engine::QueryType::kMostProbableNn:
    case Engine::QueryType::kThreshold:
    case Engine::QueryType::kTopK: {
      // Per-shard batched candidate generation + envelopes, then the same
      // candidate-union re-quantification per query as MergedProbs.
      double eps_needed =
          spec.type == Engine::QueryType::kThreshold ? spec.tau / 2 : 0.0;
      std::vector<std::vector<std::vector<std::pair<int, double>>>> local(
          shards);
      std::vector<std::vector<core::DeltaEnvelope>> env(shards);
      {
        obs::ScopedSpan fan(trace, "shard_fanout",
                            static_cast<std::int64_t>(shards));
        ForEachShard(
            pool,
            [&](int s) {
              local[s] = engines_[s]->ProbabilitiesMany(queries, eps_needed);
              env[s].resize(queries.size());
              engines_[s]->MaxDistEnvelopeMany(queries, env[s]);
            },
            fan.node());
      }
      obs::ScopedSpan merge(trace, "merge");
      double eps =
          eps_needed > 0 ? std::min(eps_needed, config_.eps) : config_.eps;
      std::vector<std::vector<std::pair<int, double>>> q_local(shards);
      std::vector<core::DeltaEnvelope> q_env(shards);
      for (size_t i = 0; i < queries.size(); ++i) {
        for (size_t s = 0; s < shards; ++s) {
          q_local[s] = std::move(local[s][i]);
          q_env[s] = env[s][i];
        }
        MergedProbabilities merged = MergeProbabilities(
            views_, q_local, q_env, queries[i], config_, eps);
        switch (spec.type) {
          case Engine::QueryType::kMostProbableNn: {
            int best = -1;
            double best_pi = -1.0;
            for (auto [gid, pi] : merged.probs) {
              if (pi > best_pi) {
                best = gid;
                best_pi = pi;
              }
            }
            results[i].nn = best;
            break;
          }
          case Engine::QueryType::kThreshold: {
            double slack = merged.requantified_exactly
                               ? 0.0
                               : std::min(config_.eps, spec.tau / 2);
            for (auto [gid, pi] : merged.probs) {
              if (pi + slack >= spec.tau) {
                results[i].ranked.push_back({gid, pi});
              }
            }
            SortByEstimate(&results[i].ranked);
            break;
          }
          default: {  // kTopK
            SortByEstimate(&merged.probs);
            if (static_cast<int>(merged.probs.size()) > spec.k) {
              merged.probs.resize(spec.k);
            }
            results[i].ranked = std::move(merged.probs);
            break;
          }
        }
      }
      break;
    }
    case Engine::QueryType::kNonzeroNn: {
      std::vector<std::vector<Engine::QueryResult>> local(shards);
      std::vector<std::vector<core::DeltaEnvelope>> env(shards);
      {
        obs::ScopedSpan fan(trace, "shard_fanout",
                            static_cast<std::int64_t>(shards));
        ForEachShard(
            pool,
            [&](int s) {
              local[s] = engines_[s]->QueryMany(queries, spec);
              env[s].resize(queries.size());
              engines_[s]->MaxDistEnvelopeMany(queries, env[s]);
            },
            fan.node());
      }
      obs::ScopedSpan merge(trace, "merge");
      std::vector<std::vector<int>> q_local(shards);
      std::vector<core::DeltaEnvelope> q_env(shards);
      for (size_t i = 0; i < queries.size(); ++i) {
        for (size_t s = 0; s < shards; ++s) {
          q_local[s] = std::move(local[s][i].ids);
          q_env[s] = env[s][i];
        }
        results[i].ids = MergeNonzero(views_, q_local, q_env, queries[i]);
      }
      break;
    }
  }
  return results;
}

void ShardedEngine::Warmup(Engine::QueryType type, ThreadPool* pool) const {
  Warmup(Engine::QuerySpec{type, 0.5, 1}, pool);
}

namespace {

/// True when the multi-shard merge for `spec` consults the per-shard
/// envelope hook (Engine::MaxDistEnvelope) at query time: every
/// non-degenerate type except the expected-distance min-merge. Degenerate
/// specs (k <= 0, tau > 1 or NaN) are answered definition-level without
/// touching any shard, so warming them must stay build-free too.
bool MergeConsultsEnvelope(const Engine::QuerySpec& spec) {
  switch (spec.type) {
    case Engine::QueryType::kExpectedDistanceNn:
      return false;
    case Engine::QueryType::kTopK:
      return spec.k > 0;
    case Engine::QueryType::kThreshold:
      return spec.tau <= 1;  // NaN-safe: !(tau <= 1) builds nothing.
    default:
      return true;
  }
}

}  // namespace

void ShardedEngine::Warmup(const Engine::QuerySpec& spec,
                           ThreadPool* pool) const {
  // Engine::Warmup builds what the per-shard queries need; a multi-shard
  // merge additionally calls the per-shard quantification hooks
  // (MaxDistEnvelope / SurvivalProbability), so their index must be warm
  // as well or serving traffic would build it. The probe point is
  // irrelevant: which structures get built never depends on q.
  bool warm_hooks = num_shards() > 1 && MergeConsultsEnvelope(spec);
  ForEachShard(pool, [&](int s) {
    engines_[s]->Warmup(spec);
    if (warm_hooks) engines_[s]->MaxDistEnvelope({0, 0});
  });
}

}  // namespace serve
}  // namespace unn
