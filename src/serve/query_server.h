#ifndef UNN_SERVE_QUERY_SERVER_H_
#define UNN_SERVE_QUERY_SERVER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/parallel.h"
#include "serve/request.h"
#include "serve/result_cache.h"
#include "serve/server_stats.h"
#include "serve/sharding.h"
#include "serve/thread_pool.h"
#include "util/thread_annotations.h"

/// \file query_server.h
/// The serving front end: a QueryServer owns a worker pool and the current
/// dataset as an immutable snapshot — a `std::shared_ptr<const
/// ShardedEngine>` behind a tiny mutex held only for the pointer copy (a
/// single-Engine deployment is the one-shard case, with zero merge
/// overhead). Readers copy the pointer once per call and query the
/// snapshot with no further coordination (shards are thread-safe Engines
/// and the merge layer is stateless); `ReplaceDataset` partitions and
/// builds a fresh shard set off to the side — on the pool, in parallel —
/// and publishes it with one locked pointer swap. In-flight queries keep
/// the old snapshot alive through their shared_ptr and finish on the
/// shard set they started on; the old engines are destroyed when the
/// last such query releases them. There is no copy-on-read and no pause
/// on swap — the snapshot mutex is held for two pointer-sized writes,
/// never across a build or a query. Replacements may change the shard
/// count and partitioner mid-flight; concurrent replacements serialize
/// on a separate mutex that readers never touch.
///
/// The primary serving API is `Submit(Request)` / `QueryBatch(span<
/// Request>)` over the types in request.h; the historical `(Vec2,
/// QuerySpec)` signatures forward to them. On top of the snapshot the
/// server layers three QoS mechanisms (docs/ARCHITECTURE.md, "Serving
/// QoS"):
///
///   * a snapshot-keyed result cache (result_cache.h): every answer is a
///     pure function of (snapshot, spec, point), snapshots carry a
///     monotone generation, and `ReplaceDataset` bumps it — so stale
///     entries die by unreachability, with no invalidation sweep;
///   * admission control: past `Options::max_inflight` in-flight
///     backend queries, new regular requests are shed
///     (`ResultSource::kShed`) or degraded to a cheap Monte-Carlo
///     engine built beside each snapshot (`Options::overload`);
///     definition-level (degenerate-spec) answers are never refused;
///   * deadlines + priorities: a request past its deadline is dropped
///     without touching a backend — checked at admission and again at
///     dispatch — and `Request::priority` maps onto the pool's strict
///     priority queue.

namespace unn {
namespace serve {

/// What to do with a regular request admitted while the server is past
/// its in-flight limit.
enum class OverloadPolicy {
  /// Refuse it: `ResultSource::kShed`, empty result, ~0 latency.
  kShed,
  /// Answer it from the cheap Monte-Carlo engine built beside each
  /// snapshot, on the *submitting* thread (deliberate backpressure):
  /// `ResultSource::kDegraded`. Falls back to kShed when the degraded
  /// engine is unavailable.
  kDegrade,
};

class QueryServer {
 public:
  struct Options {
    /// Worker threads; <= 0 picks std::thread::hardware_concurrency().
    int num_threads = 0;
    /// CPUs every pool worker pins itself to before serving
    /// (ThreadPool::Options::pin_cpus) — the placement knob for
    /// deployments that dedicate a server to one NUMA node
    /// (util::DetectNumaTopology supplies the node CPU lists). Empty —
    /// the default — pins nothing; pin failures degrade to unpinned
    /// workers, never errors.
    std::vector<int> pin_cpus;
    /// Query types warmed on every snapshot before it starts serving
    /// (construction and ReplaceDataset). Batches warm their own type
    /// anyway; listing the types Submit traffic uses keeps single-query
    /// latency flat.
    std::vector<Engine::QueryType> warm;
    /// Data partitioning for snapshots the server builds itself
    /// (dataset constructors and ReplaceDataset). num_shards <= 1 serves
    /// one Engine; > 1 partitions the dataset across that many Engines,
    /// built in parallel on the pool, merged per query
    /// (docs/QUERY_SEMANTICS.md).
    ShardingOptions sharding;
    /// Result-cache configuration. Opt-in: the default budget of 0
    /// disables caching; set `cache.max_bytes > 0` to serve repeated
    /// (snapshot, spec, point) requests from memory.
    ResultCache::Options cache{.max_bytes = 0};
    /// Admission control: maximum backend queries in flight (queued +
    /// executing) before overload handling kicks in; 0 disables. Cache
    /// hits and definition-level answers never count against it.
    int max_inflight = 0;
    /// What happens to regular requests past the in-flight limit.
    OverloadPolicy overload = OverloadPolicy::kShed;
    /// Accuracy of the degraded Monte-Carlo engine (only built when
    /// `overload == kDegrade` and `max_inflight > 0`): sample count
    /// override and the eps floor it is allowed to relax to.
    int degrade_mc_samples = 48;
    double degrade_eps = 0.25;
    /// Slow-query logging: a request (or batch) whose serving latency
    /// reaches this threshold lands in the slow-query ring (SlowQueries)
    /// with its span tree. A positive threshold also makes the server
    /// trace every Submit request it owns (callers can trace selectively
    /// via Request::trace instead); 0 — the default — disables the log
    /// and the server-initiated tracing with it.
    std::chrono::microseconds slow_query_threshold{0};
    /// Capacity of the slow-query ring; oldest entries fall off.
    int slow_query_log_size = 32;
  };

  /// Serves an already-built engine as a single shard (shared: other
  /// servers or offline readers may hold it too).
  QueryServer(std::shared_ptr<const Engine> engine, const Options& options);
  explicit QueryServer(std::shared_ptr<const Engine> engine);
  /// Serves a caller-assembled shard set.
  QueryServer(std::shared_ptr<const ShardedEngine> engine,
              const Options& options);
  /// Builds the shard set from a dataset + config per Options::sharding.
  QueryServer(std::vector<core::UncertainPoint> points,
              const Engine::Config& config, const Options& options);
  QueryServer(std::vector<core::UncertainPoint> points,
              const Engine::Config& config);

  /// Refuses new pool work, then drains calls already inside the server
  /// — Submit/QueryBatch (a late Submit may be answering inline on the
  /// stopping pool) and the Replace* family (which hold replace_mu_ and
  /// write the snapshot) — before member teardown begins. See the
  /// shutdown note on Submit.
  ~QueryServer();

  /// The single-Engine view of the current snapshot: the engine itself
  /// when the snapshot has one shard, nullptr when it is partitioned
  /// (use sharded_snapshot() then). Callers may hold the result as long
  /// as they like; it stays valid (and immutable) across any number of
  /// ReplaceDataset calls. O(1), thread-safe.
  std::shared_ptr<const Engine> snapshot() const {
    std::shared_ptr<const Snapshot> s = LoadState();
    return s->engine->num_shards() == 1 ? s->engine->shard_ptr(0) : nullptr;
  }

  /// The shard set currently serving (always non-null; one shard in the
  /// unsharded case). Same lifetime guarantees as snapshot(). O(1),
  /// thread-safe.
  std::shared_ptr<const ShardedEngine> sharded_snapshot() const {
    return LoadState()->engine;
  }

  /// The current snapshot generation: 1 for the snapshot the server was
  /// constructed with, +1 per replacement. Result-cache keys carry it,
  /// which is the entire invalidation story. O(1), thread-safe.
  uint64_t generation() const {
    return LoadState()->generation;
  }

  /// Async single query under the full QoS contract: deadline check at
  /// admission and dispatch, result-cache probe, admission control, then
  /// pool dispatch at `Request::priority` against the snapshot current
  /// at submission time (a sharded snapshot fans the query out to all
  /// shards across the pool). The future is always satisfied — refusals
  /// are Responses (`kShed` / `kDeadlineExceeded`), never exceptions.
  /// Degenerate spec parameters follow Engine::QueryMany's definitions
  /// and are never cached, shed or degraded. Thread-safe. Shutdown note:
  /// a Submit that races server destruction no longer aborts — once the
  /// pool refuses new tasks the query runs inline on the submitting
  /// thread against the pinned snapshot (the same degradation
  /// ParallelFor applies to QueryBatch). Two backstops narrow the race:
  /// the destructor first drains every Submit/QueryBatch/Replace* that
  /// has already entered (atomic in-flight count), and the pool is the
  /// first member destroyed, so a call that slips in while the
  /// destructor is blocked joining the workers still finds every other
  /// member alive (the shutdown stress test pins that window). These
  /// narrow the race but cannot license it: a call not ordered before
  /// destruction can still land after the drain and a fast join, racing
  /// member teardown — undefined behavior, as for any object. Callers
  /// must stop submitting before destroying the server; the backstops
  /// exist to fail loudly less and corrupt quietly never in the windows
  /// they cover.
  std::future<Response> Submit(const Request& request);

  /// Forwarding wrapper: `Submit({q, spec})` with no deadline at normal
  /// priority, delivering just the result (cache and admission control
  /// still apply; a shed request delivers an empty QueryResult).
  /// Thread-safe.
  std::future<Engine::QueryResult> Submit(geom::Vec2 q,
                                          const Engine::QuerySpec& spec);

  /// Blocking batched API: probes the cache per request, then computes
  /// the misses across the pool (plus the calling thread); responses[i]
  /// answers requests[i]. The whole batch runs on one snapshot.
  /// Per-request deadlines are checked once, at batch admission.
  /// Admission control is batch-level: when the server is already at
  /// its in-flight limit the batch's regular misses are all shed or all
  /// degraded (a batch the server accepts is not split). Cache-hit
  /// responses carry their probe-time latency; computed ones the batch
  /// completion latency. Thread-safe.
  std::vector<Response> QueryBatch(std::span<const Request> requests);

  /// Forwarding wrapper: one spec for every point, results only.
  /// Thread-safe.
  std::vector<Engine::QueryResult> QueryBatch(
      std::span<const geom::Vec2> queries, const Engine::QuerySpec& spec);

  /// Atomically replaces the dataset: partitions per the server's current
  /// replacement sharding — the most recent of Options::sharding, the
  /// resharding ReplaceDataset overload, or the shape of a
  /// caller-installed shard set — builds the new shard set on the pool
  /// (same Engine config as the current snapshot), warms Options::warm,
  /// then swaps and bumps the snapshot generation (cached results of the
  /// old snapshot become unreachable; no sweep). Queries submitted
  /// before the swap finish on the old snapshot; queries submitted after
  /// see the new one. Safe to call concurrently with queries and with
  /// other replacements (replacements serialize).
  void ReplaceDataset(std::vector<core::UncertainPoint> points);
  /// Same, additionally changing the sharding (shard count and/or
  /// partitioner) for this and future replacements — resharding
  /// mid-flight is just another snapshot swap.
  void ReplaceDataset(std::vector<core::UncertainPoint> points,
                      const ShardingOptions& sharding);
  /// Same swap for a caller-built engine, served as a single shard
  /// (future ReplaceDataset calls then build unsharded, like
  /// ReplaceShardedEngine with one shard).
  void ReplaceEngine(std::shared_ptr<const Engine> engine);
  /// Same swap for a caller-assembled shard set; its shape (shard
  /// count, round-robin for assembled sets) becomes the replacement
  /// sharding for future ReplaceDataset calls.
  void ReplaceShardedEngine(std::shared_ptr<const ShardedEngine> engine);

  /// The worker pool (shared with callers that want to fan out their own
  /// work). Thread-safe.
  ThreadPool& pool() { return pool_; }

  /// The historical name for the stats snapshot; see ServerStats
  /// (server_stats.h) for the fields and the relaxed-counter ordering
  /// contract.
  using Stats = ServerStats;

  /// One stats snapshot: traffic counters, per-type counts, QoS
  /// outcomes, cache counters and latency percentiles. Every underlying
  /// counter is relaxed-atomic — individually monotone and never lossy,
  /// but a concurrent reader may observe increments in any relative
  /// order (e.g. a swap before the queries that preceded it); a snapshot
  /// taken after the server quiesces is exact. O(histogram buckets),
  /// thread-safe.
  ServerStats stats() const;

  /// The result cache (counters, configuration). Thread-safe.
  const ResultCache& result_cache() const { return cache_; }

  /// The server's unified metrics registry: serving counters and latency
  /// histograms, the result-cache metrics, plus any metrics the caller
  /// registers beside them (one DumpMetrics covers everything).
  /// Thread-safe.
  obs::Registry& metrics_registry() { return registry_; }

  /// Renders every registered metric — serving counters, per-type latency
  /// histograms, cache counters, point-in-time gauges (pool queue depth,
  /// in-flight queries, cache hit ratio, latency percentiles) and the
  /// process-wide traversal-profiling totals — in Prometheus text
  /// exposition format or as JSON. Refreshes the gauges, so not const.
  /// O(registered metrics); thread-safe, callable under traffic (relaxed
  /// counter snapshot, same ordering contract as stats()).
  std::string DumpMetrics(
      obs::MetricsFormat format = obs::MetricsFormat::kPrometheus);

  /// One slow-query log entry: what was asked, how it was answered, how
  /// long it took, and the span tree recorded while serving it (render
  /// with obs::RenderSpanTree). `batch_size == 0` marks a Submit-path
  /// entry; batch entries carry the batch size and the first request's
  /// query/spec as a representative.
  struct SlowQuery {
    geom::Vec2 q;
    Engine::QuerySpec spec;
    ResultSource source = ResultSource::kComputed;
    std::chrono::microseconds latency{0};
    int batch_size = 0;
    std::vector<obs::Span> spans;
  };

  /// The slow-query ring, oldest first (kept only while
  /// `Options::slow_query_threshold > 0`; at most slow_query_log_size
  /// entries). Thread-safe.
  std::vector<SlowQuery> SlowQueries() const;

 private:
  /// One immutable serving state: the shard set, the optional degraded
  /// engine beside it, and the generation cache keys carry. Swapped as a
  /// unit so a request can never pair engine A with generation B.
  struct Snapshot {
    std::shared_ptr<const ShardedEngine> engine;
    std::shared_ptr<const Engine> degraded;  ///< Null unless kDegrade.
    uint64_t generation = 0;
  };

  void WarmSnapshot(const Snapshot& snap);
  bool DegradeEnabled() const {
    return options_.max_inflight > 0 &&
           options_.overload == OverloadPolicy::kDegrade;
  }
  /// The cheap engine answering degraded traffic for a snapshot over
  /// `points` (Monte-Carlo backend, loosened eps, small sample count).
  std::shared_ptr<const Engine> BuildDegraded(
      std::vector<core::UncertainPoint> points,
      const Engine::Config& base) const;
  /// Assembles + warms a Snapshot and returns it ready to install.
  std::shared_ptr<const Snapshot> MakeSnapshot(
      std::shared_ptr<const ShardedEngine> engine,
      std::shared_ptr<const Engine> degraded, uint64_t generation);
  /// Shared replacement path: optional resharding, build on the pool,
  /// then InstallLocked. Takes replace_mu_.
  void ReplaceImpl(std::vector<core::UncertainPoint> points,
                   const ShardingOptions* sharding) UNN_EXCLUDES(replace_mu_);
  /// Warm + snapshot swap + swap count; the annotation is the old "replace_mu_
  /// must be held" comment made checkable.
  void InstallLocked(std::shared_ptr<const ShardedEngine> engine)
      UNN_REQUIRES(replace_mu_);
  /// The full Submit flow with a pluggable delivery (the two public
  /// Submit overloads differ only in what they promise).
  void SubmitImpl(const Request& request,
                  std::function<void(Response&&)> deliver);
  /// One locked shared_ptr copy: the snapshot serving at this instant.
  std::shared_ptr<const Snapshot> LoadState() const UNN_EXCLUDES(state_mu_);
  /// Publishes `next` as the serving snapshot. The displaced snapshot is
  /// released after the lock drops: in-flight queries usually keep it
  /// alive, and when the store does hold the last reference, the engine
  /// teardown must not run under state_mu_.
  void StoreState(std::shared_ptr<const Snapshot> next)
      UNN_EXCLUDES(state_mu_);
  void CountQuery(const Engine::QuerySpec& spec);
  void RecordLatency(Engine::QueryType type, std::chrono::microseconds us);
  /// Resolves every registry handle below; called once per constructor,
  /// before any traffic can exist.
  void InitMetrics();
  /// Appends to the slow-query ring when the log is enabled and `latency`
  /// reaches the threshold (copies the span snapshot out of `ctx` when
  /// one was recorded).
  void MaybeLogSlowQuery(geom::Vec2 q, const Engine::QuerySpec& spec,
                         ResultSource source, std::chrono::microseconds latency,
                         const obs::TraceContext* ctx, int batch_size);

  Options options_;
  /// Declared before cache_: the cache registers its metrics here.
  obs::Registry registry_;
  ResultCache cache_;
  /// Guards state_ alone and is held only for a shared_ptr copy or swap.
  /// Deliberately not std::atomic<shared_ptr>: libstdc++ implements that
  /// with a spin lock folded into the control-block pointer, and its load
  /// path releases the spin lock with a relaxed RMW — so a reader-to-
  /// writer lock handoff carries no release/acquire edge over the stored
  /// pointer, a formal data race that TSan reports. A real mutex has the
  /// intended semantics, and the cost is one uncontended lock per
  /// Submit/QueryBatch (per batch, not per query).
  mutable Mutex state_mu_;
  std::shared_ptr<const Snapshot> state_ UNN_GUARDED_BY(state_mu_);
  /// Serializes replacements and guards sharding_ (readers never take it).
  Mutex replace_mu_;
  /// Replacement sharding for self-built snapshots: the most recent of
  /// Options::sharding, the resharding ReplaceDataset overload, or the
  /// shape of a caller-installed shard set. (Constructors initialize it
  /// without the lock; construction is single-threaded by definition and
  /// outside the analysis.)
  ShardingOptions sharding_ UNN_GUARDED_BY(replace_mu_);
  /// Next generation to assign (constructor installs 1).
  uint64_t next_generation_ UNN_GUARDED_BY(replace_mu_) = 2;
  /// Registry-backed serving counters (resolved once in InitMetrics;
  /// handles are pointer-stable for the registry's lifetime). Same
  /// relaxed ordering contract the old bare atomics had.
  obs::Counter* queries_ = nullptr;
  obs::Counter* batches_ = nullptr;
  obs::Counter* swaps_ = nullptr;
  std::array<obs::Counter*, kNumQueryTypes> queries_by_type_{};
  obs::Counter* shed_ = nullptr;
  obs::Counter* degraded_ = nullptr;
  obs::Counter* deadline_exceeded_ = nullptr;
  std::array<obs::Histogram*, kNumQueryTypes> latency_{};
  /// Backend queries in flight (admission control's load signal):
  /// Submit-dispatched queries from post to completion, batch misses for
  /// the span of their parallel compute. Cache hits, refusals and
  /// degraded answers never count.
  std::atomic<int> active_{0};
  /// Slow-query ring (see SlowQueries); touched only for requests at or
  /// past the latency threshold.
  mutable Mutex slow_mu_;
  std::deque<SlowQuery> slow_log_ UNN_GUARDED_BY(slow_mu_);
  /// Submit/QueryBatch calls currently inside the server; the destructor
  /// drains it to zero (atomic wait) before member teardown. draining_
  /// gates the exit-side notify so the hot path never pays a wake.
  std::atomic<int> inflight_{0};
  std::atomic<bool> draining_{false};
  /// Declared last, so it is the first member destroyed: while the
  /// destructor blocks joining the workers, every other member a
  /// late-racing Submit/QueryBatch touches (snapshot, cache, counters)
  /// is still alive. See the shutdown note on Submit.
  ThreadPool pool_;
};

}  // namespace serve
}  // namespace unn

#endif  // UNN_SERVE_QUERY_SERVER_H_
