#ifndef UNN_SERVE_QUERY_SERVER_H_
#define UNN_SERVE_QUERY_SERVER_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <span>
#include <vector>

#include "engine/engine.h"
#include "serve/parallel.h"
#include "serve/thread_pool.h"

/// \file query_server.h
/// The serving front end: a QueryServer owns a worker pool and the current
/// dataset as an immutable snapshot — a `std::shared_ptr<const Engine>`
/// behind an atomic pointer. Readers load the pointer and query the
/// snapshot with no further coordination (the Engine is thread-safe for
/// const queries); `ReplaceDataset` builds a fresh Engine off to the side
/// and swaps the pointer in one atomic store. In-flight queries keep the
/// old snapshot alive through their shared_ptr and finish on the dataset
/// they started on; the old Engine is destroyed when its last query
/// releases it. There is no reader-writer mutex, no copy-on-read, and no
/// pause on swap — a read is a single atomic shared_ptr load (which the
/// standard library may implement with an internal spinlock; it is not
/// guaranteed lock-free in the std::atomic sense).

namespace unn {
namespace serve {

class QueryServer {
 public:
  struct Options {
    /// Worker threads; <= 0 picks std::thread::hardware_concurrency().
    int num_threads = 0;
    /// Query types warmed on every snapshot before it starts serving
    /// (construction and ReplaceDataset). Batches warm their own type
    /// anyway; listing the types Submit traffic uses keeps single-query
    /// latency flat.
    std::vector<Engine::QueryType> warm;
  };

  /// Serves an already-built engine (shared: other servers or offline
  /// readers may hold it too).
  QueryServer(std::shared_ptr<const Engine> engine, const Options& options);
  explicit QueryServer(std::shared_ptr<const Engine> engine);
  /// Builds the engine from a dataset + config.
  QueryServer(std::vector<core::UncertainPoint> points,
              const Engine::Config& config, const Options& options);
  QueryServer(std::vector<core::UncertainPoint> points,
              const Engine::Config& config);

  /// The snapshot currently serving. Callers may hold it as long as they
  /// like; it stays valid (and immutable) across any number of
  /// ReplaceDataset calls.
  std::shared_ptr<const Engine> snapshot() const {
    return engine_.load(std::memory_order_acquire);
  }

  /// Async single query against the snapshot current at submission time.
  /// Degenerate spec parameters follow Engine::QueryMany's definitions.
  std::future<Engine::QueryResult> Submit(geom::Vec2 q,
                                          const Engine::QuerySpec& spec);

  /// Blocking batched API: shards across the pool (plus the calling
  /// thread) and returns when every answer is in; results[i] answers
  /// queries[i]. The whole batch runs on one snapshot.
  std::vector<Engine::QueryResult> QueryBatch(
      std::span<const geom::Vec2> queries, const Engine::QuerySpec& spec);

  /// Atomically replaces the dataset: builds a new Engine (same config as
  /// the current snapshot), warms Options::warm, then swaps. Queries
  /// submitted before the swap finish on the old snapshot; queries
  /// submitted after see the new one. Safe to call concurrently with
  /// queries and with other replacements.
  void ReplaceDataset(std::vector<core::UncertainPoint> points);
  /// Same swap for a caller-built engine.
  void ReplaceEngine(std::shared_ptr<const Engine> engine);

  ThreadPool& pool() { return pool_; }

  struct Stats {
    uint64_t queries = 0;  ///< Single queries + batched queries answered.
    uint64_t batches = 0;  ///< QueryBatch calls.
    uint64_t swaps = 0;    ///< Dataset replacements.
  };
  Stats stats() const;

 private:
  void WarmSnapshot(const Engine& engine) const;

  Options options_;
  std::atomic<std::shared_ptr<const Engine>> engine_;
  ThreadPool pool_;
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> swaps_{0};
};

}  // namespace serve
}  // namespace unn

#endif  // UNN_SERVE_QUERY_SERVER_H_
