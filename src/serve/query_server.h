#ifndef UNN_SERVE_QUERY_SERVER_H_
#define UNN_SERVE_QUERY_SERVER_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "engine/engine.h"
#include "serve/parallel.h"
#include "serve/sharding.h"
#include "serve/thread_pool.h"

/// \file query_server.h
/// The serving front end: a QueryServer owns a worker pool and the current
/// dataset as an immutable snapshot — a `std::shared_ptr<const
/// ShardedEngine>` behind an atomic pointer (a single-Engine deployment is
/// the one-shard case, with zero merge overhead). Readers load the pointer
/// and query the snapshot with no further coordination (shards are
/// thread-safe Engines and the merge layer is stateless); `ReplaceDataset`
/// partitions and builds a fresh shard set off to the side — on the pool,
/// in parallel — and swaps the pointer in one atomic store. In-flight
/// queries keep the old snapshot alive through their shared_ptr and finish
/// on the shard set they started on; the old engines are destroyed when
/// the last such query releases them. There is no reader-writer mutex, no
/// copy-on-read, and no pause on swap — a read is a single atomic
/// shared_ptr load (which the standard library may implement with an
/// internal spinlock; it is not guaranteed lock-free in the std::atomic
/// sense). Replacements may change the shard count and partitioner
/// mid-flight; concurrent replacements serialize on a small mutex that
/// readers never touch.

namespace unn {
namespace serve {

class QueryServer {
 public:
  struct Options {
    /// Worker threads; <= 0 picks std::thread::hardware_concurrency().
    int num_threads = 0;
    /// Query types warmed on every snapshot before it starts serving
    /// (construction and ReplaceDataset). Batches warm their own type
    /// anyway; listing the types Submit traffic uses keeps single-query
    /// latency flat.
    std::vector<Engine::QueryType> warm;
    /// Data partitioning for snapshots the server builds itself
    /// (dataset constructors and ReplaceDataset). num_shards <= 1 serves
    /// one Engine; > 1 partitions the dataset across that many Engines,
    /// built in parallel on the pool, merged per query
    /// (docs/QUERY_SEMANTICS.md).
    ShardingOptions sharding;
  };

  /// Serves an already-built engine as a single shard (shared: other
  /// servers or offline readers may hold it too).
  QueryServer(std::shared_ptr<const Engine> engine, const Options& options);
  explicit QueryServer(std::shared_ptr<const Engine> engine);
  /// Serves a caller-assembled shard set.
  QueryServer(std::shared_ptr<const ShardedEngine> engine,
              const Options& options);
  /// Builds the shard set from a dataset + config per Options::sharding.
  QueryServer(std::vector<core::UncertainPoint> points,
              const Engine::Config& config, const Options& options);
  QueryServer(std::vector<core::UncertainPoint> points,
              const Engine::Config& config);

  /// Refuses new pool work, then drains calls already inside the server
  /// — Submit/QueryBatch (a late Submit may be answering inline on the
  /// stopping pool) and the Replace* family (which hold replace_mu_ and
  /// write the snapshot) — before member teardown begins. See the
  /// shutdown note on Submit.
  ~QueryServer();

  /// The single-Engine view of the current snapshot: the engine itself
  /// when the snapshot has one shard, nullptr when it is partitioned
  /// (use sharded_snapshot() then). Callers may hold the result as long
  /// as they like; it stays valid (and immutable) across any number of
  /// ReplaceDataset calls. O(1), thread-safe.
  std::shared_ptr<const Engine> snapshot() const {
    std::shared_ptr<const ShardedEngine> s =
        engine_.load(std::memory_order_acquire);
    return s->num_shards() == 1 ? s->shard_ptr(0) : nullptr;
  }

  /// The shard set currently serving (always non-null; one shard in the
  /// unsharded case). Same lifetime guarantees as snapshot(). O(1),
  /// thread-safe.
  std::shared_ptr<const ShardedEngine> sharded_snapshot() const {
    return engine_.load(std::memory_order_acquire);
  }

  /// Async single query against the snapshot current at submission time.
  /// A sharded snapshot fans the query out to all shards across the pool.
  /// Degenerate spec parameters follow Engine::QueryMany's definitions.
  /// Thread-safe. Shutdown note: a Submit that races server destruction
  /// no longer aborts — once the pool refuses new tasks the query runs
  /// inline on the submitting thread against the pinned snapshot (the
  /// same degradation ParallelFor applies to QueryBatch). Two backstops
  /// narrow the race: the destructor first drains every
  /// Submit/QueryBatch/Replace* that has already entered (atomic
  /// in-flight count), and the pool is the first member destroyed, so a
  /// call that slips in while the destructor is blocked joining the
  /// workers still finds every other member alive (the shutdown stress
  /// test pins that window). These narrow the race but cannot license
  /// it: a call not ordered before destruction can still land after the
  /// drain and a fast join, racing member teardown — undefined behavior,
  /// as for any object. Callers must stop submitting before destroying
  /// the server; the backstops exist to fail loudly less and corrupt
  /// quietly never in the windows they cover.
  std::future<Engine::QueryResult> Submit(geom::Vec2 q,
                                          const Engine::QuerySpec& spec);

  /// Blocking batched API: splits the queries across the pool (plus the
  /// calling thread) and returns when every answer is in; results[i]
  /// answers queries[i]. The whole batch runs on one snapshot.
  /// Thread-safe.
  std::vector<Engine::QueryResult> QueryBatch(
      std::span<const geom::Vec2> queries, const Engine::QuerySpec& spec);

  /// Atomically replaces the dataset: partitions per the server's current
  /// replacement sharding — the most recent of Options::sharding, the
  /// resharding ReplaceDataset overload, or the shape of a
  /// caller-installed shard set — builds the new shard set on the pool
  /// (same Engine config as the current snapshot), warms Options::warm,
  /// then swaps. Queries submitted before the swap finish on the old
  /// snapshot; queries submitted after see the new one. Safe to call
  /// concurrently with queries and with other replacements
  /// (replacements serialize).
  void ReplaceDataset(std::vector<core::UncertainPoint> points);
  /// Same, additionally changing the sharding (shard count and/or
  /// partitioner) for this and future replacements — resharding
  /// mid-flight is just another snapshot swap.
  void ReplaceDataset(std::vector<core::UncertainPoint> points,
                      const ShardingOptions& sharding);
  /// Same swap for a caller-built engine, served as a single shard
  /// (future ReplaceDataset calls then build unsharded, like
  /// ReplaceShardedEngine with one shard).
  void ReplaceEngine(std::shared_ptr<const Engine> engine);
  /// Same swap for a caller-assembled shard set; its shape (shard
  /// count, round-robin for assembled sets) becomes the replacement
  /// sharding for future ReplaceDataset calls.
  void ReplaceShardedEngine(std::shared_ptr<const ShardedEngine> engine);

  /// The worker pool (shared with callers that want to fan out their own
  /// work). Thread-safe.
  ThreadPool& pool() { return pool_; }

  struct Stats {
    uint64_t queries = 0;  ///< Single queries + batched queries answered.
    uint64_t batches = 0;  ///< QueryBatch calls.
    uint64_t swaps = 0;    ///< Dataset replacements.
  };
  /// Relaxed counters — monotone, but a concurrent reader may observe a
  /// swap before the queries that preceded it. O(1), thread-safe.
  Stats stats() const;

 private:
  void WarmSnapshot(const ShardedEngine& engine);
  /// Shared replacement path: optional resharding, build on the pool,
  /// then InstallLocked. Takes replace_mu_.
  void ReplaceImpl(std::vector<core::UncertainPoint> points,
                   const ShardingOptions* sharding);
  /// Warm + atomic swap + swap count; replace_mu_ must be held.
  void InstallLocked(std::shared_ptr<const ShardedEngine> engine);

  Options options_;
  std::atomic<std::shared_ptr<const ShardedEngine>> engine_;
  /// Serializes replacements and guards sharding_ (readers never take it).
  std::mutex replace_mu_;
  /// Replacement sharding for self-built snapshots: the most recent of
  /// Options::sharding, the resharding ReplaceDataset overload, or the
  /// shape of a caller-installed shard set. Updated under replace_mu_.
  ShardingOptions sharding_;
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> swaps_{0};
  /// Submit/QueryBatch calls currently inside the server; the destructor
  /// drains it to zero (atomic wait) before member teardown. draining_
  /// gates the exit-side notify so the hot path never pays a wake.
  std::atomic<int> inflight_{0};
  std::atomic<bool> draining_{false};
  /// Declared last, so it is the first member destroyed: while the
  /// destructor blocks joining the workers, every other member a
  /// late-racing Submit/QueryBatch touches (snapshot, counters) is still
  /// alive. See the shutdown note on Submit.
  ThreadPool pool_;
};

}  // namespace serve
}  // namespace unn

#endif  // UNN_SERVE_QUERY_SERVER_H_
