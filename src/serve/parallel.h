#ifndef UNN_SERVE_PARALLEL_H_
#define UNN_SERVE_PARALLEL_H_

#include <span>
#include <vector>

#include "engine/engine.h"
#include "serve/thread_pool.h"

/// \file parallel.h
/// The parallel batched-query path: shard a query batch across a thread
/// pool, one contiguous block per task, every worker querying the same
/// warmed Engine. `results[i]` answers `queries[i]` regardless of thread
/// count or scheduling — each block writes only its own slots, and the
/// engine's structures are built once up front (Warmup) so workers race on
/// nothing. Speedup is near-linear because queries are read-only and
/// independent.

namespace unn {
namespace serve {

/// Parallel Engine::QueryMany: identical results (including the
/// degenerate-parameter semantics documented on the serial method), wall
/// clock divided across `pool`'s workers plus the calling thread. Warms
/// the engine for `spec` before sharding.
std::vector<Engine::QueryResult> QueryMany(const Engine& engine,
                                           std::span<const geom::Vec2> queries,
                                           const Engine::QuerySpec& spec,
                                           ThreadPool* pool);

}  // namespace serve
}  // namespace unn

#endif  // UNN_SERVE_PARALLEL_H_
