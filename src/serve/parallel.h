#ifndef UNN_SERVE_PARALLEL_H_
#define UNN_SERVE_PARALLEL_H_

#include <span>
#include <vector>

#include "engine/engine.h"
#include "serve/sharding.h"
#include "serve/thread_pool.h"

/// \file parallel.h
/// The parallel batched-query path: split a query batch across a thread
/// pool, one contiguous block per task, every worker querying the same
/// warmed (single or sharded) engine. `results[i]` answers `queries[i]`
/// regardless of thread count or scheduling — each block writes only its
/// own slots, and the engine's structures are built once up front
/// (Warmup) so workers race on nothing. Speedup is near-linear because
/// queries are read-only and independent.

namespace unn {
namespace serve {

/// Parallel Engine::QueryMany: identical results (including the
/// degenerate-parameter semantics documented on the serial method), wall
/// clock divided across `pool`'s workers plus the calling thread. Warms
/// the engine for `spec` before splitting. Thread-safe (concurrent calls
/// may share the engine and the pool).
std::vector<Engine::QueryResult> QueryMany(const Engine& engine,
                                           std::span<const geom::Vec2> queries,
                                           const Engine::QuerySpec& spec,
                                           ThreadPool* pool);

/// Parallel ShardedEngine::QueryMany: same contract against the sharded
/// merge semantics. The batch parallelism is across queries — each
/// worker's queries visit the shards serially, so a large batch saturates
/// the pool without nested fan-out overhead (a single low-latency query
/// should instead call ShardedEngine::QueryMany with the pool directly).
/// Thread-safe.
std::vector<Engine::QueryResult> QueryMany(const ShardedEngine& engine,
                                           std::span<const geom::Vec2> queries,
                                           const Engine::QuerySpec& spec,
                                           ThreadPool* pool);

}  // namespace serve
}  // namespace unn

#endif  // UNN_SERVE_PARALLEL_H_
