#ifndef UNN_DCEL_EDGE_SHAPE_H_
#define UNN_DCEL_EDGE_SHAPE_H_

#include <optional>
#include <vector>

#include "geom/conic.h"
#include "geom/vec2.h"

/// \file edge_shape.h
/// Geometry carried by a planar-subdivision edge: either a straight segment
/// or a focal-conic arc (a theta-interval of a FocalConic polar graph).
/// Everything the topology layer needs — tangents for rotational sorting,
/// conservative bounding boxes for the ray-shooting grid, and vertical-ray
/// intersections for point location — is funneled through this type.

namespace unn {
namespace dcel {

/// A theta-interval [t0, t1] (t0 < t1, both within [0, 2*pi], never wrapping
/// through 0 — callers split wrapping arcs) of a focal conic.
struct ArcData {
  geom::FocalConic conic;
  double t0 = 0.0;
  double t1 = 0.0;
};

class EdgeShape {
 public:
  enum class Kind { kSegment, kArc };

  /// Straight segment from `a` to `b`.
  static EdgeShape Segment(geom::Vec2 a, geom::Vec2 b);

  /// Conic arc; endpoints are computed from the conic.
  static EdgeShape Arc(const geom::FocalConic& conic, double t0, double t1);

  Kind kind() const { return kind_; }
  geom::Vec2 a() const { return a_; }
  geom::Vec2 b() const { return b_; }
  const std::optional<ArcData>& arc() const { return arc_; }

  /// Point at normalized parameter u in [0, 1] (u=0 -> a, u=1 -> b).
  geom::Vec2 PointAt(double u) const;

  /// A point strictly inside the edge.
  geom::Vec2 Midpoint() const { return PointAt(0.5); }

  /// Unit tangent pointing from endpoint `a` into the edge.
  geom::Vec2 TangentIntoEdgeAtA() const;

  /// Unit tangent pointing from endpoint `b` into the edge.
  geom::Vec2 TangentIntoEdgeAtB() const;

  /// Unit tangent along increasing parameter at normalized parameter u.
  geom::Vec2 TravelDirAt(double u) const;

  /// Conservative bounding box (sampled and inflated for arcs).
  geom::Box Bounds() const;

  /// Intersections with the upward vertical ray from q: y-coordinates of
  /// hits strictly above q.y at x == q.x, each with the travel direction of
  /// the edge at the hit. Appends to `ys`/`dirs` in no particular order.
  void VerticalRayHits(geom::Vec2 q, double y_limit, std::vector<double>* ys,
                       std::vector<geom::Vec2>* dirs) const;

  /// Approximate polyline (for SVG output and area estimation).
  std::vector<geom::Vec2> Sample(int n) const;

 private:
  Kind kind_ = Kind::kSegment;
  geom::Vec2 a_, b_;
  std::optional<ArcData> arc_;
};

/// Unit tangent d/d(theta) of a focal conic's polar graph at angle theta.
geom::Vec2 ConicTangent(const geom::FocalConic& conic, double theta);

}  // namespace dcel
}  // namespace unn

#endif  // UNN_DCEL_EDGE_SHAPE_H_
