#ifndef UNN_DCEL_PLANAR_SUBDIVISION_H_
#define UNN_DCEL_PLANAR_SUBDIVISION_H_

#include <vector>

#include "dcel/edge_shape.h"
#include "geom/vec2.h"

/// \file planar_subdivision.h
/// A doubly-connected edge list built from a "curve soup": vertices plus
/// non-crossing edges (they may share endpoints only). Build() links
/// half-edges by rotational order around each vertex and extracts boundary
/// loops. Faces are not merged across holes; instead each *loop* carries the
/// face payload. Two loops bounding the same region always receive the same
/// label from the toggle-BFS in the core layer (labels are pointwise
/// properties), so queries are unaffected; the number of bounded faces is
/// recovered exactly as the number of CCW loops, which is cross-checked
/// against Euler's formula in the tests.

namespace unn {
namespace dcel {

/// Sentinel for "no curve": frame/window edges.
inline constexpr int kFrameCurve = -1;

struct Vertex {
  geom::Vec2 pos;
  /// Outgoing half-edge ids sorted CCW by departure angle (filled by Build).
  std::vector<int> out;
};

struct Edge {
  int a = -1;      ///< Tail vertex id.
  int b = -1;      ///< Head vertex id.
  EdgeShape shape; ///< Geometry; shape.a()/b() match vertices a/b.
  int curve_id = kFrameCurve;  ///< Which input curve this edge belongs to.
};

struct HalfEdge {
  int origin = -1;  ///< Vertex id at the tail.
  int twin = -1;
  int next = -1;    ///< Next half-edge along the face on the left.
  int prev = -1;
  int loop = -1;    ///< Boundary loop id (filled by Build).
  int edge = -1;    ///< Underlying edge id.
  bool forward = true;  ///< True if origin == edge.a.
};

struct Loop {
  int first_half_edge = -1;
  int num_half_edges = 0;
  bool ccw = false;  ///< CCW loops bound a face from outside (the face's
                     ///< outer boundary); CW loops are hole boundaries.
};

class PlanarSubdivision {
 public:
  /// Adds a vertex; returns its id. Callers are responsible for snapping
  /// coincident vertices to a single id.
  int AddVertex(geom::Vec2 p);

  /// Adds an edge between existing vertices. The shape endpoints must match
  /// the vertex positions (within tolerance; not checked exactly).
  /// Returns the edge id.
  int AddEdge(int a, int b, const EdgeShape& shape, int curve_id);

  /// Links half-edges and extracts loops. Call once after all AddEdge calls.
  void Build();

  int NumVertices() const { return static_cast<int>(vertices_.size()); }
  int NumEdges() const { return static_cast<int>(edges_.size()); }
  int NumHalfEdges() const { return static_cast<int>(half_edges_.size()); }
  int NumLoops() const { return static_cast<int>(loops_.size()); }

  const Vertex& vertex(int v) const { return vertices_[v]; }
  const Edge& edge(int e) const { return edges_[e]; }
  const HalfEdge& half_edge(int h) const { return half_edges_[h]; }
  const Loop& loop(int l) const { return loops_[l]; }

  /// Half-edge of `e` with origin at `edge.a` (forward) or `edge.b`.
  int HalfEdgeOf(int e, bool forward) const { return 2 * e + (forward ? 0 : 1); }

  /// Number of connected components of the vertex/edge graph.
  int NumComponents() const { return num_components_; }

  /// Faces (including the unbounded one) by Euler's formula
  /// F = E - V + C + 1.
  int NumFacesEuler() const {
    return NumEdges() - NumVertices() + num_components_ + 1;
  }

  /// Number of CCW loops == number of bounded faces.
  int NumCcwLoops() const;

  /// Direction of travel of half-edge `h` as it leaves its origin.
  geom::Vec2 DepartureDir(int h) const;

  /// Direction of travel of half-edge `h` as it arrives at its head.
  geom::Vec2 ArrivalDir(int h) const;

  /// Head (target) vertex of half-edge `h`.
  int Head(int h) const;

 private:
  void SortStubs();
  void LinkNextPrev();
  void ExtractLoops();
  void ComputeComponents();
  bool ComputeLoopCcw(int l) const;

  std::vector<Vertex> vertices_;
  std::vector<Edge> edges_;
  std::vector<HalfEdge> half_edges_;
  std::vector<Loop> loops_;
  int num_components_ = 0;
  bool built_ = false;
};

}  // namespace dcel
}  // namespace unn

#endif  // UNN_DCEL_PLANAR_SUBDIVISION_H_
