#include "dcel/edge_shape.h"

#include <algorithm>
#include <cmath>

#include "geom/trig.h"
#include "util/check.h"

namespace unn {
namespace dcel {

using geom::FocalConic;
using geom::Vec2;

Vec2 ConicTangent(const FocalConic& conic, double theta) {
  // r(theta) = N / g(theta), g = 2 (D cos(theta - phi) - s), N = D^2 - s^2.
  // dP/dtheta = r' u(theta) + r u_perp(theta), r' = 2 N D sin(theta-phi)/g^2.
  double d = conic.D();
  double s = conic.s();
  double n = d * d - s * s;
  double g = 2.0 * (d * std::cos(theta - conic.phi()) - s);
  double r = n / g;
  double rp = 2.0 * n * d * std::sin(theta - conic.phi()) / (g * g);
  Vec2 u = geom::UnitVec(theta);
  return geom::Normalized(u * rp + geom::Perp(u) * r);
}

EdgeShape EdgeShape::Segment(Vec2 a, Vec2 b) {
  EdgeShape e;
  e.kind_ = Kind::kSegment;
  e.a_ = a;
  e.b_ = b;
  return e;
}

EdgeShape EdgeShape::Arc(const FocalConic& conic, double t0, double t1) {
  UNN_CHECK(t0 < t1);
  EdgeShape e;
  e.kind_ = Kind::kArc;
  e.arc_ = ArcData{conic, t0, t1};
  e.a_ = conic.PointAt(t0);
  e.b_ = conic.PointAt(t1);
  return e;
}

Vec2 EdgeShape::PointAt(double u) const {
  if (kind_ == Kind::kSegment) return Lerp(a_, b_, u);
  double t = arc_->t0 + u * (arc_->t1 - arc_->t0);
  return arc_->conic.PointAt(t);
}

Vec2 EdgeShape::TangentIntoEdgeAtA() const {
  if (kind_ == Kind::kSegment) return geom::Normalized(b_ - a_);
  return ConicTangent(arc_->conic, arc_->t0);
}

Vec2 EdgeShape::TangentIntoEdgeAtB() const {
  if (kind_ == Kind::kSegment) return geom::Normalized(a_ - b_);
  return -ConicTangent(arc_->conic, arc_->t1);
}

Vec2 EdgeShape::TravelDirAt(double u) const {
  if (kind_ == Kind::kSegment) return geom::Normalized(b_ - a_);
  double t = arc_->t0 + u * (arc_->t1 - arc_->t0);
  return ConicTangent(arc_->conic, t);
}

geom::Box EdgeShape::Bounds() const {
  geom::Box box;
  if (kind_ == Kind::kSegment) {
    box.Expand(a_);
    box.Expand(b_);
    return box;
  }
  // Sample densely and inflate by the largest adjacent gap: hyperbola arcs
  // are convex, so the sagitta between adjacent samples is bounded by the
  // chord length; doubling the largest gap is a conservative margin.
  const int kSamples = 65;
  Vec2 prev = PointAt(0.0);
  box.Expand(prev);
  double max_gap = 0.0;
  for (int i = 1; i < kSamples; ++i) {
    Vec2 p = PointAt(static_cast<double>(i) / (kSamples - 1));
    box.Expand(p);
    max_gap = std::max(max_gap, Dist(prev, p));
    prev = p;
  }
  return box.Inflated(max_gap);
}

void EdgeShape::VerticalRayHits(Vec2 q, double y_limit,
                                std::vector<double>* ys,
                                std::vector<Vec2>* dirs) const {
  if (kind_ == Kind::kSegment) {
    double xlo = std::min(a_.x, b_.x);
    double xhi = std::max(a_.x, b_.x);
    if (q.x < xlo || q.x > xhi || a_.x == b_.x) return;
    double t = (q.x - a_.x) / (b_.x - a_.x);
    double y = a_.y + t * (b_.y - a_.y);
    if (y > q.y && y <= y_limit) {
      ys->push_back(y);
      dirs->push_back(geom::Normalized(b_ - a_));
    }
    return;
  }
  FocalConic::SegmentHit hits[2];
  Vec2 top{q.x, y_limit};
  int n = arc_->conic.IntersectSegment(q, top, hits);
  for (int i = 0; i < n; ++i) {
    // Keep hits whose polar angle lies in the arc's theta interval. The
    // interval never wraps (callers split at 0), so a plain range test with
    // slack is enough.
    double th = hits[i].theta;
    bool inside = th >= arc_->t0 - 1e-9 && th <= arc_->t1 + 1e-9;
    if (!inside && th + geom::kTwoPi >= arc_->t0 - 1e-9 &&
        th + geom::kTwoPi <= arc_->t1 + 1e-9) {
      inside = true;  // t1 may exceed 2*pi marginally after clamping.
    }
    if (!inside) continue;
    if (hits[i].point.y <= q.y) continue;
    ys->push_back(hits[i].point.y);
    dirs->push_back(ConicTangent(arc_->conic, th));
  }
}

std::vector<Vec2> EdgeShape::Sample(int n) const {
  std::vector<Vec2> out;
  n = std::max(n, 2);
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    out.push_back(PointAt(static_cast<double>(i) / (n - 1)));
  }
  return out;
}

}  // namespace dcel
}  // namespace unn
