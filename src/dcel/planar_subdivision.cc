#include "dcel/planar_subdivision.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>

#include "util/check.h"

namespace unn {
namespace dcel {

using geom::Vec2;

int PlanarSubdivision::AddVertex(Vec2 p) {
  UNN_CHECK(!built_);
  vertices_.push_back(Vertex{p, {}});
  return static_cast<int>(vertices_.size()) - 1;
}

int PlanarSubdivision::AddEdge(int a, int b, const EdgeShape& shape,
                               int curve_id) {
  UNN_CHECK(!built_);
  UNN_CHECK(a >= 0 && a < NumVertices() && b >= 0 && b < NumVertices());
  int e = static_cast<int>(edges_.size());
  edges_.push_back(Edge{a, b, shape, curve_id});
  HalfEdge fwd;
  fwd.origin = a;
  fwd.twin = 2 * e + 1;
  fwd.edge = e;
  fwd.forward = true;
  HalfEdge rev;
  rev.origin = b;
  rev.twin = 2 * e;
  rev.edge = e;
  rev.forward = false;
  half_edges_.push_back(fwd);
  half_edges_.push_back(rev);
  return e;
}

Vec2 PlanarSubdivision::DepartureDir(int h) const {
  const HalfEdge& he = half_edges_[h];
  const EdgeShape& s = edges_[he.edge].shape;
  return he.forward ? s.TangentIntoEdgeAtA() : s.TangentIntoEdgeAtB();
}

Vec2 PlanarSubdivision::ArrivalDir(int h) const {
  // Direction of travel when arriving at the head: opposite of the twin's
  // departure direction.
  return -DepartureDir(half_edges_[h].twin);
}

int PlanarSubdivision::Head(int h) const {
  return half_edges_[half_edges_[h].twin].origin;
}

void PlanarSubdivision::SortStubs() {
  for (auto& v : vertices_) v.out.clear();
  for (int h = 0; h < NumHalfEdges(); ++h) {
    vertices_[half_edges_[h].origin].out.push_back(h);
  }
  for (auto& v : vertices_) {
    std::sort(v.out.begin(), v.out.end(), [&](int h1, int h2) {
      Vec2 d1 = DepartureDir(h1);
      Vec2 d2 = DepartureDir(h2);
      double a1 = std::atan2(d1.y, d1.x);
      double a2 = std::atan2(d2.y, d2.x);
      if (a1 != a2) return a1 < a2;
      // Coincident stubs (parallel identical edges between the same vertex
      // pair, e.g. duplicated uncertain points): the circular order at the
      // two endpoints must be reversed for the embedding to stay planar, so
      // the tie-break key flips sign with the half-edge orientation.
      auto key = [this](int h) {
        const HalfEdge& he = half_edges_[h];
        return he.forward ? he.edge : -he.edge - 1;
      };
      return key(h1) < key(h2);
    });
  }
}

void PlanarSubdivision::LinkNextPrev() {
  // Index of each half-edge within its origin's sorted stub list.
  std::vector<int> pos(NumHalfEdges(), -1);
  for (const auto& v : vertices_) {
    for (size_t i = 0; i < v.out.size(); ++i) pos[v.out[i]] = static_cast<int>(i);
  }
  for (int h = 0; h < NumHalfEdges(); ++h) {
    int t = half_edges_[h].twin;  // Out-edge at Head(h).
    const Vertex& v = vertices_[half_edges_[t].origin];
    int m = static_cast<int>(v.out.size());
    UNN_DCHECK(m > 0);
    // next(h): the out-edge immediately clockwise from twin(h), which keeps
    // the face interior on the left while walking.
    int idx = (pos[t] - 1 + m) % m;
    int nh = v.out[idx];
    half_edges_[h].next = nh;
    half_edges_[nh].prev = h;
  }
}

void PlanarSubdivision::ExtractLoops() {
  loops_.clear();
  for (int h = 0; h < NumHalfEdges(); ++h) half_edges_[h].loop = -1;
  for (int h = 0; h < NumHalfEdges(); ++h) {
    if (half_edges_[h].loop != -1) continue;
    int l = static_cast<int>(loops_.size());
    Loop loop;
    loop.first_half_edge = h;
    int cur = h;
    int count = 0;
    do {
      half_edges_[cur].loop = l;
      cur = half_edges_[cur].next;
      ++count;
      UNN_CHECK_MSG(count <= NumHalfEdges(), "loop walk did not close");
    } while (cur != h);
    loop.num_half_edges = count;
    loops_.push_back(loop);
  }
  for (int l = 0; l < NumLoops(); ++l) loops_[l].ccw = ComputeLoopCcw(l);
}

bool PlanarSubdivision::ComputeLoopCcw(int l) const {
  // Primary rule: sign of the sampled signed area (Green's theorem). A
  // vertex-turn test is NOT sound here: with curved edges the loop's true
  // leftmost point may lie strictly inside an arc, and the turn at the
  // leftmost *vertex* (often a mere envelope-breakpoint kink) can have
  // either sign. For near-zero areas (thin lenses, slivers) fall back to
  // the tangent at the leftmost sampled point: a CCW loop traverses its
  // leftmost point moving downward.
  const Loop& loop = loops_[l];
  int h = loop.first_half_edge;
  double area = 0.0;
  geom::Box bbox;
  double min_x = std::numeric_limits<double>::infinity();
  double min_x_dir_y = 0.0;
  int cur = h;
  do {
    const HalfEdge& he = half_edges_[cur];
    const EdgeShape& s = edges_[he.edge].shape;
    const int kSamples = 33;
    for (int i = 0; i < kSamples; ++i) {
      double u = static_cast<double>(i) / (kSamples - 1);
      double ue = he.forward ? u : 1.0 - u;
      Vec2 p = s.PointAt(ue);
      bbox.Expand(p);
      Vec2 d = s.TravelDirAt(ue);
      if (!he.forward) d = -d;
      // Among samples tied for leftmost (within tolerance decided later),
      // prefer the one with the steepest vertical motion.
      if (p.x < min_x - 1e-12 ||
          (p.x < min_x + 1e-12 && std::abs(d.y) > std::abs(min_x_dir_y))) {
        min_x = std::min(min_x, p.x);
        min_x_dir_y = d.y;
      }
      if (i + 1 < kSamples) {
        double un = he.forward ? u + 1.0 / (kSamples - 1)
                               : 1.0 - u - 1.0 / (kSamples - 1);
        area += Cross(p, s.PointAt(un));
      }
    }
    cur = he.next;
  } while (cur != h);
  area *= 0.5;
  double area_floor = 1e-9 * bbox.Diagonal() * bbox.Diagonal();
  if (std::abs(area) > area_floor) return area > 0;
  return min_x_dir_y < 0;
}

void PlanarSubdivision::ComputeComponents() {
  std::vector<int> parent(NumVertices());
  std::iota(parent.begin(), parent.end(), 0);
  std::vector<int> rank(NumVertices(), 0);
  std::function<int(int)> find = [&](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const Edge& e : edges_) {
    int ra = find(e.a), rb = find(e.b);
    if (ra == rb) continue;
    if (rank[ra] < rank[rb]) std::swap(ra, rb);
    parent[rb] = ra;
    if (rank[ra] == rank[rb]) ++rank[ra];
  }
  num_components_ = 0;
  for (int v = 0; v < NumVertices(); ++v) {
    if (find(v) == v) ++num_components_;
  }
}

int PlanarSubdivision::NumCcwLoops() const {
  int n = 0;
  for (const Loop& l : loops_) n += l.ccw;
  return n;
}

void PlanarSubdivision::Build() {
  UNN_CHECK(!built_);
  built_ = true;
  SortStubs();
  LinkNextPrev();
  ExtractLoops();
  ComputeComponents();
}

}  // namespace dcel
}  // namespace unn
