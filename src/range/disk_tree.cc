#include "range/disk_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/check.h"

namespace unn {
namespace range {

using geom::Vec2;

namespace {
constexpr int kLeafSize = 8;
}

DiskTree::DiskTree(std::vector<Vec2> centers, std::vector<double> radii)
    : centers_(std::move(centers)), radii_(std::move(radii)) {
  UNN_CHECK(centers_.size() == radii_.size());
  order_.resize(centers_.size());
  std::iota(order_.begin(), order_.end(), 0);
  if (!centers_.empty()) {
    root_ = BuildRange(0, static_cast<int>(centers_.size()), 0);
  }
}

int DiskTree::BuildRange(int begin, int end, int depth) {
  Node node;
  node.r_min = std::numeric_limits<double>::infinity();
  node.r_max = 0;
  for (int i = begin; i < end; ++i) {
    node.box.Expand(centers_[order_[i]]);
    node.r_min = std::min(node.r_min, radii_[order_[i]]);
    node.r_max = std::max(node.r_max, radii_[order_[i]]);
  }
  int id = static_cast<int>(nodes_.size());
  nodes_.push_back(node);
  if (end - begin <= kLeafSize) {
    nodes_[id].begin = begin;
    nodes_[id].end = end;
    return id;
  }
  int mid = (begin + end) / 2;
  bool by_x = (depth % 2 == 0);
  std::nth_element(
      order_.begin() + begin, order_.begin() + mid, order_.begin() + end,
      [&](int a, int b) {
        return by_x ? centers_[a].x < centers_[b].x : centers_[a].y < centers_[b].y;
      });
  int l = BuildRange(begin, mid, depth + 1);
  int r = BuildRange(mid, end, depth + 1);
  nodes_[id].left = l;
  nodes_[id].right = r;
  return id;
}

void DiskTree::MinMaxRec(int node, Vec2 q, double* best, int* argmin) const {
  const Node& n = nodes_[node];
  // Lower bound for min (d(q,c)+r) over the subtree.
  double lb = std::sqrt(n.box.DistSqTo(q)) + n.r_min;
  if (lb >= *best) return;
  if (n.left < 0) {
    for (int i = n.begin; i < n.end; ++i) {
      int id = order_[i];
      double v = Dist(q, centers_[id]) + radii_[id];
      if (v < *best) {
        *best = v;
        if (argmin != nullptr) *argmin = id;
      }
    }
    return;
  }
  double ll = std::sqrt(nodes_[n.left].box.DistSqTo(q)) + nodes_[n.left].r_min;
  double lr = std::sqrt(nodes_[n.right].box.DistSqTo(q)) + nodes_[n.right].r_min;
  if (ll <= lr) {
    MinMaxRec(n.left, q, best, argmin);
    MinMaxRec(n.right, q, best, argmin);
  } else {
    MinMaxRec(n.right, q, best, argmin);
    MinMaxRec(n.left, q, best, argmin);
  }
}

double DiskTree::MinMaxDist(Vec2 q, int* argmin) const {
  double best = std::numeric_limits<double>::infinity();
  if (root_ >= 0) MinMaxRec(root_, q, &best, argmin);
  return best;
}

void DiskTree::ReportRec(int node, Vec2 q, double bound,
                         std::vector<int>* out) const {
  const Node& n = nodes_[node];
  // Prune when even the closest disk of the subtree is too far:
  // min over subtree of (d(q,c) - r) >= d(q,box) - r_max.
  if (std::sqrt(n.box.DistSqTo(q)) - n.r_max >= bound) return;
  if (n.left < 0) {
    for (int i = n.begin; i < n.end; ++i) {
      int id = order_[i];
      if (std::max(Dist(q, centers_[id]) - radii_[id], 0.0) < bound) {
        out->push_back(id);
      }
    }
    return;
  }
  ReportRec(n.left, q, bound, out);
  ReportRec(n.right, q, bound, out);
}

void DiskTree::ReportMinDistLess(Vec2 q, double bound,
                                 std::vector<int>* out) const {
  if (root_ >= 0) ReportRec(root_, q, bound, out);
}

}  // namespace range
}  // namespace unn
