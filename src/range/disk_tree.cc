#include "range/disk_tree.h"

#include <algorithm>
#include <limits>

#include "geom/box_metrics.h"
#include "spatial/traverse.h"
#include "util/check.h"

namespace unn {
namespace range {

using geom::Vec2;

DiskTree::DiskTree(std::vector<Vec2> centers, std::vector<double> radii)
    : centers_(std::move(centers)), radii_(std::move(radii)) {
  UNN_CHECK(centers_.size() == radii_.size());
  tree_ = spatial::FlatKdTree<spatial::MinMaxAugment>(
      centers_, {.leaf_size = 8, .split = spatial::SplitRule::kAlternate},
      spatial::MinMaxAugment(&radii_));
}

double DiskTree::MinMaxDist(Vec2 q, int* argmin) const {
  double best = std::numeric_limits<double>::infinity();
  // Lower bound for min (d(q,c)+r) over a subtree: closest box point plus
  // the smallest radius in the subtree.
  auto lb = [&](int n) {
    return geom::MinDistToBox(q, tree_.box(n)) + tree_.aug().min(n);
  };
  spatial::PrunedVisitOrdered(
      tree_, lb, [&](int n) { return lb(n) >= best; },
      [&](int n) {
        for (int i = tree_.begin(n); i < tree_.end(n); ++i) {
          int id = tree_.item(i);
          double v = Dist(q, centers_[id]) + radii_[id];
          if (v < best) {
            best = v;
            if (argmin != nullptr) *argmin = id;
          }
        }
      });
  return best;
}

void DiskTree::ReportMinDistLess(Vec2 q, double bound,
                                 std::vector<int>* out) const {
  // Prune when even the closest disk of the subtree is too far:
  // min over subtree of (d(q,c) - r) >= d(q,box) - r_max.
  spatial::PrunedVisit(
      tree_,
      [&](int n) {
        return geom::MinDistToBox(q, tree_.box(n)) - tree_.aug().max(n) >=
               bound;
      },
      [&](int n) {
        for (int i = tree_.begin(n); i < tree_.end(n); ++i) {
          int id = tree_.item(i);
          if (std::max(Dist(q, centers_[id]) - radii_[id], 0.0) < bound) {
            out->push_back(id);
          }
        }
        return true;
      });
}

}  // namespace range
}  // namespace unn
