#include "range/kdtree.h"

#include <limits>

#include "obs/profile.h"

namespace unn {
namespace range {

using geom::Vec2;

KdTree::KdTree(std::vector<Vec2> pts)
    : pts_(std::move(pts)),
      tree_(pts_, {.leaf_size = 8,
                   .split = spatial::SplitRule::kAlternateWideGuard}) {}

int KdTree::Nearest(Vec2 q, double* dist) const {
  if (tree_.root() < 0) return -1;
  int best = -1;
  double best_d = std::numeric_limits<double>::infinity();
  // Opt-in traversal profiling: one relaxed load when off, a stack-local
  // stats block folded into the global sink when on.
  spatial::TraversalStats local;
  spatial::TraversalStats* st =
      obs::TraversalProfilingEnabled() ? &local : nullptr;
  spatial::PrunedVisitOrdered(
      tree_, [&](int n) { return tree_.box(n).DistSqTo(q); },
      [&](int n) { return tree_.box(n).DistSqTo(q) >= best_d * best_d; },
      [&](int n) {
        for (int i = tree_.begin(n); i < tree_.end(n); ++i) {
          double d = Dist(q, pts_[tree_.item(i)]);
          if (st != nullptr) ++st->points_evaluated;
          if (d < best_d) {
            best_d = d;
            best = tree_.item(i);
          }
        }
      },
      st);
  if (st != nullptr) obs::RecordTraversal(obs::TraversalOp::kKdNearest, local);
  if (dist != nullptr) *dist = best_d;
  return best;
}

void KdTree::NearestBatch(std::span<const Vec2> queries,
                          std::span<int> out_ids, std::span<double> out_dists,
                          spatial::BatchStats* stats) const {
  constexpr int kW = geom::kLaneWidth;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // The scalar descent compares hypot-based distances while any shared
  // bound compares squared distances, and the two can disagree by a few
  // ulps right at a pruning boundary. The batch pass therefore prunes
  // against a widened threshold best^2 * kPruneHi (never discarding a
  // boundary item) and flags for scalar replay any lane that evaluates a
  // distance within kFlagBand (relative) of its evolving best — above or
  // below — so a lane that stays unflagged provably saw no boundary
  // case and its strict-min argmin equals the scalar result. kPruneHi's
  // margin (4e-9 on the square ~ 2e-9 on the distance) is strictly wider
  // than kFlagBand, so every item inside the flag band is evaluated.
  constexpr double kPruneHi = 1.0 + 4e-9;
  constexpr double kFlagBand = 1e-9;
  for (size_t base = 0; base < queries.size(); base += kW) {
    int count = static_cast<int>(std::min<size_t>(kW, queries.size() - base));
    Vec2 qv[kW];
    double qx[kW], qy[kW];
    for (int l = 0; l < kW; ++l) {
      qv[l] = queries[base + std::min(l, count - 1)];  // Pad ragged packs.
      qx[l] = qv[l].x;
      qy[l] = qv[l].y;
    }
    double best[kW];
    int arg[kW];
    bool replay[kW];
    for (int l = 0; l < kW; ++l) {
      best[l] = kInf;
      arg[l] = -1;
      replay[l] = false;
    }
    spatial::BatchPrunedVisit(
        tree_, spatial::FullMask(count),
        [&](int n, spatial::LaneMask m) {
          double lb[kW];
          geom::BoxDistSqLanes(qx, qy, tree_.box(n), lb);
          spatial::LaneMask keep = 0;
          for (int l = 0; l < kW; ++l) {
            if ((m >> l & 1u) != 0 && !(lb[l] > best[l] * best[l] * kPruneHi)) {
              keep |= static_cast<spatial::LaneMask>(1u << l);
            }
          }
          return keep;
        },
        [&](int n, spatial::LaneMask m) {
          for (int s = tree_.begin(n); s < tree_.end(n); ++s) {
            int id = tree_.item(s);
            double dsq[kW];
            geom::DistSqLanes(qx, qy, pts_[id], dsq);
            for (int l = 0; l < kW; ++l) {
              if ((m >> l & 1u) == 0) continue;
              if (dsq[l] > best[l] * best[l] * kPruneHi) continue;
              if (stats != nullptr) ++stats->lane_points_evaluated;
              double d = Dist(qv[l], pts_[id]);
              if (d == best[l] ||
                  (d < best[l] && d >= best[l] * (1.0 - kFlagBand)) ||
                  (d > best[l] && d <= best[l] * (1.0 + kFlagBand))) {
                replay[l] = true;
              }
              if (d < best[l]) {
                best[l] = d;
                arg[l] = id;
              }
            }
          }
        },
        stats);
    if (stats != nullptr) ++stats->packs;
    for (int l = 0; l < count; ++l) {
      double d = best[l];
      int id = arg[l];
      if (replay[l]) {
        if (stats != nullptr) ++stats->scalar_replays;
        id = Nearest(queries[base + l], &d);
      }
      out_ids[base + l] = id;
      if (!out_dists.empty()) out_dists[base + l] = d;
    }
  }
}

std::vector<int> KdTree::KNearest(Vec2 q, int k) const {
  std::vector<int> out;
  Enumerator en(*this, q);
  for (int i = 0; i < k; ++i) {
    int id = en.Next();
    if (id < 0) break;
    out.push_back(id);
  }
  return out;
}

void KdTree::RangeCircle(Vec2 q, double r, std::vector<int>* out,
                         bool inclusive) const {
  spatial::PrunedVisit(
      tree_, [&](int n) { return tree_.box(n).DistSqTo(q) > r * r; },
      [&](int n) {
        for (int i = tree_.begin(n); i < tree_.end(n); ++i) {
          int id = tree_.item(i);
          double d = Dist(q, pts_[id]);
          if (d < r || (inclusive && d == r)) out->push_back(id);
        }
        return true;
      });
}

KdTree::Enumerator::Enumerator(const KdTree& tree, Vec2 q)
    : impl_(tree.tree_, Keys{&tree, q}) {}

}  // namespace range
}  // namespace unn
