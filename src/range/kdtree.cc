#include "range/kdtree.h"

#include <limits>

#include "obs/profile.h"

namespace unn {
namespace range {

using geom::Vec2;

KdTree::KdTree(std::vector<Vec2> pts)
    : pts_(std::move(pts)),
      tree_(pts_, {.leaf_size = 8,
                   .split = spatial::SplitRule::kAlternateWideGuard}) {}

int KdTree::Nearest(Vec2 q, double* dist) const {
  if (tree_.root() < 0) return -1;
  int best = -1;
  double best_d = std::numeric_limits<double>::infinity();
  // Opt-in traversal profiling: one relaxed load when off, a stack-local
  // stats block folded into the global sink when on.
  spatial::TraversalStats local;
  spatial::TraversalStats* st =
      obs::TraversalProfilingEnabled() ? &local : nullptr;
  spatial::PrunedVisitOrdered(
      tree_, [&](int n) { return tree_.box(n).DistSqTo(q); },
      [&](int n) { return tree_.box(n).DistSqTo(q) >= best_d * best_d; },
      [&](int n) {
        for (int i = tree_.begin(n); i < tree_.end(n); ++i) {
          double d = Dist(q, pts_[tree_.item(i)]);
          if (st != nullptr) ++st->points_evaluated;
          if (d < best_d) {
            best_d = d;
            best = tree_.item(i);
          }
        }
      },
      st);
  if (st != nullptr) obs::RecordTraversal(obs::TraversalOp::kKdNearest, local);
  if (dist != nullptr) *dist = best_d;
  return best;
}

std::vector<int> KdTree::KNearest(Vec2 q, int k) const {
  std::vector<int> out;
  Enumerator en(*this, q);
  for (int i = 0; i < k; ++i) {
    int id = en.Next();
    if (id < 0) break;
    out.push_back(id);
  }
  return out;
}

void KdTree::RangeCircle(Vec2 q, double r, std::vector<int>* out,
                         bool inclusive) const {
  spatial::PrunedVisit(
      tree_, [&](int n) { return tree_.box(n).DistSqTo(q) > r * r; },
      [&](int n) {
        for (int i = tree_.begin(n); i < tree_.end(n); ++i) {
          int id = tree_.item(i);
          double d = Dist(q, pts_[id]);
          if (d < r || (inclusive && d == r)) out->push_back(id);
        }
        return true;
      });
}

KdTree::Enumerator::Enumerator(const KdTree& tree, Vec2 q)
    : impl_(tree.tree_, Keys{&tree, q}) {}

}  // namespace range
}  // namespace unn
