#include "range/kdtree.h"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "obs/profile.h"

namespace unn {
namespace range {

using geom::Vec2;

KdTree::KdTree(std::vector<Vec2> pts)
    : pts_(std::move(pts)),
      tree_(pts_, {.leaf_size = 8,
                   .split = spatial::SplitRule::kAlternateWideGuard}) {}

int KdTree::Nearest(Vec2 q, double* dist) const {
  if (tree_.root() < 0) return -1;
  int best = -1;
  double best_d = std::numeric_limits<double>::infinity();
  // Opt-in traversal profiling: one relaxed load when off, a stack-local
  // stats block folded into the global sink when on.
  spatial::TraversalStats local;
  spatial::TraversalStats* st =
      obs::TraversalProfilingEnabled() ? &local : nullptr;
  spatial::PrunedVisitOrdered(
      tree_, [&](int n) { return tree_.box(n).DistSqTo(q); },
      [&](int n) { return tree_.box(n).DistSqTo(q) >= best_d * best_d; },
      [&](int n) {
        for (int i = tree_.begin(n); i < tree_.end(n); ++i) {
          double d = Dist(q, pts_[tree_.item(i)]);
          if (st != nullptr) ++st->points_evaluated;
          if (d < best_d) {
            best_d = d;
            best = tree_.item(i);
          }
        }
      },
      st);
  if (st != nullptr) obs::RecordTraversal(obs::TraversalOp::kKdNearest, local);
  if (dist != nullptr) *dist = best_d;
  return best;
}

void KdTree::NearestBatch(std::span<const Vec2> queries,
                          std::span<int> out_ids, std::span<double> out_dists,
                          spatial::BatchStats* stats) const {
  constexpr int kW = geom::kLaneWidth;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // The scalar descent compares hypot-based distances while any shared
  // bound compares squared distances, and the two can disagree by a few
  // ulps right at a pruning boundary. The batch pass therefore prunes
  // against a widened threshold best^2 * kPruneHi (never discarding a
  // boundary item) and flags for scalar replay any lane that evaluates a
  // distance within kFlagBand (relative) of its evolving best — above or
  // below — so a lane that stays unflagged provably saw no boundary
  // case and its strict-min argmin equals the scalar result. kPruneHi's
  // margin (4e-9 on the square ~ 2e-9 on the distance) is strictly wider
  // than kFlagBand, so every item inside the flag band is evaluated.
  constexpr double kPruneHi = 1.0 + 4e-9;
  constexpr double kFlagBand = 1e-9;
  for (size_t base = 0; base < queries.size(); base += kW) {
    int count = static_cast<int>(std::min<size_t>(kW, queries.size() - base));
    Vec2 qv[kW];
    double qx[kW], qy[kW];
    for (int l = 0; l < kW; ++l) {
      qv[l] = queries[base + std::min(l, count - 1)];  // Pad ragged packs.
      qx[l] = qv[l].x;
      qy[l] = qv[l].y;
    }
    double best[kW];
    int arg[kW];
    bool replay[kW];
    for (int l = 0; l < kW; ++l) {
      best[l] = kInf;
      arg[l] = -1;
      replay[l] = false;
    }
    spatial::BatchPrunedVisitNearFirst(
        tree_, spatial::FullMask(count),
        [&](int n, double* lb) { geom::BoxDistSqLanes(qx, qy, tree_.box(n), lb); },
        [&](int l, double lb) { return lb > best[l] * best[l] * kPruneHi; },
        [&](int n, spatial::LaneMask m) {
          for (int s = tree_.begin(n); s < tree_.end(n); ++s) {
            int id = tree_.item(s);
            double dsq[kW];
            geom::DistSqLanes(qx, qy, pts_[id], dsq);
            for (int l = 0; l < kW; ++l) {
              if ((m >> l & 1u) == 0) continue;
              if (dsq[l] > best[l] * best[l] * kPruneHi) continue;
              if (stats != nullptr) ++stats->lane_points_evaluated;
              double d = Dist(qv[l], pts_[id]);
              if (d == best[l] ||
                  (d < best[l] && d >= best[l] * (1.0 - kFlagBand)) ||
                  (d > best[l] && d <= best[l] * (1.0 + kFlagBand))) {
                replay[l] = true;
              }
              if (d < best[l]) {
                best[l] = d;
                arg[l] = id;
              }
            }
          }
        },
        stats);
    if (stats != nullptr) ++stats->packs;
    for (int l = 0; l < count; ++l) {
      double d = best[l];
      int id = arg[l];
      if (replay[l]) {
        if (stats != nullptr) ++stats->scalar_replays;
        id = Nearest(queries[base + l], &d);
      }
      out_ids[base + l] = id;
      if (!out_dists.empty()) out_dists[base + l] = d;
    }
  }
}

void KdTree::KNearestBatch(std::span<const Vec2> queries, int k,
                           std::vector<std::vector<int>>* out_ids,
                           std::vector<std::vector<double>>* out_dists,
                           spatial::BatchStats* stats) const {
  constexpr int kW = geom::kLaneWidth;
  // Same widened-prune / flag-band pairing as NearestBatch, with the
  // evolving k-th distance playing the role of the best: the shared pass
  // never discards a candidate at the selection boundary, and any lane
  // that saw a candidate within the band of that boundary — or an exact
  // tie inside its selected prefix, where the enumerator's yield order
  // is heap order — replays the scalar enumeration verbatim.
  constexpr double kPruneHi = 1.0 + 4e-9;
  constexpr double kFlagBand = 1e-9;
  out_ids->assign(queries.size(), {});
  if (out_dists != nullptr) out_dists->assign(queries.size(), {});
  if (k <= 0) return;
  for (size_t base = 0; base < queries.size(); base += kW) {
    int count = static_cast<int>(std::min<size_t>(kW, queries.size() - base));
    Vec2 qv[kW];
    double qx[kW], qy[kW];
    for (int l = 0; l < kW; ++l) {
      qv[l] = queries[base + std::min(l, count - 1)];  // Pad ragged packs.
      qx[l] = qv[l].x;
      qy[l] = qv[l].y;
    }
    // Per-lane max-heap of the k smallest (distance, id) seen so far;
    // cand[l].front() is the k-th distance once the lane is full.
    std::vector<std::pair<double, int>> cand[kW];
    bool replay[kW];
    for (int l = 0; l < kW; ++l) {
      cand[l].reserve(k);
      replay[l] = false;
    }
    auto kth = [&](int l) { return cand[l].front().first; };
    spatial::BatchPrunedVisitNearFirst(
        tree_, spatial::FullMask(count),
        [&](int n, double* lb) { geom::BoxDistSqLanes(qx, qy, tree_.box(n), lb); },
        [&](int l, double lb) {
          return static_cast<int>(cand[l].size()) == k &&
                 lb > kth(l) * kth(l) * kPruneHi;
        },
        [&](int n, spatial::LaneMask m) {
          for (int s = tree_.begin(n); s < tree_.end(n); ++s) {
            int id = tree_.item(s);
            double dsq[kW];
            geom::DistSqLanes(qx, qy, pts_[id], dsq);
            for (int l = 0; l < kW; ++l) {
              if ((m >> l & 1u) == 0) continue;
              bool full = static_cast<int>(cand[l].size()) == k;
              if (full && dsq[l] > kth(l) * kth(l) * kPruneHi) continue;
              if (stats != nullptr) ++stats->lane_points_evaluated;
              double d = Dist(qv[l], pts_[id]);
              if (!full) {
                cand[l].push_back({d, id});
                std::push_heap(cand[l].begin(), cand[l].end());
                continue;
              }
              double bound = kth(l);
              if (d >= bound * (1.0 - kFlagBand) &&
                  d <= bound * (1.0 + kFlagBand)) {
                replay[l] = true;
              }
              if (d < bound) {
                std::pop_heap(cand[l].begin(), cand[l].end());
                cand[l].back() = {d, id};
                std::push_heap(cand[l].begin(), cand[l].end());
                // The displaced candidate ties the new k-th distance:
                // which of the two equal values keeps the slot is
                // enumeration order the sort cannot reproduce.
                if (kth(l) == bound) replay[l] = true;
              }
            }
          }
        },
        stats);
    if (stats != nullptr) ++stats->packs;
    for (int l = 0; l < count; ++l) {
      std::vector<std::pair<double, int>>& c = cand[l];
      std::sort(c.begin(), c.end());
      for (size_t j = 0; j + 1 < c.size(); ++j) {
        // An exact tie inside the selection: the enumerator's relative
        // order of the tied ids is heap order, which the sort cannot
        // reproduce.
        if (c[j].first == c[j + 1].first) replay[l] = true;
      }
      std::vector<int>& ids = (*out_ids)[base + l];
      if (replay[l]) {
        if (stats != nullptr) ++stats->scalar_replays;
        ids = KNearest(queries[base + l], k);
      } else {
        ids.reserve(c.size());
        for (const auto& [d, id] : c) ids.push_back(id);
      }
      if (out_dists != nullptr) {
        std::vector<double>& ds = (*out_dists)[base + l];
        ds.reserve(ids.size());
        for (int id : ids) ds.push_back(Dist(queries[base + l], pts_[id]));
      }
    }
  }
}

std::vector<int> KdTree::KNearest(Vec2 q, int k) const {
  std::vector<int> out;
  Enumerator en(*this, q);
  for (int i = 0; i < k; ++i) {
    int id = en.Next();
    if (id < 0) break;
    out.push_back(id);
  }
  return out;
}

void KdTree::RangeCircle(Vec2 q, double r, std::vector<int>* out,
                         bool inclusive) const {
  spatial::PrunedVisit(
      tree_, [&](int n) { return tree_.box(n).DistSqTo(q) > r * r; },
      [&](int n) {
        for (int i = tree_.begin(n); i < tree_.end(n); ++i) {
          int id = tree_.item(i);
          double d = Dist(q, pts_[id]);
          if (d < r || (inclusive && d == r)) out->push_back(id);
        }
        return true;
      });
}

void KdTree::RangeCircleBatch(std::span<const Vec2> queries,
                              std::span<const double> radii,
                              std::vector<std::vector<int>>* out,
                              bool inclusive,
                              spatial::BatchStats* stats) const {
  constexpr int kW = geom::kLaneWidth;
  // The node prune is the scalar test verbatim per lane (BoxDistSqLanes
  // computes box.DistSqTo's arithmetic), so each lane's visit set and
  // left-first report order match RangeCircle exactly. The leaf uses a
  // widened squared-distance prefilter: dsq > r^2 * kPruneHi implies
  // d > r by more than the hypot-vs-square rounding gap, so no accepted
  // point (d < r, or d == r when inclusive) is ever skipped; survivors
  // run the scalar distance and accept test unchanged.
  constexpr double kPruneHi = 1.0 + 4e-9;
  out->assign(queries.size(), {});
  // Per-lane scratch reused across packs: hit lists grow into retained
  // capacity, and each query's result gets one exact-size allocation.
  std::vector<int> scratch[kW];
  for (size_t base = 0; base < queries.size(); base += kW) {
    int count = static_cast<int>(std::min<size_t>(kW, queries.size() - base));
    Vec2 qv[kW];
    double qx[kW], qy[kW], r[kW];
    for (int l = 0; l < kW; ++l) {
      qv[l] = queries[base + std::min(l, count - 1)];  // Pad ragged packs.
      qx[l] = qv[l].x;
      qy[l] = qv[l].y;
      r[l] = radii[base + std::min(l, count - 1)];
      scratch[l].clear();
    }
    spatial::BatchPrunedVisit(
        tree_, spatial::FullMask(count),
        [&](int n, spatial::LaneMask m) {
          double bsq[kW];
          geom::BoxDistSqLanes(qx, qy, tree_.box(n), bsq);
          spatial::LaneMask keep = 0;
          for (int l = 0; l < kW; ++l) {
            if ((m >> l & 1u) != 0 && !(bsq[l] > r[l] * r[l])) {
              keep |= static_cast<spatial::LaneMask>(1u << l);
            }
          }
          return keep;
        },
        [&](int n, spatial::LaneMask m) {
          for (int s = tree_.begin(n); s < tree_.end(n); ++s) {
            int id = tree_.item(s);
            double dsq[kW];
            geom::DistSqLanes(qx, qy, pts_[id], dsq);
            for (int l = 0; l < kW; ++l) {
              if ((m >> l & 1u) == 0) continue;
              if (dsq[l] > r[l] * r[l] * kPruneHi) continue;
              if (stats != nullptr) ++stats->lane_points_evaluated;
              double d = Dist(qv[l], pts_[id]);
              if (d < r[l] || (inclusive && d == r[l])) {
                scratch[l].push_back(id);
              }
            }
          }
        },
        stats);
    for (int l = 0; l < count; ++l) {
      (*out)[base + l].assign(scratch[l].begin(), scratch[l].end());
    }
    if (stats != nullptr) ++stats->packs;
  }
}

KdTree::Enumerator::Enumerator(const KdTree& tree, Vec2 q)
    : impl_(tree.tree_, Keys{&tree, q}) {}

}  // namespace range
}  // namespace unn
