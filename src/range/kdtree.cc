#include "range/kdtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/check.h"

namespace unn {
namespace range {

using geom::Vec2;

namespace {
constexpr int kLeafSize = 8;
}

KdTree::KdTree(std::vector<Vec2> pts) : pts_(std::move(pts)) {
  order_.resize(pts_.size());
  std::iota(order_.begin(), order_.end(), 0);
  if (!pts_.empty()) {
    root_ = BuildRange(0, static_cast<int>(pts_.size()), 0);
  }
}

int KdTree::BuildRange(int begin, int end, int depth) {
  Node node;
  for (int i = begin; i < end; ++i) node.box.Expand(pts_[order_[i]]);
  int id = static_cast<int>(nodes_.size());
  nodes_.push_back(node);
  if (end - begin <= kLeafSize) {
    nodes_[id].begin = begin;
    nodes_[id].end = end;
    return id;
  }
  int mid = (begin + end) / 2;
  bool by_x = (depth % 2 == 0);
  // Split on the wider axis when the default axis is degenerate.
  if (nodes_[id].box.Width() < 1e-12 * nodes_[id].box.Height()) by_x = false;
  if (nodes_[id].box.Height() < 1e-12 * nodes_[id].box.Width()) by_x = true;
  std::nth_element(order_.begin() + begin, order_.begin() + mid,
                   order_.begin() + end, [&](int a, int b) {
                     return by_x ? pts_[a].x < pts_[b].x : pts_[a].y < pts_[b].y;
                   });
  int l = BuildRange(begin, mid, depth + 1);
  int r = BuildRange(mid, end, depth + 1);
  nodes_[id].left = l;
  nodes_[id].right = r;
  return id;
}

void KdTree::NearestRec(int node, Vec2 q, int* best, double* best_d) const {
  const Node& n = nodes_[node];
  if (n.box.DistSqTo(q) >= *best_d * *best_d) return;
  if (n.left < 0) {
    for (int i = n.begin; i < n.end; ++i) {
      double d = Dist(q, pts_[order_[i]]);
      if (d < *best_d) {
        *best_d = d;
        *best = order_[i];
      }
    }
    return;
  }
  double dl = nodes_[n.left].box.DistSqTo(q);
  double dr = nodes_[n.right].box.DistSqTo(q);
  if (dl <= dr) {
    NearestRec(n.left, q, best, best_d);
    NearestRec(n.right, q, best, best_d);
  } else {
    NearestRec(n.right, q, best, best_d);
    NearestRec(n.left, q, best, best_d);
  }
}

int KdTree::Nearest(Vec2 q, double* dist) const {
  if (root_ < 0) return -1;
  int best = -1;
  double best_d = std::numeric_limits<double>::infinity();
  NearestRec(root_, q, &best, &best_d);
  if (dist != nullptr) *dist = best_d;
  return best;
}

std::vector<int> KdTree::KNearest(Vec2 q, int k) const {
  std::vector<int> out;
  Enumerator en(*this, q);
  for (int i = 0; i < k; ++i) {
    int id = en.Next();
    if (id < 0) break;
    out.push_back(id);
  }
  return out;
}

void KdTree::RangeRec(int node, Vec2 q, double r, bool inclusive,
                      std::vector<int>* out) const {
  const Node& n = nodes_[node];
  if (n.box.DistSqTo(q) > r * r) return;
  if (n.left < 0) {
    for (int i = n.begin; i < n.end; ++i) {
      double d = Dist(q, pts_[order_[i]]);
      if (d < r || (inclusive && d == r)) out->push_back(order_[i]);
    }
    return;
  }
  RangeRec(n.left, q, r, inclusive, out);
  RangeRec(n.right, q, r, inclusive, out);
}

void KdTree::RangeCircle(Vec2 q, double r, std::vector<int>* out,
                         bool inclusive) const {
  if (root_ < 0) return;
  RangeRec(root_, q, r, inclusive, out);
}

KdTree::Enumerator::Enumerator(const KdTree& tree, Vec2 q)
    : tree_(tree), q_(q) {
  if (tree.root_ >= 0) {
    heap_.push({std::sqrt(tree.nodes_[tree.root_].box.DistSqTo(q)),
                tree.root_, -1});
  }
}

int KdTree::Enumerator::Next(double* dist) {
  while (!heap_.empty()) {
    Entry e = heap_.top();
    heap_.pop();
    if (e.node < 0) {
      if (dist != nullptr) *dist = e.key;
      return e.point;
    }
    const Node& n = tree_.nodes_[e.node];
    if (n.left < 0) {
      for (int i = n.begin; i < n.end; ++i) {
        int id = tree_.order_[i];
        heap_.push({Dist(q_, tree_.pts_[id]), -1, id});
      }
    } else {
      heap_.push({std::sqrt(tree_.nodes_[n.left].box.DistSqTo(q_)), n.left, -1});
      heap_.push(
          {std::sqrt(tree_.nodes_[n.right].box.DistSqTo(q_)), n.right, -1});
    }
  }
  return -1;
}

}  // namespace range
}  // namespace unn
