#ifndef UNN_RANGE_KDTREE_H_
#define UNN_RANGE_KDTREE_H_

#include <cmath>
#include <span>
#include <vector>

#include "geom/vec2.h"
#include "spatial/batch.h"
#include "spatial/flat_tree.h"
#include "spatial/traverse.h"

/// \file kdtree.h
/// A static planar kd-tree over points. Provides nearest neighbor, k-NN,
/// circular range reporting, and incremental ("spiral") nearest-neighbor
/// enumeration — the quad-tree/branch-and-bound alternative the paper's
/// Section 4.3 Remark (ii) endorses in place of the impractical [AC09]
/// structure. Built on the shared spatial core (spatial::FlatKdTree with
/// no augmentation); the enumeration is a spatial::BestFirstEnumerator
/// keyed by point distance.

namespace unn {
namespace range {

class KdTree {
 public:
  /// Builds a balanced tree (median splits, alternating axes). Point ids
  /// are indices into `pts`.
  explicit KdTree(std::vector<geom::Vec2> pts);

  int size() const { return static_cast<int>(pts_.size()); }
  geom::Vec2 point(int id) const { return pts_[id]; }

  /// Nearest point id (-1 if empty); optionally its distance.
  int Nearest(geom::Vec2 q, double* dist = nullptr) const;

  /// Nearest for a batch: `out_ids[i]` (and `out_dists[i]` when that span
  /// is non-empty) is bit-identical to `Nearest(queries[i], &d)`,
  /// including the first-in-DFS-order argmin tie. Queries are packed
  /// geom::kLaneWidth at a time through one shared traversal with SIMD
  /// box/point prefilters; lanes whose minimum is tied or sits inside a
  /// 1e-9-relative guard band of a pruning boundary replay the scalar
  /// descent (see the idiom note in spatial/batch.h).
  void NearestBatch(std::span<const geom::Vec2> queries,
                    std::span<int> out_ids, std::span<double> out_dists = {},
                    spatial::BatchStats* stats = nullptr) const;

  /// Ids of the k nearest points, ordered by increasing distance.
  std::vector<int> KNearest(geom::Vec2 q, int k) const;

  /// KNearest for a batch: `(*out_ids)[i]` is bit-identical to
  /// `KNearest(queries[i], k)` and, when `out_dists` is non-null,
  /// `(*out_dists)[i][j]` is the enumerator's distance for that id
  /// (`Dist(queries[i], point(id))`). Each pack selects every lane's k
  /// smallest distances through one shared traversal with SIMD
  /// prefilters; a lane whose selection could depend on enumeration
  /// order — an exact distance tie inside the result, or any candidate
  /// within a 1e-9-relative guard band of the evolving k-th distance —
  /// replays the scalar enumerator (spatial/batch.h idiom).
  void KNearestBatch(std::span<const geom::Vec2> queries, int k,
                     std::vector<std::vector<int>>* out_ids,
                     std::vector<std::vector<double>>* out_dists = nullptr,
                     spatial::BatchStats* stats = nullptr) const;

  /// Appends all ids with d(q, p) <= r (or < r when `inclusive` is false).
  void RangeCircle(geom::Vec2 q, double r, std::vector<int>* out,
                   bool inclusive = true) const;

  /// RangeCircle for a batch with a per-query radius: `(*out)[i]` is
  /// bit-identical to `RangeCircle(queries[i], radii[i], ...)` — same
  /// ids, same left-first report order. Packs share one BatchPrunedVisit
  /// (per lane exactly the scalar prune sequence) and a SIMD
  /// squared-distance prefilter that only skips points provably outside
  /// the radius; every survivor runs the scalar accept test verbatim.
  void RangeCircleBatch(std::span<const geom::Vec2> queries,
                        std::span<const double> radii,
                        std::vector<std::vector<int>>* out,
                        bool inclusive = true,
                        spatial::BatchStats* stats = nullptr) const;

  /// Streams points by increasing distance from a fixed query.
  class Enumerator {
   public:
    Enumerator(const KdTree& tree, geom::Vec2 q);
    /// Next-closest point id, or -1 when exhausted (and forever after).
    int Next(double* dist = nullptr) { return impl_.Next(dist); }

   private:
    struct Keys {
      const KdTree* tree;
      geom::Vec2 q;
      double NodeKey(int node) const {
        return std::sqrt(tree->tree_.box(node).DistSqTo(q));
      }
      double ItemKey(int id) const { return Dist(q, tree->pts_[id]); }
    };
    spatial::BestFirstEnumerator<spatial::FlatKdTree<>, Keys> impl_;
  };

 private:
  std::vector<geom::Vec2> pts_;
  spatial::FlatKdTree<> tree_;

  friend class Enumerator;
};

}  // namespace range
}  // namespace unn

#endif  // UNN_RANGE_KDTREE_H_
