#ifndef UNN_RANGE_KDTREE_H_
#define UNN_RANGE_KDTREE_H_

#include <queue>
#include <vector>

#include "geom/vec2.h"

/// \file kdtree.h
/// A static planar kd-tree over points. Provides nearest neighbor, k-NN,
/// circular range reporting, and incremental ("spiral") nearest-neighbor
/// enumeration — the quad-tree/branch-and-bound alternative the paper's
/// Section 4.3 Remark (ii) endorses in place of the impractical [AC09]
/// structure.

namespace unn {
namespace range {

class KdTree {
 public:
  /// Builds a balanced tree (median splits, alternating axes). Point ids
  /// are indices into `pts`.
  explicit KdTree(std::vector<geom::Vec2> pts);

  int size() const { return static_cast<int>(pts_.size()); }
  geom::Vec2 point(int id) const { return pts_[id]; }

  /// Nearest point id (-1 if empty); optionally its distance.
  int Nearest(geom::Vec2 q, double* dist = nullptr) const;

  /// Ids of the k nearest points, ordered by increasing distance.
  std::vector<int> KNearest(geom::Vec2 q, int k) const;

  /// Appends all ids with d(q, p) <= r (or < r when `inclusive` is false).
  void RangeCircle(geom::Vec2 q, double r, std::vector<int>* out,
                   bool inclusive = true) const;

  /// Streams points by increasing distance from a fixed query.
  class Enumerator {
   public:
    Enumerator(const KdTree& tree, geom::Vec2 q);
    /// Next-closest point id, or -1 when exhausted. `dist` optional out.
    int Next(double* dist = nullptr);

   private:
    struct Entry {
      double key;
      int node;   ///< Internal node id, or -1 when `point` is a leaf point.
      int point;
      bool operator<(const Entry& o) const { return key > o.key; }
    };
    const KdTree& tree_;
    geom::Vec2 q_;
    std::priority_queue<Entry> heap_;
  };

 private:
  struct Node {
    geom::Box box;
    int left = -1;    ///< Internal children; -1 for leaves.
    int right = -1;
    int begin = 0;    ///< Leaf point range [begin, end) into order_.
    int end = 0;
  };

  int BuildRange(int begin, int end, int depth);
  void NearestRec(int node, geom::Vec2 q, int* best, double* best_d) const;
  void RangeRec(int node, geom::Vec2 q, double r, bool inclusive,
                std::vector<int>* out) const;

  std::vector<geom::Vec2> pts_;
  std::vector<int> order_;  ///< Point ids, permuted so leaves are contiguous.
  std::vector<Node> nodes_;
  int root_ = -1;

  friend class Enumerator;
};

}  // namespace range
}  // namespace unn

#endif  // UNN_RANGE_KDTREE_H_
