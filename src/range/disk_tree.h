#ifndef UNN_RANGE_DISK_TREE_H_
#define UNN_RANGE_DISK_TREE_H_

#include <vector>

#include "geom/vec2.h"
#include "spatial/flat_tree.h"

/// \file disk_tree.h
/// A balanced spatial tree over disks supporting the two primitives of the
/// Theorem 3.1 query structure:
///   * MinMaxDist(q)  = Delta(q) = min_i (d(q, c_i) + r_i)  — stage one;
///   * ReportMinDistLess(q, b): all i with d(q, c_i) - r_i < b — stage two,
///     i.e. all disks intersecting the open disk D(q, b).
/// This is the practical stand-in for the [KMR+16] dynamic-lower-envelope
/// structure (see DESIGN.md section 3): identical query semantics, measured
/// near-logarithmic behaviour on bounded-density inputs (experiment E6).
/// Built on the shared spatial core: a FlatKdTree over the centers with a
/// min/max-radius augmentation, queried through the shared pruned-DFS
/// engines.

namespace unn {
namespace range {

class DiskTree {
 public:
  DiskTree(std::vector<geom::Vec2> centers, std::vector<double> radii);

  int size() const { return static_cast<int>(centers_.size()); }

  /// Delta(q) = min_i (d(q, c_i) + r_i), branch-and-bound.
  double MinMaxDist(geom::Vec2 q, int* argmin = nullptr) const;

  /// Appends all ids with max(d(q, c_i) - r_i, 0) < bound.
  void ReportMinDistLess(geom::Vec2 q, double bound,
                         std::vector<int>* out) const;

 private:
  std::vector<geom::Vec2> centers_;
  std::vector<double> radii_;
  spatial::FlatKdTree<spatial::MinMaxAugment> tree_;
};

}  // namespace range
}  // namespace unn

#endif  // UNN_RANGE_DISK_TREE_H_
