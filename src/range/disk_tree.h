#ifndef UNN_RANGE_DISK_TREE_H_
#define UNN_RANGE_DISK_TREE_H_

#include <vector>

#include "geom/vec2.h"

/// \file disk_tree.h
/// A balanced spatial tree over disks supporting the two primitives of the
/// Theorem 3.1 query structure:
///   * MinMaxDist(q)  = Delta(q) = min_i (d(q, c_i) + r_i)  — stage one;
///   * ReportMinDistLess(q, b): all i with d(q, c_i) - r_i < b — stage two,
///     i.e. all disks intersecting the open disk D(q, b).
/// This is the practical stand-in for the [KMR+16] dynamic-lower-envelope
/// structure (see DESIGN.md section 3): identical query semantics, measured
/// near-logarithmic behaviour on bounded-density inputs (experiment E6).

namespace unn {
namespace range {

class DiskTree {
 public:
  DiskTree(std::vector<geom::Vec2> centers, std::vector<double> radii);

  int size() const { return static_cast<int>(centers_.size()); }

  /// Delta(q) = min_i (d(q, c_i) + r_i), branch-and-bound.
  double MinMaxDist(geom::Vec2 q, int* argmin = nullptr) const;

  /// Appends all ids with max(d(q, c_i) - r_i, 0) < bound.
  void ReportMinDistLess(geom::Vec2 q, double bound,
                         std::vector<int>* out) const;

 private:
  struct Node {
    geom::Box box;       ///< Box of centers in the subtree.
    double r_min = 0.0;  ///< Min radius in the subtree.
    double r_max = 0.0;  ///< Max radius in the subtree.
    int left = -1;
    int right = -1;
    int begin = 0;
    int end = 0;
  };

  int BuildRange(int begin, int end, int depth);
  void MinMaxRec(int node, geom::Vec2 q, double* best, int* argmin) const;
  void ReportRec(int node, geom::Vec2 q, double bound,
                 std::vector<int>* out) const;

  std::vector<geom::Vec2> centers_;
  std::vector<double> radii_;
  std::vector<int> order_;
  std::vector<Node> nodes_;
  int root_ = -1;
};

}  // namespace range
}  // namespace unn

#endif  // UNN_RANGE_DISK_TREE_H_
