#include "arrangement/segment_arrangement.h"

#include <algorithm>
#include <cmath>

#include "geom/predicates.h"
#include "util/check.h"

namespace unn {
namespace arrangement {

using dcel::EdgeShape;
using geom::Box;
using geom::Vec2;

SegmentArrangementBuilder::SegmentArrangementBuilder(const Box& window,
                                                     double snap_tol)
    : window_(window),
      snap_tol_(snap_tol > 0 ? snap_tol : 1e-9 * window.Diagonal()) {}

void SegmentArrangementBuilder::AddSegment(Vec2 a, Vec2 b, int curve_id) {
  // Liang-Barsky parametric clip to the window.
  double t0 = 0.0, t1 = 1.0;
  Vec2 d = b - a;
  auto clip = [&](double p, double q) {
    if (p == 0) return q >= 0;
    double r = q / p;
    if (p < 0) {
      if (r > t1) return false;
      t0 = std::max(t0, r);
    } else {
      if (r < t0) return false;
      t1 = std::min(t1, r);
    }
    return t0 <= t1;
  };
  if (!clip(-d.x, a.x - window_.lo.x)) return;
  if (!clip(d.x, window_.hi.x - a.x)) return;
  if (!clip(-d.y, a.y - window_.lo.y)) return;
  if (!clip(d.y, window_.hi.y - a.y)) return;
  Vec2 ca = a + d * t0;
  Vec2 cb = a + d * t1;
  // Clipped endpoints must land *exactly* on the window boundary, or the
  // exact intersection predicate will not see them touching the frame
  // segments and the curve would dangle just inside the frame (merging the
  // faces it should separate).
  auto snap_to_window = [&](Vec2 v) {
    if (std::abs(v.x - window_.lo.x) <= snap_tol_) v.x = window_.lo.x;
    if (std::abs(v.x - window_.hi.x) <= snap_tol_) v.x = window_.hi.x;
    if (std::abs(v.y - window_.lo.y) <= snap_tol_) v.y = window_.lo.y;
    if (std::abs(v.y - window_.hi.y) <= snap_tol_) v.y = window_.hi.y;
    return v;
  };
  ca = snap_to_window(ca);
  cb = snap_to_window(cb);
  if (Dist(ca, cb) <= snap_tol_) return;
  segs_.push_back({ca, cb, curve_id, {}});
}

int SegmentArrangementBuilder::SnapVertex(Vec2 p,
                                          dcel::PlanarSubdivision* sub) {
  double cell = 4.0 * snap_tol_;
  auto cx = static_cast<int64_t>(std::floor(p.x / cell));
  auto cy = static_cast<int64_t>(std::floor(p.y / cell));
  for (int64_t dx = -1; dx <= 1; ++dx) {
    for (int64_t dy = -1; dy <= 1; ++dy) {
      uint64_t key = static_cast<uint64_t>((cx + dx) * 0x9E3779B97F4A7C15ULL) ^
                     static_cast<uint64_t>(cy + dy);
      auto it = snap_grid_.find(key);
      if (it == snap_grid_.end()) continue;
      for (int vid : it->second) {
        if (Dist(vertex_pos_[vid], p) <= snap_tol_) return vid;
      }
    }
  }
  int vid = sub->AddVertex(p);
  vertex_pos_.push_back(p);
  uint64_t key = static_cast<uint64_t>(cx * 0x9E3779B97F4A7C15ULL) ^
                 static_cast<uint64_t>(cy);
  snap_grid_[key].push_back(vid);
  return vid;
}

dcel::PlanarSubdivision SegmentArrangementBuilder::Build() {
  // Add the frame as four ordinary segments so frame crossings come out of
  // the same pairwise machinery.
  Vec2 corners[4] = {window_.lo,
                     {window_.hi.x, window_.lo.y},
                     window_.hi,
                     {window_.lo.x, window_.hi.y}};
  for (int s = 0; s < 4; ++s) {
    segs_.push_back({corners[s], corners[(s + 1) % 4], dcel::kFrameCurve, {}});
  }

  // Pairwise crossings with a uniform-grid prefilter on bounding boxes.
  int m = static_cast<int>(segs_.size());
  int grid_n = std::clamp(static_cast<int>(std::sqrt(m / 2.0)) + 1, 1, 256);
  double cw = window_.Width() / grid_n + 1e-300;
  double ch = window_.Height() / grid_n + 1e-300;
  std::vector<std::vector<int>> cells(static_cast<size_t>(grid_n) * grid_n);
  auto cell_range = [&](const Seg& s, int* x0, int* x1, int* y0, int* y1) {
    Box b;
    b.Expand(s.a);
    b.Expand(s.b);
    *x0 = std::clamp(static_cast<int>((b.lo.x - window_.lo.x) / cw), 0, grid_n - 1);
    *x1 = std::clamp(static_cast<int>((b.hi.x - window_.lo.x) / cw), 0, grid_n - 1);
    *y0 = std::clamp(static_cast<int>((b.lo.y - window_.lo.y) / ch), 0, grid_n - 1);
    *y1 = std::clamp(static_cast<int>((b.hi.y - window_.lo.y) / ch), 0, grid_n - 1);
  };
  for (int i = 0; i < m; ++i) {
    int x0, x1, y0, y1;
    cell_range(segs_[i], &x0, &x1, &y0, &y1);
    for (int x = x0; x <= x1; ++x) {
      for (int y = y0; y <= y1; ++y) {
        cells[static_cast<size_t>(x) * grid_n + y].push_back(i);
      }
    }
  }
  std::vector<int> last_checked(m, -1);
  for (int i = 0; i < m; ++i) {
    int x0, x1, y0, y1;
    cell_range(segs_[i], &x0, &x1, &y0, &y1);
    for (int x = x0; x <= x1; ++x) {
      for (int y = y0; y <= y1; ++y) {
        for (int j : cells[static_cast<size_t>(x) * grid_n + y]) {
          if (j <= i || last_checked[j] == i) continue;
          last_checked[j] = i;
          Seg& s1 = segs_[i];
          Seg& s2 = segs_[j];
          if (!geom::SegmentsIntersect(s1.a, s1.b, s2.a, s2.b)) continue;
          bool ok = false;
          Vec2 p = geom::LineIntersection(s1.a, s1.b, s2.a, s2.b, &ok);
          if (!ok) continue;  // Collinear overlap: general-position policy.
          auto param = [](const Seg& s, Vec2 pt) {
            Vec2 d = s.b - s.a;
            double len2 = NormSq(d);
            return len2 > 0 ? Dot(pt - s.a, d) / len2 : 0.0;
          };
          double ti = std::clamp(param(s1, p), 0.0, 1.0);
          double tj = std::clamp(param(s2, p), 0.0, 1.0);
          s1.cuts.push_back(ti);
          s2.cuts.push_back(tj);
          bool interior = ti > 1e-12 && ti < 1 - 1e-12 && tj > 1e-12 &&
                          tj < 1 - 1e-12;
          if (interior) ++num_crossings_;
        }
      }
    }
  }

  dcel::PlanarSubdivision sub;
  for (Seg& s : segs_) {
    s.cuts.push_back(0.0);
    s.cuts.push_back(1.0);
    std::sort(s.cuts.begin(), s.cuts.end());
    double len = Dist(s.a, s.b);
    double min_dt = len > 0 ? snap_tol_ / len : 1.0;
    s.cuts.erase(std::unique(s.cuts.begin(), s.cuts.end(),
                             [&](double a, double b) { return b - a < min_dt; }),
                 s.cuts.end());
    // Keep the exact endpoints.
    s.cuts.front() = 0.0;
    s.cuts.back() = 1.0;
    for (size_t c = 0; c + 1 < s.cuts.size(); ++c) {
      Vec2 pa = Lerp(s.a, s.b, s.cuts[c]);
      Vec2 pb = Lerp(s.a, s.b, s.cuts[c + 1]);
      int va = SnapVertex(pa, &sub);
      int vb = SnapVertex(pb, &sub);
      if (va == vb) continue;
      sub.AddEdge(va, vb, EdgeShape::Segment(vertex_pos_[va], vertex_pos_[vb]),
                  s.curve_id);
    }
  }
  sub.Build();
  return sub;
}

}  // namespace arrangement
}  // namespace unn
