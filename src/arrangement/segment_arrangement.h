#ifndef UNN_ARRANGEMENT_SEGMENT_ARRANGEMENT_H_
#define UNN_ARRANGEMENT_SEGMENT_ARRANGEMENT_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dcel/planar_subdivision.h"
#include "geom/vec2.h"

/// \file segment_arrangement.h
/// Arrangement of line segments inside a rectangular window. Pairwise
/// intersections are decided with the exact Orient2d predicate, segments are
/// split at every crossing (snapped on a tolerance grid), the window frame
/// is added, and the result is assembled into a PlanarSubdivision. Used by
/// the discrete-case nonzero Voronoi diagram (the gamma_i are polygonal
/// there, Section 2.2) and by the exact probabilistic Voronoi diagram VPr
/// (Section 4.1, an arrangement of O(N^2) bisector lines).

namespace unn {
namespace arrangement {

class SegmentArrangementBuilder {
 public:
  /// `window` clips everything; `snap_tol` merges vertices (default:
  /// 1e-9 times the window diagonal).
  explicit SegmentArrangementBuilder(const geom::Box& window,
                                     double snap_tol = 0.0);

  /// Adds a segment carrying `curve_id` (used for label toggling).
  /// Segments completely outside the window are dropped; others are clipped.
  void AddSegment(geom::Vec2 a, geom::Vec2 b, int curve_id);

  /// Splits at all pairwise crossings, adds the frame, and builds the DCEL.
  /// Call once; the builder is consumed.
  dcel::PlanarSubdivision Build();

  /// Number of pairwise interior crossing points found (arrangement
  /// vertices excluding segment endpoints and frame hits).
  int64_t num_crossings() const { return num_crossings_; }

 private:
  struct Seg {
    geom::Vec2 a, b;
    int curve_id;
    std::vector<double> cuts;  ///< Split parameters in [0, 1].
  };

  int SnapVertex(geom::Vec2 p, dcel::PlanarSubdivision* sub);

  geom::Box window_;
  double snap_tol_;
  std::vector<Seg> segs_;
  std::unordered_map<uint64_t, std::vector<int>> snap_grid_;
  std::vector<geom::Vec2> vertex_pos_;
  int64_t num_crossings_ = 0;
};

}  // namespace arrangement
}  // namespace unn

#endif  // UNN_ARRANGEMENT_SEGMENT_ARRANGEMENT_H_
