#include "pointloc/ray_shooter.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/check.h"

namespace unn {
namespace pointloc {

using dcel::PlanarSubdivision;
using geom::Box;
using geom::Vec2;

RayShooter::RayShooter(const PlanarSubdivision& sub, int cells_per_axis)
    : sub_(sub) {
  for (int v = 0; v < sub.NumVertices(); ++v) world_.Expand(sub.vertex(v).pos);
  if (world_.Empty()) world_ = Box{{0, 0}, {1, 1}};
  world_ = world_.Inflated(1e-6 * (1.0 + world_.Diagonal()));

  int n = cells_per_axis;
  if (n <= 0) {
    n = static_cast<int>(std::sqrt(static_cast<double>(sub.NumEdges()) + 1.0));
  }
  n = std::clamp(n, 4, 512);
  nx_ = ny_ = n;
  cell_w_ = world_.Width() / nx_;
  cell_h_ = world_.Height() / ny_;
  if (cell_w_ <= 0) cell_w_ = 1;
  if (cell_h_ <= 0) cell_h_ = 1;

  cells_.assign(static_cast<size_t>(nx_) * ny_, {});
  for (int e = 0; e < sub.NumEdges(); ++e) {
    Box b = sub.edge(e).shape.Bounds();
    int x0 = std::clamp(CellOfX(b.lo.x), 0, nx_ - 1);
    int x1 = std::clamp(CellOfX(b.hi.x), 0, nx_ - 1);
    int y0 = std::clamp(CellOfY(b.lo.y), 0, ny_ - 1);
    int y1 = std::clamp(CellOfY(b.hi.y), 0, ny_ - 1);
    for (int cx = x0; cx <= x1; ++cx) {
      for (int cy = y0; cy <= y1; ++cy) {
        cells_[static_cast<size_t>(cx) * ny_ + cy].push_back(e);
      }
    }
  }
}

int RayShooter::CellOfX(double x) const {
  return static_cast<int>(std::floor((x - world_.lo.x) / cell_w_));
}

int RayShooter::CellOfY(double y) const {
  return static_cast<int>(std::floor((y - world_.lo.y) / cell_h_));
}

void RayShooter::CollectHits(Vec2 q, bool first_only,
                             std::vector<Hit>* hits) const {
  if (q.x < world_.lo.x || q.x > world_.hi.x || q.y > world_.hi.y) return;
  int cx = std::clamp(CellOfX(q.x), 0, nx_ - 1);
  int cy0 = std::clamp(CellOfY(std::max(q.y, world_.lo.y)), 0, ny_ - 1);
  double y_limit = world_.hi.y + 1.0;

  // Per-call dedup of edges shared between the column's cells; keeping
  // the scratch local (instead of an instance-wide stamp array) makes
  // const queries safe to run concurrently. A linear scan over a small
  // vector wins for the expected-O(1) candidate counts; past 64
  // candidates (degenerate subdivisions with worst-case-linear columns)
  // it migrates to a hash set so dedup stays near-linear overall.
  constexpr size_t kSmallSeen = 64;
  std::vector<int> seen_small;
  std::unordered_set<int> seen_large;
  auto is_new = [&](int e) {
    if (seen_small.size() < kSmallSeen) {
      if (std::find(seen_small.begin(), seen_small.end(), e) !=
          seen_small.end()) {
        return false;
      }
      seen_small.push_back(e);
      return true;
    }
    if (seen_large.empty()) {
      seen_large.insert(seen_small.begin(), seen_small.end());
    }
    return seen_large.insert(e).second;
  };
  std::vector<double> ys;
  std::vector<Vec2> dirs;
  double best_y = y_limit;
  for (int cy = cy0; cy < ny_; ++cy) {
    // Early exit: the closest hit so far is below this row of cells.
    double row_lo = world_.lo.y + cy * cell_h_;
    if (first_only && best_y < row_lo) break;
    for (int e : cells_[static_cast<size_t>(cx) * ny_ + cy]) {
      if (!is_new(e)) continue;
      ys.clear();
      dirs.clear();
      sub_.edge(e).shape.VerticalRayHits(q, y_limit, &ys, &dirs);
      for (size_t i = 0; i < ys.size(); ++i) {
        hits->push_back(Hit{ys[i], e, dirs[i]});
        best_y = std::min(best_y, ys[i]);
      }
    }
  }
}

std::vector<std::pair<double, int>> RayShooter::CrossingsAbove(Vec2 q) const {
  std::vector<Hit> hits;
  CollectHits(q, /*first_only=*/false, &hits);
  std::vector<std::pair<double, int>> out;
  out.reserve(hits.size());
  for (const Hit& h : hits) out.push_back({h.y, h.edge});
  std::sort(out.begin(), out.end());
  return out;
}

int RayShooter::LocateHalfEdgeAbove(Vec2 q) const {
  double scale = 1.0 + world_.Diagonal();
  // Degeneracy policy: if the ray grazes a vertex or the hit tangent is
  // vertical, jitter the ray horizontally and retry.
  for (int attempt = 0; attempt < 8; ++attempt) {
    Vec2 qa = q;
    if (attempt > 0) {
      // Jitter enough to escape vertex-grazing rays but far less than any
      // meaningful feature size: a larger jitter could carry the ray across
      // a nearby (or coincident) curve and locate the neighboring face.
      // Callers that probe points at offset eps from a curve rely on the
      // maximum jitter (~1.3e-11 * scale) staying well below eps.
      double jitter = scale * 1e-13 * std::pow(2.0, attempt);
      qa.x += (attempt % 2 == 1 ? jitter : -jitter);
    }
    std::vector<Hit> hits;
    CollectHits(qa, /*first_only=*/true, &hits);
    if (hits.empty()) return -1;
    const Hit* best = &hits[0];
    double second = std::numeric_limits<double>::infinity();
    for (const Hit& h : hits) {
      if (h.y < best->y) {
        second = best->y;
        best = &h;
      } else if (&h != best) {
        second = std::min(second, h.y);
      }
    }
    // Ambiguous: two edges hit at (nearly) the same height means the ray
    // passes through a shared vertex. Retry with jitter.
    if (second - best->y < 1e-10 * scale) continue;
    if (std::abs(best->dir.x) < 1e-10) continue;  // Vertical tangent at hit.
    // q is below the hit; pick the half-edge whose left side faces down.
    // Travel direction d at the hit: left of d is ccw; q - hit points down.
    Vec2 hit_point{qa.x, best->y};
    double side = Cross(best->dir, q - hit_point);
    bool forward_contains_q = side > 0;
    return sub_.HalfEdgeOf(best->edge, forward_contains_q);
  }
  // Persistent degeneracy: give up on the fast path; report unbounded face.
  return -1;
}

}  // namespace pointloc
}  // namespace unn
