#ifndef UNN_POINTLOC_RAY_SHOOTER_H_
#define UNN_POINTLOC_RAY_SHOOTER_H_

#include <vector>

#include "dcel/planar_subdivision.h"
#include "geom/vec2.h"

/// \file ray_shooter.h
/// Grid-accelerated vertical ray shooting over a planar subdivision: the
/// practical point-location structure behind Theorem 2.11 queries. The
/// query shoots a ray straight up from q, finds the first edge hit, and
/// returns the half-edge whose left face contains q; the caller then reads
/// that loop's stored label. Expected O(1) candidate edges per query on
/// bounded-density subdivisions; worst case linear (the persistent-slab
/// structure in slab_locator.h provides the O(log n) guarantee). Queries
/// carry no shared mutable state, so a built RayShooter may be queried
/// from any number of threads concurrently.

namespace unn {
namespace pointloc {

class RayShooter {
 public:
  /// Indexes all edges of `sub` (which must stay alive and unchanged).
  /// `cells_per_axis` = 0 chooses ~sqrt(#edges), clamped to [4, 512].
  explicit RayShooter(const dcel::PlanarSubdivision& sub,
                      int cells_per_axis = 0);

  /// Half-edge whose left face contains `q`, or -1 when the upward ray
  /// leaves the subdivision without hitting any edge (q is in the unbounded
  /// face). Queries exactly on edges/vertices are resolved by a tiny
  /// horizontal jitter (documented general-position policy).
  int LocateHalfEdgeAbove(geom::Vec2 q) const;

  /// All edge crossings of the upward vertical ray from `q`, as
  /// (y, edge_id) sorted by increasing y. Used by label-parity fallbacks
  /// and by the self-tests.
  std::vector<std::pair<double, int>> CrossingsAbove(geom::Vec2 q) const;

 private:
  struct Hit {
    double y;
    int edge;
    geom::Vec2 dir;
  };

  void CollectHits(geom::Vec2 q, bool first_only, std::vector<Hit>* hits) const;
  int CellOfX(double x) const;
  int CellOfY(double y) const;

  const dcel::PlanarSubdivision& sub_;
  geom::Box world_;
  int nx_ = 0, ny_ = 0;
  double cell_w_ = 0, cell_h_ = 0;
  /// Edge ids per grid cell (row-major, y-major within a column visit).
  std::vector<std::vector<int>> cells_;
};

}  // namespace pointloc
}  // namespace unn

#endif  // UNN_POINTLOC_RAY_SHOOTER_H_
