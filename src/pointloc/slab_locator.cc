#include "pointloc/slab_locator.h"

#include <algorithm>
#include <cmath>

#include "geom/predicates.h"
#include "util/check.h"

namespace unn {
namespace pointloc {

using geom::Orient2dSign;
using geom::Vec2;

namespace {
constexpr int32_t kNil = -1;

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

SlabLocator::SlabLocator(const dcel::PlanarSubdivision& sub) : sub_(sub) {
  edges_.resize(sub.NumEdges());
  std::vector<double> xs;
  struct Event {
    double x;
    bool insert;
    int edge;
  };
  std::vector<Event> events;
  for (int e = 0; e < sub.NumEdges(); ++e) {
    const auto& ed = sub.edge(e);
    UNN_CHECK_MSG(ed.shape.kind() == dcel::EdgeShape::Kind::kSegment,
                  "SlabLocator requires segment-only subdivisions");
    Vec2 a = ed.shape.a();
    Vec2 b = ed.shape.b();
    if (a.x == b.x) {
      edges_[e].id = -1;  // Vertical: never crossed by an upward ray.
      continue;
    }
    if (a.x > b.x) std::swap(a, b);
    edges_[e] = {a, b, e};
    events.push_back({a.x, true, e});
    events.push_back({b.x, false, e});
    xs.push_back(a.x);
    xs.push_back(b.x);
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    // Erase before insert at the same x so slab trees hold exactly the
    // edges spanning the slab's interior.
    return a.x < b.x || (a.x == b.x && a.insert < b.insert);
  });

  int32_t root = kNil;
  size_t ev = 0;
  for (double x : xs) {
    while (ev < events.size() && events[ev].x == x) {
      if (events[ev].insert) {
        root = Insert(root, events[ev].edge);
      } else {
        root = Erase(root, events[ev].edge);
      }
      ++ev;
    }
    slab_x_.push_back(x);
    slab_root_.push_back(root);
  }
}

bool SlabLocator::Below(const OrientedEdge& a, const OrientedEdge& b) const {
  // Compare on the common x-span: test the later-starting segment's left
  // endpoint against the other's supporting line; fall back to the right
  // endpoint (shared-endpoint case: order by slope).
  if (a.lo.x >= b.lo.x) {
    int s = Orient2dSign(b.lo, b.hi, a.lo);
    if (s != 0) return s < 0;
    s = Orient2dSign(b.lo, b.hi, a.hi);
    if (s != 0) return s < 0;
    return a.id < b.id;  // Collinear overlap: deterministic tie-break.
  }
  int s = Orient2dSign(a.lo, a.hi, b.lo);
  if (s != 0) return s > 0;
  s = Orient2dSign(a.lo, a.hi, b.hi);
  if (s != 0) return s > 0;
  return a.id < b.id;
}

bool SlabLocator::PointBelow(Vec2 q, const OrientedEdge& e) const {
  return Orient2dSign(e.lo, e.hi, q) < 0;
}

int32_t SlabLocator::CopyNode(int32_t n) {
  nodes_.push_back(nodes_[n]);
  return static_cast<int32_t>(nodes_.size()) - 1;
}

int32_t SlabLocator::Insert(int32_t root, int edge) {
  if (root == kNil) {
    nodes_.push_back({edge, static_cast<uint32_t>(SplitMix64(&rng_state_)),
                      kNil, kNil});
    return static_cast<int32_t>(nodes_.size()) - 1;
  }
  // Treap insert with rotations, path-copying along the way.
  int32_t c = CopyNode(root);
  const OrientedEdge& enew = edges_[edge];
  const OrientedEdge& ecur = edges_[nodes_[c].edge];
  if (Below(enew, ecur)) {
    int32_t child = Insert(nodes_[c].left, edge);
    nodes_[c].left = child;
    if (nodes_[child].prio > nodes_[c].prio) {  // Rotate right.
      int32_t l = child;
      nodes_[c].left = nodes_[l].right;
      nodes_[l].right = c;
      return l;
    }
  } else {
    int32_t child = Insert(nodes_[c].right, edge);
    nodes_[c].right = child;
    if (nodes_[child].prio > nodes_[c].prio) {  // Rotate left.
      int32_t r = child;
      nodes_[c].right = nodes_[r].left;
      nodes_[r].left = c;
      return r;
    }
  }
  return c;
}

int32_t SlabLocator::Merge(int32_t x, int32_t y) {
  if (x == kNil) return y;
  if (y == kNil) return x;
  if (nodes_[x].prio > nodes_[y].prio) {
    int32_t cx = CopyNode(x);
    nodes_[cx].right = Merge(nodes_[cx].right, y);
    return cx;
  }
  int32_t cy = CopyNode(y);
  nodes_[cy].left = Merge(x, nodes_[cy].left);
  return cy;
}

int32_t SlabLocator::Erase(int32_t root, int edge) {
  if (root == kNil) return kNil;  // Not present (defensive).
  if (nodes_[root].edge == edge) {
    return Merge(nodes_[root].left, nodes_[root].right);
  }
  int32_t c = CopyNode(root);
  const OrientedEdge& edel = edges_[edge];
  const OrientedEdge& ecur = edges_[nodes_[c].edge];
  if (Below(edel, ecur)) {
    nodes_[c].left = Erase(nodes_[c].left, edge);
  } else {
    nodes_[c].right = Erase(nodes_[c].right, edge);
  }
  return c;
}

int SlabLocator::LocateHalfEdgeAbove(Vec2 q) const {
  if (slab_x_.empty()) return -1;
  // Slab containing q.x: last boundary <= q.x.
  auto it = std::upper_bound(slab_x_.begin(), slab_x_.end(), q.x);
  if (it == slab_x_.begin()) return -1;  // Left of everything.
  int slab = static_cast<int>(it - slab_x_.begin()) - 1;
  int32_t n = slab_root_[slab];
  int best = -1;
  while (n != kNil) {
    const OrientedEdge& e = edges_[nodes_[n].edge];
    if (PointBelow(q, e)) {
      best = e.id;  // Candidate: q below e; lower edges may exist left.
      n = nodes_[n].left;
    } else {
      n = nodes_[n].right;  // q on/above e: only higher edges qualify.
    }
  }
  if (best < 0) return -1;
  // q is below the edge; the half-edge whose left face contains q is the
  // one travelling so that q lies to its left.
  const auto& ed = sub_.edge(best);
  Vec2 dir = ed.shape.b() - ed.shape.a();
  double side = Cross(dir, q - ed.shape.a());
  return sub_.HalfEdgeOf(best, side > 0);
}

}  // namespace pointloc
}  // namespace unn
