#ifndef UNN_POINTLOC_SLAB_LOCATOR_H_
#define UNN_POINTLOC_SLAB_LOCATOR_H_

#include <cstdint>
#include <vector>

#include "dcel/planar_subdivision.h"
#include "geom/vec2.h"

/// \file slab_locator.h
/// Sarnak–Tarjan persistent-slab point location for subdivisions whose
/// edges are straight segments (the exact VPr diagram and the discrete
/// V!=0). This is the classical O(log n)-query structure behind Theorem
/// 2.11's bound: sweep the vertices left to right, maintain the edges
/// crossing the sweep line in a *partially persistent* balanced tree
/// (path-copying treap, the same [DSST89] technique the paper uses for the
/// label sets), and answer a query by binary-searching the slab of q.x and
/// descending the tree version of that slab. O(E log E) expected
/// preprocessing and space, O(log E) query. All below/above decisions use
/// the exact orientation predicate.

namespace unn {
namespace pointloc {

class SlabLocator {
 public:
  /// Indexes all non-vertical segment edges of `sub` (which must outlive
  /// this object). Edges with non-segment geometry are rejected
  /// (UNN_CHECK): use RayShooter for conic subdivisions.
  explicit SlabLocator(const dcel::PlanarSubdivision& sub);

  /// Half-edge whose left face contains q (the first edge hit by the
  /// upward vertical ray), or -1 when no edge lies above q. Queries
  /// exactly on edges or slab boundaries are unspecified (general-position
  /// policy, as elsewhere).
  int LocateHalfEdgeAbove(geom::Vec2 q) const;

  /// Total persistent-tree nodes (the O(E log E) space accounting).
  size_t NumNodes() const { return nodes_.size(); }
  int NumSlabs() const { return static_cast<int>(slab_x_.size()); }

 private:
  struct Node {
    int edge;  ///< Edge id (its oriented left-to-right endpoints cached).
    uint32_t prio;
    int32_t left;
    int32_t right;
  };

  struct OrientedEdge {
    geom::Vec2 lo, hi;  ///< Endpoints with lo.x <= hi.x.
    int id = -1;
  };

  /// True if edge a lies below edge b on their common x-span (exact).
  bool Below(const OrientedEdge& a, const OrientedEdge& b) const;
  /// True if q lies strictly below edge e (exact).
  bool PointBelow(geom::Vec2 q, const OrientedEdge& e) const;

  int32_t Insert(int32_t root, int edge);
  int32_t Erase(int32_t root, int edge);
  int32_t Merge(int32_t x, int32_t y);
  int32_t CopyNode(int32_t n);

  const dcel::PlanarSubdivision& sub_;
  std::vector<OrientedEdge> edges_;   ///< Indexed by edge id (id -1 unused).
  std::vector<Node> nodes_;
  std::vector<double> slab_x_;        ///< Left boundary of each slab.
  std::vector<int32_t> slab_root_;    ///< Tree version per slab.
  uint64_t rng_state_ = 0x1234abcd5678ef01ULL;
};

}  // namespace pointloc
}  // namespace unn

#endif  // UNN_POINTLOC_SLAB_LOCATOR_H_
