#include "core/nn_nonzero_discrete_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geom/lanes.h"
#include "spatial/traverse.h"
#include "util/check.h"

namespace unn {
namespace core {

using geom::Vec2;

namespace {
constexpr int kLeafGroups = 4;
}

NnNonzeroDiscreteIndex::NnNonzeroDiscreteIndex(
    std::vector<UncertainPoint> points)
    : points_(std::move(points)) {
  UNN_CHECK(!points_.empty());
  std::vector<Vec2> sites;
  // Build-only SoA views of the group SEBs; the augment seals (drops its
  // pointer) when the build finishes, so locals suffice.
  std::vector<Vec2> seb_centers;
  std::vector<double> seb_radii;
  for (size_t i = 0; i < points_.size(); ++i) {
    const auto& p = points_[i];
    UNN_CHECK_MSG(!p.is_disk(), "NnNonzeroDiscreteIndex is for discrete models");
    group_seb_.push_back(geom::SmallestEnclosingCircle(p.sites()));
    seb_centers.push_back(group_seb_.back().center);
    seb_radii.push_back(group_seb_.back().radius);
    for (Vec2 s : p.sites()) {
      sites.push_back(s);
      site_owner_.push_back(static_cast<int>(i));
    }
  }
  site_tree_ = std::make_unique<range::KdTree>(std::move(sites));
  group_tree_ = spatial::FlatKdTree<spatial::MinAugment>(
      seb_centers,
      {.leaf_size = kLeafGroups, .split = spatial::SplitRule::kAlternate},
      spatial::MinAugment(&seb_radii));
}

DeltaEnvelope NnNonzeroDiscreteIndex::DeltaPair(Vec2 q) const {
  DeltaEnvelope env;
  env.best = std::numeric_limits<double>::infinity();
  env.second = std::numeric_limits<double>::infinity();
  spatial::PrunedVisitOrdered(
      group_tree_,
      [&](int n) { return std::sqrt(group_tree_.box(n).DistSqTo(q)); },
      // Lower bound on Delta_i(q) over the subtree: with SEB (c, R),
      // Delta_i(q) >= sqrt(d(q,c)^2 + R^2) >= sqrt(d(q,box)^2 + r_min^2).
      // Prune against `second` so both smallest values survive.
      [&](int n) {
        double r_min = group_tree_.aug().min(n);
        return std::sqrt(group_tree_.box(n).DistSqTo(q) + r_min * r_min) >=
               env.second;
      },
      [&](int n) {
        for (int i = group_tree_.begin(n); i < group_tree_.end(n); ++i) {
          int g = group_tree_.item(i);
          const geom::Circle& seb = group_seb_[g];
          double group_lb =
              std::sqrt(DistSq(q, seb.center) + seb.radius * seb.radius);
          if (group_lb >= env.second) continue;
          double v = points_[g].MaxDist(q);
          if (v < env.best) {
            env.second = env.best;
            env.best = v;
            env.argbest = g;
          } else {
            env.second = std::min(env.second, v);
          }
        }
      });
  return env;
}

void NnNonzeroDiscreteIndex::DeltaPairBatch(std::span<const Vec2> queries,
                                            std::span<DeltaEnvelope> out,
                                            spatial::BatchStats* stats) const {
  constexpr int kW = geom::kLaneWidth;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // The dominant cost of the scalar walk is the hypot-per-site MaxDist
  // evaluation, so the batched walk defers it entirely. Stage A runs the
  // shared traversal on nothing but the group's SEB bracket
  //   sqrt(d(q,c)^2 + R^2) <= Delta_i(q) <= d(q,c) + R
  // and works in SQUARED space (no per-site arithmetic, no SIMD sqrt):
  // each surviving group is collected with its squared lower bound, and
  // the per-lane envelope is maintained over the bracket's UPPER ends,
  // so its `second` certifies an upper bound on the true second-smallest
  // value and every squared `>= second^2` prune discards only groups the
  // scalar walk's own `group_lb >= second` rule would skip (the squared
  // threshold carries one extra rounding, absorbed by inflating it a
  // relative 1e-12 toward "keep"). Stage B then evaluates exact MaxDist
  // in ascending lower-bound order — stopping via exactly the scalar's
  // skip test, `group_lb >= env.second`, which in sorted order holds for
  // every later candidate too — typically two or three hypot
  // evaluations per query, below even the scalar walk's count. The
  // exact envelope is a pure min/second-min over values, so it is
  // traversal-order-independent; the one order-dependent output, the
  // argmin under a minimum tie, replays the scalar walk as everywhere
  // else in the batch scheme. Bit-identical, differentially fuzzed.
  constexpr double kSqBand = 1.0 + 1e-12;
  std::vector<std::pair<double, int>> cand[kW];  // (squared lb, group), tiny.
  for (size_t base = 0; base < queries.size(); base += kW) {
    int count = static_cast<int>(std::min<size_t>(kW, queries.size() - base));
    Vec2 qv[kW];
    double qx[kW], qy[kW];
    for (int l = 0; l < kW; ++l) {
      qv[l] = queries[base + std::min(l, count - 1)];  // Pad ragged packs.
      qx[l] = qv[l].x;
      qy[l] = qv[l].y;
    }
    double best_hi[kW], second_hi[kW], second_hi_sq[kW];
    for (int l = 0; l < kW; ++l) {
      best_hi[l] = kInf;
      second_hi[l] = kInf;
      second_hi_sq[l] = kInf;
      cand[l].clear();
    }
    // Per-lane squared subtree bound d(q,box)^2 + r_min^2 — the scalar's
    // bound arithmetic minus its final sqrt, compared against the
    // inflated squared threshold instead.
    spatial::BatchPrunedVisitNearFirst(
        group_tree_, spatial::FullMask(count),
        [&](int n, double* lb) {
          geom::BoxDistSqLanes(qx, qy, group_tree_.box(n), lb);
          const double r_min = group_tree_.aug().min(n);
          geom::AddScalarLanes(lb, r_min * r_min, lb);
        },
        [&](int l, double lb) { return lb >= second_hi_sq[l]; },
        [&](int n, spatial::LaneMask m) {
          for (int i = group_tree_.begin(n); i < group_tree_.end(n); ++i) {
            int g = group_tree_.item(i);
            const geom::Circle& seb = group_seb_[g];
            double gsq[kW], glb_sq[kW];
            geom::DistSqLanes(qx, qy, seb.center, gsq);
            const double r2 = seb.radius * seb.radius;
            geom::AddScalarLanes(gsq, r2, glb_sq);
            for (int l = 0; l < kW; ++l) {
              if ((m >> l & 1u) == 0) continue;
              if (glb_sq[l] >= second_hi_sq[l]) continue;
              cand[l].push_back({glb_sq[l], g});
              // Upper end of the bracket; the sqrt is scalar and only
              // paid by lanes whose group survived the squared prune.
              double v_hi = std::sqrt(gsq[l]) + seb.radius;
              if (v_hi < best_hi[l]) {
                second_hi[l] = best_hi[l];
                best_hi[l] = v_hi;
              } else if (v_hi < second_hi[l]) {
                second_hi[l] = v_hi;
              } else {
                continue;
              }
              second_hi_sq[l] = second_hi[l] * second_hi[l] * kSqBand;
            }
          }
        },
        stats);
    if (stats != nullptr) ++stats->packs;
    for (int l = 0; l < count; ++l) {
      // Stage B: the exact envelope from the candidate set, tightest
      // lower bound first so the exact second tightens fastest. The
      // break is the scalar walk's own skip rule on the bit-identical
      // group_lb = sqrt(d(q,c)^2 + R^2); in ascending order it holds
      // for every later candidate too (bounds ascend, the exact second
      // never rises), so the rest of the list is provably irrelevant.
      std::sort(cand[l].begin(), cand[l].end());
      DeltaEnvelope env;
      env.best = kInf;
      env.second = kInf;
      for (const auto& [glb_sq, g] : cand[l]) {
        if (std::sqrt(glb_sq) >= env.second) break;
        if (stats != nullptr) ++stats->lane_points_evaluated;
        double v = points_[g].MaxDist(qv[l]);
        if (v < env.best) {
          env.second = env.best;
          env.best = v;
          env.argbest = g;
        } else {
          env.second = std::min(env.second, v);
        }
      }
      // best == second is the only way a minimum tie can exist, and then
      // the argmin is whichever tied group the ordered scalar walk
      // reaches first — replay it. Distinct best/second pin the argmin
      // to the unique minimizer, which the candidate sweep provably
      // found.
      if (env.best == env.second) {
        if (stats != nullptr) ++stats->scalar_replays;
        out[base + l] = DeltaPair(queries[base + l]);
      } else {
        out[base + l] = env;
      }
    }
  }
}

double NnNonzeroDiscreteIndex::Delta(Vec2 q) const { return DeltaPair(q).best; }

std::vector<int> NnNonzeroDiscreteIndex::AssembleFromEnvelope(
    Vec2 q, const DeltaEnvelope& env) const {
  if (points_.size() == 1) return {0};
  // Owners other than the argmin qualify iff delta_i < best (their
  // j != i threshold); the argmin's threshold is `second`.
  std::vector<int> hits;
  site_tree_->RangeCircle(q, env.best, &hits, /*inclusive=*/false);
  return AssembleFromHits(q, env, hits);
}

std::vector<int> NnNonzeroDiscreteIndex::AssembleFromHits(
    Vec2 q, const DeltaEnvelope& env, const std::vector<int>& hits) const {
  std::vector<int> out;
  out.reserve(hits.size());
  for (int h : hits) out.push_back(site_owner_[h]);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  bool arg_in = std::binary_search(out.begin(), out.end(), env.argbest);
  bool arg_should = points_[env.argbest].MinDist(q) < env.second;
  if (arg_in && !arg_should) {
    out.erase(std::find(out.begin(), out.end(), env.argbest));
  } else if (!arg_in && arg_should) {
    out.insert(std::upper_bound(out.begin(), out.end(), env.argbest),
               env.argbest);
  }
  return out;
}

std::vector<int> NnNonzeroDiscreteIndex::Query(Vec2 q) const {
  return AssembleFromEnvelope(q, DeltaPair(q));
}

std::vector<std::vector<int>> NnNonzeroDiscreteIndex::QueryBatch(
    std::span<const Vec2> queries, spatial::BatchStats* stats) const {
  // Pack-coherent (Morton) order keeps each pack's lanes pruning
  // together; per-lane results are pack-independent, so reordering the
  // batch and scattering back is bit-identical (spatial/batch.h).
  std::vector<int> order = spatial::PackCoherentOrder(queries);
  std::vector<Vec2> sorted(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) sorted[i] = queries[order[i]];
  std::vector<DeltaEnvelope> envs(queries.size());
  DeltaPairBatch(sorted, envs, stats);
  std::vector<std::vector<int>> out(queries.size());
  if (points_.size() == 1) {
    for (auto& o : out) o = {0};
    return out;
  }
  // Stage two batched: one shared range walk per pack with per-query
  // radius Delta(q); the hit list per lane is RangeCircle's verbatim, so
  // the assembly below sees exactly the scalar path's input.
  std::vector<double> radii(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) radii[i] = envs[i].best;
  std::vector<std::vector<int>> hits;
  site_tree_->RangeCircleBatch(sorted, radii, &hits, /*inclusive=*/false,
                               stats);
  for (size_t i = 0; i < queries.size(); ++i) {
    out[order[i]] = AssembleFromHits(sorted[i], envs[i], hits[i]);
  }
  return out;
}

}  // namespace core
}  // namespace unn
