#include "core/nn_nonzero_discrete_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "spatial/traverse.h"
#include "util/check.h"

namespace unn {
namespace core {

using geom::Vec2;

namespace {
constexpr int kLeafGroups = 4;
}

NnNonzeroDiscreteIndex::NnNonzeroDiscreteIndex(
    std::vector<UncertainPoint> points)
    : points_(std::move(points)) {
  UNN_CHECK(!points_.empty());
  std::vector<Vec2> sites;
  // Build-only SoA views of the group SEBs; the augment seals (drops its
  // pointer) when the build finishes, so locals suffice.
  std::vector<Vec2> seb_centers;
  std::vector<double> seb_radii;
  for (size_t i = 0; i < points_.size(); ++i) {
    const auto& p = points_[i];
    UNN_CHECK_MSG(!p.is_disk(), "NnNonzeroDiscreteIndex is for discrete models");
    group_seb_.push_back(geom::SmallestEnclosingCircle(p.sites()));
    seb_centers.push_back(group_seb_.back().center);
    seb_radii.push_back(group_seb_.back().radius);
    for (Vec2 s : p.sites()) {
      sites.push_back(s);
      site_owner_.push_back(static_cast<int>(i));
    }
  }
  site_tree_ = std::make_unique<range::KdTree>(std::move(sites));
  group_tree_ = spatial::FlatKdTree<spatial::MinAugment>(
      seb_centers,
      {.leaf_size = kLeafGroups, .split = spatial::SplitRule::kAlternate},
      spatial::MinAugment(&seb_radii));
}

DeltaEnvelope NnNonzeroDiscreteIndex::DeltaPair(Vec2 q) const {
  DeltaEnvelope env;
  env.best = std::numeric_limits<double>::infinity();
  env.second = std::numeric_limits<double>::infinity();
  spatial::PrunedVisitOrdered(
      group_tree_,
      [&](int n) { return std::sqrt(group_tree_.box(n).DistSqTo(q)); },
      // Lower bound on Delta_i(q) over the subtree: with SEB (c, R),
      // Delta_i(q) >= sqrt(d(q,c)^2 + R^2) >= sqrt(d(q,box)^2 + r_min^2).
      // Prune against `second` so both smallest values survive.
      [&](int n) {
        double r_min = group_tree_.aug().min(n);
        return std::sqrt(group_tree_.box(n).DistSqTo(q) + r_min * r_min) >=
               env.second;
      },
      [&](int n) {
        for (int i = group_tree_.begin(n); i < group_tree_.end(n); ++i) {
          int g = group_tree_.item(i);
          const geom::Circle& seb = group_seb_[g];
          double group_lb =
              std::sqrt(DistSq(q, seb.center) + seb.radius * seb.radius);
          if (group_lb >= env.second) continue;
          double v = points_[g].MaxDist(q);
          if (v < env.best) {
            env.second = env.best;
            env.best = v;
            env.argbest = g;
          } else {
            env.second = std::min(env.second, v);
          }
        }
      });
  return env;
}

double NnNonzeroDiscreteIndex::Delta(Vec2 q) const { return DeltaPair(q).best; }

std::vector<int> NnNonzeroDiscreteIndex::Query(Vec2 q) const {
  DeltaEnvelope env = DeltaPair(q);
  if (points_.size() == 1) return {0};
  // Owners other than the argmin qualify iff delta_i < best (their
  // j != i threshold); the argmin's threshold is `second`.
  std::vector<int> hits;
  site_tree_->RangeCircle(q, env.best, &hits, /*inclusive=*/false);
  std::vector<int> out;
  out.reserve(hits.size());
  for (int h : hits) out.push_back(site_owner_[h]);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  bool arg_in = std::binary_search(out.begin(), out.end(), env.argbest);
  bool arg_should = points_[env.argbest].MinDist(q) < env.second;
  if (arg_in && !arg_should) {
    out.erase(std::find(out.begin(), out.end(), env.argbest));
  } else if (!arg_in && arg_should) {
    out.insert(std::upper_bound(out.begin(), out.end(), env.argbest),
               env.argbest);
  }
  return out;
}

}  // namespace core
}  // namespace unn
