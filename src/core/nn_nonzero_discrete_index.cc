#include "core/nn_nonzero_discrete_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/check.h"

namespace unn {
namespace core {

using geom::Vec2;

namespace {
constexpr int kLeafGroups = 4;
}

NnNonzeroDiscreteIndex::NnNonzeroDiscreteIndex(
    std::vector<UncertainPoint> points)
    : points_(std::move(points)) {
  UNN_CHECK(!points_.empty());
  std::vector<Vec2> sites;
  for (size_t i = 0; i < points_.size(); ++i) {
    const auto& p = points_[i];
    UNN_CHECK_MSG(!p.is_disk(), "NnNonzeroDiscreteIndex is for discrete models");
    group_seb_.push_back(geom::SmallestEnclosingCircle(p.sites()));
    for (Vec2 s : p.sites()) {
      sites.push_back(s);
      site_owner_.push_back(static_cast<int>(i));
    }
  }
  site_tree_ = std::make_unique<range::KdTree>(std::move(sites));
  group_order_.resize(points_.size());
  std::iota(group_order_.begin(), group_order_.end(), 0);
  group_root_ = BuildGroups(0, static_cast<int>(points_.size()), 0);
}

int NnNonzeroDiscreteIndex::BuildGroups(int begin, int end, int depth) {
  GroupNode node;
  node.r_min = std::numeric_limits<double>::infinity();
  for (int i = begin; i < end; ++i) {
    node.box.Expand(group_seb_[group_order_[i]].center);
    node.r_min = std::min(node.r_min, group_seb_[group_order_[i]].radius);
  }
  int id = static_cast<int>(group_nodes_.size());
  group_nodes_.push_back(node);
  if (end - begin <= kLeafGroups) {
    group_nodes_[id].begin = begin;
    group_nodes_[id].end = end;
    return id;
  }
  int mid = (begin + end) / 2;
  bool by_x = (depth % 2 == 0);
  std::nth_element(group_order_.begin() + begin, group_order_.begin() + mid,
                   group_order_.begin() + end, [&](int a, int b) {
                     return by_x ? group_seb_[a].center.x < group_seb_[b].center.x
                                 : group_seb_[a].center.y < group_seb_[b].center.y;
                   });
  int l = BuildGroups(begin, mid, depth + 1);
  int r = BuildGroups(mid, end, depth + 1);
  group_nodes_[id].left = l;
  group_nodes_[id].right = r;
  return id;
}

void NnNonzeroDiscreteIndex::DeltaRec(int node, Vec2 q,
                                      DeltaEnvelope* env) const {
  const GroupNode& n = group_nodes_[node];
  // Lower bound on Delta_i(q) over the subtree: with SEB (c, R),
  // Delta_i(q) >= sqrt(d(q,c)^2 + R^2) >= sqrt(d(q,box)^2 + r_min^2).
  // Prune against `second` so both smallest values survive.
  double d2 = n.box.DistSqTo(q);
  double lb = std::sqrt(d2 + n.r_min * n.r_min);
  if (lb >= env->second) return;
  if (n.left < 0) {
    for (int i = n.begin; i < n.end; ++i) {
      int g = group_order_[i];
      const geom::Circle& seb = group_seb_[g];
      double group_lb =
          std::sqrt(DistSq(q, seb.center) + seb.radius * seb.radius);
      if (group_lb >= env->second) continue;
      double v = points_[g].MaxDist(q);
      if (v < env->best) {
        env->second = env->best;
        env->best = v;
        env->argbest = g;
      } else {
        env->second = std::min(env->second, v);
      }
    }
    return;
  }
  double dl = std::sqrt(group_nodes_[n.left].box.DistSqTo(q));
  double dr = std::sqrt(group_nodes_[n.right].box.DistSqTo(q));
  if (dl <= dr) {
    DeltaRec(n.left, q, env);
    DeltaRec(n.right, q, env);
  } else {
    DeltaRec(n.right, q, env);
    DeltaRec(n.left, q, env);
  }
}

DeltaEnvelope NnNonzeroDiscreteIndex::DeltaPair(Vec2 q) const {
  DeltaEnvelope env;
  env.best = std::numeric_limits<double>::infinity();
  env.second = std::numeric_limits<double>::infinity();
  DeltaRec(group_root_, q, &env);
  return env;
}

double NnNonzeroDiscreteIndex::Delta(Vec2 q) const { return DeltaPair(q).best; }

std::vector<int> NnNonzeroDiscreteIndex::Query(Vec2 q) const {
  DeltaEnvelope env = DeltaPair(q);
  if (points_.size() == 1) return {0};
  // Owners other than the argmin qualify iff delta_i < best (their
  // j != i threshold); the argmin's threshold is `second`.
  std::vector<int> hits;
  site_tree_->RangeCircle(q, env.best, &hits, /*inclusive=*/false);
  std::vector<int> out;
  out.reserve(hits.size());
  for (int h : hits) out.push_back(site_owner_[h]);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  bool arg_in = std::binary_search(out.begin(), out.end(), env.argbest);
  bool arg_should = points_[env.argbest].MinDist(q) < env.second;
  if (arg_in && !arg_should) {
    out.erase(std::find(out.begin(), out.end(), env.argbest));
  } else if (!arg_in && arg_should) {
    out.insert(std::upper_bound(out.begin(), out.end(), env.argbest),
               env.argbest);
  }
  return out;
}

}  // namespace core
}  // namespace unn
