#include "core/exact_pnn.h"

#include <algorithm>
#include <cmath>

#include "baselines/brute_force.h"
#include "core/pnn_common.h"
#include "prob/distance_cdf.h"
#include "prob/quadrature.h"
#include "util/check.h"

namespace unn {
namespace core {

using geom::Vec2;

std::vector<std::pair<int, double>> DiscreteQuantification(
    const std::vector<UncertainPoint>& pts, Vec2 q) {
  std::vector<double> pi = baselines::QuantificationProbabilities(pts, q);
  std::vector<std::pair<int, double>> out;
  for (size_t i = 0; i < pi.size(); ++i) {
    if (pi[i] > 0) out.push_back({static_cast<int>(i), pi[i]});
  }
  return out;
}

double IntegrateQuantification(const std::vector<UncertainPoint>& pts, int i,
                               Vec2 q, double tol) {
  UNN_CHECK(i >= 0 && i < static_cast<int>(pts.size()));
  for (const auto& p : pts) {
    UNN_CHECK_MSG(p.is_disk(), "IntegrateQuantification is for disk models");
  }
  double lo = pts[i].MinDist(q);
  double hi = std::min(pts[i].MaxDist(q), GlobalMaxDistLowerEnvelope(pts, q));
  if (hi <= lo) return 0.0;
  auto integrand = [&](double r) {
    double g = prob::DistancePdf(pts[i], q, r);
    if (g == 0.0) return 0.0;
    double prod = 1.0;
    for (size_t j = 0; j < pts.size(); ++j) {
      if (static_cast<int>(j) == i) continue;
      prod *= 1.0 - prob::DistanceCdf(pts[j], q, r);
      if (prod == 0.0) break;
    }
    return g * prod;
  };
  return prob::AdaptiveSimpson(integrand, lo, hi, tol);
}

std::vector<std::pair<int, double>> IntegrateAllQuantifications(
    const std::vector<UncertainPoint>& pts, Vec2 q, double tol) {
  std::vector<std::pair<int, double>> out;
  for (int i : baselines::NonzeroNn(pts, q)) {
    out.push_back({i, IntegrateQuantification(pts, i, q, tol)});
  }
  return out;
}

}  // namespace core
}  // namespace unn
