#ifndef UNN_CORE_NN_NONZERO_INDEX_H_
#define UNN_CORE_NN_NONZERO_INDEX_H_

#include <memory>
#include <vector>

#include "core/uncertain_point.h"
#include "range/disk_tree.h"
#include "voronoi/weighted_voronoi.h"

/// \file nn_nonzero_index.h
/// The near-linear-size NN!=0 query structure of Theorem 3.1 (continuous
/// disks). A query runs in two stages, exactly as in the paper:
///   1. compute Delta(q) = min_i (d(q,c_i) + r_i) — either by point location
///      in the additively weighted Voronoi diagram M (the paper's stage) or
///      by branch-and-bound over a weighted disk tree (default; same
///      output, no windowing);
///   2. report all i with delta_i(q) < Delta(q), i.e. all disks meeting the
///      open disk D(q, Delta(q)) — the [KMR+16] black box replaced by the
///      output-sensitive disk-tree reporter (DESIGN.md section 3).
/// Space is O(n); answers are exact.

namespace unn {
namespace core {

class NnNonzeroIndex {
 public:
  enum class Stage1 {
    kDiskTree,  ///< Branch-and-bound min (default; exact everywhere).
    kVoronoi,   ///< Point location in M (paper-faithful; exact everywhere,
                ///< linear-scan fallback outside M's window).
  };

  explicit NnNonzeroIndex(std::vector<UncertainPoint> points,
                          Stage1 stage1 = Stage1::kDiskTree);

  /// NN!=0(q), sorted ids. Exact.
  std::vector<int> Query(geom::Vec2 q) const;

  /// Delta(q) via the selected stage-1 structure.
  double Delta(geom::Vec2 q) const;

  Stage1 stage1() const { return stage1_; }

 private:
  std::vector<UncertainPoint> points_;
  Stage1 stage1_;
  std::unique_ptr<range::DiskTree> tree_;
  std::unique_ptr<voronoi::WeightedVoronoi> vor_;
};

}  // namespace core
}  // namespace unn

#endif  // UNN_CORE_NN_NONZERO_INDEX_H_
