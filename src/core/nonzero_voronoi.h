#ifndef UNN_CORE_NONZERO_VORONOI_H_
#define UNN_CORE_NONZERO_VORONOI_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/uncertain_point.h"
#include "dcel/planar_subdivision.h"
#include "envelope/polar_envelope.h"
#include "geom/vec2.h"
#include "persist/persistent_set.h"
#include "pointloc/ray_shooter.h"

/// \file nonzero_voronoi.h
/// The nonzero Voronoi diagram V!=0(P) for uncertain points with disk
/// uncertainty regions (Section 2.1 and Theorems 2.5/2.11 of the paper).
///
/// Construction pipeline (DESIGN.md section 2):
///   1. gamma_i = lower envelope, polar about c_i, of the hyperbola
///      branches gamma_ij = {delta_i = Delta_j} (Lemma 2.2);
///   2. vertices of A(Gamma) = breakpoints of each gamma_i plus pairwise
///      crossings gamma_i x gamma_j, the latter obtained by intersecting
///      gamma_i's arcs with the bisector conic {delta_i = delta_j} — a
///      closed-form linear trigonometric equation per arc;
///   3. curves are clipped to a rectangular window, split at vertices, and
///      assembled into a DCEL together with the window frame;
///   4. every boundary loop receives its label set P_phi by BFS — crossing
///      an edge of gamma_i toggles i — stored as versions of a partially
///      persistent treap ([DSST89]; O(mu) total label space, Theorem 2.11);
///   5. queries locate q by grid-accelerated vertical ray shooting and
///      return the loop's stored set in O(t) after location.
///
/// Queries outside the window (or hitting an unlabeled sliver) fall back to
/// the O(n) definition, so answers are always exact.

namespace unn {
namespace core {

struct NonzeroVoronoiOptions {
  /// Clipping window. Empty (default) selects the bounding box of the
  /// input disks inflated by `auto_window_margin` times its diagonal.
  geom::Box window;
  double auto_window_margin = 1.0;
  /// Grid resolution for the point-location accelerator (0 = auto).
  int locator_cells_per_axis = 0;
};

class NonzeroVoronoi {
 public:
  struct Stats {
    /// Total arcs over all gamma_i envelopes.
    int64_t gamma_arcs = 0;
    /// Total Lemma-2.2 breakpoints over all gamma_i.
    int64_t gamma_breakpoints = 0;
    /// Distinct gamma_i x gamma_j crossing points (unclipped plane count;
    /// this plus breakpoints is the paper's vertex count of A(Gamma)).
    int64_t curve_crossings = 0;
    /// curve_crossings + gamma_breakpoints.
    int64_t arrangement_vertices = 0;
    /// DCEL-level counts inside the clipping window (frame included).
    int dcel_vertices = 0;
    int dcel_edges = 0;
    int dcel_faces_euler = 0;
    int bounded_faces = 0;
    int components = 0;
    /// Loops that could not be labeled (queries there fall back; 0 in
    /// healthy builds apart from the frame-exterior loop).
    int unlabeled_loops = 0;
    /// Nodes in the persistent label store (Theorem 2.11 space accounting).
    int64_t label_nodes = 0;
    /// Sub-arcs dropped by defensive finite/inside checks (0 expected).
    int64_t dropped_subarcs = 0;
  };

  /// Builds V!=0 of `points` (all must have disk regions).
  explicit NonzeroVoronoi(std::vector<UncertainPoint> points,
                          const NonzeroVoronoiOptions& opts = {});

  /// NN!=0(q): ids of all points with nonzero probability of being the
  /// nearest neighbor of q, sorted increasing. Exact.
  std::vector<int> Query(geom::Vec2 q) const;

  /// The *guaranteed* nearest neighbor at q, if any: the single id whose
  /// NN probability is 1 (|NN!=0(q)| == 1). Returns -1 when no point is
  /// guaranteed. Cells with a guaranteed NN form the linear-complexity
  /// guaranteed Voronoi diagram of [SE08] (Section 1.2 of the paper).
  int GuaranteedNn(geom::Vec2 q) const;

  /// Number of bounded faces whose label is a single point — the cells of
  /// the [SE08] guaranteed Voronoi diagram inside the window.
  int NumGuaranteedFaces() const;

  /// True if the last-resort O(n) fallback would be used for q (outside
  /// window or unlabeled sliver).
  bool IsFallbackQuery(geom::Vec2 q) const;

  const Stats& stats() const { return stats_; }
  const geom::Box& window() const { return window_; }
  const std::vector<UncertainPoint>& points() const { return points_; }
  const dcel::PlanarSubdivision& subdivision() const { return sub_; }
  const std::vector<envelope::PolarEnvelope>& gammas() const { return gammas_; }

 private:
  struct ArcEvents {
    std::vector<double> thetas;
  };

  void ComputeGammas();
  void EnumerateCrossings();
  void EnumerateBoxCrossings();
  void BuildEdges();
  void BuildFrame();
  void AssignLabels();
  int SnapVertex(geom::Vec2 p);
  std::vector<int> BruteQuery(geom::Vec2 q) const;

  std::vector<UncertainPoint> points_;
  geom::Box window_;
  double scale_ = 1.0;

  std::vector<envelope::PolarEnvelope> gammas_;
  /// events_[i][arc_index] = split angles within that envelope arc.
  std::vector<std::vector<ArcEvents>> events_;
  /// Frame-side crossing registry: (side 0..3, parameter, vertex id).
  std::vector<std::vector<std::pair<double, int>>> frame_hits_;

  dcel::PlanarSubdivision sub_;
  std::unique_ptr<pointloc::RayShooter> shooter_;

  persist::PersistentSet labels_;
  std::vector<persist::Version> loop_version_;

  // Vertex snapping grid.
  double snap_tol_ = 1e-9;
  std::unordered_map<uint64_t, std::vector<int>> snap_grid_;

  Stats stats_;
};

}  // namespace core
}  // namespace unn

#endif  // UNN_CORE_NONZERO_VORONOI_H_
