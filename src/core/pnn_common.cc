#include "core/pnn_common.h"

#include "util/check.h"

namespace unn {
namespace core {

void AccumulateQuantification(const std::vector<WeightedSite>& sites, int n,
                              std::vector<double>* pi) {
  pi->assign(n, 0.0);
  std::vector<long double> f(n, 1.0L);
  long double prod_nonzero = 1.0L;
  int zero_count = 0;
  constexpr long double kZeroTol = 1e-13L;

  for (const WeightedSite& s : sites) {
    UNN_DCHECK(s.owner >= 0 && s.owner < n);
    if (zero_count == 0) {
      (*pi)[s.owner] +=
          static_cast<double>(s.weight * (prod_nonzero / f[s.owner]));
    }
    long double old_f = f[s.owner];
    long double new_f = old_f - static_cast<long double>(s.weight);
    if (new_f < kZeroTol) new_f = 0.0L;
    f[s.owner] = new_f;
    if (new_f == 0.0L) {
      ++zero_count;
      prod_nonzero /= old_f;
    } else {
      prod_nonzero *= new_f / old_f;
    }
  }
}

}  // namespace core
}  // namespace unn
