#include "core/expected_nn.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "prob/distance_cdf.h"
#include "prob/quadrature.h"
#include "util/check.h"

namespace unn {
namespace core {

using geom::Vec2;

namespace {
constexpr int kLeaf = 8;

/// E[|X - c|^2] for the supported disk pdfs (c the disk center).
double DiskRadialVariance(const UncertainPoint& p) {
  double radius = p.radius();
  switch (p.pdf()) {
    case DiskPdf::kUniform:
      return radius * radius / 2.0;
    case DiskPdf::kTruncatedGaussian: {
      // sigma = R/2; with a = R^2 / (2 sigma^2) = 2:
      // E[rho^2] = 2 sigma^2 (1 - e^-a (1 + a)) / (1 - e^-a).
      double s2 = radius * radius / 2.0;  // 2 sigma^2.
      double a = radius * radius / s2;    // = 2.
      return s2 * (1.0 - std::exp(-a) * (1.0 + a)) / (1.0 - std::exp(-a));
    }
  }
  return 0.0;
}

}  // namespace

ExpectedNn::ExpectedNn(std::vector<UncertainPoint> points)
    : points_(std::move(points)) {
  UNN_CHECK(!points_.empty());
  for (const auto& p : points_) {
    if (p.is_disk()) {
      mean_.push_back(p.center());  // Radially symmetric pdfs.
      var_.push_back(DiskRadialVariance(p));
    } else {
      Vec2 mu{0, 0};
      for (size_t s = 0; s < p.sites().size(); ++s) {
        mu = mu + p.sites()[s] * p.weights()[s];
      }
      double var = 0;
      for (size_t s = 0; s < p.sites().size(); ++s) {
        var += p.weights()[s] * DistSq(p.sites()[s], mu);
      }
      mean_.push_back(mu);
      var_.push_back(var);
    }
  }
  order_.resize(points_.size());
  std::iota(order_.begin(), order_.end(), 0);
  root_ = Build(0, static_cast<int>(points_.size()), 0);
}

int ExpectedNn::Build(int begin, int end, int depth) {
  Node node;
  node.var_min = std::numeric_limits<double>::infinity();
  for (int i = begin; i < end; ++i) {
    node.box.Expand(mean_[order_[i]]);
    node.var_min = std::min(node.var_min, var_[order_[i]]);
  }
  int id = static_cast<int>(nodes_.size());
  nodes_.push_back(node);
  if (end - begin <= kLeaf) {
    nodes_[id].begin = begin;
    nodes_[id].end = end;
    return id;
  }
  int mid = (begin + end) / 2;
  bool by_x = (depth % 2 == 0);
  std::nth_element(order_.begin() + begin, order_.begin() + mid,
                   order_.begin() + end, [&](int a, int b) {
                     return by_x ? mean_[a].x < mean_[b].x
                                 : mean_[a].y < mean_[b].y;
                   });
  int l = Build(begin, mid, depth + 1);
  int r = Build(mid, end, depth + 1);
  nodes_[id].left = l;
  nodes_[id].right = r;
  return id;
}

void ExpectedNn::QueryRec(int node, Vec2 q, double* best, int* arg) const {
  const Node& n = nodes_[node];
  if (n.box.DistSqTo(q) + n.var_min >= *best) return;
  if (n.left < 0) {
    for (int i = n.begin; i < n.end; ++i) {
      int id = order_[i];
      double v = DistSq(q, mean_[id]) + var_[id];
      if (v < *best) {
        *best = v;
        *arg = id;
      }
    }
    return;
  }
  double dl = nodes_[n.left].box.DistSqTo(q) + nodes_[n.left].var_min;
  double dr = nodes_[n.right].box.DistSqTo(q) + nodes_[n.right].var_min;
  if (dl <= dr) {
    QueryRec(n.left, q, best, arg);
    QueryRec(n.right, q, best, arg);
  } else {
    QueryRec(n.right, q, best, arg);
    QueryRec(n.left, q, best, arg);
  }
}

int ExpectedNn::QuerySquared(Vec2 q) const {
  double best = std::numeric_limits<double>::infinity();
  int arg = -1;
  QueryRec(root_, q, &best, &arg);
  return arg;
}

double ExpectedNn::ExpectedSquaredDistance(int i, Vec2 q) const {
  return DistSq(q, mean_[i]) + var_[i];
}

double ExpectedNn::ExpectedDistance(int i, Vec2 q, double tol) const {
  const UncertainPoint& p = points_[i];
  if (!p.is_disk()) {
    double e = 0;
    for (size_t s = 0; s < p.sites().size(); ++s) {
      e += p.weights()[s] * Dist(q, p.sites()[s]);
    }
    return e;
  }
  double lo = p.MinDist(q);
  double hi = p.MaxDist(q);
  return prob::AdaptiveSimpson(
      [&](double r) { return r * prob::DistancePdf(p, q, r); }, lo, hi, tol);
}

std::vector<int> ExpectedNn::RankByExpectedDistance(Vec2 q, int k,
                                                    double tol) const {
  int n = static_cast<int>(points_.size());
  k = std::min(k, n);
  std::vector<std::pair<double, int>> ranked(n);
  for (int i = 0; i < n; ++i) ranked[i] = {ExpectedDistance(i, q, tol), i};
  std::partial_sort(ranked.begin(), ranked.begin() + k, ranked.end());
  std::vector<int> out(k);
  for (int i = 0; i < k; ++i) out[i] = ranked[i].second;
  return out;
}

int ExpectedNn::QueryExpected(Vec2 q, double tol) const {
  // Scan with pruning: E[d] >= delta_i(q) and E[d] <= sqrt(E[d^2]).
  int n = static_cast<int>(points_.size());
  std::vector<int> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  std::sort(ids.begin(), ids.end(), [&](int a, int b) {
    return ExpectedSquaredDistance(a, q) < ExpectedSquaredDistance(b, q);
  });
  double best = std::numeric_limits<double>::infinity();
  int arg = -1;
  for (int i : ids) {
    if (points_[i].MinDist(q) >= best) continue;
    double e = ExpectedDistance(i, q, tol);
    if (e < best) {
      best = e;
      arg = i;
    }
  }
  return arg;
}

}  // namespace core
}  // namespace unn
