#include "core/expected_nn.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "prob/distance_cdf.h"
#include "prob/quadrature.h"
#include "spatial/traverse.h"
#include "util/check.h"

namespace unn {
namespace core {

using geom::Vec2;

namespace {
constexpr int kLeaf = 8;

/// E[|X - c|^2] for the supported disk pdfs (c the disk center).
double DiskRadialVariance(const UncertainPoint& p) {
  double radius = p.radius();
  switch (p.pdf()) {
    case DiskPdf::kUniform:
      return radius * radius / 2.0;
    case DiskPdf::kTruncatedGaussian: {
      // sigma = R/2; with a = R^2 / (2 sigma^2) = 2:
      // E[rho^2] = 2 sigma^2 (1 - e^-a (1 + a)) / (1 - e^-a).
      double s2 = radius * radius / 2.0;  // 2 sigma^2.
      double a = radius * radius / s2;    // = 2.
      return s2 * (1.0 - std::exp(-a) * (1.0 + a)) / (1.0 - std::exp(-a));
    }
  }
  return 0.0;
}

}  // namespace

ExpectedNn::ExpectedNn(std::vector<UncertainPoint> points)
    : points_(std::move(points)) {
  UNN_CHECK(!points_.empty());
  for (const auto& p : points_) {
    if (p.is_disk()) {
      mean_.push_back(p.center());  // Radially symmetric pdfs.
      var_.push_back(DiskRadialVariance(p));
    } else {
      Vec2 mu{0, 0};
      for (size_t s = 0; s < p.sites().size(); ++s) {
        mu = mu + p.sites()[s] * p.weights()[s];
      }
      double var = 0;
      for (size_t s = 0; s < p.sites().size(); ++s) {
        var += p.weights()[s] * DistSq(p.sites()[s], mu);
      }
      mean_.push_back(mu);
      var_.push_back(var);
    }
  }
  tree_ = spatial::FlatKdTree<spatial::MinAugment>(
      mean_, {.leaf_size = kLeaf, .split = spatial::SplitRule::kAlternate},
      spatial::MinAugment(&var_));
}

int ExpectedNn::QuerySquared(Vec2 q) const {
  double best = std::numeric_limits<double>::infinity();
  int arg = -1;
  // Subtree lower bound on E[d(q,P)^2]: squared box distance plus the
  // smallest variance in the subtree.
  auto lb = [&](int n) {
    return tree_.box(n).DistSqTo(q) + tree_.aug().min(n);
  };
  spatial::PrunedVisitOrdered(
      tree_, lb, [&](int n) { return lb(n) >= best; },
      [&](int n) {
        for (int i = tree_.begin(n); i < tree_.end(n); ++i) {
          int id = tree_.item(i);
          double v = DistSq(q, mean_[id]) + var_[id];
          if (v < best) {
            best = v;
            arg = id;
          }
        }
      });
  return arg;
}

double ExpectedNn::ExpectedSquaredDistance(int i, Vec2 q) const {
  return DistSq(q, mean_[i]) + var_[i];
}

double ExpectedNn::ExpectedDistance(int i, Vec2 q, double tol) const {
  const UncertainPoint& p = points_[i];
  if (!p.is_disk()) {
    double e = 0;
    for (size_t s = 0; s < p.sites().size(); ++s) {
      e += p.weights()[s] * Dist(q, p.sites()[s]);
    }
    return e;
  }
  double lo = p.MinDist(q);
  double hi = p.MaxDist(q);
  return prob::AdaptiveSimpson(
      [&](double r) { return r * prob::DistancePdf(p, q, r); }, lo, hi, tol);
}

std::vector<int> ExpectedNn::RankByExpectedDistance(Vec2 q, int k,
                                                    double tol) const {
  int n = static_cast<int>(points_.size());
  k = std::min(k, n);
  std::vector<std::pair<double, int>> ranked(n);
  for (int i = 0; i < n; ++i) ranked[i] = {ExpectedDistance(i, q, tol), i};
  std::partial_sort(ranked.begin(), ranked.begin() + k, ranked.end());
  std::vector<int> out(k);
  for (int i = 0; i < k; ++i) out[i] = ranked[i].second;
  return out;
}

int ExpectedNn::QueryExpected(Vec2 q, double tol) const {
  // Scan with pruning: E[d] >= delta_i(q) and E[d] <= sqrt(E[d^2]).
  int n = static_cast<int>(points_.size());
  std::vector<int> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  std::sort(ids.begin(), ids.end(), [&](int a, int b) {
    return ExpectedSquaredDistance(a, q) < ExpectedSquaredDistance(b, q);
  });
  double best = std::numeric_limits<double>::infinity();
  int arg = -1;
  for (int i : ids) {
    if (points_[i].MinDist(q) >= best) continue;
    double e = ExpectedDistance(i, q, tol);
    if (e < best) {
      best = e;
      arg = i;
    }
  }
  return arg;
}

}  // namespace core
}  // namespace unn
