#include "core/expected_nn.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "prob/distance_cdf.h"
#include "prob/quadrature.h"
#include "spatial/traverse.h"
#include "util/check.h"

namespace unn {
namespace core {

using geom::Vec2;

namespace {
constexpr int kLeaf = 8;

/// Relative guard band for skips against a computed E[d] incumbent: a
/// distance-based lower bound only skips an item when the bound times
/// this factor still exceeds the incumbent, absorbing the ~1e-9-relative
/// rounding of the closed-form weighted sum (see QueryExpected).
constexpr double kSkipGuard = 1.0 - 1e-8;

/// E[|X - c|^2] for the supported disk pdfs (c the disk center).
double DiskRadialVariance(const UncertainPoint& p) {
  double radius = p.radius();
  switch (p.pdf()) {
    case DiskPdf::kUniform:
      return radius * radius / 2.0;
    case DiskPdf::kTruncatedGaussian: {
      // sigma = R/2; with a = R^2 / (2 sigma^2) = 2:
      // E[rho^2] = 2 sigma^2 (1 - e^-a (1 + a)) / (1 - e^-a).
      double s2 = radius * radius / 2.0;  // 2 sigma^2.
      double a = radius * radius / s2;    // = 2.
      return s2 * (1.0 - std::exp(-a) * (1.0 + a)) / (1.0 - std::exp(-a));
    }
  }
  return 0.0;
}

}  // namespace

ExpectedNn::ExpectedNn(std::vector<UncertainPoint> points)
    : points_(std::move(points)) {
  UNN_CHECK(!points_.empty());
  for (const auto& p : points_) {
    if (p.is_disk()) {
      all_discrete_ = false;
      mean_.push_back(p.center());  // Radially symmetric pdfs.
      var_.push_back(DiskRadialVariance(p));
    } else {
      Vec2 mu{0, 0};
      for (size_t s = 0; s < p.sites().size(); ++s) {
        mu = mu + p.sites()[s] * p.weights()[s];
      }
      double var = 0;
      for (size_t s = 0; s < p.sites().size(); ++s) {
        var += p.weights()[s] * DistSq(p.sites()[s], mu);
      }
      mean_.push_back(mu);
      var_.push_back(var);
    }
  }
  tree_ = spatial::FlatKdTree<spatial::MinAugment>(
      mean_, {.leaf_size = kLeaf, .split = spatial::SplitRule::kAlternate},
      spatial::MinAugment(&var_));
}

int ExpectedNn::QuerySquared(Vec2 q) const {
  double best = std::numeric_limits<double>::infinity();
  int arg = -1;
  // Subtree lower bound on E[d(q,P)^2]: squared box distance plus the
  // smallest variance in the subtree.
  auto lb = [&](int n) {
    return tree_.box(n).DistSqTo(q) + tree_.aug().min(n);
  };
  spatial::PrunedVisitOrdered(
      tree_, lb, [&](int n) { return lb(n) >= best; },
      [&](int n) {
        for (int i = tree_.begin(n); i < tree_.end(n); ++i) {
          int id = tree_.item(i);
          double v = DistSq(q, mean_[id]) + var_[id];
          if (v < best) {
            best = v;
            arg = id;
          }
        }
      });
  return arg;
}

double ExpectedNn::ExpectedSquaredDistance(int i, Vec2 q) const {
  return DistSq(q, mean_[i]) + var_[i];
}

double ExpectedNn::ExpectedDistance(int i, Vec2 q, double tol) const {
  const UncertainPoint& p = points_[i];
  if (!p.is_disk()) {
    double e = 0;
    for (size_t s = 0; s < p.sites().size(); ++s) {
      e += p.weights()[s] * Dist(q, p.sites()[s]);
    }
    return e;
  }
  double lo = p.MinDist(q);
  double hi = p.MaxDist(q);
  return prob::AdaptiveSimpson(
      [&](double r) { return r * prob::DistancePdf(p, q, r); }, lo, hi, tol);
}

std::vector<int> ExpectedNn::RankByExpectedDistance(Vec2 q, int k,
                                                    double tol) const {
  int n = static_cast<int>(points_.size());
  k = std::min(k, n);
  std::vector<std::pair<double, int>> ranked(n);
  for (int i = 0; i < n; ++i) ranked[i] = {ExpectedDistance(i, q, tol), i};
  std::partial_sort(ranked.begin(), ranked.begin() + k, ranked.end());
  std::vector<int> out(k);
  for (int i = 0; i < k; ++i) out[i] = ranked[i].second;
  return out;
}

int ExpectedNn::QueryExpected(Vec2 q, double tol) const {
  // Scan with pruning: E[d] >= delta_i(q) and E[d] <= sqrt(E[d^2]), so
  // evaluating in increasing (E[d^2], id) order finds the minimizer
  // early and skips most evaluations. The skip keeps a relative guard
  // band (kSkipGuard): for discrete models the closed-form E[d] is a
  // weighted sum of correctly-rounded distances whose weights sum to 1
  // only within 1e-9, so the computed E[d] can undershoot the computed
  // MinDist by ~1e-9 relative — the band guarantees a skipped item's
  // E[d] is strictly above the incumbent. With the band and the
  // smallest-id tie break, the discrete result is the lexicographic
  // argmin of (E[d], id), independent of evaluation order — the
  // contract QueryExpectedBatch reproduces through a shared traversal.
  // Disk models use the same loop; their quadrature values carry the
  // documented tol-level near-tie caveat either way.
  int n = static_cast<int>(points_.size());
  std::vector<std::pair<double, int>> order(n);
  for (int i = 0; i < n; ++i) order[i] = {ExpectedSquaredDistance(i, q), i};
  std::sort(order.begin(), order.end());
  double best = std::numeric_limits<double>::infinity();
  int arg = -1;
  for (auto [e2, i] : order) {
    if (points_[i].MinDist(q) * kSkipGuard > best) continue;
    double e = ExpectedDistance(i, q, tol);
    if (e < best || (e == best && i < arg)) {
      best = e;
      arg = i;
    }
  }
  return arg;
}

// ---------------------------------------------------------------------------
// Batched entry points (spatial/batch.h): pack geom::kLaneWidth queries
// per traversal, bit-identical to the scalar queries above.
// ---------------------------------------------------------------------------

namespace {

constexpr int kW = geom::kLaneWidth;
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Largest coordinate magnitude of a node box — scales the absolute
/// guard band that covers rounding of the stored means (the weighted
/// mean of a discrete point is computed, not exact, so a Jensen bound
/// through it needs slack proportional to the coordinate scale).
double BoxMagnitude(const geom::Box& b) {
  return std::max(std::max(std::abs(b.lo.x), std::abs(b.hi.x)),
                  std::max(std::abs(b.lo.y), std::abs(b.hi.y)));
}

}  // namespace

void ExpectedNn::QuerySquaredBatch(std::span<const Vec2> queries,
                                   std::span<int> out,
                                   spatial::BatchStats* stats) const {
  UNN_CHECK(out.size() >= queries.size());
  for (size_t base = 0; base < queries.size(); base += kW) {
    int count = static_cast<int>(std::min<size_t>(kW, queries.size() - base));
    double qx[kW], qy[kW];
    for (int l = 0; l < kW; ++l) {
      Vec2 q = queries[base + std::min(l, count - 1)];  // Pad ragged packs.
      qx[l] = q.x;
      qy[l] = q.y;
    }
    double best[kW];
    int arg[kW];
    bool tied[kW];
    for (int l = 0; l < kW; ++l) {
      best[l] = kInf;
      arg[l] = -1;
      tied[l] = false;
    }
    // Pass 1: shared near-first traversal with a strict prune
    // (`lb > best` keeps every node that can still contain a value tying
    // the minimum). Both the subtree bound and the item value are sums
    // of a squared box/point distance and a variance, rounded
    // identically to the scalar path, and computed lb <= computed v
    // holds exactly (each term is <=, and rounded addition is monotone)
    // — so each lane ends with its exact minimum value, every attaining
    // item evaluated, and `tied` set whenever more than one item attains
    // it, regardless of the traversal order.
    spatial::BatchPrunedVisitNearFirst(
        tree_, spatial::FullMask(count),
        [&](int n, double* lb) {
          geom::BoxDistSqLanes(qx, qy, tree_.box(n), lb);
          geom::AddScalarLanes(lb, tree_.aug().min(n), lb);
        },
        [&](int l, double lb) { return lb > best[l]; },
        [&](int n, spatial::LaneMask m) {
          if (stats != nullptr) {
            stats->lane_points_evaluated +=
                static_cast<std::int64_t>(spatial::internal::PopCount(m)) *
                (tree_.end(n) - tree_.begin(n));
          }
          for (int s = tree_.begin(n); s < tree_.end(n); ++s) {
            int id = tree_.item(s);
            double v[kW];
            geom::DistSqLanes(qx, qy, mean_[id], v);
            geom::AddScalarLanes(v, var_[id], v);
            for (int l = 0; l < kW; ++l) {
              if ((m >> l & 1u) == 0) continue;
              if (v[l] < best[l]) {
                best[l] = v[l];
                arg[l] = id;
              } else if (v[l] == best[l]) {
                tied[l] = true;
              }
            }
          }
        },
        stats);
    if (stats != nullptr) ++stats->packs;
    // Pass 2: lanes with a unique minimizer are done (every sound
    // traversal returns it); tied lanes replay the scalar descent,
    // whose ordered-DFS tie break is the contract.
    for (int l = 0; l < count; ++l) {
      if (tied[l]) {
        if (stats != nullptr) ++stats->scalar_replays;
        out[base + l] = QuerySquared(queries[base + l]);
      } else {
        out[base + l] = arg[l];
      }
    }
  }
}

void ExpectedNn::QueryExpectedBatch(std::span<const Vec2> queries, double tol,
                                    std::span<int> out,
                                    spatial::BatchStats* stats) const {
  UNN_CHECK(out.size() >= queries.size());
  if (!all_discrete_) {
    // Quadrature values admit no sound batched prune (a tol-level
    // undershoot could evict the true winner), so disk/mixed sets serve
    // every lane through the scalar path — identical by definition.
    for (size_t i = 0; i < queries.size(); ++i) {
      out[i] = QueryExpected(queries[i], tol);
    }
    if (stats != nullptr) {
      stats->scalar_replays += static_cast<std::int64_t>(queries.size());
    }
    return;
  }
  for (size_t base = 0; base < queries.size(); base += kW) {
    int count = static_cast<int>(std::min<size_t>(kW, queries.size() - base));
    Vec2 qv[kW];
    double qx[kW], qy[kW];
    for (int l = 0; l < kW; ++l) {
      qv[l] = queries[base + std::min(l, count - 1)];  // Pad ragged packs.
      qx[l] = qv[l].x;
      qy[l] = qv[l].y;
    }
    double best[kW];
    int arg[kW];
    for (int l = 0; l < kW; ++l) {
      best[l] = kInf;
      arg[l] = -1;
    }
    // The scalar discrete result is the lexicographic argmin of
    // (E[d], id) independent of evaluation order (see QueryExpected), so
    // the shared traversal only needs sound pruning, no replay. Subtree
    // bound: E[d] >= d(q, mean) (Jensen) >= box distance, with a
    // relative guard for the weighted-sum rounding plus an absolute
    // guard at the node's coordinate scale for the rounding of the
    // stored means themselves.
    spatial::BatchPrunedVisitNearFirst(
        tree_, spatial::FullMask(count),
        [&](int n, double* lb) {
          geom::BoxDistSqLanes(qx, qy, tree_.box(n), lb);
          geom::SqrtLanes(lb, lb);
          double mag = BoxMagnitude(tree_.box(n));
          for (int l = 0; l < kW; ++l) {
            lb[l] = lb[l] * kSkipGuard -
                    1e-12 * (mag + std::abs(qx[l]) + std::abs(qy[l]));
          }
        },
        [&](int l, double lb) { return lb > best[l]; },
        [&](int n, spatial::LaneMask m) {
          double mag = BoxMagnitude(tree_.box(n));
          for (int s = tree_.begin(n); s < tree_.end(n); ++s) {
            int id = tree_.item(s);
            double dsq[kW];
            geom::DistSqLanes(qx, qy, mean_[id], dsq);
            for (int l = 0; l < kW; ++l) {
              if ((m >> l & 1u) == 0) continue;
              double slack =
                  1e-12 * (mag + std::abs(qx[l]) + std::abs(qy[l]));
              if (std::sqrt(dsq[l]) * kSkipGuard - slack > best[l]) continue;
              if (points_[id].MinDist(qv[l]) * kSkipGuard > best[l]) continue;
              if (stats != nullptr) ++stats->lane_points_evaluated;
              double e = ExpectedDistance(id, qv[l], tol);
              if (e < best[l] || (e == best[l] && id < arg[l])) {
                best[l] = e;
                arg[l] = id;
              }
            }
          }
        },
        stats);
    if (stats != nullptr) ++stats->packs;
    for (int l = 0; l < count; ++l) out[base + l] = arg[l];
  }
}

}  // namespace core
}  // namespace unn
