#ifndef UNN_CORE_PNN_QUERIES_H_
#define UNN_CORE_PNN_QUERIES_H_

#include <utility>
#include <vector>

#include "core/spiral_search.h"
#include "geom/vec2.h"

/// \file pnn_queries.h
/// Derived probabilistic-NN query types built on the Section-4 estimators:
/// threshold queries ([DYM+05]-style, Section 1.2) and top-k most-probable
/// NN ranking ([BSI08]-style).

namespace unn {
namespace core {

/// All (i, hat-pi) whose true pi_i(q) may reach `tau`: reports every i with
/// hat-pi_i + eps >= tau where eps = tau/2, so there are *no false
/// negatives* (Lemma 4.6 gives pi <= hat-pi + eps), and every reported i
/// has pi_i >= hat-pi_i >= tau/2 - eps_slack. Sorted by decreasing estimate.
std::vector<std::pair<int, double>> ThresholdQuery(const SpiralSearch& ss,
                                                   geom::Vec2 q, double tau);

/// The k ids with the largest estimated pi_i(q) (accuracy eps), sorted by
/// decreasing estimate. Ties and near-ties (within 2 eps) may permute — the
/// inherent ambiguity of probabilistic ranking the paper cites [JCLY11].
std::vector<std::pair<int, double>> TopKQuery(const SpiralSearch& ss,
                                              geom::Vec2 q, int k,
                                              double eps = 0.01);

}  // namespace core
}  // namespace unn

#endif  // UNN_CORE_PNN_QUERIES_H_
