#ifndef UNN_CORE_EXACT_PNN_H_
#define UNN_CORE_EXACT_PNN_H_

#include <utility>
#include <vector>

#include "core/uncertain_point.h"
#include "geom/vec2.h"

/// \file exact_pnn.h
/// Per-query quantification probabilities without preprocessing:
///   * discrete models: Eq. (2) evaluated exactly in O(N log N);
///   * continuous models: Eq. (1) by adaptive numerical integration with
///     analytic distance cdfs — the [CKP04] baseline the paper calls
///     "quite expensive" (experiment E8 measures how expensive).

namespace unn {
namespace core {

/// Exact pi_i(q) for all-discrete inputs; pairs (id, pi) with pi > 0,
/// sorted by id.
std::vector<std::pair<int, double>> DiscreteQuantification(
    const std::vector<UncertainPoint>& pts, geom::Vec2 q);

/// pi_i(q) for continuous (disk) models by integrating Eq. (1) over
/// r in [delta_i(q), min(Delta_i(q), Delta(q))]. `tol` is the quadrature
/// tolerance.
double IntegrateQuantification(const std::vector<UncertainPoint>& pts, int i,
                               geom::Vec2 q, double tol = 1e-8);

/// All positive pi_i(q) for continuous models (integrates each candidate in
/// NN!=0(q)); pairs sorted by id.
std::vector<std::pair<int, double>> IntegrateAllQuantifications(
    const std::vector<UncertainPoint>& pts, geom::Vec2 q, double tol = 1e-8);

}  // namespace core
}  // namespace unn

#endif  // UNN_CORE_EXACT_PNN_H_
