#include "core/quant_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geom/box_metrics.h"
#include "geom/lanes.h"
#include "prob/distance_cdf.h"
#include "spatial/batch.h"
#include "spatial/traverse.h"
#include "util/check.h"

namespace unn {
namespace core {

namespace {

constexpr int kLeafSize = 8;
constexpr double kInf = std::numeric_limits<double>::infinity();

/// True when no point behind `lb` can still change the envelope. Strict
/// comparison against `second` whenever `second == best`, so a pruned
/// subtree can never hide a minimum-value tie with a smaller id (which
/// would change `argbest`). Monotone in `lb`, so a best-first search can
/// stop at the first prunable heap entry.
bool EnvelopePrunable(double lb, const DeltaEnvelope& env) {
  if (lb > env.second) return true;
  return lb >= env.second && env.second > env.best;
}

}  // namespace

QuantTree::QuantTree(const std::vector<UncertainPoint>* points)
    : points_(points) {
  UNN_CHECK(points_ != nullptr);
  int n = size();
  anchors_.reserve(n);
  radii_.reserve(n);
  for (const UncertainPoint& p : *points_) {
    if (p.is_disk()) {
      anchors_.push_back(p.center());
      radii_.push_back(p.radius());
    } else {
      // Site centroid: a convex-hull point, so d(q, anchor) <= Delta_i(q)
      // stays a valid lower bound (d(q, .) is convex).
      geom::Vec2 c{0, 0};
      for (geom::Vec2 s : p.sites()) c = c + s;
      c = c / static_cast<double>(p.sites().size());
      double r = 0.0;
      for (geom::Vec2 s : p.sites()) r = std::max(r, Dist(c, s));
      anchors_.push_back(c);
      radii_.push_back(r);
    }
  }
  tree_ = spatial::FlatKdTree<Augment>(
      anchors_, {.leaf_size = kLeafSize, .split = spatial::SplitRule::kWidest},
      Augment{spatial::MinMaxAugment(&radii_), AllDiskAugment(points_)});
}

double QuantTree::MaxDistLowerBound(int node, geom::Vec2 q) const {
  // Every anchor lies in the convex hull of its support, so
  // Delta_i(q) >= d(q, anchor_i) >= dist(q, box); for an all-disk subtree
  // Delta_i(q) = d(q, center_i) + radius_i additionally clears r_min.
  double lb = geom::MinDistToBox(q, tree_.box(node));
  if (tree_.aug().second.all_disk(node)) lb += tree_.aug().first.min(node);
  // The support's farthest point sits radius_i away from the anchor, so
  // Delta_i(q) >= radius_i - d(q, anchor_i): bites when q is inside a
  // cluster of large supports.
  return std::max(lb,
                  tree_.aug().first.min(node) - tree_.box(node).MaxDistTo(q));
}

double QuantTree::MinDistLowerBound(int node, geom::Vec2 q) const {
  // The support lies within radius_i of its anchor, so
  // delta_i(q) >= d(q, anchor_i) - radius_i.
  return std::max(
      geom::MinDistToBox(q, tree_.box(node)) - tree_.aug().first.max(node),
      0.0);
}

DeltaEnvelope QuantTree::MaxDistEnvelope(geom::Vec2 q,
                                         QueryStats* stats) const {
  DeltaEnvelope env;
  env.best = kInf;
  env.second = kInf;
  spatial::BestFirstScan(
      tree_, [&](int n) { return MaxDistLowerBound(n, q); },
      // Entries pop in increasing lb order and prunability is monotone in
      // lb, so the first prunable entry ends the whole search.
      [&](double lb) { return EnvelopePrunable(lb, env); },
      [&](int n) {
        if (tree_.is_leaf(n)) {
          for (int j = tree_.begin(n); j < tree_.end(n); ++j) {
            int id = tree_.item(j);
            env.Insert((*points_)[id].MaxDist(q), id);
            if (stats != nullptr) ++stats->points_evaluated;
          }
        }
        return true;
      },
      stats);
  return env;
}

void QuantTree::MaxDistEnvelopeBatch(std::span<const geom::Vec2> queries,
                                     std::span<DeltaEnvelope> out,
                                     spatial::BatchStats* stats) const {
  constexpr int kW = geom::kLaneWidth;
  for (size_t base = 0; base < queries.size(); base += kW) {
    int count = static_cast<int>(std::min<size_t>(kW, queries.size() - base));
    geom::Vec2 qv[kW];
    double qx[kW], qy[kW];
    for (int l = 0; l < kW; ++l) {
      qv[l] = queries[base + std::min(l, count - 1)];  // Pad ragged packs.
      qx[l] = qv[l].x;
      qy[l] = qv[l].y;
    }
    DeltaEnvelope env[kW];
    for (int l = 0; l < kW; ++l) {
      env[l].best = kInf;
      env[l].second = kInf;
    }
    // Per-lane MaxDistLowerBound with the scalar's exact arithmetic:
    // sqrt of the squared box distance (SIMD, correctly rounded), the
    // all-disk r_min added with the scalar's rounding, and the
    // radius-dominant term r_min - MaxDistTo(q) — which is at most
    // r_min, so the max can only bite while the lane's bound is still
    // below r_min; the per-lane hypot stays off the common path.
    auto key = spatial::MakeLaneKeyCache([&](int n, double* k) {
      double dsq[kW];
      geom::BoxDistSqLanes(qx, qy, tree_.box(n), dsq);
      geom::SqrtLanes(dsq, k);
      const double rmin = tree_.aug().first.min(n);
      if (tree_.aug().second.all_disk(n)) geom::AddScalarLanes(k, rmin, k);
      for (int l = 0; l < kW; ++l) {
        if (k[l] < rmin) {
          k[l] = std::max(k[l], rmin - tree_.box(n).MaxDistTo(qv[l]));
        }
      }
    });
    spatial::BatchBestFirstScan(
        tree_, spatial::FullMask(count),
        [&](int l, int n) { return key(l, n); },
        [&](int l, double lb) { return EnvelopePrunable(lb, env[l]); },
        [&](int n, spatial::LaneMask m) {
          if (!tree_.is_leaf(n)) return;
          for (int j = tree_.begin(n); j < tree_.end(n); ++j) {
            int id = tree_.item(j);
            for (int l = 0; l < kW; ++l) {
              if ((m >> l & 1u) == 0) continue;
              if (stats != nullptr) ++stats->lane_points_evaluated;
              env[l].Insert((*points_)[id].MaxDist(qv[l]), id);
            }
          }
        },
        stats);
    if (stats != nullptr) ++stats->packs;
    for (int l = 0; l < count; ++l) out[base + l] = env[l];
  }
}

double QuantTree::LogSurvival(geom::Vec2 q, double r,
                              QueryStats* stats) const {
  double acc = 0.0;
  spatial::PrunedVisit(
      tree_,
      // Every support in the subtree is disjoint from ball(q, r): all
      // cdfs are 0, all survival factors are 1, the log contribution 0.
      [&](int n) { return MinDistLowerBound(n, q) > r; },
      [&](int n) {
        for (int j = tree_.begin(n); j < tree_.end(n); ++j) {
          int id = tree_.item(j);
          const UncertainPoint& p = (*points_)[id];
          if (p.MinDist(q) > r) continue;
          if (stats != nullptr) ++stats->points_evaluated;
          double cdf = prob::DistanceCdf(p, q, r);
          if (cdf >= 1.0) {  // Certainly within r: survival 0.
            acc = -kInf;
            return false;
          }
          acc += std::log1p(-cdf);
        }
        return true;
      },
      stats);
  return acc;
}

void QuantTree::LogSurvivalBatch(std::span<const geom::Vec2> queries,
                                 std::span<const double> radii,
                                 std::span<double> out,
                                 spatial::BatchStats* stats) const {
  constexpr int kW = geom::kLaneWidth;
  for (size_t base = 0; base < queries.size(); base += kW) {
    int count = static_cast<int>(std::min<size_t>(kW, queries.size() - base));
    geom::Vec2 qv[kW];
    double qx[kW], qy[kW], r[kW];
    for (int l = 0; l < kW; ++l) {
      size_t i = base + std::min(l, count - 1);  // Pad ragged packs.
      qv[l] = queries[i];
      qx[l] = qv[l].x;
      qy[l] = qv[l].y;
      r[l] = radii[i];
    }
    double acc[kW];
    bool dead[kW];  // Lane hit a certain point: answer is -inf, stop.
    for (int l = 0; l < kW; ++l) {
      acc[l] = 0.0;
      dead[l] = false;
    }
    spatial::BatchPrunedVisit(
        tree_, spatial::FullMask(count),
        [&](int n, spatial::LaneMask m) {
          double dsq[kW], s[kW];
          geom::BoxDistSqLanes(qx, qy, tree_.box(n), dsq);
          geom::SqrtLanes(dsq, s);
          const double rmax = tree_.aug().first.max(n);
          spatial::LaneMask keep = 0;
          for (int l = 0; l < kW; ++l) {
            if ((m >> l & 1u) == 0 || dead[l]) continue;
            // The scalar MinDistLowerBound(n, q) > r prune, per lane and
            // state-independent, so each lane's node sequence (and with
            // it the log-space accumulation order) is exactly the
            // scalar left-first walk.
            if (std::max(s[l] - rmax, 0.0) > r[l]) continue;
            keep |= static_cast<spatial::LaneMask>(1u << l);
          }
          return keep;
        },
        [&](int n, spatial::LaneMask m) {
          for (int j = tree_.begin(n); j < tree_.end(n); ++j) {
            int id = tree_.item(j);
            const UncertainPoint& p = (*points_)[id];
            for (int l = 0; l < kW; ++l) {
              if ((m >> l & 1u) == 0 || dead[l]) continue;
              if (p.MinDist(qv[l]) > r[l]) continue;
              if (stats != nullptr) ++stats->lane_points_evaluated;
              double cdf = prob::DistanceCdf(p, qv[l], r[l]);
              if (cdf >= 1.0) {  // Certainly within r: survival 0.
                acc[l] = -kInf;
                dead[l] = true;
                continue;
              }
              acc[l] += std::log1p(-cdf);
            }
          }
        },
        stats);
    if (stats != nullptr) ++stats->packs;
    for (int l = 0; l < count; ++l) out[base + l] = acc[l];
  }
}

double QuantTree::LogSurvivalScan(const std::vector<UncertainPoint>& points,
                                  geom::Vec2 q, double r) {
  double acc = 0.0;
  for (const UncertainPoint& p : points) {
    double cdf = prob::DistanceCdf(p, q, r);
    if (cdf >= 1.0) return -kInf;
    acc += std::log1p(-cdf);
  }
  return acc;
}

int QuantTree::ArgminPointwise(geom::Vec2 q,
                               const std::function<double(int)>& value,
                               QueryStats* stats) const {
  int best_id = -1;
  double best_v = kInf;
  spatial::BestFirstScan(
      tree_, [&](int n) { return MinDistLowerBound(n, q); },
      // Strict comparison: a subtree at lb == best_v may still hold an
      // exact tie with a smaller id, which the linear scan would report.
      [&](double lb) { return lb > best_v; },
      [&](int n) {
        if (tree_.is_leaf(n)) {
          for (int j = tree_.begin(n); j < tree_.end(n); ++j) {
            int id = tree_.item(j);
            double v = value(id);
            if (stats != nullptr) ++stats->points_evaluated;
            if (v < best_v || (v == best_v && id < best_id)) {
              best_v = v;
              best_id = id;
            }
          }
        }
        return true;
      },
      stats);
  return best_id;
}

void QuantTree::ArgminPointwiseBatch(
    std::span<const geom::Vec2> queries,
    const std::function<double(int, int)>& value, double slack,
    std::span<int> out, spatial::BatchStats* stats) const {
  constexpr int kW = geom::kLaneWidth;
  UNN_CHECK(slack >= 0.0);
  // An approximate value may undershoot its lane's lower bound by up to
  // `slack`, so the strict scalar prune and the pack's prune can resolve
  // candidates within that margin differently. Pruning with a 2*slack
  // band keeps every point whose value can come within `slack` of the
  // minimum, and a runner-up inside the band flags the lane for scalar
  // replay; an unflagged lane's minimizer wins by more than the total
  // error, so the scalar walk must have found the same one.
  const double band = 2.0 * slack;
  for (size_t base = 0; base < queries.size(); base += kW) {
    int count = static_cast<int>(std::min<size_t>(kW, queries.size() - base));
    geom::Vec2 qv[kW];
    double qx[kW], qy[kW];
    int qi[kW];
    for (int l = 0; l < kW; ++l) {
      size_t i = base + std::min(l, count - 1);  // Pad ragged packs.
      qv[l] = queries[i];
      qx[l] = qv[l].x;
      qy[l] = qv[l].y;
      qi[l] = static_cast<int>(i);
    }
    double best_v[kW], second_v[kW];
    int best_id[kW];
    for (int l = 0; l < kW; ++l) {
      best_v[l] = kInf;
      second_v[l] = kInf;
      best_id[l] = -1;
    }
    // Per-lane MinDistLowerBound, scalar arithmetic per lane.
    auto key = spatial::MakeLaneKeyCache([&](int n, double* k) {
      double dsq[kW];
      geom::BoxDistSqLanes(qx, qy, tree_.box(n), dsq);
      geom::SqrtLanes(dsq, k);
      const double rmax = tree_.aug().first.max(n);
      for (int l = 0; l < kW; ++l) k[l] = std::max(k[l] - rmax, 0.0);
    });
    spatial::BatchBestFirstScan(
        tree_, spatial::FullMask(count),
        [&](int l, int n) { return key(l, n); },
        [&](int l, double lb) { return lb > best_v[l] + band; },
        [&](int n, spatial::LaneMask m) {
          if (!tree_.is_leaf(n)) return;
          for (int j = tree_.begin(n); j < tree_.end(n); ++j) {
            int id = tree_.item(j);
            for (int l = 0; l < kW; ++l) {
              if ((m >> l & 1u) == 0) continue;
              if (stats != nullptr) ++stats->lane_points_evaluated;
              double v = value(id, qi[l]);
              if (v < best_v[l]) {
                second_v[l] = best_v[l];
                best_v[l] = v;
                best_id[l] = id;
              } else if (v == best_v[l]) {
                // A tie always lands the runner-up on the minimum, so
                // the end-of-pack band check flags the lane.
                second_v[l] = v;
                if (id < best_id[l]) best_id[l] = id;
              } else {
                second_v[l] = std::min(second_v[l], v);
              }
            }
          }
        },
        stats);
    if (stats != nullptr) ++stats->packs;
    for (int l = 0; l < count; ++l) {
      int id = best_id[l];
      if (second_v[l] - best_v[l] <= band) {
        if (stats != nullptr) ++stats->scalar_replays;
        const int i = qi[l];
        id = ArgminPointwise(queries[base + l],
                             [&](int pid) { return value(pid, i); });
      }
      out[base + l] = id;
    }
  }
}

}  // namespace core
}  // namespace unn
