#include "core/quant_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geom/box_metrics.h"
#include "prob/distance_cdf.h"
#include "spatial/traverse.h"
#include "util/check.h"

namespace unn {
namespace core {

namespace {

constexpr int kLeafSize = 8;
constexpr double kInf = std::numeric_limits<double>::infinity();

/// True when no point behind `lb` can still change the envelope. Strict
/// comparison against `second` whenever `second == best`, so a pruned
/// subtree can never hide a minimum-value tie with a smaller id (which
/// would change `argbest`). Monotone in `lb`, so a best-first search can
/// stop at the first prunable heap entry.
bool EnvelopePrunable(double lb, const DeltaEnvelope& env) {
  if (lb > env.second) return true;
  return lb >= env.second && env.second > env.best;
}

}  // namespace

QuantTree::QuantTree(const std::vector<UncertainPoint>* points)
    : points_(points) {
  UNN_CHECK(points_ != nullptr);
  int n = size();
  anchors_.reserve(n);
  radii_.reserve(n);
  for (const UncertainPoint& p : *points_) {
    if (p.is_disk()) {
      anchors_.push_back(p.center());
      radii_.push_back(p.radius());
    } else {
      // Site centroid: a convex-hull point, so d(q, anchor) <= Delta_i(q)
      // stays a valid lower bound (d(q, .) is convex).
      geom::Vec2 c{0, 0};
      for (geom::Vec2 s : p.sites()) c = c + s;
      c = c / static_cast<double>(p.sites().size());
      double r = 0.0;
      for (geom::Vec2 s : p.sites()) r = std::max(r, Dist(c, s));
      anchors_.push_back(c);
      radii_.push_back(r);
    }
  }
  tree_ = spatial::FlatKdTree<Augment>(
      anchors_, {.leaf_size = kLeafSize, .split = spatial::SplitRule::kWidest},
      Augment{spatial::MinMaxAugment(&radii_), AllDiskAugment(points_)});
}

double QuantTree::MaxDistLowerBound(int node, geom::Vec2 q) const {
  // Every anchor lies in the convex hull of its support, so
  // Delta_i(q) >= d(q, anchor_i) >= dist(q, box); for an all-disk subtree
  // Delta_i(q) = d(q, center_i) + radius_i additionally clears r_min.
  double lb = geom::MinDistToBox(q, tree_.box(node));
  if (tree_.aug().second.all_disk(node)) lb += tree_.aug().first.min(node);
  // The support's farthest point sits radius_i away from the anchor, so
  // Delta_i(q) >= radius_i - d(q, anchor_i): bites when q is inside a
  // cluster of large supports.
  return std::max(lb,
                  tree_.aug().first.min(node) - tree_.box(node).MaxDistTo(q));
}

double QuantTree::MinDistLowerBound(int node, geom::Vec2 q) const {
  // The support lies within radius_i of its anchor, so
  // delta_i(q) >= d(q, anchor_i) - radius_i.
  return std::max(
      geom::MinDistToBox(q, tree_.box(node)) - tree_.aug().first.max(node),
      0.0);
}

DeltaEnvelope QuantTree::MaxDistEnvelope(geom::Vec2 q,
                                         QueryStats* stats) const {
  DeltaEnvelope env;
  env.best = kInf;
  env.second = kInf;
  spatial::BestFirstScan(
      tree_, [&](int n) { return MaxDistLowerBound(n, q); },
      // Entries pop in increasing lb order and prunability is monotone in
      // lb, so the first prunable entry ends the whole search.
      [&](double lb) { return EnvelopePrunable(lb, env); },
      [&](int n) {
        if (tree_.is_leaf(n)) {
          for (int j = tree_.begin(n); j < tree_.end(n); ++j) {
            int id = tree_.item(j);
            env.Insert((*points_)[id].MaxDist(q), id);
            if (stats != nullptr) ++stats->points_evaluated;
          }
        }
        return true;
      },
      stats);
  return env;
}

double QuantTree::LogSurvival(geom::Vec2 q, double r,
                              QueryStats* stats) const {
  double acc = 0.0;
  spatial::PrunedVisit(
      tree_,
      // Every support in the subtree is disjoint from ball(q, r): all
      // cdfs are 0, all survival factors are 1, the log contribution 0.
      [&](int n) { return MinDistLowerBound(n, q) > r; },
      [&](int n) {
        for (int j = tree_.begin(n); j < tree_.end(n); ++j) {
          int id = tree_.item(j);
          const UncertainPoint& p = (*points_)[id];
          if (p.MinDist(q) > r) continue;
          if (stats != nullptr) ++stats->points_evaluated;
          double cdf = prob::DistanceCdf(p, q, r);
          if (cdf >= 1.0) {  // Certainly within r: survival 0.
            acc = -kInf;
            return false;
          }
          acc += std::log1p(-cdf);
        }
        return true;
      },
      stats);
  return acc;
}

double QuantTree::LogSurvivalScan(const std::vector<UncertainPoint>& points,
                                  geom::Vec2 q, double r) {
  double acc = 0.0;
  for (const UncertainPoint& p : points) {
    double cdf = prob::DistanceCdf(p, q, r);
    if (cdf >= 1.0) return -kInf;
    acc += std::log1p(-cdf);
  }
  return acc;
}

int QuantTree::ArgminPointwise(geom::Vec2 q,
                               const std::function<double(int)>& value,
                               QueryStats* stats) const {
  int best_id = -1;
  double best_v = kInf;
  spatial::BestFirstScan(
      tree_, [&](int n) { return MinDistLowerBound(n, q); },
      // Strict comparison: a subtree at lb == best_v may still hold an
      // exact tie with a smaller id, which the linear scan would report.
      [&](double lb) { return lb > best_v; },
      [&](int n) {
        if (tree_.is_leaf(n)) {
          for (int j = tree_.begin(n); j < tree_.end(n); ++j) {
            int id = tree_.item(j);
            double v = value(id);
            if (stats != nullptr) ++stats->points_evaluated;
            if (v < best_v || (v == best_v && id < best_id)) {
              best_v = v;
              best_id = id;
            }
          }
        }
        return true;
      },
      stats);
  return best_id;
}

}  // namespace core
}  // namespace unn
