#include "core/quant_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>

#include "prob/distance_cdf.h"
#include "util/check.h"

namespace unn {
namespace core {

namespace {

constexpr int kLeafSize = 8;
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Min-heap entry for the best-first searches.
struct HeapEntry {
  double lb = 0.0;
  int node = -1;
  bool operator<(const HeapEntry& o) const { return lb > o.lb; }
};

/// True when no point behind `lb` can still change the envelope. Strict
/// comparison against `second` whenever `second == best`, so a pruned
/// subtree can never hide a minimum-value tie with a smaller id (which
/// would change `argbest`). Monotone in `lb`, so a best-first search can
/// stop at the first prunable heap entry.
bool EnvelopePrunable(double lb, const DeltaEnvelope& env) {
  if (lb > env.second) return true;
  return lb >= env.second && env.second > env.best;
}

}  // namespace

QuantTree::QuantTree(const std::vector<UncertainPoint>* points)
    : points_(points) {
  UNN_CHECK(points_ != nullptr);
  int n = size();
  anchors_.reserve(n);
  radii_.reserve(n);
  for (const UncertainPoint& p : *points_) {
    if (p.is_disk()) {
      anchors_.push_back(p.center());
      radii_.push_back(p.radius());
    } else {
      // Site centroid: a convex-hull point, so d(q, anchor) <= Delta_i(q)
      // stays a valid lower bound (d(q, .) is convex).
      geom::Vec2 c{0, 0};
      for (geom::Vec2 s : p.sites()) c = c + s;
      c = c / static_cast<double>(p.sites().size());
      double r = 0.0;
      for (geom::Vec2 s : p.sites()) r = std::max(r, Dist(c, s));
      anchors_.push_back(c);
      radii_.push_back(r);
    }
  }
  order_.resize(n);
  std::iota(order_.begin(), order_.end(), 0);
  if (n > 0) {
    nodes_.reserve(2 * (n / kLeafSize + 1));
    root_ = BuildRange(0, n);
  }
}

int QuantTree::BuildRange(int begin, int end) {
  Node node;
  node.begin = begin;
  node.end = end;
  node.r_min = kInf;
  for (int j = begin; j < end; ++j) {
    int id = order_[j];
    node.box.Expand(anchors_[id]);
    node.r_min = std::min(node.r_min, radii_[id]);
    node.r_max = std::max(node.r_max, radii_[id]);
    node.all_disk = node.all_disk && (*points_)[id].is_disk();
  }
  if (end - begin > kLeafSize) {
    // Median split along the wider anchor axis: balanced (depth O(log n))
    // even with duplicate anchors, since the split is positional.
    bool split_x = node.box.Width() >= node.box.Height();
    int mid = begin + (end - begin) / 2;
    std::nth_element(order_.begin() + begin, order_.begin() + mid,
                     order_.begin() + end, [&](int a, int b) {
                       return split_x ? anchors_[a].x < anchors_[b].x
                                      : anchors_[a].y < anchors_[b].y;
                     });
    node.left = BuildRange(begin, mid);
    node.right = BuildRange(mid, end);
  }
  nodes_.push_back(node);
  return static_cast<int>(nodes_.size()) - 1;
}

double QuantTree::MaxDistLowerBound(const Node& node, geom::Vec2 q) const {
  // Every anchor lies in the convex hull of its support, so
  // Delta_i(q) >= d(q, anchor_i) >= dist(q, box); for an all-disk subtree
  // Delta_i(q) = d(q, center_i) + radius_i additionally clears r_min.
  double lb = std::sqrt(node.box.DistSqTo(q));
  if (node.all_disk) lb += node.r_min;
  // The support's farthest point sits radius_i away from the anchor, so
  // Delta_i(q) >= radius_i - d(q, anchor_i): bites when q is inside a
  // cluster of large supports.
  return std::max(lb, node.r_min - node.box.MaxDistTo(q));
}

double QuantTree::MinDistLowerBound(const Node& node, geom::Vec2 q) const {
  // The support lies within radius_i of its anchor, so
  // delta_i(q) >= d(q, anchor_i) - radius_i.
  return std::max(std::sqrt(node.box.DistSqTo(q)) - node.r_max, 0.0);
}

DeltaEnvelope QuantTree::MaxDistEnvelope(geom::Vec2 q,
                                         QueryStats* stats) const {
  DeltaEnvelope env;
  env.best = kInf;
  env.second = kInf;
  if (root_ < 0) return env;
  std::priority_queue<HeapEntry> heap;
  heap.push({MaxDistLowerBound(nodes_[root_], q), root_});
  while (!heap.empty()) {
    HeapEntry e = heap.top();
    heap.pop();
    // Entries pop in increasing lb order and prunability is monotone in
    // lb, so the first prunable entry ends the whole search.
    if (EnvelopePrunable(e.lb, env)) break;
    const Node& node = nodes_[e.node];
    if (stats != nullptr) ++stats->nodes_visited;
    if (node.left < 0) {
      for (int j = node.begin; j < node.end; ++j) {
        int id = order_[j];
        env.Insert((*points_)[id].MaxDist(q), id);
        if (stats != nullptr) ++stats->points_evaluated;
      }
    } else {
      for (int child : {node.left, node.right}) {
        double lb = MaxDistLowerBound(nodes_[child], q);
        if (!EnvelopePrunable(lb, env)) heap.push({lb, child});
      }
    }
  }
  return env;
}

double QuantTree::LogSurvivalRec(int node_id, geom::Vec2 q, double r,
                                 QueryStats* stats) const {
  const Node& node = nodes_[node_id];
  // Every support in the subtree is disjoint from ball(q, r): all cdfs
  // are 0, all survival factors are 1, the log contribution is 0.
  if (MinDistLowerBound(node, q) > r) return 0.0;
  if (stats != nullptr) ++stats->nodes_visited;
  if (node.left < 0) {
    double acc = 0.0;
    for (int j = node.begin; j < node.end; ++j) {
      int id = order_[j];
      const UncertainPoint& p = (*points_)[id];
      if (p.MinDist(q) > r) continue;
      if (stats != nullptr) ++stats->points_evaluated;
      double cdf = prob::DistanceCdf(p, q, r);
      if (cdf >= 1.0) return -kInf;  // Certainly within r: survival 0.
      acc += std::log1p(-cdf);
    }
    return acc;
  }
  double left = LogSurvivalRec(node.left, q, r, stats);
  if (std::isinf(left)) return left;
  return left + LogSurvivalRec(node.right, q, r, stats);
}

double QuantTree::LogSurvival(geom::Vec2 q, double r,
                              QueryStats* stats) const {
  if (root_ < 0) return 0.0;
  return LogSurvivalRec(root_, q, r, stats);
}

double QuantTree::LogSurvivalScan(const std::vector<UncertainPoint>& points,
                                  geom::Vec2 q, double r) {
  double acc = 0.0;
  for (const UncertainPoint& p : points) {
    double cdf = prob::DistanceCdf(p, q, r);
    if (cdf >= 1.0) return -kInf;
    acc += std::log1p(-cdf);
  }
  return acc;
}

int QuantTree::ArgminPointwise(geom::Vec2 q,
                               const std::function<double(int)>& value,
                               QueryStats* stats) const {
  int best_id = -1;
  double best_v = kInf;
  if (root_ < 0) return best_id;
  std::priority_queue<HeapEntry> heap;
  heap.push({MinDistLowerBound(nodes_[root_], q), root_});
  while (!heap.empty()) {
    HeapEntry e = heap.top();
    heap.pop();
    // Strict comparison: a subtree at lb == best_v may still hold an
    // exact tie with a smaller id, which the linear scan would report.
    if (e.lb > best_v) break;
    const Node& node = nodes_[e.node];
    if (stats != nullptr) ++stats->nodes_visited;
    if (node.left < 0) {
      for (int j = node.begin; j < node.end; ++j) {
        int id = order_[j];
        double v = value(id);
        if (stats != nullptr) ++stats->points_evaluated;
        if (v < best_v || (v == best_v && id < best_id)) {
          best_v = v;
          best_id = id;
        }
      }
    } else {
      for (int child : {node.left, node.right}) {
        double lb = MinDistLowerBound(nodes_[child], q);
        if (lb <= best_v) heap.push({lb, child});
      }
    }
  }
  return best_id;
}

}  // namespace core
}  // namespace unn
