#ifndef UNN_CORE_NONZERO_VORONOI_DISCRETE_H_
#define UNN_CORE_NONZERO_VORONOI_DISCRETE_H_

#include <memory>
#include <vector>

#include "core/uncertain_point.h"
#include "dcel/planar_subdivision.h"
#include "geom/vec2.h"
#include "persist/persistent_set.h"
#include "pointloc/ray_shooter.h"

/// \file nonzero_voronoi_discrete.h
/// V!=0(P) for discrete uncertain points (Section 2.2, Theorem 2.14). The
/// linearization f(x, p) = |p|^2 - 2<x, p> turns every comparison
/// d(x, p) <= d(x, p') into a halfplane, so
///   K_ij = { Delta_j <= delta_i } = intersection of k^2 halfplanes
/// is a convex polygon (Lemma 2.13) and gamma_i = boundary of the union of
/// the K_ij over j != i — a polygonal curve. The arrangement A(Gamma) of
/// these polylines is assembled with the exact segment-arrangement substrate
/// and labeled with the shared toggle-BFS + persistent-set machinery.

namespace unn {
namespace core {

struct NonzeroVoronoiDiscreteOptions {
  geom::Box window;
  double auto_window_margin = 1.0;
};

class NonzeroVoronoiDiscrete {
 public:
  struct Stats {
    int64_t union_segments = 0;      ///< Segments across all gamma_i.
    int64_t crossings = 0;           ///< Interior crossings in A(Gamma).
    int dcel_vertices = 0;
    int dcel_edges = 0;
    int bounded_faces = 0;
    int unlabeled_loops = 0;
    int64_t label_nodes = 0;
  };

  explicit NonzeroVoronoiDiscrete(std::vector<UncertainPoint> points,
                                  const NonzeroVoronoiDiscreteOptions& opts = {});

  /// NN!=0(q), sorted ids. Exact (O(N) fallback outside the window).
  std::vector<int> Query(geom::Vec2 q) const;

  const Stats& stats() const { return stats_; }
  const geom::Box& window() const { return window_; }
  const dcel::PlanarSubdivision& subdivision() const { return *sub_; }
  /// gamma_i as segment lists (for rendering).
  const std::vector<std::vector<std::pair<geom::Vec2, geom::Vec2>>>& gammas()
      const {
    return gamma_segments_;
  }

 private:
  std::vector<int> BruteQuery(geom::Vec2 q) const;

  std::vector<UncertainPoint> points_;
  geom::Box window_;
  std::vector<std::vector<std::pair<geom::Vec2, geom::Vec2>>> gamma_segments_;
  std::unique_ptr<dcel::PlanarSubdivision> sub_;
  std::unique_ptr<pointloc::RayShooter> shooter_;
  persist::PersistentSet labels_;
  std::vector<persist::Version> loop_version_;
  Stats stats_;
};

}  // namespace core
}  // namespace unn

#endif  // UNN_CORE_NONZERO_VORONOI_DISCRETE_H_
