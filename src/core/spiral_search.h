#ifndef UNN_CORE_SPIRAL_SEARCH_H_
#define UNN_CORE_SPIRAL_SEARCH_H_

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/uncertain_point.h"
#include "range/kdtree.h"
#include "spatial/batch.h"

/// \file spiral_search.h
/// The deterministic approximation structure of Theorem 4.7 (Section 4.3):
/// retrieve only the m(rho, eps) = ceil(rho k ln(1/eps)) + k - 1 sites
/// nearest to q (rho = spread of location probabilities, Eq. (9)) and
/// evaluate Eq. (10)/(11) on that prefix. Lemma 4.6 guarantees
/// hat-pi_i <= pi_i <= hat-pi_i + eps for every i. Site retrieval uses
/// incremental kd-tree nearest-neighbor enumeration — the quad-tree
/// branch-and-bound alternative the paper's Remark (ii) recommends over the
/// theoretical [AC09] structure.

namespace unn {
namespace core {

class SpiralSearch {
 public:
  /// All points must be discrete. O(N log N) preprocessing, O(N) space.
  explicit SpiralSearch(std::vector<UncertainPoint> points);

  /// rho = (max location probability) / (min location probability).
  double rho() const { return rho_; }
  /// Largest per-point support size k.
  int k() const { return k_; }
  /// Number of sites the query at accuracy eps retrieves.
  int SitesRetrieved(double eps) const;

  /// (id, hat-pi) for all ids with positive estimate, sorted by id; each
  /// true pi_i satisfies hat-pi_i <= pi_i <= hat-pi_i + eps.
  std::vector<std::pair<int, double>> Query(geom::Vec2 q, double eps) const;

  /// Batched Query: `out[i]` is bit-identical to `Query(queries[i], eps)`.
  /// The m(rho, eps) retrieved sites are query-independent in count, so
  /// the prefixes come from one KNearestBatch pack walk — whose results
  /// (ids and distances, in order) are bit-identical to the scalar
  /// enumeration — and the order-sensitive quantification accumulates
  /// each prefix exactly as the scalar path does.
  std::vector<std::vector<std::pair<int, double>>> QueryBatch(
      std::span<const geom::Vec2> queries, double eps,
      spatial::BatchStats* stats = nullptr) const;

 private:
  std::vector<UncertainPoint> points_;
  std::unique_ptr<range::KdTree> tree_;
  std::vector<int> site_owner_;
  std::vector<double> site_weight_;
  double rho_ = 1.0;
  int k_ = 1;
};

/// A prototype answer to the paper's open problem (iii) (Conclusions):
/// spiral search over *continuous* distributions. Each continuous point is
/// discretized by Theorem 4.5's sampling reduction (k(alpha) =
/// O((1/alpha^2) log(1/delta')) i.i.d. locations with uniform weights, so
/// rho = 1) and the discrete spiral search runs on the samples. The total
/// error is bounded by eps_discretization (w.h.p., Lemma 4.4) plus the
/// query-time eps passed to Query.
class ContinuousSpiralSearch {
 public:
  /// `samples_per_point` overrides the Theorem 4.5 count (0 = use
  /// k(alpha) with alpha = eps_discretization / (2n), capped at 4096).
  ContinuousSpiralSearch(const std::vector<UncertainPoint>& points,
                         double eps_discretization, uint64_t seed = 1,
                         int samples_per_point = 0);

  std::vector<std::pair<int, double>> Query(geom::Vec2 q, double eps) const;

  /// Batched Query over the discretized set; bit-identical per query.
  std::vector<std::vector<std::pair<int, double>>> QueryBatch(
      std::span<const geom::Vec2> queries, double eps,
      spatial::BatchStats* stats = nullptr) const {
    return inner_->QueryBatch(queries, eps, stats);
  }

  const SpiralSearch& discretized() const { return *inner_; }

 private:
  std::unique_ptr<SpiralSearch> inner_;
};

}  // namespace core
}  // namespace unn

#endif  // UNN_CORE_SPIRAL_SEARCH_H_
