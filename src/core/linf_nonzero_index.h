#ifndef UNN_CORE_LINF_NONZERO_INDEX_H_
#define UNN_CORE_LINF_NONZERO_INDEX_H_

#include <vector>

#include "geom/box_metrics.h"
#include "geom/vec2.h"
#include "spatial/flat_tree.h"

/// \file linf_nonzero_index.h
/// Theorem 3.1, Remark (ii): NN!=0 queries under the L_inf metric with
/// square uncertainty regions (an L_inf "disk" of radius r is an
/// axis-aligned square of half-side r). Both query stages carry over
/// verbatim with Chebyshev distances — stage one computes
/// Delta(q) = min_i (cheb(q, c_i) + r_i), stage two reports the squares
/// intersecting the L_inf ball of that radius. The paper serves stage two
/// with square-intersection range structures in O(log^2 n + t) time from
/// O(n log^2 n) space; here the same branch-and-bound tree pattern as the
/// L2 index answers both stages output-sensitively from O(n) space — the
/// shared spatial core with a min/max half-side augmentation, pruned with
/// the Chebyshev point-to-box distance from geom/box_metrics.h.
/// Lemma 2.1's j != i semantics are handled exactly as in the L2 case.

namespace unn {
namespace core {

/// An axis-aligned square region: the L_inf ball of radius `half_side`.
struct SquareRegion {
  geom::Vec2 center;
  double half_side = 0.0;
};

/// Chebyshev (L_inf) distance; the shared definition lives in geom.
using geom::ChebyshevDist;

class LinfNonzeroIndex {
 public:
  explicit LinfNonzeroIndex(std::vector<SquareRegion> squares);

  /// NN!=0(q) under L_inf: all i with delta_i(q) < Delta_j(q) for every
  /// j != i (sorted ids). Exact.
  std::vector<int> Query(geom::Vec2 q) const;

  /// Delta(q) = min_i (cheb(q, c_i) + r_i).
  double Delta(geom::Vec2 q) const;

  /// delta_i(q) = max(cheb(q, c_i) - r_i, 0).
  double MinDist(int i, geom::Vec2 q) const;

 private:
  struct Envelope {
    double best, second;
    int argbest;
  };

  Envelope DeltaEnvelope2(geom::Vec2 q) const;
  void ReportLess(geom::Vec2 q, double bound, std::vector<int>* out) const;

  std::vector<SquareRegion> squares_;
  spatial::FlatKdTree<spatial::MinMaxAugment> tree_;
};

}  // namespace core
}  // namespace unn

#endif  // UNN_CORE_LINF_NONZERO_INDEX_H_
