#ifndef UNN_CORE_LINF_NONZERO_INDEX_H_
#define UNN_CORE_LINF_NONZERO_INDEX_H_

#include <vector>

#include "geom/vec2.h"

/// \file linf_nonzero_index.h
/// Theorem 3.1, Remark (ii): NN!=0 queries under the L_inf metric with
/// square uncertainty regions (an L_inf "disk" of radius r is an
/// axis-aligned square of half-side r). Both query stages carry over
/// verbatim with Chebyshev distances — stage one computes
/// Delta(q) = min_i (cheb(q, c_i) + r_i), stage two reports the squares
/// intersecting the L_inf ball of that radius. The paper serves stage two
/// with square-intersection range structures in O(log^2 n + t) time from
/// O(n log^2 n) space; here the same branch-and-bound tree pattern as the
/// L2 index answers both stages output-sensitively from O(n) space.
/// Lemma 2.1's j != i semantics are handled exactly as in the L2 case.

namespace unn {
namespace core {

/// An axis-aligned square region: the L_inf ball of radius `half_side`.
struct SquareRegion {
  geom::Vec2 center;
  double half_side = 0.0;
};

/// Chebyshev (L_inf) distance.
inline double ChebyshevDist(geom::Vec2 a, geom::Vec2 b) {
  return std::max(std::abs(a.x - b.x), std::abs(a.y - b.y));
}

class LinfNonzeroIndex {
 public:
  explicit LinfNonzeroIndex(std::vector<SquareRegion> squares);

  /// NN!=0(q) under L_inf: all i with delta_i(q) < Delta_j(q) for every
  /// j != i (sorted ids). Exact.
  std::vector<int> Query(geom::Vec2 q) const;

  /// Delta(q) = min_i (cheb(q, c_i) + r_i).
  double Delta(geom::Vec2 q) const;

  /// delta_i(q) = max(cheb(q, c_i) - r_i, 0).
  double MinDist(int i, geom::Vec2 q) const;

 private:
  struct Node {
    geom::Box box;
    double r_min = 0.0;
    double r_max = 0.0;
    int left = -1, right = -1;
    int begin = 0, end = 0;
  };
  struct Envelope {
    double best, second;
    int argbest;
  };

  int Build(int begin, int end, int depth);
  void DeltaRec(int node, geom::Vec2 q, Envelope* env) const;
  void ReportRec(int node, geom::Vec2 q, double bound,
                 std::vector<int>* out) const;
  static double ChebToBox(geom::Vec2 q, const geom::Box& b);

  std::vector<SquareRegion> squares_;
  std::vector<int> order_;
  std::vector<Node> nodes_;
  int root_ = -1;
};

}  // namespace core
}  // namespace unn

#endif  // UNN_CORE_LINF_NONZERO_INDEX_H_
