#include "core/spiral_search.h"

#include <algorithm>
#include <cmath>

#include <random>

#include "core/pnn_common.h"
#include "prob/distributions.h"
#include "util/check.h"

namespace unn {
namespace core {

using geom::Vec2;

SpiralSearch::SpiralSearch(std::vector<UncertainPoint> points)
    : points_(std::move(points)) {
  UNN_CHECK(!points_.empty());
  double wmin = 1.0, wmax = 0.0;
  std::vector<Vec2> sites;
  for (size_t i = 0; i < points_.size(); ++i) {
    const auto& p = points_[i];
    UNN_CHECK_MSG(!p.is_disk(), "SpiralSearch requires discrete models");
    k_ = std::max(k_, static_cast<int>(p.sites().size()));
    for (size_t s = 0; s < p.sites().size(); ++s) {
      sites.push_back(p.sites()[s]);
      site_owner_.push_back(static_cast<int>(i));
      site_weight_.push_back(p.weights()[s]);
      wmin = std::min(wmin, p.weights()[s]);
      wmax = std::max(wmax, p.weights()[s]);
    }
  }
  rho_ = wmax / wmin;
  tree_ = std::make_unique<range::KdTree>(std::move(sites));
}

int SpiralSearch::SitesRetrieved(double eps) const {
  UNN_CHECK(eps > 0 && eps < 1);
  double m = rho_ * k_ * std::log(1.0 / eps) + k_ - 1;
  return std::min(static_cast<int>(std::ceil(m)), tree_->size());
}

std::vector<std::pair<int, double>> SpiralSearch::Query(Vec2 q,
                                                        double eps) const {
  int m = SitesRetrieved(eps);
  std::vector<WeightedSite> prefix;
  prefix.reserve(m);
  range::KdTree::Enumerator en(*tree_, q);
  for (int t = 0; t < m; ++t) {
    double d;
    int id = en.Next(&d);
    if (id < 0) break;
    prefix.push_back({d, site_owner_[id], site_weight_[id]});
  }
  std::vector<double> pi;
  AccumulateQuantification(prefix, static_cast<int>(points_.size()), &pi);
  std::vector<std::pair<int, double>> out;
  for (size_t i = 0; i < pi.size(); ++i) {
    if (pi[i] > 0) out.push_back({static_cast<int>(i), pi[i]});
  }
  return out;
}

std::vector<std::vector<std::pair<int, double>>> SpiralSearch::QueryBatch(
    std::span<const Vec2> queries, double eps,
    spatial::BatchStats* stats) const {
  int m = SitesRetrieved(eps);
  // Pack-coherent (Morton) order keeps each pack's lanes pruning
  // together; per-lane results are pack-independent, so reordering the
  // batch and scattering back is bit-identical (spatial/batch.h).
  std::vector<int> order = spatial::PackCoherentOrder(queries);
  std::vector<Vec2> sorted(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) sorted[i] = queries[order[i]];
  std::vector<std::vector<int>> ids;
  std::vector<std::vector<double>> dists;
  tree_->KNearestBatch(sorted, m, &ids, &dists, stats);
  const int n = static_cast<int>(points_.size());
  std::vector<std::vector<std::pair<int, double>>> out(queries.size());
  std::vector<WeightedSite> prefix;
  std::vector<double> pi;
  for (size_t i = 0; i < queries.size(); ++i) {
    // The same prefix, in the same order, as the scalar enumeration
    // (KNearestBatch's contract), so the order-sensitive accumulation
    // below reproduces Query bit for bit.
    prefix.clear();
    prefix.reserve(ids[i].size());
    for (size_t t = 0; t < ids[i].size(); ++t) {
      int id = ids[i][t];
      prefix.push_back({dists[i][t], site_owner_[id], site_weight_[id]});
    }
    AccumulateQuantification(prefix, n, &pi);
    for (size_t j = 0; j < pi.size(); ++j) {
      if (pi[j] > 0) out[order[i]].push_back({static_cast<int>(j), pi[j]});
    }
  }
  return out;
}

ContinuousSpiralSearch::ContinuousSpiralSearch(
    const std::vector<UncertainPoint>& points, double eps_discretization,
    uint64_t seed, int samples_per_point) {
  UNN_CHECK(eps_discretization > 0 && eps_discretization < 1);
  int n = static_cast<int>(points.size());
  int k = samples_per_point;
  if (k <= 0) {
    // Theorem 4.5: alpha = eps/(2n) needs k(alpha) = O((1/alpha^2) log(..))
    // samples; the constants are far too pessimistic in practice, so we cap
    // and rely on the measured-error tests (the sampling error concentrates
    // much faster than the union-bound analysis).
    double alpha = eps_discretization / (2.0 * n);
    double ideal = 4.0 / (alpha * alpha);
    k = static_cast<int>(std::min(ideal, 4096.0));
    k = std::max(k, 16);
  }
  std::mt19937_64 rng(seed);
  std::vector<UncertainPoint> discretized;
  discretized.reserve(points.size());
  for (const auto& p : points) {
    if (p.is_disk()) {
      discretized.push_back(prob::DiscretizeBySampling(p, k, rng));
    } else {
      discretized.push_back(p);
    }
  }
  inner_ = std::make_unique<SpiralSearch>(std::move(discretized));
}

std::vector<std::pair<int, double>> ContinuousSpiralSearch::Query(
    geom::Vec2 q, double eps) const {
  return inner_->Query(q, eps);
}

}  // namespace core
}  // namespace unn
