#ifndef UNN_CORE_PNN_COMMON_H_
#define UNN_CORE_PNN_COMMON_H_

#include <vector>

/// \file pnn_common.h
/// Shared single-pass evaluator for Eq. (2)/(10)/(11): given sites sorted by
/// distance from the query, accumulate each owner's probability of being
/// the nearest neighbor. Maintains f_j = 1 - G_{q,j}(r^-) per owner and
/// their running product, with exhausted owners (f_j = 0) tracked separately
/// so the product stays divisible.

namespace unn {
namespace core {

struct WeightedSite {
  double dist;
  int owner;
  double weight;
};

/// `sites` must be sorted by increasing dist; owners in [0, n). Writes the
/// accumulated probabilities into `pi` (resized to n, zero-filled).
/// When `sites` covers all locations this is exactly Eq. (2); on a prefix
/// (spiral search) it is the lower bound hat-pi of Lemma 4.6.
void AccumulateQuantification(const std::vector<WeightedSite>& sites, int n,
                              std::vector<double>* pi);

}  // namespace core
}  // namespace unn

#endif  // UNN_CORE_PNN_COMMON_H_
