#ifndef UNN_CORE_NN_NONZERO_DISCRETE_INDEX_H_
#define UNN_CORE_NN_NONZERO_DISCRETE_INDEX_H_

#include <memory>
#include <vector>

#include "core/uncertain_point.h"
#include "geom/seb.h"
#include "range/kdtree.h"
#include "spatial/flat_tree.h"

/// \file nn_nonzero_discrete_index.h
/// The near-linear NN!=0 structure for discrete distributions (Theorem 3.2).
/// Stage one computes Delta(q) = min_i max_s d(q, p_is) by branch-and-bound
/// over groups: a group's smallest enclosing circle (center c, radius R)
/// yields the lower bound max_s d(q, p_is) >= sqrt(d(q,c)^2 + R^2) (some
/// defining point lies on the far side of c). Stage two uses the lifting
/// observation: delta_i(q) < Delta(q) iff some site of P_i lies in the open
/// disk D(q, Delta(q)) — the paper's lifted halfspace query is exactly a
/// circular range query — served by a kd-tree over all N sites with owner
/// dedup. Space O(N); see DESIGN.md section 3 for the substitution notes.

namespace unn {
namespace core {

class NnNonzeroDiscreteIndex {
 public:
  explicit NnNonzeroDiscreteIndex(std::vector<UncertainPoint> points);

  /// NN!=0(q), sorted ids. Exact.
  std::vector<int> Query(geom::Vec2 q) const;

  /// Delta(q) = min_i Delta_i(q).
  double Delta(geom::Vec2 q) const;

  /// Two smallest Delta_i(q) plus argmin (needed for the exact j != i
  /// semantics of Lemma 2.1 on degenerate inputs).
  DeltaEnvelope DeltaPair(geom::Vec2 q) const;

 private:
  std::vector<UncertainPoint> points_;
  std::vector<geom::Circle> group_seb_;
  /// Kd-tree over group SEB centers (shared spatial core) with the
  /// minimum SEB radius per subtree: with SEB (c, R), the group bound is
  /// Delta_i(q) >= sqrt(d(q,c)^2 + R^2) >= sqrt(d(q,box)^2 + r_min^2).
  spatial::FlatKdTree<spatial::MinAugment> group_tree_;

  std::unique_ptr<range::KdTree> site_tree_;
  std::vector<int> site_owner_;
};

}  // namespace core
}  // namespace unn

#endif  // UNN_CORE_NN_NONZERO_DISCRETE_INDEX_H_
