#ifndef UNN_CORE_NN_NONZERO_DISCRETE_INDEX_H_
#define UNN_CORE_NN_NONZERO_DISCRETE_INDEX_H_

#include <memory>
#include <span>
#include <vector>

#include "core/uncertain_point.h"
#include "geom/seb.h"
#include "range/kdtree.h"
#include "spatial/batch.h"
#include "spatial/flat_tree.h"

/// \file nn_nonzero_discrete_index.h
/// The near-linear NN!=0 structure for discrete distributions (Theorem 3.2).
/// Stage one computes Delta(q) = min_i max_s d(q, p_is) by branch-and-bound
/// over groups: a group's smallest enclosing circle (center c, radius R)
/// yields the lower bound max_s d(q, p_is) >= sqrt(d(q,c)^2 + R^2) (some
/// defining point lies on the far side of c). Stage two uses the lifting
/// observation: delta_i(q) < Delta(q) iff some site of P_i lies in the open
/// disk D(q, Delta(q)) — the paper's lifted halfspace query is exactly a
/// circular range query — served by a kd-tree over all N sites with owner
/// dedup. Space O(N); see DESIGN.md section 3 for the substitution notes.

namespace unn {
namespace core {

class NnNonzeroDiscreteIndex {
 public:
  explicit NnNonzeroDiscreteIndex(std::vector<UncertainPoint> points);

  /// NN!=0(q), sorted ids. Exact.
  std::vector<int> Query(geom::Vec2 q) const;

  /// Batched Query: `out[i]` is bit-identical to `Query(queries[i])`.
  /// Stage one (the Delta envelope) runs through DeltaPairBatch's shared
  /// group-tree walk; stage two batches the lifted range queries through
  /// range::KdTree::RangeCircleBatch (per-lane hit lists are the scalar
  /// RangeCircle's verbatim) before the scalar owner dedup and argbest
  /// membership fix, so an identical envelope forces an identical
  /// answer. The batch runs in pack-coherent (Morton) order internally.
  std::vector<std::vector<int>> QueryBatch(
      std::span<const geom::Vec2> queries,
      spatial::BatchStats* stats = nullptr) const;

  /// Delta(q) = min_i Delta_i(q).
  double Delta(geom::Vec2 q) const;

  /// Two smallest Delta_i(q) plus argmin (needed for the exact j != i
  /// semantics of Lemma 2.1 on degenerate inputs).
  DeltaEnvelope DeltaPair(geom::Vec2 q) const;

  /// Batched DeltaPair: `out[i]` is bit-identical to
  /// `DeltaPair(queries[i])`, geom::kLaneWidth queries per shared
  /// near-first pruned walk over the group tree. The walk defers every
  /// exact (hypot-based) MaxDist evaluation: it collects candidate
  /// groups through their SEB bracket in squared space, then evaluates
  /// exact values in ascending lower-bound order under the scalar's own
  /// skip rule (see the .cc). The best/second values are
  /// order-independent, but the argmin is the *first* minimizer in the
  /// scalar's ordered traversal, so any lane whose envelope ends with
  /// best == second — the only way a minimum tie can exist — replays
  /// the scalar walk (spatial/batch.h idiom).
  void DeltaPairBatch(std::span<const geom::Vec2> queries,
                      std::span<DeltaEnvelope> out,
                      spatial::BatchStats* stats = nullptr) const;

 private:
  /// Stage two for one query: range query then owner assembly.
  std::vector<int> AssembleFromEnvelope(geom::Vec2 q,
                                        const DeltaEnvelope& env) const;
  /// Owner dedup + argbest membership fix over a hit list (shared by the
  /// scalar range query and the batched one, which produce identical
  /// lists).
  std::vector<int> AssembleFromHits(geom::Vec2 q, const DeltaEnvelope& env,
                                    const std::vector<int>& hits) const;
  std::vector<UncertainPoint> points_;
  std::vector<geom::Circle> group_seb_;
  /// Kd-tree over group SEB centers (shared spatial core) with the
  /// minimum SEB radius per subtree: with SEB (c, R), the group bound is
  /// Delta_i(q) >= sqrt(d(q,c)^2 + R^2) >= sqrt(d(q,box)^2 + r_min^2).
  spatial::FlatKdTree<spatial::MinAugment> group_tree_;

  std::unique_ptr<range::KdTree> site_tree_;
  std::vector<int> site_owner_;
};

}  // namespace core
}  // namespace unn

#endif  // UNN_CORE_NN_NONZERO_DISCRETE_INDEX_H_
