#include "core/label_propagation.h"

#include <queue>
#include <unordered_map>

#include "geom/vec2.h"

namespace unn {
namespace core {

using dcel::EdgeShape;
using geom::Vec2;

LabelPropagation PropagateLabels(
    const dcel::PlanarSubdivision& sub, const pointloc::RayShooter& shooter,
    const geom::Box& window, double scale,
    const std::function<std::vector<int>(Vec2)>& brute_label,
    const std::function<double(Vec2)>& label_margin) {
  LabelPropagation out;
  int nloops = sub.NumLoops();
  out.loop_version.assign(nloops, -1);

  // Union-find of loops connected through non-frame edges.
  std::vector<int> parent(nloops);
  for (int i = 0; i < nloops; ++i) parent[i] = i;
  std::function<int(int)> find = [&](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (int h = 0; h < sub.NumHalfEdges(); ++h) {
    const auto& he = sub.half_edge(h);
    if (sub.edge(he.edge).curve_id == dcel::kFrameCurve) continue;
    int a = find(he.loop);
    int b = find(sub.half_edge(he.twin).loop);
    if (a != b) parent[a] = b;
  }

  // One verified seed per loop-graph component.
  std::unordered_map<int, int> comp_seed_loop;
  std::unordered_map<int, Vec2> comp_seed_point;
  for (int l = 0; l < nloops; ++l) {
    int root = find(l);
    if (comp_seed_loop.count(root)) continue;
    int h0 = sub.loop(l).first_half_edge;
    int h = h0;
    do {
      const auto& he = sub.half_edge(h);
      const EdgeShape& shape = sub.edge(he.edge).shape;
      Vec2 mid = shape.Midpoint();
      Vec2 dir = shape.TravelDirAt(0.5);
      if (!he.forward) dir = -dir;
      double edge_len = Dist(shape.a(), shape.b()) + 1e-12;
      for (double eps : {1e-7 * scale, 3e-7 * scale, 1e-4 * edge_len}) {
        Vec2 p = mid + geom::Perp(dir) * eps;
        if (!window.Contains(p)) continue;
        int lh = shooter.LocateHalfEdgeAbove(p);
        if (lh < 0) continue;
        int ll = sub.half_edge(lh).loop;
        if (find(ll) != root) continue;
        // The seed label must be numerically unambiguous (a point inside a
        // zero-width sliver would be a coin flip and poison the component).
        if (label_margin(p) <= 1e-9 * (1.0 + scale)) continue;
        comp_seed_loop[root] = ll;
        comp_seed_point[root] = p;
        break;
      }
      if (comp_seed_loop.count(root)) break;
      h = he.next;
    } while (h != h0);
  }

  // BFS with persistent toggles from every seed.
  std::queue<int> bfs;
  for (const auto& [root, seed_loop] : comp_seed_loop) {
    if (out.loop_version[seed_loop] != -1) continue;
    std::vector<int> label = brute_label(comp_seed_point.at(root));
    persist::Version v = 0;
    for (int id : label) v = out.store.Insert(v, id);
    out.loop_version[seed_loop] = v;
    bfs.push(seed_loop);
  }
  while (!bfs.empty()) {
    int l = bfs.front();
    bfs.pop();
    int h0 = sub.loop(l).first_half_edge;
    int h = h0;
    do {
      const auto& he = sub.half_edge(h);
      int curve = sub.edge(he.edge).curve_id;
      if (curve != dcel::kFrameCurve) {
        int l2 = sub.half_edge(he.twin).loop;
        if (out.loop_version[l2] == -1) {
          out.loop_version[l2] = out.store.Toggle(out.loop_version[l], curve);
          bfs.push(l2);
        }
      }
      h = he.next;
    } while (h != h0);
  }

  for (int l = 0; l < nloops; ++l) {
    if (out.loop_version[l] == -1) ++out.unlabeled_loops;
  }
  return out;
}

}  // namespace core
}  // namespace unn
