#ifndef UNN_CORE_MONTE_CARLO_PNN_H_
#define UNN_CORE_MONTE_CARLO_PNN_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/uncertain_point.h"
#include "range/kdtree.h"
#include "spatial/batch.h"

/// \file monte_carlo_pnn.h
/// The Monte-Carlo quantification-probability structure of Theorems 4.3
/// (discrete) and 4.5 (continuous). Preprocessing draws s independent
/// instantiations R_1..R_s of the point set and indexes each for
/// nearest-neighbor queries (kd-trees in place of Voronoi+point-location:
/// identical answers). A query finds the NN of q in every instantiation and
/// returns hat-pi_i = (times P_i won) / s, which satisfies
/// |hat-pi_i - pi_i| <= eps for all i simultaneously with probability
/// >= 1 - delta when s = (1/2eps^2) ln(2 n |Q| / delta), |Q| = O(N^4)
/// (Lemma 4.1).

namespace unn {
namespace core {

struct MonteCarloPnnOptions {
  double eps = 0.1;
  double delta = 0.05;
  uint64_t seed = 0xC0FFEE;
  /// Overrides the theorem's sample count when > 0 (benchmarks/tests).
  int s_override = 0;
};

class MonteCarloPnn {
 public:
  MonteCarloPnn(std::vector<UncertainPoint> points,
                const MonteCarloPnnOptions& opts = {});

  /// Theorem 4.3 sample count for the given parameters and input size.
  static int RequiredSamples(int n, int k, double eps, double delta);

  int num_instantiations() const { return static_cast<int>(trees_.size()); }

  /// Estimates (id, hat-pi) for all ids with a nonzero count, sorted by id.
  std::vector<std::pair<int, double>> Query(geom::Vec2 q) const;

  /// Batched Query: `out[i]` is bit-identical to `Query(queries[i])`.
  /// Every instantiation answers the whole batch through
  /// range::KdTree::NearestBatch (itself bit-identical per lane,
  /// including argmin ties), and the per-query count aggregation is the
  /// scalar arithmetic verbatim.
  std::vector<std::vector<std::pair<int, double>>> QueryBatch(
      std::span<const geom::Vec2> queries,
      spatial::BatchStats* stats = nullptr) const;

  /// Estimate for one id (0 if it never won).
  double QueryOne(geom::Vec2 q, int i) const;

 private:
  std::vector<UncertainPoint> points_;
  MonteCarloPnnOptions opts_;
  /// One kd-tree per instantiation; point ids coincide with point indices.
  std::vector<range::KdTree> trees_;
};

}  // namespace core
}  // namespace unn

#endif  // UNN_CORE_MONTE_CARLO_PNN_H_
