#ifndef UNN_CORE_EXPECTED_NN_H_
#define UNN_CORE_EXPECTED_NN_H_

#include <span>
#include <vector>

#include "core/uncertain_point.h"
#include "geom/vec2.h"
#include "spatial/batch.h"
#include "spatial/flat_tree.h"

/// \file expected_nn.h
/// The expected-distance nearest neighbor of the companion paper I
/// ([AESZ12], PODS 2012), discussed in Section 1.2 of paper II as the
/// "easier" variant: the expected distance to each uncertain point is a
/// per-point quantity, so the minimizer needs no interaction between
/// points.
///
/// Two semantics are provided:
///   * expected *squared* distance — exact and index-friendly, since
///     E[d(q,P)^2] = |q - mu|^2 + Var(P) (a "power-like" weighted NN,
///     answered by branch-and-bound in O(log n) expected time);
///   * expected distance E[d(q,P)] — evaluated per point (closed form for
///     discrete, adaptive quadrature for disks) and minimized by scan with
///     E[d^2]-based pruning (sqrt(E[d^2]) >= E[d] >= delta).
///
/// Experiment E12 measures how often the expected-NN disagrees with the
/// most-probable NN — the [YTX+10] critique the paper cites for preferring
/// quantification probabilities under large uncertainty.

namespace unn {
namespace core {

class ExpectedNn {
 public:
  explicit ExpectedNn(std::vector<UncertainPoint> points);

  /// argmin_i E[d(q, P_i)^2]; exact.
  int QuerySquared(geom::Vec2 q) const;

  /// argmin_i E[d(q, P_i)]; quadrature tolerance `tol` for disk models.
  int QueryExpected(geom::Vec2 q, double tol = 1e-9) const;

  /// QuerySquared for a batch: `out[i]` is bit-identical to
  /// `QuerySquared(queries[i])`, including argmin tie semantics. Queries
  /// are packed geom::kLaneWidth at a time through one shared traversal
  /// (spatial/batch.h); lanes whose minimum is tied replay the scalar
  /// descent. `stats`, when non-null, accumulates pack counters.
  void QuerySquaredBatch(std::span<const geom::Vec2> queries,
                         std::span<int> out,
                         spatial::BatchStats* stats = nullptr) const;

  /// QueryExpected for a batch: `out[i]` is bit-identical to
  /// `QueryExpected(queries[i], tol)`. For all-discrete point sets the
  /// packs run a pruned shared traversal that evaluates the same
  /// closed-form E[d] as the scalar path (the scalar result is the
  /// evaluation-order-independent lexicographic argmin of (E[d], id), so
  /// no replay is needed); any disk model falls back to the scalar query
  /// per lane (quadrature tolerances admit no sound batched prune).
  void QueryExpectedBatch(std::span<const geom::Vec2> queries, double tol,
                          std::span<int> out,
                          spatial::BatchStats* stats = nullptr) const;

  /// E[d(q, P_i)^2] = |q - mu_i|^2 + Var_i (closed form, all models).
  double ExpectedSquaredDistance(int i, geom::Vec2 q) const;

  /// E[d(q, P_i)].
  double ExpectedDistance(int i, geom::Vec2 q, double tol = 1e-9) const;

  /// The k-NN ranking by expected distance (Section 1.2: "rank them in a
  /// non-decreasing order of the expected distance"): the `k` ids with the
  /// smallest E[d(q, P_i)], in that order.
  std::vector<int> RankByExpectedDistance(geom::Vec2 q, int k,
                                          double tol = 1e-9) const;

  geom::Vec2 mean(int i) const { return mean_[i]; }
  double variance(int i) const { return var_[i]; }

 private:
  std::vector<UncertainPoint> points_;
  std::vector<geom::Vec2> mean_;
  std::vector<double> var_;
  bool all_discrete_ = true;
  /// Kd-tree over the means, augmented with the subtree minimum variance:
  /// E[d(q,P)^2] = d(q, mu)^2 + Var is a power-like weighted distance, so
  /// box-distance-plus-min-variance is a valid subtree lower bound.
  spatial::FlatKdTree<spatial::MinAugment> tree_;
};

}  // namespace core
}  // namespace unn

#endif  // UNN_CORE_EXPECTED_NN_H_
