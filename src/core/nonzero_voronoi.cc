#include "core/nonzero_voronoi.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <queue>
#include <unordered_set>

#include "core/label_propagation.h"
#include "geom/trig.h"
#include "util/check.h"

namespace unn {
namespace core {

using dcel::EdgeShape;
using envelope::kNoCurve;
using envelope::PolarEnvelope;
using geom::Box;
using geom::FocalConic;
using geom::kTwoPi;
using geom::Vec2;

namespace {

/// True if circular intervals [a0, a1] and the interval of width `bw`
/// starting at `b0` (both may wrap) overlap. Conservative (may report
/// overlap when intervals merely touch).
bool CircularOverlap(double a0, double a1, double b0, double bw) {
  double aw = a1 - a0;
  if (aw >= kTwoPi || bw >= kTwoPi) return true;
  double start = geom::NormalizeAngle(b0 - a0);  // b relative to a0.
  return start <= aw || start + bw >= kTwoPi;
}

}  // namespace

NonzeroVoronoi::NonzeroVoronoi(std::vector<UncertainPoint> points,
                               const NonzeroVoronoiOptions& opts)
    : points_(std::move(points)) {
  for (const auto& p : points_) {
    UNN_CHECK_MSG(p.is_disk(),
                  "NonzeroVoronoi requires disk regions; use "
                  "NonzeroVoronoiDiscrete for discrete distributions");
  }
  UNN_CHECK(!points_.empty());

  if (!opts.window.Empty()) {
    window_ = opts.window;
  } else {
    Box b;
    for (const auto& p : points_) b.Expand(p.Bounds());
    double margin = opts.auto_window_margin * (b.Diagonal() + 1.0);
    window_ = b.Inflated(margin);
  }
  scale_ = window_.Diagonal();
  snap_tol_ = 1e-9 * scale_;

  ComputeGammas();
  EnumerateCrossings();
  EnumerateBoxCrossings();
  BuildEdges();
  BuildFrame();
  sub_.Build();
  stats_.dcel_vertices = sub_.NumVertices();
  stats_.dcel_edges = sub_.NumEdges();
  stats_.dcel_faces_euler = sub_.NumFacesEuler();
  stats_.bounded_faces = sub_.NumCcwLoops();
  stats_.components = sub_.NumComponents();
  shooter_ = std::make_unique<pointloc::RayShooter>(
      sub_, opts.locator_cells_per_axis);
  AssignLabels();
  stats_.label_nodes = static_cast<int64_t>(labels_.NumNodes());
}

void NonzeroVoronoi::ComputeGammas() {
  int n = static_cast<int>(points_.size());
  gammas_.reserve(n);
  events_.resize(n);
  for (int i = 0; i < n; ++i) {
    std::vector<std::optional<FocalConic>> curves(n);
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      curves[j] = FocalConic::DistanceDifference(
          points_[i].center(), points_[j].center(),
          points_[i].radius() + points_[j].radius());
    }
    gammas_.push_back(PolarEnvelope::Compute(curves));
    const PolarEnvelope& env = gammas_.back();
    stats_.gamma_arcs += env.NumCurveArcs();
    stats_.gamma_breakpoints += env.NumBreakpoints();
    events_[i].resize(env.arcs().size());
  }
}

void NonzeroVoronoi::EnumerateCrossings() {
  int n = static_cast<int>(points_.size());
  // Deduplicate crossing points for the mu statistic (a crossing near an
  // arc boundary can be reported from two arcs).
  std::unordered_set<uint64_t> crossing_keys;
  auto key_of = [&](Vec2 p) {
    double t = std::max(snap_tol_, 1e-300);
    auto ix = static_cast<int64_t>(std::floor(p.x / (4 * t)));
    auto iy = static_cast<int64_t>(std::floor(p.y / (4 * t)));
    return static_cast<uint64_t>(ix * 0x9E3779B97F4A7C15ULL) ^
           static_cast<uint64_t>(iy);
  };

  for (int i = 0; i < n; ++i) {
    const PolarEnvelope& env_i = gammas_[i];
    for (int k = i + 1; k < n; ++k) {
      // Bisector {delta_i = delta_j}: d(x,c_i) - d(x,c_k) = r_i - r_k.
      auto bis = FocalConic::DistanceDifference(
          points_[i].center(), points_[k].center(),
          points_[i].radius() - points_[k].radius());
      if (!bis.has_value()) continue;
      double bis_lo = geom::NormalizeAngle(bis->DomainLo());
      double bis_width = 2.0 * bis->alpha();

      const auto& arcs = env_i.arcs();
      for (size_t ai = 0; ai < arcs.size(); ++ai) {
        const envelope::EnvelopeArc& arc = arcs[ai];
        if (arc.curve == kNoCurve) continue;
        if (!CircularOverlap(arc.lo, arc.hi, bis_lo, bis_width)) continue;
        const FocalConic& conic = *env_i.curves()[arc.curve];
        double roots[2];
        int nr = FocalConic::Intersect(conic, *bis, roots);
        for (int r = 0; r < nr; ++r) {
          double theta = roots[r];
          // Roots are normalized to [0, 2*pi); arc intervals live there too.
          if (theta < arc.lo - 1e-12 || theta > arc.hi + 1e-12) continue;
          theta = std::clamp(theta, arc.lo, arc.hi);
          Vec2 x = conic.PointAt(theta);
          // A bisector root on gamma_i's envelope is mathematically on
          // gamma_k as well (delta_k = delta_i = Delta there), so validation
          // only guards numerical consistency between the two envelope
          // representations. Near gamma_k breakpoints the radius comparison
          // is ill-conditioned; fall back to the definition before giving
          // up, because silently dropping a true crossing leaves two edges
          // crossing without a shared vertex (a genus defect in the DCEL).
          double theta_k = geom::NormalizeAngle(Angle(x - points_[k].center()));
          auto [rk, idxk] = gammas_[k].Eval(theta_k);
          double dist_k = Dist(x, points_[k].center());
          bool ok = std::isfinite(rk) &&
                    std::abs(rk - dist_k) <= 1e-6 * (1.0 + dist_k);
          if (!ok) {
            double delta_k = points_[k].MinDist(x);
            double big_delta = GlobalMaxDistLowerEnvelope(points_, x);
            ok = std::abs(delta_k - big_delta) <= 1e-7 * (1.0 + big_delta);
          }
          if (!ok) continue;
          // Register into the gamma_k arc whose curve best matches x
          // (the binary-search arc, or a neighbor at breakpoints).
          int arc_k = gammas_[k].ArcIndexAt(theta_k);
          const auto& karcs = gammas_[k].arcs();
          int nk = static_cast<int>(karcs.size());
          double best_err = std::numeric_limits<double>::infinity();
          int best_arc = -1;
          // The containing arc is tried first and kept on ties: a neighbor
          // arc carrying the *same* conic (split only by the artificial
          // wrap at theta = 0) would otherwise win and the clamp below
          // would silently collapse the event onto its far boundary.
          for (int d : {0, -1, 1}) {
            int cand = (arc_k + d + nk) % nk;
            if (cand == arc_k && d != 0) continue;  // Tiny envelopes.
            if (karcs[cand].curve == kNoCurve) continue;
            const FocalConic& ck = *gammas_[k].curves()[karcs[cand].curve];
            if (!ck.InDomain(theta_k, -1e-9)) continue;
            double err = std::abs(ck.RadiusAt(theta_k) - dist_k);
            if (err < best_err) {
              best_err = err;
              best_arc = cand;
            }
          }
          if (best_arc < 0) continue;
          double tk = std::clamp(theta_k, karcs[best_arc].lo, karcs[best_arc].hi);
          events_[i][ai].thetas.push_back(theta);
          events_[k][best_arc].thetas.push_back(tk);
          if (crossing_keys.insert(key_of(x)).second) {
            ++stats_.curve_crossings;
          }
        }
      }
    }
  }
  stats_.arrangement_vertices = stats_.curve_crossings + stats_.gamma_breakpoints;
}

void NonzeroVoronoi::EnumerateBoxCrossings() {
  frame_hits_.assign(4, {});
  Vec2 corners[4] = {window_.lo,
                     {window_.hi.x, window_.lo.y},
                     window_.hi,
                     {window_.lo.x, window_.hi.y}};
  int n = static_cast<int>(points_.size());
  for (int i = 0; i < n; ++i) {
    const PolarEnvelope& env = gammas_[i];
    const auto& arcs = env.arcs();
    for (size_t ai = 0; ai < arcs.size(); ++ai) {
      const envelope::EnvelopeArc& arc = arcs[ai];
      if (arc.curve == kNoCurve) continue;
      const FocalConic& conic = *env.curves()[arc.curve];
      for (int s = 0; s < 4; ++s) {
        Vec2 p = corners[s];
        Vec2 q = corners[(s + 1) % 4];
        FocalConic::SegmentHit hits[2];
        int nh = conic.IntersectSegment(p, q, hits);
        for (int h = 0; h < nh; ++h) {
          double theta = hits[h].theta;
          if (theta < arc.lo - 1e-12 || theta > arc.hi + 1e-12) continue;
          theta = std::clamp(theta, arc.lo, arc.hi);
          events_[i][ai].thetas.push_back(theta);
          int vid = SnapVertex(hits[h].point);
          frame_hits_[s].push_back({hits[h].t, vid});
        }
      }
    }
  }
}

int NonzeroVoronoi::SnapVertex(Vec2 p) {
  double cell = 4.0 * snap_tol_;
  auto cx = static_cast<int64_t>(std::floor(p.x / cell));
  auto cy = static_cast<int64_t>(std::floor(p.y / cell));
  for (int64_t dx = -1; dx <= 1; ++dx) {
    for (int64_t dy = -1; dy <= 1; ++dy) {
      uint64_t key = static_cast<uint64_t>((cx + dx) * 0x9E3779B97F4A7C15ULL) ^
                     static_cast<uint64_t>(cy + dy);
      auto it = snap_grid_.find(key);
      if (it == snap_grid_.end()) continue;
      for (int vid : it->second) {
        if (Dist(sub_.vertex(vid).pos, p) <= snap_tol_) return vid;
      }
    }
  }
  int vid = sub_.AddVertex(p);
  uint64_t key = static_cast<uint64_t>(cx * 0x9E3779B97F4A7C15ULL) ^
                 static_cast<uint64_t>(cy);
  snap_grid_[key].push_back(vid);
  return vid;
}

void NonzeroVoronoi::BuildEdges() {
  int n = static_cast<int>(points_.size());
  Box accept = window_.Inflated(1e-6 * scale_);
  for (int i = 0; i < n; ++i) {
    const PolarEnvelope& env = gammas_[i];
    const auto& arcs = env.arcs();
    for (size_t ai = 0; ai < arcs.size(); ++ai) {
      const envelope::EnvelopeArc& arc = arcs[ai];
      if (arc.curve == kNoCurve) continue;
      const FocalConic& conic = *env.curves()[arc.curve];
      std::vector<double>& ev = events_[i][ai].thetas;
      ev.push_back(arc.lo);
      ev.push_back(arc.hi);
      std::sort(ev.begin(), ev.end());
      ev.erase(std::unique(ev.begin(), ev.end(),
                           [](double a, double b) { return b - a < 1e-11; }),
               ev.end());
      for (size_t t = 0; t + 1 < ev.size(); ++t) {
        double t0 = ev[t];
        double t1 = ev[t + 1];
        if (t1 - t0 < 1e-11) continue;
        double tm = 0.5 * (t0 + t1);
        if (!conic.InDomain(tm) || !window_.Contains(conic.PointAt(tm))) {
          continue;
        }
        Vec2 pa = conic.PointAt(t0);
        Vec2 pb = conic.PointAt(t1);
        if (!accept.Contains(pa) || !accept.Contains(pb) ||
            !std::isfinite(pa.x + pa.y + pb.x + pb.y)) {
          ++stats_.dropped_subarcs;
          continue;
        }
        int va = SnapVertex(pa);
        int vb = SnapVertex(pb);
        if (va == vb && Dist(pa, pb) < snap_tol_) continue;
        sub_.AddEdge(va, vb, EdgeShape::Arc(conic, t0, t1), i);
      }
    }
  }
}

void NonzeroVoronoi::BuildFrame() {
  Vec2 corners[4] = {window_.lo,
                     {window_.hi.x, window_.lo.y},
                     window_.hi,
                     {window_.lo.x, window_.hi.y}};
  int corner_vid[4];
  for (int s = 0; s < 4; ++s) corner_vid[s] = SnapVertex(corners[s]);
  for (int s = 0; s < 4; ++s) {
    auto& hits = frame_hits_[s];
    hits.push_back({0.0, corner_vid[s]});
    hits.push_back({1.0, corner_vid[(s + 1) % 4]});
    std::sort(hits.begin(), hits.end());
    for (size_t h = 0; h + 1 < hits.size(); ++h) {
      int va = hits[h].second;
      int vb = hits[h + 1].second;
      if (va == vb) continue;
      Vec2 pa = sub_.vertex(va).pos;
      Vec2 pb = sub_.vertex(vb).pos;
      sub_.AddEdge(va, vb, EdgeShape::Segment(pa, pb), dcel::kFrameCurve);
    }
  }
}

std::vector<int> NonzeroVoronoi::BruteQuery(Vec2 q) const {
  DeltaEnvelope env = TwoSmallestMaxDist(points_, q);
  std::vector<int> out;
  for (size_t i = 0; i < points_.size(); ++i) {
    double threshold = env.ThresholdFor(static_cast<int>(i));
    if (!std::isfinite(threshold) || points_[i].MinDist(q) < threshold) {
      out.push_back(static_cast<int>(i));
    }
  }
  return out;
}

void NonzeroVoronoi::AssignLabels() {
  auto brute = [this](Vec2 p) { return BruteQuery(p); };
  auto margin = [this](Vec2 p) { return NonzeroNnMargin(points_, p); };
  LabelPropagation lp =
      PropagateLabels(sub_, *shooter_, window_, scale_, brute, margin);
  labels_ = std::move(lp.store);
  loop_version_ = std::move(lp.loop_version);
  stats_.unlabeled_loops = lp.unlabeled_loops;
}

std::vector<int> NonzeroVoronoi::Query(Vec2 q) const {
  if (!window_.Contains(q)) return BruteQuery(q);
  int h = shooter_->LocateHalfEdgeAbove(q);
  if (h < 0) return BruteQuery(q);
  persist::Version v = loop_version_[sub_.half_edge(h).loop];
  if (v < 0) return BruteQuery(q);
  return labels_.Items(v);
}

int NonzeroVoronoi::GuaranteedNn(Vec2 q) const {
  std::vector<int> ids = Query(q);
  return ids.size() == 1 ? ids[0] : -1;
}

int NonzeroVoronoi::NumGuaranteedFaces() const {
  int count = 0;
  for (int l = 0; l < sub_.NumLoops(); ++l) {
    if (!sub_.loop(l).ccw) continue;
    persist::Version v = loop_version_[l];
    if (v >= 0 && labels_.Size(v) == 1) ++count;
  }
  return count;
}

bool NonzeroVoronoi::IsFallbackQuery(Vec2 q) const {
  if (!window_.Contains(q)) return true;
  int h = shooter_->LocateHalfEdgeAbove(q);
  return h < 0 || loop_version_[sub_.half_edge(h).loop] < 0;
}

}  // namespace core
}  // namespace unn
