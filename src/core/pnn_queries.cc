#include "core/pnn_queries.h"

#include <algorithm>

#include "util/check.h"

namespace unn {
namespace core {

using geom::Vec2;

std::vector<std::pair<int, double>> ThresholdQuery(const SpiralSearch& ss,
                                                   Vec2 q, double tau) {
  UNN_CHECK(tau > 0 && tau < 1);
  double eps = tau / 2.0;
  auto est = ss.Query(q, eps);
  std::vector<std::pair<int, double>> out;
  for (auto [id, p] : est) {
    if (p + eps >= tau) out.push_back({id, p});
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second > b.second || (a.second == b.second && a.first < b.first);
  });
  return out;
}

std::vector<std::pair<int, double>> TopKQuery(const SpiralSearch& ss, Vec2 q,
                                              int k, double eps) {
  auto est = ss.Query(q, eps);
  std::sort(est.begin(), est.end(), [](const auto& a, const auto& b) {
    return a.second > b.second || (a.second == b.second && a.first < b.first);
  });
  if (static_cast<int>(est.size()) > k) est.resize(k);
  return est;
}

}  // namespace core
}  // namespace unn
