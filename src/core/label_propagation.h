#ifndef UNN_CORE_LABEL_PROPAGATION_H_
#define UNN_CORE_LABEL_PROPAGATION_H_

#include <functional>
#include <vector>

#include "dcel/planar_subdivision.h"
#include "persist/persistent_set.h"
#include "pointloc/ray_shooter.h"

/// \file label_propagation.h
/// Face labeling shared by the continuous and discrete nonzero Voronoi
/// diagrams. Every boundary loop of the subdivision receives the label set
/// NN!=0 of its region: crossing an edge of curve gamma_i toggles membership
/// of i, so labels propagate by BFS from one brute-force-labeled seed per
/// connected component, and all label sets live in a partially persistent
/// treap ([DSST89]) at O(1) amortized space per face (Theorem 2.11).

namespace unn {
namespace core {

struct LabelPropagation {
  persist::PersistentSet store;
  /// Version per loop; -1 where unlabeled (frame exterior / failed seed).
  std::vector<persist::Version> loop_version;
  int unlabeled_loops = 0;
};

/// Computes loop labels. `brute_label` returns the sorted ground-truth label
/// at a point; `label_margin` returns how numerically decisive that label is
/// at a point (seeds require margin > 1e-9 * (1 + typical magnitude), so
/// pass something like min_i |delta_i - Delta|).
LabelPropagation PropagateLabels(
    const dcel::PlanarSubdivision& sub, const pointloc::RayShooter& shooter,
    const geom::Box& window, double scale,
    const std::function<std::vector<int>(geom::Vec2)>& brute_label,
    const std::function<double(geom::Vec2)>& label_margin);

}  // namespace core
}  // namespace unn

#endif  // UNN_CORE_LABEL_PROPAGATION_H_
