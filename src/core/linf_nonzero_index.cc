#include "core/linf_nonzero_index.h"

#include <algorithm>
#include <limits>

#include "spatial/traverse.h"
#include "util/check.h"

namespace unn {
namespace core {

using geom::Vec2;

namespace {
constexpr int kLeaf = 8;
}

LinfNonzeroIndex::LinfNonzeroIndex(std::vector<SquareRegion> squares)
    : squares_(std::move(squares)) {
  UNN_CHECK(!squares_.empty());
  // Build-only SoA views of the squares; the augment seals (drops its
  // pointer) when the build finishes, so locals suffice.
  std::vector<geom::Vec2> centers;
  std::vector<double> half_sides;
  for (const auto& s : squares_) {
    UNN_CHECK(s.half_side >= 0);
    centers.push_back(s.center);
    half_sides.push_back(s.half_side);
  }
  tree_ = spatial::FlatKdTree<spatial::MinMaxAugment>(
      centers, {.leaf_size = kLeaf, .split = spatial::SplitRule::kAlternate},
      spatial::MinMaxAugment(&half_sides));
}

LinfNonzeroIndex::Envelope LinfNonzeroIndex::DeltaEnvelope2(Vec2 q) const {
  Envelope env{std::numeric_limits<double>::infinity(),
               std::numeric_limits<double>::infinity(), -1};
  spatial::PrunedVisit(
      tree_,
      // Prune against `second` so both smallest Delta values survive
      // (exact j != i semantics, as in the L2 discrete index).
      [&](int n) {
        return geom::ChebyshevDistToBox(q, tree_.box(n)) + tree_.aug().min(n) >=
               env.second;
      },
      [&](int n) {
        for (int i = tree_.begin(n); i < tree_.end(n); ++i) {
          int id = tree_.item(i);
          double v =
              ChebyshevDist(q, squares_[id].center) + squares_[id].half_side;
          if (v < env.best) {
            env.second = env.best;
            env.best = v;
            env.argbest = id;
          } else {
            env.second = std::min(env.second, v);
          }
        }
        return true;
      });
  return env;
}

void LinfNonzeroIndex::ReportLess(Vec2 q, double bound,
                                  std::vector<int>* out) const {
  spatial::PrunedVisit(
      tree_,
      [&](int n) {
        return geom::ChebyshevDistToBox(q, tree_.box(n)) - tree_.aug().max(n) >=
               bound;
      },
      [&](int n) {
        for (int i = tree_.begin(n); i < tree_.end(n); ++i) {
          int id = tree_.item(i);
          double d = std::max(
              ChebyshevDist(q, squares_[id].center) - squares_[id].half_side,
              0.0);
          if (d < bound) out->push_back(id);
        }
        return true;
      });
}

double LinfNonzeroIndex::MinDist(int i, Vec2 q) const {
  return std::max(
      ChebyshevDist(q, squares_[i].center) - squares_[i].half_side, 0.0);
}

double LinfNonzeroIndex::Delta(Vec2 q) const { return DeltaEnvelope2(q).best; }

std::vector<int> LinfNonzeroIndex::Query(Vec2 q) const {
  if (squares_.size() == 1) return {0};
  Envelope env = DeltaEnvelope2(q);
  std::vector<int> out;
  ReportLess(q, env.best, &out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  bool arg_in = std::binary_search(out.begin(), out.end(), env.argbest);
  bool arg_should = MinDist(env.argbest, q) < env.second;
  if (arg_in && !arg_should) {
    out.erase(std::find(out.begin(), out.end(), env.argbest));
  } else if (!arg_in && arg_should) {
    out.insert(std::upper_bound(out.begin(), out.end(), env.argbest),
               env.argbest);
  }
  return out;
}

}  // namespace core
}  // namespace unn
