#include "core/linf_nonzero_index.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/check.h"

namespace unn {
namespace core {

using geom::Box;
using geom::Vec2;

namespace {
constexpr int kLeaf = 8;
}

LinfNonzeroIndex::LinfNonzeroIndex(std::vector<SquareRegion> squares)
    : squares_(std::move(squares)) {
  UNN_CHECK(!squares_.empty());
  for (const auto& s : squares_) UNN_CHECK(s.half_side >= 0);
  order_.resize(squares_.size());
  std::iota(order_.begin(), order_.end(), 0);
  root_ = Build(0, static_cast<int>(squares_.size()), 0);
}

double LinfNonzeroIndex::ChebToBox(Vec2 q, const Box& b) {
  double dx = std::max({b.lo.x - q.x, 0.0, q.x - b.hi.x});
  double dy = std::max({b.lo.y - q.y, 0.0, q.y - b.hi.y});
  return std::max(dx, dy);
}

int LinfNonzeroIndex::Build(int begin, int end, int depth) {
  Node node;
  node.r_min = std::numeric_limits<double>::infinity();
  for (int i = begin; i < end; ++i) {
    node.box.Expand(squares_[order_[i]].center);
    node.r_min = std::min(node.r_min, squares_[order_[i]].half_side);
    node.r_max = std::max(node.r_max, squares_[order_[i]].half_side);
  }
  int id = static_cast<int>(nodes_.size());
  nodes_.push_back(node);
  if (end - begin <= kLeaf) {
    nodes_[id].begin = begin;
    nodes_[id].end = end;
    return id;
  }
  int mid = (begin + end) / 2;
  bool by_x = (depth % 2 == 0);
  std::nth_element(order_.begin() + begin, order_.begin() + mid,
                   order_.begin() + end, [&](int a, int b) {
                     return by_x ? squares_[a].center.x < squares_[b].center.x
                                 : squares_[a].center.y < squares_[b].center.y;
                   });
  nodes_[id].left = Build(begin, mid, depth + 1);
  nodes_[id].right = Build(mid, end, depth + 1);
  return id;
}

void LinfNonzeroIndex::DeltaRec(int node, Vec2 q, Envelope* env) const {
  const Node& n = nodes_[node];
  // Prune against `second` so both smallest Delta values survive (exact
  // j != i semantics, as in the L2 discrete index).
  if (ChebToBox(q, n.box) + n.r_min >= env->second) return;
  if (n.left < 0) {
    for (int i = n.begin; i < n.end; ++i) {
      int id = order_[i];
      double v = ChebyshevDist(q, squares_[id].center) + squares_[id].half_side;
      if (v < env->best) {
        env->second = env->best;
        env->best = v;
        env->argbest = id;
      } else {
        env->second = std::min(env->second, v);
      }
    }
    return;
  }
  DeltaRec(n.left, q, env);
  DeltaRec(n.right, q, env);
}

void LinfNonzeroIndex::ReportRec(int node, Vec2 q, double bound,
                                 std::vector<int>* out) const {
  const Node& n = nodes_[node];
  if (ChebToBox(q, n.box) - n.r_max >= bound) return;
  if (n.left < 0) {
    for (int i = n.begin; i < n.end; ++i) {
      int id = order_[i];
      double d = std::max(
          ChebyshevDist(q, squares_[id].center) - squares_[id].half_side, 0.0);
      if (d < bound) out->push_back(id);
    }
    return;
  }
  ReportRec(n.left, q, bound, out);
  ReportRec(n.right, q, bound, out);
}

double LinfNonzeroIndex::MinDist(int i, Vec2 q) const {
  return std::max(ChebyshevDist(q, squares_[i].center) - squares_[i].half_side,
                  0.0);
}

double LinfNonzeroIndex::Delta(Vec2 q) const {
  Envelope env{std::numeric_limits<double>::infinity(),
               std::numeric_limits<double>::infinity(), -1};
  DeltaRec(root_, q, &env);
  return env.best;
}

std::vector<int> LinfNonzeroIndex::Query(Vec2 q) const {
  if (squares_.size() == 1) return {0};
  Envelope env{std::numeric_limits<double>::infinity(),
               std::numeric_limits<double>::infinity(), -1};
  DeltaRec(root_, q, &env);
  std::vector<int> out;
  ReportRec(root_, q, env.best, &out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  bool arg_in = std::binary_search(out.begin(), out.end(), env.argbest);
  bool arg_should = MinDist(env.argbest, q) < env.second;
  if (arg_in && !arg_should) {
    out.erase(std::find(out.begin(), out.end(), env.argbest));
  } else if (!arg_in && arg_should) {
    out.insert(std::upper_bound(out.begin(), out.end(), env.argbest),
               env.argbest);
  }
  return out;
}

}  // namespace core
}  // namespace unn
