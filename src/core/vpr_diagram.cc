#include "core/vpr_diagram.h"

#include <algorithm>
#include <cmath>

#include "arrangement/segment_arrangement.h"
#include "core/exact_pnn.h"
#include "util/check.h"

namespace unn {
namespace core {

using geom::Box;
using geom::Vec2;

VprDiagram::VprDiagram(std::vector<UncertainPoint> points,
                       const VprDiagramOptions& opts)
    : points_(std::move(points)) {
  UNN_CHECK(!points_.empty());
  std::vector<Vec2> sites;
  for (const auto& p : points_) {
    UNN_CHECK_MSG(!p.is_disk(), "VprDiagram requires discrete models");
    for (Vec2 s : p.sites()) sites.push_back(s);
  }

  if (!opts.window.Empty()) {
    window_ = opts.window;
  } else {
    Box b;
    for (Vec2 s : sites) b.Expand(s);
    window_ = b.Inflated(opts.auto_window_margin * (b.Diagonal() + 1.0));
  }

  arrangement::SegmentArrangementBuilder builder(window_);
  double big = 4.0 * window_.Diagonal() + 1.0;
  int num_sites = static_cast<int>(sites.size());
  for (int a = 0; a < num_sites; ++a) {
    for (int b = a + 1; b < num_sites; ++b) {
      Vec2 mid = (sites[a] + sites[b]) * 0.5;
      Vec2 d = sites[b] - sites[a];
      double len = Norm(d);
      if (len < 1e-12) continue;  // Coincident sites: no bisector.
      Vec2 dir = geom::Perp(d) / len;
      builder.AddSegment(mid - dir * big, mid + dir * big, a);
      ++stats_.num_bisectors;
    }
  }
  sub_ = std::make_unique<dcel::PlanarSubdivision>(builder.Build());
  stats_.crossings = builder.num_crossings();
  stats_.dcel_vertices = sub_->NumVertices();
  stats_.dcel_edges = sub_->NumEdges();
  stats_.bounded_faces = sub_->NumCcwLoops();
  shooter_ = std::make_unique<pointloc::RayShooter>(*sub_);

  // Label every loop with the probability vector at a verified interior
  // sample; within a face of the bisector arrangement the site-distance
  // order — and with it every pi_i — is constant (Lemma 4.1's argument).
  double scale = window_.Diagonal();
  int nloops = sub_->NumLoops();
  loop_pi_.resize(nloops);
  loop_labeled_.assign(nloops, 0);
  for (int l = 0; l < nloops; ++l) {
    int h0 = sub_->loop(l).first_half_edge;
    int h = h0;
    do {
      const auto& he = sub_->half_edge(h);
      const auto& shape = sub_->edge(he.edge).shape;
      Vec2 mid = shape.Midpoint();
      Vec2 dir = shape.TravelDirAt(0.5);
      if (!he.forward) dir = -dir;
      for (double eps : {1e-7 * scale, 1e-5 * scale}) {
        Vec2 p = mid + geom::Perp(dir) * eps;
        if (!window_.Contains(p)) continue;
        int lh = shooter_->LocateHalfEdgeAbove(p);
        if (lh < 0 || sub_->half_edge(lh).loop != l) continue;
        loop_pi_[l] = ComputeAt(p);
        loop_labeled_[l] = 1;
        break;
      }
      if (loop_labeled_[l]) break;
      h = he.next;
    } while (h != h0);
  }
}

std::vector<std::pair<int, double>> VprDiagram::ComputeAt(Vec2 q) const {
  return DiscreteQuantification(points_, q);
}

std::vector<std::pair<int, double>> VprDiagram::Query(Vec2 q) const {
  if (window_.Contains(q)) {
    int h = shooter_->LocateHalfEdgeAbove(q);
    if (h >= 0) {
      int l = sub_->half_edge(h).loop;
      if (loop_labeled_[l]) return loop_pi_[l];
    }
  }
  return ComputeAt(q);
}

}  // namespace core
}  // namespace unn
