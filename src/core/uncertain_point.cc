#include "core/uncertain_point.h"

#include <limits>

namespace unn {
namespace core {

double GlobalMaxDistLowerEnvelope(const std::vector<UncertainPoint>& pts,
                                  geom::Vec2 q) {
  double m = std::numeric_limits<double>::infinity();
  for (const auto& p : pts) m = std::min(m, p.MaxDist(q));
  return m;
}

DeltaEnvelope TwoSmallestMaxDist(const std::vector<UncertainPoint>& pts,
                                 geom::Vec2 q) {
  DeltaEnvelope out;
  out.best = std::numeric_limits<double>::infinity();
  out.second = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < pts.size(); ++i) {
    out.Insert(pts[i].MaxDist(q), static_cast<int>(i));
  }
  return out;
}

double NonzeroNnMargin(const std::vector<UncertainPoint>& pts, geom::Vec2 q) {
  DeltaEnvelope env = TwoSmallestMaxDist(pts, q);
  double m = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < pts.size(); ++i) {
    double threshold = env.ThresholdFor(static_cast<int>(i));
    if (!std::isfinite(threshold)) continue;  // Single point: never bounded.
    m = std::min(m, std::abs(pts[i].MinDist(q) - threshold));
  }
  return m;
}

}  // namespace core
}  // namespace unn
