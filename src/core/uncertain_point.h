#ifndef UNN_CORE_UNCERTAIN_POINT_H_
#define UNN_CORE_UNCERTAIN_POINT_H_

#include <vector>

#include "geom/vec2.h"
#include "util/check.h"

/// \file uncertain_point.h
/// The library's data model (Section 1.1 of the paper). An uncertain point
/// is either
///   * continuous — a pdf with bounded support; the support is a disk
///     (center, radius) and the pdf is one of a small family (uniform,
///     truncated Gaussian); every structural result (Section 2/3) depends
///     only on the support disk, and only the Section-4 estimators look at
///     the pdf; or
///   * discrete — k locations with probabilities summing to 1.

namespace unn {
namespace core {

/// Probability model over a disk support (only consulted by the
/// quantification-probability machinery; NN!=0 structures ignore it).
enum class DiskPdf {
  kUniform,            ///< Uniform over the disk.
  kTruncatedGaussian,  ///< Isotropic Gaussian truncated to the disk;
                       ///< sigma = radius / 2 (as in [BSI08, CCMC08]).
};

class UncertainPoint {
 public:
  /// Continuous uncertain point with disk support.
  static UncertainPoint Disk(geom::Vec2 center, double radius,
                             DiskPdf pdf = DiskPdf::kUniform) {
    UNN_CHECK(radius > 0);
    UncertainPoint p;
    p.is_disk_ = true;
    p.center_ = center;
    p.radius_ = radius;
    p.pdf_ = pdf;
    return p;
  }

  /// Discrete uncertain point; weights must be positive and sum to 1
  /// (checked up to 1e-9).
  static UncertainPoint Discrete(std::vector<geom::Vec2> sites,
                                 std::vector<double> weights) {
    UNN_CHECK(!sites.empty());
    UNN_CHECK(sites.size() == weights.size());
    double total = 0;
    for (double w : weights) {
      UNN_CHECK(w > 0);
      total += w;
    }
    UNN_CHECK_MSG(total > 1 - 1e-9 && total < 1 + 1e-9,
                  "discrete weights must sum to 1");
    UncertainPoint p;
    p.is_disk_ = false;
    p.sites_ = std::move(sites);
    p.weights_ = std::move(weights);
    return p;
  }

  /// Discrete uncertain point with uniform location probabilities.
  static UncertainPoint DiscreteUniform(std::vector<geom::Vec2> sites) {
    size_t k = sites.size();
    return Discrete(std::move(sites),
                    std::vector<double>(k, 1.0 / static_cast<double>(k)));
  }

  bool is_disk() const { return is_disk_; }
  geom::Vec2 center() const {
    UNN_DCHECK(is_disk_);
    return center_;
  }
  double radius() const {
    UNN_DCHECK(is_disk_);
    return radius_;
  }
  DiskPdf pdf() const {
    UNN_DCHECK(is_disk_);
    return pdf_;
  }
  const std::vector<geom::Vec2>& sites() const {
    UNN_DCHECK(!is_disk_);
    return sites_;
  }
  const std::vector<double>& weights() const {
    UNN_DCHECK(!is_disk_);
    return weights_;
  }

  /// delta_i(q): minimum possible distance from q to this point.
  double MinDist(geom::Vec2 q) const {
    if (is_disk_) return std::max(Dist(q, center_) - radius_, 0.0);
    double m = std::numeric_limits<double>::infinity();
    for (geom::Vec2 s : sites_) m = std::min(m, Dist(q, s));
    return m;
  }

  /// Delta_i(q): maximum possible distance from q to this point.
  double MaxDist(geom::Vec2 q) const {
    if (is_disk_) return Dist(q, center_) + radius_;
    double m = 0;
    for (geom::Vec2 s : sites_) m = std::max(m, Dist(q, s));
    return m;
  }

  /// Bounding box of the uncertainty region.
  geom::Box Bounds() const {
    geom::Box b;
    if (is_disk_) {
      b.Expand(center_);
      return b.Inflated(radius_);
    }
    for (geom::Vec2 s : sites_) b.Expand(s);
    return b;
  }

 private:
  UncertainPoint() = default;

  bool is_disk_ = true;
  geom::Vec2 center_;
  double radius_ = 0;
  DiskPdf pdf_ = DiskPdf::kUniform;
  std::vector<geom::Vec2> sites_;
  std::vector<double> weights_;
};

/// Delta(q) = min_i Delta_i(q), the radius of the smallest disk around q
/// guaranteed to contain at least one uncertain point (linear scan).
double GlobalMaxDistLowerEnvelope(const std::vector<UncertainPoint>& pts,
                                  geom::Vec2 q);

/// The two smallest Delta_j(q) values and the argmin. Lemma 2.1 tests
/// delta_i(q) < Delta_j(q) for all j != i, so the threshold for point i is
/// `best` except for the argmin itself, where it is `second` — the
/// distinction only matters for degenerate regions (certain points, k = 1),
/// where delta_i == Delta_i exactly.
struct DeltaEnvelope {
  double best = 0.0;
  double second = 0.0;
  int argbest = -1;

  double ThresholdFor(int i) const { return i == argbest ? second : best; }

  /// Inserts one Delta sample, keeping the two smallest values and the
  /// smallest id among the minimizers — the single definition of the
  /// envelope's tie semantics, shared by the linear scan, the
  /// quantification index, and the cross-shard merge so they cannot
  /// drift: a duplicate of the minimum lands in `second` (the displaced
  /// holder stays as runner-up), and an anonymous sample (`id < 0`, used
  /// for per-shard runner-up values whose id is unknown) never takes the
  /// argmin. Callers initialize best/second to +infinity before the
  /// first insert. Precondition (checked): an anonymous sample must not
  /// beat the current best — insert a shard's identified best before its
  /// anonymous runner-up, as MergeEnvelopes does.
  void Insert(double d, int id) {
    UNN_DCHECK(id >= 0 || d >= best);
    if (d < best) {
      second = best;
      best = d;
      argbest = id;
    } else if (d == best && id >= 0 && (argbest < 0 || id < argbest)) {
      second = best;
      argbest = id;
    } else {
      second = std::min(second, d);
    }
  }
};
DeltaEnvelope TwoSmallestMaxDist(const std::vector<UncertainPoint>& pts,
                                 geom::Vec2 q);

/// Margin of the NN!=0 label at q: min_i |delta_i(q) - threshold_i(q)|.
/// Zero on diagram boundaries; used to validate label seeds.
double NonzeroNnMargin(const std::vector<UncertainPoint>& pts, geom::Vec2 q);

}  // namespace core
}  // namespace unn

#endif  // UNN_CORE_UNCERTAIN_POINT_H_
