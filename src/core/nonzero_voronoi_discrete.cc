#include "core/nonzero_voronoi_discrete.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "arrangement/segment_arrangement.h"
#include "baselines/brute_force.h"
#include "core/label_propagation.h"
#include "geom/convex.h"
#include "geom/predicates.h"
#include "util/check.h"

namespace unn {
namespace core {

using geom::Box;
using geom::Halfplane;
using geom::Vec2;

namespace {

/// K_ij = {x : max_t f(x, p_jt) <= min_s f(x, p_is)} via k_i * k_j
/// halfplanes 2<x, p_is - p_jt> <= |p_is|^2 - |p_jt|^2, clipped to `bound`.
std::vector<Vec2> ComputeKij(const UncertainPoint& pi, const UncertainPoint& pj,
                             const Box& bound) {
  std::vector<Halfplane> hps;
  hps.reserve(pi.sites().size() * pj.sites().size());
  for (Vec2 a : pi.sites()) {
    for (Vec2 b : pj.sites()) {
      Vec2 n = (a - b) * 2.0;
      double c = NormSq(a) - NormSq(b);
      // Points x with f(x, b) <= f(x, a):  |b|^2 - 2<x,b> <= |a|^2 - 2<x,a>
      // i.e. 2<x, a - b> <= |a|^2 - |b|^2.
      hps.push_back({n, c});
    }
  }
  return geom::HalfplaneIntersection(hps, bound);
}

}  // namespace

NonzeroVoronoiDiscrete::NonzeroVoronoiDiscrete(
    std::vector<UncertainPoint> points,
    const NonzeroVoronoiDiscreteOptions& opts)
    : points_(std::move(points)) {
  UNN_CHECK(!points_.empty());
  int n = static_cast<int>(points_.size());
  for (const auto& p : points_) {
    UNN_CHECK_MSG(!p.is_disk(),
                  "NonzeroVoronoiDiscrete requires discrete models");
  }

  if (!opts.window.Empty()) {
    window_ = opts.window;
  } else {
    Box b;
    for (const auto& p : points_) b.Expand(p.Bounds());
    window_ = b.Inflated(opts.auto_window_margin * (b.Diagonal() + 1.0));
  }
  double scale = window_.Diagonal();
  Box kij_bound = window_.Inflated(scale);

  // gamma_i = boundary of union_j K_ij: split each polygon boundary at
  // crossings with the other polygons of the same i, keep pieces not
  // strictly interior to any other polygon.
  gamma_segments_.resize(n);
  arrangement::SegmentArrangementBuilder builder(window_);
  for (int i = 0; i < n; ++i) {
    std::vector<std::vector<Vec2>> polys;
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      auto poly = ComputeKij(points_[i], points_[j], kij_bound);
      if (poly.size() >= 3) polys.push_back(std::move(poly));
    }
    for (size_t a = 0; a < polys.size(); ++a) {
      const auto& poly = polys[a];
      int m = static_cast<int>(poly.size());
      for (int e = 0; e < m; ++e) {
        Vec2 s0 = poly[e];
        Vec2 s1 = poly[(e + 1) % m];
        // Split this boundary segment at crossings with other polygons.
        std::vector<double> cuts = {0.0, 1.0};
        for (size_t b = 0; b < polys.size(); ++b) {
          if (b == a) continue;
          const auto& other = polys[b];
          int mo = static_cast<int>(other.size());
          for (int f = 0; f < mo; ++f) {
            Vec2 t0 = other[f];
            Vec2 t1 = other[(f + 1) % mo];
            if (!geom::SegmentsIntersect(s0, s1, t0, t1)) continue;
            bool ok = false;
            Vec2 x = geom::LineIntersection(s0, s1, t0, t1, &ok);
            if (!ok) continue;
            double len2 = DistSq(s0, s1);
            if (len2 == 0) continue;
            cuts.push_back(std::clamp(Dot(x - s0, s1 - s0) / len2, 0.0, 1.0));
          }
        }
        std::sort(cuts.begin(), cuts.end());
        for (size_t c = 0; c + 1 < cuts.size(); ++c) {
          if (cuts[c + 1] - cuts[c] < 1e-12) continue;
          Vec2 mid = Lerp(s0, s1, 0.5 * (cuts[c] + cuts[c + 1]));
          bool interior = false;
          for (size_t b = 0; b < polys.size() && !interior; ++b) {
            if (b == a) continue;
            // Strictly inside (negative tolerance keeps shared boundary).
            if (geom::PointInConvex(polys[b], mid, -1e-9 * scale)) {
              interior = true;
            }
          }
          if (interior) continue;
          Vec2 pa = Lerp(s0, s1, cuts[c]);
          Vec2 pb = Lerp(s0, s1, cuts[c + 1]);
          gamma_segments_[i].push_back({pa, pb});
          builder.AddSegment(pa, pb, i);
          ++stats_.union_segments;
        }
      }
    }
  }

  sub_ = std::make_unique<dcel::PlanarSubdivision>(builder.Build());
  stats_.crossings = builder.num_crossings();
  stats_.dcel_vertices = sub_->NumVertices();
  stats_.dcel_edges = sub_->NumEdges();
  stats_.bounded_faces = sub_->NumCcwLoops();
  shooter_ = std::make_unique<pointloc::RayShooter>(*sub_);

  auto brute = [this](Vec2 p) { return BruteQuery(p); };
  auto margin = [this](Vec2 p) { return NonzeroNnMargin(points_, p); };
  LabelPropagation lp =
      PropagateLabels(*sub_, *shooter_, window_, scale, brute, margin);
  labels_ = std::move(lp.store);
  loop_version_ = std::move(lp.loop_version);
  stats_.unlabeled_loops = lp.unlabeled_loops;
  stats_.label_nodes = static_cast<int64_t>(labels_.NumNodes());
}

std::vector<int> NonzeroVoronoiDiscrete::BruteQuery(Vec2 q) const {
  return baselines::NonzeroNn(points_, q);
}

std::vector<int> NonzeroVoronoiDiscrete::Query(Vec2 q) const {
  if (!window_.Contains(q)) return BruteQuery(q);
  int h = shooter_->LocateHalfEdgeAbove(q);
  if (h < 0) return BruteQuery(q);
  persist::Version v = loop_version_[sub_->half_edge(h).loop];
  if (v < 0) return BruteQuery(q);
  return labels_.Items(v);
}

}  // namespace core
}  // namespace unn
