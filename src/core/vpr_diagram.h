#ifndef UNN_CORE_VPR_DIAGRAM_H_
#define UNN_CORE_VPR_DIAGRAM_H_

#include <memory>
#include <utility>
#include <vector>

#include "core/uncertain_point.h"
#include "dcel/planar_subdivision.h"
#include "geom/vec2.h"
#include "pointloc/ray_shooter.h"

/// \file vpr_diagram.h
/// The exact probabilistic Voronoi diagram VPr(P) of Section 4.1 / Theorem
/// 4.2 for discrete uncertain points: the arrangement of all O(N^2)
/// perpendicular bisectors of site pairs refines VPr, so every face carries
/// a constant vector of quantification probabilities, computed once per
/// face and served in O(location + t) per query. Size is Theta(N^4) in the
/// worst case (Lemma 4.1) — the diagram is only practical for tiny N, which
/// is precisely the point the paper makes before turning to approximation;
/// experiment E7 measures the blowup.

namespace unn {
namespace core {

struct VprDiagramOptions {
  geom::Box window;  ///< Empty selects sites' bbox inflated by one diagonal.
  double auto_window_margin = 1.0;
};

class VprDiagram {
 public:
  explicit VprDiagram(std::vector<UncertainPoint> points,
                      const VprDiagramOptions& opts = {});

  /// Exact (id, pi) pairs with pi > 0, sorted by id. Falls back to direct
  /// Eq. (2) evaluation outside the window (still exact).
  std::vector<std::pair<int, double>> Query(geom::Vec2 q) const;

  struct Stats {
    int num_bisectors = 0;
    int64_t crossings = 0;  ///< Interior bisector crossings in the window.
    int dcel_vertices = 0;
    int dcel_edges = 0;
    int bounded_faces = 0;
  };
  const Stats& stats() const { return stats_; }
  const geom::Box& window() const { return window_; }
  const dcel::PlanarSubdivision& subdivision() const { return *sub_; }

 private:
  std::vector<std::pair<int, double>> ComputeAt(geom::Vec2 q) const;

  std::vector<UncertainPoint> points_;
  geom::Box window_;
  std::unique_ptr<dcel::PlanarSubdivision> sub_;
  std::unique_ptr<pointloc::RayShooter> shooter_;
  /// Probability vector per loop (empty for unlabeled loops).
  std::vector<std::vector<std::pair<int, double>>> loop_pi_;
  std::vector<char> loop_labeled_;
  Stats stats_;
};

}  // namespace core
}  // namespace unn

#endif  // UNN_CORE_VPR_DIAGRAM_H_
