#include "core/nn_nonzero_index.h"

#include <algorithm>

#include "util/check.h"

namespace unn {
namespace core {

using geom::Vec2;

NnNonzeroIndex::NnNonzeroIndex(std::vector<UncertainPoint> points,
                               Stage1 stage1)
    : points_(std::move(points)), stage1_(stage1) {
  std::vector<Vec2> centers;
  std::vector<double> radii;
  centers.reserve(points_.size());
  radii.reserve(points_.size());
  for (const auto& p : points_) {
    UNN_CHECK_MSG(p.is_disk(), "NnNonzeroIndex requires disk regions");
    centers.push_back(p.center());
    radii.push_back(p.radius());
  }
  tree_ = std::make_unique<range::DiskTree>(centers, radii);
  if (stage1_ == Stage1::kVoronoi) {
    vor_ = std::make_unique<voronoi::WeightedVoronoi>(centers, radii);
  }
}

double NnNonzeroIndex::Delta(Vec2 q) const {
  if (stage1_ == Stage1::kVoronoi) return vor_->WeightedDistance(q);
  return tree_->MinMaxDist(q);
}

std::vector<int> NnNonzeroIndex::Query(Vec2 q) const {
  double delta = Delta(q);
  std::vector<int> out;
  tree_->ReportMinDistLess(q, delta, &out);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace core
}  // namespace unn
