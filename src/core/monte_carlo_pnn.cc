#include "core/monte_carlo_pnn.h"

#include <algorithm>
#include <cmath>
#include <random>

#include "prob/distributions.h"
#include "util/check.h"

namespace unn {
namespace core {

using geom::Vec2;

int MonteCarloPnn::RequiredSamples(int n, int k, double eps, double delta) {
  UNN_CHECK(eps > 0 && eps < 1 && delta > 0 && delta < 1);
  // |Q| = O(N^4) distinct query classes (Lemma 4.1), N = nk.
  double big_n = static_cast<double>(n) * std::max(k, 1);
  double log_q = 4.0 * std::log(std::max(big_n, 2.0));
  double s = (std::log(2.0 * n / delta) + log_q) / (2.0 * eps * eps);
  return static_cast<int>(std::ceil(s));
}

MonteCarloPnn::MonteCarloPnn(std::vector<UncertainPoint> points,
                             const MonteCarloPnnOptions& opts)
    : points_(std::move(points)), opts_(opts) {
  UNN_CHECK(!points_.empty());
  int n = static_cast<int>(points_.size());
  int k = 1;
  for (const auto& p : points_) {
    if (!p.is_disk()) k = std::max(k, static_cast<int>(p.sites().size()));
  }
  int s = opts_.s_override > 0
              ? opts_.s_override
              : RequiredSamples(n, k, opts_.eps, opts_.delta);
  std::mt19937_64 rng(opts_.seed);
  trees_.reserve(s);
  std::vector<Vec2> instance(n);
  for (int j = 0; j < s; ++j) {
    for (int i = 0; i < n; ++i) instance[i] = prob::SamplePoint(points_[i], rng);
    trees_.emplace_back(instance);
  }
}

std::vector<std::pair<int, double>> MonteCarloPnn::Query(Vec2 q) const {
  std::vector<int> counts(points_.size(), 0);
  for (const auto& tree : trees_) {
    int winner = tree.Nearest(q);
    if (winner >= 0) ++counts[winner];
  }
  std::vector<std::pair<int, double>> out;
  double s = static_cast<double>(trees_.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] > 0) out.push_back({static_cast<int>(i), counts[i] / s});
  }
  return out;
}

std::vector<std::vector<std::pair<int, double>>> MonteCarloPnn::QueryBatch(
    std::span<const Vec2> queries, spatial::BatchStats* stats) const {
  // One NearestBatch sweep per instantiation keeps each kd-tree hot for
  // the whole batch instead of touching all s trees per query, in
  // pack-coherent (Morton) order so every sweep's packs prune together —
  // one sort amortized over all s sweeps, scattered back per query.
  std::vector<int> order = spatial::PackCoherentOrder(queries);
  std::vector<Vec2> sorted(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) sorted[i] = queries[order[i]];
  std::vector<std::vector<int>> winners(
      trees_.size(), std::vector<int>(queries.size(), -1));
  for (size_t t = 0; t < trees_.size(); ++t) {
    trees_[t].NearestBatch(sorted, winners[t], {}, stats);
  }
  std::vector<std::vector<std::pair<int, double>>> out(queries.size());
  std::vector<int> counts;
  double s = static_cast<double>(trees_.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    counts.assign(points_.size(), 0);
    for (size_t t = 0; t < trees_.size(); ++t) {
      int winner = winners[t][i];
      if (winner >= 0) ++counts[winner];
    }
    std::vector<std::pair<int, double>>& dst = out[order[i]];
    for (size_t j = 0; j < counts.size(); ++j) {
      if (counts[j] > 0) dst.push_back({static_cast<int>(j), counts[j] / s});
    }
  }
  return out;
}

double MonteCarloPnn::QueryOne(Vec2 q, int i) const {
  for (const auto& [id, p] : Query(q)) {
    if (id == i) return p;
  }
  return 0.0;
}

}  // namespace core
}  // namespace unn
