#ifndef UNN_CORE_QUANT_TREE_H_
#define UNN_CORE_QUANT_TREE_H_

#include <functional>
#include <span>
#include <vector>

#include "core/uncertain_point.h"
#include "geom/vec2.h"
#include "spatial/batch.h"
#include "spatial/flat_tree.h"
#include "spatial/traverse.h"

/// \file quant_tree.h
/// The quantification index: a kd-style hierarchy over the support regions
/// of an uncertain point set, answering the three per-point quantification
/// primitives the serving layer's cross-shard merges consume — previously
/// O(n) linear scans per query — by branch-and-bound:
///
///   * MaxDistEnvelope(q)    — the two smallest Delta_i(q) = max-distance
///                             values plus the argmin (Lemma 2.1's pruning
///                             envelope), best-first search that prunes a
///                             subtree once its MaxDist lower bound cannot
///                             beat the running runner-up;
///   * LogSurvival(q, r)     — sum_i log(1 - G_{q,i}(r)), the log of the
///                             probability that every point is farther
///                             than r, visiting only points whose support
///                             intersects ball(q, r) (a disjoint support
///                             contributes factor 1 = log 0);
///   * ArgminPointwise(q, f) — argmin_i f(i) for any per-point value with
///                             f(i) >= delta_i(q) (e.g. the expected
///                             distance E[d(q, P_i)]), pruning subtrees
///                             whose min-distance lower bound exceeds the
///                             running best.
///
/// This is the practical stand-in for the Delta-based NN!=0 machinery of
/// Section 3 and the BBD/quadtree hierarchies reused by the follow-up
/// paper (*Nearest-Neighbor Searching Under Uncertainty II*): per-node
/// bounds come from a box over per-point anchors plus the min/max support
/// radius, so queries run in O(log n + output) on bounded-density inputs
/// while leaf evaluation stays exact (experiment E14 measures the
/// scaling against the scans side by side).
///
/// Exactness: the search only ever prunes with *valid lower bounds* and
/// evaluates surviving points with the same arithmetic as the linear
/// scans, so MaxDistEnvelope reproduces core::TwoSmallestMaxDist
/// bit-identically (including argmin tie-breaking toward the smaller id)
/// and ArgminPointwise reproduces the definition-level scan's argmin
/// exactly. LogSurvival accumulates the same per-point terms in leaf
/// visit order, so it matches a linear log-space scan up to
/// floating-point associativity (~1e-15 relative).
///
/// Thread safety: immutable after construction; every query method is
/// const, allocates only local state, and may be called concurrently.
/// The tree does NOT own the points — the vector passed at construction
/// must outlive it unchanged (unn::Engine guarantees this for its own
/// point set).

namespace unn {
namespace core {

/// Tracks whether every point in a subtree is a disk model, so the
/// quantification bounds know when the tighter all-disk lower bound
/// Delta_i(q) = d(q, center_i) + radius_i applies. A spatial augmentation
/// (see spatial/augment.h), composed with the min/max support radius.
class AllDiskAugment {
 public:
  AllDiskAugment() = default;
  explicit AllDiskAugment(const std::vector<UncertainPoint>* points)
      : points_(points) {}

  void Reserve(int nodes) { all_disk_.reserve(nodes); }
  void AddNode() { all_disk_.push_back(1); }
  void AbsorbRange(int node, const int* ids, int count) {
    bool all = all_disk_[node] != 0;
    for (int i = 0; i < count; ++i) all = all && (*points_)[ids[i]].is_disk();
    all_disk_[node] = all;
  }
  void Seal() { points_ = nullptr; }

  bool all_disk(int node) const { return all_disk_[node] != 0; }

 private:
  const std::vector<UncertainPoint>* points_ = nullptr;  ///< Build-only.
  std::vector<char> all_disk_;
};

class QuantTree {
 public:
  /// Per-query search-effort counters (caller-owned, so queries stay
  /// const and thread-safe). A sublinear query visits o(n) of each. Now
  /// the shared spatial::TraversalStats, so the traversal engines fill
  /// nodes_visited / leaves_scanned / prunes / heap_pushes and the obs
  /// profiler (obs/profile.h) can aggregate them; points_evaluated is
  /// still counted here, at actual per-point evaluations.
  using QueryStats = spatial::TraversalStats;

  /// Builds the hierarchy in O(n log n). `points` must outlive the tree.
  explicit QuantTree(const std::vector<UncertainPoint>* points);

  int size() const { return static_cast<int>(points_->size()); }

  /// The two smallest Delta_i(q) and the argmin — identical (bitwise,
  /// including ties toward the smaller id) to
  /// core::TwoSmallestMaxDist(*points, q). O(log n) on bounded-density
  /// inputs, O(n) worst case.
  DeltaEnvelope MaxDistEnvelope(geom::Vec2 q,
                                QueryStats* stats = nullptr) const;

  /// Batched MaxDistEnvelope: `out[i]` is bit-identical to
  /// `MaxDistEnvelope(queries[i])`, geom::kLaneWidth queries per shared
  /// best-first walk with SIMD bound evaluation. No scalar replay is
  /// ever needed: DeltaEnvelope::Insert is order-independent (argmin
  /// ties resolve toward the smaller id regardless of insertion order)
  /// and the per-lane prune is the scalar EnvelopePrunable over
  /// bit-identical bounds, so any sound traversal — scalar order or the
  /// pack's shared order — produces the same envelope.
  void MaxDistEnvelopeBatch(std::span<const geom::Vec2> queries,
                            std::span<DeltaEnvelope> out,
                            spatial::BatchStats* stats = nullptr) const;

  /// log prod_i (1 - G_{q,i}(r)) = sum_i log1p(-G_{q,i}(r)), accumulated
  /// in log space so products over 10^5+ points do not underflow;
  /// -infinity when some point is certainly within r. Only points whose
  /// support intersects ball(q, r) are evaluated. O(log n + k) for k
  /// intersecting supports.
  double LogSurvival(geom::Vec2 q, double r, QueryStats* stats = nullptr) const;

  /// Batched LogSurvival: `out[i]` is bit-identical to
  /// `LogSurvival(queries[i], radii[i])`. The ball prune is
  /// state-independent, so every lane's node sequence — and therefore
  /// its floating-point accumulation order — is exactly the scalar
  /// left-first walk; a lane that hits a certain point (-infinity) goes
  /// dead and skips the rest of its walk, which cannot change its
  /// answer. No scalar replay.
  void LogSurvivalBatch(std::span<const geom::Vec2> queries,
                        std::span<const double> radii, std::span<double> out,
                        spatial::BatchStats* stats = nullptr) const;

  /// The O(n) linear-scan oracle for LogSurvival: the same per-point
  /// terms accumulated in id order. The one definition tests and
  /// benchmarks verify the index against, kept here so the oracle and
  /// the index cannot drift apart.
  static double LogSurvivalScan(const std::vector<UncertainPoint>& points,
                                geom::Vec2 q, double r);

  /// argmin_i value(i) for a per-point quantity bounded below by the
  /// min-distance, value(i) >= delta_i(q) (ties toward the smaller id,
  /// like a definition-level scan). Prunes subtrees whose min-distance
  /// lower bound exceeds the best value seen, never pruning a potential
  /// minimizer, so the result matches the unpruned scan exactly — when
  /// the precondition holds exactly. A numerically *approximated* value
  /// (quadrature, accumulated rounding) may undershoot delta_i(q) by its
  /// error bound, in which case candidates within that margin of each
  /// other may resolve either way (the same near-tie caveat the
  /// expected-distance API already carries).
  int ArgminPointwise(geom::Vec2 q, const std::function<double(int)>& value,
                      QueryStats* stats = nullptr) const;

  /// Batched ArgminPointwise: `out[i]` is bit-identical to
  /// `ArgminPointwise(queries[i], value(., i))`. `slack` bounds how far
  /// `value(id, i)` may undershoot delta_id(queries[i]) (0 for exact
  /// values; the quadrature tolerance for expected distances). The pack
  /// prunes with a 2*slack guard band so no candidate the scalar walk
  /// could have reached is skipped, and any lane whose runner-up lands
  /// within that band of its minimum — where prune order can decide the
  /// argmin — replays the scalar query (spatial/batch.h idiom).
  void ArgminPointwiseBatch(std::span<const geom::Vec2> queries,
                            const std::function<double(int, int)>& value,
                            double slack, std::span<int> out,
                            spatial::BatchStats* stats = nullptr) const;

 private:
  using Augment = spatial::PairAugment<spatial::MinMaxAugment, AllDiskAugment>;

  /// Lower bound on min_{i in node} Delta_i(q); valid for mixed models.
  double MaxDistLowerBound(int node, geom::Vec2 q) const;
  /// Lower bound on min_{i in node} delta_i(q).
  double MinDistLowerBound(int node, geom::Vec2 q) const;

  const std::vector<UncertainPoint>* points_;
  /// Per-point anchor: a point of the support's convex hull (disk center
  /// / site centroid), so d(q, anchor) <= Delta_i(q) for every q.
  std::vector<geom::Vec2> anchors_;
  /// Per-point support radius: max distance from the anchor to the
  /// support, so Delta_i(q) <= d(q, anchor) + radius and
  /// delta_i(q) >= d(q, anchor) - radius.
  std::vector<double> radii_;
  /// Widest-axis kd-tree over the anchors (shared spatial core),
  /// augmented with min/max support radius and the all-disk flag.
  spatial::FlatKdTree<Augment> tree_;
};

}  // namespace core
}  // namespace unn

#endif  // UNN_CORE_QUANT_TREE_H_
