#ifndef UNN_PROB_DISTANCE_CDF_H_
#define UNN_PROB_DISTANCE_CDF_H_

#include "core/uncertain_point.h"
#include "geom/vec2.h"

/// \file distance_cdf.h
/// The distance distribution between a fixed query point q and an uncertain
/// point P (Section 1.1, Figure 1):
///   G_{q,P}(r) = Pr[d(q, P) <= r]   (cdf),
///   g_{q,P}(r) = d/dr G_{q,P}(r)    (pdf, continuous models).
/// For the uniform disk both are closed-form (circle-circle lens area and
/// its derivative); the truncated Gaussian uses adaptive radial quadrature;
/// discrete models sum location weights.

namespace unn {
namespace prob {

/// Area of the intersection of two disks with radii r1, r2 at center
/// distance d (the circular "lens").
double CircleIntersectionArea(double d, double r1, double r2);

/// G_{q,P}(r) for any supported model.
double DistanceCdf(const core::UncertainPoint& p, geom::Vec2 q, double r);

/// g_{q,P}(r); requires a continuous (disk) model.
double DistancePdf(const core::UncertainPoint& p, geom::Vec2 q, double r);

}  // namespace prob
}  // namespace unn

#endif  // UNN_PROB_DISTANCE_CDF_H_
