#include "prob/distance_cdf.h"

#include <algorithm>
#include <cmath>

#include "prob/quadrature.h"
#include "util/check.h"

namespace unn {
namespace prob {

using core::UncertainPoint;
using geom::Vec2;

double CircleIntersectionArea(double d, double r1, double r2) {
  if (d >= r1 + r2) return 0.0;
  double rmin = std::min(r1, r2);
  if (d <= std::abs(r1 - r2)) return M_PI * rmin * rmin;
  double a1 = std::clamp((d * d + r1 * r1 - r2 * r2) / (2.0 * d * r1), -1.0, 1.0);
  double a2 = std::clamp((d * d + r2 * r2 - r1 * r1) / (2.0 * d * r2), -1.0, 1.0);
  double t = (-d + r1 + r2) * (d + r1 - r2) * (d - r1 + r2) * (d + r1 + r2);
  return r1 * r1 * std::acos(a1) + r2 * r2 * std::acos(a2) -
         0.5 * std::sqrt(std::max(t, 0.0));
}

namespace {

double TruncatedGaussianCdf(Vec2 q, Vec2 c, double radius, double r) {
  double d = Dist(q, c);
  if (r <= std::max(d - radius, 0.0)) return 0.0;
  if (r >= d + radius) return 1.0;
  double sigma = radius / 2.0;
  double s2 = 2.0 * sigma * sigma;
  // Normalizer over the truncated disk.
  double z = M_PI * s2 * (1.0 - std::exp(-radius * radius / s2));
  // Radial decomposition about c. The rho-circle is entirely inside D(q, r)
  // for rho <= r - d (closed form), partially inside on [|d-r|, d+r]
  // (quadrature restricted to that band — integrating over [0, radius]
  // blindly lets adaptive Simpson miss a narrow band entirely), and outside
  // beyond.
  double full_hi = std::clamp(r - d, 0.0, radius);
  double full = full_hi > 0
                    ? M_PI * s2 * (1.0 - std::exp(-full_hi * full_hi / s2))
                    : 0.0;
  double band_lo = std::clamp(std::abs(d - r), 0.0, radius);
  double band_hi = std::clamp(d + r, 0.0, radius);
  double band = 0.0;
  if (band_hi > band_lo && d > 0) {
    auto frac_inside = [&](double rho) {
      if (rho + d <= r) return 1.0;
      if (rho >= d + r || rho <= d - r) return 0.0;
      double u = std::clamp((d * d + rho * rho - r * r) / (2.0 * d * rho),
                            -1.0, 1.0);
      return std::acos(u) / M_PI;
    };
    band = 2.0 * M_PI *
           AdaptiveSimpson(
               [&](double rho) {
                 return std::exp(-rho * rho / s2) * rho * frac_inside(rho);
               },
               band_lo, band_hi, 1e-12);
  }
  return std::clamp((full + band) / z, 0.0, 1.0);
}

double TruncatedGaussianPdf(Vec2 q, Vec2 c, double radius, double r) {
  // Central difference of the cdf: accurate enough for estimation and
  // plotting (the analytic form involves Bessel-type arc integrals).
  double h = std::max(1e-6 * radius, 1e-9);
  return (TruncatedGaussianCdf(q, c, radius, r + h) -
          TruncatedGaussianCdf(q, c, radius, std::max(r - h, 0.0))) /
         (r + h - std::max(r - h, 0.0));
}

}  // namespace

double DistanceCdf(const UncertainPoint& p, Vec2 q, double r) {
  if (r < 0) return 0.0;
  if (!p.is_disk()) {
    double acc = 0;
    for (size_t i = 0; i < p.sites().size(); ++i) {
      if (Dist(q, p.sites()[i]) <= r) acc += p.weights()[i];
    }
    return std::min(acc, 1.0);
  }
  double d = Dist(q, p.center());
  double radius = p.radius();
  switch (p.pdf()) {
    case core::DiskPdf::kUniform:
      return std::clamp(
          CircleIntersectionArea(d, r, radius) / (M_PI * radius * radius), 0.0,
          1.0);
    case core::DiskPdf::kTruncatedGaussian:
      return TruncatedGaussianCdf(q, p.center(), radius, r);
  }
  return 0.0;
}

double DistancePdf(const UncertainPoint& p, Vec2 q, double r) {
  UNN_CHECK_MSG(p.is_disk(), "DistancePdf requires a continuous model");
  if (r <= 0) return 0.0;
  double d = Dist(q, p.center());
  double radius = p.radius();
  if (r <= std::max(d - radius, 0.0) || r >= d + radius) return 0.0;
  switch (p.pdf()) {
    case core::DiskPdf::kUniform: {
      // Arc of circle(q, r) inside the disk: length 2*alpha*r.
      double alpha;
      if (r + d <= radius) {
        alpha = M_PI;  // Whole circle inside.
      } else {
        alpha = std::acos(std::clamp(
            (d * d + r * r - radius * radius) / (2.0 * d * r), -1.0, 1.0));
      }
      return 2.0 * alpha * r / (M_PI * radius * radius);
    }
    case core::DiskPdf::kTruncatedGaussian:
      return TruncatedGaussianPdf(q, p.center(), radius, r);
  }
  return 0.0;
}

}  // namespace prob
}  // namespace unn
