#ifndef UNN_PROB_QUADRATURE_H_
#define UNN_PROB_QUADRATURE_H_

#include <functional>

/// \file quadrature.h
/// Adaptive Simpson quadrature, used by the truncated-Gaussian distance cdf
/// and by the [CKP04]-style numerical-integration baseline for Eq. (1).

namespace unn {
namespace prob {

/// Integrates f over [a, b] to absolute tolerance `tol` (adaptive Simpson,
/// depth-limited).
double AdaptiveSimpson(const std::function<double(double)>& f, double a,
                       double b, double tol = 1e-9, int max_depth = 28);

}  // namespace prob
}  // namespace unn

#endif  // UNN_PROB_QUADRATURE_H_
