#include "prob/distributions.h"

#include <algorithm>
#include <cmath>

#include "geom/trig.h"
#include "util/check.h"

namespace unn {
namespace prob {

using geom::Vec2;

Vec2 SampleUniformDisk(std::mt19937_64& rng, Vec2 center, double radius) {
  std::uniform_real_distribution<double> u(0.0, 1.0);
  double r = radius * std::sqrt(u(rng));
  double t = geom::kTwoPi * u(rng);
  return center + geom::UnitVec(t) * r;
}

Vec2 SampleTruncatedGaussian(std::mt19937_64& rng, Vec2 center,
                             double radius) {
  std::normal_distribution<double> g(0.0, radius / 2.0);
  for (int attempt = 0; attempt < 1000; ++attempt) {
    Vec2 d{g(rng), g(rng)};
    if (NormSq(d) <= radius * radius) return center + d;
  }
  return center;  // Astronomically unlikely; center is always valid.
}

DiscreteSampler::DiscreteSampler(std::vector<double> weights) {
  UNN_CHECK(!weights.empty());
  cumulative_.reserve(weights.size());
  double acc = 0;
  for (double w : weights) {
    acc += w;
    cumulative_.push_back(acc);
  }
  UNN_CHECK(acc > 0);
  cumulative_.back() = std::max(cumulative_.back(), 1.0);
}

int DiscreteSampler::Sample(std::mt19937_64& rng) const {
  std::uniform_real_distribution<double> u(0.0, 1.0);
  double x = u(rng) * cumulative_.back();
  auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), x);
  return static_cast<int>(std::min<size_t>(it - cumulative_.begin(),
                                           cumulative_.size() - 1));
}

Vec2 SamplePoint(const core::UncertainPoint& p, std::mt19937_64& rng) {
  if (p.is_disk()) {
    switch (p.pdf()) {
      case core::DiskPdf::kUniform:
        return SampleUniformDisk(rng, p.center(), p.radius());
      case core::DiskPdf::kTruncatedGaussian:
        return SampleTruncatedGaussian(rng, p.center(), p.radius());
    }
  }
  // Discrete: linear CDF walk (k is small; heavy users should hold a
  // DiscreteSampler).
  std::uniform_real_distribution<double> u(0.0, 1.0);
  double x = u(rng);
  double acc = 0;
  const auto& w = p.weights();
  for (size_t i = 0; i < w.size(); ++i) {
    acc += w[i];
    if (x <= acc) return p.sites()[i];
  }
  return p.sites().back();
}

core::UncertainPoint DiscretizeBySampling(const core::UncertainPoint& p,
                                          int count, std::mt19937_64& rng) {
  UNN_CHECK(count > 0);
  std::vector<Vec2> sites;
  sites.reserve(count);
  for (int i = 0; i < count; ++i) sites.push_back(SamplePoint(p, rng));
  return core::UncertainPoint::DiscreteUniform(std::move(sites));
}

}  // namespace prob
}  // namespace unn
