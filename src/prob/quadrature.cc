#include "prob/quadrature.h"

#include <cmath>

namespace unn {
namespace prob {
namespace {

double Recurse(const std::function<double(double)>& f, double a, double b,
               double fa, double fm, double fb, double whole, double tol,
               int depth) {
  double m = 0.5 * (a + b);
  double lm = 0.5 * (a + m);
  double rm = 0.5 * (m + b);
  double flm = f(lm);
  double frm = f(rm);
  double left = (m - a) / 6.0 * (fa + 4.0 * flm + fm);
  double right = (b - m) / 6.0 * (fm + 4.0 * frm + fb);
  double delta = left + right - whole;
  if (depth <= 0 || std::abs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;
  }
  return Recurse(f, a, m, fa, flm, fm, left, tol * 0.5, depth - 1) +
         Recurse(f, m, b, fm, frm, fb, right, tol * 0.5, depth - 1);
}

}  // namespace

double AdaptiveSimpson(const std::function<double(double)>& f, double a,
                       double b, double tol, int max_depth) {
  if (!(b > a)) return 0.0;
  double fa = f(a);
  double fb = f(b);
  double fm = f(0.5 * (a + b));
  double whole = (b - a) / 6.0 * (fa + 4.0 * fm + fb);
  return Recurse(f, a, b, fa, fm, fb, whole, tol, max_depth);
}

}  // namespace prob
}  // namespace unn
