#ifndef UNN_PROB_DISTRIBUTIONS_H_
#define UNN_PROB_DISTRIBUTIONS_H_

#include <random>
#include <vector>

#include "core/uncertain_point.h"
#include "geom/vec2.h"

/// \file distributions.h
/// Sampling from the location distributions of uncertain points: the O(1)
/// instantiation primitive assumed by Theorem 4.5 and used throughout the
/// Monte-Carlo machinery of Section 4.2.

namespace unn {
namespace prob {

/// Uniform sample from the disk (center, radius).
geom::Vec2 SampleUniformDisk(std::mt19937_64& rng, geom::Vec2 center,
                             double radius);

/// Sample from an isotropic Gaussian with sigma = radius / 2, truncated to
/// the disk (rejection; acceptance ~ 0.86).
geom::Vec2 SampleTruncatedGaussian(std::mt19937_64& rng, geom::Vec2 center,
                                   double radius);

/// O(log k) weighted sampling from a fixed discrete distribution.
class DiscreteSampler {
 public:
  explicit DiscreteSampler(std::vector<double> weights);
  int Sample(std::mt19937_64& rng) const;

 private:
  std::vector<double> cumulative_;
};

/// One random instantiation of an uncertain point (dispatches on its model).
geom::Vec2 SamplePoint(const core::UncertainPoint& p, std::mt19937_64& rng);

/// Draws `count` i.i.d. samples from `p`'s distribution and wraps them as a
/// discrete uncertain point with uniform location probabilities — the
/// continuous-to-discrete reduction of Theorem 4.5 (sample size k(alpha)).
core::UncertainPoint DiscretizeBySampling(const core::UncertainPoint& p,
                                          int count, std::mt19937_64& rng);

}  // namespace prob
}  // namespace unn

#endif  // UNN_PROB_DISTRIBUTIONS_H_
