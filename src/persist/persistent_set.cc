#include "persist/persistent_set.h"

#include "util/check.h"

namespace unn {
namespace persist {

namespace {
constexpr int32_t kNil = -1;

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

PersistentSet::PersistentSet() : rng_state_(0xabcdef1234567890ULL) {
  roots_.push_back(kNil);  // Version 0: empty set.
}

int32_t PersistentSet::NewNode(int key) {
  Node n;
  n.key = key;
  n.prio = static_cast<uint32_t>(SplitMix64(&rng_state_));
  n.left = kNil;
  n.right = kNil;
  n.size = 1;
  nodes_.push_back(n);
  return static_cast<int32_t>(nodes_.size()) - 1;
}

int32_t PersistentSet::CopyNode(int32_t n) {
  nodes_.push_back(nodes_[n]);
  return static_cast<int32_t>(nodes_.size()) - 1;
}

void PersistentSet::Pull(int32_t n) {
  nodes_[n].size = 1 + SizeOf(nodes_[n].left) + SizeOf(nodes_[n].right);
}

void PersistentSet::Split(int32_t n, int key, int32_t* l, int32_t* r,
                          bool* found) {
  if (n == kNil) {
    *l = kNil;
    *r = kNil;
    return;
  }
  if (nodes_[n].key == key) {
    // Drop this node; its children are already proper splits.
    *found = true;
    *l = nodes_[n].left;
    *r = nodes_[n].right;
    return;
  }
  int32_t c = CopyNode(n);
  if (key < nodes_[n].key) {
    int32_t sub_l, sub_r;
    Split(nodes_[n].left, key, &sub_l, &sub_r, found);
    nodes_[c].left = sub_r;
    Pull(c);
    *l = sub_l;
    *r = c;
  } else {
    int32_t sub_l, sub_r;
    Split(nodes_[n].right, key, &sub_l, &sub_r, found);
    nodes_[c].right = sub_l;
    Pull(c);
    *l = c;
    *r = sub_r;
  }
}

int32_t PersistentSet::Merge(int32_t a, int32_t b) {
  if (a == kNil) return b;
  if (b == kNil) return a;
  if (nodes_[a].prio > nodes_[b].prio) {
    int32_t c = CopyNode(a);
    nodes_[c].right = Merge(nodes_[a].right, b);
    Pull(c);
    return c;
  }
  int32_t c = CopyNode(b);
  nodes_[c].left = Merge(a, nodes_[b].left);
  Pull(c);
  return c;
}

Version PersistentSet::Insert(Version v, int key) {
  UNN_CHECK(v >= 0 && v < NumVersions());
  if (Contains(v, key)) return v;
  int32_t l, r;
  bool found = false;
  Split(roots_[v], key, &l, &r, &found);
  int32_t root = Merge(Merge(l, NewNode(key)), r);
  roots_.push_back(root);
  return static_cast<Version>(roots_.size()) - 1;
}

Version PersistentSet::Erase(Version v, int key) {
  UNN_CHECK(v >= 0 && v < NumVersions());
  if (!Contains(v, key)) return v;
  int32_t l, r;
  bool found = false;
  Split(roots_[v], key, &l, &r, &found);
  UNN_DCHECK(found);
  int32_t root = Merge(l, r);
  roots_.push_back(root);
  return static_cast<Version>(roots_.size()) - 1;
}

Version PersistentSet::Toggle(Version v, int key) {
  return Contains(v, key) ? Erase(v, key) : Insert(v, key);
}

bool PersistentSet::Contains(Version v, int key) const {
  UNN_CHECK(v >= 0 && v < NumVersions());
  int32_t n = roots_[v];
  while (n != kNil) {
    if (nodes_[n].key == key) return true;
    n = key < nodes_[n].key ? nodes_[n].left : nodes_[n].right;
  }
  return false;
}

void PersistentSet::Collect(int32_t n, std::vector<int>* out) const {
  if (n == kNil) return;
  Collect(nodes_[n].left, out);
  out->push_back(nodes_[n].key);
  Collect(nodes_[n].right, out);
}

std::vector<int> PersistentSet::Items(Version v) const {
  UNN_CHECK(v >= 0 && v < NumVersions());
  std::vector<int> out;
  out.reserve(Size(v));
  Collect(roots_[v], &out);
  return out;
}

int PersistentSet::Size(Version v) const {
  UNN_CHECK(v >= 0 && v < NumVersions());
  return SizeOf(roots_[v]);
}

}  // namespace persist
}  // namespace unn
