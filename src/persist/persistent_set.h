#ifndef UNN_PERSIST_PERSISTENT_SET_H_
#define UNN_PERSIST_PERSISTENT_SET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

/// \file persistent_set.h
/// A partially persistent ordered set of ints, implemented as a
/// path-copying treap. This is the [DSST89] technique the paper uses to
/// store the label set P_phi of every face of the nonzero Voronoi diagram in
/// O(1) amortized extra space per face: adjacent faces differ by a single
/// toggle (|P_phi xor P_phi'| = 1), so each face's set is a new version
/// derived from a neighbor at O(log n) node copies.

namespace unn {
namespace persist {

/// Version handle. Version 0 always exists and is the empty set.
using Version = int32_t;

class PersistentSet {
 public:
  PersistentSet();

  /// New version equal to `v` with `key` inserted (no-op copy-free result if
  /// already present: returns `v` itself).
  Version Insert(Version v, int key);

  /// New version equal to `v` with `key` removed (returns `v` if absent).
  Version Erase(Version v, int key);

  /// New version with `key`'s membership flipped.
  Version Toggle(Version v, int key);

  bool Contains(Version v, int key) const;

  /// Elements of version `v` in increasing order, O(size) time.
  std::vector<int> Items(Version v) const;

  int Size(Version v) const;

  /// Number of versions created so far (>= 1).
  int NumVersions() const { return static_cast<int>(roots_.size()); }

  /// Total pool nodes allocated across all versions — the O(mu) space
  /// accounting of Theorem 2.11.
  size_t NumNodes() const { return nodes_.size(); }

 private:
  struct Node {
    int key;
    uint32_t prio;
    int32_t left;
    int32_t right;
    int32_t size;
  };

  int32_t CopyNode(int32_t n);
  int32_t NewNode(int key);
  int32_t SizeOf(int32_t n) const { return n < 0 ? 0 : nodes_[n].size; }
  void Pull(int32_t n);
  /// Splits subtree `n` into keys < key and keys > key; sets *found if the
  /// key itself was present (its node is dropped).
  void Split(int32_t n, int key, int32_t* l, int32_t* r, bool* found);
  int32_t Merge(int32_t a, int32_t b);
  void Collect(int32_t n, std::vector<int>* out) const;

  std::vector<Node> nodes_;
  std::vector<int32_t> roots_;
  uint64_t rng_state_;
};

}  // namespace persist
}  // namespace unn

#endif  // UNN_PERSIST_PERSISTENT_SET_H_
