#ifndef UNN_UTIL_NUMA_H_
#define UNN_UTIL_NUMA_H_

#include <string>
#include <vector>

/// \file numa.h
/// Minimal NUMA topology probe and thread placement with no libnuma
/// dependency: topology comes from /sys/devices/system/node (Linux) and
/// placement from pthread affinity. On single-node machines — and on any
/// platform without the sysfs tree — DetectNumaTopology() reports one
/// node holding every online CPU and the placement call sites skip
/// pinning entirely, so NUMA-aware configurations behave identically to
/// NUMA-oblivious ones there (the off-by-default contract of
/// docs/ARCHITECTURE.md, "NUMA-aware placement"). Placement is always a
/// hint: a failed pin leaves the thread on its inherited affinity and is
/// never an error, because placement can only change memory locality,
/// never arithmetic.

namespace unn {
namespace util {

struct NumaTopology {
  /// node_cpus[n] = sorted online CPU ids of the n-th NUMA node that has
  /// CPUs (memory-only nodes are dropped). Never empty: the fallback is
  /// one node holding every online CPU.
  std::vector<std::vector<int>> node_cpus;

  int num_nodes() const { return static_cast<int>(node_cpus.size()); }
};

/// Probes /sys/devices/system/node/{online,node*/cpulist}. Fallback (no
/// sysfs, non-Linux, or unparseable contents): one node with CPUs
/// 0 .. hardware_concurrency-1. Deterministic for a fixed machine; never
/// fails.
NumaTopology DetectNumaTopology();

/// Parses a sysfs cpulist string ("0-3,8,10-11") into sorted, deduplicated
/// CPU ids. Returns empty on malformed input. Exposed for tests.
std::vector<int> ParseCpuList(const std::string& text);

/// Pins the calling thread to the given CPUs. Returns true on success;
/// false (leaving the affinity untouched) on an empty list, an
/// out-of-range CPU id, unsupported platforms, or kernel rejection —
/// callers treat placement as a hint, never a correctness requirement.
bool PinCurrentThreadToCpus(const std::vector<int>& cpus);

/// The calling thread's current allowed-CPU set, for scoping a temporary
/// pin (save, pin, work, restore — ShardedEngine's first-touch shard
/// builds). Empty when the platform cannot report it.
std::vector<int> CurrentThreadCpus();

}  // namespace util
}  // namespace unn

#endif  // UNN_UTIL_NUMA_H_
