#include "util/numa.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <string_view>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace unn {
namespace util {

namespace {

bool ParseNonNegativeInt(std::string_view s, int* out) {
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc() && ptr == last && *out >= 0;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\n' ||
          s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

std::string ReadFirstLine(const std::string& path) {
  std::ifstream f(path);
  std::string line;
  if (f.is_open()) std::getline(f, line);
  return line;
}

}  // namespace

std::vector<int> ParseCpuList(const std::string& text) {
  std::vector<int> cpus;
  std::string_view rest = Trim(text);
  while (!rest.empty()) {
    size_t comma = rest.find(',');
    std::string_view token = Trim(rest.substr(0, comma));
    rest = comma == std::string_view::npos ? std::string_view()
                                           : rest.substr(comma + 1);
    if (token.empty()) return {};
    size_t dash = token.find('-');
    int lo = 0;
    int hi = 0;
    if (dash == std::string_view::npos) {
      if (!ParseNonNegativeInt(token, &lo)) return {};
      hi = lo;
    } else {
      if (!ParseNonNegativeInt(token.substr(0, dash), &lo) ||
          !ParseNonNegativeInt(token.substr(dash + 1), &hi) || hi < lo) {
        return {};
      }
    }
    for (int c = lo; c <= hi; ++c) cpus.push_back(c);
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

NumaTopology DetectNumaTopology() {
  NumaTopology topo;
#if defined(__linux__)
  // `online` lists node ids in the same range syntax as a cpulist, which
  // also covers sparse numbering (node0, node2, ...).
  const std::string root = "/sys/devices/system/node/";
  for (int n : ParseCpuList(ReadFirstLine(root + "online"))) {
    std::vector<int> cpus =
        ParseCpuList(ReadFirstLine(root + "node" + std::to_string(n) +
                                   "/cpulist"));
    if (!cpus.empty()) topo.node_cpus.push_back(std::move(cpus));
  }
#endif
  if (topo.node_cpus.empty()) {
    int n = static_cast<int>(std::thread::hardware_concurrency());
    if (n <= 0) n = 1;
    std::vector<int> all(n);
    for (int c = 0; c < n; ++c) all[c] = c;
    topo.node_cpus.push_back(std::move(all));
  }
  return topo;
}

bool PinCurrentThreadToCpus(const std::vector<int>& cpus) {
  if (cpus.empty()) return false;
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  for (int c : cpus) {
    if (c < 0 || c >= CPU_SETSIZE) return false;
    CPU_SET(c, &set);
  }
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  return false;
#endif
}

std::vector<int> CurrentThreadCpus() {
  std::vector<int> cpus;
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (pthread_getaffinity_np(pthread_self(), sizeof(set), &set) == 0) {
    for (int c = 0; c < CPU_SETSIZE; ++c) {
      if (CPU_ISSET(c, &set)) cpus.push_back(c);
    }
  }
#endif
  return cpus;
}

}  // namespace util
}  // namespace unn
