#ifndef UNN_UTIL_THREAD_ANNOTATIONS_H_
#define UNN_UTIL_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

/// \file thread_annotations.h
/// Clang thread-safety (capability) annotations and the annotated lock types
/// the rest of the library must use. Under clang the macros expand to the
/// capability attributes checked by -Wthread-safety; under every other
/// compiler they expand to nothing, so gcc builds see plain std primitives.
///
/// The project rule (enforced by scripts/lint_invariants.py) is that no file
/// outside this header names std::mutex / std::shared_mutex / std::lock_guard
/// etc. directly: shared state is guarded by unn::Mutex or unn::SharedMutex,
/// fields carry UNN_GUARDED_BY(mu_), and functions that expect the caller to
/// hold a lock carry UNN_REQUIRES(mu_). See docs/STATIC_ANALYSIS.md.

#if defined(__clang__) && defined(__has_attribute)
#define UNN_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define UNN_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op outside clang
#endif

#define UNN_CAPABILITY(x) UNN_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

#define UNN_SCOPED_CAPABILITY UNN_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

#define UNN_GUARDED_BY(x) UNN_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

#define UNN_PT_GUARDED_BY(x) UNN_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

#define UNN_ACQUIRED_BEFORE(...) \
  UNN_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))

#define UNN_ACQUIRED_AFTER(...) \
  UNN_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

#define UNN_REQUIRES(...) \
  UNN_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

#define UNN_REQUIRES_SHARED(...) \
  UNN_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

#define UNN_ACQUIRE(...) \
  UNN_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

#define UNN_ACQUIRE_SHARED(...) \
  UNN_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

#define UNN_RELEASE(...) \
  UNN_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

#define UNN_RELEASE_SHARED(...) \
  UNN_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

#define UNN_TRY_ACQUIRE(...) \
  UNN_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

#define UNN_EXCLUDES(...) \
  UNN_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

#define UNN_ASSERT_CAPABILITY(x) \
  UNN_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

#define UNN_RETURN_CAPABILITY(x) UNN_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

#define UNN_NO_THREAD_SAFETY_ANALYSIS \
  UNN_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

namespace unn {

/// Exclusive mutex carrying the "mutex" capability. Also satisfies
/// BasicLockable (lowercase lock/unlock) so std::condition_variable_any can
/// wait on it; those aliases carry the same acquire/release attributes.
class UNN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() UNN_ACQUIRE() { mu_.lock(); }
  void Unlock() UNN_RELEASE() { mu_.unlock(); }
  bool TryLock() UNN_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // BasicLockable spelling for std::condition_variable_any.
  void lock() UNN_ACQUIRE() { mu_.lock(); }
  void unlock() UNN_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// Shared (reader/writer) mutex. Exclusive side via Lock/Unlock, shared side
/// via LockShared/UnlockShared.
class UNN_CAPABILITY("mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() UNN_ACQUIRE() { mu_.lock(); }
  void Unlock() UNN_RELEASE() { mu_.unlock(); }
  void LockShared() UNN_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() UNN_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over Mutex (std::lock_guard replacement).
class UNN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) UNN_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() UNN_RELEASE() { mu_->Unlock(); }

 private:
  Mutex* const mu_;
};

/// RAII shared lock over SharedMutex (std::shared_lock replacement).
class UNN_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) UNN_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;
  ~ReaderMutexLock() UNN_RELEASE() { mu_->UnlockShared(); }

 private:
  SharedMutex* const mu_;
};

/// RAII exclusive lock over SharedMutex (std::unique_lock replacement).
class UNN_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) UNN_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;
  ~WriterMutexLock() UNN_RELEASE() { mu_->Unlock(); }

 private:
  SharedMutex* const mu_;
};

/// Condition variable usable with unn::Mutex. Wait() requires the mutex to
/// be held; the transient unlock/relock inside the std wait happens in a
/// system header, which the analysis does not look into, so the capability
/// is correctly considered held across the call at every caller. Predicate
/// waits are deliberately absent: a predicate lambda is analyzed as a
/// separate function with no capabilities, so callers spell the guarded
/// condition in an explicit `while (!cond) cv.Wait(mu);` loop instead.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) UNN_REQUIRES(mu) { cv_.wait(mu); }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace unn

#endif  // UNN_UTIL_THREAD_ANNOTATIONS_H_
