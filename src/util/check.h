#ifndef UNN_UTIL_CHECK_H_
#define UNN_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file check.h
/// Invariant-checking macros. The library does not use exceptions (per the
/// project style); violated invariants are programming errors and abort with
/// a source location. UNN_CHECK is active in all build types; UNN_DCHECK
/// only in debug builds.

#define UNN_CHECK(cond)                                                      \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "UNN_CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define UNN_CHECK_MSG(cond, msg)                                             \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "UNN_CHECK failed at %s:%d: %s (%s)\n", __FILE__, \
                   __LINE__, #cond, msg);                                    \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define UNN_DCHECK(cond) ((void)0)
#else
#define UNN_DCHECK(cond) UNN_CHECK(cond)
#endif

#endif  // UNN_UTIL_CHECK_H_
