# Negative-test driver, run in cmake -P script mode by ctest.
#
# Two modes, selected by -DMODE=:
#
#   annotation  The case is a thread-safety-annotation misuse. The driver
#               first compiles the case with -DUNN_CLEAN (the corrected
#               variant embedded in the same file) and requires SUCCESS —
#               this proves the scaffolding compiles on any toolchain. Then,
#               iff THREAD_SAFETY=1 (i.e. the configured compiler is clang),
#               it compiles the uncorrected variant under -Wthread-safety
#               -Wthread-safety-beta -Werror and requires FAILURE whose
#               diagnostics contain the `// EXPECT-FAIL:` substring declared
#               in the case file. Under gcc the second half is skipped: the
#               annotations expand to nothing there by design.
#
#   lint        The case is a project-invariant violation. The driver runs
#               scripts/lint_invariants.py on it and requires a nonzero exit
#               whose output contains the `// EXPECT-LINT:` substring.
#
# Required -D variables:
#   CASE         absolute path to the .cc.fail case file
#   MODE         annotation | lint
# annotation mode:
#   CXX          compiler to drive
#   THREAD_SAFETY  1 when CXX is clang (enables the must-fail half)
#   INCLUDE_DIR  repo src/ dir (cases include "util/thread_annotations.h")
# lint mode:
#   PYTHON       python3 interpreter
#   LINTER       path to scripts/lint_invariants.py

foreach(var CASE MODE)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "compile_fail_driver: -D${var}= is required")
  endif()
endforeach()

file(READ "${CASE}" case_source)

if(MODE STREQUAL "annotation")
  string(REGEX MATCH "// EXPECT-FAIL: ([^\n]*)" _ "${case_source}")
  if(NOT CMAKE_MATCH_1)
    message(FATAL_ERROR "${CASE}: missing '// EXPECT-FAIL: <substring>' marker")
  endif()
  string(STRIP "${CMAKE_MATCH_1}" expect)

  # Half 1: the corrected (UNN_CLEAN) variant must compile on any compiler.
  execute_process(
    COMMAND "${CXX}" -std=c++20 -fsyntax-only -DUNN_CLEAN
            "-I${INCLUDE_DIR}" -x c++ "${CASE}"
    RESULT_VARIABLE clean_rc
    OUTPUT_VARIABLE clean_out
    ERROR_VARIABLE clean_out)
  if(NOT clean_rc EQUAL 0)
    message(FATAL_ERROR
      "${CASE}: UNN_CLEAN variant FAILED to compile — the case scaffolding "
      "is broken, not the annotation check:\n${clean_out}")
  endif()

  if(NOT THREAD_SAFETY)
    message(STATUS
      "${CASE}: clean variant OK; must-fail half skipped (compiler is not "
      "clang, annotations are no-ops)")
    return()
  endif()

  # Half 2 (clang only): the misuse variant must be rejected with the
  # expected thread-safety diagnostic.
  execute_process(
    COMMAND "${CXX}" -std=c++20 -fsyntax-only
            -Wthread-safety -Wthread-safety-beta -Werror
            "-I${INCLUDE_DIR}" -x c++ "${CASE}"
    RESULT_VARIABLE fail_rc
    OUTPUT_VARIABLE fail_out
    ERROR_VARIABLE fail_out)
  if(fail_rc EQUAL 0)
    message(FATAL_ERROR
      "${CASE}: misuse variant COMPILED — thread-safety analysis did not "
      "reject it (expected diagnostic containing '${expect}')")
  endif()
  string(FIND "${fail_out}" "${expect}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
      "${CASE}: misuse variant failed, but not with the expected diagnostic "
      "'${expect}'. Actual output:\n${fail_out}")
  endif()
  message(STATUS "${CASE}: clean variant OK, misuse rejected with '${expect}'")

elseif(MODE STREQUAL "lint")
  string(REGEX MATCH "// EXPECT-LINT: ([^\n]*)" _ "${case_source}")
  if(NOT CMAKE_MATCH_1)
    message(FATAL_ERROR "${CASE}: missing '// EXPECT-LINT: <substring>' marker")
  endif()
  string(STRIP "${CMAKE_MATCH_1}" expect)

  execute_process(
    COMMAND "${PYTHON}" "${LINTER}" "${CASE}"
    RESULT_VARIABLE lint_rc
    OUTPUT_VARIABLE lint_out
    ERROR_VARIABLE lint_out)
  if(lint_rc EQUAL 0)
    message(FATAL_ERROR
      "${CASE}: lint_invariants.py accepted it — expected a violation "
      "containing '${expect}'")
  endif()
  string(FIND "${lint_out}" "${expect}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
      "${CASE}: linter failed, but without the expected rule '${expect}'. "
      "Actual output:\n${lint_out}")
  endif()
  message(STATUS "${CASE}: rejected by linter with '${expect}'")

else()
  message(FATAL_ERROR "compile_fail_driver: unknown MODE '${MODE}'")
endif()
