#!/usr/bin/env python3
"""Check that markdown links resolve (no network access).

For every `[text](target)` in the given files:
  * `http(s)://...` targets are skipped (checking them needs a network);
  * `#anchor` targets must match a heading slug in the same file;
  * relative paths (optionally with `#fragment`, which is not checked in
    the target file) must exist relative to the containing file.

Exit status is the number of broken links (0 = all good).

Usage: check_markdown_links.py FILE.md [FILE.md ...]
"""

import pathlib
import re
import sys

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
FENCE_RE = re.compile(r"^\s*```")


def github_slug(heading):
    """GitHub's anchor slug: lowercase, drop punctuation, spaces to dashes."""
    slug = heading.strip().lower()
    slug = re.sub(r"[^\w\- ]", "", slug, flags=re.UNICODE)
    return slug.replace(" ", "-")


def check_file(path):
    text = path.read_text()
    slugs = set()
    in_fence = False
    for line in text.splitlines():
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if m:
            slugs.add(github_slug(m.group(1)))

    errors = []
    for m in LINK_RE.finditer(text):
        target = m.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            if target[1:].lower() not in slugs:
                errors.append(f"{path}: broken anchor {target}")
            continue
        rel = target.split("#", 1)[0]
        if not rel:
            continue
        if not (path.parent / rel).exists():
            errors.append(f"{path}: broken link {target}")
    return errors


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    errors = []
    for name in sys.argv[1:]:
        errors.extend(check_file(pathlib.Path(name)))
    for e in errors:
        print(e, file=sys.stderr)
    checked = len(sys.argv) - 1
    print(f"check_markdown_links: {checked} file(s), {len(errors)} broken")
    return min(len(errors), 125)


if __name__ == "__main__":
    sys.exit(main())
