#!/usr/bin/env python3
"""clang-tidy gate: run the curated .clang-tidy over every src/ TU and
enforce the NOLINT suppression budget.

Two phases:
  1. Budget check (no compiler needed): scan src/ for inline NOLINT /
     NOLINTNEXTLINE markers and compare per-check counts against
     .clang-tidy-budget.json. Bare NOLINT without a (check-name) is always
     a violation — suppressions must name what they suppress.
  2. clang-tidy run over the .cc files listed in compile_commands.json
     that live under src/, warnings-as-errors (the .clang-tidy config sets
     WarningsAsErrors: '*'), parallelized across cores.

Usage:
  scripts/run_clang_tidy.py -p build               # full gate
  scripts/run_clang_tidy.py --budget-only          # phase 1 only (no clang)

Exit status 0 iff both phases pass.
"""

from __future__ import annotations

import argparse
import collections
import concurrent.futures
import json
import os
import pathlib
import re
import shutil
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"
BUDGET_FILE = REPO_ROOT / ".clang-tidy-budget.json"

NOLINT_RE = re.compile(r"//\s*NOLINT(NEXTLINE|BEGIN|END)?\s*(\(([^)]*)\))?")


def check_budget() -> int:
    budgets = json.loads(BUDGET_FILE.read_text())["budgets"]
    actual: collections.Counter[str] = collections.Counter()
    problems: list[str] = []
    for path in sorted(SRC_ROOT.rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        rel = path.relative_to(REPO_ROOT)
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            for m in NOLINT_RE.finditer(line):
                names = (m.group(3) or "").strip()
                if not names:
                    problems.append(
                        f"{rel}:{lineno}: bare NOLINT — name the check(s) "
                        "being suppressed, e.g. NOLINT(bugprone-foo)")
                    continue
                for name in names.split(","):
                    actual[name.strip()] += 1
    for check, count in sorted(actual.items()):
        allowed = budgets.get(check)
        if allowed is None:
            problems.append(
                f"check '{check}': {count} suppression(s) but no budget "
                "entry in .clang-tidy-budget.json")
        elif count > allowed:
            problems.append(
                f"check '{check}': {count} suppression(s) exceeds budget "
                f"of {allowed}")
    for check, allowed in sorted(budgets.items()):
        if check.startswith("_"):
            continue
        if actual.get(check, 0) < allowed:
            problems.append(
                f"check '{check}': budget {allowed} but only "
                f"{actual.get(check, 0)} suppression(s) — shrink the budget")
    for p in problems:
        print(p)
    if problems:
        print(f"suppression budget: {len(problems)} problem(s)",
              file=sys.stderr)
        return 1
    total = sum(actual.values())
    print(f"suppression budget: OK ({total} suppression(s) within budget)")
    return 0


def tidy_sources(build_dir: pathlib.Path) -> list[pathlib.Path]:
    db = json.loads((build_dir / "compile_commands.json").read_text())
    sources: list[pathlib.Path] = []
    for entry in db:
        src = pathlib.Path(entry["file"])
        if not src.is_absolute():
            src = (pathlib.Path(entry["directory"]) / src).resolve()
        try:
            src.relative_to(SRC_ROOT)
        except ValueError:
            continue
        if src.suffix == ".cc":
            sources.append(src)
    return sorted(set(sources))


def run_tidy(build_dir: pathlib.Path, tidy: str, jobs: int) -> int:
    sources = tidy_sources(build_dir)
    if not sources:
        print("no src/ TUs in compile_commands.json", file=sys.stderr)
        return 1

    def one(src: pathlib.Path) -> tuple[pathlib.Path, int, str]:
        proc = subprocess.run(
            [tidy, "-p", str(build_dir), "--quiet", str(src)],
            capture_output=True, text=True)
        return src, proc.returncode, proc.stdout + proc.stderr

    failures = 0
    with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
        for src, code, output in pool.map(one, sources):
            rel = src.relative_to(REPO_ROOT)
            if code != 0:
                failures += 1
                print(f"FAIL {rel}")
                print(output)
            else:
                print(f"  ok {rel}")
    if failures:
        print(f"clang-tidy: {failures}/{len(sources)} TU(s) failed",
              file=sys.stderr)
        return 1
    print(f"clang-tidy: OK ({len(sources)} TUs)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-p", "--build-dir", default="build",
                        help="build dir containing compile_commands.json")
    parser.add_argument("--clang-tidy", default=None,
                        help="clang-tidy binary (default: $CLANG_TIDY or "
                             "clang-tidy on PATH)")
    parser.add_argument("--budget-only", action="store_true",
                        help="only check the NOLINT suppression budget")
    parser.add_argument("-j", "--jobs", type=int,
                        default=os.cpu_count() or 4)
    args = parser.parse_args()

    status = check_budget()
    if args.budget_only:
        return status
    if status != 0:
        return status

    tidy = args.clang_tidy or os.environ.get("CLANG_TIDY") or "clang-tidy"
    if shutil.which(tidy) is None:
        print(f"error: '{tidy}' not found — install clang-tidy or pass "
              "--budget-only for the toolchain-free phase", file=sys.stderr)
        return 1
    return run_tidy(pathlib.Path(args.build_dir).resolve(), tidy, args.jobs)


if __name__ == "__main__":
    sys.exit(main())
