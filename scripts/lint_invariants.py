#!/usr/bin/env python3
"""Project-invariant linter: repo-specific rules no generic tool knows.

Rules (each suppressible per line with `// lint:allow(<rule>) <why>` on the
offending line or the line directly above; a justification is required):

  kd-builder         std::nth_element / hand-rolled kd partitioning is
                     forbidden in src/ outside src/spatial/ — spatial query
                     structures live in the flat spatial core (PR 5 rule).
  relaxed-contract   every std::memory_order_relaxed use must sit within
                     two code lines of a `// relaxed:` contract comment
                     saying why relaxed ordering is sufficient (comment-only
                     lines in between are free; contiguous relaxed clusters
                     are covered by one comment via the lines between them).
  trace-thread-local thread_local is forbidden in src/ — trace context is
                     value-threaded through call chains (PR 7 rule); the
                     only sanctioned use is the metrics counter-slab shard
                     id, which carries an inline allow.
  deterministic-rng  rand()/srand()/time()-seeding and default-constructed
                     std RNG engines are forbidden in src/ — deterministic
                     kernels take explicit seeds (Engine::Config::seed).
  naked-mutex        std::mutex / std::shared_mutex / std::condition_variable
                     and the std lock RAII types are forbidden in src/
                     outside src/util/thread_annotations.h — use the
                     annotated unn::Mutex family so -Wthread-safety sees
                     every lock.

Exit status: 0 when clean, 1 with one `file:line: [rule] message` per
violation otherwise. Run over the default src/ tree or over explicit file
arguments (the negative-compile suite feeds single files through it).
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"

WRAPPER_HEADER = "src/util/thread_annotations.h"

ALLOW_RE = re.compile(r"//\s*lint:allow\((?P<rules>[a-z0-9_,\- ]+)\)\s*(?P<why>.*)")
COMMENT_ONLY_RE = re.compile(r"^\s*(//|///|/\*|\*)")

NAKED_MUTEX_RE = re.compile(
    r"std::(recursive_|timed_|recursive_timed_|shared_)?mutex\b"
    r"|std::condition_variable(_any)?\b"
    r"|std::(lock_guard|unique_lock|shared_lock|scoped_lock)\b"
)
KD_BUILDER_RE = re.compile(r"\bstd::nth_element\b")
THREAD_LOCAL_RE = re.compile(r"\bthread_local\b")
RNG_RE = re.compile(
    r"(?<![\w:])(rand|srand)\s*\("  # C rand()/srand()
    r"|(?<![\w:])time\s*\(\s*(NULL|nullptr|0|&|\))"  # time(NULL) seeding
    r"|std::random_device\b"
    r"|std::(mt19937(_64)?|minstd_rand0?|default_random_engine)\s+\w+\s*;"
)
RELAXED_RE = re.compile(r"\bmemory_order_relaxed\b")
RELAXED_COMMENT_RE = re.compile(r"//\s*relaxed:")

# How many non-comment lines above a relaxed use the contract comment (or a
# covered relaxed line, for clusters) may sit.
RELAXED_WINDOW = 2


def is_comment_only(line: str) -> bool:
    stripped = line.strip()
    return not stripped or bool(COMMENT_ONLY_RE.match(line))


def allow_markers(lines: list[str], idx: int) -> list[tuple[int, set[str], str]]:
    """Allow markers covering line `idx` (0-based): on the line itself or
    anywhere in the contiguous comment block directly above it. Returns
    (line index, rules, justification) per marker."""
    found: list[tuple[int, set[str], str]] = []
    j = idx
    while j >= 0:
        m = ALLOW_RE.search(lines[j])
        if m:
            found.append((j,
                          {r.strip() for r in m.group("rules").split(",")},
                          m.group("why").strip()))
        j -= 1
        if j < 0 or not is_comment_only(lines[j]):
            break
    return found


def allowed_rules(lines: list[str], idx: int) -> set[str]:
    rules: set[str] = set()
    for _, marker_rules, _ in allow_markers(lines, idx):
        rules.update(marker_rules)
    return rules


def check_relaxed_contract(lines: list[str]) -> list[tuple[int, str]]:
    """Every memory_order_relaxed within RELAXED_WINDOW code lines of a
    `// relaxed:` comment. Comment-only lines don't consume the window, and
    a covered relaxed line extends coverage (clusters share one comment)."""
    violations: list[tuple[int, str]] = []
    covered: set[int] = set()
    for i, line in enumerate(lines):
        if is_comment_only(line) or not RELAXED_RE.search(line):
            continue
        if RELAXED_COMMENT_RE.search(line):
            covered.add(i)
            continue
        ok = False
        budget = RELAXED_WINDOW
        j = i - 1
        while j >= 0 and budget >= 0:
            if RELAXED_COMMENT_RE.search(lines[j]) or j in covered:
                ok = True
                break
            if not is_comment_only(lines[j]):
                budget -= 1
            j -= 1
        if ok:
            covered.add(i)
        else:
            violations.append(
                (i + 1,
                 "memory_order_relaxed without a nearby '// relaxed:' "
                 "contract comment (within %d code lines above)"
                 % RELAXED_WINDOW))
    return violations


def lint_file(path: pathlib.Path, repo_rel: str) -> list[str]:
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        return [f"{repo_rel}: [io] unreadable: {e}"]
    lines = text.splitlines()
    problems: list[str] = []

    def report(idx0: int, rule: str, msg: str) -> None:
        for j, marker_rules, why in allow_markers(lines, idx0):
            if rule in marker_rules:
                if not why:
                    # A bare allow with no justification is a violation.
                    problems.append(
                        f"{repo_rel}:{j + 1}: [{rule}] lint:allow "
                        "needs a justification after the marker")
                return
        problems.append(f"{repo_rel}:{idx0 + 1}: [{rule}] {msg}")

    in_spatial = repo_rel.startswith("src/spatial/")
    is_wrapper = repo_rel == WRAPPER_HEADER

    for i, line in enumerate(lines):
        if is_comment_only(line):
            continue  # Prose mentions of forbidden constructs are fine.
        if KD_BUILDER_RE.search(line) and not in_spatial:
            report(i, "kd-builder",
                   "std::nth_element outside src/spatial/ — spatial "
                   "partitioning belongs to the flat spatial core (PR 5)")
        if THREAD_LOCAL_RE.search(line):
            report(i, "trace-thread-local",
                   "thread_local in src/ — thread trace/context state is "
                   "value-threaded, not thread-local (PR 7)")
        if RNG_RE.search(line):
            report(i, "deterministic-rng",
                   "unseeded/wall-clock randomness in src/ — deterministic "
                   "kernels take explicit seeds (Engine::Config::seed)")
        if NAKED_MUTEX_RE.search(line) and not is_wrapper:
            report(i, "naked-mutex",
                   "naked std synchronization type — use the annotated "
                   "unn::Mutex family (src/util/thread_annotations.h)")

    for lineno, msg in check_relaxed_contract(lines):
        idx0 = lineno - 1
        allows = allowed_rules(lines, idx0)
        if "relaxed-contract" not in allows:
            problems.append(f"{repo_rel}:{lineno}: [relaxed-contract] {msg}")
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files", nargs="*",
        help="files to lint (default: every .h/.cc under src/)")
    args = parser.parse_args()

    if args.files:
        paths = [pathlib.Path(f).resolve() for f in args.files]
    else:
        paths = sorted(p for p in SRC_ROOT.rglob("*")
                       if p.suffix in (".h", ".cc"))

    all_problems: list[str] = []
    for path in paths:
        try:
            repo_rel = str(path.relative_to(REPO_ROOT))
        except ValueError:
            repo_rel = str(path)
        all_problems.extend(lint_file(path, repo_rel.replace("\\", "/")))

    for p in all_problems:
        print(p)
    if all_problems:
        print(f"lint_invariants: {len(all_problems)} violation(s)",
              file=sys.stderr)
        return 1
    print(f"lint_invariants: OK ({len(paths)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
