// Concurrency stress for the sharding layer, built for TSan: many threads
// hammer one warmed ShardedEngine (shared fan-out pool included) and one
// sharded QueryServer while the main thread swaps in a dataset with a
// different shard count. Every answer must equal a single-threaded oracle
// run on the snapshot it was pinned to.

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "serve/query_server.h"
#include "serve/sharding.h"
#include "workload/generators.h"

namespace unn {
namespace {

using core::UncertainPoint;
using geom::Vec2;

constexpr int kThreads = 8;

std::vector<Vec2> StressQueries(int count) {
  std::vector<Vec2> qs;
  for (int i = 0; i < count; ++i) {
    qs.push_back({-11.0 + 22.0 * ((i * 37) % count) / count,
                  -11.0 + 22.0 * ((i * 61) % count) / count});
  }
  return qs;
}

TEST(ShardedEngineStress, WarmedShardsServeEightThreads) {
  auto pts = workload::RandomDiscrete(36, 3, 401);
  Engine::Config cfg;
  cfg.backend = Backend::kBruteForce;  // Deterministic exact merges.
  serve::ShardedEngine sharded(pts, cfg,
                               {4, serve::Partitioning::kRoundRobin});
  for (auto type :
       {Engine::QueryType::kMostProbableNn, Engine::QueryType::kTopK,
        Engine::QueryType::kExpectedDistanceNn,
        Engine::QueryType::kNonzeroNn}) {
    sharded.Warmup(type);
  }
  int built = sharded.StructuresBuilt();

  auto qs = StressQueries(40);
  // Single-threaded oracle pass (serial fan-out).
  std::vector<int> most_probable, expected_nn;
  std::vector<std::vector<std::pair<int, double>>> topk;
  std::vector<std::vector<int>> nonzero;
  for (Vec2 q : qs) {
    most_probable.push_back(sharded.MostProbableNn(q));
    expected_nn.push_back(sharded.ExpectedDistanceNn(q));
    topk.push_back(sharded.TopK(q, 3));
    nonzero.push_back(sharded.NonzeroNn(q));
  }

  // A pool shared by every hammering thread: concurrent fan-outs interleave.
  serve::ThreadPool fan_pool(3);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < qs.size(); ++i) {
        size_t j = (i + t * qs.size() / kThreads) % qs.size();
        Vec2 q = qs[j];
        // Alternate serial and pooled fan-out.
        serve::ThreadPool* pool = (t + i) % 2 == 0 ? &fan_pool : nullptr;
        if (sharded.MostProbableNn(q, pool) != most_probable[j]) ++mismatches;
        if (sharded.ExpectedDistanceNn(q, pool) != expected_nn[j]) {
          ++mismatches;
        }
        if (sharded.TopK(q, 3, pool) != topk[j]) ++mismatches;
        if (sharded.NonzeroNn(q, pool) != nonzero[j]) ++mismatches;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  // A warmed shard set never builds under traffic.
  EXPECT_EQ(sharded.StructuresBuilt(), built);
}

TEST(QueryServerShardedStress, EightClientsWithConcurrentReshardingSwap) {
  auto pts_a = workload::RandomDiscrete(24, 3, 402);
  auto pts_b = workload::RandomDiscrete(30, 2, 403);
  auto qs = StressQueries(32);

  Engine::Config cfg;
  cfg.backend = Backend::kBruteForce;
  Engine oracle_a(pts_a, cfg);
  Engine oracle_b(pts_b, cfg);
  std::vector<int> ans_a, ans_b;
  for (Vec2 q : qs) {
    ans_a.push_back(oracle_a.MostProbableNn(q));
    ans_b.push_back(oracle_b.MostProbableNn(q));
  }

  serve::QueryServer server(
      pts_a, cfg,
      {.num_threads = 4,
       .warm = {Engine::QueryType::kMostProbableNn},
       .sharding = {2, serve::Partitioning::kRoundRobin}});

  // 8 clients mix Submit and QueryBatch while the main thread swaps to a
  // dataset with a different shard count and partitioner. Every answer
  // must match one of the two oracles (requests run entirely on the
  // snapshot they were pinned to).
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      Engine::QuerySpec spec{Engine::QueryType::kMostProbableNn, 0.5, 1};
      for (int round = 0; round < 5; ++round) {
        if ((t + round) % 2 == 0) {
          auto results = server.QueryBatch(qs, spec);
          for (size_t i = 0; i < qs.size(); ++i) {
            if (results[i].nn != ans_a[i] && results[i].nn != ans_b[i]) {
              ++mismatches;
            }
          }
        } else {
          size_t i = static_cast<size_t>(t * 7 + round) % qs.size();
          int nn = server.Submit(qs[i], spec).get().nn;
          if (nn != ans_a[i] && nn != ans_b[i]) ++mismatches;
        }
      }
    });
  }
  // Reshard roughly mid-flight: K 2 -> 5, round-robin -> spatial.
  server.ReplaceDataset(pts_b, {5, serve::Partitioning::kSpatial});
  for (auto& th : clients) th.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(server.stats().swaps, 1u);
  EXPECT_EQ(server.sharded_snapshot()->num_shards(), 5);

  // After the dust settles, the server answers for dataset B only.
  auto final_results =
      server.QueryBatch(qs, {Engine::QueryType::kMostProbableNn});
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(final_results[i].nn, ans_b[i]);
  }
}

TEST(QueryServerShardedStress, DestructionWithInFlightShardedSubmits) {
  // Shutdown race: queued sharded Submits fan back out across the pool
  // while the server (and its pool) is being destroyed. ParallelFor on a
  // stopping pool must degrade gracefully; every future must still be
  // fulfilled.
  auto pts = workload::RandomDiscrete(16, 2, 404);
  Engine::Config cfg;
  cfg.backend = Backend::kBruteForce;
  auto qs = StressQueries(24);
  std::vector<std::future<Engine::QueryResult>> futures;
  {
    serve::QueryServer server(
        pts, cfg,
        {.num_threads = 2,
         .warm = {Engine::QueryType::kNonzeroNn},
         .sharding = {3, serve::Partitioning::kRoundRobin}});
    for (Vec2 q : qs) {
      futures.push_back(server.Submit(q, {Engine::QueryType::kNonzeroNn}));
    }
  }  // Destructor joins the pool; queued tasks drain first.
  Engine oracle(pts, cfg);
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(futures[i].get().ids, oracle.NonzeroNn(qs[i]));
  }
}

}  // namespace
}  // namespace unn
