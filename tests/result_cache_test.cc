#include "serve/result_cache.h"

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "serve/server_stats.h"

namespace unn {
namespace {

using geom::Vec2;
using serve::CacheKey;
using serve::CacheStats;
using serve::ResultCache;

Engine::QuerySpec TopK(int k) {
  Engine::QuerySpec s;
  s.type = Engine::QueryType::kTopK;
  s.k = k;
  return s;
}

Engine::QuerySpec Threshold(double tau) {
  Engine::QuerySpec s;
  s.type = Engine::QueryType::kThreshold;
  s.tau = tau;
  return s;
}

Engine::QueryResult MakeResult(int nn, size_t ranked, size_t ids) {
  Engine::QueryResult r;
  r.nn = nn;
  for (size_t i = 0; i < ranked; ++i) {
    r.ranked.push_back({static_cast<int>(i), 1.0 / (i + 1.0)});
  }
  for (size_t i = 0; i < ids; ++i) r.ids.push_back(static_cast<int>(i));
  return r;
}

// ---------------------------------------------------------------------------
// Key canonicalization
// ---------------------------------------------------------------------------

TEST(CacheKey, IgnoredSpecParametersAreZeroed) {
  // TopK reads only k: the tau it rode in with must not split entries.
  Engine::QuerySpec a = TopK(3);
  Engine::QuerySpec b = TopK(3);
  a.tau = 0.2;
  b.tau = 0.9;
  Vec2 q{1.5, -2.5};
  EXPECT_EQ(ResultCache::MakeKey(1, a, q, 0.0),
            ResultCache::MakeKey(1, b, q, 0.0));
  EXPECT_NE(ResultCache::MakeKey(1, TopK(3), q, 0.0),
            ResultCache::MakeKey(1, TopK(4), q, 0.0));

  // Threshold reads only tau.
  Engine::QuerySpec c = Threshold(0.25);
  Engine::QuerySpec d = Threshold(0.25);
  c.k = 1;
  d.k = 99;
  EXPECT_EQ(ResultCache::MakeKey(1, c, q, 0.0),
            ResultCache::MakeKey(1, d, q, 0.0));
  EXPECT_NE(ResultCache::MakeKey(1, Threshold(0.25), q, 0.0),
            ResultCache::MakeKey(1, Threshold(0.75), q, 0.0));

  // MostProbableNn reads neither.
  Engine::QuerySpec e, f;
  e.tau = 0.1;
  e.k = 7;
  f.tau = 0.8;
  f.k = 2;
  EXPECT_EQ(ResultCache::MakeKey(1, e, q, 0.0),
            ResultCache::MakeKey(1, f, q, 0.0));
}

TEST(CacheKey, GenerationAndTypeSeparateEntries) {
  Vec2 q{0.0, 0.0};
  EXPECT_NE(ResultCache::MakeKey(1, TopK(3), q, 0.0),
            ResultCache::MakeKey(2, TopK(3), q, 0.0));
  Engine::QuerySpec mp;  // kMostProbableNn
  Engine::QuerySpec nz;
  nz.type = Engine::QueryType::kNonzeroNn;
  EXPECT_NE(ResultCache::MakeKey(1, mp, q, 0.0),
            ResultCache::MakeKey(1, nz, q, 0.0));
}

TEST(CacheKey, NegativeZeroFoldsOntoPositiveZero) {
  Engine::QuerySpec spec;
  EXPECT_EQ(ResultCache::MakeKey(1, spec, Vec2{-0.0, 0.0}, 0.0),
            ResultCache::MakeKey(1, spec, Vec2{0.0, -0.0}, 0.0));
  // But genuinely different coordinates stay distinct.
  EXPECT_NE(ResultCache::MakeKey(1, spec, Vec2{0.0, 0.0}, 0.0),
            ResultCache::MakeKey(1, spec, Vec2{1e-300, 0.0}, 0.0));
}

TEST(CacheKey, QuantizationSnapsNearbyPointsTogether) {
  Engine::QuerySpec spec;
  const double quantum = 0.5;
  // Both round to the same lattice point (2, -4) * 0.5.
  EXPECT_EQ(ResultCache::MakeKey(1, spec, Vec2{1.01, -2.05}, quantum),
            ResultCache::MakeKey(1, spec, Vec2{0.99, -1.98}, quantum));
  EXPECT_NE(ResultCache::MakeKey(1, spec, Vec2{1.01, -2.05}, quantum),
            ResultCache::MakeKey(1, spec, Vec2{1.40, -2.05}, quantum));
  // quantum 0 keeps them apart.
  EXPECT_NE(ResultCache::MakeKey(1, spec, Vec2{1.01, -2.05}, 0.0),
            ResultCache::MakeKey(1, spec, Vec2{0.99, -1.98}, 0.0));
}

// ---------------------------------------------------------------------------
// Lookup / Insert / eviction
// ---------------------------------------------------------------------------

TEST(ResultCache, RoundTripAndCounters) {
  ResultCache cache(ResultCache::Options{});
  Engine::QuerySpec spec = TopK(2);
  CacheKey key = cache.Key(1, spec, Vec2{3.0, 4.0});

  Engine::QueryResult out;
  EXPECT_FALSE(cache.Lookup(key, &out));

  Engine::QueryResult stored = MakeResult(7, 2, 3);
  cache.Insert(key, stored);
  ASSERT_TRUE(cache.Lookup(key, &out));
  EXPECT_EQ(out.nn, stored.nn);
  EXPECT_EQ(out.ranked, stored.ranked);
  EXPECT_EQ(out.ids, stored.ids);

  CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_GT(s.bytes, 0u);
}

TEST(ResultCache, ReinsertRefreshesValue) {
  ResultCache cache(ResultCache::Options{});
  CacheKey key = cache.Key(1, TopK(2), Vec2{0.0, 0.0});
  cache.Insert(key, MakeResult(1, 1, 0));
  cache.Insert(key, MakeResult(2, 4, 0));
  Engine::QueryResult out;
  ASSERT_TRUE(cache.Lookup(key, &out));
  EXPECT_EQ(out.nn, 2);
  EXPECT_EQ(out.ranked.size(), 4u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ResultCache, EvictsLeastRecentlyUsedUnderByteBudget) {
  // One shard so LRU order is global; a budget of a few entries.
  ResultCache::Options options;
  options.max_bytes = 1024;
  options.num_shards = 1;
  ResultCache cache(options);
  Engine::QuerySpec spec = TopK(2);

  const int kInserts = 64;
  for (int i = 0; i < kInserts; ++i) {
    cache.Insert(cache.Key(1, spec, Vec2{static_cast<double>(i), 0.0}),
                 MakeResult(i, 2, 0));
  }
  CacheStats s = cache.stats();
  EXPECT_GT(s.evictions, 0u);
  EXPECT_LE(s.bytes, 1024u);
  EXPECT_LT(s.entries, static_cast<uint64_t>(kInserts));

  // The most recent insert survived; the oldest was evicted.
  Engine::QueryResult out;
  EXPECT_TRUE(cache.Lookup(
      cache.Key(1, spec, Vec2{static_cast<double>(kInserts - 1), 0.0}),
      &out));
  EXPECT_FALSE(cache.Lookup(cache.Key(1, spec, Vec2{0.0, 0.0}), &out));
}

TEST(ResultCache, LookupRefreshesLruPosition) {
  ResultCache::Options options;
  options.max_bytes = 1024;
  options.num_shards = 1;
  ResultCache cache(options);
  Engine::QuerySpec spec = TopK(2);
  CacheKey hot = cache.Key(1, spec, Vec2{-1.0, -1.0});
  cache.Insert(hot, MakeResult(42, 2, 0));

  // Keep touching `hot` while flooding; it must survive the churn.
  Engine::QueryResult out;
  for (int i = 0; i < 64; ++i) {
    cache.Insert(cache.Key(1, spec, Vec2{static_cast<double>(i), 0.0}),
                 MakeResult(i, 2, 0));
    ASSERT_TRUE(cache.Lookup(hot, &out)) << "flood " << i;
  }
  EXPECT_EQ(out.nn, 42);
}

TEST(ResultCache, StaleGenerationsAgeOutWithoutASweep) {
  ResultCache::Options options;
  options.max_bytes = 1024;
  options.num_shards = 1;
  ResultCache cache(options);
  Engine::QuerySpec spec = TopK(2);
  Vec2 q{5.0, 5.0};
  cache.Insert(cache.Key(1, spec, q), MakeResult(1, 2, 0));

  // A "snapshot swap": generation 2 keys never match generation 1
  // entries, and the flood under the budget evicts the stale one.
  Engine::QueryResult out;
  EXPECT_FALSE(cache.Lookup(cache.Key(2, spec, q), &out));
  for (int i = 0; i < 64; ++i) {
    cache.Insert(cache.Key(2, spec, Vec2{static_cast<double>(i), 0.0}),
                 MakeResult(i, 2, 0));
  }
  EXPECT_FALSE(cache.Lookup(cache.Key(1, spec, q), &out));
}

TEST(ResultCache, DisabledCacheNeverStoresAndNeverCounts) {
  ResultCache::Options options;
  options.max_bytes = 0;
  ResultCache cache(options);
  EXPECT_TRUE(cache.disabled());
  CacheKey key = cache.Key(1, TopK(2), Vec2{0.0, 0.0});
  cache.Insert(key, MakeResult(1, 1, 1));
  Engine::QueryResult out;
  EXPECT_FALSE(cache.Lookup(key, &out));
  CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.insertions, 0u);
}

TEST(ResultCache, OversizedEntryIsNotStored) {
  ResultCache::Options options;
  options.max_bytes = 256;
  options.num_shards = 1;
  ResultCache cache(options);
  CacheKey key = cache.Key(1, TopK(2), Vec2{0.0, 0.0});
  cache.Insert(key, MakeResult(1, 10000, 10000));
  Engine::QueryResult out;
  EXPECT_FALSE(cache.Lookup(key, &out));
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCache, ClearDropsEverything) {
  ResultCache cache(ResultCache::Options{});
  Engine::QuerySpec spec = TopK(2);
  for (int i = 0; i < 16; ++i) {
    cache.Insert(cache.Key(1, spec, Vec2{static_cast<double>(i), 0.0}),
                 MakeResult(i, 2, 0));
  }
  cache.Clear();
  CacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.bytes, 0u);
  Engine::QueryResult out;
  EXPECT_FALSE(cache.Lookup(cache.Key(1, spec, Vec2{0.0, 0.0}), &out));
}

// Concurrency smoke for the TSan job: racing inserts, lookups, clears and
// generation churn on a tiny budget keep every invariant intact.
TEST(ResultCache, ConcurrentChurnIsSafe) {
  ResultCache::Options options;
  options.max_bytes = 4096;
  options.num_shards = 4;
  ResultCache cache(options);
  Engine::QuerySpec spec = TopK(2);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> generation{1};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Engine::QueryResult out;
      for (int i = 0; i < 500; ++i) {
        uint64_t gen = generation.load(std::memory_order_relaxed);
        Vec2 q{static_cast<double>((t * 131 + i) % 37), 1.0};
        CacheKey key = cache.Key(gen, spec, q);
        if (cache.Lookup(key, &out)) {
          EXPECT_GE(out.nn, 0);
        } else {
          cache.Insert(key, MakeResult(i, 2, 1));
        }
        if (i % 100 == 99) generation.fetch_add(1);
        if (t == 0 && i % 250 == 249) cache.Clear();
      }
      stop.store(true);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(stop.load());
  EXPECT_LE(cache.stats().bytes, 4096u);
}

// The latency-histogram tests that used to live here moved to
// tests/obs_test.cc with the histogram itself (serve::LatencyHistogram
// became obs::Histogram).

}  // namespace
}  // namespace unn
