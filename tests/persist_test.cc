#include "persist/persistent_set.h"

#include <map>
#include <random>
#include <set>

#include <gtest/gtest.h>

namespace unn {
namespace persist {
namespace {

TEST(PersistentSet, EmptyVersionZero) {
  PersistentSet ps;
  EXPECT_EQ(ps.Size(0), 0);
  EXPECT_FALSE(ps.Contains(0, 5));
  EXPECT_TRUE(ps.Items(0).empty());
}

TEST(PersistentSet, InsertCreatesNewVersionOldUnchanged) {
  PersistentSet ps;
  Version v1 = ps.Insert(0, 7);
  EXPECT_NE(v1, 0);
  EXPECT_TRUE(ps.Contains(v1, 7));
  EXPECT_FALSE(ps.Contains(0, 7));
  Version v2 = ps.Insert(v1, 3);
  EXPECT_EQ(ps.Items(v2), (std::vector<int>{3, 7}));
  EXPECT_EQ(ps.Items(v1), (std::vector<int>{7}));
}

TEST(PersistentSet, InsertExistingReturnsSameVersion) {
  PersistentSet ps;
  Version v1 = ps.Insert(0, 7);
  EXPECT_EQ(ps.Insert(v1, 7), v1);
  EXPECT_EQ(ps.Erase(v1, 99), v1);
}

TEST(PersistentSet, ToggleRoundTrips) {
  PersistentSet ps;
  Version v1 = ps.Toggle(0, 4);
  EXPECT_TRUE(ps.Contains(v1, 4));
  Version v2 = ps.Toggle(v1, 4);
  EXPECT_FALSE(ps.Contains(v2, 4));
  EXPECT_EQ(ps.Size(v2), 0);
}

TEST(PersistentSet, BranchingVersionsStayIndependent) {
  PersistentSet ps;
  Version base = 0;
  for (int k : {1, 2, 3, 4, 5}) base = ps.Insert(base, k);
  Version left = ps.Erase(base, 3);
  Version right = ps.Insert(base, 10);
  EXPECT_EQ(ps.Items(base), (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(ps.Items(left), (std::vector<int>{1, 2, 4, 5}));
  EXPECT_EQ(ps.Items(right), (std::vector<int>{1, 2, 3, 4, 5, 10}));
}

TEST(PersistentSet, RandomizedAgainstStdSetModel) {
  std::mt19937_64 rng(77);
  PersistentSet ps;
  std::map<Version, std::set<int>> model;
  model[0] = {};
  std::vector<Version> versions = {0};
  std::uniform_int_distribution<int> key(0, 40);
  for (int step = 0; step < 3000; ++step) {
    Version v = versions[rng() % versions.size()];
    int k = key(rng);
    int op = rng() % 3;
    Version nv;
    std::set<int> expect = model[v];
    if (op == 0) {
      nv = ps.Insert(v, k);
      expect.insert(k);
    } else if (op == 1) {
      nv = ps.Erase(v, k);
      expect.erase(k);
    } else {
      nv = ps.Toggle(v, k);
      if (expect.count(k)) {
        expect.erase(k);
      } else {
        expect.insert(k);
      }
    }
    model[nv] = expect;
    versions.push_back(nv);
    // Spot-check the new version and a random old one.
    std::vector<int> items = ps.Items(nv);
    std::vector<int> want(expect.begin(), expect.end());
    ASSERT_EQ(items, want) << "step " << step;
    Version old = versions[rng() % versions.size()];
    std::vector<int> old_items = ps.Items(old);
    std::vector<int> old_want(model[old].begin(), model[old].end());
    ASSERT_EQ(old_items, old_want) << "old check at step " << step;
    ASSERT_EQ(ps.Size(old), static_cast<int>(old_want.size()));
  }
}

TEST(PersistentSet, SpaceIsLogarithmicPerToggleChain) {
  // The DSST89 argument: a chain of single-element toggles on a set of size
  // n costs O(log n) nodes per version, not O(n).
  PersistentSet ps;
  Version v = 0;
  const int kN = 1024;
  for (int i = 0; i < kN; ++i) v = ps.Insert(v, i);
  size_t nodes_before = ps.NumNodes();
  const int kToggles = 1000;
  for (int i = 0; i < kToggles; ++i) v = ps.Toggle(v, static_cast<int>(i * 37 % kN));
  size_t per_toggle = (ps.NumNodes() - nodes_before) / kToggles;
  // log2(1024) = 10; treap expected depth ~ 2.5 log2. Allow generous slack
  // but reject linear behaviour (which would be ~1024).
  EXPECT_LE(per_toggle, 80u);
}

}  // namespace
}  // namespace persist
}  // namespace unn
