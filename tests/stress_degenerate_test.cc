// Hardening sweep: degenerate/adversarial inputs and cross-structure
// consistency at larger sizes than the per-module tests use.

#include <random>

#include <gtest/gtest.h>

#include "baselines/brute_force.h"
#include "core/exact_pnn.h"
#include "core/monte_carlo_pnn.h"
#include "core/nn_nonzero_index.h"
#include "core/nonzero_voronoi.h"
#include "core/spiral_search.h"
#include "workload/generators.h"

namespace unn {
namespace core {
namespace {

using geom::Vec2;

TEST(StressDegenerate, GridCentersEqualRadii) {
  // Maximal symmetry: 4x4 grid of equal disks. Ties everywhere between
  // cells; queries keep a safety margin from the (very regular) diagram
  // boundaries.
  std::vector<UncertainPoint> pts;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      pts.push_back(UncertainPoint::Disk({4.0 * i, 4.0 * j}, 1.0));
    }
  }
  NonzeroVoronoi vd(pts);
  NnNonzeroIndex ix(pts);
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> qu(-3, 15);
  int checked = 0;
  for (int t = 0; t < 400; ++t) {
    Vec2 q{qu(rng), qu(rng)};
    if (NonzeroNnMargin(pts, q) < 1e-6) continue;
    auto want = baselines::NonzeroNn(pts, q);
    ASSERT_EQ(ix.Query(q), want) << "t=" << t;
    ASSERT_EQ(vd.Query(q), want) << "t=" << t;
    ++checked;
  }
  EXPECT_GT(checked, 300);
}

TEST(StressDegenerate, CollinearCentersMixedRadii) {
  std::vector<UncertainPoint> pts;
  for (int i = 0; i < 12; ++i) {
    pts.push_back(
        UncertainPoint::Disk({3.0 * i, 0.0}, 0.4 + 0.15 * (i % 4)));
  }
  NonzeroVoronoi vd(pts);
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> qx(-4, 38), qy(-12, 12);
  int checked = 0;
  for (int t = 0; t < 400; ++t) {
    Vec2 q{qx(rng), qy(rng)};
    if (NonzeroNnMargin(pts, q) < 1e-6) continue;
    ASSERT_EQ(vd.Query(q), baselines::NonzeroNn(pts, q)) << "t=" << t;
    ++checked;
  }
  EXPECT_GT(checked, 300);
}

TEST(StressDegenerate, NestedDisksContainment) {
  // A disk strictly inside another: the inner one always wins against the
  // outer somewhere, and gamma machinery must handle D < |r_i - r_j|.
  std::vector<UncertainPoint> pts = {UncertainPoint::Disk({0, 0}, 4.0),
                                     UncertainPoint::Disk({0.5, 0}, 0.5),
                                     UncertainPoint::Disk({12, 0}, 1.0)};
  NonzeroVoronoi vd(pts);
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> qu(-10, 20);
  for (int t = 0; t < 300; ++t) {
    Vec2 q{qu(rng), qu(rng)};
    if (NonzeroNnMargin(pts, q) < 1e-6) continue;
    ASSERT_EQ(vd.Query(q), baselines::NonzeroNn(pts, q)) << "t=" << t;
  }
}

TEST(StressDegenerate, LargerRandomInstance) {
  auto pts = workload::RandomDisks(48, /*seed=*/33);
  NonzeroVoronoi vd(pts);
  const auto& st = vd.stats();
  EXPECT_EQ(st.bounded_faces, st.dcel_faces_euler - 1);
  EXPECT_EQ(st.dropped_subarcs, 0);
  EXPECT_LE(st.unlabeled_loops, 1);
  std::mt19937_64 rng(35);
  std::uniform_real_distribution<double> qu(-18, 18);
  int checked = 0;
  for (int t = 0; t < 500; ++t) {
    Vec2 q{qu(rng), qu(rng)};
    if (NonzeroNnMargin(pts, q) < 1e-6 * vd.window().Diagonal()) continue;
    ASSERT_EQ(vd.Query(q), baselines::NonzeroNn(pts, q)) << "t=" << t;
    ++checked;
  }
  EXPECT_GT(checked, 400);
}

TEST(StressDegenerate, GuaranteedVoronoiSemantics) {
  // [SE08]: in a guaranteed cell exactly one point can be the NN, so its
  // quantification probability is 1 under any pdf.
  auto pts = workload::RandomDisks(10, /*seed=*/41, 14.0, 0.3, 0.8);
  NonzeroVoronoi vd(pts);
  EXPECT_GT(vd.NumGuaranteedFaces(), 0);  // Sparse input: many guaranteed.
  MonteCarloPnnOptions opts;
  opts.s_override = 400;
  MonteCarloPnn mc(pts, opts);
  std::mt19937_64 rng(43);
  std::uniform_real_distribution<double> qu(-16, 16);
  int verified = 0;
  for (int t = 0; t < 300 && verified < 40; ++t) {
    Vec2 q{qu(rng), qu(rng)};
    int g = vd.GuaranteedNn(q);
    if (g < 0) continue;
    EXPECT_DOUBLE_EQ(mc.QueryOne(q, g), 1.0) << "t=" << t;
    ++verified;
  }
  EXPECT_GT(verified, 10);
}

TEST(StressDegenerate, MixedModelsMonteCarlo) {
  // Continuous and discrete points together: only the MC estimator accepts
  // mixed inputs; its estimates must sum to 1 and respect NN!=0 support.
  std::vector<UncertainPoint> pts = {
      UncertainPoint::Disk({0, 0}, 1.0),
      UncertainPoint::Disk({5, 1}, 1.5, DiskPdf::kTruncatedGaussian),
      UncertainPoint::Discrete({{2, 4}, {3, 5}}, {0.5, 0.5}),
      UncertainPoint::Discrete({{-4, 2}}, {1.0})};
  MonteCarloPnnOptions opts;
  opts.s_override = 20000;
  MonteCarloPnn mc(pts, opts);
  std::mt19937_64 rng(47);
  std::uniform_real_distribution<double> qu(-6, 8);
  for (int t = 0; t < 25; ++t) {
    Vec2 q{qu(rng), qu(rng)};
    auto est = mc.Query(q);
    double sum = 0;
    auto support = baselines::NonzeroNn(pts, q);
    for (auto [id, p] : est) {
      sum += p;
      // Anything that wins an instantiation must be in NN!=0 (margin-
      // tolerant: boundary cases excluded).
      if (NonzeroNnMargin(pts, q) > 1e-6) {
        EXPECT_TRUE(std::binary_search(support.begin(), support.end(), id))
            << "id=" << id;
      }
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(StressDegenerate, ContinuousSpiralSearchMatchesIntegration) {
  // Open problem (iii) prototype: sampled spiral search on disks agrees
  // with the Eq. (1) integration baseline.
  std::vector<UncertainPoint> pts = {UncertainPoint::Disk({0, 0}, 1.0),
                                     UncertainPoint::Disk({3, 0}, 1.2),
                                     UncertainPoint::Disk({1, 3}, 0.8)};
  ContinuousSpiralSearch css(pts, /*eps_discretization=*/0.05, /*seed=*/3);
  for (Vec2 q : {Vec2{1, 1}, Vec2{0.5, -0.5}, Vec2{2, 2}}) {
    std::vector<double> est(pts.size(), 0.0);
    for (auto [id, p] : css.Query(q, 0.01)) est[id] = p;
    for (size_t i = 0; i < pts.size(); ++i) {
      double exact = IntegrateQuantification(pts, static_cast<int>(i), q);
      EXPECT_NEAR(est[i], exact, 0.05) << "i=" << i;
    }
  }
}

}  // namespace
}  // namespace core
}  // namespace unn
