#include "geom/conic.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "geom/trig.h"

namespace unn {
namespace geom {
namespace {

std::mt19937_64& Rng() {
  static std::mt19937_64 rng(42);
  return rng;
}

Vec2 RandPoint(double lo = -10, double hi = 10) {
  std::uniform_real_distribution<double> u(lo, hi);
  return {u(Rng()), u(Rng())};
}

TEST(FocalConic, EmptyWhenDistanceDifferenceUnreachable) {
  Vec2 a{0, 0}, b{3, 0};
  EXPECT_FALSE(FocalConic::DistanceDifference(a, b, 3.0).has_value());
  EXPECT_FALSE(FocalConic::DistanceDifference(a, b, 4.0).has_value());
  EXPECT_FALSE(FocalConic::DistanceDifference(a, b, -3.5).has_value());
  EXPECT_TRUE(FocalConic::DistanceDifference(a, b, 2.9).has_value());
  EXPECT_TRUE(FocalConic::DistanceDifference(a, b, -2.9).has_value());
  EXPECT_TRUE(FocalConic::DistanceDifference(a, b, 0.0).has_value());
}

TEST(FocalConic, PointsSatisfyDefiningEquation) {
  for (int iter = 0; iter < 300; ++iter) {
    Vec2 a = RandPoint(), b = RandPoint();
    double d = Dist(a, b);
    if (d < 0.1) continue;
    std::uniform_real_distribution<double> su(-0.95, 0.95);
    double s = su(Rng()) * d;
    auto conic = FocalConic::DistanceDifference(a, b, s);
    ASSERT_TRUE(conic.has_value());
    // Sample across the domain, excluding the blow-up fringe.
    for (int i = 1; i <= 20; ++i) {
      double frac = i / 21.0;
      double theta =
          conic->DomainLo() + frac * (conic->DomainHi() - conic->DomainLo());
      if (!conic->InDomain(theta, 1e-6)) continue;
      Vec2 x = conic->PointAt(theta);
      double lhs = Dist(x, a) - Dist(x, b);
      EXPECT_NEAR(lhs, s, 1e-7 * (1 + Norm(x - a)))
          << "iter=" << iter << " theta=" << theta;
      EXPECT_NEAR(conic->Implicit(x), 0.0, 1e-7 * (1 + Norm(x - a)));
    }
  }
}

TEST(FocalConic, ZeroDifferenceIsPerpendicularBisector) {
  Vec2 a{-1, 0}, b{1, 0};
  auto conic = FocalConic::DistanceDifference(a, b, 0.0);
  ASSERT_TRUE(conic.has_value());
  // At theta = pi/2 (straight up from a) ... the bisector is x = 0, so the
  // point of the branch on the upward ray from a=(-1,0) at angle t satisfies
  // a.x + r cos t = 0.
  for (double t : {0.3, 0.7, 1.2, -0.4, -1.1}) {
    if (!conic->InDomain(t)) continue;
    Vec2 x = conic->PointAt(t);
    EXPECT_NEAR(x.x, 0.0, 1e-9);
  }
}

TEST(FocalConic, DomainBoundaryRadiusDiverges) {
  Vec2 a{0, 0}, b{4, 0};
  auto conic = FocalConic::DistanceDifference(a, b, 2.0);
  ASSERT_TRUE(conic.has_value());
  double near_edge = conic->DomainHi() - 1e-9;
  EXPECT_GT(conic->RadiusAt(near_edge), 1e6);
  double mid = conic->phi();
  // Minimum radius at the axis: r = (D + s) / 2.
  EXPECT_NEAR(conic->RadiusAt(mid), (4.0 + 2.0) / 2.0, 1e-12);
}

TEST(FocalConic, IntersectSharedFocusAgainstDenseScan) {
  int checked = 0;
  for (int iter = 0; iter < 200; ++iter) {
    Vec2 o = RandPoint();
    Vec2 b1 = RandPoint(), b2 = RandPoint();
    double d1 = Dist(o, b1), d2 = Dist(o, b2);
    if (d1 < 0.5 || d2 < 0.5) continue;
    std::uniform_real_distribution<double> su(-0.9, 0.9);
    auto c1 = FocalConic::DistanceDifference(o, b1, su(Rng()) * d1);
    auto c2 = FocalConic::DistanceDifference(o, b2, su(Rng()) * d2);
    ASSERT_TRUE(c1 && c2);
    double thetas[2];
    int n = FocalConic::Intersect(*c1, *c2, thetas);
    for (int i = 0; i < n; ++i) {
      double r1 = c1->RadiusAt(thetas[i]);
      double r2 = c2->RadiusAt(thetas[i]);
      EXPECT_NEAR(r1, r2, 1e-6 * (1 + std::abs(r1)));
      Vec2 x = c1->PointAt(thetas[i]);
      EXPECT_NEAR(c2->Implicit(x), 0.0, 1e-6 * (1 + Norm(x - o)));
      ++checked;
    }
    // Dense scan for sign changes of r1 - r2 on the common domain; every
    // sign change must be matched by a reported root.
    const int kSteps = 2000;
    double prev_diff = 0;
    bool have_prev = false;
    int sign_changes = 0;
    for (int i = 0; i <= kSteps; ++i) {
      double t = kTwoPi * i / kSteps;
      if (!c1->InDomain(t, 1e-9) || !c2->InDomain(t, 1e-9)) {
        have_prev = false;
        continue;
      }
      double diff = c1->RadiusAt(t) - c2->RadiusAt(t);
      if (have_prev && ((diff > 0) != (prev_diff > 0))) ++sign_changes;
      prev_diff = diff;
      have_prev = true;
    }
    EXPECT_LE(sign_changes, n)
        << "scan found more crossings than Intersect reported, iter=" << iter;
  }
  EXPECT_GT(checked, 20);
}

TEST(FocalConic, IntersectSegmentResidualsAndCompleteness) {
  int hits_total = 0;
  for (int iter = 0; iter < 400; ++iter) {
    Vec2 a = RandPoint(), b = RandPoint();
    double d = Dist(a, b);
    if (d < 0.5) continue;
    std::uniform_real_distribution<double> su(-0.9, 0.9);
    auto conic = FocalConic::DistanceDifference(a, b, su(Rng()) * d);
    ASSERT_TRUE(conic.has_value());
    Vec2 p = RandPoint(-15, 15), q = RandPoint(-15, 15);
    FocalConic::SegmentHit hits[2];
    int n = conic->IntersectSegment(p, q, hits);
    hits_total += n;
    for (int i = 0; i < n; ++i) {
      EXPECT_NEAR(conic->Implicit(hits[i].point), 0.0, 1e-6 * (1 + d));
      EXPECT_GE(hits[i].t, 0.0);
      EXPECT_LE(hits[i].t, 1.0);
      Vec2 expect = Lerp(p, q, hits[i].t);
      EXPECT_NEAR(expect.x, hits[i].point.x, 1e-9);
      EXPECT_NEAR(expect.y, hits[i].point.y, 1e-9);
    }
    // Completeness: sign changes of the implicit function along the segment
    // must be covered by reported hits.
    const int kSteps = 400;
    double prev = conic->Implicit(p);
    int sign_changes = 0;
    for (int i = 1; i <= kSteps; ++i) {
      double cur = conic->Implicit(Lerp(p, q, static_cast<double>(i) / kSteps));
      if ((cur > 0) != (prev > 0)) ++sign_changes;
      prev = cur;
    }
    EXPECT_GE(n, sign_changes) << "missed a crossing, iter=" << iter;
  }
  EXPECT_GT(hits_total, 50);
}

TEST(FocalConic, GammaCurveSemantics) {
  // gamma_ij = {delta_i = Delta_j} for disks D_i(c_i, r_i), D_j(c_j, r_j):
  // distance difference s = r_i + r_j. Verify points on it have
  // d(x, c_i) - r_i == d(x, c_j) + r_j.
  Vec2 ci{0, 0}, cj{10, 0};
  double ri = 1.5, rj = 2.0;
  auto gamma = FocalConic::DistanceDifference(ci, cj, ri + rj);
  ASSERT_TRUE(gamma.has_value());
  for (double f : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    double theta =
        gamma->DomainLo() + f * (gamma->DomainHi() - gamma->DomainLo());
    Vec2 x = gamma->PointAt(theta);
    double delta_i = Dist(x, ci) - ri;
    double big_delta_j = Dist(x, cj) + rj;
    EXPECT_NEAR(delta_i, big_delta_j, 1e-8);
    EXPECT_GT(delta_i, 0.0);  // Curve lies outside D_i.
  }
}

}  // namespace
}  // namespace geom
}  // namespace unn
