#include "core/nonzero_voronoi.h"

#include <random>

#include <gtest/gtest.h>

#include "baselines/brute_force.h"

namespace unn {
namespace core {
namespace {

using geom::Vec2;

std::vector<UncertainPoint> RandomDisks(int n, std::mt19937_64& rng,
                                        double spread = 10.0,
                                        double rmax = 1.5) {
  std::uniform_real_distribution<double> pos(-spread, spread);
  std::uniform_real_distribution<double> rad(0.1, rmax);
  std::vector<UncertainPoint> pts;
  pts.reserve(n);
  for (int i = 0; i < n; ++i) {
    pts.push_back(UncertainPoint::Disk({pos(rng), pos(rng)}, rad(rng)));
  }
  return pts;
}

/// Skips queries that sit within `tol` of a diagram boundary, where the
/// strict-inequality answer is numerically ambiguous (general-position
/// policy; exactness on the boundary is a measure-zero concern).
bool NearBoundary(const std::vector<UncertainPoint>& pts, Vec2 q, double tol) {
  double delta = GlobalMaxDistLowerEnvelope(pts, q);
  for (const auto& p : pts) {
    if (std::abs(p.MinDist(q) - delta) < tol) return true;
  }
  return false;
}

TEST(NonzeroVoronoi, TwoDisjointDisks) {
  std::vector<UncertainPoint> pts = {UncertainPoint::Disk({-5, 0}, 1.0),
                                     UncertainPoint::Disk({5, 0}, 1.0)};
  NonzeroVoronoi vd(pts);
  // Near each disk only that disk can be the NN; between them, both.
  EXPECT_EQ(vd.Query({-5, 0}), (std::vector<int>{0}));
  EXPECT_EQ(vd.Query({5, 0}), (std::vector<int>{1}));
  EXPECT_EQ(vd.Query({0, 0.3}), (std::vector<int>{0, 1}));
  EXPECT_EQ(vd.Query({0.1, 7}), (std::vector<int>{0, 1}));
}

TEST(NonzeroVoronoi, ContainedDiskAlwaysCandidate) {
  // A small disk close to q and a huge far one: both are candidates
  // everywhere in between only if delta < Delta.
  std::vector<UncertainPoint> pts = {UncertainPoint::Disk({0, 0}, 0.5),
                                     UncertainPoint::Disk({20, 0}, 0.5)};
  NonzeroVoronoi vd(pts);
  // Right next to disk 0, Delta(q) <= d(q,c0)+0.5 is small; disk 1 is 20
  // away, so only 0 qualifies.
  EXPECT_EQ(vd.Query({1, 0.2}), (std::vector<int>{0}));
}

TEST(NonzeroVoronoi, QueryMatchesBruteForceRandom) {
  std::mt19937_64 rng(101);
  for (int n : {2, 3, 5, 8, 12, 20}) {
    for (int iter = 0; iter < 6; ++iter) {
      auto pts = RandomDisks(n, rng);
      NonzeroVoronoi vd(pts);
      double tol = 1e-7 * vd.window().Diagonal();
      std::uniform_real_distribution<double> qu(-14, 14);
      int checked = 0;
      for (int t = 0; t < 250; ++t) {
        Vec2 q{qu(rng), qu(rng)};
        if (NearBoundary(pts, q, tol)) continue;
        auto got = vd.Query(q);
        auto want = baselines::NonzeroNn(pts, q);
        ASSERT_EQ(got, want) << "n=" << n << " iter=" << iter << " q=(" << q.x
                             << "," << q.y << ")";
        ++checked;
      }
      EXPECT_GT(checked, 200);
    }
  }
}

TEST(NonzeroVoronoi, QueriesInsideWindowDoNotFallBack) {
  std::mt19937_64 rng(7);
  auto pts = RandomDisks(10, rng);
  NonzeroVoronoi vd(pts);
  std::uniform_real_distribution<double> qu(-12, 12);
  int fallbacks = 0;
  for (int t = 0; t < 500; ++t) {
    Vec2 q{qu(rng), qu(rng)};
    fallbacks += vd.IsFallbackQuery(q);
  }
  // The point-location path must carry (essentially) all in-window queries.
  EXPECT_LE(fallbacks, 2);
}

TEST(NonzeroVoronoi, StatsInvariants) {
  std::mt19937_64 rng(55);
  for (int iter = 0; iter < 8; ++iter) {
    auto pts = RandomDisks(12, rng);
    NonzeroVoronoi vd(pts);
    const auto& st = vd.stats();
    // Euler consistency: bounded faces == faces - unbounded one.
    EXPECT_EQ(st.bounded_faces, st.dcel_faces_euler - 1);
    // Lemma 2.2 aggregate bound: sum of breakpoints <= n * 2n.
    EXPECT_LE(st.gamma_breakpoints, 2 * 12 * 12);
    // Theorem 2.5: vertices O(n^3) — sanity ceiling with constant 4.
    EXPECT_LE(st.arrangement_vertices, 4 * 12 * 12 * 12);
    EXPECT_EQ(st.dropped_subarcs, 0);
    // Only the frame-exterior loop may stay unlabeled.
    EXPECT_LE(st.unlabeled_loops, 1);
    EXPECT_GT(st.label_nodes, 0);
  }
}

TEST(NonzeroVoronoi, SingleUncertainPointCoversPlane) {
  std::vector<UncertainPoint> pts = {UncertainPoint::Disk({0, 0}, 2.0)};
  NonzeroVoronoi vd(pts);
  EXPECT_EQ(vd.Query({0, 0}), (std::vector<int>{0}));
  EXPECT_EQ(vd.Query({100, -50}), (std::vector<int>{0}));
  EXPECT_EQ(vd.stats().arrangement_vertices, 0);
}

TEST(NonzeroVoronoi, CoincidentDisksAlwaysBothCandidates) {
  // Identical disks: each is a nonzero-NN everywhere (gamma curves empty).
  std::vector<UncertainPoint> pts = {UncertainPoint::Disk({1, 1}, 1.0),
                                     UncertainPoint::Disk({1, 1}, 1.0),
                                     UncertainPoint::Disk({9, 9}, 1.0)};
  NonzeroVoronoi vd(pts);
  auto at_far = vd.Query({-3, -3});
  EXPECT_EQ(at_far, (std::vector<int>{0, 1}));
  auto near_third = vd.Query({9, 9});
  // Disks 0/1 are ~11 away with Delta({9,9}) = 1, so only 2 qualifies.
  EXPECT_EQ(near_third, (std::vector<int>{2}));
}

TEST(NonzeroVoronoi, OverlappingDisksRandomAgreement) {
  // Heavily overlapping disks stress the gamma_ij-empty code paths.
  std::mt19937_64 rng(303);
  auto pts = RandomDisks(10, rng, /*spread=*/2.0, /*rmax=*/3.0);
  NonzeroVoronoi vd(pts);
  double tol = 1e-7 * vd.window().Diagonal();
  std::uniform_real_distribution<double> qu(-6, 6);
  int checked = 0;
  for (int t = 0; t < 300; ++t) {
    Vec2 q{qu(rng), qu(rng)};
    if (NearBoundary(pts, q, tol)) continue;
    ASSERT_EQ(vd.Query(q), baselines::NonzeroNn(pts, q)) << "t=" << t;
    ++checked;
  }
  EXPECT_GT(checked, 200);
}

TEST(NonzeroVoronoi, ExplicitWindowRespectedAndOutsideFallsBack) {
  std::mt19937_64 rng(21);
  auto pts = RandomDisks(6, rng);
  NonzeroVoronoiOptions opts;
  opts.window = geom::Box{{-3, -3}, {3, 3}};
  NonzeroVoronoi vd(pts, opts);
  Vec2 outside{50, 50};
  EXPECT_TRUE(vd.IsFallbackQuery(outside));
  EXPECT_EQ(vd.Query(outside), baselines::NonzeroNn(pts, outside));
}

}  // namespace
}  // namespace core
}  // namespace unn
