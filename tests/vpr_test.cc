#include "core/vpr_diagram.h"

#include <random>

#include <gtest/gtest.h>

#include "baselines/brute_force.h"
#include "core/exact_pnn.h"

namespace unn {
namespace core {
namespace {

using geom::Vec2;

std::vector<UncertainPoint> RandomDiscrete(int n, int k, std::mt19937_64& rng,
                                           double spread = 5.0) {
  std::uniform_real_distribution<double> pos(-spread, spread);
  std::vector<UncertainPoint> pts;
  for (int i = 0; i < n; ++i) {
    std::vector<Vec2> sites;
    for (int s = 0; s < k; ++s) sites.push_back({pos(rng), pos(rng)});
    pts.push_back(UncertainPoint::DiscreteUniform(sites));
  }
  return pts;
}

/// Distance of q to the nearest bisector of any two sites: the margin within
/// which a VPr face sample and the direct evaluation could disagree.
double BisectorMargin(const std::vector<UncertainPoint>& pts, Vec2 q) {
  std::vector<Vec2> sites;
  for (const auto& p : pts) {
    for (Vec2 s : p.sites()) sites.push_back(s);
  }
  double margin = 1e18;
  for (size_t a = 0; a < sites.size(); ++a) {
    for (size_t b = a + 1; b < sites.size(); ++b) {
      margin = std::min(margin,
                        std::abs(Dist(q, sites[a]) - Dist(q, sites[b])));
    }
  }
  return margin;
}

TEST(VprDiagram, MatchesDirectEvaluationAtRandomPoints) {
  std::mt19937_64 rng(31);
  for (int iter = 0; iter < 6; ++iter) {
    auto pts = RandomDiscrete(3 + iter % 2, 2, rng);
    VprDiagram vpr(pts);
    std::uniform_real_distribution<double> qu(-6, 6);
    int checked = 0;
    for (int t = 0; t < 150; ++t) {
      Vec2 q{qu(rng), qu(rng)};
      if (BisectorMargin(pts, q) < 1e-5) continue;
      auto got = vpr.Query(q);
      auto want = DiscreteQuantification(pts, q);
      ASSERT_EQ(got.size(), want.size()) << "iter=" << iter << " t=" << t;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].first, want[i].first);
        EXPECT_NEAR(got[i].second, want[i].second, 1e-9);
      }
      ++checked;
    }
    EXPECT_GT(checked, 100);
  }
}

TEST(VprDiagram, StatsReflectQuarticBlowup) {
  std::mt19937_64 rng(33);
  // Crossings should grow steeply (~N^4) with the number of sites.
  int64_t last = 0;
  for (int n : {2, 3, 4, 5}) {
    auto pts = RandomDiscrete(n, 2, rng);
    VprDiagram vpr(pts);
    int64_t faces = vpr.stats().bounded_faces;
    EXPECT_GT(faces, last);
    last = faces;
    // Upper bound: an arrangement of B lines has <= B(B-1)/2 + B + 1 faces.
    int64_t b = vpr.stats().num_bisectors;
    EXPECT_LE(vpr.stats().crossings, b * (b - 1) / 2);
  }
}

TEST(VprDiagram, OutsideWindowFallsBackExactly) {
  std::mt19937_64 rng(35);
  auto pts = RandomDiscrete(3, 2, rng);
  VprDiagramOptions opts;
  opts.window = geom::Box{{-2, -2}, {2, 2}};
  VprDiagram vpr(pts, opts);
  Vec2 q{40, 40};
  auto got = vpr.Query(q);
  auto want = DiscreteQuantification(pts, q);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].first, want[i].first);
    EXPECT_NEAR(got[i].second, want[i].second, 1e-12);
  }
}

}  // namespace
}  // namespace core
}  // namespace unn
