// Concurrency stress: many threads hammer one Engine and one QueryServer
// (including a mid-flight snapshot swap) and every answer must equal the
// single-threaded oracle run. Built for TSan: the cold-cache test races
// first queries into the call_once paths, the server test races Submit /
// QueryBatch against ReplaceDataset.

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "serve/query_server.h"
#include "workload/generators.h"

namespace unn {
namespace {

using core::UncertainPoint;
using geom::Vec2;

constexpr int kThreads = 8;

std::vector<Vec2> StressQueries(int count) {
  std::vector<Vec2> qs;
  for (int i = 0; i < count; ++i) {
    // Deterministic spread over the workload extent.
    qs.push_back({-11.0 + 22.0 * ((i * 37) % count) / count,
                  -11.0 + 22.0 * ((i * 61) % count) / count});
  }
  return qs;
}

/// One single-threaded pass over every query type — the oracle the
/// concurrent runs are compared against.
struct OracleRun {
  std::vector<int> most_probable;
  std::vector<int> expected_nn;
  std::vector<std::vector<std::pair<int, double>>> topk;
  std::vector<std::vector<int>> nonzero;
};

OracleRun RunSerial(const Engine& engine, const std::vector<Vec2>& qs) {
  OracleRun o;
  for (Vec2 q : qs) {
    o.most_probable.push_back(engine.MostProbableNn(q));
    o.expected_nn.push_back(engine.ExpectedDistanceNn(q));
    o.topk.push_back(engine.TopK(q, 3));
    o.nonzero.push_back(engine.NonzeroNn(q));
  }
  return o;
}

/// Hammers `engine` from kThreads threads and counts answers that differ
/// from the oracle. Returns the mismatch count (0 on success).
int HammerEngine(const Engine& engine, const std::vector<Vec2>& qs,
                 const OracleRun& oracle) {
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread starts at a different offset so the threads are never
      // in lockstep on the same structure path.
      for (size_t i = 0; i < qs.size(); ++i) {
        size_t j = (i + t * qs.size() / kThreads) % qs.size();
        Vec2 q = qs[j];
        if (engine.MostProbableNn(q) != oracle.most_probable[j]) ++mismatches;
        if (engine.ExpectedDistanceNn(q) != oracle.expected_nn[j]) {
          ++mismatches;
        }
        if (engine.TopK(q, 3) != oracle.topk[j]) ++mismatches;
        if (engine.NonzeroNn(q) != oracle.nonzero[j]) ++mismatches;
      }
    });
  }
  for (auto& th : threads) th.join();
  return mismatches.load();
}

TEST(EngineStress, WarmedEngineServesEightThreads) {
  auto pts = workload::RandomDiscrete(40, 3, 101);
  Engine engine(pts, {});
  for (auto type :
       {Engine::QueryType::kMostProbableNn, Engine::QueryType::kTopK,
        Engine::QueryType::kExpectedDistanceNn,
        Engine::QueryType::kNonzeroNn}) {
    engine.Warmup(type);
  }
  int built = engine.StructuresBuilt();

  auto qs = StressQueries(60);
  OracleRun oracle = RunSerial(engine, qs);
  EXPECT_EQ(HammerEngine(engine, qs, oracle), 0);
  // A warmed engine never builds under traffic.
  EXPECT_EQ(engine.StructuresBuilt(), built);
}

TEST(EngineStress, ColdCacheBuildsEachStructureExactlyOnce) {
  auto pts = workload::RandomDisks(24, 102);
  auto qs = StressQueries(30);

  // Oracle from an identically-configured twin (deterministic structures:
  // same points + config => same answers).
  Engine twin(pts, {});
  OracleRun oracle = RunSerial(twin, qs);

  // Race all first queries into the lazy cache.
  Engine engine(pts, {});
  EXPECT_EQ(engine.StructuresBuilt(), 0);
  EXPECT_EQ(HammerEngine(engine, qs, oracle), 0);
  // Every structure was built exactly once despite the race: the twin's
  // serial pass built the same set.
  EXPECT_EQ(engine.StructuresBuilt(), twin.StructuresBuilt());
}

TEST(QueryServerStress, EightClientsWithConcurrentSnapshotSwap) {
  auto pts_a = workload::RandomDiscrete(30, 3, 103);
  auto pts_b = workload::RandomDiscrete(36, 2, 104);
  auto qs = StressQueries(40);

  Engine::Config cfg;
  Engine oracle_a(pts_a, cfg);
  Engine oracle_b(pts_b, cfg);
  std::vector<int> ans_a, ans_b;
  for (Vec2 q : qs) {
    ans_a.push_back(oracle_a.MostProbableNn(q));
    ans_b.push_back(oracle_b.MostProbableNn(q));
  }

  serve::QueryServer server(
      pts_a, cfg,
      {.num_threads = 4, .warm = {Engine::QueryType::kMostProbableNn}});

  // 8 client threads mix Submit and QueryBatch while the main thread swaps
  // the dataset. Every answer must match one of the two oracles (a request
  // runs entirely on the snapshot it was pinned to).
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      Engine::QuerySpec spec{Engine::QueryType::kMostProbableNn, 0.5, 1};
      for (int round = 0; round < 6; ++round) {
        if ((t + round) % 2 == 0) {
          auto results = server.QueryBatch(qs, spec);
          for (size_t i = 0; i < qs.size(); ++i) {
            if (results[i].nn != ans_a[i] && results[i].nn != ans_b[i]) {
              ++mismatches;
            }
          }
        } else {
          size_t i = static_cast<size_t>(t * 7 + round) % qs.size();
          int nn = server.Submit(qs[i], spec).get().nn;
          if (nn != ans_a[i] && nn != ans_b[i]) ++mismatches;
        }
      }
    });
  }
  // Swap roughly mid-flight.
  server.ReplaceDataset(pts_b);
  for (auto& th : clients) th.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(server.stats().swaps, 1u);

  // After the dust settles, the server answers for dataset B only.
  auto final_results =
      server.QueryBatch(qs, {Engine::QueryType::kMostProbableNn});
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(final_results[i].nn, ans_b[i]);
  }
}

// The batched QueryMany path (pack grouping + shared-traversal kernels)
// racing ReplaceDataset: every answer must match one of the two
// snapshots' oracles, bit-identically, because a batch runs entirely on
// the snapshot it pinned on entry and batching never changes results.
TEST(QueryServerStress, BatchedPacksRacingSnapshotSwap) {
  auto pts_a = workload::RandomDiscrete(32, 3, 105);
  auto pts_b = workload::RandomDiscrete(28, 2, 106);
  auto qs = StressQueries(33);  // Ragged final pack in every batch.

  Engine::Config cfg;  // batch_traversal defaults to true.
  Engine oracle_a(pts_a, cfg);
  Engine oracle_b(pts_b, cfg);
  std::vector<int> ans_a, ans_b;
  for (Vec2 q : qs) {
    ans_a.push_back(oracle_a.ExpectedDistanceNn(q));
    ans_b.push_back(oracle_b.ExpectedDistanceNn(q));
  }

  serve::QueryServer server(
      pts_a, cfg,
      {.num_threads = 4, .warm = {Engine::QueryType::kExpectedDistanceNn}});

  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      Engine::QuerySpec spec{Engine::QueryType::kExpectedDistanceNn, 0.5, 1};
      for (int round = 0; round < 6; ++round) {
        auto results = server.QueryBatch(qs, spec);
        for (size_t i = 0; i < qs.size(); ++i) {
          if (results[i].nn != ans_a[i] && results[i].nn != ans_b[i]) {
            ++mismatches;
          }
        }
      }
    });
  }
  server.ReplaceDataset(pts_b);
  for (auto& th : clients) th.join();

  EXPECT_EQ(mismatches.load(), 0);

  // Settled: dataset B only, still bit-identical to its scalar oracle.
  auto final_results =
      server.QueryBatch(qs, {Engine::QueryType::kExpectedDistanceNn});
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(final_results[i].nn, ans_b[i]);
  }
}

// All five query types' batched kernels racing ReplaceDataset with
// worker pinning on: clients fire ragged, varying-length packs of every
// type while the snapshot swaps underneath. Each answer must be
// bit-identical to one of the two snapshots' scalar-oracle runs — a
// batch runs entirely on the snapshot it pinned on entry, batching
// never changes results, and per-query answers are independent of pack
// composition (the prefix of a longer batch equals the full batch).
// pin_cpus exercises the ThreadPool affinity path under TSan; pinning
// is a placement hint and must be invisible in results.
TEST(QueryServerStress, MixedTypeRaggedPacksRacingSwapWithPinnedWorkers) {
  auto pts_a = workload::RandomDiscrete(32, 3, 107);
  auto pts_b = workload::RandomDiscrete(28, 2, 108);
  auto qs = StressQueries(33);  // 33 = 4 packs + a ragged singleton.

  const std::vector<Engine::QuerySpec> specs = {
      {Engine::QueryType::kMostProbableNn, 0.5, 1},
      {Engine::QueryType::kExpectedDistanceNn, 0.5, 1},
      {Engine::QueryType::kThreshold, 0.25, 1},
      {Engine::QueryType::kTopK, 0.5, 3},
      {Engine::QueryType::kNonzeroNn, 0.5, 1},
  };

  Engine::Config cfg;
  cfg.batch_traversal = false;  // The oracles are the scalar engines.
  Engine oracle_a(pts_a, cfg);
  Engine oracle_b(pts_b, cfg);
  std::vector<std::vector<Engine::QueryResult>> ans_a, ans_b;
  for (const auto& spec : specs) {
    ans_a.push_back(oracle_a.QueryMany(qs, spec));
    ans_b.push_back(oracle_b.QueryMany(qs, spec));
  }
  auto same = [](const Engine::QueryResult& x, const Engine::QueryResult& y) {
    return x.nn == y.nn && x.ranked == y.ranked && x.ids == y.ids;
  };

  serve::QueryServer::Options options;
  options.num_threads = 4;
  options.pin_cpus = {0};  // CPU 0 always exists; failure degrades.
  for (const auto& spec : specs) options.warm.push_back(spec.type);
  serve::QueryServer server(pts_a, Engine::Config{}, options);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int round = 0; round < 5; ++round) {
        size_t s = static_cast<size_t>(t + round) % specs.size();
        // Varying batch length: every pack boundary and ragged tail in
        // [1, 33] shows up across threads and rounds.
        size_t len = qs.size() - static_cast<size_t>(t * 4 + round) % 9;
        std::vector<Vec2> sub(qs.begin(), qs.begin() + len);
        auto results = server.QueryBatch(sub, specs[s]);
        for (size_t i = 0; i < sub.size(); ++i) {
          if (!same(results[i], ans_a[s][i]) &&
              !same(results[i], ans_b[s][i])) {
            ++mismatches;
          }
        }
      }
    });
  }
  server.ReplaceDataset(pts_b);
  for (auto& th : clients) th.join();
  EXPECT_EQ(mismatches.load(), 0);

  // Settled: dataset B only, every type still scalar-oracle-identical.
  for (size_t s = 0; s < specs.size(); ++s) {
    auto results = server.QueryBatch(qs, specs[s]);
    for (size_t i = 0; i < qs.size(); ++i) {
      EXPECT_TRUE(same(results[i], ans_b[s][i]))
          << "type " << static_cast<int>(specs[s].type) << " query " << i;
    }
  }
}

TEST(QueryServerStress, SubmitRacingShutdownAnswersInline) {
  // Regression for the shutdown race: a Submit that lands after the
  // server's pool has flipped to stopping used to hard-abort in
  // ThreadPool::Post; it must instead run inline against the pinned
  // snapshot. The pool's workers are parked on a gate so the destructor
  // blocks mid-join with the queue refusing new tasks, while a second
  // thread keeps submitting; every future must still produce the oracle
  // answer.
  auto pts = workload::RandomDiscrete(16, 2, 105);
  Engine::QuerySpec spec{Engine::QueryType::kMostProbableNn, 0.5, 1};
  Engine oracle(pts, {});
  Vec2 q{0.25, -0.5};
  int want = oracle.MostProbableNn(q);

  constexpr int kWorkers = 2;
  auto server = std::make_unique<serve::QueryServer>(
      pts, Engine::Config{},
      serve::QueryServer::Options{
          .num_threads = kWorkers,
          .warm = {Engine::QueryType::kMostProbableNn}});

  std::atomic<int> gated{0};
  std::atomic<bool> release{false};
  for (int i = 0; i < kWorkers; ++i) {
    server->pool().Post([&] {
      gated.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
    });
  }
  while (gated.load() < kWorkers) std::this_thread::yield();

  // Queued before shutdown: these sit behind the gate and drain while the
  // destructor joins the workers.
  std::vector<std::future<Engine::QueryResult>> queued;
  for (int i = 0; i < 4; ++i) queued.push_back(server->Submit(q, spec));

  // unique_ptr::reset nulls its pointer before the (blocking) destructor
  // runs, so the racing submitter must address the object directly.
  serve::QueryServer* raw = server.get();
  std::atomic<bool> destroying{false};
  std::thread submitter([&] {
    while (!destroying.load()) std::this_thread::yield();
    // Give the destructor time to reach the pool teardown; submits that
    // still win the race simply enqueue and drain like the ones above.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    std::vector<std::future<Engine::QueryResult>> racing;
    for (int i = 0; i < 32; ++i) racing.push_back(raw->Submit(q, spec));
    release.store(true);  // Unpark the workers; the destructor finishes.
    for (auto& fut : racing) EXPECT_EQ(fut.get().nn, want);
  });

  destroying.store(true);
  server.reset();  // Blocks joining the gated workers until `release`.
  submitter.join();
  for (auto& fut : queued) EXPECT_EQ(fut.get().nn, want);
}

TEST(QueryServerStress, CacheHitsRacingSnapshotSwaps) {
  // The cache invalidation story under fire: clients hammer a small
  // repeated query set (high hit rate) while the main thread swaps the
  // dataset back and forth. Every response must match one of the two
  // datasets' oracles — a hit must never surface a result from the wrong
  // generation — and sources must be computed/cache only.
  auto pts_a = workload::RandomDiscrete(30, 3, 103);
  auto pts_b = workload::RandomDiscrete(36, 2, 104);
  auto qs = StressQueries(16);

  Engine::Config cfg;
  Engine oracle_a(pts_a, cfg);
  Engine oracle_b(pts_b, cfg);
  std::vector<int> ans_a, ans_b;
  for (Vec2 q : qs) {
    ans_a.push_back(oracle_a.MostProbableNn(q));
    ans_b.push_back(oracle_b.MostProbableNn(q));
  }

  serve::QueryServer::Options options;
  options.num_threads = 4;
  options.warm = {Engine::QueryType::kMostProbableNn};
  options.cache.max_bytes = 1u << 20;
  serve::QueryServer server(pts_a, cfg, options);

  std::atomic<int> mismatches{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      serve::Request req;
      for (int i = 0; !stop.load(); ++i) {
        size_t j = (i + t * 5) % qs.size();
        req.q = qs[j];
        serve::Response r = server.Submit(req).get();
        if (r.source != serve::ResultSource::kComputed &&
            r.source != serve::ResultSource::kCache) {
          ++mismatches;
        }
        if (r.result.nn != ans_a[j] && r.result.nn != ans_b[j]) {
          ++mismatches;
        }
      }
    });
  }

  for (int swap = 0; swap < 6; ++swap) {
    server.ReplaceDataset(swap % 2 == 0 ? pts_b : pts_a);
  }
  // Let the clients reach steady state on the final generation: once a
  // hit lands, the cache has demonstrably served across the swap storm.
  while (server.stats().cache.hits == 0) std::this_thread::yield();
  stop.store(true);
  for (auto& th : clients) th.join();

  EXPECT_EQ(mismatches.load(), 0);
  auto s = server.stats();
  EXPECT_EQ(s.swaps, 6u);
  EXPECT_EQ(server.generation(), 7u);
  EXPECT_GT(s.cache.hits, 0u);
}

TEST(QueryServerStress, ShedDeadlineAndComputedAccountingUnderOverload) {
  // Admission control under contention: clients submit with a mix of no
  // deadline, generous deadlines and already-expired deadlines against a
  // tiny in-flight limit. Every future must resolve, client-side tallies
  // by source must equal the server's counters after quiescing, and
  // nothing may race (TSan runs this).
  auto pts = workload::RandomDiscrete(24, 3, 106);
  serve::QueryServer::Options options;
  options.num_threads = 2;
  options.warm = {Engine::QueryType::kMostProbableNn};
  options.max_inflight = 2;
  serve::QueryServer server(pts, {}, options);

  auto qs = StressQueries(20);
  constexpr int kPerThread = 120;
  std::atomic<uint64_t> computed{0}, shed{0}, deadline{0}, cached{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        serve::Request req;
        req.q = qs[(i + t * 7) % qs.size()];
        req.priority = static_cast<serve::Priority>(i % 3);
        if (i % 5 == 3) {
          req.deadline = std::chrono::steady_clock::now() -
                         std::chrono::milliseconds(1);
        } else if (i % 5 == 4) {
          req.deadline = serve::DeadlineAfter(std::chrono::minutes(5));
        }
        switch (server.Submit(req).get().source) {
          case serve::ResultSource::kComputed:
            ++computed;
            break;
          case serve::ResultSource::kShed:
            ++shed;
            break;
          case serve::ResultSource::kDeadlineExceeded:
            ++deadline;
            break;
          case serve::ResultSource::kCache:
            ++cached;
            break;
          default:
            ADD_FAILURE() << "unexpected source";
        }
      }
    });
  }
  for (auto& th : clients) th.join();

  auto s = server.stats();
  const uint64_t total = static_cast<uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(s.queries, total);
  EXPECT_EQ(computed.load() + shed.load() + deadline.load() + cached.load(),
            total);
  EXPECT_EQ(s.shed, shed.load());
  EXPECT_EQ(s.deadline_exceeded, deadline.load());
  EXPECT_GE(s.deadline_exceeded, static_cast<uint64_t>(kThreads));
  // Answered requests (and only those) entered the histograms.
  uint64_t hist = 0;
  for (int t = 0; t < serve::kNumQueryTypes; ++t) {
    hist += s.latency_by_type[t].count;
  }
  EXPECT_EQ(hist, computed.load() + cached.load());
  // The cache is off in this config.
  EXPECT_EQ(cached.load(), 0u);
}

}  // namespace
}  // namespace unn
