#include "core/nn_nonzero_discrete_index.h"
#include "core/nonzero_voronoi_discrete.h"

#include <random>

#include <gtest/gtest.h>

#include "baselines/brute_force.h"

namespace unn {
namespace core {
namespace {

using geom::Vec2;

std::vector<UncertainPoint> RandomDiscrete(int n, int k, std::mt19937_64& rng,
                                           double spread = 10.0,
                                           double cluster = 1.5) {
  std::uniform_real_distribution<double> pos(-spread, spread);
  std::uniform_real_distribution<double> off(-cluster, cluster);
  std::vector<UncertainPoint> pts;
  for (int i = 0; i < n; ++i) {
    double cx = pos(rng), cy = pos(rng);
    std::vector<Vec2> sites;
    for (int s = 0; s < k; ++s) {
      double ox = off(rng), oy = off(rng);
      sites.push_back({cx + ox, cy + oy});
    }
    pts.push_back(UncertainPoint::DiscreteUniform(sites));
  }
  return pts;
}

bool NearBoundary(const std::vector<UncertainPoint>& pts, Vec2 q, double tol) {
  double delta = GlobalMaxDistLowerEnvelope(pts, q);
  for (const auto& p : pts) {
    if (std::abs(p.MinDist(q) - delta) < tol) return true;
  }
  return false;
}

TEST(NonzeroVoronoiDiscrete, TwoPointsSanity) {
  std::vector<UncertainPoint> pts = {
      UncertainPoint::DiscreteUniform({{-5, 0}, {-4, 1}}),
      UncertainPoint::DiscreteUniform({{5, 0}, {4, -1}})};
  NonzeroVoronoiDiscrete vd(pts);
  EXPECT_EQ(vd.Query({-5, 0}), (std::vector<int>{0}));
  EXPECT_EQ(vd.Query({5, 0}), (std::vector<int>{1}));
  EXPECT_EQ(vd.Query({0, 0.37}), (std::vector<int>{0, 1}));
}

TEST(NonzeroVoronoiDiscrete, MatchesBruteForceRandom) {
  std::mt19937_64 rng(500);
  struct Config {
    int n, k;
  };
  for (Config cfg : {Config{2, 2}, Config{4, 2}, Config{6, 3}, Config{8, 4}}) {
    for (int iter = 0; iter < 3; ++iter) {
      auto pts = RandomDiscrete(cfg.n, cfg.k, rng);
      NonzeroVoronoiDiscrete vd(pts);
      double tol = 1e-7 * vd.window().Diagonal();
      std::uniform_real_distribution<double> qu(-13, 13);
      int checked = 0;
      for (int t = 0; t < 200; ++t) {
        Vec2 q{qu(rng), qu(rng)};
        if (NearBoundary(pts, q, tol)) continue;
        auto got = vd.Query(q);
        auto want = baselines::NonzeroNn(pts, q);
        ASSERT_EQ(got, want)
            << "n=" << cfg.n << " k=" << cfg.k << " iter=" << iter << " q=("
            << q.x << "," << q.y << ")";
        ++checked;
      }
      EXPECT_GT(checked, 150);
    }
  }
}

TEST(NonzeroVoronoiDiscrete, StatsInvariants) {
  std::mt19937_64 rng(501);
  auto pts = RandomDiscrete(6, 3, rng);
  NonzeroVoronoiDiscrete vd(pts);
  const auto& st = vd.stats();
  EXPECT_GT(st.union_segments, 0);
  EXPECT_EQ(st.bounded_faces, vd.subdivision().NumFacesEuler() - 1);
  EXPECT_LE(st.unlabeled_loops, 1);
  EXPECT_GT(st.label_nodes, 0);
  // Theorem 2.14 ceiling with a generous constant: O(k n^3).
  EXPECT_LE(st.crossings, 8 * 3 * 6 * 6 * 6);
}

TEST(NonzeroVoronoiDiscrete, SingletonSitesBehaveLikeCertainPoints) {
  // k = 1 discrete points: NN!=0 away from bisectors is exactly the NN.
  std::vector<UncertainPoint> pts = {
      UncertainPoint::DiscreteUniform({{0, 0}}),
      UncertainPoint::DiscreteUniform({{10, 0}}),
      UncertainPoint::DiscreteUniform({{0, 10}})};
  NonzeroVoronoiDiscrete vd(pts);
  EXPECT_EQ(vd.Query({1, 1}), (std::vector<int>{0}));
  EXPECT_EQ(vd.Query({9, 1}), (std::vector<int>{1}));
  EXPECT_EQ(vd.Query({1, 9}), (std::vector<int>{2}));
}

TEST(NnNonzeroDiscreteIndex, MatchesBruteForceRandom) {
  std::mt19937_64 rng(502);
  for (int n : {1, 3, 10, 40, 120}) {
    int k = 1 + static_cast<int>(rng() % 5);
    auto pts = RandomDiscrete(n, k, rng);
    NnNonzeroDiscreteIndex ix(pts);
    std::uniform_real_distribution<double> qu(-15, 15);
    for (int t = 0; t < 150; ++t) {
      Vec2 q{qu(rng), qu(rng)};
      auto got = ix.Query(q);
      auto want = baselines::NonzeroNn(pts, q);
      ASSERT_EQ(got, want) << "n=" << n << " k=" << k;
    }
  }
}

TEST(NnNonzeroDiscreteIndex, DeltaMatchesDefinition) {
  std::mt19937_64 rng(503);
  auto pts = RandomDiscrete(60, 4, rng);
  NnNonzeroDiscreteIndex ix(pts);
  std::uniform_real_distribution<double> qu(-15, 15);
  for (int t = 0; t < 300; ++t) {
    Vec2 q{qu(rng), qu(rng)};
    EXPECT_NEAR(ix.Delta(q), GlobalMaxDistLowerEnvelope(pts, q), 1e-9);
  }
}

TEST(NnNonzeroDiscreteIndex, AgreesWithDiscreteDiagram) {
  std::mt19937_64 rng(504);
  auto pts = RandomDiscrete(6, 3, rng);
  NnNonzeroDiscreteIndex ix(pts);
  NonzeroVoronoiDiscrete vd(pts);
  double tol = 1e-7 * vd.window().Diagonal();
  std::uniform_real_distribution<double> qu(-13, 13);
  int checked = 0;
  for (int t = 0; t < 250; ++t) {
    Vec2 q{qu(rng), qu(rng)};
    if (NearBoundary(pts, q, tol)) continue;
    ASSERT_EQ(ix.Query(q), vd.Query(q)) << "t=" << t;
    ++checked;
  }
  EXPECT_GT(checked, 200);
}

}  // namespace
}  // namespace core
}  // namespace unn
