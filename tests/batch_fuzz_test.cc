// Differential fuzz harness for the batched traversal kernels
// (spatial/batch.h, geom/lanes.h): every batch entry point must be
// bit-identical to its scalar counterpart — including argmin tie
// semantics — on adversarial inputs: clustered sites, coincident
// anchors, duplicated points, equal radii, duplicate coordinates, and
// queries snapped onto site coordinates so distances tie exactly.
// Batch sizes sweep 1..2*kLaneWidth+1, covering every pack size 1..8
// and ragged final packs. CTest runs a fixed seeded corpus; the nightly
// CI job raises the iteration count through UNN_FUZZ_ITERS.

#include <algorithm>
#include <cstdlib>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/expected_nn.h"
#include "core/uncertain_point.h"
#include "engine/engine.h"
#include "geom/lanes.h"
#include "range/kdtree.h"
#include "workload/generators.h"

namespace unn {
namespace {

using core::UncertainPoint;
using geom::Vec2;

int FuzzIters(int base) {
  const char* env = std::getenv("UNN_FUZZ_ITERS");
  if (env == nullptr) return base;
  int v = std::atoi(env);
  return v > 0 ? v : base;
}

// ---------------------------------------------------------------------------
// Adversarial generators. All deterministic in the seed.
// ---------------------------------------------------------------------------

/// Discrete points in a handful of tight clusters; site coordinates are
/// snapped to a coarse grid so exact duplicates appear across points.
std::vector<UncertainPoint> ClusteredDiscrete(int n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(-8, 8);
  std::uniform_int_distribution<int> grid(-6, 6);
  std::uniform_int_distribution<int> nsites(1, 4);
  int clusters = 3 + static_cast<int>(seed % 4);
  std::vector<Vec2> centers(clusters);
  for (auto& c : centers) c = {u(rng), u(rng)};
  std::vector<UncertainPoint> pts;
  pts.reserve(n);
  for (int i = 0; i < n; ++i) {
    Vec2 c = centers[i % clusters];
    int k = nsites(rng);
    std::vector<Vec2> sites(k);
    for (auto& s : sites) {
      s = {c.x + grid(rng) * 0.25, c.y + grid(rng) * 0.25};
    }
    pts.push_back(UncertainPoint::DiscreteUniform(std::move(sites)));
  }
  return pts;
}

/// Many points sharing the exact same mean (sites mirrored around a few
/// anchors), so expected-squared values tie whenever variances do — the
/// hardest case for the tie-replay scheme.
std::vector<UncertainPoint> CoincidentAnchors(int n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(-5, 5);
  std::uniform_int_distribution<int> offset(1, 3);
  int anchors = 2 + static_cast<int>(seed % 3);
  std::vector<Vec2> centers(anchors);
  for (auto& c : centers) c = {u(rng), u(rng)};
  std::vector<UncertainPoint> pts;
  pts.reserve(n);
  for (int i = 0; i < n; ++i) {
    Vec2 c = centers[i % anchors];
    // Half the points repeat the same mirrored pair (exact duplicates,
    // equal mean AND equal variance); the rest vary the offset.
    double d = (i % 2 == 0) ? 0.5 : offset(rng) * 0.5;
    pts.push_back(UncertainPoint::DiscreteUniform(
        {{c.x - d, c.y}, {c.x + d, c.y}}));
  }
  return pts;
}

/// Disks with equal radii, several on exactly coincident centers.
std::vector<UncertainPoint> EqualRadiusDisks(int n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> grid(-5, 5);
  std::vector<UncertainPoint> pts;
  pts.reserve(n);
  for (int i = 0; i < n; ++i) {
    Vec2 c{grid(rng) * 1.0, grid(rng) * 1.0};  // Coarse grid: collisions.
    pts.push_back(UncertainPoint::Disk(c, 0.75));
  }
  return pts;
}

/// Queries that frequently coincide with the grid the generators snap
/// sites to (exact zero distances and exact ties), mixed with random
/// off-grid points.
std::vector<Vec2> AdversarialQueries(int n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(-9, 9);
  std::uniform_int_distribution<int> grid(-8, 8);
  std::vector<Vec2> qs(n);
  for (int i = 0; i < n; ++i) {
    if (i % 3 == 0) {
      qs[i] = {u(rng), u(rng)};
    } else {
      qs[i] = {grid(rng) * 0.25, grid(rng) * 0.25};
    }
  }
  return qs;
}

std::vector<UncertainPoint> AdversarialSet(int which, int n, uint64_t seed) {
  switch (which % 4) {
    case 0:
      return ClusteredDiscrete(n, seed);
    case 1:
      return CoincidentAnchors(n, seed);
    case 2:
      return EqualRadiusDisks(n, seed);
    default:
      return workload::RandomDiscrete(n, 3, seed);
  }
}

// ---------------------------------------------------------------------------
// Kernel-level differentials
// ---------------------------------------------------------------------------

TEST(BatchFuzz, QuerySquaredBatchBitIdentical) {
  int iters = FuzzIters(8);
  for (int it = 0; it < iters; ++it) {
    uint64_t seed = 1000 + 17 * static_cast<uint64_t>(it);
    auto pts = AdversarialSet(it, 40 + (it % 5) * 23, seed);
    core::ExpectedNn index(pts);
    // Every batch size from a lone ragged pack up to full packs plus a
    // ragged tail.
    for (int m = 1; m <= 2 * geom::kLaneWidth + 1; ++m) {
      auto qs = AdversarialQueries(m, seed + m);
      std::vector<int> got(qs.size());
      spatial::BatchStats stats;
      index.QuerySquaredBatch(qs, got, &stats);
      EXPECT_GT(stats.packs, 0);
      for (size_t i = 0; i < qs.size(); ++i) {
        EXPECT_EQ(got[i], index.QuerySquared(qs[i]))
            << "it=" << it << " m=" << m << " i=" << i;
      }
    }
  }
}

TEST(BatchFuzz, QueryExpectedBatchBitIdentical) {
  int iters = FuzzIters(6);
  for (int it = 0; it < iters; ++it) {
    uint64_t seed = 2000 + 31 * static_cast<uint64_t>(it);
    // Includes the disk sets: those must take the per-lane scalar
    // fallback and still match exactly.
    auto pts = AdversarialSet(it, 30 + (it % 4) * 17, seed);
    core::ExpectedNn index(pts);
    for (int m : {1, 3, geom::kLaneWidth, geom::kLaneWidth + 5}) {
      auto qs = AdversarialQueries(m, seed + m);
      std::vector<int> got(qs.size());
      spatial::BatchStats stats;
      index.QueryExpectedBatch(qs, 1e-8, got, &stats);
      for (size_t i = 0; i < qs.size(); ++i) {
        EXPECT_EQ(got[i], index.QueryExpected(qs[i], 1e-8))
            << "it=" << it << " m=" << m << " i=" << i;
      }
    }
  }
}

TEST(BatchFuzz, KdNearestBatchBitIdentical) {
  int iters = FuzzIters(8);
  for (int it = 0; it < iters; ++it) {
    uint64_t seed = 3000 + 13 * static_cast<uint64_t>(it);
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> grid(-12, 12);
    std::uniform_real_distribution<double> u(-10, 10);
    int n = 50 + (it % 6) * 31;
    std::vector<Vec2> pts(n);
    for (int i = 0; i < n; ++i) {
      // Duplicate coordinates on purpose: grid snapping plus literal
      // repeats of earlier points.
      if (i % 7 == 3 && i > 0) {
        pts[i] = pts[rng() % i];
      } else if (i % 2 == 0) {
        pts[i] = {grid(rng) * 0.5, grid(rng) * 0.5};
      } else {
        pts[i] = {u(rng), u(rng)};
      }
    }
    range::KdTree tree(pts);
    for (int m = 1; m <= 2 * geom::kLaneWidth + 1; ++m) {
      auto qs = AdversarialQueries(m, seed + m);
      std::vector<int> ids(qs.size());
      std::vector<double> dists(qs.size());
      tree.NearestBatch(qs, ids, dists);
      for (size_t i = 0; i < qs.size(); ++i) {
        double want_d = 0;
        int want = tree.Nearest(qs[i], &want_d);
        EXPECT_EQ(ids[i], want) << "it=" << it << " m=" << m << " i=" << i;
        EXPECT_EQ(dists[i], want_d)
            << "it=" << it << " m=" << m << " i=" << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Engine-level differential: QueryMany with batching on vs off must give
// identical results for all five query types on randomized batches.
// ---------------------------------------------------------------------------

TEST(BatchFuzz, EngineQueryManyBatchedMatchesScalar) {
  int iters = FuzzIters(3);
  const Engine::QuerySpec specs[] = {
      {Engine::QueryType::kMostProbableNn, 0.5, 1},
      {Engine::QueryType::kExpectedDistanceNn, 0.5, 1},
      {Engine::QueryType::kThreshold, 0.25, 1},
      {Engine::QueryType::kTopK, 0.5, 3},
      {Engine::QueryType::kNonzeroNn, 0.5, 1},
  };
  for (int it = 0; it < iters; ++it) {
    uint64_t seed = 4000 + 7 * static_cast<uint64_t>(it);
    auto pts = AdversarialSet(it, 24 + it * 9, seed);
    Engine::Config batched_cfg;
    Engine::Config scalar_cfg;
    scalar_cfg.batch_traversal = false;
    Engine batched(pts, batched_cfg);
    Engine scalar(pts, scalar_cfg);
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> msize(1, 2 * geom::kLaneWidth + 1);
    for (const Engine::QuerySpec& spec : specs) {
      auto qs = AdversarialQueries(msize(rng), seed + 99);
      auto got = batched.QueryMany(qs, spec);
      auto want = scalar.QueryMany(qs, spec);
      ASSERT_EQ(got.size(), want.size());
      for (size_t i = 0; i < qs.size(); ++i) {
        EXPECT_EQ(got[i].nn, want[i].nn);
        EXPECT_EQ(got[i].ranked, want[i].ranked);
        EXPECT_EQ(got[i].ids, want[i].ids);
      }
    }
  }
}

// The single-query entry point and the batched path must agree too (the
// result cache mixes the two freely under one snapshot key).
TEST(BatchFuzz, SingleQueryAgreesWithBatchedQueryMany) {
  auto pts = CoincidentAnchors(36, 77);
  Engine engine(pts);
  auto qs = AdversarialQueries(19, 78);
  auto many = engine.QueryMany(
      qs, {Engine::QueryType::kExpectedDistanceNn, 0.5, 1});
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(many[i].nn, engine.ExpectedDistanceNn(qs[i]));
  }
}

}  // namespace
}  // namespace unn
