// Differential fuzz harness for the batched traversal kernels
// (spatial/batch.h, geom/lanes.h): every batch entry point must be
// bit-identical to its scalar counterpart — including argmin tie
// semantics — on adversarial inputs: clustered sites, coincident
// anchors, duplicated points, equal radii, duplicate coordinates, and
// queries snapped onto site coordinates so distances tie exactly.
// Batch sizes sweep 1..2*kLaneWidth+1, covering every pack size 1..8
// and ragged final packs. CTest runs a fixed seeded corpus; the nightly
// CI job raises the iteration count through UNN_FUZZ_ITERS.

#include <algorithm>
#include <cstdlib>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/expected_nn.h"
#include "core/monte_carlo_pnn.h"
#include "core/nn_nonzero_discrete_index.h"
#include "core/quant_tree.h"
#include "core/spiral_search.h"
#include "core/uncertain_point.h"
#include "engine/engine.h"
#include "geom/lanes.h"
#include "range/kdtree.h"
#include "workload/generators.h"

namespace unn {
namespace {

using core::UncertainPoint;
using geom::Vec2;

int FuzzIters(int base) {
  const char* env = std::getenv("UNN_FUZZ_ITERS");
  if (env == nullptr) return base;
  int v = std::atoi(env);
  return v > 0 ? v : base;
}

// ---------------------------------------------------------------------------
// Adversarial generators. All deterministic in the seed.
// ---------------------------------------------------------------------------

/// Discrete points in a handful of tight clusters; site coordinates are
/// snapped to a coarse grid so exact duplicates appear across points.
std::vector<UncertainPoint> ClusteredDiscrete(int n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(-8, 8);
  std::uniform_int_distribution<int> grid(-6, 6);
  std::uniform_int_distribution<int> nsites(1, 4);
  int clusters = 3 + static_cast<int>(seed % 4);
  std::vector<Vec2> centers(clusters);
  for (auto& c : centers) c = {u(rng), u(rng)};
  std::vector<UncertainPoint> pts;
  pts.reserve(n);
  for (int i = 0; i < n; ++i) {
    Vec2 c = centers[i % clusters];
    int k = nsites(rng);
    std::vector<Vec2> sites(k);
    for (auto& s : sites) {
      s = {c.x + grid(rng) * 0.25, c.y + grid(rng) * 0.25};
    }
    pts.push_back(UncertainPoint::DiscreteUniform(std::move(sites)));
  }
  return pts;
}

/// Many points sharing the exact same mean (sites mirrored around a few
/// anchors), so expected-squared values tie whenever variances do — the
/// hardest case for the tie-replay scheme.
std::vector<UncertainPoint> CoincidentAnchors(int n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(-5, 5);
  std::uniform_int_distribution<int> offset(1, 3);
  int anchors = 2 + static_cast<int>(seed % 3);
  std::vector<Vec2> centers(anchors);
  for (auto& c : centers) c = {u(rng), u(rng)};
  std::vector<UncertainPoint> pts;
  pts.reserve(n);
  for (int i = 0; i < n; ++i) {
    Vec2 c = centers[i % anchors];
    // Half the points repeat the same mirrored pair (exact duplicates,
    // equal mean AND equal variance); the rest vary the offset.
    double d = (i % 2 == 0) ? 0.5 : offset(rng) * 0.5;
    pts.push_back(UncertainPoint::DiscreteUniform(
        {{c.x - d, c.y}, {c.x + d, c.y}}));
  }
  return pts;
}

/// Disks with equal radii, several on exactly coincident centers.
std::vector<UncertainPoint> EqualRadiusDisks(int n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> grid(-5, 5);
  std::vector<UncertainPoint> pts;
  pts.reserve(n);
  for (int i = 0; i < n; ++i) {
    Vec2 c{grid(rng) * 1.0, grid(rng) * 1.0};  // Coarse grid: collisions.
    pts.push_back(UncertainPoint::Disk(c, 0.75));
  }
  return pts;
}

/// Queries that frequently coincide with the grid the generators snap
/// sites to (exact zero distances and exact ties), mixed with random
/// off-grid points.
std::vector<Vec2> AdversarialQueries(int n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(-9, 9);
  std::uniform_int_distribution<int> grid(-8, 8);
  std::vector<Vec2> qs(n);
  for (int i = 0; i < n; ++i) {
    if (i % 3 == 0) {
      qs[i] = {u(rng), u(rng)};
    } else {
      qs[i] = {grid(rng) * 0.25, grid(rng) * 0.25};
    }
  }
  return qs;
}

std::vector<UncertainPoint> AdversarialSet(int which, int n, uint64_t seed) {
  switch (which % 4) {
    case 0:
      return ClusteredDiscrete(n, seed);
    case 1:
      return CoincidentAnchors(n, seed);
    case 2:
      return EqualRadiusDisks(n, seed);
    default:
      return workload::RandomDiscrete(n, 3, seed);
  }
}

// ---------------------------------------------------------------------------
// Kernel-level differentials
// ---------------------------------------------------------------------------

TEST(BatchFuzz, QuerySquaredBatchBitIdentical) {
  int iters = FuzzIters(8);
  for (int it = 0; it < iters; ++it) {
    uint64_t seed = 1000 + 17 * static_cast<uint64_t>(it);
    auto pts = AdversarialSet(it, 40 + (it % 5) * 23, seed);
    core::ExpectedNn index(pts);
    // Every batch size from a lone ragged pack up to full packs plus a
    // ragged tail.
    for (int m = 1; m <= 2 * geom::kLaneWidth + 1; ++m) {
      auto qs = AdversarialQueries(m, seed + m);
      std::vector<int> got(qs.size());
      spatial::BatchStats stats;
      index.QuerySquaredBatch(qs, got, &stats);
      EXPECT_GT(stats.packs, 0);
      for (size_t i = 0; i < qs.size(); ++i) {
        EXPECT_EQ(got[i], index.QuerySquared(qs[i]))
            << "it=" << it << " m=" << m << " i=" << i;
      }
    }
  }
}

TEST(BatchFuzz, QueryExpectedBatchBitIdentical) {
  int iters = FuzzIters(6);
  for (int it = 0; it < iters; ++it) {
    uint64_t seed = 2000 + 31 * static_cast<uint64_t>(it);
    // Includes the disk sets: those must take the per-lane scalar
    // fallback and still match exactly.
    auto pts = AdversarialSet(it, 30 + (it % 4) * 17, seed);
    core::ExpectedNn index(pts);
    for (int m : {1, 3, geom::kLaneWidth, geom::kLaneWidth + 5}) {
      auto qs = AdversarialQueries(m, seed + m);
      std::vector<int> got(qs.size());
      spatial::BatchStats stats;
      index.QueryExpectedBatch(qs, 1e-8, got, &stats);
      for (size_t i = 0; i < qs.size(); ++i) {
        EXPECT_EQ(got[i], index.QueryExpected(qs[i], 1e-8))
            << "it=" << it << " m=" << m << " i=" << i;
      }
    }
  }
}

TEST(BatchFuzz, KdNearestBatchBitIdentical) {
  int iters = FuzzIters(8);
  for (int it = 0; it < iters; ++it) {
    uint64_t seed = 3000 + 13 * static_cast<uint64_t>(it);
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> grid(-12, 12);
    std::uniform_real_distribution<double> u(-10, 10);
    int n = 50 + (it % 6) * 31;
    std::vector<Vec2> pts(n);
    for (int i = 0; i < n; ++i) {
      // Duplicate coordinates on purpose: grid snapping plus literal
      // repeats of earlier points.
      if (i % 7 == 3 && i > 0) {
        pts[i] = pts[rng() % i];
      } else if (i % 2 == 0) {
        pts[i] = {grid(rng) * 0.5, grid(rng) * 0.5};
      } else {
        pts[i] = {u(rng), u(rng)};
      }
    }
    range::KdTree tree(pts);
    for (int m = 1; m <= 2 * geom::kLaneWidth + 1; ++m) {
      auto qs = AdversarialQueries(m, seed + m);
      std::vector<int> ids(qs.size());
      std::vector<double> dists(qs.size());
      tree.NearestBatch(qs, ids, dists);
      for (size_t i = 0; i < qs.size(); ++i) {
        double want_d = 0;
        int want = tree.Nearest(qs[i], &want_d);
        EXPECT_EQ(ids[i], want) << "it=" << it << " m=" << m << " i=" << i;
        EXPECT_EQ(dists[i], want_d)
            << "it=" << it << " m=" << m << " i=" << i;
      }
    }
  }
}

TEST(BatchFuzz, QuantTreeEnvelopeBatchBitIdentical) {
  int iters = FuzzIters(8);
  for (int it = 0; it < iters; ++it) {
    uint64_t seed = 5000 + 19 * static_cast<uint64_t>(it);
    auto pts = AdversarialSet(it, 40 + (it % 5) * 21, seed);
    core::QuantTree qt(&pts);
    for (int m = 1; m <= 2 * geom::kLaneWidth + 1; ++m) {
      auto qs = AdversarialQueries(m, seed + m);
      std::vector<core::DeltaEnvelope> got(qs.size());
      spatial::BatchStats stats;
      qt.MaxDistEnvelopeBatch(qs, got, &stats);
      EXPECT_GT(stats.packs, 0);
      // The envelope kernel needs no replay (order-independent inserts);
      // the differential must hold with none taken.
      EXPECT_EQ(stats.scalar_replays, 0);
      for (size_t i = 0; i < qs.size(); ++i) {
        auto want = qt.MaxDistEnvelope(qs[i]);
        EXPECT_EQ(got[i].best, want.best)
            << "it=" << it << " m=" << m << " i=" << i;
        EXPECT_EQ(got[i].second, want.second)
            << "it=" << it << " m=" << m << " i=" << i;
        EXPECT_EQ(got[i].argbest, want.argbest)
            << "it=" << it << " m=" << m << " i=" << i;
      }
    }
  }
}

TEST(BatchFuzz, QuantTreeLogSurvivalBatchBitIdentical) {
  int iters = FuzzIters(6);
  for (int it = 0; it < iters; ++it) {
    uint64_t seed = 6000 + 23 * static_cast<uint64_t>(it);
    auto pts = AdversarialSet(it, 36 + (it % 4) * 19, seed);
    core::QuantTree qt(&pts);
    for (int m = 1; m <= 2 * geom::kLaneWidth + 1; ++m) {
      auto qs = AdversarialQueries(m, seed + m);
      // Radii stress every branch: zero (empty ball), exact MaxDist
      // boundaries (the support-intersection test ties exactly), radii
      // inside a support (certain point, -infinity), and large radii
      // covering everything.
      std::vector<double> radii(qs.size());
      for (size_t i = 0; i < qs.size(); ++i) {
        switch (i % 4) {
          case 0:
            radii[i] = 0.0;
            break;
          case 1:
            radii[i] = pts[i % pts.size()].MaxDist(qs[i]);
            break;
          case 2:
            radii[i] = 0.5;
            break;
          default:
            radii[i] = 25.0;
        }
      }
      std::vector<double> got(qs.size());
      spatial::BatchStats stats;
      qt.LogSurvivalBatch(qs, radii, got, &stats);
      EXPECT_EQ(stats.scalar_replays, 0);
      for (size_t i = 0; i < qs.size(); ++i) {
        // Bit-identical contract: the pack walk is the scalar walk, so
        // exact equality holds — including -infinity.
        EXPECT_EQ(got[i], qt.LogSurvival(qs[i], radii[i]))
            << "it=" << it << " m=" << m << " i=" << i << " r=" << radii[i];
      }
    }
  }
}

TEST(BatchFuzz, QuantTreeArgminBatchBitIdentical) {
  int iters = FuzzIters(6);
  for (int it = 0; it < iters; ++it) {
    uint64_t seed = 7000 + 29 * static_cast<uint64_t>(it);
    auto pts = AdversarialSet(it, 30 + (it % 4) * 17, seed);
    core::QuantTree qt(&pts);
    core::ExpectedNn index(pts);
    for (int m = 1; m <= 2 * geom::kLaneWidth + 1; ++m) {
      auto qs = AdversarialQueries(m, seed + m);
      // Approximate value (quadrature): slack = the tolerance, as the
      // engine's brute-force expected-distance arm uses it.
      {
        std::vector<int> got(qs.size());
        spatial::BatchStats stats;
        qt.ArgminPointwiseBatch(
            qs,
            [&](int id, int qi) {
              return index.ExpectedDistance(id, qs[qi], 1e-8);
            },
            /*slack=*/1e-8, got, &stats);
        for (size_t i = 0; i < qs.size(); ++i) {
          int want = qt.ArgminPointwise(qs[i], [&](int id) {
            return index.ExpectedDistance(id, qs[i], 1e-8);
          });
          EXPECT_EQ(got[i], want) << "it=" << it << " m=" << m << " i=" << i;
        }
      }
      // Exact value (min-distance itself, slack 0): the coincident /
      // duplicated sets produce exact minimum ties, so the zero-width
      // band must still trigger replay on true ties.
      {
        std::vector<int> got(qs.size());
        qt.ArgminPointwiseBatch(
            qs, [&](int id, int qi) { return pts[id].MinDist(qs[qi]); },
            /*slack=*/0.0, got);
        for (size_t i = 0; i < qs.size(); ++i) {
          int want = qt.ArgminPointwise(
              qs[i], [&](int id) { return pts[id].MinDist(qs[i]); });
          EXPECT_EQ(got[i], want) << "it=" << it << " m=" << m << " i=" << i;
        }
      }
    }
  }
}

TEST(BatchFuzz, NonzeroDiscreteBatchBitIdentical) {
  int iters = FuzzIters(6);
  for (int it = 0; it < iters; ++it) {
    uint64_t seed = 8000 + 37 * static_cast<uint64_t>(it);
    // Discrete-only corpora: the index CHECKs against disk models.
    int which = it % 3;
    auto pts = which == 0   ? ClusteredDiscrete(32 + it * 7, seed)
               : which == 1 ? CoincidentAnchors(32 + it * 7, seed)
                            : workload::RandomDiscrete(32 + it * 7, 3, seed);
    core::NnNonzeroDiscreteIndex index(pts);
    for (int m = 1; m <= 2 * geom::kLaneWidth + 1; ++m) {
      auto qs = AdversarialQueries(m, seed + m);
      std::vector<core::DeltaEnvelope> env(qs.size());
      spatial::BatchStats stats;
      index.DeltaPairBatch(qs, env, &stats);
      EXPECT_GT(stats.packs, 0);
      for (size_t i = 0; i < qs.size(); ++i) {
        auto want = index.DeltaPair(qs[i]);
        EXPECT_EQ(env[i].best, want.best)
            << "it=" << it << " m=" << m << " i=" << i;
        EXPECT_EQ(env[i].second, want.second)
            << "it=" << it << " m=" << m << " i=" << i;
        EXPECT_EQ(env[i].argbest, want.argbest)
            << "it=" << it << " m=" << m << " i=" << i;
      }
      auto sets = index.QueryBatch(qs);
      ASSERT_EQ(sets.size(), qs.size());
      for (size_t i = 0; i < qs.size(); ++i) {
        EXPECT_EQ(sets[i], index.Query(qs[i]))
            << "it=" << it << " m=" << m << " i=" << i;
      }
    }
  }
}

TEST(BatchFuzz, KdKNearestBatchBitIdentical) {
  int iters = FuzzIters(6);
  for (int it = 0; it < iters; ++it) {
    uint64_t seed = 9000 + 41 * static_cast<uint64_t>(it);
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> grid(-12, 12);
    std::uniform_real_distribution<double> u(-10, 10);
    int n = 40 + (it % 5) * 23;
    std::vector<Vec2> pts(n);
    for (int i = 0; i < n; ++i) {
      // Duplicate coordinates on purpose, as in NearestBatch's fuzz.
      if (i % 7 == 3 && i > 0) {
        pts[i] = pts[rng() % i];
      } else if (i % 2 == 0) {
        pts[i] = {grid(rng) * 0.5, grid(rng) * 0.5};
      } else {
        pts[i] = {u(rng), u(rng)};
      }
    }
    range::KdTree tree(pts);
    for (int k : {1, 3, n / 2, n}) {
      for (int m = 1; m <= 2 * geom::kLaneWidth + 1; ++m) {
        auto qs = AdversarialQueries(m, seed + 100 * k + m);
        std::vector<std::vector<int>> ids;
        std::vector<std::vector<double>> dists;
        tree.KNearestBatch(qs, k, &ids, &dists);
        ASSERT_EQ(ids.size(), qs.size());
        for (size_t i = 0; i < qs.size(); ++i) {
          EXPECT_EQ(ids[i], tree.KNearest(qs[i], k))
              << "it=" << it << " k=" << k << " m=" << m << " i=" << i;
          ASSERT_EQ(dists[i].size(), ids[i].size());
          for (size_t j = 0; j < ids[i].size(); ++j) {
            EXPECT_EQ(dists[i][j], geom::Dist(qs[i], pts[ids[i][j]]))
                << "it=" << it << " k=" << k << " m=" << m << " i=" << i
                << " j=" << j;
          }
        }
      }
    }
  }
}

TEST(BatchFuzz, SpiralQueryBatchBitIdentical) {
  int iters = FuzzIters(4);
  for (int it = 0; it < iters; ++it) {
    uint64_t seed = 11000 + 43 * static_cast<uint64_t>(it);
    int which = it % 3;  // Discrete-only: spiral search rejects disks.
    auto pts = which == 0   ? ClusteredDiscrete(28 + it * 9, seed)
               : which == 1 ? CoincidentAnchors(28 + it * 9, seed)
                            : workload::RandomDiscrete(28 + it * 9, 3, seed);
    core::SpiralSearch spiral(pts);
    for (double eps : {0.5, 0.1, 0.02}) {
      for (int m = 1; m <= 2 * geom::kLaneWidth + 1; m += 3) {
        auto qs = AdversarialQueries(m, seed + m);
        spatial::BatchStats stats;
        auto got = spiral.QueryBatch(qs, eps, &stats);
        ASSERT_EQ(got.size(), qs.size());
        for (size_t i = 0; i < qs.size(); ++i) {
          EXPECT_EQ(got[i], spiral.Query(qs[i], eps))
              << "it=" << it << " eps=" << eps << " m=" << m << " i=" << i;
        }
      }
    }
  }
}

TEST(BatchFuzz, MonteCarloQueryBatchBitIdentical) {
  int iters = FuzzIters(4);
  for (int it = 0; it < iters; ++it) {
    uint64_t seed = 12000 + 47 * static_cast<uint64_t>(it);
    // Includes the disk sets: instantiation draws are per-structure, so
    // both paths see the same trees regardless of model.
    auto pts = AdversarialSet(it, 24 + it * 7, seed);
    core::MonteCarloPnnOptions opts;
    opts.s_override = 16;
    opts.seed = seed;
    core::MonteCarloPnn mc(pts, opts);
    for (int m = 1; m <= 2 * geom::kLaneWidth + 1; m += 2) {
      auto qs = AdversarialQueries(m, seed + m);
      spatial::BatchStats stats;
      auto got = mc.QueryBatch(qs, &stats);
      ASSERT_EQ(got.size(), qs.size());
      EXPECT_GT(stats.packs, 0);
      for (size_t i = 0; i < qs.size(); ++i) {
        EXPECT_EQ(got[i], mc.Query(qs[i]))
            << "it=" << it << " m=" << m << " i=" << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Engine-level differential: QueryMany with batching on vs off must give
// identical results for all five query types on randomized batches.
// ---------------------------------------------------------------------------

TEST(BatchFuzz, EngineQueryManyBatchedMatchesScalar) {
  int iters = FuzzIters(3);
  const Engine::QuerySpec specs[] = {
      {Engine::QueryType::kMostProbableNn, 0.5, 1},
      {Engine::QueryType::kExpectedDistanceNn, 0.5, 1},
      {Engine::QueryType::kThreshold, 0.25, 1},
      {Engine::QueryType::kTopK, 0.5, 3},
      {Engine::QueryType::kNonzeroNn, 0.5, 1},
  };
  for (int it = 0; it < iters; ++it) {
    uint64_t seed = 4000 + 7 * static_cast<uint64_t>(it);
    auto pts = AdversarialSet(it, 24 + it * 9, seed);
    Engine::Config batched_cfg;
    Engine::Config scalar_cfg;
    scalar_cfg.batch_traversal = false;
    Engine batched(pts, batched_cfg);
    Engine scalar(pts, scalar_cfg);
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> msize(1, 2 * geom::kLaneWidth + 1);
    for (const Engine::QuerySpec& spec : specs) {
      auto qs = AdversarialQueries(msize(rng), seed + 99);
      auto got = batched.QueryMany(qs, spec);
      auto want = scalar.QueryMany(qs, spec);
      ASSERT_EQ(got.size(), want.size());
      for (size_t i = 0; i < qs.size(); ++i) {
        EXPECT_EQ(got[i].nn, want[i].nn);
        EXPECT_EQ(got[i].ranked, want[i].ranked);
        EXPECT_EQ(got[i].ids, want[i].ids);
      }
    }
  }
}

// The single-query entry point and the batched path must agree too (the
// result cache mixes the two freely under one snapshot key).
TEST(BatchFuzz, SingleQueryAgreesWithBatchedQueryMany) {
  auto pts = CoincidentAnchors(36, 77);
  Engine engine(pts);
  auto qs = AdversarialQueries(19, 78);
  auto many = engine.QueryMany(
      qs, {Engine::QueryType::kExpectedDistanceNn, 0.5, 1});
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(many[i].nn, engine.ExpectedDistanceNn(qs[i]));
  }
}

}  // namespace
}  // namespace unn
