#include <random>

#include <gtest/gtest.h>

#include "baselines/brute_force.h"
#include "core/expected_nn.h"
#include "core/pnn_queries.h"
#include "prob/distributions.h"
#include "workload/generators.h"

namespace unn {
namespace core {
namespace {

using geom::Vec2;

TEST(ExpectedNn, SquaredDistanceClosedFormMatchesSampling) {
  std::vector<UncertainPoint> pts = {
      UncertainPoint::Disk({2, 1}, 3.0),
      UncertainPoint::Disk({-4, 0}, 1.0, DiskPdf::kTruncatedGaussian),
      UncertainPoint::Discrete({{0, 0}, {2, 2}, {4, 0}}, {0.5, 0.25, 0.25})};
  ExpectedNn enn(pts);
  std::mt19937_64 rng(5);
  for (int i = 0; i < 3; ++i) {
    Vec2 q{1.5, -2.0};
    double mc = 0;
    const int kSamples = 400000;
    for (int s = 0; s < kSamples; ++s) {
      mc += DistSq(q, prob::SamplePoint(pts[i], rng));
    }
    mc /= kSamples;
    EXPECT_NEAR(enn.ExpectedSquaredDistance(i, q), mc,
                0.02 * (1 + std::abs(mc)))
        << "i=" << i;
  }
}

TEST(ExpectedNn, QuerySquaredMatchesLinearScan) {
  auto pts = workload::RandomDisks(80, /*seed=*/7);
  ExpectedNn enn(pts);
  std::mt19937_64 rng(9);
  std::uniform_real_distribution<double> qu(-25, 25);
  for (int t = 0; t < 300; ++t) {
    Vec2 q{qu(rng), qu(rng)};
    int got = enn.QuerySquared(q);
    int want = 0;
    for (int i = 1; i < 80; ++i) {
      if (enn.ExpectedSquaredDistance(i, q) <
          enn.ExpectedSquaredDistance(want, q)) {
        want = i;
      }
    }
    ASSERT_NEAR(enn.ExpectedSquaredDistance(got, q),
                enn.ExpectedSquaredDistance(want, q), 1e-12);
  }
}

TEST(ExpectedNn, ExpectedDistanceMatchesSampling) {
  UncertainPoint p = UncertainPoint::Disk({0, 0}, 2.0);
  ExpectedNn enn({p});
  std::mt19937_64 rng(11);
  Vec2 q{3, 1};
  double mc = 0;
  const int kSamples = 400000;
  for (int s = 0; s < kSamples; ++s) mc += Dist(q, prob::SamplePoint(p, rng));
  mc /= kSamples;
  EXPECT_NEAR(enn.ExpectedDistance(0, q), mc, 0.01);
  // Jensen: E[d] <= sqrt(E[d^2]).
  EXPECT_LE(enn.ExpectedDistance(0, q),
            std::sqrt(enn.ExpectedSquaredDistance(0, q)) + 1e-9);
}

TEST(ExpectedNn, QueryExpectedMatchesLinearScan) {
  auto pts = workload::RandomDisks(25, /*seed=*/13, 8.0, 0.2, 2.5);
  ExpectedNn enn(pts);
  std::mt19937_64 rng(15);
  std::uniform_real_distribution<double> qu(-10, 10);
  for (int t = 0; t < 40; ++t) {
    Vec2 q{qu(rng), qu(rng)};
    int got = enn.QueryExpected(q);
    double best = 1e18;
    int want = -1;
    for (int i = 0; i < 25; ++i) {
      double e = enn.ExpectedDistance(i, q);
      if (e < best) {
        best = e;
        want = i;
      }
    }
    ASSERT_EQ(got, want) << "t=" << t;
  }
}

TEST(PnnQueries, ThresholdHasNoFalseNegatives) {
  auto pts = workload::RandomDiscrete(15, 3, /*seed=*/21, 8.0, 2.5);
  SpiralSearch ss(pts);
  std::mt19937_64 rng(23);
  std::uniform_real_distribution<double> qu(-10, 10);
  for (double tau : {0.1, 0.25, 0.5}) {
    for (int t = 0; t < 40; ++t) {
      Vec2 q{qu(rng), qu(rng)};
      auto got = ThresholdQuery(ss, q, tau);
      auto exact = baselines::QuantificationProbabilities(pts, q);
      std::vector<bool> reported(pts.size(), false);
      double prev = 2.0;
      for (auto [id, p] : got) {
        reported[id] = true;
        EXPECT_LE(p, prev + 1e-12);  // Sorted decreasing.
        prev = p;
      }
      for (size_t i = 0; i < pts.size(); ++i) {
        if (exact[i] >= tau) {
          EXPECT_TRUE(reported[i])
              << "missed i=" << i << " with pi=" << exact[i] << " tau=" << tau;
        }
      }
    }
  }
}

TEST(PnnQueries, TopKReturnsHighestEstimates) {
  auto pts = workload::RandomDiscrete(20, 3, /*seed=*/29, 8.0, 2.5);
  SpiralSearch ss(pts);
  Vec2 q{0.5, 0.5};
  auto top3 = TopKQuery(ss, q, 3, 0.01);
  ASSERT_LE(top3.size(), 3u);
  ASSERT_GE(top3.size(), 1u);
  auto exact = baselines::QuantificationProbabilities(pts, q);
  // The top-1 estimate must identify a point whose true probability is
  // within 2 eps of the true maximum.
  double true_max = *std::max_element(exact.begin(), exact.end());
  EXPECT_GE(exact[top3[0].first], true_max - 0.02 - 1e-9);
}

TEST(Generators, LowerBoundShapesAndSizes) {
  auto cubic = workload::LowerBoundCubic(16, 1);
  EXPECT_EQ(cubic.size(), 16u);
  auto equal = workload::LowerBoundCubicEqualRadius(12, 1);
  EXPECT_EQ(equal.size(), 12u);
  for (const auto& p : equal) EXPECT_DOUBLE_EQ(p.radius(), 1.0);
  auto quad = workload::LowerBoundQuadratic(10, 1);
  EXPECT_EQ(quad.size(), 10u);
  auto vpr = workload::LowerBoundVprQuartic(6, 1);
  EXPECT_EQ(vpr.size(), 6u);
  for (const auto& p : vpr) EXPECT_EQ(p.sites().size(), 2u);
}

TEST(Generators, DisjointDisksAreDisjointWithBoundedRatio) {
  for (double lambda : {1.0, 2.0, 5.0}) {
    auto pts = workload::DisjointDisks(30, lambda, 3);
    double rmin = 1e18, rmax = 0;
    for (const auto& p : pts) {
      rmin = std::min(rmin, p.radius());
      rmax = std::max(rmax, p.radius());
    }
    EXPECT_LE(rmax / rmin, lambda + 1e-9);
    for (size_t i = 0; i < pts.size(); ++i) {
      for (size_t j = i + 1; j < pts.size(); ++j) {
        EXPECT_GT(Dist(pts[i].center(), pts[j].center()),
                  pts[i].radius() + pts[j].radius())
            << i << "," << j;
      }
    }
  }
}

}  // namespace
}  // namespace core
}  // namespace unn
