#include "geom/trig.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

namespace unn {
namespace geom {
namespace {

TEST(NormalizeAngle, MapsIntoRange) {
  EXPECT_DOUBLE_EQ(NormalizeAngle(0.0), 0.0);
  EXPECT_NEAR(NormalizeAngle(kTwoPi), 0.0, 1e-15);
  EXPECT_NEAR(NormalizeAngle(-1.0), kTwoPi - 1.0, 1e-12);
  EXPECT_NEAR(NormalizeAngle(3 * kTwoPi + 0.5), 0.5, 1e-12);
  EXPECT_NEAR(NormalizeAngle(-5 * kTwoPi - 0.25), kTwoPi - 0.25, 1e-10);
}

TEST(NormalizeAngle, TinyNegativeDoesNotReturnTwoPi) {
  double r = NormalizeAngle(-1e-18);
  EXPECT_GE(r, 0.0);
  EXPECT_LT(r, kTwoPi);
}

TEST(AngleDiff, SignedShortestArc) {
  EXPECT_NEAR(AngleDiff(0.5, 0.25), 0.25, 1e-15);
  EXPECT_NEAR(AngleDiff(0.25, 0.5), -0.25, 1e-15);
  EXPECT_NEAR(AngleDiff(0.1, kTwoPi - 0.1), 0.2, 1e-12);
  EXPECT_NEAR(AngleDiff(kTwoPi - 0.1, 0.1), -0.2, 1e-12);
}

TEST(AngleDiff, AntipodalIsHalfTurn) {
  double d = AngleDiff(0.0, kTwoPi / 2);
  EXPECT_NEAR(std::abs(d), kTwoPi / 2, 1e-12);
}

TEST(SolveCosSin, KnownSolutions) {
  double roots[2];
  // cos(t) = 1/2 -> t = +-pi/3.
  int n = SolveCosSin(1.0, 0.0, 0.5, roots);
  ASSERT_EQ(n, 2);
  double lo = std::min(roots[0], roots[1]);
  double hi = std::max(roots[0], roots[1]);
  EXPECT_NEAR(lo, M_PI / 3, 1e-12);
  EXPECT_NEAR(hi, kTwoPi - M_PI / 3, 1e-12);
}

TEST(SolveCosSin, NoSolutionWhenOutOfReach) {
  double roots[2];
  EXPECT_EQ(SolveCosSin(1.0, 1.0, 3.0, roots), 0);
  EXPECT_EQ(SolveCosSin(0.0, 0.0, 1.0, roots), 0);
}

TEST(SolveCosSin, TangencyReportsSingleRoot) {
  double roots[2];
  int n = SolveCosSin(2.0, 0.0, 2.0, roots);  // cos(t) = 1 exactly.
  ASSERT_EQ(n, 1);
  EXPECT_NEAR(roots[0], 0.0, 1e-6);
}

TEST(SolveCosSin, RandomizedRootsSatisfyEquation) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> coef(-10.0, 10.0);
  int solved = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    double a = coef(rng), b = coef(rng), c = coef(rng);
    double roots[2];
    int n = SolveCosSin(a, b, c, roots);
    for (int i = 0; i < n; ++i) {
      double lhs = a * std::cos(roots[i]) + b * std::sin(roots[i]);
      EXPECT_NEAR(lhs, c, 1e-9 * (std::abs(a) + std::abs(b) + 1.0));
      EXPECT_GE(roots[i], 0.0);
      EXPECT_LT(roots[i], kTwoPi);
      ++solved;
    }
    if (n == 0 && std::hypot(a, b) > 0) {
      // No roots should only happen when |c| exceeds the amplitude.
      EXPECT_GT(std::abs(c), std::hypot(a, b) * (1 - 1e-12));
    }
  }
  EXPECT_GT(solved, 100);  // Sanity: the sweep actually exercised roots.
}

TEST(AngleInCcwInterval, NonWrapping) {
  EXPECT_TRUE(AngleInCcwInterval(1.0, 0.5, 2.0));
  EXPECT_FALSE(AngleInCcwInterval(2.5, 0.5, 2.0));
  EXPECT_TRUE(AngleInCcwInterval(0.5, 0.5, 2.0));  // Closed endpoints.
  EXPECT_TRUE(AngleInCcwInterval(2.0, 0.5, 2.0));
}

TEST(AngleInCcwInterval, Wrapping) {
  EXPECT_TRUE(AngleInCcwInterval(0.1, 6.0, 0.5));
  EXPECT_TRUE(AngleInCcwInterval(6.2, 6.0, 0.5));
  EXPECT_FALSE(AngleInCcwInterval(3.0, 6.0, 0.5));
}

}  // namespace
}  // namespace geom
}  // namespace unn
