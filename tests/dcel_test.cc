#include "dcel/planar_subdivision.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "envelope/polar_envelope.h"
#include "geom/trig.h"
#include "pointloc/ray_shooter.h"

namespace unn {
namespace dcel {
namespace {

using geom::FocalConic;
using geom::Vec2;

PlanarSubdivision MakeBox(Vec2 lo, Vec2 hi, int* vids = nullptr) {
  PlanarSubdivision sub;
  int v0 = sub.AddVertex(lo);
  int v1 = sub.AddVertex({hi.x, lo.y});
  int v2 = sub.AddVertex(hi);
  int v3 = sub.AddVertex({lo.x, hi.y});
  sub.AddEdge(v0, v1, EdgeShape::Segment(lo, {hi.x, lo.y}), kFrameCurve);
  sub.AddEdge(v1, v2, EdgeShape::Segment({hi.x, lo.y}, hi), kFrameCurve);
  sub.AddEdge(v2, v3, EdgeShape::Segment(hi, {lo.x, hi.y}), kFrameCurve);
  sub.AddEdge(v3, v0, EdgeShape::Segment({lo.x, hi.y}, lo), kFrameCurve);
  if (vids != nullptr) {
    vids[0] = v0;
    vids[1] = v1;
    vids[2] = v2;
    vids[3] = v3;
  }
  return sub;
}

TEST(PlanarSubdivision, PlainBoxTopology) {
  PlanarSubdivision sub = MakeBox({0, 0}, {10, 10});
  sub.Build();
  EXPECT_EQ(sub.NumVertices(), 4);
  EXPECT_EQ(sub.NumEdges(), 4);
  EXPECT_EQ(sub.NumLoops(), 2);
  EXPECT_EQ(sub.NumComponents(), 1);
  EXPECT_EQ(sub.NumFacesEuler(), 2);   // Interior + unbounded.
  EXPECT_EQ(sub.NumCcwLoops(), 1);     // One bounded face.
}

TEST(PlanarSubdivision, BoxWithDiagonal) {
  int v[4];
  PlanarSubdivision sub = MakeBox({0, 0}, {10, 10}, v);
  sub.AddEdge(v[0], v[2], EdgeShape::Segment({0, 0}, {10, 10}), 7);
  sub.Build();
  EXPECT_EQ(sub.NumEdges(), 5);
  EXPECT_EQ(sub.NumFacesEuler(), 3);
  EXPECT_EQ(sub.NumCcwLoops(), 2);
  EXPECT_EQ(sub.NumLoops(), 3);
}

TEST(PlanarSubdivision, IslandInsideFrame) {
  PlanarSubdivision sub = MakeBox({0, 0}, {10, 10});
  // Disconnected island square.
  int a = sub.AddVertex({4, 4});
  int b = sub.AddVertex({6, 4});
  int c = sub.AddVertex({6, 6});
  int d = sub.AddVertex({4, 6});
  sub.AddEdge(a, b, EdgeShape::Segment({4, 4}, {6, 4}), 1);
  sub.AddEdge(b, c, EdgeShape::Segment({6, 4}, {6, 6}), 1);
  sub.AddEdge(c, d, EdgeShape::Segment({6, 6}, {4, 6}), 1);
  sub.AddEdge(d, a, EdgeShape::Segment({4, 6}, {4, 4}), 1);
  sub.Build();
  EXPECT_EQ(sub.NumComponents(), 2);
  EXPECT_EQ(sub.NumFacesEuler(), 3);  // Ring face, island face, unbounded.
  EXPECT_EQ(sub.NumCcwLoops(), 2);
  EXPECT_EQ(sub.NumLoops(), 4);
}

TEST(PlanarSubdivision, DanglingEdgeWalksBackOnItself) {
  PlanarSubdivision sub;
  int a = sub.AddVertex({0, 0});
  int b = sub.AddVertex({1, 0});
  sub.AddEdge(a, b, EdgeShape::Segment({0, 0}, {1, 0}), 0);
  sub.Build();
  EXPECT_EQ(sub.NumLoops(), 1);
  EXPECT_EQ(sub.loop(0).num_half_edges, 2);
  EXPECT_EQ(sub.NumFacesEuler(), 1);  // Just the unbounded face.
  EXPECT_EQ(sub.NumCcwLoops(), 0);
}

/// Builds the closed envelope curve gamma_0 of a small disk surrounded by a
/// ring of disks (fully covered in every direction), as a loop of conic arcs.
struct ClosedCurveFixture {
  PlanarSubdivision sub;
  Vec2 center{0, 0};
  envelope::PolarEnvelope env;

  ClosedCurveFixture() {
    std::vector<std::optional<FocalConic>> curves;
    double ring_r = 6.0, disk_r = 1.0, center_r = 0.5;
    for (int j = 0; j < 4; ++j) {
      double ang = geom::kTwoPi * j / 4.0;
      Vec2 cj = center + geom::UnitVec(ang) * ring_r;
      curves.push_back(
          FocalConic::DistanceDifference(center, cj, center_r + disk_r));
    }
    env = envelope::PolarEnvelope::Compute(curves);
    EXPECT_TRUE(env.FullyCovered());
    // Vertices at arc boundaries; arcs between consecutive ones.
    const auto& arcs = env.arcs();
    std::vector<int> vid(arcs.size());
    for (size_t i = 0; i < arcs.size(); ++i) {
      Vec2 p = curves[arcs[i].curve]->PointAt(arcs[i].lo);
      vid[i] = sub.AddVertex(p);
    }
    for (size_t i = 0; i < arcs.size(); ++i) {
      size_t nxt = (i + 1) % arcs.size();
      EdgeShape shape =
          EdgeShape::Arc(*curves[arcs[i].curve], arcs[i].lo, arcs[i].hi);
      sub.AddEdge(vid[i], vid[nxt], shape, 0);
    }
    sub.Build();
  }
};

TEST(PlanarSubdivision, ClosedConicLoopTopology) {
  ClosedCurveFixture fx;
  EXPECT_EQ(fx.sub.NumLoops(), 2);
  EXPECT_EQ(fx.sub.NumCcwLoops(), 1);
  EXPECT_EQ(fx.sub.NumFacesEuler(), 2);
  // The CCW loop must be the one bounding the interior.
  int ccw_loop = fx.sub.loop(0).ccw ? 0 : 1;
  EXPECT_TRUE(fx.sub.loop(ccw_loop).ccw);
  EXPECT_FALSE(fx.sub.loop(1 - ccw_loop).ccw);
}

TEST(RayShooter, LocatesInsideAndOutsideOfClosedConicLoop) {
  ClosedCurveFixture fx;
  pointloc::RayShooter shooter(fx.sub);
  int ccw_loop = fx.sub.loop(0).ccw ? 0 : 1;

  std::mt19937_64 rng(13);
  std::uniform_real_distribution<double> au(0, geom::kTwoPi);
  int inside_checked = 0, outside_checked = 0;
  for (int i = 0; i < 500; ++i) {
    double theta = au(rng);
    auto [rstar, idx] = fx.env.Eval(theta);
    ASSERT_NE(idx, envelope::kNoCurve);
    std::uniform_real_distribution<double> fu(0.05, 0.95);
    Vec2 q_in = fx.center + geom::UnitVec(theta) * (rstar * fu(rng));
    int h = shooter.LocateHalfEdgeAbove(q_in);
    ASSERT_GE(h, 0);
    EXPECT_EQ(fx.sub.half_edge(h).loop, ccw_loop) << "inside point i=" << i;
    ++inside_checked;

    Vec2 q_out = fx.center + geom::UnitVec(theta) * (rstar * 1.5);
    int h2 = shooter.LocateHalfEdgeAbove(q_out);
    if (h2 >= 0) {
      EXPECT_EQ(fx.sub.half_edge(h2).loop, 1 - ccw_loop)
          << "outside point i=" << i;
      ++outside_checked;
    }
  }
  EXPECT_GT(inside_checked, 400);
  EXPECT_GT(outside_checked, 50);
}

TEST(RayShooter, CrossingsParityMatchesContainment) {
  ClosedCurveFixture fx;
  pointloc::RayShooter shooter(fx.sub);
  std::mt19937_64 rng(29);
  std::uniform_real_distribution<double> u(-10, 10);
  for (int i = 0; i < 300; ++i) {
    Vec2 q{u(rng), u(rng)};
    double theta = geom::Angle(q - fx.center);
    auto [rstar, idx] = fx.env.Eval(theta);
    ASSERT_NE(idx, envelope::kNoCurve);
    double rq = Dist(q, fx.center);
    if (std::abs(rq - rstar) < 1e-3) continue;  // Skip near-boundary.
    bool inside = rq < rstar;
    auto crossings = shooter.CrossingsAbove(q);
    EXPECT_EQ(crossings.size() % 2 == 1, inside) << "i=" << i;
  }
}

TEST(RayShooter, EmptyAboveReturnsMinusOne) {
  PlanarSubdivision sub = MakeBox({0, 0}, {10, 10});
  sub.Build();
  pointloc::RayShooter shooter(sub);
  EXPECT_EQ(shooter.LocateHalfEdgeAbove({5, 20}), -1);
  EXPECT_EQ(shooter.LocateHalfEdgeAbove({-5, 5}), -1);
  int h = shooter.LocateHalfEdgeAbove({5, 5});
  ASSERT_GE(h, 0);
  // Inside the box: left face is the bounded CCW loop.
  EXPECT_TRUE(sub.loop(sub.half_edge(h).loop).ccw);
  int h2 = shooter.LocateHalfEdgeAbove({5, -5});
  ASSERT_GE(h2, 0);
  EXPECT_FALSE(sub.loop(sub.half_edge(h2).loop).ccw);
}

}  // namespace
}  // namespace dcel
}  // namespace unn
