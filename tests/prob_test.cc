#include "prob/distance_cdf.h"
#include "prob/distributions.h"
#include "prob/quadrature.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

namespace unn {
namespace prob {
namespace {

using core::DiskPdf;
using core::UncertainPoint;
using geom::Vec2;

TEST(Quadrature, PolynomialAndTranscendental) {
  EXPECT_NEAR(AdaptiveSimpson([](double x) { return x * x; }, 0, 3), 9.0, 1e-9);
  EXPECT_NEAR(AdaptiveSimpson([](double x) { return std::sin(x); }, 0, M_PI),
              2.0, 1e-9);
  EXPECT_NEAR(AdaptiveSimpson([](double x) { return std::exp(-x * x); }, -8, 8),
              std::sqrt(M_PI), 1e-8);
}

TEST(CircleIntersectionArea, KnownCases) {
  EXPECT_DOUBLE_EQ(CircleIntersectionArea(10, 3, 4), 0.0);   // Disjoint.
  EXPECT_NEAR(CircleIntersectionArea(0.5, 1, 3), M_PI, 1e-12);  // Contained.
  // Equal circles at distance 0: full overlap.
  EXPECT_NEAR(CircleIntersectionArea(0, 2, 2), 4 * M_PI, 1e-12);
  // Symmetry in the radii.
  EXPECT_NEAR(CircleIntersectionArea(2.3, 1.7, 2.9),
              CircleIntersectionArea(2.3, 2.9, 1.7), 1e-12);
  // Monotone in r1.
  double prev = 0;
  for (double r = 0.2; r < 6; r += 0.2) {
    double a = CircleIntersectionArea(3.0, r, 2.0);
    EXPECT_GE(a, prev - 1e-12);
    prev = a;
  }
}

class DistanceCdfModels : public ::testing::TestWithParam<DiskPdf> {};

TEST_P(DistanceCdfModels, MatchesMonteCarlo) {
  UncertainPoint p = UncertainPoint::Disk({2, -1}, 3.0, GetParam());
  std::mt19937_64 rng(7);
  for (Vec2 q : {Vec2{2, -1}, Vec2{4, 0}, Vec2{8, 8}, Vec2{2.5, -1.5}}) {
    const int kSamples = 200000;
    std::vector<double> dists(kSamples);
    for (int s = 0; s < kSamples; ++s) {
      dists[s] = Dist(q, SamplePoint(p, rng));
    }
    std::sort(dists.begin(), dists.end());
    for (double r : {0.5, 1.0, 2.0, 4.0, 7.0, 11.0}) {
      double mc = static_cast<double>(std::lower_bound(dists.begin(),
                                                       dists.end(), r) -
                                      dists.begin()) /
                  kSamples;
      double analytic = DistanceCdf(p, q, r);
      EXPECT_NEAR(analytic, mc, 0.01)
          << "q=(" << q.x << "," << q.y << ") r=" << r;
    }
  }
}

TEST_P(DistanceCdfModels, PdfMatchesCdfDerivativeAndIntegratesToOne) {
  UncertainPoint p = UncertainPoint::Disk({0, 0}, 2.0, GetParam());
  Vec2 q{3, 1};
  double lo = p.MinDist(q);
  double hi = p.MaxDist(q);
  for (double f : {0.15, 0.3, 0.5, 0.7, 0.9}) {
    double r = lo + f * (hi - lo);
    double h = 1e-5;
    double numeric = (DistanceCdf(p, q, r + h) - DistanceCdf(p, q, r - h)) /
                     (2 * h);
    EXPECT_NEAR(DistancePdf(p, q, r), numeric, 2e-3) << "r=" << r;
  }
  double total = AdaptiveSimpson([&](double r) { return DistancePdf(p, q, r); },
                                 lo, hi, 1e-9);
  EXPECT_NEAR(total, 1.0, 2e-4);
}

INSTANTIATE_TEST_SUITE_P(Models, DistanceCdfModels,
                         ::testing::Values(DiskPdf::kUniform,
                                           DiskPdf::kTruncatedGaussian),
                         [](const auto& info) {
                           return info.param == DiskPdf::kUniform
                                      ? "Uniform"
                                      : "TruncatedGaussian";
                         });

TEST(DistanceCdf, Figure1UniformDiskExample) {
  // Figure 1 of the paper: disk of radius 5 at the origin, q = (6, 8), so
  // d(q, O) = 10; the support of g is [5, 15].
  UncertainPoint p = UncertainPoint::Disk({0, 0}, 5.0);
  Vec2 q{6, 8};
  EXPECT_DOUBLE_EQ(DistanceCdf(p, q, 4.99), 0.0);
  EXPECT_DOUBLE_EQ(DistanceCdf(p, q, 15.01), 1.0);
  EXPECT_EQ(DistancePdf(p, q, 4.5), 0.0);
  EXPECT_EQ(DistancePdf(p, q, 15.5), 0.0);
  EXPECT_GT(DistancePdf(p, q, 10.0), 0.0);
  // The pdf is highest where the circle around q sweeps the widest chord,
  // near r = d (the disk center distance).
  EXPECT_GT(DistancePdf(p, q, 10.0), DistancePdf(p, q, 6.0));
  EXPECT_GT(DistancePdf(p, q, 10.0), DistancePdf(p, q, 14.5));
  double total = AdaptiveSimpson([&](double r) { return DistancePdf(p, q, r); },
                                 5.0, 15.0, 1e-10);
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(DistanceCdf, DiscreteStepsAtSiteDistances) {
  UncertainPoint p = UncertainPoint::Discrete({{1, 0}, {3, 0}, {0, 4}},
                                              {0.2, 0.3, 0.5});
  Vec2 q{0, 0};
  EXPECT_DOUBLE_EQ(DistanceCdf(p, q, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(DistanceCdf(p, q, 1.0), 0.2);
  EXPECT_DOUBLE_EQ(DistanceCdf(p, q, 2.9), 0.2);
  EXPECT_DOUBLE_EQ(DistanceCdf(p, q, 3.0), 0.5);
  EXPECT_DOUBLE_EQ(DistanceCdf(p, q, 4.0), 1.0);
}

TEST(DiscreteSampler, FrequenciesMatchWeights) {
  DiscreteSampler sampler({0.1, 0.2, 0.3, 0.4});
  std::mt19937_64 rng(11);
  std::vector<int> counts(4, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[sampler.Sample(rng)];
  EXPECT_NEAR(counts[0] / double(kDraws), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / double(kDraws), 0.2, 0.01);
  EXPECT_NEAR(counts[2] / double(kDraws), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / double(kDraws), 0.4, 0.01);
}

TEST(Sampling, UniformDiskStaysInSupportAndIsUniform) {
  std::mt19937_64 rng(3);
  Vec2 c{5, -2};
  double radius = 2.0;
  int inside_half_radius = 0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    Vec2 p = SampleUniformDisk(rng, c, radius);
    ASSERT_LE(Dist(p, c), radius + 1e-12);
    if (Dist(p, c) <= radius / 2) ++inside_half_radius;
  }
  // Area ratio of the half-radius disk is 1/4.
  EXPECT_NEAR(inside_half_radius / double(kDraws), 0.25, 0.01);
}

TEST(Sampling, TruncatedGaussianStaysInSupport) {
  std::mt19937_64 rng(5);
  for (int i = 0; i < 20000; ++i) {
    Vec2 p = SampleTruncatedGaussian(rng, {0, 0}, 1.5);
    ASSERT_LE(Norm(p), 1.5 + 1e-12);
  }
}

TEST(Sampling, DiscretizeBySamplingPreservesSupport) {
  std::mt19937_64 rng(9);
  UncertainPoint p = UncertainPoint::Disk({1, 1}, 2.0);
  UncertainPoint d = DiscretizeBySampling(p, 64, rng);
  EXPECT_FALSE(d.is_disk());
  EXPECT_EQ(d.sites().size(), 64u);
  for (Vec2 s : d.sites()) EXPECT_LE(Dist(s, {1, 1}), 2.0 + 1e-12);
}

}  // namespace
}  // namespace prob
}  // namespace unn
