// The observability layer (src/obs/): metric primitives (sharded Counter,
// Gauge, geometric Histogram with its percentile contract — empty -> zeros,
// single sample exact, overflow reports the observed max, p50 <= p95 <= p99
// always), the Registry's idempotent-handle and snapshot-order contracts
// under concurrent churn (the TSan job runs this suite), span-tree tracing
// including the zero-cost disabled mode, both exporters' output formats,
// and the opt-in traversal-profiling sink end to end through a real
// KdTree query.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "geom/vec2.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "range/kdtree.h"

namespace unn {
namespace obs {
namespace {

using geom::Vec2;

// ---------------------------------------------------------------------------
// Counter / Gauge

TEST(CounterTest, IncAndValue) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Inc();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.Value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAddValue) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0.0);
  g.Set(2.5);
  EXPECT_EQ(g.Value(), 2.5);
  g.Add(1.5);
  EXPECT_EQ(g.Value(), 4.0);
  g.Add(-4.0);
  EXPECT_EQ(g.Value(), 0.0);
}

// ---------------------------------------------------------------------------
// Histogram

TEST(HistogramTest, EmptySummarizesToZeros) {
  Histogram h;
  HistogramSummary s = h.Summarize();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0.0);
  EXPECT_EQ(s.max, 0.0);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.p95, 0.0);
  EXPECT_EQ(s.p99, 0.0);
}

TEST(HistogramTest, SingleSampleIsExact) {
  Histogram h;
  h.Record(137.0);
  HistogramSummary s = h.Summarize();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.sum, 137.0);
  EXPECT_EQ(s.max, 137.0);
  // Percentiles are bucket upper bounds clamped to the observed max, so a
  // single sample is reported exactly at every percentile.
  EXPECT_EQ(s.p50, 137.0);
  EXPECT_EQ(s.p95, 137.0);
  EXPECT_EQ(s.p99, 137.0);
}

TEST(HistogramTest, AboveTopBucketReportsObservedMax) {
  Histogram h;
  const double huge = 5e9;  // Above the 1e8 top finite boundary.
  h.Record(huge);
  EXPECT_EQ(h.bucket_count(Histogram::kOverflowBucket), 1u);
  HistogramSummary s = h.Summarize();
  // The overflow bucket's percentile estimate is the observed max, not a
  // clamped finite boundary.
  EXPECT_EQ(s.p50, huge);
  EXPECT_EQ(s.p99, huge);
  EXPECT_EQ(s.max, huge);
}

TEST(HistogramTest, NonPositiveValuesLandInBucketZero) {
  Histogram h;
  h.Record(0.0);
  h.Record(-17.0);
  h.Record(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.bucket_count(0), 3u);
  EXPECT_EQ(h.count(), 3u);
  HistogramSummary s = h.Summarize();
  EXPECT_EQ(s.p99, 0.0);  // Clamped to the observed max of 0.
}

TEST(HistogramTest, BucketBoundariesAreMonotone) {
  EXPECT_EQ(Histogram::BucketUpper(0), 1.0);
  for (int i = 1; i < Histogram::kOverflowBucket; ++i) {
    EXPECT_GT(Histogram::BucketUpper(i), Histogram::BucketUpper(i - 1))
        << "bucket " << i;
  }
  EXPECT_NEAR(Histogram::BucketUpper(Histogram::kOverflowBucket - 1), 1e8,
              1e8 * 1e-9);
  EXPECT_TRUE(std::isinf(Histogram::BucketUpper(Histogram::kOverflowBucket)));
}

TEST(HistogramTest, PercentilesAreOrderedUpperBounds) {
  // 90 fast, 9 medium, 1 slow: p50 must sit in the fast band, p95 in the
  // medium band, p99 at the slow sample — each within one geometric bucket
  // (ratio 10^(8/126) ~ 1.158) above the true value.
  Histogram h;
  for (int i = 0; i < 90; ++i) h.Record(10.0);
  for (int i = 0; i < 9; ++i) h.Record(1000.0);
  h.Record(100000.0);

  HistogramSummary s = h.Summarize();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.max, 100000.0);
  const double ratio = std::pow(10.0, 8.0 / 126.0);
  EXPECT_GE(s.p50, 10.0);
  EXPECT_LE(s.p50, 10.0 * ratio);
  EXPECT_GE(s.p95, 1000.0);
  EXPECT_LE(s.p95, 1000.0 * ratio);
  EXPECT_GE(s.p99, 1000.0);
  EXPECT_LE(s.p99, 100000.0);
  // The ordering invariant that motivated the upper-bound-clamped design.
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.max);
}

TEST(HistogramTest, ConcurrentRecordLosesNothing) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<double>(1 + (t * kPerThread + i) % 5000));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  HistogramSummary s = h.Summarize();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.max);
  EXPECT_LE(s.max, 5000.0);
}

// ---------------------------------------------------------------------------
// Registry

TEST(RegistryTest, HandlesAreIdempotentPerNameAndLabels) {
  Registry r;
  Counter* a = r.GetCounter("unn_test_total", "help");
  Counter* b = r.GetCounter("unn_test_total", "help");
  EXPECT_EQ(a, b);
  Counter* c = r.GetCounter("unn_test_total", "help", {{"type", "x"}});
  Counter* d = r.GetCounter("unn_test_total", "help", {{"type", "y"}});
  EXPECT_NE(c, d);
  EXPECT_NE(a, c);
  EXPECT_EQ(c, r.GetCounter("unn_test_total", "help", {{"type", "x"}}));

  Gauge* g = r.GetGauge("unn_test_gauge", "help");
  EXPECT_EQ(g, r.GetGauge("unn_test_gauge", "help"));
  Histogram* h = r.GetHistogram("unn_test_us", "help");
  EXPECT_EQ(h, r.GetHistogram("unn_test_us", "help"));
}

TEST(RegistryTest, SnapshotPreservesRegistrationOrderAndValues) {
  Registry r;
  Counter* c = r.GetCounter("unn_c_total", "a counter");
  Gauge* g = r.GetGauge("unn_g", "a gauge");
  Histogram* h = r.GetHistogram("unn_h_us", "a histogram");
  c->Inc(3);
  g->Set(7.5);
  h->Record(12.0);
  h->Record(34.0);

  std::vector<MetricSnapshot> snap = r.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "unn_c_total");
  EXPECT_EQ(snap[0].kind, MetricKind::kCounter);
  EXPECT_EQ(snap[0].value, 3.0);
  EXPECT_EQ(snap[0].help, "a counter");
  EXPECT_EQ(snap[1].name, "unn_g");
  EXPECT_EQ(snap[1].kind, MetricKind::kGauge);
  EXPECT_EQ(snap[1].value, 7.5);
  EXPECT_EQ(snap[2].name, "unn_h_us");
  EXPECT_EQ(snap[2].kind, MetricKind::kHistogram);
  EXPECT_EQ(snap[2].count, 2u);
  EXPECT_EQ(snap[2].sum, 46.0);
  EXPECT_EQ(snap[2].max, 34.0);
  ASSERT_EQ(snap[2].buckets.size(), static_cast<size_t>(Histogram::kBuckets));
}

// The TSan job runs this suite: 8 threads hammer registration (idempotent
// lookups and fresh label sets) and mutation while the main thread races
// snapshots. Handles must stay pointer-stable and totals exact.
TEST(RegistryTest, ConcurrentChurnAndSnapshots) {
  Registry r;
  constexpr int kThreads = 8;
  constexpr int kIters = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&r, t] {
      Counter* shared = r.GetCounter("unn_churn_total", "shared counter");
      Histogram* h = r.GetHistogram("unn_churn_us", "shared histogram");
      for (int i = 0; i < kIters; ++i) {
        shared->Inc();
        h->Record(static_cast<double>(1 + i));
        // Fresh label sets force real registrations under the lock.
        Counter* mine = r.GetCounter(
            "unn_churn_labeled_total", "per-thread counter",
            {{"thread", std::to_string(t)}, {"i", std::to_string(i % 16)}});
        mine->Inc();
      }
    });
  }
  // Race snapshots against the churn until every label set has appeared.
  size_t last_size = 0;
  const size_t want = 2 + static_cast<size_t>(kThreads) * 16;
  while (last_size < want) {
    std::vector<MetricSnapshot> snap = r.Snapshot();
    EXPECT_GE(snap.size(), last_size);  // Entries are never removed.
    last_size = snap.size();
    std::this_thread::yield();
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(r.GetCounter("unn_churn_total", "shared counter")->Value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  std::uint64_t labeled = 0;
  for (const MetricSnapshot& m : r.Snapshot()) {
    if (m.name == "unn_churn_labeled_total") {
      labeled += static_cast<std::uint64_t>(m.value);
    }
  }
  EXPECT_EQ(labeled, static_cast<std::uint64_t>(kThreads) * kIters);
}

// ---------------------------------------------------------------------------
// Tracing

TEST(TraceTest, SpanTreeLifecycle) {
  TraceContext ctx;
  std::int32_t root = ctx.StartSpan("request");
  {
    ScopedSpan admission(TraceNode{&ctx, root}, "admission");
    ScopedSpan lookup(admission.node(), "cache_lookup");
  }
  std::int32_t fan = ctx.StartSpan("shard_fanout", root, /*tag=*/2);
  ctx.StartSpan("shard_query", fan, /*tag=*/0);
  ctx.EndSpan(fan);
  ctx.EndSpan(root);

  std::vector<Span> spans = ctx.spans();
  ASSERT_EQ(spans.size(), 5u);
  EXPECT_EQ(std::string(spans[0].name), "request");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(std::string(spans[1].name), "admission");
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_EQ(std::string(spans[2].name), "cache_lookup");
  EXPECT_EQ(spans[2].parent, spans[1].id);
  EXPECT_EQ(spans[3].tag, 2);
  EXPECT_EQ(spans[4].parent, fan);
  EXPECT_EQ(spans[4].end_ns, -1);  // shard_query was never ended.
  for (const Span& s : spans) {
    EXPECT_GE(s.start_ns, 0);
    if (s.end_ns >= 0) EXPECT_GE(s.end_ns, s.start_ns);
  }
  // RAII-ended spans are closed.
  EXPECT_GE(spans[1].end_ns, 0);
  EXPECT_GE(spans[2].end_ns, 0);
}

TEST(TraceTest, DisabledNodeIsNoOp) {
  // The design center: a null context makes every span site a pointer test.
  ScopedSpan outer(TraceNode{}, "request");
  ScopedSpan inner(outer.node(), "child", /*tag=*/7);
  inner.End();
  outer.End();
  EXPECT_EQ(outer.node().ctx, nullptr);
}

TEST(TraceTest, ScopedSpanEndIsIdempotent) {
  TraceContext ctx;
  ScopedSpan s(TraceNode{&ctx, -1}, "once");
  s.End();
  s.End();  // Second End (and the destructor) must not double-close.
  std::vector<Span> spans = ctx.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_GE(spans[0].end_ns, 0);
}

TEST(TraceTest, RenderSpanTreeShowsHierarchy) {
  TraceContext ctx;
  std::int32_t root = ctx.StartSpan("request");
  std::int32_t eng = ctx.StartSpan("engine_query", root);
  ctx.StartSpan("shard_query", eng, /*tag=*/3);
  ctx.EndSpan(eng);
  ctx.EndSpan(root);

  std::string rendered = RenderSpanTree(ctx.spans());
  EXPECT_NE(rendered.find("request"), std::string::npos);
  EXPECT_NE(rendered.find("engine_query"), std::string::npos);
  EXPECT_NE(rendered.find("shard_query"), std::string::npos);
  EXPECT_NE(rendered.find("tag=3"), std::string::npos);
  // Children render after (indented under) their parents.
  EXPECT_LT(rendered.find("request"), rendered.find("engine_query"));
  EXPECT_LT(rendered.find("engine_query"), rendered.find("shard_query"));
}

// ---------------------------------------------------------------------------
// Exporters

std::vector<MetricSnapshot> SampleSnapshot() {
  // Built inside a local registry so tests work on plain snapshot data.
  Registry r;
  Counter* qx =
      r.GetCounter("unn_queries_total", "Total queries.", {{"type", "top_k"}});
  Counter* qy = r.GetCounter("unn_queries_total", "Total queries.",
                             {{"type", "threshold"}});
  Gauge* g = r.GetGauge("unn_inflight", "In-flight requests.");
  Histogram* h = r.GetHistogram("unn_latency_us", "Latency.");
  qx->Inc(5);
  qy->Inc(2);
  g->Set(3);
  h->Record(10.0);
  h->Record(2000.0);
  return r.Snapshot();
}

TEST(ExportTest, PrometheusTextFormat) {
  std::string text = ToPrometheusText(SampleSnapshot());

  // One HELP/TYPE header per family, even with several label sets.
  EXPECT_NE(text.find("# HELP unn_queries_total Total queries."),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE unn_queries_total counter"), std::string::npos);
  EXPECT_EQ(text.find("# TYPE unn_queries_total counter"),
            text.rfind("# TYPE unn_queries_total counter"));
  EXPECT_NE(text.find("unn_queries_total{type=\"top_k\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("unn_queries_total{type=\"threshold\"} 2"),
            std::string::npos);

  EXPECT_NE(text.find("# TYPE unn_inflight gauge"), std::string::npos);
  EXPECT_NE(text.find("unn_inflight 3"), std::string::npos);

  // Histograms: cumulative buckets ending at +Inf, plus _sum and _count.
  EXPECT_NE(text.find("# TYPE unn_latency_us histogram"), std::string::npos);
  EXPECT_NE(text.find("unn_latency_us_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("unn_latency_us_sum 2010"), std::string::npos);
  EXPECT_NE(text.find("unn_latency_us_count 2"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

TEST(ExportTest, PrometheusEscapesLabelValues) {
  Registry r;
  r.GetCounter("unn_esc_total", "h", {{"path", "a\"b\\c\nd"}})->Inc();
  std::string text = ToPrometheusText(r.Snapshot());
  EXPECT_NE(text.find("path=\"a\\\"b\\\\c\\nd\""), std::string::npos);
}

TEST(ExportTest, JsonCarriesSummaries) {
  std::string json = ToJson(SampleSnapshot());
  EXPECT_NE(json.find("\"name\": \"unn_queries_total\""), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"top_k\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"histogram\""), std::string::npos);
  // Histograms export percentile summaries rather than raw buckets.
  EXPECT_NE(json.find("\"p50\": "), std::string::npos);
  EXPECT_NE(json.find("\"p99\": "), std::string::npos);
  // Balanced brackets as a cheap well-formedness check.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(ExportTest, ExportDispatchesOnFormat) {
  std::vector<MetricSnapshot> snap = SampleSnapshot();
  EXPECT_EQ(Export(snap, MetricsFormat::kPrometheus), ToPrometheusText(snap));
  EXPECT_EQ(Export(snap, MetricsFormat::kJson), ToJson(snap));
}

// ---------------------------------------------------------------------------
// Traversal profiling

TEST(ProfileTest, SinkAccumulatesAndResets) {
  ResetTraversalProfile();
  spatial::TraversalStats st;
  st.nodes_visited = 10;
  st.leaves_scanned = 4;
  st.points_evaluated = 7;
  st.prunes = 3;
  st.heap_pushes = 5;
  RecordTraversal(TraversalOp::kQuantEnvelope, st);
  RecordTraversal(TraversalOp::kQuantEnvelope, st);

  EXPECT_EQ(TraversalCount(TraversalOp::kQuantEnvelope), 2);
  spatial::TraversalStats total = TraversalTotals(TraversalOp::kQuantEnvelope);
  EXPECT_EQ(total.nodes_visited, 20);
  EXPECT_EQ(total.prunes, 6);
  EXPECT_EQ(TraversalCount(TraversalOp::kKdNearest), 0);

  std::vector<MetricSnapshot> out;
  AppendTraversalMetrics(&out);
  bool saw_nodes = false;
  for (const MetricSnapshot& m : out) {
    // Only the one op with recorded traversals is emitted.
    for (const auto& [k, v] : m.labels) {
      if (k == "op") EXPECT_EQ(v, "quant_envelope");
      if (k == "structure") EXPECT_EQ(v, "quant_tree");
    }
    if (m.name == "unn_traversal_nodes_visited_total") {
      saw_nodes = true;
      EXPECT_EQ(m.value, 20.0);
    }
  }
  EXPECT_TRUE(saw_nodes);

  ResetTraversalProfile();
  EXPECT_EQ(TraversalCount(TraversalOp::kQuantEnvelope), 0);
  out.clear();
  AppendTraversalMetrics(&out);
  EXPECT_TRUE(out.empty());
}

TEST(ProfileTest, KdTreeQueriesFeedTheSinkOnlyWhenEnabled) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> u(-10, 10);
  std::vector<Vec2> pts(512);
  for (Vec2& p : pts) p = {u(rng), u(rng)};
  range::KdTree tree(pts);

  // Disabled (the default): queries must not touch the sink.
  ResetTraversalProfile();
  EnableTraversalProfiling(false);
  tree.Nearest({0.0, 0.0});
  EXPECT_EQ(TraversalCount(TraversalOp::kKdNearest), 0);

  EnableTraversalProfiling(true);
  for (int i = 0; i < 8; ++i) tree.Nearest({u(rng), u(rng)});
  EnableTraversalProfiling(false);

  EXPECT_EQ(TraversalCount(TraversalOp::kKdNearest), 8);
  spatial::TraversalStats total = TraversalTotals(TraversalOp::kKdNearest);
  EXPECT_GT(total.nodes_visited, 0);
  EXPECT_GT(total.points_evaluated, 0);
  // A balanced kd-tree prunes: far subtrees are skipped, so a nearest
  // query must not evaluate every point.
  EXPECT_LT(total.points_evaluated, 8 * tree.size());
  ResetTraversalProfile();
}

}  // namespace
}  // namespace obs
}  // namespace unn
