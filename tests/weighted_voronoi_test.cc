#include "voronoi/weighted_voronoi.h"

#include <random>

#include <gtest/gtest.h>

namespace unn {
namespace voronoi {
namespace {

using geom::Vec2;

/// True when q is within `tol` of a cell boundary (weighted-distance tie).
bool NearTie(const std::vector<Vec2>& sites, const std::vector<double>& w,
             Vec2 q, double tol) {
  double best = 1e18, second = 1e18;
  for (size_t i = 0; i < sites.size(); ++i) {
    double d = Dist(q, sites[i]) + w[i];
    if (d < best) {
      second = best;
      best = d;
    } else {
      second = std::min(second, d);
    }
  }
  return second - best < tol;
}

TEST(WeightedVoronoi, TwoSitesPlainBisector) {
  WeightedVoronoi vd({{-5, 0}, {5, 0}}, {0, 0});
  EXPECT_EQ(vd.Query({-1, 3}), 0);
  EXPECT_EQ(vd.Query({1, -3}), 1);
  EXPECT_EQ(vd.Query({-100, 50}), 0);  // Outside window: fallback.
}

TEST(WeightedVoronoi, WeightShiftsBisector) {
  // Site 0 has weight 3: its cell shrinks; the bisector is a hyperbola
  // around site 0. Point (0,0) is at weighted distance 8 from site 0 and 5
  // from site 1.
  WeightedVoronoi vd({{-5, 0}, {5, 0}}, {3, 0});
  EXPECT_EQ(vd.Query({0, 0}), 1);
  EXPECT_EQ(vd.Query({-4.9, 0}), 0);
}

TEST(WeightedVoronoi, DominatedSiteDetectedAndNeverWins) {
  // Site 1 sits near site 0 but carries a huge weight: empty cell.
  WeightedVoronoi vd({{0, 0}, {1, 0}, {10, 0}}, {0, 5, 0});
  EXPECT_TRUE(vd.IsDominated(1));
  EXPECT_FALSE(vd.IsDominated(0));
  EXPECT_FALSE(vd.IsDominated(2));
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> u(-20, 20);
  for (int t = 0; t < 200; ++t) {
    EXPECT_NE(vd.Query({u(rng), u(rng)}), 1);
  }
}

TEST(WeightedVoronoi, RandomAgreementWithBruteForce) {
  std::mt19937_64 rng(17);
  std::uniform_real_distribution<double> pos(-10, 10);
  std::uniform_real_distribution<double> wu(0, 2);
  for (int n : {2, 4, 8, 16, 32}) {
    for (int iter = 0; iter < 4; ++iter) {
      std::vector<Vec2> sites(n);
      std::vector<double> w(n);
      for (auto& s : sites) s = {pos(rng), pos(rng)};
      for (auto& x : w) x = wu(rng);
      WeightedVoronoi vd(sites, w);
      std::uniform_real_distribution<double> qu(-12, 12);
      int checked = 0;
      for (int t = 0; t < 200; ++t) {
        Vec2 q{qu(rng), qu(rng)};
        if (NearTie(sites, w, q, 1e-6)) continue;
        int got = vd.Query(q);
        int want = 0;
        for (int i = 1; i < n; ++i) {
          if (Dist(q, sites[i]) + w[i] < Dist(q, sites[want]) + w[want]) want = i;
        }
        ASSERT_EQ(got, want) << "n=" << n << " iter=" << iter;
        ++checked;
      }
      EXPECT_GT(checked, 150);
    }
  }
}

TEST(WeightedVoronoi, ZeroWeightsIsStandardVoronoiWithLinearComplexity) {
  std::mt19937_64 rng(29);
  std::uniform_real_distribution<double> pos(-10, 10);
  int n = 40;
  std::vector<Vec2> sites(n);
  for (auto& s : sites) s = {pos(rng), pos(rng)};
  WeightedVoronoi vd(sites, std::vector<double>(n, 0.0));
  // Standard Voronoi of n sites has at most 2n-5 vertices.
  EXPECT_LE(vd.stats().vertices, 2 * n);
  EXPECT_EQ(vd.stats().nonempty_cells, n);
  std::uniform_real_distribution<double> qu(-12, 12);
  for (int t = 0; t < 300; ++t) {
    Vec2 q{qu(rng), qu(rng)};
    int got = vd.Query(q);
    int want = 0;
    for (int i = 1; i < n; ++i) {
      if (DistSq(q, sites[i]) < DistSq(q, sites[want])) want = i;
    }
    double d_got = Dist(q, sites[got]);
    double d_want = Dist(q, sites[want]);
    ASSERT_NEAR(d_got, d_want, 1e-9);
  }
}

}  // namespace
}  // namespace voronoi
}  // namespace unn
