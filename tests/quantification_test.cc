#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "baselines/brute_force.h"
#include "core/exact_pnn.h"
#include "core/monte_carlo_pnn.h"
#include "core/pnn_common.h"
#include "core/spiral_search.h"

namespace unn {
namespace core {
namespace {

using geom::Vec2;

std::vector<UncertainPoint> RandomDiscrete(int n, int k, std::mt19937_64& rng,
                                           double spread = 10.0,
                                           double cluster = 1.0,
                                           bool uniform_weights = true) {
  std::uniform_real_distribution<double> pos(-spread, spread);
  std::uniform_real_distribution<double> off(-cluster, cluster);
  std::uniform_real_distribution<double> wu(0.2, 1.0);
  std::vector<UncertainPoint> pts;
  for (int i = 0; i < n; ++i) {
    double cx = pos(rng), cy = pos(rng);
    std::vector<Vec2> sites;
    std::vector<double> w;
    double total = 0;
    for (int s = 0; s < k; ++s) {
      double ox = off(rng), oy = off(rng);
      sites.push_back({cx + ox, cy + oy});
      double ws = uniform_weights ? 1.0 : wu(rng);
      w.push_back(ws);
      total += ws;
    }
    for (auto& x : w) x /= total;
    pts.push_back(UncertainPoint::Discrete(sites, w));
  }
  return pts;
}

TEST(ExactPnn, HandComputedTwoPointCase) {
  // P0 = {(1,0)} certain; P1 = {(2,0) w .5, (3,0) w .5}; q at origin.
  std::vector<UncertainPoint> pts = {
      UncertainPoint::Discrete({{1, 0}}, {1.0}),
      UncertainPoint::Discrete({{2, 0}, {3, 0}}, {0.5, 0.5})};
  auto pi = baselines::QuantificationProbabilities(pts, {0, 0});
  EXPECT_NEAR(pi[0], 1.0, 1e-12);
  EXPECT_NEAR(pi[1], 0.0, 1e-12);
}

TEST(ExactPnn, HandComputedInterleavedCase) {
  // P0 = {d=1 w .5, d=4 w .5}; P1 = {d=2 w 1}; pi = (0.5, 0.5).
  std::vector<UncertainPoint> pts = {
      UncertainPoint::Discrete({{1, 0}, {4, 0}}, {0.5, 0.5}),
      UncertainPoint::Discrete({{0, 2}}, {1.0})};
  auto pi = baselines::QuantificationProbabilities(pts, {0, 0});
  EXPECT_NEAR(pi[0], 0.5, 1e-12);
  EXPECT_NEAR(pi[1], 0.5, 1e-12);
}

TEST(ExactPnn, LemmaFourOneHalfPowers) {
  // The Lemma 4.1 configuration: every P_i is {p_i w .5, far_i w .5} with
  // p_i the (i+1)-st closest point and far_0 the closest far location. Then
  // pi_i = 0.5^{i+1}, plus the all-at-far event 0.5^n won by P_0.
  int n = 6;
  std::vector<UncertainPoint> pts;
  for (int i = 0; i < n; ++i) {
    pts.push_back(UncertainPoint::Discrete(
        {{static_cast<double>(i + 1), 0}, {100.0 + i, 0}}, {0.5, 0.5}));
  }
  auto pi = baselines::QuantificationProbabilities(pts, {0, 0});
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(pi[i], std::pow(0.5, i + 1) + (i == 0 ? std::pow(0.5, n) : 0),
                1e-12)
        << i;
  }
}

TEST(ExactPnn, ProbabilitiesSumToOneRandomized) {
  std::mt19937_64 rng(42);
  for (int iter = 0; iter < 40; ++iter) {
    auto pts = RandomDiscrete(2 + iter % 12, 1 + iter % 5, rng, 10.0, 2.0,
                              iter % 2 == 0);
    std::uniform_real_distribution<double> qu(-12, 12);
    Vec2 q{qu(rng), qu(rng)};
    auto pi = baselines::QuantificationProbabilities(pts, q);
    double sum = 0;
    for (double p : pi) {
      EXPECT_GE(p, -1e-12);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << "iter=" << iter;
  }
}

TEST(ExactPnn, DiscreteQuantificationReturnsPositiveOnly) {
  std::mt19937_64 rng(43);
  auto pts = RandomDiscrete(8, 3, rng);
  auto out = DiscreteQuantification(pts, {0, 0});
  double sum = 0;
  for (auto [id, p] : out) {
    EXPECT_GT(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  for (size_t i = 1; i < out.size(); ++i) EXPECT_LT(out[i - 1].first, out[i].first);
}

TEST(ExactPnn, IntegrationMatchesMonteCarloOnDisks) {
  std::vector<UncertainPoint> pts = {UncertainPoint::Disk({0, 0}, 1.0),
                                     UncertainPoint::Disk({3, 0}, 1.5),
                                     UncertainPoint::Disk({0, 4}, 0.8)};
  MonteCarloPnnOptions opts;
  opts.s_override = 200000;
  opts.seed = 99;
  MonteCarloPnn mc(pts, opts);
  for (Vec2 q : {Vec2{1.2, 0.7}, Vec2{0, 0}, Vec2{2, 2}}) {
    auto integrated = IntegrateAllQuantifications(pts, q, 1e-9);
    double sum = 0;
    for (auto [id, p] : integrated) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-6);  // Eq. (1) integrates to 1 over all i.
    for (auto [id, p] : integrated) {
      EXPECT_NEAR(p, mc.QueryOne(q, id), 0.01)
          << "id=" << id << " q=(" << q.x << "," << q.y << ")";
    }
  }
}

TEST(MonteCarloPnn, DiscreteErrorWithinEps) {
  std::mt19937_64 rng(77);
  auto pts = RandomDiscrete(8, 3, rng, 6.0, 3.0);
  MonteCarloPnnOptions opts;
  opts.s_override = 40000;
  MonteCarloPnn mc(pts, opts);
  std::uniform_real_distribution<double> qu(-8, 8);
  // With s = 40000 the Chernoff bound gives eps ~ sqrt(ln(2/d)/2s) ~ 0.01.
  for (int t = 0; t < 20; ++t) {
    Vec2 q{qu(rng), qu(rng)};
    auto exact = baselines::QuantificationProbabilities(pts, q);
    for (size_t i = 0; i < pts.size(); ++i) {
      EXPECT_NEAR(mc.QueryOne(q, static_cast<int>(i)), exact[i], 0.02)
          << "t=" << t << " i=" << i;
    }
  }
}

TEST(MonteCarloPnn, RequiredSamplesScalesInverseEpsSquared) {
  int s1 = MonteCarloPnn::RequiredSamples(10, 4, 0.2, 0.05);
  int s2 = MonteCarloPnn::RequiredSamples(10, 4, 0.1, 0.05);
  int s4 = MonteCarloPnn::RequiredSamples(10, 4, 0.05, 0.05);
  EXPECT_NEAR(static_cast<double>(s2) / s1, 4.0, 0.1);
  EXPECT_NEAR(static_cast<double>(s4) / s2, 4.0, 0.1);
}

TEST(MonteCarloPnn, EstimatesSumToAtMostOne) {
  std::mt19937_64 rng(78);
  auto pts = RandomDiscrete(10, 2, rng);
  MonteCarloPnnOptions opts;
  opts.s_override = 5000;
  MonteCarloPnn mc(pts, opts);
  auto est = mc.Query({0.3, -0.2});
  double sum = 0;
  for (auto [id, p] : est) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);  // Counts partition the instantiations.
}

class SpiralSearchEps : public ::testing::TestWithParam<double> {};

TEST_P(SpiralSearchEps, Lemma46SandwichHolds) {
  double eps = GetParam();
  std::mt19937_64 rng(123);
  for (int iter = 0; iter < 12; ++iter) {
    bool uniform = iter % 2 == 0;
    auto pts = RandomDiscrete(12, 4, rng, 8.0, 2.0, uniform);
    SpiralSearch ss(pts);
    std::uniform_real_distribution<double> qu(-10, 10);
    for (int t = 0; t < 25; ++t) {
      Vec2 q{qu(rng), qu(rng)};
      auto exact = baselines::QuantificationProbabilities(pts, q);
      auto est = ss.Query(q, eps);
      std::vector<double> est_dense(pts.size(), 0.0);
      for (auto [id, p] : est) est_dense[id] = p;
      for (size_t i = 0; i < pts.size(); ++i) {
        // Lemma 4.6: hat-pi <= pi <= hat-pi + eps.
        EXPECT_LE(est_dense[i], exact[i] + 1e-9) << "i=" << i;
        EXPECT_GE(est_dense[i] + eps + 1e-9, exact[i]) << "i=" << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(EpsSweep, SpiralSearchEps,
                         ::testing::Values(0.2, 0.1, 0.05, 0.01),
                         [](const auto& info) {
                           return "eps" + std::to_string(static_cast<int>(
                                              info.param * 1000));
                         });

TEST(SpiralSearch, RetrievalCountFormula) {
  std::mt19937_64 rng(124);
  auto pts = RandomDiscrete(20, 4, rng, 8.0, 2.0, /*uniform=*/true);
  SpiralSearch ss(pts);
  EXPECT_NEAR(ss.rho(), 1.0, 1e-9);
  EXPECT_EQ(ss.k(), 4);
  // m = ceil(rho k ln(1/eps)) + k - 1 (capped at N).
  int m = ss.SitesRetrieved(0.1);
  EXPECT_LE(m, 20 * 4);
  EXPECT_GE(m, static_cast<int>(4 * std::log(10.0)));
}

TEST(SpiralSearch, RemarkOneAdversarialSmallWeights) {
  // Section 4.3 Remark (i): dropping low-weight locations can distort other
  // probabilities by more than 2 eps, so the spiral prefix must be chosen
  // by *distance*, not by weight. Construction (q at origin):
  //   P0: site at d=1 with w=3eps (rest far), P1: site at d=4 with w=5eps
  //   (rest far), and n/2 middle points each with one site at d in (2,3)
  //   carrying tiny weight 2/n.
  const double eps = 0.02;
  const int half = 60;
  std::vector<UncertainPoint> pts;
  pts.push_back(UncertainPoint::Discrete({{1, 0}, {200, 0}},
                                         {3 * eps, 1 - 3 * eps}));
  pts.push_back(UncertainPoint::Discrete({{4, 0}, {210, 0}},
                                         {5 * eps, 1 - 5 * eps}));
  double tiny = 1.0 / half;  // Far below eps: a truncating estimator drops it.
  for (int i = 0; i < half; ++i) {
    double d = 2.0 + i / static_cast<double>(half);
    pts.push_back(UncertainPoint::Discrete(
        {{d, 0.01 * i}, {220.0 + i, 0}}, {tiny, 1 - tiny}));
  }
  Vec2 q{0, 0};
  auto exact = baselines::QuantificationProbabilities(pts, q);
  // True pi for P1 is damped below ~2 eps by the tiny middle weights.
  EXPECT_LT(exact[1], 2 * eps);
  // A weight-truncating estimator (drop sites with w < eps/k) overshoots.
  {
    std::vector<WeightedSite> kept;
    for (size_t i = 0; i < pts.size(); ++i) {
      for (size_t s = 0; s < pts[i].sites().size(); ++s) {
        if (pts[i].weights()[s] < eps) continue;
        kept.push_back({Dist(q, pts[i].sites()[s]), static_cast<int>(i),
                        pts[i].weights()[s]});
      }
    }
    std::sort(kept.begin(), kept.end(),
              [](const WeightedSite& a, const WeightedSite& b) {
                return a.dist < b.dist;
              });
    std::vector<double> naive;
    AccumulateQuantification(kept, static_cast<int>(pts.size()), &naive);
    EXPECT_GT(naive[1], exact[1] + 2 * eps)
        << "weight truncation should visibly distort pi_1";
  }
  // The distance-prefix spiral search stays within its guarantee.
  SpiralSearch ss(pts);
  auto est = ss.Query(q, eps);
  std::vector<double> est_dense(pts.size(), 0.0);
  for (auto [id, p] : est) est_dense[id] = p;
  EXPECT_LE(est_dense[1], exact[1] + 1e-9);
  EXPECT_GE(est_dense[1] + eps + 1e-9, exact[1]);
}

}  // namespace
}  // namespace core
}  // namespace unn
