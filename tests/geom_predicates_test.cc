#include "geom/predicates.h"

#include <random>

#include <gtest/gtest.h>

namespace unn {
namespace geom {
namespace {

TEST(Orient2d, BasicOrientations) {
  EXPECT_GT(Orient2d({0, 0}, {1, 0}, {0, 1}), 0);  // CCW.
  EXPECT_LT(Orient2d({0, 0}, {0, 1}, {1, 0}), 0);  // CW.
  EXPECT_EQ(Orient2d({0, 0}, {1, 1}, {2, 2}), 0);  // Collinear.
}

TEST(Orient2d, ExactOnNearDegenerateInputs) {
  // Classic adversarial family: points nearly collinear along y = x with
  // perturbations far below the double-rounding threshold of the naive
  // determinant. The adaptive predicate must still give the exact sign.
  Vec2 a{0.5, 0.5};
  Vec2 b{12.0, 12.0};
  for (int i = 1; i <= 64; ++i) {
    double ulp = std::ldexp(1.0, -52) * i;
    Vec2 above{0.5 + ulp, 0.5};
    Vec2 below{0.5, 0.5 + ulp};
    // (above - a) x (b - a) = ulp * 11.5 > 0; symmetric for `below`.
    EXPECT_GT(Orient2d(above, b, a), 0) << "i=" << i;
    EXPECT_LT(Orient2d(below, b, a), 0) << "i=" << i;
  }
}

TEST(Orient2d, AntisymmetricUnderSwap) {
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  for (int i = 0; i < 500; ++i) {
    Vec2 a{u(rng), u(rng)}, b{u(rng), u(rng)}, c{u(rng), u(rng)};
    EXPECT_EQ(Orient2dSign(a, b, c), -Orient2dSign(b, a, c));
    EXPECT_EQ(Orient2dSign(a, b, c), Orient2dSign(b, c, a));
  }
}

TEST(Orient2d, ExactZeroOnGridCollinear) {
  // Points on an exact line with representable coordinates.
  for (int i = 0; i < 100; ++i) {
    Vec2 a{static_cast<double>(i), static_cast<double>(2 * i)};
    Vec2 b{static_cast<double>(i + 7), static_cast<double>(2 * (i + 7))};
    Vec2 c{static_cast<double>(i - 5), static_cast<double>(2 * (i - 5))};
    EXPECT_EQ(Orient2d(a, b, c), 0.0);
  }
}

TEST(PointOnSegment, EndpointsAndMidpoints) {
  Vec2 a{0, 0}, b{4, 2};
  EXPECT_TRUE(PointOnSegment(a, a, b));
  EXPECT_TRUE(PointOnSegment(b, a, b));
  EXPECT_TRUE(PointOnSegment({2, 1}, a, b));
  EXPECT_FALSE(PointOnSegment({2, 1.0000001}, a, b));
  EXPECT_FALSE(PointOnSegment({6, 3}, a, b));  // Collinear but outside.
}

TEST(SegmentsIntersect, ProperCrossing) {
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {2, 2}, {0, 2}, {2, 0}));
  EXPECT_FALSE(SegmentsIntersect({0, 0}, {1, 1}, {2, 2}, {3, 3}));
}

TEST(SegmentsIntersect, TouchingAtEndpoint) {
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {1, 1}, {1, 1}, {2, 0}));
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {2, 0}, {1, 0}, {1, 5}));
}

TEST(SegmentsIntersect, CollinearOverlap) {
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {3, 0}, {2, 0}, {5, 0}));
  EXPECT_FALSE(SegmentsIntersect({0, 0}, {1, 0}, {2, 0}, {3, 0}));
}

TEST(LineIntersection, BasicAndParallel) {
  bool ok = false;
  Vec2 p = LineIntersection({0, 0}, {2, 2}, {0, 2}, {2, 0}, &ok);
  ASSERT_TRUE(ok);
  EXPECT_NEAR(p.x, 1.0, 1e-12);
  EXPECT_NEAR(p.y, 1.0, 1e-12);
  LineIntersection({0, 0}, {1, 0}, {0, 1}, {1, 1}, &ok);
  EXPECT_FALSE(ok);
}

TEST(SegmentsIntersect, RandomizedAgainstParametricOracle) {
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> u(-5.0, 5.0);
  for (int i = 0; i < 2000; ++i) {
    Vec2 a{u(rng), u(rng)}, b{u(rng), u(rng)}, c{u(rng), u(rng)},
        d{u(rng), u(rng)};
    // Parametric oracle valid away from degeneracies.
    Vec2 r = b - a, s = d - c;
    double denom = Cross(r, s);
    if (std::abs(denom) < 1e-9) continue;
    double t = Cross(c - a, s) / denom;
    double v = Cross(c - a, r) / denom;
    bool expect = t >= 0 && t <= 1 && v >= 0 && v <= 1;
    // Skip borderline cases where the oracle itself is fragile.
    if (std::min({std::abs(t), std::abs(1 - t), std::abs(v),
                  std::abs(1 - v)}) < 1e-9) {
      continue;
    }
    EXPECT_EQ(SegmentsIntersect(a, b, c, d), expect) << "case " << i;
  }
}

}  // namespace
}  // namespace geom
}  // namespace unn
