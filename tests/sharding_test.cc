// Sharded-vs-single-Engine oracle parity: a ShardedEngine over K shards
// must answer every query type with the same global-id answers as one
// Engine over the whole dataset — exactly where the merge is exact
// (kBruteForce-backed shards, NN!=0, expected-distance NN), within the
// backend accuracy where candidates come from estimators. Also covers the
// partitioners, the degenerate-spec contract, empty shards (K > n), all
// mass on one shard, coincident duplicates split across shards, and the
// sharded QueryServer (including resharding via ReplaceDataset).

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/brute_force.h"
#include "engine/engine.h"
#include "serve/parallel.h"
#include "serve/query_server.h"
#include "serve/shard_merge.h"
#include "serve/sharding.h"
#include "workload/generators.h"

namespace unn {
namespace {

using core::UncertainPoint;
using geom::Vec2;

std::vector<Vec2> GridQueries(int count) {
  std::vector<Vec2> qs;
  for (int i = 0; i < count; ++i) {
    qs.push_back({-9.0 + 18.0 * i / count, 6.5 - 13.0 * i / count});
  }
  return qs;
}

const int kShardCounts[] = {1, 2, 4, 7};
const serve::Partitioning kPartitioners[] = {serve::Partitioning::kRoundRobin,
                                             serve::Partitioning::kSpatial};

// ---------------------------------------------------------------------------
// Partitioners
// ---------------------------------------------------------------------------

TEST(PartitionPoints, EveryIdAssignedExactlyOnce) {
  auto pts = workload::RandomDiscrete(23, 2, 301);
  for (int k : {1, 2, 5, 23, 40}) {
    for (auto part : kPartitioners) {
      auto shards = serve::PartitionPoints(pts, {k, part});
      EXPECT_EQ(static_cast<int>(shards.size()), std::min(k, 23));
      std::set<int> seen;
      for (const auto& shard : shards) {
        EXPECT_FALSE(shard.empty());
        EXPECT_TRUE(std::is_sorted(shard.begin(), shard.end()));
        seen.insert(shard.begin(), shard.end());
      }
      EXPECT_EQ(seen.size(), pts.size());
      EXPECT_EQ(*seen.begin(), 0);
      EXPECT_EQ(*seen.rbegin(), 22);
    }
  }
}

TEST(PartitionPoints, SpatialShardsAreBalanced) {
  auto pts = workload::RandomDisks(64, 302);
  auto shards = serve::PartitionPoints(pts, {8, serve::Partitioning::kSpatial});
  ASSERT_EQ(shards.size(), 8u);
  for (const auto& shard : shards) EXPECT_EQ(shard.size(), 8u);
}

// ---------------------------------------------------------------------------
// Exact parity: kBruteForce shards against the kBruteForce single engine,
// for every query type, shard count and partitioner.
// ---------------------------------------------------------------------------

void ExpectParity(const Engine& single, const serve::ShardedEngine& sharded,
                  const std::vector<Vec2>& qs, double value_tol) {
  for (Vec2 q : qs) {
    EXPECT_EQ(sharded.NonzeroNn(q), single.NonzeroNn(q));
    EXPECT_EQ(sharded.MostProbableNn(q), single.MostProbableNn(q));
    EXPECT_EQ(sharded.ExpectedDistanceNn(q), single.ExpectedDistanceNn(q));
    for (double tau : {0.25, 0.6}) {
      auto got = sharded.Threshold(q, tau);
      auto want = single.Threshold(q, tau);
      ASSERT_EQ(got.size(), want.size()) << "tau=" << tau;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].first, want[i].first);
        EXPECT_NEAR(got[i].second, want[i].second, value_tol);
      }
    }
    auto got = sharded.TopK(q, 3);
    auto want = single.TopK(q, 3);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].first, want[i].first);
      EXPECT_NEAR(got[i].second, want[i].second, value_tol);
    }
  }
}

TEST(ShardedEngine, ExactParityDiscrete) {
  auto pts = workload::RandomDiscrete(24, 3, 303);
  Engine::Config cfg;
  cfg.backend = Backend::kBruteForce;
  Engine single(pts, cfg);
  auto qs = GridQueries(25);
  for (int k : kShardCounts) {
    for (auto part : kPartitioners) {
      serve::ShardedEngine sharded(pts, cfg, {k, part});
      EXPECT_EQ(sharded.size(), 24);
      ExpectParity(single, sharded, qs, 1e-12);
    }
  }
}

TEST(ShardedEngine, ExactParityDisks) {
  auto pts = workload::RandomDisks(16, 304);
  Engine::Config cfg;
  cfg.backend = Backend::kBruteForce;
  Engine single(pts, cfg);
  auto qs = GridQueries(15);
  for (int k : kShardCounts) {
    for (auto part : kPartitioners) {
      serve::ShardedEngine sharded(pts, cfg, {k, part});
      ExpectParity(single, sharded, qs, 1e-6);
    }
  }
}

TEST(ShardedEngine, ExactNonzeroAndExpectedOnMixedModel) {
  // NN!=0 and expected-distance merges are exact for any model, including
  // mixed disk + discrete inputs (the probability paths need estimators
  // there, covered separately).
  auto pts = workload::RandomDisks(9, 305);
  auto extra = workload::RandomDiscrete(9, 2, 306);
  pts.insert(pts.end(), extra.begin(), extra.end());
  Engine::Config cfg;
  cfg.backend = Backend::kNonzeroVoronoi;  // Falls back to oracle on mixed.
  Engine single(pts, cfg);
  auto qs = GridQueries(15);
  for (int k : {2, 4, 7}) {
    serve::ShardedEngine sharded(pts, cfg, {k, serve::Partitioning::kSpatial});
    for (Vec2 q : qs) {
      EXPECT_EQ(sharded.NonzeroNn(q), single.NonzeroNn(q));
      EXPECT_EQ(sharded.ExpectedDistanceNn(q), single.ExpectedDistanceNn(q));
    }
  }
}

TEST(ShardedEngine, IndexBackedShardsMatchOracleNonzero) {
  // Shards answering NN!=0 from their own index structures still merge to
  // the exact global answer.
  auto pts = workload::RandomDisks(20, 307);
  Engine::Config cfg;
  cfg.backend = Backend::kNonzeroIndex;
  Engine single(pts, cfg);
  auto qs = GridQueries(20);
  for (int k : {2, 4}) {
    serve::ShardedEngine sharded(pts, cfg,
                                 {k, serve::Partitioning::kRoundRobin});
    for (Vec2 q : qs) {
      EXPECT_EQ(sharded.NonzeroNn(q), single.NonzeroNn(q));
    }
  }
}

// ---------------------------------------------------------------------------
// Estimator shards: candidate-merge approximation stays within eps of the
// exact distribution and keeps the threshold no-false-negative contract.
// ---------------------------------------------------------------------------

TEST(ShardedEngine, EstimatorShardsWithinEpsOfExact) {
  auto pts = workload::RandomDiscrete(30, 3, 308);
  Engine::Config cfg;  // kAuto -> spiral-search estimator per shard.
  const double eps = cfg.eps;
  auto qs = GridQueries(20);
  for (int k : {2, 4}) {
    serve::ShardedEngine sharded(pts, cfg,
                                 {k, serve::Partitioning::kRoundRobin});
    for (Vec2 q : qs) {
      std::vector<double> exact =
          baselines::QuantificationProbabilities(pts, q);
      double best_exact = *std::max_element(exact.begin(), exact.end());
      // The merged most-probable answer is within 2 eps of optimal.
      int got = sharded.MostProbableNn(q);
      ASSERT_GE(got, 0);
      EXPECT_GE(exact[got], best_exact - 2 * eps);
      // Threshold: no false negatives vs the exact distribution.
      const double tau = 0.3;
      auto ranked = sharded.Threshold(q, tau);
      std::set<int> reported;
      for (auto [id, pi] : ranked) reported.insert(id);
      for (size_t i = 0; i < exact.size(); ++i) {
        if (exact[i] >= tau) {
          EXPECT_TRUE(reported.count(static_cast<int>(i)))
              << "missing id " << i << " with pi=" << exact[i];
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Merge edge cases
// ---------------------------------------------------------------------------

TEST(ShardedEngine, MoreShardsThanPoints) {
  auto pts = workload::RandomDiscrete(5, 2, 309);
  Engine::Config cfg;
  cfg.backend = Backend::kBruteForce;
  Engine single(pts, cfg);
  for (auto part : kPartitioners) {
    serve::ShardedEngine sharded(pts, cfg, {7, part});
    EXPECT_EQ(sharded.num_shards(), 5);  // Empty shards are dropped.
    ExpectParity(single, sharded, GridQueries(12), 1e-12);
  }
}

TEST(ShardedEngine, SinglePointDataset) {
  std::vector<UncertainPoint> pts = {UncertainPoint::Disk({1, 2}, 0.5)};
  Engine::Config cfg;
  cfg.backend = Backend::kBruteForce;
  serve::ShardedEngine sharded(pts, cfg, {4, serve::Partitioning::kSpatial});
  EXPECT_EQ(sharded.num_shards(), 1);
  EXPECT_EQ(sharded.NonzeroNn({0, 0}), std::vector<int>{0});
  EXPECT_EQ(sharded.MostProbableNn({0, 0}), 0);
  EXPECT_EQ(sharded.ExpectedDistanceNn({0, 0}), 0);
}

TEST(ShardedEngine, AllMassOnOneShard) {
  // A tight cluster (every plausible NN) lands on one spatial shard; the
  // far-away shards must be pruned without corrupting the answers.
  std::vector<UncertainPoint> pts;
  for (int i = 0; i < 6; ++i) {
    pts.push_back(UncertainPoint::Disk({0.1 * i, 0.05 * i}, 0.2 + 0.01 * i));
  }
  for (int i = 0; i < 6; ++i) {
    pts.push_back(UncertainPoint::Disk({100.0 + i, 90.0 - i}, 0.3));
  }
  Engine::Config cfg;
  cfg.backend = Backend::kBruteForce;
  Engine single(pts, cfg);
  serve::ShardedEngine sharded(pts, cfg, {4, serve::Partitioning::kSpatial});
  std::vector<Vec2> qs = {{0, 0}, {0.3, 0.1}, {-1, -1}, {2, 2}};
  ExpectParity(single, sharded, qs, 1e-6);
  // The cluster owns the candidate set.
  for (Vec2 q : qs) {
    for (int id : sharded.NonzeroNn(q)) EXPECT_LT(id, 6);
  }
}

TEST(ShardedEngine, CoincidentDuplicatesSplitAcrossShards) {
  // Exact duplicates (same sites, same weights) that round-robin onto
  // different shards: the candidate union is the whole set, so the merged
  // answers coincide with the single-engine oracle bit for bit.
  std::vector<UncertainPoint> pts;
  for (int rep = 0; rep < 2; ++rep) {
    pts.push_back(UncertainPoint::DiscreteUniform({{1, 1}, {2, 1}}));
    pts.push_back(UncertainPoint::DiscreteUniform({{-1, 0}, {-2, 0.5}}));
    pts.push_back(UncertainPoint::DiscreteUniform({{0, -2}}));
  }
  Engine::Config cfg;
  cfg.backend = Backend::kBruteForce;
  Engine single(pts, cfg);
  auto qs = GridQueries(12);
  for (int k : {2, 3}) {
    serve::ShardedEngine sharded(pts, cfg,
                                 {k, serve::Partitioning::kRoundRobin});
    for (Vec2 q : qs) {
      EXPECT_EQ(sharded.NonzeroNn(q), single.NonzeroNn(q));
      EXPECT_EQ(sharded.TopK(q, 6), single.TopK(q, 6));
      // Duplicates tie in expected distance: compare values, not ids.
      int got = sharded.ExpectedDistanceNn(q);
      int want = single.ExpectedDistanceNn(q);
      EXPECT_NEAR(single.ExpectedDistance(got, q),
                  single.ExpectedDistance(want, q), 1e-9);
    }
  }
}

TEST(ShardedEngine, DegenerateSpecsBuildNothing) {
  auto pts = workload::RandomDiscrete(10, 2, 310);
  serve::ShardedEngine sharded(pts, {}, {3, serve::Partitioning::kRoundRobin});
  auto qs = GridQueries(4);

  auto empty = sharded.QueryMany({}, {Engine::QueryType::kMostProbableNn});
  EXPECT_TRUE(empty.empty());

  for (auto& r : sharded.QueryMany(qs, {Engine::QueryType::kTopK, 0.5, 0})) {
    EXPECT_TRUE(r.ranked.empty());
  }
  for (auto& r :
       sharded.QueryMany(qs, {Engine::QueryType::kThreshold, 1.5, 1})) {
    EXPECT_TRUE(r.ranked.empty());
  }
  double nan = std::nan("");
  for (auto& r :
       sharded.QueryMany(qs, {Engine::QueryType::kThreshold, nan, 1})) {
    EXPECT_TRUE(r.ranked.empty());
  }
  EXPECT_EQ(sharded.StructuresBuilt(), 0);
}

TEST(ShardedEngine, NonPositiveTauListsEveryId) {
  auto pts = workload::RandomDiscrete(9, 2, 311);
  Engine::Config cfg;
  cfg.backend = Backend::kBruteForce;
  Engine single(pts, cfg);
  serve::ShardedEngine sharded(pts, cfg, {2, serve::Partitioning::kSpatial});
  auto qs = GridQueries(5);
  Engine::QuerySpec spec{Engine::QueryType::kThreshold, 0.0, 1};
  auto got = sharded.QueryMany(qs, spec);
  auto want = single.QueryMany(qs, spec);
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].ranked.size(), want[i].ranked.size());
    for (size_t j = 0; j < got[i].ranked.size(); ++j) {
      EXPECT_EQ(got[i].ranked[j].first, want[i].ranked[j].first);
      EXPECT_NEAR(got[i].ranked[j].second, want[i].ranked[j].second, 1e-12);
    }
  }
}

TEST(ShardedEngine, WarmupPrebuildsEveryShard) {
  auto pts = workload::RandomDiscrete(12, 2, 312);
  serve::ShardedEngine sharded(pts, {}, {3, serve::Partitioning::kRoundRobin});
  EXPECT_EQ(sharded.StructuresBuilt(), 0);
  sharded.Warmup(Engine::QueryType::kMostProbableNn);
  sharded.Warmup(Engine::QueryType::kNonzeroNn);
  int built = sharded.StructuresBuilt();
  EXPECT_GE(built, 3);  // At least one structure per shard.
  auto qs = GridQueries(6);
  sharded.QueryMany(qs, {Engine::QueryType::kMostProbableNn});
  sharded.QueryMany(qs, {Engine::QueryType::kNonzeroNn});
  EXPECT_EQ(sharded.StructuresBuilt(), built);
}

TEST(ShardedEngine, ParallelFanOutMatchesSerial) {
  auto pts = workload::RandomDiscrete(18, 3, 313);
  Engine::Config cfg;
  cfg.backend = Backend::kBruteForce;
  serve::ShardedEngine sharded(pts, cfg, {4, serve::Partitioning::kRoundRobin});
  serve::ThreadPool pool(3);
  auto qs = GridQueries(17);
  for (auto type :
       {Engine::QueryType::kMostProbableNn, Engine::QueryType::kNonzeroNn,
        Engine::QueryType::kTopK, Engine::QueryType::kExpectedDistanceNn}) {
    Engine::QuerySpec spec{type, 0.5, 3};
    auto serial = sharded.QueryMany(qs, spec, nullptr);
    // Per-query shard fan-out on the pool.
    auto fanned = sharded.QueryMany(qs, spec, &pool);
    // Query-parallel batch path.
    auto batched = serve::QueryMany(sharded, qs, spec, &pool);
    ASSERT_EQ(fanned.size(), serial.size());
    ASSERT_EQ(batched.size(), serial.size());
    for (size_t i = 0; i < qs.size(); ++i) {
      EXPECT_EQ(fanned[i].nn, serial[i].nn);
      EXPECT_EQ(fanned[i].ranked, serial[i].ranked);
      EXPECT_EQ(fanned[i].ids, serial[i].ids);
      EXPECT_EQ(batched[i].nn, serial[i].nn);
      EXPECT_EQ(batched[i].ranked, serial[i].ranked);
      EXPECT_EQ(batched[i].ids, serial[i].ids);
    }
  }
}

// ---------------------------------------------------------------------------
// The survival-probability factorization the merge relies on.
// ---------------------------------------------------------------------------

TEST(ShardMerge, SurvivalFactorsAcrossShards) {
  auto pts = workload::RandomDisks(12, 314);
  Engine::Config cfg;
  Engine whole(pts, cfg);
  serve::ShardedEngine sharded(pts, cfg, {3, serve::Partitioning::kRoundRobin});
  for (Vec2 q : GridQueries(8)) {
    for (double r : {0.5, 2.0, 5.0}) {
      double prod = 1.0;
      for (int s = 0; s < sharded.num_shards(); ++s) {
        prod *= sharded.shard(s).SurvivalProbability(q, r);
      }
      EXPECT_NEAR(prod, whole.SurvivalProbability(q, r), 1e-12);
    }
  }
}

TEST(ShardMerge, MergeEnvelopesMatchesGlobalScan) {
  auto pts = workload::RandomDiscrete(15, 2, 315);
  Engine::Config cfg;
  Engine whole(pts, cfg);
  serve::ShardedEngine sharded(pts, cfg, {4, serve::Partitioning::kSpatial});
  for (Vec2 q : GridQueries(10)) {
    std::vector<core::DeltaEnvelope> local;
    std::vector<serve::ShardView> views;
    for (int s = 0; s < sharded.num_shards(); ++s) {
      local.push_back(sharded.shard(s).MaxDistEnvelope(q));
      views.push_back({&sharded.shard(s), &sharded.global_ids(s)});
    }
    core::DeltaEnvelope merged = serve::MergeEnvelopes(local, views);
    core::DeltaEnvelope want = whole.MaxDistEnvelope(q);
    EXPECT_DOUBLE_EQ(merged.best, want.best);
    EXPECT_DOUBLE_EQ(merged.second, want.second);
    EXPECT_EQ(merged.argbest, want.argbest);
  }
}

TEST(ShardMerge, EnvelopeTieSemanticsAcrossShards) {
  // Coincident duplicate supports and exact equal-MaxDist ties, split
  // across shards at every K by both partitioners: the merged envelope
  // must reproduce the single-Engine linear scan exactly — best, second,
  // the smallest-id argbest, and the per-id ThresholdFor Lemma 2.1
  // consumes — and the index-backed Engine hook must agree; the merged
  // NN!=0 answer built on those thresholds must match the oracle too.
  std::vector<UncertainPoint> pts;
  for (int i = 0; i < 4; ++i) pts.push_back(UncertainPoint::Disk({3, 0}, 1.0));
  pts.push_back(UncertainPoint::Disk({-3, 0}, 1.0));  // Ties (3,0) at origin.
  pts.push_back(UncertainPoint::Disk({0, 3}, 1.0));
  pts.push_back(UncertainPoint::Disk({0, -3}, 1.0));
  pts.push_back(UncertainPoint::Discrete({{1.5, 1.5}}, {1.0}));
  pts.push_back(UncertainPoint::Discrete({{1.5, 1.5}}, {1.0}));
  pts.push_back(UncertainPoint::Disk({6, -2}, 0.5));
  pts.push_back(UncertainPoint::DiscreteUniform({{-5, 2}, {-4, 3}}));

  Engine::Config cfg;
  Engine whole(pts, cfg);
  std::vector<Vec2> qs = GridQueries(6);
  qs.push_back({0, 0});        // All ring disks tie at MaxDist 4.
  qs.push_back({1.5, 1.5});    // On the coincident certain points.
  qs.push_back({3, 0});        // Center of the duplicate disks.

  for (int k : kShardCounts) {
    for (auto part : kPartitioners) {
      serve::ShardedEngine sharded(pts, cfg, {k, part});
      for (Vec2 q : qs) {
        std::vector<core::DeltaEnvelope> local;
        std::vector<serve::ShardView> views;
        for (int s = 0; s < sharded.num_shards(); ++s) {
          local.push_back(sharded.shard(s).MaxDistEnvelope(q));
          views.push_back({&sharded.shard(s), &sharded.global_ids(s)});
        }
        core::DeltaEnvelope merged = serve::MergeEnvelopes(local, views);
        core::DeltaEnvelope scan = core::TwoSmallestMaxDist(pts, q);
        core::DeltaEnvelope index = whole.MaxDistEnvelope(q);
        EXPECT_EQ(merged.best, scan.best);
        EXPECT_EQ(merged.second, scan.second);
        EXPECT_EQ(merged.argbest, scan.argbest);
        EXPECT_EQ(index.best, scan.best);
        EXPECT_EQ(index.second, scan.second);
        EXPECT_EQ(index.argbest, scan.argbest);
        for (int id = 0; id < whole.size(); ++id) {
          EXPECT_EQ(merged.ThresholdFor(id), scan.ThresholdFor(id)) << id;
        }
        EXPECT_EQ(sharded.NonzeroNn(q), whole.NonzeroNn(q));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Sharded QueryServer
// ---------------------------------------------------------------------------

TEST(QueryServerSharded, BatchAndSubmitMatchOracle) {
  auto pts = workload::RandomDiscrete(20, 3, 316);
  Engine::Config cfg;
  cfg.backend = Backend::kBruteForce;
  Engine oracle(pts, cfg);
  serve::QueryServer server(
      pts, cfg,
      {.num_threads = 3,
       .warm = {Engine::QueryType::kMostProbableNn},
       .sharding = {4, serve::Partitioning::kRoundRobin}});
  EXPECT_EQ(server.snapshot(), nullptr);  // Partitioned: no single view.
  ASSERT_NE(server.sharded_snapshot(), nullptr);
  EXPECT_EQ(server.sharded_snapshot()->num_shards(), 4);

  auto qs = GridQueries(21);
  auto results = server.QueryBatch(qs, {Engine::QueryType::kMostProbableNn});
  ASSERT_EQ(results.size(), qs.size());
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(results[i].nn, oracle.MostProbableNn(qs[i]));
  }
  for (size_t i = 0; i < 5; ++i) {
    auto fut = server.Submit(qs[i], {Engine::QueryType::kNonzeroNn});
    EXPECT_EQ(fut.get().ids, oracle.NonzeroNn(qs[i]));
  }
}

TEST(QueryServerSharded, ReplaceDatasetCanChangeShardCount) {
  auto pts_a = workload::RandomDiscrete(12, 2, 317);
  auto pts_b = workload::RandomDiscrete(18, 2, 318);
  Engine::Config cfg;
  cfg.backend = Backend::kBruteForce;
  serve::QueryServer server(
      pts_a, cfg,
      {.num_threads = 2,
       .warm = {},
       .sharding = {2, serve::Partitioning::kRoundRobin}});
  EXPECT_EQ(server.sharded_snapshot()->num_shards(), 2);
  auto old_snapshot = server.sharded_snapshot();

  server.ReplaceDataset(pts_b, {5, serve::Partitioning::kSpatial});
  EXPECT_EQ(server.sharded_snapshot()->num_shards(), 5);
  EXPECT_EQ(server.sharded_snapshot()->size(), 18);
  EXPECT_EQ(server.stats().swaps, 1u);
  // The pinned old shard set still answers for the old dataset.
  EXPECT_EQ(old_snapshot->num_shards(), 2);
  EXPECT_EQ(old_snapshot->size(), 12);

  // A plain ReplaceDataset keeps the new sharding.
  server.ReplaceDataset(pts_a);
  EXPECT_EQ(server.sharded_snapshot()->num_shards(), 5);

  Engine oracle(pts_a, cfg);
  auto qs = GridQueries(9);
  auto results = server.QueryBatch(qs, {Engine::QueryType::kNonzeroNn});
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(results[i].ids, oracle.NonzeroNn(qs[i]));
  }
}

TEST(QueryServerSharded, UnshardedServerStillExposesSingleSnapshot) {
  auto pts = workload::RandomDiscrete(8, 2, 319);
  serve::QueryServer server(pts, {}, {.num_threads = 2, .warm = {}});
  ASSERT_NE(server.snapshot(), nullptr);
  EXPECT_EQ(server.snapshot()->size(), 8);
  EXPECT_EQ(server.sharded_snapshot()->num_shards(), 1);
}

TEST(QueryServerSharded, ReplaceDatasetKeepsCallerInstalledShardShape) {
  // A server seeded (or refreshed) with a caller-built shard set must not
  // silently rebuild monolithic on the next plain ReplaceDataset.
  auto pts = workload::RandomDiscrete(12, 2, 321);
  Engine::Config cfg;
  cfg.backend = Backend::kBruteForce;
  auto four_shards = std::make_shared<const serve::ShardedEngine>(
      pts, cfg, serve::ShardingOptions{4, serve::Partitioning::kRoundRobin});
  serve::QueryServer server(four_shards, {.num_threads = 2, .warm = {}});
  server.ReplaceDataset(pts);
  EXPECT_EQ(server.sharded_snapshot()->num_shards(), 4);

  // A caller-installed single engine switches replacements back to
  // unsharded builds.
  server.ReplaceEngine(std::make_shared<const Engine>(pts, cfg));
  server.ReplaceDataset(pts);
  EXPECT_EQ(server.sharded_snapshot()->num_shards(), 1);
}

TEST(ShardedEngine, AssembledShardSetReportsExternalPartitioning) {
  auto pts = workload::RandomDiscrete(6, 2, 320);
  auto parts = serve::PartitionPoints(pts, {2, serve::Partitioning::kSpatial});
  std::vector<std::shared_ptr<const Engine>> engines;
  for (const auto& ids : parts) {
    std::vector<UncertainPoint> subset;
    for (int gid : ids) subset.push_back(pts[gid]);
    engines.push_back(
        std::make_shared<const Engine>(std::move(subset), Engine::Config{}));
  }
  serve::ShardedEngine sharded(std::move(engines), std::move(parts));
  EXPECT_EQ(sharded.num_shards(), 2);
  EXPECT_EQ(sharded.options().partitioning, serve::Partitioning::kExternal);
  Engine single(pts, {});
  Vec2 q{0.5, -0.5};
  EXPECT_EQ(sharded.NonzeroNn(q), single.NonzeroNn(q));
}

}  // namespace
}  // namespace unn
