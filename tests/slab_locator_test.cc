#include "pointloc/slab_locator.h"

#include <random>

#include <gtest/gtest.h>

#include "arrangement/segment_arrangement.h"
#include "pointloc/ray_shooter.h"

namespace unn {
namespace pointloc {
namespace {

using geom::Box;
using geom::Vec2;

dcel::PlanarSubdivision RandomSegmentArrangement(int nsegs, uint64_t seed,
                                                 const Box& window) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(window.lo.x - 2, window.hi.x + 2);
  arrangement::SegmentArrangementBuilder builder(window);
  for (int i = 0; i < nsegs; ++i) {
    builder.AddSegment({u(rng), u(rng)}, {u(rng), u(rng)}, i);
  }
  return builder.Build();
}

TEST(SlabLocator, SingleSegment) {
  dcel::PlanarSubdivision sub;
  int a = sub.AddVertex({0, 0});
  int b = sub.AddVertex({4, 2});
  sub.AddEdge(a, b, dcel::EdgeShape::Segment({0, 0}, {4, 2}), 0);
  sub.Build();
  SlabLocator loc(sub);
  // Below the segment: the half-edge facing down.
  int h = loc.LocateHalfEdgeAbove({2, 0});
  ASSERT_GE(h, 0);
  EXPECT_EQ(sub.half_edge(h).edge, 0);
  // Above the segment, or outside the x-span: nothing.
  EXPECT_EQ(loc.LocateHalfEdgeAbove({2, 3}), -1);
  EXPECT_EQ(loc.LocateHalfEdgeAbove({-1, 0}), -1);
  EXPECT_EQ(loc.LocateHalfEdgeAbove({5, 0}), -1);
}

TEST(SlabLocator, MatchesRayShooterOnRandomArrangements) {
  Box window{{-10, -10}, {10, 10}};
  std::mt19937_64 rng(77);
  std::uniform_real_distribution<double> qu(-9.5, 9.5);
  for (int iter = 0; iter < 10; ++iter) {
    auto sub = RandomSegmentArrangement(12 + iter, 100 + iter, window);
    SlabLocator slab(sub);
    RayShooter shooter(sub);
    int checked = 0;
    for (int t = 0; t < 400; ++t) {
      Vec2 q{qu(rng), qu(rng)};
      int h1 = slab.LocateHalfEdgeAbove(q);
      int h2 = shooter.LocateHalfEdgeAbove(q);
      if (h1 < 0 || h2 < 0) {
        // Both must agree that nothing is above (the shooter may bail on
        // ambiguity; skip those).
        if (h1 < 0 && h2 < 0) ++checked;
        continue;
      }
      // Same first edge above, or at least the same face (loop).
      EXPECT_EQ(sub.half_edge(h1).loop, sub.half_edge(h2).loop)
          << "iter=" << iter << " q=(" << q.x << "," << q.y << ")";
      ++checked;
    }
    EXPECT_GT(checked, 350);
  }
}

TEST(SlabLocator, SharedEndpointsOrderedBySlope) {
  // Fan of three segments out of one vertex: queries between them must
  // find the correct one.
  dcel::PlanarSubdivision sub;
  int o = sub.AddVertex({0, 0});
  int a = sub.AddVertex({4, -2});
  int b = sub.AddVertex({4, 0.5});
  int c = sub.AddVertex({4, 3});
  sub.AddEdge(o, a, dcel::EdgeShape::Segment({0, 0}, {4, -2}), 0);
  sub.AddEdge(o, b, dcel::EdgeShape::Segment({0, 0}, {4, 0.5}), 1);
  sub.AddEdge(o, c, dcel::EdgeShape::Segment({0, 0}, {4, 3}), 2);
  sub.Build();
  SlabLocator loc(sub);
  int h = loc.LocateHalfEdgeAbove({2, -1.5});  // Below all: finds edge 0.
  ASSERT_GE(h, 0);
  EXPECT_EQ(sub.half_edge(h).edge, 0);
  h = loc.LocateHalfEdgeAbove({2, -0.5});  // Between 0 and 1: finds 1.
  ASSERT_GE(h, 0);
  EXPECT_EQ(sub.half_edge(h).edge, 1);
  h = loc.LocateHalfEdgeAbove({2, 1});  // Between 1 and 2: finds 2.
  ASSERT_GE(h, 0);
  EXPECT_EQ(sub.half_edge(h).edge, 2);
  EXPECT_EQ(loc.LocateHalfEdgeAbove({2, 4}), -1);  // Above the fan.
}

TEST(SlabLocator, SpacePerEdgeIsLogarithmic) {
  Box window{{-10, -10}, {10, 10}};
  auto sub = RandomSegmentArrangement(60, 9, window);
  SlabLocator loc(sub);
  // Path copying: O(log E) nodes per event, far below quadratic.
  EXPECT_LE(loc.NumNodes(),
            static_cast<size_t>(sub.NumEdges()) * 64u);
  EXPECT_GE(loc.NumSlabs(), 2);
}

TEST(SlabLocator, VerticalEdgesAreIgnoredGracefully) {
  dcel::PlanarSubdivision sub;
  int a = sub.AddVertex({0, 0});
  int b = sub.AddVertex({0, 5});
  int c = sub.AddVertex({-3, 2});
  int d = sub.AddVertex({3, 2});
  sub.AddEdge(a, b, dcel::EdgeShape::Segment({0, 0}, {0, 5}), 0);
  sub.AddEdge(c, d, dcel::EdgeShape::Segment({-3, 2}, {3, 2}), 1);
  sub.Build();
  SlabLocator loc(sub);
  int h = loc.LocateHalfEdgeAbove({1, 0});
  ASSERT_GE(h, 0);
  EXPECT_EQ(sub.half_edge(h).edge, 1);
}

}  // namespace
}  // namespace pointloc
}  // namespace unn
