// Oracle parity for the quantification index (core::QuantTree) against
// the linear scans it replaces: MaxDistEnvelope must reproduce
// core::TwoSmallestMaxDist bit-identically (values and argmin ties),
// LogSurvival must match a linear log-space scan up to floating-point
// associativity, and ArgminPointwise must match the definition-level
// argmin scan exactly — on randomized and adversarial (coincident
// duplicates, exact ties, certain points, mixed-model) inputs. Also the
// satellite regressions: sublinear search effort, and the n = 10^5
// survival product that underflows to zero unless accumulated in log
// space (the form sharded probability merges rely on).

#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/expected_nn.h"
#include "core/quant_tree.h"
#include "core/uncertain_point.h"
#include "engine/engine.h"
#include "prob/distance_cdf.h"
#include "serve/sharding.h"
#include "workload/generators.h"

namespace unn {
namespace core {
namespace {

using geom::Vec2;

constexpr double kInf = std::numeric_limits<double>::infinity();

/// The linear log-space survival oracle — the canonical definition lives
/// on the index itself.
double LogSurvivalScan(const std::vector<UncertainPoint>& pts, Vec2 q,
                       double r) {
  return QuantTree::LogSurvivalScan(pts, q, r);
}

/// The definition-level argmin scan (first strict minimum, i.e. smallest
/// id among minimizers) for any per-point value.
template <class Fn>
int ArgminScan(int n, const Fn& value) {
  int best = -1;
  double best_v = kInf;
  for (int i = 0; i < n; ++i) {
    double v = value(i);
    if (v < best_v) {
      best_v = v;
      best = i;
    }
  }
  return best;
}

std::vector<UncertainPoint> MixedPoints(int n, uint64_t seed) {
  auto disks = workload::RandomDisks((n + 1) / 2, seed);
  auto discrete = workload::RandomDiscrete(n / 2, 3, seed + 1);
  std::vector<UncertainPoint> pts;
  for (int i = 0; i < n; ++i) {
    if (i % 2 == 0) {
      pts.push_back(disks[i / 2]);
    } else {
      pts.push_back(discrete[i / 2]);
    }
  }
  return pts;
}

std::vector<Vec2> ParityQueries(const std::vector<UncertainPoint>& pts,
                                std::mt19937_64& rng) {
  std::uniform_real_distribution<double> pos(-12.0, 12.0);
  std::vector<Vec2> qs;
  for (int i = 0; i < 24; ++i) qs.push_back({pos(rng), pos(rng)});
  // Queries on top of supports hit the degenerate branches of the bounds.
  for (size_t i = 0; i < pts.size(); i += std::max<size_t>(pts.size() / 6, 1)) {
    qs.push_back(pts[i].Bounds().Center());
  }
  qs.push_back({0, 0});
  qs.push_back({250.0, -250.0});  // Far outside every support.
  return qs;
}

void ExpectEnvelopeParity(const std::vector<UncertainPoint>& pts,
                          const QuantTree& tree, Vec2 q) {
  DeltaEnvelope want = TwoSmallestMaxDist(pts, q);
  DeltaEnvelope got = tree.MaxDistEnvelope(q);
  EXPECT_EQ(got.best, want.best);
  EXPECT_EQ(got.second, want.second);
  EXPECT_EQ(got.argbest, want.argbest);
}

TEST(QuantTreeEnvelope, MatchesScanOnRandomizedModels) {
  std::mt19937_64 rng(71);
  for (int n : {1, 2, 7, 33, 257}) {
    for (int model = 0; model < 3; ++model) {
      std::vector<UncertainPoint> pts =
          model == 0   ? workload::RandomDiscrete(n, 3, 500 + n)
          : model == 1 ? workload::RandomDisks(n, 600 + n)
                       : MixedPoints(n, 700 + n);
      QuantTree tree(&pts);
      for (Vec2 q : ParityQueries(pts, rng)) ExpectEnvelopeParity(pts, tree, q);
    }
  }
}

TEST(QuantTreeEnvelope, TiesAndCoincidentDuplicates) {
  // Four coincident disks, a symmetric ring of equal-MaxDist disks, two
  // coincident certain points, and a lone spread point: the argmin must
  // be the smallest id among the minimizers and the duplicate of the
  // minimum must land in `second`, exactly as the linear scan reports.
  std::vector<UncertainPoint> pts;
  for (int i = 0; i < 4; ++i) pts.push_back(UncertainPoint::Disk({3, 0}, 1.0));
  pts.push_back(UncertainPoint::Disk({-3, 0}, 1.0));
  pts.push_back(UncertainPoint::Disk({0, 3}, 1.0));
  pts.push_back(UncertainPoint::Disk({0, -3}, 1.0));
  pts.push_back(UncertainPoint::Discrete({{1.5, 1.5}}, {1.0}));
  pts.push_back(UncertainPoint::Discrete({{1.5, 1.5}}, {1.0}));
  pts.push_back(UncertainPoint::Disk({6, -2}, 0.5));
  QuantTree tree(&pts);

  DeltaEnvelope at_origin = tree.MaxDistEnvelope({0, 0});
  EXPECT_EQ(at_origin.argbest, 7);  // First of the coincident certain points.
  EXPECT_EQ(at_origin.best, at_origin.second);  // Its duplicate ties.

  std::mt19937_64 rng(72);
  for (Vec2 q : ParityQueries(pts, rng)) ExpectEnvelopeParity(pts, tree, q);
  // On the duplicate support itself (delta = Delta = 0 for the certain
  // points) the envelope still matches.
  ExpectEnvelopeParity(pts, tree, {1.5, 1.5});
  ExpectEnvelopeParity(pts, tree, {3, 0});
}

TEST(QuantTreeEnvelope, SingleAndDegeneratePoints) {
  std::vector<UncertainPoint> one = {UncertainPoint::Disk({2, 1}, 0.5)};
  QuantTree tree(&one);
  DeltaEnvelope env = tree.MaxDistEnvelope({0, 0});
  EXPECT_EQ(env.argbest, 0);
  EXPECT_EQ(env.second, kInf);
  ExpectEnvelopeParity(one, tree, {2, 1});

  std::vector<UncertainPoint> none;
  QuantTree empty(&none);
  EXPECT_EQ(empty.MaxDistEnvelope({0, 0}).argbest, -1);
  EXPECT_EQ(empty.LogSurvival({0, 0}, 5.0), 0.0);
}

TEST(QuantTreeSurvival, MatchesLogScanOnRandomizedModels) {
  std::mt19937_64 rng(73);
  for (int n : {1, 6, 40, 150}) {
    for (int model = 0; model < 3; ++model) {
      std::vector<UncertainPoint> pts =
          model == 0   ? workload::RandomDiscrete(n, 2, 800 + n)
          : model == 1 ? workload::RandomDisks(n, 900 + n)
                       : MixedPoints(n, 1000 + n);
      QuantTree tree(&pts);
      for (Vec2 q : ParityQueries(pts, rng)) {
        for (double r : {0.1, 1.0, 4.0, 20.0}) {
          double want = LogSurvivalScan(pts, q, r);
          double got = tree.LogSurvival(q, r);
          if (std::isinf(want)) {
            EXPECT_EQ(got, want) << "q=(" << q.x << "," << q.y << ") r=" << r;
          } else {
            EXPECT_NEAR(got, want, 1e-12 * (1.0 + std::abs(want)))
                << "q=(" << q.x << "," << q.y << ") r=" << r;
          }
        }
      }
    }
  }
}

TEST(QuantTreeSurvival, VisitsOnlyIntersectingSupports) {
  // A tight far cluster and three near disks: a small ball around the
  // origin intersects only the near supports, so the cluster contributes
  // factor 1 without being evaluated.
  std::vector<UncertainPoint> pts;
  std::mt19937_64 rng(74);
  std::uniform_real_distribution<double> jit(-0.5, 0.5);
  for (int i = 0; i < 1000; ++i) {
    pts.push_back(UncertainPoint::Disk({100.0 + jit(rng), jit(rng)}, 0.3));
  }
  pts.push_back(UncertainPoint::Disk({1, 0}, 0.5));
  pts.push_back(UncertainPoint::Disk({0, 1}, 0.5));
  pts.push_back(UncertainPoint::Disk({-1, -1}, 0.5));
  QuantTree tree(&pts);

  // r = 1.2 cuts each near disk partially (cdf strictly inside (0, 1)).
  QuantTree::QueryStats stats;
  double got = tree.LogSurvival({0, 0}, 1.2, &stats);
  EXPECT_EQ(stats.points_evaluated, 3);
  EXPECT_NEAR(got, LogSurvivalScan(pts, {0, 0}, 1.2), 1e-12);
}

TEST(QuantTreeEnvelope, SublinearEffortWithDistantCluster) {
  // Same geometry for the envelope: once the near points pin best/second,
  // the cluster's lower bound (~99) prunes it wholesale.
  std::vector<UncertainPoint> pts;
  std::mt19937_64 rng(75);
  std::uniform_real_distribution<double> jit(-0.5, 0.5);
  for (int i = 0; i < 1000; ++i) {
    pts.push_back(UncertainPoint::Disk({100.0 + jit(rng), jit(rng)}, 0.3));
  }
  pts.push_back(UncertainPoint::Disk({1, 0}, 0.5));
  pts.push_back(UncertainPoint::Disk({0, 1}, 0.5));
  pts.push_back(UncertainPoint::Disk({-1, -1}, 0.5));
  QuantTree tree(&pts);

  QuantTree::QueryStats stats;
  ExpectEnvelopeParity(pts, tree, {0, 0});
  tree.MaxDistEnvelope({0, 0}, &stats);
  EXPECT_LT(stats.points_evaluated, 200);  // n = 1003.
}

TEST(QuantTreeEnvelope, NodesVisitedGrowsSublinearlyAtScale) {
  // The acceptance regression for the traversal counters: against the
  // linear oracle (which evaluates all n points per query), the indexed
  // envelope search at n = 10^5 must (a) touch a vanishing fraction of
  // the dataset and (b) grow per-query nodes-visited far slower than n —
  // a 10x larger input may cost at most ~2x more traversal.
  auto effort_per_query = [](int n) {
    auto pts = workload::RandomDisks(n, 4000 + n);
    QuantTree tree(&pts);
    const double spread = std::sqrt(static_cast<double>(n)) * 2.5;
    std::mt19937_64 rng(82);
    std::uniform_real_distribution<double> pos(-spread, spread);
    QuantTree::QueryStats total;
    constexpr int kQueries = 50;
    for (int i = 0; i < kQueries; ++i) {
      QuantTree::QueryStats stats;
      tree.MaxDistEnvelope({pos(rng), pos(rng)}, &stats);
      EXPECT_GT(stats.nodes_visited, 0);
      total.Add(stats);
    }
    return std::make_pair(total.nodes_visited / kQueries,
                          total.points_evaluated / kQueries);
  };

  auto [nodes_small, points_small] = effort_per_query(10000);
  auto [nodes_large, points_large] = effort_per_query(100000);
  // Far below the linear oracle's 1e5 evaluated points per query.
  EXPECT_LT(points_large, 100000 / 50);
  EXPECT_LT(nodes_large, 100000 / 50);
  // Sublinear growth: 10x the input, at most ~2x the traversal.
  EXPECT_LT(nodes_large, 2 * nodes_small + 16);
  EXPECT_LT(points_large, 2 * points_small + 16);
}

TEST(QuantTreeArgmin, MatchesDefinitionScan) {
  std::mt19937_64 rng(76);
  for (int n : {1, 5, 64, 300}) {
    auto pts = MixedPoints(n, 1100 + n);
    QuantTree tree(&pts);
    for (Vec2 q : ParityQueries(pts, rng)) {
      // MaxDist is a valid pointwise value (>= MinDist everywhere).
      auto value = [&](int i) { return pts[i].MaxDist(q); };
      EXPECT_EQ(tree.ArgminPointwise(q, value), ArgminScan(n, value));
    }
  }
}

TEST(QuantTreeArgmin, MatchesExpectedDistanceScan) {
  auto pts = MixedPoints(40, 77);
  ExpectedNn expected(pts);
  QuantTree tree(&pts);
  std::mt19937_64 rng(78);
  for (Vec2 q : ParityQueries(pts, rng)) {
    auto value = [&](int i) { return expected.ExpectedDistance(i, q, 1e-8); };
    EXPECT_EQ(tree.ArgminPointwise(q, value),
              ArgminScan(static_cast<int>(pts.size()), value));
  }
}

// ---------------------------------------------------------------------------
// Engine hooks: index-backed, StructuresBuilt-visible, log-space survival
// ---------------------------------------------------------------------------

TEST(EngineQuantHooks, MatchScansAndBuildOnce) {
  auto pts = MixedPoints(60, 79);
  Engine engine(pts, {});
  EXPECT_EQ(engine.StructuresBuilt(), 0);
  std::mt19937_64 rng(80);
  for (Vec2 q : ParityQueries(pts, rng)) {
    DeltaEnvelope want = TwoSmallestMaxDist(pts, q);
    DeltaEnvelope got = engine.MaxDistEnvelope(q);
    EXPECT_EQ(got.best, want.best);
    EXPECT_EQ(got.second, want.second);
    EXPECT_EQ(got.argbest, want.argbest);
    for (double r : {0.5, 3.0}) {
      double want_log = LogSurvivalScan(pts, q, r);
      double got_log = engine.LogSurvivalProbability(q, r);
      if (std::isinf(want_log)) {
        EXPECT_EQ(got_log, want_log);
      } else {
        EXPECT_NEAR(got_log, want_log, 1e-12 * (1.0 + std::abs(want_log)));
      }
      EXPECT_DOUBLE_EQ(engine.SurvivalProbability(q, r), std::exp(got_log));
    }
  }
  // All of the above is served by the one quantification index.
  EXPECT_EQ(engine.StructuresBuilt(), 1);
}

TEST(EngineQuantHooks, SurvivalUnderflowStaysExactInLogSpace) {
  // 10^5 points, each with a 0.024-weight site inside the ball: every
  // survival factor is 1 - 0.024, so the full product is
  // exp(1e5 * log1p(-0.024)) ~ exp(-2430) — far below the smallest
  // double. The naive factor-by-factor product (the old implementation)
  // underflows into denormal garbage, and the product of the four
  // per-shard survivals underflows to exactly 0.0 even though each
  // factor is representable; the log-space hook keeps the merge exact.
  const int n = 100000;
  const double w = 0.024;
  std::vector<UncertainPoint> pts;
  pts.reserve(n);
  for (int i = 0; i < n; ++i) {
    double ang = 6.283185307179586 * i / n;
    Vec2 near{5.0 * std::cos(ang), 5.0 * std::sin(ang)};
    Vec2 far{1000.0 * std::cos(ang), 1000.0 * std::sin(ang)};
    pts.push_back(UncertainPoint::Discrete({near, far}, {w, 1.0 - w}));
  }
  Vec2 q{0, 0};
  double r = 6.0;

  // The regression: the naive factor-by-factor product collapses into the
  // denormal range (near-1 factors pin it at a few ulps above zero), a
  // catastrophic ~10^700x error against the true exp(-2430).
  double naive = 1.0;
  for (const UncertainPoint& p : pts) {
    naive *= 1.0 - prob::DistanceCdf(p, q, r);
  }
  EXPECT_LT(naive, 1e-300);

  Engine whole(pts, {});
  double want_log = n * std::log1p(-w);
  double got_log = whole.LogSurvivalProbability(q, r);
  EXPECT_TRUE(std::isfinite(got_log));
  EXPECT_NEAR(got_log, want_log, 1e-9 * std::abs(want_log));
  EXPECT_EQ(whole.SurvivalProbability(q, r), 0.0);  // exp still underflows.

  // Per-shard factorization in log space: the shard sums reproduce the
  // whole-set log survival even though the shard survivals' product
  // underflows to zero.
  serve::ShardedEngine sharded(pts, {}, {4, serve::Partitioning::kRoundRobin});
  double log_sum = 0.0;
  double prod = 1.0;
  for (int s = 0; s < sharded.num_shards(); ++s) {
    double shard_log = sharded.shard(s).LogSurvivalProbability(q, r);
    EXPECT_TRUE(std::isfinite(shard_log));
    EXPECT_GT(sharded.shard(s).SurvivalProbability(q, r), 0.0);
    log_sum += shard_log;
    prod *= sharded.shard(s).SurvivalProbability(q, r);
  }
  EXPECT_EQ(prod, 0.0);
  EXPECT_NEAR(log_sum, got_log, 1e-9 * std::abs(got_log));
}

}  // namespace
}  // namespace core
}  // namespace unn
