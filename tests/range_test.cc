#include "range/disk_tree.h"
#include "range/kdtree.h"

#include <algorithm>
#include <random>

#include <gtest/gtest.h>

namespace unn {
namespace range {
namespace {

using geom::Vec2;

std::mt19937_64& Rng() {
  static std::mt19937_64 rng(1234);
  return rng;
}

std::vector<Vec2> RandomPoints(int n, double spread = 10) {
  std::uniform_real_distribution<double> u(-spread, spread);
  std::vector<Vec2> pts(n);
  for (auto& p : pts) p = {u(Rng()), u(Rng())};
  return pts;
}

TEST(KdTree, NearestMatchesBruteForce) {
  for (int n : {1, 2, 7, 50, 300}) {
    auto pts = RandomPoints(n);
    KdTree tree(pts);
    std::uniform_real_distribution<double> u(-12, 12);
    for (int t = 0; t < 100; ++t) {
      Vec2 q{u(Rng()), u(Rng())};
      double got_d;
      int got = tree.Nearest(q, &got_d);
      int want = 0;
      for (int i = 1; i < n; ++i) {
        if (DistSq(q, pts[i]) < DistSq(q, pts[want])) want = i;
      }
      ASSERT_EQ(Dist(q, pts[got]), Dist(q, pts[want]));
      EXPECT_DOUBLE_EQ(got_d, Dist(q, pts[got]));
    }
  }
}

TEST(KdTree, KNearestSortedAndComplete) {
  auto pts = RandomPoints(200);
  KdTree tree(pts);
  std::uniform_real_distribution<double> u(-12, 12);
  for (int t = 0; t < 50; ++t) {
    Vec2 q{u(Rng()), u(Rng())};
    int k = 1 + static_cast<int>(Rng()() % 30);
    auto got = tree.KNearest(q, k);
    ASSERT_EQ(static_cast<int>(got.size()), k);
    for (size_t i = 1; i < got.size(); ++i) {
      EXPECT_LE(Dist(q, pts[got[i - 1]]), Dist(q, pts[got[i]]) + 1e-12);
    }
    // Compare against a sorted brute-force prefix (by distance value).
    std::vector<double> dists;
    for (const auto& p : pts) dists.push_back(Dist(q, p));
    std::sort(dists.begin(), dists.end());
    EXPECT_NEAR(Dist(q, pts[got.back()]), dists[k - 1], 1e-12);
  }
}

TEST(KdTree, KNearestExhaustsAtN) {
  auto pts = RandomPoints(5);
  KdTree tree(pts);
  auto got = tree.KNearest({0, 0}, 50);
  EXPECT_EQ(got.size(), 5u);
}

TEST(KdTree, RangeCircleMatchesBruteForce) {
  auto pts = RandomPoints(300);
  KdTree tree(pts);
  std::uniform_real_distribution<double> u(-12, 12);
  std::uniform_real_distribution<double> ru(0.1, 8);
  for (int t = 0; t < 50; ++t) {
    Vec2 q{u(Rng()), u(Rng())};
    double r = ru(Rng());
    std::vector<int> got;
    tree.RangeCircle(q, r, &got);
    std::sort(got.begin(), got.end());
    std::vector<int> want;
    for (size_t i = 0; i < pts.size(); ++i) {
      if (Dist(q, pts[i]) <= r) want.push_back(static_cast<int>(i));
    }
    ASSERT_EQ(got, want);
  }
}

TEST(KdTree, EnumeratorYieldsNondecreasingDistances) {
  auto pts = RandomPoints(150);
  KdTree tree(pts);
  KdTree::Enumerator en(tree, {1, 2});
  double prev = -1;
  int count = 0;
  std::vector<bool> seen(pts.size(), false);
  double d;
  for (int id = en.Next(&d); id >= 0; id = en.Next(&d)) {
    EXPECT_GE(d, prev - 1e-12);
    EXPECT_FALSE(seen[id]);
    seen[id] = true;
    prev = d;
    ++count;
  }
  EXPECT_EQ(count, 150);
}

TEST(DiskTree, MinMaxDistMatchesBruteForce) {
  std::uniform_real_distribution<double> ru(0.05, 3);
  for (int n : {1, 3, 20, 200}) {
    auto centers = RandomPoints(n);
    std::vector<double> radii(n);
    for (auto& r : radii) r = ru(Rng());
    DiskTree tree(centers, radii);
    std::uniform_real_distribution<double> u(-15, 15);
    for (int t = 0; t < 100; ++t) {
      Vec2 q{u(Rng()), u(Rng())};
      int arg = -1;
      double got = tree.MinMaxDist(q, &arg);
      double want = 1e18;
      for (int i = 0; i < n; ++i) {
        want = std::min(want, Dist(q, centers[i]) + radii[i]);
      }
      ASSERT_NEAR(got, want, 1e-12);
      ASSERT_GE(arg, 0);
      EXPECT_NEAR(Dist(q, centers[arg]) + radii[arg], want, 1e-12);
    }
  }
}

TEST(DiskTree, ReportMinDistLessMatchesBruteForce) {
  std::uniform_real_distribution<double> ru(0.05, 3);
  auto centers = RandomPoints(250);
  std::vector<double> radii(250);
  for (auto& r : radii) r = ru(Rng());
  DiskTree tree(centers, radii);
  std::uniform_real_distribution<double> u(-15, 15);
  std::uniform_real_distribution<double> bu(0.1, 10);
  for (int t = 0; t < 100; ++t) {
    Vec2 q{u(Rng()), u(Rng())};
    double bound = bu(Rng());
    std::vector<int> got;
    tree.ReportMinDistLess(q, bound, &got);
    std::sort(got.begin(), got.end());
    std::vector<int> want;
    for (size_t i = 0; i < centers.size(); ++i) {
      if (std::max(Dist(q, centers[i]) - radii[i], 0.0) < bound) {
        want.push_back(static_cast<int>(i));
      }
    }
    ASSERT_EQ(got, want) << "t=" << t;
  }
}

}  // namespace
}  // namespace range
}  // namespace unn
