#include "geom/convex.h"

#include <random>

#include <gtest/gtest.h>

#include "geom/predicates.h"
#include "geom/seb.h"

namespace unn {
namespace geom {
namespace {

std::mt19937_64& Rng() {
  static std::mt19937_64 rng(99);
  return rng;
}

TEST(ConvexHull, SquareWithInteriorPoints) {
  std::vector<Vec2> pts = {{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}, {0.25, 0.75}};
  auto hull = ConvexHull(pts);
  ASSERT_EQ(hull.size(), 4u);
  EXPECT_GT(PolygonArea(hull), 0.0);  // CCW.
  EXPECT_NEAR(PolygonArea(hull), 1.0, 1e-12);
}

TEST(ConvexHull, CollinearInputs) {
  std::vector<Vec2> pts = {{0, 0}, {1, 1}, {2, 2}, {3, 3}};
  auto hull = ConvexHull(pts);
  EXPECT_EQ(hull.size(), 2u);
}

TEST(ConvexHull, RandomizedContainsAllPoints) {
  std::uniform_real_distribution<double> u(-10, 10);
  for (int iter = 0; iter < 100; ++iter) {
    std::vector<Vec2> pts;
    for (int i = 0; i < 60; ++i) pts.push_back({u(Rng()), u(Rng())});
    auto hull = ConvexHull(pts);
    ASSERT_GE(hull.size(), 3u);
    EXPECT_GT(PolygonArea(hull), 0.0);
    for (Vec2 p : pts) {
      EXPECT_TRUE(PointInConvex(hull, p, 1e-9));
    }
    // Strict convexity: no three consecutive hull vertices collinear.
    int n = static_cast<int>(hull.size());
    for (int i = 0; i < n; ++i) {
      EXPECT_GT(Orient2dSign(hull[i], hull[(i + 1) % n], hull[(i + 2) % n]), 0);
    }
  }
}

TEST(HalfplaneIntersection, UnitSquareFromFourHalfplanes) {
  std::vector<Halfplane> hps = {
      {{1, 0}, 1.0}, {{-1, 0}, 0.0}, {{0, 1}, 1.0}, {{0, -1}, 0.0}};
  auto poly = HalfplaneIntersection(hps, Box{{-10, -10}, {10, 10}});
  ASSERT_EQ(poly.size(), 4u);
  EXPECT_NEAR(std::abs(PolygonArea(poly)), 1.0, 1e-9);
}

TEST(HalfplaneIntersection, EmptyWhenInfeasible) {
  std::vector<Halfplane> hps = {{{1, 0}, -1.0}, {{-1, 0}, -1.0}};
  auto poly = HalfplaneIntersection(hps, Box{{-10, -10}, {10, 10}});
  EXPECT_TRUE(poly.empty());
}

TEST(HalfplaneIntersection, RandomizedMembershipOracle) {
  std::uniform_real_distribution<double> u(-1, 1);
  std::uniform_real_distribution<double> cu(-2, 2);
  for (int iter = 0; iter < 100; ++iter) {
    std::vector<Halfplane> hps;
    for (int i = 0; i < 8; ++i) {
      Vec2 n{u(Rng()), u(Rng())};
      if (Norm(n) < 0.1) continue;
      hps.push_back({n, cu(Rng())});
    }
    Box bound{{-50, -50}, {50, 50}};
    auto poly = HalfplaneIntersection(hps, bound);
    // Random membership tests.
    std::uniform_real_distribution<double> pu(-5, 5);
    for (int t = 0; t < 50; ++t) {
      Vec2 p{pu(Rng()), pu(Rng())};
      bool in_all = true;
      for (const auto& hp : hps) {
        if (hp.Violation(p) > 1e-9) in_all = false;
      }
      bool in_poly = !poly.empty() && PointInConvex(poly, p, 1e-7);
      // Boundary-fuzz guard: only check points decisively in/out.
      double min_abs = 1e9;
      for (const auto& hp : hps) {
        min_abs = std::min(min_abs, std::abs(hp.Violation(p)) / (Norm(hp.n) + 1e-12));
      }
      if (min_abs < 1e-6) continue;
      EXPECT_EQ(in_poly, in_all) << "iter=" << iter;
    }
  }
}

TEST(PolygonArea, SignConvention) {
  std::vector<Vec2> ccw = {{0, 0}, {2, 0}, {2, 2}, {0, 2}};
  std::vector<Vec2> cw = {{0, 0}, {0, 2}, {2, 2}, {2, 0}};
  EXPECT_NEAR(PolygonArea(ccw), 4.0, 1e-12);
  EXPECT_NEAR(PolygonArea(cw), -4.0, 1e-12);
}

TEST(SmallestEnclosingCircle, ContainsAllAndIsMinimal) {
  std::uniform_real_distribution<double> u(-10, 10);
  for (int iter = 0; iter < 60; ++iter) {
    std::vector<Vec2> pts;
    int n = 3 + static_cast<int>(Rng()() % 20);
    for (int i = 0; i < n; ++i) pts.push_back({u(Rng()), u(Rng())});
    Circle c = SmallestEnclosingCircle(pts, iter);
    for (Vec2 p : pts) {
      EXPECT_LE(Dist(c.center, p), c.radius + 1e-7);
    }
    // Minimality oracle: brute force over all pairs and triples.
    double best = 1e18;
    auto try_circle = [&](Circle cand) {
      for (Vec2 p : pts) {
        if (Dist(cand.center, p) > cand.radius + 1e-9) return;
      }
      best = std::min(best, cand.radius);
    };
    for (size_t i = 0; i < pts.size(); ++i) {
      for (size_t j = i + 1; j < pts.size(); ++j) {
        try_circle({(pts[i] + pts[j]) * 0.5, Dist(pts[i], pts[j]) * 0.5});
        for (size_t k = j + 1; k < pts.size(); ++k) {
          // Circumcircle.
          Vec2 a = pts[i], b = pts[j], cc = pts[k];
          double d = 2.0 * Cross(b - a, cc - a);
          if (std::abs(d) < 1e-12) continue;
          double b2 = NormSq(b - a), c2 = NormSq(cc - a);
          Vec2 rel{((cc.y - a.y) * b2 - (b.y - a.y) * c2) / d,
                   ((b.x - a.x) * c2 - (cc.x - a.x) * b2) / d};
          Vec2 center = a + rel;
          try_circle({center, Dist(center, a)});
        }
      }
    }
    EXPECT_NEAR(c.radius, best, 1e-6 * (1 + best));
  }
}

TEST(SmallestEnclosingCircle, DegenerateInputs) {
  EXPECT_EQ(SmallestEnclosingCircle({}).radius, 0.0);
  Circle one = SmallestEnclosingCircle({{3, 4}});
  EXPECT_EQ(one.radius, 0.0);
  EXPECT_EQ(one.center.x, 3.0);
  Circle two = SmallestEnclosingCircle({{0, 0}, {2, 0}});
  EXPECT_NEAR(two.radius, 1.0, 1e-12);
  EXPECT_NEAR(two.center.x, 1.0, 1e-12);
}

}  // namespace
}  // namespace geom
}  // namespace unn
