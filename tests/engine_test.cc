#include "engine/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/brute_force.h"
#include "core/exact_pnn.h"
#include "core/linf_nonzero_index.h"
#include "workload/generators.h"

namespace unn {
namespace {

using core::UncertainPoint;
using geom::Vec2;

std::vector<Vec2> TestQueries() {
  std::vector<Vec2> qs;
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> u(-12.0, 12.0);
  for (int i = 0; i < 24; ++i) qs.push_back({u(rng), u(rng)});
  // A few structured probes: origin, far away, on top of likely centers.
  qs.push_back({0, 0});
  qs.push_back({100, 100});
  qs.push_back({1, 1});
  return qs;
}

/// Exact quantification probabilities, dense, via the definition-level
/// baselines — the oracle every backend is compared against.
std::vector<double> OracleProbabilities(const std::vector<UncertainPoint>& pts,
                                        Vec2 q) {
  bool all_discrete = true;
  for (const auto& p : pts) all_discrete = all_discrete && !p.is_disk();
  if (all_discrete) return baselines::QuantificationProbabilities(pts, q);
  std::vector<double> pi(pts.size(), 0.0);
  for (auto [id, p] : core::IntegrateAllQuantifications(pts, q, 1e-9)) {
    pi[id] = p;
  }
  return pi;
}

/// L_inf NN!=0 oracle over squares: Lemma 2.1 with Chebyshev distances and
/// the exact j != i threshold semantics.
std::vector<int> OracleLinfNonzero(const std::vector<core::SquareRegion>& sq,
                                   Vec2 q) {
  double best = std::numeric_limits<double>::infinity();
  double second = std::numeric_limits<double>::infinity();
  int argbest = -1;
  for (size_t j = 0; j < sq.size(); ++j) {
    double up = core::ChebyshevDist(q, sq[j].center) + sq[j].half_side;
    if (up < best) {
      second = best;
      best = up;
      argbest = static_cast<int>(j);
    } else if (up < second) {
      second = up;
    }
  }
  std::vector<int> out;
  for (size_t i = 0; i < sq.size(); ++i) {
    double lo =
        std::max(core::ChebyshevDist(q, sq[i].center) - sq[i].half_side, 0.0);
    double threshold = static_cast<int>(i) == argbest ? second : best;
    if (lo < threshold) out.push_back(static_cast<int>(i));
  }
  return out;
}

/// Margin between the best and second-best oracle probability — estimator
/// backends are only required to agree on the argmax when it is separated
/// by more than twice their accuracy.
double ArgmaxMargin(const std::vector<double>& pi) {
  double best = -1, second = -1;
  for (double p : pi) {
    if (p > best) {
      second = best;
      best = p;
    } else if (p > second) {
      second = p;
    }
  }
  return best - second;
}

int OracleArgmax(const std::vector<double>& pi) {
  return static_cast<int>(
      std::max_element(pi.begin(), pi.end()) - pi.begin());
}

// ---------------------------------------------------------------------------
// NN!=0 agreement: every exact backend must match the definition oracle
// bit-for-bit on random and degenerate inputs.
// ---------------------------------------------------------------------------

class EngineNonzeroAgreement
    : public ::testing::TestWithParam<std::tuple<const char*, Backend>> {};

std::vector<std::vector<UncertainPoint>> NonzeroInputs(bool discrete) {
  std::vector<std::vector<UncertainPoint>> inputs;
  if (discrete) {
    inputs.push_back(workload::RandomDiscrete(24, 4, 11));
    inputs.push_back(workload::RandomDiscrete(16, 3, 12, 0, 1.0, false));
    // Degenerate: coincident sites shared between points.
    std::vector<UncertainPoint> coincident;
    for (int i = 0; i < 6; ++i) {
      coincident.push_back(UncertainPoint::DiscreteUniform(
          {{1.0, 2.0}, {double(i % 3), 0.0}}));
    }
    inputs.push_back(coincident);
    // Degenerate: k = 1 certain points, one duplicated.
    inputs.push_back({UncertainPoint::DiscreteUniform({{0, 0}}),
                      UncertainPoint::DiscreteUniform({{0, 0}}),
                      UncertainPoint::DiscreteUniform({{4, 1}}),
                      UncertainPoint::DiscreteUniform({{-3, 2}})});
  } else {
    inputs.push_back(workload::RandomDisks(24, 21));
    inputs.push_back(workload::DisjointDisks(16, 2.0, 22));
    // Degenerate: coincident centers, equal radii.
    inputs.push_back({UncertainPoint::Disk({0, 0}, 1.0),
                      UncertainPoint::Disk({0, 0}, 1.0),
                      UncertainPoint::Disk({5, 0}, 1.0),
                      UncertainPoint::Disk({0, 5}, 2.0)});
    // Degenerate: equal-radius grid (the Theorem 2.8 regime).
    std::vector<UncertainPoint> grid;
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        grid.push_back(UncertainPoint::Disk({i * 2.0, j * 2.0}, 1.0));
      }
    }
    inputs.push_back(grid);
  }
  return inputs;
}

TEST_P(EngineNonzeroAgreement, MatchesOracle) {
  auto [model, backend] = GetParam();
  bool discrete = std::string(model) == "discrete";
  for (const auto& pts : NonzeroInputs(discrete)) {
    Engine::Config cfg;
    cfg.backend = backend;
    Engine engine(pts, cfg);
    for (Vec2 q : TestQueries()) {
      // The V!=0 diagram is discontinuous across its edges; on exact-tie
      // boundaries (margin 0) the strict-inequality definition is not
      // achievable in floating point. Same idiom as stress_degenerate_test.
      if (backend == Backend::kNonzeroVoronoi &&
          core::NonzeroNnMargin(pts, q) < 1e-6) {
        continue;
      }
      EXPECT_EQ(engine.NonzeroNn(q), baselines::NonzeroNn(pts, q))
          << "model=" << model << " backend=" << static_cast<int>(backend)
          << " q=(" << q.x << "," << q.y << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllExactBackends, EngineNonzeroAgreement,
    ::testing::Values(
        std::make_tuple("disk", Backend::kAuto),
        std::make_tuple("disk", Backend::kBruteForce),
        std::make_tuple("disk", Backend::kNonzeroIndex),
        std::make_tuple("disk", Backend::kNonzeroVoronoi),
        std::make_tuple("disk", Backend::kMonteCarlo),  // falls back to oracle
        std::make_tuple("discrete", Backend::kAuto),
        std::make_tuple("discrete", Backend::kBruteForce),
        std::make_tuple("discrete", Backend::kNonzeroIndex),
        std::make_tuple("discrete", Backend::kNonzeroVoronoi)));

// ---------------------------------------------------------------------------
// L_inf backend agreement against the Chebyshev oracle over the same
// derived squares.
// ---------------------------------------------------------------------------

TEST(EngineLinfBackend, MatchesChebyshevOracle) {
  for (uint64_t seed : {31, 32}) {
    auto pts = workload::RandomDisks(20, seed);
    Engine::Config cfg;
    cfg.backend = Backend::kLinfIndex;
    Engine engine(pts, cfg);
    for (Vec2 q : TestQueries()) {
      EXPECT_EQ(engine.NonzeroNn(q),
                OracleLinfNonzero(engine.DerivedSquares(), q));
    }
  }
}

TEST(EngineLinfBackend, EqualHalfSideDegenerate) {
  std::vector<UncertainPoint> pts = {UncertainPoint::Disk({0, 0}, 1.0),
                                     UncertainPoint::Disk({0, 0}, 1.0),
                                     UncertainPoint::Disk({3, 3}, 1.0),
                                     UncertainPoint::Disk({-3, 3}, 1.0)};
  Engine::Config cfg;
  cfg.backend = Backend::kLinfIndex;
  Engine engine(pts, cfg);
  for (Vec2 q : TestQueries()) {
    EXPECT_EQ(engine.NonzeroNn(q),
              OracleLinfNonzero(engine.DerivedSquares(), q));
  }
}

// ---------------------------------------------------------------------------
// Probabilistic queries: estimator backends agree with the exact oracle up
// to their accuracy guarantee; the brute-force backend agrees exactly.
// ---------------------------------------------------------------------------

class EngineProbabilisticAgreement
    : public ::testing::TestWithParam<std::tuple<const char*, Backend>> {};

TEST_P(EngineProbabilisticAgreement, ArgmaxThresholdTopK) {
  auto [model, backend] = GetParam();
  bool discrete = std::string(model) == "discrete";
  std::vector<std::vector<UncertainPoint>> inputs;
  if (discrete) {
    inputs.push_back(workload::RandomDiscrete(12, 3, 41));
    // Degenerate: all sites coincident across points (uniform pi).
    std::vector<UncertainPoint> coincident;
    for (int i = 0; i < 4; ++i) {
      coincident.push_back(UncertainPoint::DiscreteUniform({{1.0, 1.0}}));
    }
    inputs.push_back(coincident);
  } else {
    inputs.push_back(workload::RandomDisks(10, 42, 0, 0.3, 1.0));
    // Degenerate: coincident equal-radius disks (uniform pi by symmetry).
    inputs.push_back({UncertainPoint::Disk({0, 0}, 1.0),
                      UncertainPoint::Disk({0, 0}, 1.0),
                      UncertainPoint::Disk({6, 0}, 1.0)});
  }

  const double eps = 0.02;
  for (const auto& pts : inputs) {
    Engine::Config cfg;
    cfg.backend = backend;
    cfg.eps = eps;
    cfg.seed = 99;
    Engine engine(pts, cfg);
    bool exact = backend == Backend::kBruteForce;
    for (Vec2 q : TestQueries()) {
      auto oracle = OracleProbabilities(pts, q);

      // MostProbableNn: must match whenever the margin is decisive.
      int got = engine.MostProbableNn(q);
      if (exact) {
        EXPECT_NEAR(oracle[got], oracle[OracleArgmax(oracle)], 1e-7);
      } else if (ArgmaxMargin(oracle) > 2 * eps) {
        EXPECT_EQ(got, OracleArgmax(oracle)) << "q=(" << q.x << "," << q.y
                                             << ") model=" << model;
      }

      // Probabilities: every estimate within eps of the truth.
      double tol = exact ? 1e-6 : eps + 1e-9;
      for (auto [id, est] : engine.Probabilities(q)) {
        EXPECT_NEAR(est, oracle[id], tol);
      }

      // Threshold: no false negatives at tau, nothing hopeless reported.
      const double tau = 0.25;
      auto reported = engine.Threshold(q, tau);
      for (size_t i = 0; i < oracle.size(); ++i) {
        if (oracle[i] >= tau + (exact ? 1e-6 : 1e-9)) {
          bool found = false;
          for (auto [id, est] : reported) found = found || id == (int)i;
          EXPECT_TRUE(found) << "missing id " << i << " with pi=" << oracle[i];
        }
      }
      for (auto [id, est] : reported) {
        EXPECT_GE(oracle[id], exact ? tau - 1e-6 : tau / 2 - eps - 1e-9);
      }

      // TopK: the reported set contains every id whose probability beats
      // the k-th largest by a decisive margin.
      const int k = 2;
      auto top = engine.TopK(q, k);
      EXPECT_LE(static_cast<int>(top.size()), k);
      std::vector<double> sorted = oracle;
      std::sort(sorted.begin(), sorted.end(), std::greater<>());
      double kth = sorted.size() >= size_t(k) ? sorted[k - 1] : 0.0;
      for (size_t i = 0; i < oracle.size(); ++i) {
        if (oracle[i] > kth + (exact ? 1e-6 : 2 * eps + 1e-9)) {
          bool found = false;
          for (auto [id, est] : top) found = found || id == (int)i;
          EXPECT_TRUE(found);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Backends, EngineProbabilisticAgreement,
    ::testing::Values(
        std::make_tuple("discrete", Backend::kBruteForce),
        std::make_tuple("discrete", Backend::kSpiralSearch),
        std::make_tuple("discrete", Backend::kMonteCarlo),
        std::make_tuple("discrete", Backend::kAuto),
        std::make_tuple("disk", Backend::kBruteForce),
        std::make_tuple("disk", Backend::kMonteCarlo)));

// ---------------------------------------------------------------------------
// Expected-distance NN: facade agrees with the definition-level scan.
// ---------------------------------------------------------------------------

TEST(EngineExpectedDistanceNn, IndexAgreesWithScan) {
  for (bool discrete : {false, true}) {
    auto pts = discrete ? workload::RandomDiscrete(20, 4, 51)
                        : workload::RandomDisks(20, 52);
    Engine indexed(pts, {});
    Engine::Config brute_cfg;
    brute_cfg.backend = Backend::kBruteForce;
    Engine brute(pts, brute_cfg);
    core::ExpectedNn reference(pts);
    for (Vec2 q : TestQueries()) {
      int a = indexed.ExpectedDistanceNn(q);
      int b = brute.ExpectedDistanceNn(q);
      // Both must achieve the minimum expected distance (ties allowed).
      double da = reference.ExpectedDistance(a, q);
      double db = reference.ExpectedDistance(b, q);
      EXPECT_NEAR(da, db, 1e-7);
    }
  }
}

TEST(EngineExpectedDistanceNn, CoincidentPointsDegenerate) {
  std::vector<UncertainPoint> pts = {UncertainPoint::Disk({0, 0}, 1.0),
                                     UncertainPoint::Disk({0, 0}, 1.0),
                                     UncertainPoint::Disk({0, 0}, 2.0),
                                     UncertainPoint::Disk({7, 0}, 1.0)};
  Engine engine(pts, {});
  // Near the coincident cluster the larger-radius disk has larger E[d];
  // one of the two unit disks must win.
  int nn = engine.ExpectedDistanceNn({0.1, 0.0});
  EXPECT_TRUE(nn == 0 || nn == 1);
  // Far to the right the isolated disk wins.
  EXPECT_EQ(engine.ExpectedDistanceNn({7, 0}), 3);
}

// ---------------------------------------------------------------------------
// QueryMany: batched answers identical to one-at-a-time answers.
// ---------------------------------------------------------------------------

TEST(EngineQueryMany, EmptySpanReturnsEmptyWithoutBuilding) {
  auto pts = workload::RandomDiscrete(8, 2, 62);
  Engine engine(pts, {});
  for (auto type :
       {Engine::QueryType::kMostProbableNn, Engine::QueryType::kNonzeroNn,
        Engine::QueryType::kExpectedDistanceNn}) {
    auto results =
        engine.QueryMany(std::span<const geom::Vec2>(), {type, 0.5, 1});
    EXPECT_TRUE(results.empty());
  }
  EXPECT_EQ(engine.StructuresBuilt(), 0);
}

TEST(EngineQueryMany, TopKWithNonpositiveKIsEmptyWithoutBuilding) {
  auto pts = workload::RandomDiscrete(8, 2, 63);
  Engine engine(pts, {});
  auto qs = TestQueries();
  for (int k : {0, -3}) {
    auto results = engine.QueryMany(qs, {Engine::QueryType::kTopK, 0.5, k});
    ASSERT_EQ(results.size(), qs.size());
    for (const auto& r : results) EXPECT_TRUE(r.ranked.empty());
  }
  EXPECT_EQ(engine.StructuresBuilt(), 0);
}

TEST(EngineQueryMany, ThresholdTauAboveOneOrNanIsEmptyWithoutBuilding) {
  auto pts = workload::RandomDiscrete(8, 2, 64);
  Engine engine(pts, {});
  auto qs = TestQueries();
  for (double tau : {1.5, std::numeric_limits<double>::quiet_NaN()}) {
    auto results =
        engine.QueryMany(qs, {Engine::QueryType::kThreshold, tau, 1});
    ASSERT_EQ(results.size(), qs.size());
    for (const auto& r : results) EXPECT_TRUE(r.ranked.empty());
  }
  EXPECT_EQ(engine.StructuresBuilt(), 0);
}

TEST(EngineQueryMany, ThresholdNonpositiveTauReportsEveryId) {
  auto pts = workload::RandomDiscrete(9, 2, 65);
  Engine engine(pts, {});
  auto qs = TestQueries();
  for (double tau : {0.0, -0.7}) {
    auto results =
        engine.QueryMany(qs, {Engine::QueryType::kThreshold, tau, 1});
    ASSERT_EQ(results.size(), qs.size());
    for (size_t i = 0; i < qs.size(); ++i) {
      const auto& ranked = results[i].ranked;
      // Every id reported exactly once, sorted by decreasing estimate.
      ASSERT_EQ(static_cast<int>(ranked.size()), engine.size());
      std::vector<bool> seen(pts.size(), false);
      for (size_t j = 0; j < ranked.size(); ++j) {
        seen[ranked[j].first] = true;
        if (j > 0) EXPECT_GE(ranked[j - 1].second, ranked[j].second);
      }
      for (bool s : seen) EXPECT_TRUE(s);
    }
  }
}

// ---------------------------------------------------------------------------
// Warmup: builds every structure the query type needs, exactly once; a
// warmed engine never builds under queries.
// ---------------------------------------------------------------------------

TEST(EngineWarmup, BuildsOnceAndServesWithoutBuilding) {
  for (bool discrete : {true, false}) {
    auto pts = discrete ? workload::RandomDiscrete(15, 3, 66)
                        : workload::RandomDisks(15, 67);
    Engine engine(pts, {});
    EXPECT_EQ(engine.StructuresBuilt(), 0);

    const Engine::QueryType kAllTypes[] = {
        Engine::QueryType::kMostProbableNn,
        Engine::QueryType::kExpectedDistanceNn,
        Engine::QueryType::kThreshold,
        Engine::QueryType::kTopK,
        Engine::QueryType::kNonzeroNn,
    };
    for (auto type : kAllTypes) engine.Warmup(type);
    int built = engine.StructuresBuilt();
    EXPECT_GE(built, 2);

    // Idempotent: warming again builds nothing (no structure twice).
    for (auto type : kAllTypes) engine.Warmup(type);
    EXPECT_EQ(engine.StructuresBuilt(), built);

    // Serving warmed traffic builds nothing either.
    for (Vec2 q : TestQueries()) {
      engine.MostProbableNn(q);
      engine.ExpectedDistanceNn(q);
      engine.Threshold(q, 0.5);
      engine.TopK(q, 2);
      engine.NonzeroNn(q);
    }
    EXPECT_EQ(engine.StructuresBuilt(), built);
  }
}

TEST(EngineWarmup, SpecOverloadWarmsTighterThresholdEstimator) {
  // tau < 2 * eps needs a tighter estimator than the plain-QueryType
  // default; the spec overload must pre-build it so the query does not.
  auto pts = workload::RandomDisks(10, 68);  // Continuous => Monte Carlo.
  Engine::Config cfg;
  cfg.eps = 0.1;
  cfg.mc_samples_override = 32;
  Engine engine(pts, cfg);
  Engine::QuerySpec spec{Engine::QueryType::kThreshold, 0.05, 1};
  engine.Warmup(spec);
  int built = engine.StructuresBuilt();
  engine.Threshold({0.5, 0.5}, spec.tau);
  EXPECT_EQ(engine.StructuresBuilt(), built);
}

TEST(EngineQueryMany, MatchesSingleQueries) {
  auto pts = workload::RandomDiscrete(15, 3, 61);
  Engine engine(pts, {});
  auto qs = TestQueries();

  auto nn = engine.QueryMany(qs, {Engine::QueryType::kMostProbableNn});
  auto ed = engine.QueryMany(qs, {Engine::QueryType::kExpectedDistanceNn});
  Engine::QuerySpec thr{Engine::QueryType::kThreshold, 0.3, 1};
  auto th = engine.QueryMany(qs, thr);
  Engine::QuerySpec topk{Engine::QueryType::kTopK, 0.5, 3};
  auto tk = engine.QueryMany(qs, topk);
  auto nz = engine.QueryMany(qs, {Engine::QueryType::kNonzeroNn});

  ASSERT_EQ(nn.size(), qs.size());
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(nn[i].nn, engine.MostProbableNn(qs[i]));
    EXPECT_EQ(ed[i].nn, engine.ExpectedDistanceNn(qs[i]));
    EXPECT_EQ(th[i].ranked, engine.Threshold(qs[i], 0.3));
    EXPECT_EQ(tk[i].ranked, engine.TopK(qs[i], 3));
    EXPECT_EQ(nz[i].ids, engine.NonzeroNn(qs[i]));
  }
}

}  // namespace
}  // namespace unn
