#include "envelope/polar_envelope.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "geom/trig.h"

namespace unn {
namespace envelope {
namespace {

using geom::FocalConic;
using geom::kTwoPi;
using geom::Vec2;

struct Disk {
  Vec2 c;
  double r;
};

std::vector<Disk> RandomDisks(int n, std::mt19937_64& rng, double spread = 10,
                              double rmax = 1.5) {
  std::uniform_real_distribution<double> pos(-spread, spread);
  std::uniform_real_distribution<double> rad(0.1, rmax);
  std::vector<Disk> d(n);
  for (auto& dk : d) dk = {{pos(rng), pos(rng)}, rad(rng)};
  return d;
}

/// Builds the gamma_ij curves of uncertain point i against all others:
/// gamma_ij = { x : d(x,c_i) - d(x,c_j) = r_i + r_j }, polar about c_i.
std::vector<std::optional<FocalConic>> GammaCurves(const std::vector<Disk>& d,
                                                   int i) {
  std::vector<std::optional<FocalConic>> curves(d.size());
  for (size_t j = 0; j < d.size(); ++j) {
    if (static_cast<int>(j) == i) continue;
    curves[j] = FocalConic::DistanceDifference(d[i].c, d[j].c, d[i].r + d[j].r);
  }
  return curves;
}

double BigDelta(const std::vector<Disk>& d, Vec2 x) {
  double m = std::numeric_limits<double>::infinity();
  for (const Disk& dk : d) m = std::min(m, Dist(x, dk.c) + dk.r);
  return m;
}

TEST(PolarEnvelope, EmptyInput) {
  PolarEnvelope env = PolarEnvelope::Compute({});
  ASSERT_EQ(env.arcs().size(), 1u);
  EXPECT_EQ(env.arcs()[0].curve, kNoCurve);
  EXPECT_FALSE(env.FullyCovered());
}

TEST(PolarEnvelope, SingleCurveMatchesItsDomain) {
  Vec2 o{0, 0}, b{5, 0};
  std::vector<std::optional<FocalConic>> curves = {
      FocalConic::DistanceDifference(o, b, 2.0)};
  PolarEnvelope env = PolarEnvelope::Compute(curves);
  for (int i = 0; i <= 100; ++i) {
    double t = kTwoPi * i / 100.0;
    auto [r, idx] = env.Eval(t);
    if (curves[0]->InDomain(t, 1e-9)) {
      EXPECT_EQ(idx, 0);
      EXPECT_NEAR(r, curves[0]->RadiusAt(t), 1e-9 * (1 + r));
    } else if (!curves[0]->InDomain(t, -1e-9)) {
      EXPECT_EQ(idx, kNoCurve);
      EXPECT_TRUE(std::isinf(r));
    }
  }
}

TEST(PolarEnvelope, ArcsPartitionTheCircle) {
  std::mt19937_64 rng(5);
  for (int iter = 0; iter < 50; ++iter) {
    auto disks = RandomDisks(12, rng);
    auto curves = GammaCurves(disks, 0);
    PolarEnvelope env = PolarEnvelope::Compute(curves);
    const auto& arcs = env.arcs();
    ASSERT_FALSE(arcs.empty());
    EXPECT_DOUBLE_EQ(arcs.front().lo, 0.0);
    EXPECT_DOUBLE_EQ(arcs.back().hi, kTwoPi);
    for (size_t i = 1; i < arcs.size(); ++i) {
      EXPECT_DOUBLE_EQ(arcs[i].lo, arcs[i - 1].hi);
      EXPECT_LT(arcs[i].lo, arcs[i].hi);
    }
  }
}

TEST(PolarEnvelope, MatchesBruteForceMinimum) {
  std::mt19937_64 rng(17);
  for (int iter = 0; iter < 30; ++iter) {
    auto disks = RandomDisks(15, rng);
    auto curves = GammaCurves(disks, 0);
    PolarEnvelope env = PolarEnvelope::Compute(curves);
    std::uniform_real_distribution<double> tu(0, kTwoPi);
    for (int t = 0; t < 400; ++t) {
      double theta = tu(rng);
      double brute = std::numeric_limits<double>::infinity();
      int brute_idx = kNoCurve;
      for (size_t j = 0; j < curves.size(); ++j) {
        if (!curves[j].has_value() || !curves[j]->InDomain(theta)) continue;
        double r = curves[j]->RadiusAt(theta);
        if (r < brute) {
          brute = r;
          brute_idx = static_cast<int>(j);
        }
      }
      auto [r, idx] = env.Eval(theta);
      if (std::isinf(brute)) {
        EXPECT_TRUE(std::isinf(r)) << "iter=" << iter << " theta=" << theta;
        continue;
      }
      EXPECT_NEAR(r, brute, 1e-7 * (1 + std::abs(brute)))
          << "iter=" << iter << " theta=" << theta;
      // The winning curve may differ only at (near-)ties.
      if (idx != brute_idx && idx != kNoCurve) {
        double r_idx = curves[idx]->RadiusAt(theta);
        EXPECT_NEAR(r_idx, brute, 1e-6 * (1 + std::abs(brute)));
      }
    }
  }
}

TEST(PolarEnvelope, GammaEnvelopeMatchesNonzeroNnDefinition) {
  // On the envelope curve gamma_0, delta_0(x) == Delta(x); inside it
  // delta_0 < Delta (P_0 is a possible NN), outside delta_0 > Delta.
  std::mt19937_64 rng(23);
  for (int iter = 0; iter < 20; ++iter) {
    auto disks = RandomDisks(10, rng);
    auto curves = GammaCurves(disks, 0);
    PolarEnvelope env = PolarEnvelope::Compute(curves);
    std::uniform_real_distribution<double> tu(0, kTwoPi);
    for (int t = 0; t < 200; ++t) {
      double theta = tu(rng);
      auto [rstar, idx] = env.Eval(theta);
      if (idx == kNoCurve) {
        // No boundary in this direction: delta_0 < Delta along the whole ray
        // (sample far out).
        Vec2 far = disks[0].c + geom::UnitVec(theta) * 1e4;
        double delta0 = Dist(far, disks[0].c) - disks[0].r;
        EXPECT_LT(delta0, BigDelta(disks, far) + 1e-6);
        continue;
      }
      Vec2 on = disks[0].c + geom::UnitVec(theta) * rstar;
      double delta0_on = Dist(on, disks[0].c) - disks[0].r;
      EXPECT_NEAR(delta0_on, BigDelta(disks, on), 1e-6 * (1 + rstar));
      Vec2 inside = disks[0].c + geom::UnitVec(theta) * (rstar * 0.95);
      double di = std::max(Dist(inside, disks[0].c) - disks[0].r, 0.0);
      EXPECT_LE(di, BigDelta(disks, inside) + 1e-7);
      Vec2 outside = disks[0].c + geom::UnitVec(theta) * (rstar * 1.05);
      double d_out = Dist(outside, disks[0].c) - disks[0].r;
      EXPECT_GE(d_out, BigDelta(disks, outside) - 1e-7 * (1 + rstar));
    }
  }
}

TEST(PolarEnvelope, BreakpointBoundLemma22) {
  // Lemma 2.2: gamma_i has at most 2n breakpoints. Sweep many random
  // configurations, including dense ones.
  std::mt19937_64 rng(31);
  for (int n : {4, 8, 16, 32, 64}) {
    for (int iter = 0; iter < 10; ++iter) {
      auto disks = RandomDisks(n, rng, /*spread=*/n / 2.0, /*rmax=*/2.0);
      auto curves = GammaCurves(disks, 0);
      PolarEnvelope env = PolarEnvelope::Compute(curves);
      EXPECT_LE(env.NumBreakpoints(), 2 * n) << "n=" << n << " iter=" << iter;
    }
  }
}

TEST(PolarEnvelope, DominatedCurveNeverAppears) {
  // A curve strictly above another everywhere must not appear.
  Vec2 o{0, 0};
  std::vector<std::optional<FocalConic>> curves;
  curves.push_back(FocalConic::DistanceDifference(o, Vec2{4, 0}, 1.0));
  // Same direction, same s, but much farther: strictly larger radius on the
  // shared (smaller) domain.
  curves.push_back(FocalConic::DistanceDifference(o, Vec2{40, 0}, 1.0));
  PolarEnvelope env = PolarEnvelope::Compute(curves);
  for (const auto& arc : env.arcs()) {
    if (arc.curve == kNoCurve) continue;
    double mid = 0.5 * (arc.lo + arc.hi);
    if (curves[0]->InDomain(mid)) {
      EXPECT_EQ(arc.curve, 0) << "dominated curve won at theta=" << mid;
    }
  }
}

}  // namespace
}  // namespace envelope
}  // namespace unn
