// The spatial core (src/spatial/): build determinism — the same input
// must produce the identical node layout and `order` permutation across
// rebuilds, for every split rule — plus oracle parity for every migrated
// structure on degenerate inputs (empty, singleton, all-coincident
// points, duplicate radii), so argmin tie semantics are pinned at the
// core layer rather than per consumer. Also the shared best-first
// enumerator's exhaustion contract: Next() keeps returning -1 after the
// tree is drained, including on an empty tree.

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/expected_nn.h"
#include "core/linf_nonzero_index.h"
#include "core/quant_tree.h"
#include "core/uncertain_point.h"
#include "geom/box_metrics.h"
#include "geom/lanes.h"
#include "range/disk_tree.h"
#include "range/kdtree.h"
#include "spatial/augment.h"
#include "spatial/batch.h"
#include "spatial/flat_tree.h"
#include "spatial/traverse.h"

namespace unn {
namespace spatial {
namespace {

using geom::Vec2;

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<Vec2> RandomPoints(int n, uint64_t seed, double spread = 10) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(-spread, spread);
  std::vector<Vec2> pts(n);
  for (auto& p : pts) p = {u(rng), u(rng)};
  return pts;
}

template <typename Augment>
void ExpectIdenticalLayout(const FlatKdTree<Augment>& a,
                           const FlatKdTree<Augment>& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.root(), b.root());
  EXPECT_EQ(a.order(), b.order());
  for (int n = 0; n < a.num_nodes(); ++n) {
    EXPECT_EQ(a.left(n), b.left(n));
    EXPECT_EQ(a.right(n), b.right(n));
    EXPECT_EQ(a.begin(n), b.begin(n));
    EXPECT_EQ(a.end(n), b.end(n));
    EXPECT_EQ(a.box(n).lo, b.box(n).lo);
    EXPECT_EQ(a.box(n).hi, b.box(n).hi);
  }
}

TEST(FlatKdTree, BuildIsDeterministicAcrossRebuilds) {
  for (SplitRule rule : {SplitRule::kAlternate, SplitRule::kAlternateWideGuard,
                         SplitRule::kWidest}) {
    for (int n : {0, 1, 8, 9, 100, 500}) {
      auto pts = RandomPoints(n, 42 + n);
      BuildOptions opts{8, rule};
      FlatKdTree<> a(pts, opts);
      FlatKdTree<> b(pts, opts);
      ExpectIdenticalLayout(a, b);
      EXPECT_EQ(a.size(), n);
    }
  }
}

TEST(FlatKdTree, BuildIsDeterministicOnCoincidentPoints) {
  // Duplicate anchors make every comparator key equal; the positional
  // median split must still produce an identical (and balanced) layout.
  std::vector<Vec2> pts(64, Vec2{1.5, -2.5});
  for (SplitRule rule : {SplitRule::kAlternate, SplitRule::kAlternateWideGuard,
                         SplitRule::kWidest}) {
    BuildOptions opts{8, rule};
    FlatKdTree<> a(pts, opts);
    FlatKdTree<> b(pts, opts);
    ExpectIdenticalLayout(a, b);
    // Leaves partition [0, n) into runs of at most leaf_size.
    int leaf_items = 0;
    for (int n = 0; n < a.num_nodes(); ++n) {
      if (a.is_leaf(n)) {
        EXPECT_LE(a.end(n) - a.begin(n), opts.leaf_size);
        leaf_items += a.end(n) - a.begin(n);
      }
    }
    EXPECT_EQ(leaf_items, 64);
  }
}

TEST(FlatKdTree, EmptyTree) {
  FlatKdTree<> tree;
  EXPECT_EQ(tree.root(), -1);
  EXPECT_EQ(tree.size(), 0);
  FlatKdTree<> built(std::vector<Vec2>{}, BuildOptions{});
  EXPECT_EQ(built.root(), -1);
  EXPECT_EQ(built.num_nodes(), 0);
}

TEST(FlatKdTree, AugmentStatsMatchBruteForce) {
  auto pts = RandomPoints(200, 7);
  std::vector<double> values(200);
  std::mt19937_64 rng(8);
  std::uniform_real_distribution<double> u(0.0, 3.0);
  for (auto& v : values) v = u(rng);
  FlatKdTree<MinMaxAugment> tree(pts, BuildOptions{8, SplitRule::kAlternate},
                                 MinMaxAugment(&values));
  for (int n = 0; n < tree.num_nodes(); ++n) {
    double want_min = kInf, want_max = 0.0;
    geom::Box want_box;
    for (int i = tree.begin(n); i < tree.end(n); ++i) {
      want_min = std::min(want_min, values[tree.item(i)]);
      want_max = std::max(want_max, values[tree.item(i)]);
      want_box.Expand(pts[tree.item(i)]);
    }
    EXPECT_EQ(tree.aug().min(n), want_min);
    EXPECT_EQ(tree.aug().max(n), want_max);
    EXPECT_EQ(tree.box(n).lo, want_box.lo);
    EXPECT_EQ(tree.box(n).hi, want_box.hi);
  }
}

TEST(Traverse, PrunedVisitCoversEveryLeafWithoutPruning) {
  auto pts = RandomPoints(300, 9);
  FlatKdTree<> tree(pts, BuildOptions{});
  std::vector<bool> seen(pts.size(), false);
  PrunedVisit(
      tree, [](int) { return false; },
      [&](int n) {
        for (int i = tree.begin(n); i < tree.end(n); ++i) {
          EXPECT_FALSE(seen[tree.item(i)]);
          seen[tree.item(i)] = true;
        }
        return true;
      });
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(Traverse, PrunedVisitLeafAbortStopsTheWalk) {
  auto pts = RandomPoints(100, 10);
  FlatKdTree<> tree(pts, BuildOptions{});
  int visited = 0;
  bool finished = PrunedVisit(
      tree, [](int) { return false; },
      [&](int) {
        ++visited;
        return visited < 3;
      });
  EXPECT_FALSE(finished);
  EXPECT_EQ(visited, 3);
}

TEST(Traverse, BestFirstScanFindsNearestLikeBruteForce) {
  auto pts = RandomPoints(250, 11);
  FlatKdTree<> tree(pts, BuildOptions{});
  std::mt19937_64 rng(12);
  std::uniform_real_distribution<double> u(-12, 12);
  for (int t = 0; t < 50; ++t) {
    Vec2 q{u(rng), u(rng)};
    double best = kInf;
    BestFirstScan(
        tree, [&](int n) { return tree.box(n).DistSqTo(q); },
        [&](double lb) { return lb >= best; },
        [&](int n) {
          if (tree.is_leaf(n)) {
            for (int i = tree.begin(n); i < tree.end(n); ++i) {
              best = std::min(best, DistSq(q, pts[tree.item(i)]));
            }
          }
          return true;
        });
    double want = kInf;
    for (Vec2 p : pts) want = std::min(want, DistSq(q, p));
    EXPECT_EQ(best, want);
  }
}

TEST(Traverse, PrunedVisitOrderedAlwaysPruneVisitsNothing) {
  auto pts = RandomPoints(120, 14);
  FlatKdTree<> tree(pts, BuildOptions{});
  TraversalStats stats;
  int leaves = 0;
  // An always-true prune must reject the root before any descent: no
  // node visited, no leaf scanned, exactly one prune recorded.
  PrunedVisitOrdered(
      tree, [](int) { return 0.0; }, [](int) { return true; },
      [&](int) { ++leaves; }, &stats);
  EXPECT_EQ(leaves, 0);
  EXPECT_EQ(stats.nodes_visited, 0);
  EXPECT_EQ(stats.leaves_scanned, 0);
  EXPECT_EQ(stats.prunes, 1);
}

TEST(Traverse, BestFirstEnumeratorReentryAfterPartialDrain) {
  auto pts = RandomPoints(60, 15);
  range::KdTree tree(pts);
  // A fresh enumerator drained end to end is the reference sequence.
  std::vector<int> want;
  {
    range::KdTree::Enumerator full(tree, {0.25, -0.75});
    for (int id = full.Next(); id >= 0; id = full.Next()) want.push_back(id);
  }
  ASSERT_EQ(want.size(), pts.size());
  // Partial drain, then re-entry: the same enumerator must continue the
  // exact sequence from where it stopped, at every stop point.
  for (size_t stop : {size_t{1}, size_t{7}, want.size() - 1}) {
    range::KdTree::Enumerator en(tree, {0.25, -0.75});
    for (size_t i = 0; i < stop; ++i) ASSERT_EQ(en.Next(), want[i]);
    for (size_t i = stop; i < want.size(); ++i) {
      EXPECT_EQ(en.Next(), want[i]) << "stop=" << stop << " i=" << i;
    }
    EXPECT_EQ(en.Next(), -1);
  }
}

// ---------------------------------------------------------------------------
// Batch engines, oracle style: per lane, the shared traversal must reach
// exactly the nodes the scalar engine reaches (BatchPrunedVisit) or
// accumulate the same exact minimum (BatchBestFirstScan).
// ---------------------------------------------------------------------------

TEST(BatchTraverse, BatchPrunedVisitMatchesScalarPerLane) {
  auto pts = RandomPoints(200, 16);
  FlatKdTree<> tree(pts, BuildOptions{});
  std::mt19937_64 rng(17);
  std::uniform_real_distribution<double> u(-12, 12);
  Vec2 q[geom::kLaneWidth];
  double radius[geom::kLaneWidth];
  for (int l = 0; l < geom::kLaneWidth; ++l) {
    q[l] = {u(rng), u(rng)};
    radius[l] = 1.0 + l;  // Lane-distinct prune radii.
  }
  // Scalar oracle: the per-lane sequence of scanned leaves.
  std::vector<int> want[geom::kLaneWidth];
  for (int l = 0; l < geom::kLaneWidth; ++l) {
    PrunedVisit(
        tree,
        [&](int n) {
          return tree.box(n).DistSqTo(q[l]) > radius[l] * radius[l];
        },
        [&](int n) {
          want[l].push_back(n);
          return true;
        });
  }
  std::vector<int> got[geom::kLaneWidth];
  double qx[geom::kLaneWidth], qy[geom::kLaneWidth];
  for (int l = 0; l < geom::kLaneWidth; ++l) {
    qx[l] = q[l].x;
    qy[l] = q[l].y;
  }
  BatchStats stats;
  BatchPrunedVisit(
      tree, FullMask(geom::kLaneWidth),
      [&](int n, LaneMask m) {
        double lb[geom::kLaneWidth];
        geom::BoxDistSqLanes(qx, qy, tree.box(n), lb);
        LaneMask keep = 0;
        for (int l = 0; l < geom::kLaneWidth; ++l) {
          if ((m >> l & 1u) != 0 && !(lb[l] > radius[l] * radius[l])) {
            keep |= static_cast<LaneMask>(1u << l);
          }
        }
        return keep;
      },
      [&](int n, LaneMask m) {
        for (int l = 0; l < geom::kLaneWidth; ++l) {
          if ((m >> l & 1u) != 0) got[l].push_back(n);
        }
      },
      &stats);
  for (int l = 0; l < geom::kLaneWidth; ++l) {
    EXPECT_EQ(got[l], want[l]) << "lane " << l;
  }
  EXPECT_GT(stats.nodes_visited, 0);
  EXPECT_GE(stats.lane_nodes_visited, stats.nodes_visited);
  EXPECT_LE(stats.LaneUtilization(), 1.0);
}

TEST(BatchTraverse, BatchBestFirstScanExactMinMatchesBruteForce) {
  auto pts = RandomPoints(150, 18);
  FlatKdTree<> tree(pts, BuildOptions{});
  std::mt19937_64 rng(19);
  std::uniform_real_distribution<double> u(-12, 12);
  double qx[geom::kLaneWidth], qy[geom::kLaneWidth];
  for (int l = 0; l < geom::kLaneWidth; ++l) {
    qx[l] = u(rng);
    qy[l] = u(rng);
  }
  double best[geom::kLaneWidth];
  for (double& b : best) b = kInf;
  BatchBestFirstScan(
      tree, FullMask(geom::kLaneWidth),
      [&](int l, int n) {
        double lb[geom::kLaneWidth];
        geom::BoxDistSqLanes(qx, qy, tree.box(n), lb);
        return lb[l];
      },
      [&](int l, double key) { return key >= best[l]; },
      [&](int n, LaneMask m) {
        if (!tree.is_leaf(n)) return;
        for (int i = tree.begin(n); i < tree.end(n); ++i) {
          Vec2 p = pts[tree.item(i)];
          for (int l = 0; l < geom::kLaneWidth; ++l) {
            if ((m >> l & 1u) == 0) continue;
            best[l] = std::min(best[l], DistSq(Vec2{qx[l], qy[l]}, p));
          }
        }
      });
  for (int l = 0; l < geom::kLaneWidth; ++l) {
    double want = kInf;
    for (Vec2 p : pts) want = std::min(want, DistSq(Vec2{qx[l], qy[l]}, p));
    EXPECT_EQ(best[l], want) << "lane " << l;
  }
}

TEST(BatchTraverse, RaggedMaskVisitsOnlyActiveLanes) {
  auto pts = RandomPoints(64, 20);
  FlatKdTree<> tree(pts, BuildOptions{});
  LaneMask seen = 0;
  BatchPrunedVisit(
      tree, FullMask(3), [&](int, LaneMask m) { return m; },
      [&](int, LaneMask m) { seen |= m; });
  EXPECT_EQ(seen, FullMask(3));
}

// ---------------------------------------------------------------------------
// Migrated structures on degenerate inputs
// ---------------------------------------------------------------------------

TEST(MigratedKdTree, EmptyAndExhaustion) {
  range::KdTree empty{std::vector<Vec2>{}};
  EXPECT_EQ(empty.Nearest({0, 0}), -1);
  EXPECT_TRUE(empty.KNearest({0, 0}, 5).empty());
  std::vector<int> out;
  empty.RangeCircle({0, 0}, 10, &out);
  EXPECT_TRUE(out.empty());
  // Exhaustion on an empty tree: -1 immediately and forever.
  range::KdTree::Enumerator en(empty, {0, 0});
  for (int i = 0; i < 3; ++i) EXPECT_EQ(en.Next(), -1);
}

TEST(MigratedKdTree, EnumeratorKeepsReturningMinusOneAfterDrain) {
  auto pts = RandomPoints(23, 13);
  range::KdTree tree(pts);
  range::KdTree::Enumerator en(tree, {0.5, -0.5});
  for (int i = 0; i < 23; ++i) ASSERT_GE(en.Next(), 0);
  double sentinel = -7.0;
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(en.Next(&sentinel), -1);
    EXPECT_EQ(sentinel, -7.0);  // dist out-param untouched on exhaustion.
  }
}

TEST(MigratedKdTree, AllCoincidentPoints) {
  std::vector<Vec2> pts(40, Vec2{2, 3});
  range::KdTree a(pts);
  range::KdTree b(pts);
  double d = 0;
  int got_a = a.Nearest({5, 7}, &d);
  EXPECT_EQ(d, 5.0);
  EXPECT_EQ(got_a, b.Nearest({5, 7}));  // Tie argmin is deterministic.
  EXPECT_EQ(a.KNearest({5, 7}, 40).size(), 40u);
  std::vector<int> all;
  a.RangeCircle({2, 3}, 0.0, &all);  // Inclusive boundary at r = 0.
  EXPECT_EQ(all.size(), 40u);
}

TEST(MigratedDiskTree, DuplicateRadiiAndCoincidentCenters) {
  std::vector<Vec2> centers(16, Vec2{1, 1});
  centers.push_back({4, 5});
  std::vector<double> radii(16, 2.0);
  radii.push_back(0.5);
  range::DiskTree a(centers, radii);
  range::DiskTree b(centers, radii);
  int arg_a = -1, arg_b = -1;
  double got = a.MinMaxDist({1, 1}, &arg_a);
  EXPECT_EQ(got, 2.0);  // min (d + r) over 16 coincident disks.
  b.MinMaxDist({1, 1}, &arg_b);
  EXPECT_EQ(arg_a, arg_b);  // Tie argmin deterministic across rebuilds.
  ASSERT_GE(arg_a, 0);
  EXPECT_EQ(Dist(Vec2{1, 1}, centers[arg_a]) + radii[arg_a], 2.0);

  std::vector<int> rep;
  a.ReportMinDistLess({1, 1}, 0.1, &rep);
  std::sort(rep.begin(), rep.end());
  std::vector<int> want;
  for (int i = 0; i < 16; ++i) want.push_back(i);  // delta = 0 < 0.1.
  EXPECT_EQ(rep, want);
}

TEST(MigratedDiskTree, EmptyTree) {
  range::DiskTree tree({}, {});
  int arg = -1;
  EXPECT_EQ(tree.MinMaxDist({0, 0}, &arg), kInf);
  EXPECT_EQ(arg, -1);
  std::vector<int> rep;
  tree.ReportMinDistLess({0, 0}, 100.0, &rep);
  EXPECT_TRUE(rep.empty());
}

TEST(MigratedExpectedNn, SingletonAndCoincidentMeans) {
  std::vector<core::UncertainPoint> one = {
      core::UncertainPoint::Disk({2, 1}, 0.5)};
  core::ExpectedNn nn_one(one);
  EXPECT_EQ(nn_one.QuerySquared({0, 0}), 0);

  // Coincident means with different variances: the smallest variance
  // wins everywhere; with equal variances the argmin is deterministic.
  std::vector<core::UncertainPoint> pts;
  for (int i = 0; i < 12; ++i) {
    pts.push_back(core::UncertainPoint::Disk({3, 3}, i == 7 ? 0.1 : 1.0));
  }
  core::ExpectedNn nn(pts);
  EXPECT_EQ(nn.QuerySquared({-2, 6}), 7);
  std::vector<core::UncertainPoint> ties(
      9, core::UncertainPoint::Disk({3, 3}, 1.0));
  core::ExpectedNn tie_a(ties);
  core::ExpectedNn tie_b(ties);
  int got = tie_a.QuerySquared({1, 1});
  EXPECT_EQ(got, tie_b.QuerySquared({1, 1}));
  EXPECT_EQ(tie_a.ExpectedSquaredDistance(got, {1, 1}),
            tie_a.ExpectedSquaredDistance(0, {1, 1}));
}

TEST(MigratedLinfIndex, CoincidentSquaresDuplicateHalfSides) {
  std::vector<core::SquareRegion> sq(5, core::SquareRegion{{0, 0}, 1.0});
  sq.push_back({{10, 10}, 0.5});
  core::LinfNonzeroIndex ix(sq);
  // All five coincident squares contain any q with cheb(q) < their
  // common Delta threshold; the far square does not qualify near origin.
  std::vector<int> got = ix.Query({0.2, -0.3});
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(ix.Delta({0, 0}), 1.0);

  // Brute-force oracle on a degenerate + random mix, exact semantics:
  // i qualifies iff delta_i < min_{j != i} Delta_j.
  std::mt19937_64 rng(14);
  std::uniform_real_distribution<double> u(-3, 3);
  std::uniform_real_distribution<double> h(0.0, 2.0);
  std::vector<core::SquareRegion> mix;
  for (int i = 0; i < 40; ++i) {
    double hs = i % 3 == 0 ? 1.0 : h(rng);  // Duplicate half-sides.
    mix.push_back({{u(rng), u(rng)}, hs});
  }
  for (int i = 0; i < 4; ++i) mix.push_back(mix[i]);  // Coincident copies.
  core::LinfNonzeroIndex index(mix);
  for (int t = 0; t < 60; ++t) {
    Vec2 q{u(rng), u(rng)};
    std::vector<int> want;
    for (size_t i = 0; i < mix.size(); ++i) {
      double threshold = kInf;
      for (size_t j = 0; j < mix.size(); ++j) {
        if (j == i) continue;
        threshold = std::min(
            threshold, ChebyshevDist(q, mix[j].center) + mix[j].half_side);
      }
      double delta = std::max(
          ChebyshevDist(q, mix[i].center) - mix[i].half_side, 0.0);
      if (delta < threshold) want.push_back(static_cast<int>(i));
    }
    EXPECT_EQ(index.Query(q), want) << "t=" << t;
  }
}

TEST(MigratedQuantTree, CoincidentSupportsDuplicateRadiiPinSmallestId) {
  // The envelope's argmin tie rule (smallest id among minimizers) is the
  // contract the sharded merge layer depends on; pin it on coincident
  // supports with duplicate radii.
  std::vector<core::UncertainPoint> pts(
      6, core::UncertainPoint::Disk({2, -1}, 1.5));
  pts.push_back(core::UncertainPoint::Disk({2, -1}, 1.5));
  core::QuantTree tree(&pts);
  for (Vec2 q : {Vec2{0, 0}, Vec2{2, -1}, Vec2{50, 50}}) {
    core::DeltaEnvelope want = core::TwoSmallestMaxDist(pts, q);
    core::DeltaEnvelope got = tree.MaxDistEnvelope(q);
    EXPECT_EQ(got.best, want.best);
    EXPECT_EQ(got.second, want.second);
    EXPECT_EQ(got.argbest, want.argbest);
    EXPECT_EQ(got.argbest, 0);
    auto value = [&](int i) { return pts[i].MaxDist(q); };
    EXPECT_EQ(tree.ArgminPointwise(q, value), 0);
  }
}

TEST(BoxMetrics, ChebyshevAndBoxHelpers) {
  geom::Box b{{0, 0}, {2, 1}};
  EXPECT_EQ(geom::ChebyshevDist({0, 0}, {3, -1}), 3.0);
  EXPECT_EQ(geom::ChebyshevDistToBox({1, 0.5}, b), 0.0);   // Inside.
  EXPECT_EQ(geom::ChebyshevDistToBox({5, 0.5}, b), 3.0);   // Right of box.
  EXPECT_EQ(geom::ChebyshevDistToBox({-1, -2}, b), 2.0);   // Corner.
  EXPECT_EQ(geom::MinDistToBox({5, 1}, b), 3.0);
  std::vector<Vec2> pts = {{1, 2}, {-1, 0}, {4, -3}};
  geom::Box bb = geom::BoxOf(pts);
  EXPECT_EQ(bb.lo, (Vec2{-1, -3}));
  EXPECT_EQ(bb.hi, (Vec2{4, 2}));
}

}  // namespace
}  // namespace spatial
}  // namespace unn
