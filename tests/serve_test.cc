#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "obs/profile.h"
#include "serve/parallel.h"
#include "serve/query_server.h"
#include "serve/thread_pool.h"
#include "workload/generators.h"

namespace unn {
namespace {

using core::UncertainPoint;
using geom::Vec2;

std::vector<Vec2> GridQueries(int count) {
  std::vector<Vec2> qs;
  for (int i = 0; i < count; ++i) {
    qs.push_back({-10.0 + 20.0 * i / count, 7.0 - 14.0 * i / count});
  }
  return qs;
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, PostRunsEveryTask) {
  serve::ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> ran{0};
  std::promise<void> all_done;
  const int kTasks = 100;
  for (int i = 0; i < kTasks; ++i) {
    pool.Post([&] {
      if (ran.fetch_add(1) + 1 == kTasks) all_done.set_value();
    });
  }
  all_done.get_future().wait();
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> ran{0};
  {
    serve::ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Post([&] { ran.fetch_add(1); });
    }
  }  // Join must run every queued task first.
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  for (int threads : {1, 3, 8}) {
    serve::ThreadPool pool(threads);
    for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{1000}}) {
      std::vector<std::atomic<int>> hits(n);
      pool.ParallelFor(n, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      });
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "i=" << i << " threads=" << threads;
      }
    }
  }
}

TEST(ThreadPool, ParallelForNestedInsideTaskCompletes) {
  serve::ThreadPool pool(2);
  std::atomic<int> sum{0};
  std::promise<void> done;
  pool.Post([&] {
    pool.ParallelFor(64, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) sum.fetch_add(static_cast<int>(i));
    });
    done.set_value();
  });
  done.get_future().wait();
  EXPECT_EQ(sum.load(), 64 * 63 / 2);
}

// ---------------------------------------------------------------------------
// serve::QueryMany — parallel answers identical to the serial seam, in
// order, for every query type.
// ---------------------------------------------------------------------------

TEST(ServeQueryMany, MatchesSerialForEveryTypeAndThreadCount) {
  auto pts = workload::RandomDiscrete(18, 3, 91);
  Engine engine(pts, {});
  auto qs = GridQueries(57);  // Not a multiple of any block count.

  const std::vector<Engine::QuerySpec> specs = {
      {Engine::QueryType::kMostProbableNn, 0.5, 1},
      {Engine::QueryType::kExpectedDistanceNn, 0.5, 1},
      {Engine::QueryType::kThreshold, 0.3, 1},
      {Engine::QueryType::kTopK, 0.5, 3},
      {Engine::QueryType::kNonzeroNn, 0.5, 1},
  };
  for (const auto& spec : specs) {
    auto serial = engine.QueryMany(qs, spec);
    for (int threads : {1, 2, 8}) {
      serve::ThreadPool pool(threads);
      auto parallel = serve::QueryMany(engine, qs, spec, &pool);
      ASSERT_EQ(parallel.size(), serial.size());
      for (size_t i = 0; i < qs.size(); ++i) {
        EXPECT_EQ(parallel[i].nn, serial[i].nn);
        EXPECT_EQ(parallel[i].ranked, serial[i].ranked);
        EXPECT_EQ(parallel[i].ids, serial[i].ids);
      }
    }
  }
}

TEST(ServeQueryMany, EmptyBatchAndDegenerateSpecs) {
  auto pts = workload::RandomDiscrete(10, 2, 92);
  Engine engine(pts, {});
  serve::ThreadPool pool(2);

  auto empty = serve::QueryMany(engine, {}, {}, &pool);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(engine.StructuresBuilt(), 0);

  auto qs = GridQueries(5);
  Engine::QuerySpec topk0{Engine::QueryType::kTopK, 0.5, 0};
  for (const auto& r : serve::QueryMany(engine, qs, topk0, &pool)) {
    EXPECT_TRUE(r.ranked.empty());
  }
  EXPECT_EQ(engine.StructuresBuilt(), 0);
}

// ---------------------------------------------------------------------------
// QueryServer
// ---------------------------------------------------------------------------

TEST(QueryServer, SubmitMatchesDirectQuery) {
  auto pts = workload::RandomDiscrete(15, 3, 93);
  Engine::Config cfg;
  serve::QueryServer server(pts, cfg, {.num_threads = 4, .warm = {}});
  Engine oracle(pts, cfg);

  auto qs = GridQueries(20);
  std::vector<std::future<Engine::QueryResult>> futures;
  for (Vec2 q : qs) {
    futures.push_back(server.Submit(q, {Engine::QueryType::kMostProbableNn}));
  }
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(futures[i].get().nn, oracle.MostProbableNn(qs[i]));
  }
  EXPECT_EQ(server.stats().queries, qs.size());
}

TEST(QueryServer, QueryBatchMatchesSerialEngine) {
  auto pts = workload::RandomDisks(12, 94);
  Engine::Config cfg;
  cfg.backend = Backend::kNonzeroIndex;
  serve::QueryServer server(pts, cfg, {.num_threads = 3, .warm = {}});
  Engine oracle(pts, cfg);

  auto qs = GridQueries(33);
  auto results = server.QueryBatch(qs, {Engine::QueryType::kNonzeroNn});
  ASSERT_EQ(results.size(), qs.size());
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(results[i].ids, oracle.NonzeroNn(qs[i]));
  }
  EXPECT_EQ(server.stats().batches, 1u);
}

TEST(QueryServer, WarmOptionPrebuildsSnapshot) {
  auto pts = workload::RandomDiscrete(12, 3, 95);
  serve::QueryServer server(
      pts, {},
      {.num_threads = 2,
       .warm = {Engine::QueryType::kMostProbableNn,
                Engine::QueryType::kNonzeroNn}});
  int built = server.snapshot()->StructuresBuilt();
  EXPECT_GE(built, 1);
  // Serving warmed types builds nothing further.
  auto qs = GridQueries(8);
  server.QueryBatch(qs, {Engine::QueryType::kMostProbableNn});
  server.QueryBatch(qs, {Engine::QueryType::kNonzeroNn});
  EXPECT_EQ(server.snapshot()->StructuresBuilt(), built);
}

TEST(QueryServer, ReplaceDatasetSwapsSnapshotAndKeepsOldAlive) {
  auto pts_a = workload::RandomDiscrete(10, 2, 96);
  auto pts_b = workload::RandomDiscrete(14, 3, 97);
  serve::QueryServer server(pts_a, {}, {.num_threads = 2, .warm = {}});

  std::shared_ptr<const Engine> old_snapshot = server.snapshot();
  EXPECT_EQ(old_snapshot->size(), 10);

  server.ReplaceDataset(pts_b);
  EXPECT_EQ(server.snapshot()->size(), 14);
  EXPECT_EQ(server.stats().swaps, 1u);

  // The pinned old snapshot still answers against the old dataset.
  EXPECT_EQ(old_snapshot->size(), 10);
  Engine oracle_a(pts_a, {});
  Vec2 q{1, 2};
  EXPECT_EQ(old_snapshot->MostProbableNn(q), oracle_a.MostProbableNn(q));

  // New queries see the new dataset.
  Engine oracle_b(pts_b, {});
  auto r = server.Submit(q, {Engine::QueryType::kMostProbableNn}).get();
  EXPECT_EQ(r.nn, oracle_b.MostProbableNn(q));
}

// ---------------------------------------------------------------------------
// QueryServer: Request/Response API, result cache, QoS
// ---------------------------------------------------------------------------

TEST(ThreadPool, StrictPriorityOrdersDispatch) {
  serve::ThreadPool pool(1);
  // Park the single worker so posted tasks queue up, then release and
  // watch the dispatch order: every high before every normal before
  // every low, FIFO within a class.
  std::atomic<bool> release{false};
  std::promise<void> parked;
  pool.Post([&] {
    parked.set_value();
    while (!release.load()) std::this_thread::yield();
  });
  parked.get_future().get();

  std::mutex mu;
  std::vector<int> order;
  std::promise<void> done;
  auto record = [&](int tag) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(tag);
    if (order.size() == 6) done.set_value();
  };
  pool.Post([&] { record(20); }, serve::TaskPriority::kLow);
  pool.Post([&] { record(10); }, serve::TaskPriority::kNormal);
  pool.Post([&] { record(0); }, serve::TaskPriority::kHigh);
  pool.Post([&] { record(21); }, serve::TaskPriority::kLow);
  pool.Post([&] { record(1); }, serve::TaskPriority::kHigh);
  pool.Post([&] { record(11); }, serve::TaskPriority::kNormal);
  release.store(true);
  done.get_future().get();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 10, 11, 20, 21}));
}

TEST(QueryServer, RequestSubmitReportsComputedSource) {
  auto pts = workload::RandomDiscrete(15, 3, 93);
  serve::QueryServer server(pts, {}, {.num_threads = 2, .warm = {}});
  Engine oracle(pts, {});

  serve::Request req;
  req.q = {1.0, -2.0};
  serve::Response resp = server.Submit(req).get();
  EXPECT_EQ(resp.source, serve::ResultSource::kComputed);
  EXPECT_TRUE(resp.ok());
  EXPECT_EQ(resp.result.nn, oracle.MostProbableNn(req.q));
  EXPECT_GE(resp.latency.count(), 0);
  EXPECT_EQ(server.stats().queries, 1u);
}

TEST(QueryServer, CacheHitIsBitIdenticalAndLabeled) {
  auto pts = workload::RandomDiscrete(15, 3, 93);
  serve::QueryServer::Options options;
  options.num_threads = 2;
  options.warm = {Engine::QueryType::kTopK};
  options.cache.max_bytes = 1u << 20;
  serve::QueryServer server(pts, {}, options);

  serve::Request req;
  req.q = {0.5, 0.5};
  req.spec = {Engine::QueryType::kTopK, 0.5, 3};
  serve::Response first = server.Submit(req).get();
  EXPECT_EQ(first.source, serve::ResultSource::kComputed);
  serve::Response second = server.Submit(req).get();
  EXPECT_EQ(second.source, serve::ResultSource::kCache);
  // Bit-identical: every field equal, not merely close.
  EXPECT_EQ(second.result.nn, first.result.nn);
  EXPECT_EQ(second.result.ranked, first.result.ranked);
  EXPECT_EQ(second.result.ids, first.result.ids);

  // A TopK spec that differs only in its (ignored) tau is the same key.
  serve::Request same_key = req;
  same_key.spec.tau = 0.123;
  EXPECT_EQ(server.Submit(same_key).get().source,
            serve::ResultSource::kCache);

  auto s = server.stats();
  EXPECT_EQ(s.cache.hits, 2u);
  EXPECT_EQ(s.cache.misses, 1u);
  EXPECT_EQ(s.cache.insertions, 1u);
}

TEST(QueryServer, ReplaceDatasetBumpsGenerationAndInvalidates) {
  auto pts_a = workload::RandomDiscrete(10, 2, 96);
  auto pts_b = workload::RandomDiscrete(14, 3, 97);
  serve::QueryServer::Options options;
  options.num_threads = 2;
  options.cache.max_bytes = 1u << 20;
  serve::QueryServer server(pts_a, {}, options);
  EXPECT_EQ(server.generation(), 1u);

  serve::Request req;
  req.q = {1.0, 2.0};
  EXPECT_EQ(server.Submit(req).get().source,
            serve::ResultSource::kComputed);
  EXPECT_EQ(server.Submit(req).get().source, serve::ResultSource::kCache);

  server.ReplaceDataset(pts_b);
  EXPECT_EQ(server.generation(), 2u);
  // The old entry is unreachable under the new generation: the same
  // request recomputes, against the new dataset.
  serve::Response after = server.Submit(req).get();
  EXPECT_EQ(after.source, serve::ResultSource::kComputed);
  Engine oracle_b(pts_b, {});
  EXPECT_EQ(after.result.nn, oracle_b.MostProbableNn(req.q));
}

TEST(QueryServer, ExpiredDeadlineIsRefusedWithoutComputing) {
  auto pts = workload::RandomDiscrete(12, 2, 95);
  serve::QueryServer server(pts, {}, {.num_threads = 2, .warm = {}});

  serve::Request dead;
  dead.q = {0.0, 0.0};
  dead.deadline = std::chrono::steady_clock::now() -
                  std::chrono::milliseconds(1);
  serve::Response resp = server.Submit(dead).get();
  EXPECT_EQ(resp.source, serve::ResultSource::kDeadlineExceeded);
  EXPECT_FALSE(resp.ok());
  EXPECT_EQ(resp.result.nn, -1);

  serve::Request alive = dead;
  alive.deadline = serve::DeadlineAfter(std::chrono::hours(1));
  EXPECT_EQ(server.Submit(alive).get().source,
            serve::ResultSource::kComputed);

  auto s = server.stats();
  EXPECT_EQ(s.deadline_exceeded, 1u);
  EXPECT_EQ(s.queries, 2u);
  // Refusals never enter the latency histograms.
  EXPECT_EQ(s.latency(Engine::QueryType::kMostProbableNn).count, 1u);
}

/// Parks every pool worker behind a gate so the admission-control tests
/// can hold the server at a known in-flight level deterministically.
class PoolGate {
 public:
  PoolGate(serve::ThreadPool& pool, int workers) {
    for (int i = 0; i < workers; ++i) {
      pool.Post([this] {
        gated_.fetch_add(1);
        while (!release_.load()) std::this_thread::yield();
      });
    }
    while (gated_.load() < workers) std::this_thread::yield();
  }
  void Release() { release_.store(true); }

 private:
  std::atomic<int> gated_{0};
  std::atomic<bool> release_{false};
};

TEST(QueryServer, AdmissionControlShedsPastInflightLimit) {
  auto pts = workload::RandomDiscrete(12, 2, 95);
  serve::QueryServer::Options options;
  options.num_threads = 1;
  options.warm = {Engine::QueryType::kMostProbableNn};
  options.max_inflight = 1;
  serve::QueryServer server(pts, {}, options);

  PoolGate gate(server.pool(), 1);
  serve::Request req;
  req.q = {0.5, -0.5};
  // Occupies the one in-flight slot (queued behind the gate).
  std::future<serve::Response> admitted = server.Submit(req);
  // At the limit: these are refused on the submitting thread.
  for (int i = 0; i < 3; ++i) {
    serve::Response shed = server.Submit(req).get();
    EXPECT_EQ(shed.source, serve::ResultSource::kShed);
    EXPECT_FALSE(shed.ok());
  }
  gate.Release();
  EXPECT_EQ(admitted.get().source, serve::ResultSource::kComputed);
  auto s = server.stats();
  EXPECT_EQ(s.shed, 3u);
  EXPECT_EQ(s.queries, 4u);
}

TEST(QueryServer, AdmissionControlDegradesToCheapBackend) {
  auto pts = workload::RandomDiscrete(20, 3, 98);
  serve::QueryServer::Options options;
  options.num_threads = 1;
  options.warm = {Engine::QueryType::kMostProbableNn};
  options.max_inflight = 1;
  options.overload = serve::OverloadPolicy::kDegrade;
  serve::QueryServer server(pts, {}, options);

  PoolGate gate(server.pool(), 1);
  serve::Request req;
  req.q = {0.25, 0.25};
  std::future<serve::Response> admitted = server.Submit(req);
  // Past the limit: answered inline by the degraded Monte-Carlo engine —
  // a labeled estimate, available while the full backend is wedged.
  serve::Response degraded = server.Submit(req).get();
  EXPECT_EQ(degraded.source, serve::ResultSource::kDegraded);
  EXPECT_TRUE(degraded.ok());
  EXPECT_GE(degraded.result.nn, 0);
  EXPECT_LT(degraded.result.nn, static_cast<int>(pts.size()));
  gate.Release();
  EXPECT_EQ(admitted.get().source, serve::ResultSource::kComputed);
  EXPECT_EQ(server.stats().degraded, 1u);
}

TEST(QueryServer, DegenerateSpecsBypassCacheAndAdmission) {
  auto pts = workload::RandomDiscrete(12, 2, 95);
  serve::QueryServer::Options options;
  options.num_threads = 1;
  options.max_inflight = 1;
  options.cache.max_bytes = 1u << 20;
  serve::QueryServer server(pts, {}, options);

  PoolGate gate(server.pool(), 1);
  serve::Request req;
  req.q = {0.0, 0.0};
  std::future<serve::Response> admitted = server.Submit(req);

  // tau > 1 is definition-level empty: it must be answered (never shed)
  // even at the in-flight limit, and never cached.
  serve::Request degenerate;
  degenerate.q = {0.0, 0.0};
  degenerate.spec = {Engine::QueryType::kThreshold, 1.5, 1};
  std::future<serve::Response> trivial = server.Submit(degenerate);
  gate.Release();
  serve::Response resp = trivial.get();
  EXPECT_EQ(resp.source, serve::ResultSource::kComputed);
  EXPECT_TRUE(resp.result.ranked.empty());
  admitted.get();

  auto s = server.stats();
  EXPECT_EQ(s.shed, 0u);
  EXPECT_EQ(s.cache.insertions, 1u);  // The regular request; not tau=1.5.
}

// Pack-grouping property: a batched server (default) and a scalar server
// (Config::batch_traversal = false) over the same points must produce
// the same Responses for the same request stream — order, values,
// ResultSource labels, and stats counters — on mixed-SpecClass batches
// with degenerate specs, duplicate requests, and cache-hit
// interleavings on the second pass.
TEST(QueryServer, PackGroupingMatchesScalarServerOnMixedBatches) {
  auto pts = workload::RandomDiscrete(20, 3, 101);
  serve::QueryServer::Options options;
  options.num_threads = 3;
  options.cache.max_bytes = 1u << 20;
  Engine::Config scalar_cfg;
  scalar_cfg.batch_traversal = false;
  serve::QueryServer batched(pts, {}, options);
  serve::QueryServer scalar(pts, scalar_cfg, options);

  auto qs = GridQueries(9);
  std::vector<serve::Request> reqs;
  for (size_t i = 0; i < qs.size(); ++i) {
    Vec2 q = qs[i];
    reqs.push_back({q, {Engine::QueryType::kExpectedDistanceNn, 0.5, 1}});
    if (i % 2 == 0) {
      reqs.push_back({q, {Engine::QueryType::kMostProbableNn, 0.5, 1}});
    }
    if (i % 3 == 0) {
      // Degenerate spec interleaved mid-batch: answered definition-level,
      // never grouped into a backend pack, never cached.
      reqs.push_back({q, {Engine::QueryType::kThreshold, 1.5, 1}});
    }
    if (i % 4 == 1) {
      // Duplicate of an earlier request in the same batch.
      reqs.push_back(
          {qs[0], {Engine::QueryType::kExpectedDistanceNn, 0.5, 1}});
    }
  }
  // Pass 0 computes everything; pass 1 interleaves cache hits with the
  // degenerate computes.
  for (int pass = 0; pass < 2; ++pass) {
    auto got = batched.QueryBatch(reqs);
    auto want = scalar.QueryBatch(reqs);
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].source, want[i].source)
          << "pass=" << pass << " i=" << i;
      EXPECT_EQ(got[i].result.nn, want[i].result.nn);
      EXPECT_EQ(got[i].result.ranked, want[i].result.ranked);
      EXPECT_EQ(got[i].result.ids, want[i].result.ids);
    }
  }
  auto bs = batched.stats();
  auto ss = scalar.stats();
  EXPECT_EQ(bs.batches, ss.batches);
  EXPECT_EQ(bs.queries, ss.queries);
  EXPECT_EQ(bs.shed, ss.shed);
  EXPECT_EQ(bs.cache.hits, ss.cache.hits);
  EXPECT_EQ(bs.cache.insertions, ss.cache.insertions);
  for (int t = 0; t < serve::kNumQueryTypes; ++t) {
    EXPECT_EQ(bs.queries_by_type[t], ss.queries_by_type[t]) << "type " << t;
  }
}

TEST(QueryServer, RequestBatchMixedSpecsMatchOracle) {
  auto pts = workload::RandomDiscrete(18, 3, 99);
  serve::QueryServer server(pts, {}, {.num_threads = 3, .warm = {}});
  Engine oracle(pts, {});

  auto qs = GridQueries(5);
  std::vector<serve::Request> reqs;
  for (Vec2 q : qs) {
    reqs.push_back({q, {Engine::QueryType::kMostProbableNn, 0.5, 1}});
    reqs.push_back({q, {Engine::QueryType::kTopK, 0.5, 2}});
    reqs.push_back({q, {Engine::QueryType::kNonzeroNn, 0.5, 1}});
    reqs.push_back({q, {Engine::QueryType::kTopK, 0.5, 0}});  // Degenerate.
  }
  auto responses = server.QueryBatch(reqs);
  ASSERT_EQ(responses.size(), reqs.size());
  for (size_t i = 0; i < qs.size(); ++i) {
    const Vec2 q = qs[i];
    EXPECT_EQ(responses[4 * i].result.nn, oracle.MostProbableNn(q));
    EXPECT_EQ(responses[4 * i + 1].result.ranked, oracle.TopK(q, 2));
    EXPECT_EQ(responses[4 * i + 2].result.ids, oracle.NonzeroNn(q));
    EXPECT_TRUE(responses[4 * i + 3].result.ranked.empty());
    for (int j = 0; j < 4; ++j) {
      EXPECT_EQ(responses[4 * i + j].source,
                serve::ResultSource::kComputed);
    }
  }
  auto s = server.stats();
  EXPECT_EQ(s.batches, 1u);
  EXPECT_EQ(s.queries, reqs.size());
  EXPECT_EQ(s.queries_by_type[static_cast<int>(Engine::QueryType::kTopK)],
            2 * qs.size());
}

TEST(QueryServer, RequestBatchServesRepeatsFromCache) {
  auto pts = workload::RandomDiscrete(15, 3, 93);
  serve::QueryServer::Options options;
  options.num_threads = 2;
  options.warm = {Engine::QueryType::kMostProbableNn};
  options.cache.max_bytes = 1u << 20;
  serve::QueryServer server(pts, {}, options);

  auto qs = GridQueries(12);
  std::vector<serve::Request> reqs;
  for (Vec2 q : qs) reqs.push_back({q, {}});
  auto first = server.QueryBatch(reqs);
  auto second = server.QueryBatch(reqs);
  ASSERT_EQ(second.size(), first.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].source, serve::ResultSource::kComputed);
    EXPECT_EQ(second[i].source, serve::ResultSource::kCache);
    EXPECT_EQ(second[i].result.nn, first[i].result.nn);
  }
  EXPECT_EQ(server.stats().cache.hits, qs.size());
}

// ---------------------------------------------------------------------------
// QueryServer: observability (DumpMetrics, tracing, slow-query log)
// ---------------------------------------------------------------------------

TEST(QueryServer, DumpMetricsEmitsPrometheusCatalog) {
  auto pts = workload::RandomDiscrete(15, 3, 93);
  serve::QueryServer::Options options;
  options.num_threads = 2;
  options.warm = {Engine::QueryType::kMostProbableNn};
  options.cache.max_bytes = 1u << 20;
  serve::QueryServer server(pts, {}, options);

  auto qs = GridQueries(6);
  std::vector<serve::Request> reqs;
  for (Vec2 q : qs) reqs.push_back({q, {}});
  server.QueryBatch(reqs);
  server.QueryBatch(reqs);  // All repeats: cache hits.
  server.Submit(qs[0], {Engine::QueryType::kNonzeroNn}).get();

  // Traversal counters are process-global and appended at dump time.
  obs::ResetTraversalProfile();
  spatial::TraversalStats st;
  st.nodes_visited = 12;
  obs::RecordTraversal(obs::TraversalOp::kQuantEnvelope, st);

  std::string text = server.DumpMetrics();
  // Counters: totals, per-type splits, cache and QoS counts.
  EXPECT_NE(text.find("# TYPE unn_server_queries_total counter"),
            std::string::npos);
  EXPECT_NE(
      text.find("unn_server_queries_by_type_total{type=\"most_probable_nn\"}"),
      std::string::npos);
  EXPECT_NE(text.find("unn_server_queries_by_type_total{type=\"nonzero_nn\"}"),
            std::string::npos);
  EXPECT_NE(text.find("unn_cache_hits_total"), std::string::npos);
  EXPECT_NE(text.find("unn_cache_misses_total"), std::string::npos);
  EXPECT_NE(text.find("unn_server_shed_total"), std::string::npos);
  EXPECT_NE(text.find("unn_server_degraded_total"), std::string::npos);
  EXPECT_NE(text.find("unn_server_deadline_exceeded_total"),
            std::string::npos);
  // Latency histograms with cumulative buckets, plus percentile gauges.
  EXPECT_NE(text.find("# TYPE unn_server_latency_us histogram"),
            std::string::npos);
  EXPECT_NE(text.find("unn_server_latency_us_bucket{type=\"most_probable_nn\""),
            std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(text.find("unn_server_latency_p50_us"), std::string::npos);
  EXPECT_NE(text.find("unn_server_latency_p99_us"), std::string::npos);
  // Point-in-time gauges resolved at dump time.
  EXPECT_NE(text.find("unn_pool_queue_depth"), std::string::npos);
  EXPECT_NE(text.find("unn_pool_threads 2"), std::string::npos);
  EXPECT_NE(text.find("unn_server_inflight"), std::string::npos);
  EXPECT_NE(text.find("unn_server_generation"), std::string::npos);
  EXPECT_NE(text.find("unn_cache_hit_ratio"), std::string::npos);
  // The appended traversal sink.
  EXPECT_NE(text.find("unn_traversal_nodes_visited_total{structure="
                      "\"quant_tree\",op=\"quant_envelope\"} 12"),
            std::string::npos);
  obs::ResetTraversalProfile();

  // Values agree with the legacy stats() view.
  serve::ServerStats s = server.stats();
  EXPECT_NE(text.find("unn_server_queries_total " +
                      std::to_string(s.queries)),
            std::string::npos);
  EXPECT_NE(text.find("unn_cache_hits_total " + std::to_string(s.cache.hits)),
            std::string::npos);

  // The JSON exporter serves the same snapshot.
  std::string json = server.DumpMetrics(obs::MetricsFormat::kJson);
  EXPECT_NE(json.find("\"name\": \"unn_server_queries_total\""),
            std::string::npos);
}

TEST(QueryServer, ExternalTraceContextRecordsSpanTree) {
  auto pts = workload::RandomDiscrete(20, 3, 98);
  serve::QueryServer::Options options;
  options.num_threads = 2;
  options.cache.max_bytes = 1u << 20;  // cache_lookup spans need a cache.
  serve::QueryServer server(pts, {}, options);

  obs::TraceContext ctx;
  serve::Request req;
  req.q = {0.5, -1.5};
  req.trace = &ctx;
  serve::Response resp = server.Submit(req).get();
  EXPECT_TRUE(resp.ok());

  std::vector<obs::Span> spans = ctx.spans();
  ASSERT_FALSE(spans.empty());
  auto has = [&spans](const char* name) {
    for (const obs::Span& s : spans) {
      if (std::string(s.name) == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("request"));
  EXPECT_TRUE(has("admission"));
  EXPECT_TRUE(has("cache_lookup"));
  EXPECT_TRUE(has("engine_query"));
  // The root span is closed once the response is delivered.
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_GE(spans[0].end_ns, 0);
}

TEST(QueryServer, SlowQueryLogIsBoundedAndCarriesSpans) {
  auto pts = workload::RandomDiscrete(200, 3, 99);
  serve::QueryServer::Options options;
  options.num_threads = 2;
  options.warm = {Engine::QueryType::kMostProbableNn};
  options.slow_query_threshold = std::chrono::microseconds(1);
  options.slow_query_log_size = 4;
  serve::QueryServer server(pts, {}, options);

  EXPECT_TRUE(server.SlowQueries().empty());
  auto qs = GridQueries(12);
  for (Vec2 q : qs) {
    server.Submit(q, {Engine::QueryType::kMostProbableNn}).get();
  }

  std::vector<serve::QueryServer::SlowQuery> slow = server.SlowQueries();
  ASSERT_FALSE(slow.empty());
  EXPECT_LE(slow.size(), 4u);  // Ring keeps only the most recent entries.
  for (const auto& sq : slow) {
    EXPECT_GE(sq.latency, options.slow_query_threshold);
    ASSERT_FALSE(sq.spans.empty());
    EXPECT_EQ(std::string(sq.spans[0].name), "request");
    // The captured tree renders (slow-query dump format).
    std::string rendered = obs::RenderSpanTree(sq.spans);
    EXPECT_NE(rendered.find("request"), std::string::npos);
  }
}

}  // namespace
}  // namespace unn
