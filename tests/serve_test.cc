#include <atomic>
#include <future>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "serve/parallel.h"
#include "serve/query_server.h"
#include "serve/thread_pool.h"
#include "workload/generators.h"

namespace unn {
namespace {

using core::UncertainPoint;
using geom::Vec2;

std::vector<Vec2> GridQueries(int count) {
  std::vector<Vec2> qs;
  for (int i = 0; i < count; ++i) {
    qs.push_back({-10.0 + 20.0 * i / count, 7.0 - 14.0 * i / count});
  }
  return qs;
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, PostRunsEveryTask) {
  serve::ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> ran{0};
  std::promise<void> all_done;
  const int kTasks = 100;
  for (int i = 0; i < kTasks; ++i) {
    pool.Post([&] {
      if (ran.fetch_add(1) + 1 == kTasks) all_done.set_value();
    });
  }
  all_done.get_future().wait();
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> ran{0};
  {
    serve::ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Post([&] { ran.fetch_add(1); });
    }
  }  // Join must run every queued task first.
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  for (int threads : {1, 3, 8}) {
    serve::ThreadPool pool(threads);
    for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{1000}}) {
      std::vector<std::atomic<int>> hits(n);
      pool.ParallelFor(n, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      });
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "i=" << i << " threads=" << threads;
      }
    }
  }
}

TEST(ThreadPool, ParallelForNestedInsideTaskCompletes) {
  serve::ThreadPool pool(2);
  std::atomic<int> sum{0};
  std::promise<void> done;
  pool.Post([&] {
    pool.ParallelFor(64, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) sum.fetch_add(static_cast<int>(i));
    });
    done.set_value();
  });
  done.get_future().wait();
  EXPECT_EQ(sum.load(), 64 * 63 / 2);
}

// ---------------------------------------------------------------------------
// serve::QueryMany — parallel answers identical to the serial seam, in
// order, for every query type.
// ---------------------------------------------------------------------------

TEST(ServeQueryMany, MatchesSerialForEveryTypeAndThreadCount) {
  auto pts = workload::RandomDiscrete(18, 3, 91);
  Engine engine(pts, {});
  auto qs = GridQueries(57);  // Not a multiple of any block count.

  const std::vector<Engine::QuerySpec> specs = {
      {Engine::QueryType::kMostProbableNn, 0.5, 1},
      {Engine::QueryType::kExpectedDistanceNn, 0.5, 1},
      {Engine::QueryType::kThreshold, 0.3, 1},
      {Engine::QueryType::kTopK, 0.5, 3},
      {Engine::QueryType::kNonzeroNn, 0.5, 1},
  };
  for (const auto& spec : specs) {
    auto serial = engine.QueryMany(qs, spec);
    for (int threads : {1, 2, 8}) {
      serve::ThreadPool pool(threads);
      auto parallel = serve::QueryMany(engine, qs, spec, &pool);
      ASSERT_EQ(parallel.size(), serial.size());
      for (size_t i = 0; i < qs.size(); ++i) {
        EXPECT_EQ(parallel[i].nn, serial[i].nn);
        EXPECT_EQ(parallel[i].ranked, serial[i].ranked);
        EXPECT_EQ(parallel[i].ids, serial[i].ids);
      }
    }
  }
}

TEST(ServeQueryMany, EmptyBatchAndDegenerateSpecs) {
  auto pts = workload::RandomDiscrete(10, 2, 92);
  Engine engine(pts, {});
  serve::ThreadPool pool(2);

  auto empty = serve::QueryMany(engine, {}, {}, &pool);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(engine.StructuresBuilt(), 0);

  auto qs = GridQueries(5);
  Engine::QuerySpec topk0{Engine::QueryType::kTopK, 0.5, 0};
  for (const auto& r : serve::QueryMany(engine, qs, topk0, &pool)) {
    EXPECT_TRUE(r.ranked.empty());
  }
  EXPECT_EQ(engine.StructuresBuilt(), 0);
}

// ---------------------------------------------------------------------------
// QueryServer
// ---------------------------------------------------------------------------

TEST(QueryServer, SubmitMatchesDirectQuery) {
  auto pts = workload::RandomDiscrete(15, 3, 93);
  Engine::Config cfg;
  serve::QueryServer server(pts, cfg, {.num_threads = 4, .warm = {}});
  Engine oracle(pts, cfg);

  auto qs = GridQueries(20);
  std::vector<std::future<Engine::QueryResult>> futures;
  for (Vec2 q : qs) {
    futures.push_back(server.Submit(q, {Engine::QueryType::kMostProbableNn}));
  }
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(futures[i].get().nn, oracle.MostProbableNn(qs[i]));
  }
  EXPECT_EQ(server.stats().queries, qs.size());
}

TEST(QueryServer, QueryBatchMatchesSerialEngine) {
  auto pts = workload::RandomDisks(12, 94);
  Engine::Config cfg;
  cfg.backend = Backend::kNonzeroIndex;
  serve::QueryServer server(pts, cfg, {.num_threads = 3, .warm = {}});
  Engine oracle(pts, cfg);

  auto qs = GridQueries(33);
  auto results = server.QueryBatch(qs, {Engine::QueryType::kNonzeroNn});
  ASSERT_EQ(results.size(), qs.size());
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(results[i].ids, oracle.NonzeroNn(qs[i]));
  }
  EXPECT_EQ(server.stats().batches, 1u);
}

TEST(QueryServer, WarmOptionPrebuildsSnapshot) {
  auto pts = workload::RandomDiscrete(12, 3, 95);
  serve::QueryServer server(
      pts, {},
      {.num_threads = 2,
       .warm = {Engine::QueryType::kMostProbableNn,
                Engine::QueryType::kNonzeroNn}});
  int built = server.snapshot()->StructuresBuilt();
  EXPECT_GE(built, 1);
  // Serving warmed types builds nothing further.
  auto qs = GridQueries(8);
  server.QueryBatch(qs, {Engine::QueryType::kMostProbableNn});
  server.QueryBatch(qs, {Engine::QueryType::kNonzeroNn});
  EXPECT_EQ(server.snapshot()->StructuresBuilt(), built);
}

TEST(QueryServer, ReplaceDatasetSwapsSnapshotAndKeepsOldAlive) {
  auto pts_a = workload::RandomDiscrete(10, 2, 96);
  auto pts_b = workload::RandomDiscrete(14, 3, 97);
  serve::QueryServer server(pts_a, {}, {.num_threads = 2, .warm = {}});

  std::shared_ptr<const Engine> old_snapshot = server.snapshot();
  EXPECT_EQ(old_snapshot->size(), 10);

  server.ReplaceDataset(pts_b);
  EXPECT_EQ(server.snapshot()->size(), 14);
  EXPECT_EQ(server.stats().swaps, 1u);

  // The pinned old snapshot still answers against the old dataset.
  EXPECT_EQ(old_snapshot->size(), 10);
  Engine oracle_a(pts_a, {});
  Vec2 q{1, 2};
  EXPECT_EQ(old_snapshot->MostProbableNn(q), oracle_a.MostProbableNn(q));

  // New queries see the new dataset.
  Engine oracle_b(pts_b, {});
  auto r = server.Submit(q, {Engine::QueryType::kMostProbableNn}).get();
  EXPECT_EQ(r.nn, oracle_b.MostProbableNn(q));
}

}  // namespace
}  // namespace unn
