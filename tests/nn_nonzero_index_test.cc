#include "core/nn_nonzero_index.h"

#include <random>

#include <gtest/gtest.h>

#include "baselines/brute_force.h"
#include "core/nonzero_voronoi.h"

namespace unn {
namespace core {
namespace {

using geom::Vec2;

std::vector<UncertainPoint> RandomDisks(int n, std::mt19937_64& rng,
                                        double spread = 10.0,
                                        double rmax = 1.5) {
  std::uniform_real_distribution<double> pos(-spread, spread);
  std::uniform_real_distribution<double> rad(0.1, rmax);
  std::vector<UncertainPoint> pts;
  for (int i = 0; i < n; ++i) {
    double x = pos(rng), y = pos(rng), r = rad(rng);
    pts.push_back(UncertainPoint::Disk({x, y}, r));
  }
  return pts;
}

class NnNonzeroIndexModes
    : public ::testing::TestWithParam<NnNonzeroIndex::Stage1> {};

TEST_P(NnNonzeroIndexModes, MatchesBruteForceRandom) {
  std::mt19937_64 rng(404);
  for (int n : {1, 2, 5, 17, 60, 150}) {
    auto pts = RandomDisks(n, rng);
    NnNonzeroIndex ix(pts, GetParam());
    std::uniform_real_distribution<double> qu(-20, 20);
    for (int t = 0; t < 150; ++t) {
      Vec2 q{qu(rng), qu(rng)};
      auto got = ix.Query(q);
      auto want = baselines::NonzeroNn(pts, q);
      ASSERT_EQ(got, want) << "n=" << n << " q=(" << q.x << "," << q.y << ")";
    }
  }
}

TEST_P(NnNonzeroIndexModes, DeltaMatchesDefinition) {
  std::mt19937_64 rng(405);
  auto pts = RandomDisks(80, rng);
  NnNonzeroIndex ix(pts, GetParam());
  std::uniform_real_distribution<double> qu(-25, 25);
  for (int t = 0; t < 200; ++t) {
    Vec2 q{qu(rng), qu(rng)};
    EXPECT_NEAR(ix.Delta(q), GlobalMaxDistLowerEnvelope(pts, q), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(BothStages, NnNonzeroIndexModes,
                         ::testing::Values(NnNonzeroIndex::Stage1::kDiskTree,
                                           NnNonzeroIndex::Stage1::kVoronoi),
                         [](const auto& info) {
                           return info.param == NnNonzeroIndex::Stage1::kDiskTree
                                      ? "DiskTree"
                                      : "Voronoi";
                         });

TEST(NnNonzeroIndex, AgreesWithNonzeroVoronoiDiagram) {
  // Theorem 2.11 structure and Theorem 3.1 structure must agree everywhere
  // away from diagram boundaries.
  std::mt19937_64 rng(406);
  auto pts = RandomDisks(15, rng);
  NnNonzeroIndex ix(pts);
  NonzeroVoronoi vd(pts);
  double tol = 1e-7 * vd.window().Diagonal();
  std::uniform_real_distribution<double> qu(-14, 14);
  int checked = 0;
  for (int t = 0; t < 300; ++t) {
    Vec2 q{qu(rng), qu(rng)};
    double delta = GlobalMaxDistLowerEnvelope(pts, q);
    bool near_boundary = false;
    for (const auto& p : pts) {
      if (std::abs(p.MinDist(q) - delta) < tol) near_boundary = true;
    }
    if (near_boundary) continue;
    ASSERT_EQ(ix.Query(q), vd.Query(q)) << "t=" << t;
    ++checked;
  }
  EXPECT_GT(checked, 250);
}

}  // namespace
}  // namespace core
}  // namespace unn
