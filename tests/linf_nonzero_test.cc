#include "core/linf_nonzero_index.h"

#include <random>

#include <gtest/gtest.h>

#include "core/expected_nn.h"
#include "workload/generators.h"

namespace unn {
namespace core {
namespace {

using geom::Vec2;

std::vector<int> BruteLinf(const std::vector<SquareRegion>& sq, Vec2 q) {
  // Lemma 2.1 in the L_inf metric, j != i semantics.
  double best = 1e18, second = 1e18;
  int argbest = -1;
  for (size_t i = 0; i < sq.size(); ++i) {
    double d = ChebyshevDist(q, sq[i].center) + sq[i].half_side;
    if (d < best) {
      second = best;
      best = d;
      argbest = static_cast<int>(i);
    } else {
      second = std::min(second, d);
    }
  }
  std::vector<int> out;
  for (size_t i = 0; i < sq.size(); ++i) {
    double threshold = static_cast<int>(i) == argbest ? second : best;
    double delta =
        std::max(ChebyshevDist(q, sq[i].center) - sq[i].half_side, 0.0);
    if (sq.size() == 1 || delta < threshold) out.push_back(static_cast<int>(i));
  }
  return out;
}

TEST(LinfNonzeroIndex, TwoSquaresSanity) {
  std::vector<SquareRegion> sq = {{{-4, 0}, 1.0}, {{4, 0}, 1.0}};
  LinfNonzeroIndex ix(sq);
  EXPECT_EQ(ix.Query({-4, 0}), (std::vector<int>{0}));
  EXPECT_EQ(ix.Query({4, 0}), (std::vector<int>{1}));
  EXPECT_EQ(ix.Query({0, 0.3}), (std::vector<int>{0, 1}));
  EXPECT_NEAR(ix.Delta({0, 0}), 5.0, 1e-12);  // cheb=4 plus half_side 1.
}

TEST(LinfNonzeroIndex, MatchesBruteForceRandom) {
  std::mt19937_64 rng(606);
  std::uniform_real_distribution<double> pos(-12, 12);
  std::uniform_real_distribution<double> side(0.1, 1.8);
  for (int n : {1, 2, 5, 20, 100, 400}) {
    std::vector<SquareRegion> sq(n);
    for (auto& s : sq) s = {{pos(rng), pos(rng)}, side(rng)};
    LinfNonzeroIndex ix(sq);
    std::uniform_real_distribution<double> qu(-15, 15);
    for (int t = 0; t < 200; ++t) {
      Vec2 q{qu(rng), qu(rng)};
      ASSERT_EQ(ix.Query(q), BruteLinf(sq, q)) << "n=" << n << " t=" << t;
      double want = 1e18;
      for (const auto& s : sq) {
        want = std::min(want, ChebyshevDist(q, s.center) + s.half_side);
      }
      ASSERT_NEAR(ix.Delta(q), want, 1e-12);
    }
  }
}

TEST(LinfNonzeroIndex, DegenerateZeroSizeSquares) {
  // half_side = 0: certain points under L_inf; exactly the nearest one(s).
  std::vector<SquareRegion> sq = {{{0, 0}, 0.0}, {{10, 0}, 0.0},
                                  {{0, 10}, 0.0}};
  LinfNonzeroIndex ix(sq);
  EXPECT_EQ(ix.Query({1, 1}), (std::vector<int>{0}));
  EXPECT_EQ(ix.Query({9, 0.5}), (std::vector<int>{1}));
  EXPECT_EQ(ix.Query({0.5, 9}), (std::vector<int>{2}));
}

TEST(LinfNonzeroIndex, LinfBallGeometryDiffersFromL2) {
  // A point L2-closer to square 0 but Chebyshev-closer to square 1: the
  // metrics must give different answers.
  std::vector<SquareRegion> sq = {{{0, 0}, 0.1}, {{7, 7}, 0.1}};
  LinfNonzeroIndex ix(sq);
  Vec2 q{5.0, 5.0};  // cheb to 0: 5; cheb to 1: 2 -> L_inf winner is 1.
  auto got = ix.Query(q);
  EXPECT_EQ(got, (std::vector<int>{1}));
  // Under L2 both are sqrt(50) vs sqrt(8): also 1 — pick a sharper case:
  Vec2 q2{4.0, 0.0};  // cheb: 4 vs 7 -> {0}; L2: 4 vs sqrt(9+49)=7.6 -> {0}.
  EXPECT_EQ(ix.Query(q2), (std::vector<int>{0}));
  Vec2 q3{6.0, 1.0};  // cheb: 6 vs 6 -> tie region: both candidates.
  auto both = ix.Query(q3);
  EXPECT_EQ(both.size(), 2u);
}

TEST(ExpectedNnRanking, TopKOrderMatchesFullSort) {
  auto pts = workload::RandomDisks(30, /*seed=*/17, 8.0, 0.2, 2.0);
  ExpectedNn enn(pts);
  std::mt19937_64 rng(19);
  std::uniform_real_distribution<double> qu(-10, 10);
  for (int t = 0; t < 20; ++t) {
    Vec2 q{qu(rng), qu(rng)};
    auto top5 = enn.RankByExpectedDistance(q, 5);
    ASSERT_EQ(top5.size(), 5u);
    std::vector<std::pair<double, int>> all;
    for (int i = 0; i < 30; ++i) all.push_back({enn.ExpectedDistance(i, q), i});
    std::sort(all.begin(), all.end());
    for (int i = 0; i < 5; ++i) {
      EXPECT_NEAR(enn.ExpectedDistance(top5[i], q), all[i].first, 1e-9)
          << "t=" << t << " rank " << i;
    }
    // Non-decreasing order.
    for (int i = 1; i < 5; ++i) {
      EXPECT_LE(enn.ExpectedDistance(top5[i - 1], q),
                enn.ExpectedDistance(top5[i], q) + 1e-12);
    }
  }
}

}  // namespace
}  // namespace core
}  // namespace unn
